// The paper's §5.4 story, end to end: take a fine-grained wavefront code
// (SWEEP3D) that uses blocking send/receive, watch it lose ~30% under
// BCS-MPI, apply the <50-line non-blocking rewrite, and watch the penalty
// vanish.
//
//   $ ./examples/sweep3d_tuning

#include <cstdio>

#include "apps/wavefront.hpp"
#include "baseline/baseline.hpp"
#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"

namespace {

using namespace bcs;

double runOnce(bool use_bcs, bool blocking) {
  net::ClusterConfig machine;
  machine.num_compute_nodes = 8;
  net::Cluster cluster(machine);

  apps::Sweep3dConfig cfg;
  cfg.time_steps = 4;
  cfg.blocking = blocking;
  const auto app = [cfg](mpi::Comm& c) { (void)apps::sweep3d(c, cfg); };
  const auto map = baseline::blockMapping(16, 8, 2);

  std::vector<sim::SimTime> finish;
  if (use_bcs) {
    bcsmpi::BcsMpiConfig mcfg;
    mcfg.runtime_init_overhead = sim::usec(100);
    bcsmpi::runJob(cluster, mcfg, map, app, &finish);
  } else {
    baseline::BaselineConfig bcfg;
    bcfg.init_overhead = sim::usec(100);
    baseline::runJob(cluster, bcfg, map, app, &finish);
  }
  sim::SimTime last = 0;
  for (auto t : finish) last = std::max(last, t);
  return sim::toSec(last);
}

}  // namespace

int main() {
  std::printf("SWEEP3D (16 ranks, 3.5 ms wavefront steps)\n\n");

  const double base_blk = runOnce(false, true);
  const double bcs_blk = runOnce(true, true);
  std::printf("1. original blocking code:\n");
  std::printf("   production-style MPI : %.3f s\n", base_blk);
  std::printf("   BCS-MPI              : %.3f s   (%+.1f%%)\n\n", bcs_blk,
              (bcs_blk / base_blk - 1) * 100);
  std::printf("   Every MPI_Send/MPI_Recv suspends the process until a slice\n"
              "   boundary: ~1.5 slices each, and SWEEP3D makes four per\n"
              "   3.5 ms step.\n\n");

  const double base_nb = runOnce(false, false);
  const double bcs_nb = runOnce(true, false);
  std::printf("2. after the non-blocking rewrite (Isend/Irecv + Waitall):\n");
  std::printf("   production-style MPI : %.3f s\n", base_nb);
  std::printf("   BCS-MPI              : %.3f s   (%+.1f%%)\n\n", bcs_nb,
              (bcs_nb / base_nb - 1) * 100);
  std::printf("   Pre-posted receives let the NIC transfer block b+1 while\n"
              "   the CPU computes block b; MPI_Wait just checks a flag.\n");
  return 0;
}
