// Quickstart: the smallest complete BCS-MPI program.
//
// Builds a simulated 8-node QsNet cluster, runs a 16-process SPMD job that
// exchanges halos with non-blocking operations and closes each step with an
// allreduce, then prints what the globally scheduled runtime did.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"

int main() {
  using namespace bcs;

  // 1. A simulated machine: 8 dual-CPU compute nodes + 1 management node
  //    on a quaternary fat tree with QsNet-era constants.
  net::ClusterConfig machine;
  machine.num_compute_nodes = 8;
  net::Cluster cluster(machine);

  // 2. The BCS-MPI runtime: 500 us time slices, descriptors scheduled
  //    globally at every slice boundary (all defaults from the paper).
  bcsmpi::BcsMpiConfig mpi_cfg;
  mpi_cfg.runtime_init_overhead = sim::msec(1);  // small demo job

  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, mpi_cfg);

  // 3. A 16-rank SPMD body written against mpi::Comm — the same code runs
  //    unmodified over the baseline eager/rendezvous MPI (see
  //    src/baseline) for apples-to-apples comparisons.
  const std::vector<int> node_of_rank = {0, 0, 1, 1, 2, 2, 3, 3,
                                         4, 4, 5, 5, 6, 6, 7, 7};
  std::vector<sim::SimTime> finish;
  bcsmpi::launchJob(*runtime, node_of_rank, [](mpi::Comm& comm) {
    const int left = (comm.rank() + comm.size() - 1) % comm.size();
    const int right = (comm.rank() + 1) % comm.size();
    std::vector<double> halo_out(512, comm.rank() * 1.0), halo_in(512);

    double residual = 1.0;
    for (int step = 0; step < 5 && residual > 1e-9; ++step) {
      // Post the exchange, overlap it with the step's computation, then
      // verify completion — the pattern BCS-MPI rewards (paper §3.2).
      std::vector<mpi::Request> reqs;
      reqs.push_back(comm.irecvv<double>(halo_in, left, step));
      reqs.push_back(comm.isendv<double>(
          std::span<const double>(halo_out), right, step));
      comm.compute(sim::msec(2));  // the "science"
      comm.waitall(reqs);

      // Global convergence check on the NIC-side Reduce Helper.
      residual = comm.allreduceOne(halo_in[0] / (step + 1.0),
                                   mpi::ReduceOp::kMax);
    }
    if (comm.rank() == 0) {
      std::printf("rank 0 done at %s, final residual %.3f\n",
                  sim::formatTime(comm.now()).c_str(), residual);
    }
  }, &finish);

  // 4. Run the discrete-event simulation to completion.
  cluster.run();

  sim::SimTime last = 0;
  for (auto t : finish) last = std::max(last, t);
  const auto& stats = runtime->stats();
  std::printf("job finished at %s\n", sim::formatTime(last).c_str());
  std::printf("time slices: %llu, microstrobes: %llu\n",
              static_cast<unsigned long long>(stats.slices),
              static_cast<unsigned long long>(stats.microstrobes));
  std::printf("descriptors exchanged: %llu, matches: %llu, chunks: %llu\n",
              static_cast<unsigned long long>(stats.descriptors_exchanged),
              static_cast<unsigned long long>(stats.matches),
              static_cast<unsigned long long>(stats.chunks_transferred));
  std::printf("collectives scheduled: %llu\n",
              static_cast<unsigned long long>(stats.collectives_scheduled));
  return 0;
}
