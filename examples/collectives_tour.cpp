// A tour of the collective layer cake (paper Appendix A):
//
//   MPI layer      MPI_Allreduce, MPI_Alltoall, ...
//   BCS API        bcs_reduce(all), bcs_barrier, ...     <- NIC-level trio
//   BCS core       Xfer-And-Signal / Test-Event / Compare-And-Write
//
// This example uses both the MPI facade and the raw BCS API, and shows the
// NIC-side reduce (softfloat on the FPU-less NIC) agreeing with host
// arithmetic.
//
//   $ ./examples/collectives_tour

#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"

int main() {
  using namespace bcs;

  net::ClusterConfig machine;
  machine.num_compute_nodes = 6;
  net::Cluster cluster(machine);

  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = sim::usec(100);
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  bcsmpi::launchJob(*runtime, {0, 1, 2, 3, 4, 5}, [](mpi::Comm& comm) {
    const int r = comm.rank();
    const int P = comm.size();

    // --- barrier (CH: a broadcast with no data) ---
    comm.compute(sim::msec(r));  // stagger arrival
    comm.barrier();

    // --- bcast from a non-zero root (CH: hardware multicast) ---
    std::vector<int> table(8);
    if (r == 2) std::iota(table.begin(), table.end(), 100);
    comm.bcast(table.data(), table.size() * sizeof(int), /*root=*/2);

    // --- reduce / allreduce (RH: binomial tree, softfloat on the NIC) ---
    const double mine = 0.1 * (r + 1);
    double sum = 0;
    comm.reduce(&mine, &sum, 1, mpi::Datatype::kFloat64, mpi::ReduceOp::kSum,
                /*root=*/0);
    const double maxv = comm.allreduceOne(mine, mpi::ReduceOp::kMax);

    // --- composed collectives (built on top, Appendix A) ---
    std::vector<std::int32_t> mine_sq{static_cast<std::int32_t>(r * r)};
    std::vector<std::int32_t> squares(static_cast<std::size_t>(P));
    comm.allgather(mine_sq.data(), sizeof(std::int32_t), squares.data());

    std::vector<std::int32_t> to_all(static_cast<std::size_t>(P)),
        from_all(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) {
      to_all[static_cast<std::size_t>(d)] = 10 * r + d;
    }
    comm.alltoall(to_all.data(), sizeof(std::int32_t), from_all.data());

    // --- the raw BCS API underneath the facade ---
    auto& api = static_cast<bcsmpi::BcsComm&>(comm).api();
    api.barrier();  // bcs_barrier(), directly

    if (r == 0) {
      std::printf("bcast from root 2:    table[0]=%d ... table[7]=%d\n",
                  table[0], table[7]);
      std::printf("NIC reduce (sum):     %.2f (expect 2.10)\n", sum);
      std::printf("NIC allreduce (max):  %.2f (expect 0.60)\n", maxv);
      std::printf("allgather of r^2:     ");
      for (int v : squares) std::printf("%d ", v);
      std::printf("\nalltoall row at 0:    ");
      for (int v : from_all) std::printf("%d ", v);
      std::printf("\n");
    }
  });
  cluster.run();

  std::printf("collectives scheduled by the runtime: %llu\n",
              static_cast<unsigned long long>(
                  runtime->stats().collectives_scheduled));
  return 0;
}
