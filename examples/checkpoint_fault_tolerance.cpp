// The paper's closing argument (§6): "a scheduled, deterministic
// communication behavior at system level could provide a solid
// infrastructure for implementing transparent fault tolerance."
//
// This example runs that argument end to end with src/snapshot:
//
//   1. Periodic coordinated checkpoints: every slice boundary is a globally
//      consistent state by construction, so the runtime's periodic hook
//      (BcsMpiConfig::checkpoint_every_slices) just serializes the whole
//      machine — no marker algorithm, no message draining.
//   2. Crash and restore: the run is killed mid-flight; a *fresh* stack is
//      restored from the last snapshot and continues byte-identically
//      (the spliced trace equals the uninterrupted run's).
//   3. Branching what-if replay: the same snapshot is forked a second time
//      with the node crash edited out of the FaultPlan, showing what the
//      machine would have done had the node survived.
//
//   $ ./examples/checkpoint_fault_tolerance
//   (inspect the snapshot it leaves behind with
//    tools/snapshot_inspect.py checkpoint_fault_tolerance.bcss)

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/scenario.hpp"

int main() {
  using namespace bcs;
  using snapshot::ScenarioSpec;
  using snapshot::Simulation;

  // The 32-node fault soup: 5% packet loss, STORM heartbeats wired into the
  // runtime's recovery machinery, and node 13 crashing at 6 ms.
  ScenarioSpec spec = snapshot::ckptSoup(/*verify=*/true);
  spec.mpi.checkpoint_every_slices = 8;  // a snapshot every 4 ms of simtime
  const sim::SimTime horizon = sim::msec(30);

  // --- Reference: the uninterrupted run ----------------------------------
  Simulation reference = snapshot::build(spec);
  reference.cluster->run(horizon);
  const std::string reference_trace = reference.cluster->trace().dump();

  // --- Checkpointed run, killed mid-flight -------------------------------
  Simulation live = snapshot::build(spec);
  std::vector<std::uint8_t> blob;        // most recent snapshot
  std::vector<std::uint8_t> pre_crash;   // first snapshot (4.2 ms < 6 ms)
  std::uint64_t blob_slice = 0;
  live.runtime->setSnapshotSink([&live, &blob, &pre_crash, &blob_slice](
                                    std::uint64_t slice) {
    blob = snapshot::capture(live);
    if (pre_crash.empty()) pre_crash = blob;
    blob_slice = slice;
    std::printf("checkpoint at slice %4llu (%s): %zu bytes\n",
                static_cast<unsigned long long>(slice),
                sim::formatTime(live.cluster->engine().now()).c_str(),
                blob.size());
  });
  live.cluster->run(sim::msec(12));  // "crash": the process stops here
  const std::string live_trace = live.cluster->trace().dump();
  std::printf("\nrun killed at 12 ms with %llu checkpoint(s) taken\n",
              static_cast<unsigned long long>(
                  live.runtime->stats().checkpoints_taken));

  {
    std::ofstream out("checkpoint_fault_tolerance.bcss",
                      std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
  }

  // --- Restore into a fresh stack and continue ---------------------------
  Simulation resumed = snapshot::restore(spec, blob);
  resumed.cluster->run(horizon);
  const std::uint64_t prefix = snapshot::traceDumpBytesAt(blob);
  const std::string spliced =
      live_trace.substr(0, static_cast<std::size_t>(prefix)) +
      resumed.cluster->trace().dump();
  std::printf("restored from slice %llu into a fresh process: spliced trace "
              "%s the uninterrupted run's (%zu bytes)\n",
              static_cast<unsigned long long>(blob_slice),
              spliced == reference_trace ? "MATCHES" : "DIFFERS FROM",
              reference_trace.size());
  std::printf("  evictions %llu, rejoins %llu, requests failed %llu "
              "(node 13's crash rides through the restore)\n",
              static_cast<unsigned long long>(
                  resumed.runtime->stats().evictions),
              static_cast<unsigned long long>(resumed.runtime->stats().rejoins),
              static_cast<unsigned long long>(
                  resumed.runtime->stats().requests_failed));

  // --- Branching what-if replay: pre-crash snapshot, crash edited out ----
  ScenarioSpec what_if = spec;
  what_if.cluster.faults = sim::FaultPlan{};
  what_if.cluster.faults.dropRate(0.05);  // keep the loss, drop the crash
  Simulation branch = snapshot::restore(what_if, pre_crash);
  branch.cluster->run(horizon);
  std::printf("\nwhat-if branch (pre-crash snapshot, crash removed from the "
              "FaultPlan):\n");
  std::printf("  evictions %llu, requests failed %llu — the machine sails "
              "on; traces diverge only after the fork point\n",
              static_cast<unsigned long long>(
                  branch.runtime->stats().evictions),
              static_cast<unsigned long long>(
                  branch.runtime->stats().requests_failed));
  std::printf("  divergent futures from one consistent past: branch trace "
              "%zu bytes vs %zu with the crash\n",
              branch.cluster->trace().dump().size(),
              resumed.cluster->trace().dump().size());
  return spliced == reference_trace ? 0 : 1;
}
