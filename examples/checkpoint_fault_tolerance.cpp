// The paper's closing argument (§6): "a scheduled, deterministic
// communication behavior at system level could provide a solid
// infrastructure for implementing transparent fault tolerance."
//
// This example shows the two halves of that infrastructure working:
//
//   1. Coordinated checkpoints: because all communication is globally
//      scheduled, the machine state at every slice boundary is consistent
//      by construction — no marker algorithms, no message draining.  We
//      snapshot a running job every few milliseconds, for free.
//   2. Failure detection: STORM's heartbeat protocol (built on the same
//      BCS core primitives) notices a dead node within a few beats.
//
// Together they answer "from which globally consistent state can the job
// restart, and when do we know we must?"
//
//   $ ./examples/checkpoint_fault_tolerance

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"
#include "storm/storm.hpp"

int main() {
  using namespace bcs;

  net::ClusterConfig machine;
  machine.num_compute_nodes = 8;
  net::Cluster cluster(machine);

  storm::StormConfig scfg;
  scfg.heartbeat_period = sim::msec(2);
  scfg.max_missed_heartbeats = 3;
  storm::Storm storm(cluster, scfg);
  storm.startHeartbeats();

  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = sim::usec(200);
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  // Wire STORM's fault view into the runtime: a death declaration evicts the
  // node at the next slice boundary (coordinated recovery), a resumed node
  // rejoins, and if the management node itself dies the elected backup
  // Strobe Sender takes over the Machine Manager duties too.
  storm.setDeathHandler([&](int node) { runtime->notifyNodeFailure(node); });
  storm.setRejoinHandler([&](int node) { runtime->notifyNodeRejoin(node); });
  runtime->setFailoverHandler(
      [&](int node, std::uint64_t) { storm.failoverTo(node); });

  // A communication-heavy job: SAGE-shaped steps (compute, non-blocking halo
  // exchange with the ring neighbours, closing allreduce).  Unlike the
  // pristine apps::sage skeleton — which verifies every halo byte and so
  // belongs on a healthy machine — this body honours the degraded-job
  // contract: after the eviction, requests touching the dead node complete
  // *in error* (mpi::kErrPeerUnreachable) and the survivors keep stepping.
  constexpr int kSteps = 6;
  constexpr std::size_t kHaloBytes = 32 * 1024;
  auto errored_requests = std::make_shared<int>(0);
  bcsmpi::launchJob(
      *runtime, {0, 1, 2, 3, 4, 5, 6, 7}, [errored_requests](mpi::Comm& c) {
        const int left = (c.rank() + c.size() - 1) % c.size();
        const int right = (c.rank() + 1) % c.size();
        std::vector<std::uint8_t> out(kHaloBytes,
                                      static_cast<std::uint8_t>(c.rank()));
        std::vector<std::uint8_t> in_l(kHaloBytes), in_r(kHaloBytes);
        for (int step = 0; step < kSteps; ++step) {
          c.compute(sim::msec(3));
          mpi::Request reqs[] = {c.irecv(in_l.data(), kHaloBytes, left, step),
                                 c.irecv(in_r.data(), kHaloBytes, right, step),
                                 c.isend(out.data(), kHaloBytes, left, step),
                                 c.isend(out.data(), kHaloBytes, right, step)};
          for (auto& r : reqs) {
            mpi::Status st;
            c.wait(r, &st);
            if (st.error != mpi::kSuccess) ++*errored_requests;
          }
          (void)c.allreduceOne(1e-3 * (c.rank() + step), mpi::ReduceOp::kSum);
        }
      });

  // Periodic coordinated checkpoints, every ~4 ms of simulated time.
  std::vector<bcsmpi::CheckpointRecord> checkpoints;
  std::function<void()> arm = [&] {
    runtime->requestCheckpoint([&](const bcsmpi::CheckpointRecord& r) {
      checkpoints.push_back(r);
      cluster.engine().after(sim::msec(4), arm);
    });
  };
  cluster.engine().at(sim::msec(2), arm);

  // Fault injection: node 5 dies mid-run.
  sim::SimTime death_detected = -1;
  cluster.engine().at(sim::msec(9), [&] { storm.killNode(5); });
  // Poll the MM's fault view until it notices (heartbeat-driven).
  auto watch = std::make_shared<std::function<void()>>();
  *watch = [&, watch] {
    if (!storm.nodeAlive(5)) {
      if (death_detected < 0) death_detected = cluster.engine().now();
      return;
    }
    cluster.engine().after(sim::msec(1), *watch);
  };
  cluster.engine().at(sim::msec(10), [watch] { (*watch)(); });
  cluster.engine().at(sim::msec(60), [&] { storm.stopHeartbeats(); });

  cluster.run();

  std::printf("checkpoints taken: %zu\n", checkpoints.size());
  for (const auto& r : checkpoints) {
    std::size_t partial = 0;
    for (const auto& n : r.nodes) partial += n.partial_messages;
    std::printf(
        "  slice %4llu @ %10s  requests %llu/%llu complete, %zu message(s) "
        "mid-chunking, %s\n",
        static_cast<unsigned long long>(r.slice),
        sim::formatTime(r.time).c_str(),
        static_cast<unsigned long long>(r.jobs[0].requests_completed),
        static_cast<unsigned long long>(r.jobs[0].requests_posted), partial,
        r.quiescent ? "quiescent" : "in-flight state recorded");
  }
  if (death_detected >= 0) {
    std::printf("\nnode 5 killed at 9 ms; MM declared it dead at %s\n",
                sim::formatTime(death_detected).c_str());
    // Restart decision: the last checkpoint at or before detection.
    const bcsmpi::CheckpointRecord* restart = nullptr;
    for (const auto& r : checkpoints) {
      if (r.time <= death_detected) restart = &r;
    }
    if (restart) {
      std::printf("restart candidate: slice %llu (%s) — globally consistent "
                  "by construction\n",
                  static_cast<unsigned long long>(restart->slice),
                  sim::formatTime(restart->time).c_str());
    }
  }
  std::printf("job completed degraded: %d request(s) finished in error "
              "(kErrPeerUnreachable)\n",
              *errored_requests);
  return 0;
}
