// The paper's closing argument (§6): "a scheduled, deterministic
// communication behavior at system level could provide a solid
// infrastructure for implementing transparent fault tolerance."
//
// This example shows the two halves of that infrastructure working:
//
//   1. Coordinated checkpoints: because all communication is globally
//      scheduled, the machine state at every slice boundary is consistent
//      by construction — no marker algorithms, no message draining.  We
//      snapshot a running job every few milliseconds, for free.
//   2. Failure detection: STORM's heartbeat protocol (built on the same
//      BCS core primitives) notices a dead node within a few beats.
//
// Together they answer "from which globally consistent state can the job
// restart, and when do we know we must?"
//
//   $ ./examples/checkpoint_fault_tolerance

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/nas.hpp"
#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"
#include "storm/storm.hpp"

int main() {
  using namespace bcs;

  net::ClusterConfig machine;
  machine.num_compute_nodes = 8;
  net::Cluster cluster(machine);

  storm::StormConfig scfg;
  scfg.heartbeat_period = sim::msec(2);
  scfg.max_missed_heartbeats = 3;
  storm::Storm storm(cluster, scfg);
  storm.startHeartbeats();

  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = sim::usec(200);
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  // A communication-heavy job (SAGE-like steps).
  apps::SageConfig app_cfg;
  app_cfg.steps = 6;
  app_cfg.compute_per_step = sim::msec(3);
  app_cfg.halo_bytes = 32 * 1024;
  bcsmpi::launchJob(*runtime, {0, 1, 2, 3, 4, 5, 6, 7},
                    [app_cfg](mpi::Comm& c) { (void)apps::sage(c, app_cfg); });

  // Periodic coordinated checkpoints, every ~4 ms of simulated time.
  std::vector<bcsmpi::CheckpointRecord> checkpoints;
  std::function<void()> arm = [&] {
    runtime->requestCheckpoint([&](const bcsmpi::CheckpointRecord& r) {
      checkpoints.push_back(r);
      cluster.engine().after(sim::msec(4), arm);
    });
  };
  cluster.engine().at(sim::msec(2), arm);

  // Fault injection: node 5 dies mid-run.
  sim::SimTime death_detected = -1;
  cluster.engine().at(sim::msec(9), [&] { storm.killNode(5); });
  // Poll the MM's fault view until it notices (heartbeat-driven).
  auto watch = std::make_shared<std::function<void()>>();
  *watch = [&, watch] {
    if (!storm.nodeAlive(5)) {
      if (death_detected < 0) death_detected = cluster.engine().now();
      return;
    }
    cluster.engine().after(sim::msec(1), *watch);
  };
  cluster.engine().at(sim::msec(10), [watch] { (*watch)(); });
  cluster.engine().at(sim::msec(60), [&] { storm.stopHeartbeats(); });

  cluster.run();

  std::printf("checkpoints taken: %zu\n", checkpoints.size());
  for (const auto& r : checkpoints) {
    std::size_t partial = 0;
    for (const auto& n : r.nodes) partial += n.partial_messages;
    std::printf(
        "  slice %4llu @ %10s  requests %llu/%llu complete, %zu message(s) "
        "mid-chunking, %s\n",
        static_cast<unsigned long long>(r.slice),
        sim::formatTime(r.time).c_str(),
        static_cast<unsigned long long>(r.jobs[0].requests_completed),
        static_cast<unsigned long long>(r.jobs[0].requests_posted), partial,
        r.quiescent ? "quiescent" : "in-flight state recorded");
  }
  if (death_detected >= 0) {
    std::printf("\nnode 5 killed at 9 ms; MM declared it dead at %s\n",
                sim::formatTime(death_detected).c_str());
    // Restart decision: the last checkpoint at or before detection.
    const bcsmpi::CheckpointRecord* restart = nullptr;
    for (const auto& r : checkpoints) {
      if (r.time <= death_detected) restart = &r;
    }
    if (restart) {
      std::printf("restart candidate: slice %llu (%s) — globally consistent "
                  "by construction\n",
                  static_cast<unsigned long long>(restart->slice),
                  sim::formatTime(restart->time).c_str());
    }
  }
  return 0;
}
