// bcs-verify in action: the protocol verifier (src/verify) watching two
// deliberately broken programs.
//
// BCS-MPI's global scheduling gives the runtime a synchronized, whole-
// machine view of every posted descriptor at each time slice — which makes
// PARCOACH-style correctness checking nearly free.  With
// BcsMpiConfig::verify on, the runtime color-checks every collective at the
// slice boundary, audits every MSM match, and walks all protocol state at
// finalize.  The two demos here:
//
//   1. A rank-divergent collective: rank 0 reduces with kSum while the
//      other ranks use kMax.  Per-node state never sees the conflict (one
//      rank per node); the verifier's color reduction names the offender,
//      its call site and the operation signature.
//   2. A count-mismatched receive: the receiver posts a 256B buffer for a
//      4KiB message.  The runtime still refuses the match (historical
//      behavior), but the verifier records the diagnosis — who sent how
//      much, who posted how little — before the run unwinds.
//
// Both runs print the structured VerifyReport; a clean run would print
// nothing and trace byte-identically to a verify-off run (the verifier is a
// pure observer).
//
//   $ ./examples/verify_tour

#include <cstdint>
#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"
#include "verify/verify.hpp"

using namespace bcs;

namespace {

/// Runs `body` as a P-rank job (one rank per node) under a verify-enabled
/// runtime; bounded so deadlocking demos still finish.  Prints the report.
void demo(const char* title, int P,
          const std::function<void(mpi::Comm&)>& body) {
  std::printf("==== %s ====\n", title);
  net::ClusterConfig machine;
  machine.num_compute_nodes = P;
  net::Cluster cluster(machine);

  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = sim::usec(200);
  cfg.verify = true;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  bcsmpi::launchJob(*runtime, map, body);

  try {
    cluster.run(sim::msec(100));
  } catch (const sim::SimError& e) {
    std::printf("runtime refused to continue: %s\n", e.what());
  }
  // For a run that stopped cleanly the audit has already happened; after a
  // bounded or unwound run this triggers the finalize walk.
  if (const verify::VerifyReport* rep = runtime->verifyAudit()) {
    std::printf("%s\n", rep->render().c_str());
  }
}

}  // namespace

int main() {
  demo("rank-divergent collective (kSum vs kMax)", 4, [](mpi::Comm& comm) {
    const auto op =
        comm.rank() == 0 ? mpi::ReduceOp::kSum : mpi::ReduceOp::kMax;
    comm.allreduceOne(1.0, op);
  });

  demo("count-mismatched receive (256B buffer, 4KiB message)", 2,
       [](mpi::Comm& comm) {
         std::vector<std::uint8_t> buf(4096);
         if (comm.rank() == 0) {
           auto r = comm.isend(buf.data(), buf.size(), 1, 0);
           comm.wait(r);
         } else {
           auto r = comm.irecv(buf.data(), 256, 0, 0);
           comm.wait(r);
         }
       });
  return 0;
}
