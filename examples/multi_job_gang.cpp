// Multiple parallel jobs on one machine: STORM allocates the nodes,
// launches the job images over the hardware collectives, and the BCS-MPI
// runtime gang-schedules the jobs at time-slice granularity — backfilling
// slices one job spends blocked on communication with the other job's
// computation (paper §5.4, option 1).
//
//   $ ./examples/multi_job_gang

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/wavefront.hpp"
#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"
#include "storm/storm.hpp"

int main() {
  using namespace bcs;

  net::ClusterConfig machine;
  machine.num_compute_nodes = 8;
  net::Cluster cluster(machine);

  // STORM: resource accounting + collective job launch + heartbeats.
  storm::Storm storm(cluster);
  storm.startHeartbeats();

  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = sim::usec(200);
  cfg.gang_scheduling = true;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  // Two blocking-heavy wavefront jobs; each would waste ~1/3 of its time
  // suspended at slice boundaries if it had the machine to itself.
  apps::Sweep3dConfig app_cfg;
  app_cfg.time_steps = 3;
  app_cfg.sweeps_per_step = 4;
  app_cfg.blocking = true;

  std::vector<std::vector<sim::SimTime>> finish(2);
  for (int j = 0; j < 2; ++j) {
    // Both jobs want every node: spread placement, one slot per node per
    // job, two job slots per node (multiprogramming level 2).
    const auto nodes =
        storm.allocate(8, /*per_node=*/2, storm::Storm::Placement::kSpread);
    sim::SimTime launched_at = -1;
    storm.launchImage(nodes, /*binary_bytes=*/2 << 20, 1,
                      [&, j, nodes](sim::SimTime) {
                        launched_at = cluster.engine().now();
                        bcsmpi::launchJob(
                            *runtime, nodes,
                            [app_cfg](mpi::Comm& c) {
                              (void)apps::sweep3d(c, app_cfg);
                            },
                            &finish[static_cast<std::size_t>(j)]);
                      });
  }

  cluster.run();
  storm.stopHeartbeats();
  cluster.run();  // drain the last heartbeat round

  for (int j = 0; j < 2; ++j) {
    sim::SimTime last = 0;
    for (auto t : finish[static_cast<std::size_t>(j)]) {
      last = std::max(last, t);
    }
    std::printf("job %d finished at %s\n", j, sim::formatTime(last).c_str());
  }
  std::printf("heartbeats sent by the Machine Manager: %llu, all nodes alive: %s\n",
              static_cast<unsigned long long>(storm.heartbeatsSent()),
              storm.deadNodes().empty() ? "yes" : "no");
  std::printf(
      "\nWith gang scheduling the two jobs interleave at 500 us slices;\n"
      "compare bench_gang for the quantitative makespan win.\n");
  return 0;
}
