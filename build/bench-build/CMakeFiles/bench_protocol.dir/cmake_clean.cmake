file(REMOVE_RECURSE
  "../bench/bench_protocol"
  "../bench/bench_protocol.pdb"
  "CMakeFiles/bench_protocol.dir/bench_protocol.cpp.o"
  "CMakeFiles/bench_protocol.dir/bench_protocol.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
