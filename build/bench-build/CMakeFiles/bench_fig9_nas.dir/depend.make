# Empty dependencies file for bench_fig9_nas.
# This may be replaced when dependencies are built.
