file(REMOVE_RECURSE
  "../bench/bench_fig11_sweep3d"
  "../bench/bench_fig11_sweep3d.pdb"
  "CMakeFiles/bench_fig11_sweep3d.dir/bench_fig11_sweep3d.cpp.o"
  "CMakeFiles/bench_fig11_sweep3d.dir/bench_fig11_sweep3d.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_sweep3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
