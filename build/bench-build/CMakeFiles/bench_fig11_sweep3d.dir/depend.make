# Empty dependencies file for bench_fig11_sweep3d.
# This may be replaced when dependencies are built.
