# Empty dependencies file for bench_storm_launch.
# This may be replaced when dependencies are built.
