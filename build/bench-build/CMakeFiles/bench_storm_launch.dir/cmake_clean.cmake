file(REMOVE_RECURSE
  "../bench/bench_storm_launch"
  "../bench/bench_storm_launch.pdb"
  "CMakeFiles/bench_storm_launch.dir/bench_storm_launch.cpp.o"
  "CMakeFiles/bench_storm_launch.dir/bench_storm_launch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storm_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
