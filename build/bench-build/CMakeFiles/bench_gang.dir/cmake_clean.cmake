file(REMOVE_RECURSE
  "../bench/bench_gang"
  "../bench/bench_gang.pdb"
  "CMakeFiles/bench_gang.dir/bench_gang.cpp.o"
  "CMakeFiles/bench_gang.dir/bench_gang.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
