file(REMOVE_RECURSE
  "../bench/bench_ablation_chunk"
  "../bench/bench_ablation_chunk.pdb"
  "CMakeFiles/bench_ablation_chunk.dir/bench_ablation_chunk.cpp.o"
  "CMakeFiles/bench_ablation_chunk.dir/bench_ablation_chunk.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
