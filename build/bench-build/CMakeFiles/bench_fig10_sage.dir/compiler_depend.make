# Empty compiler generated dependencies file for bench_fig10_sage.
# This may be replaced when dependencies are built.
