file(REMOVE_RECURSE
  "../bench/bench_fig10_sage"
  "../bench/bench_fig10_sage.pdb"
  "CMakeFiles/bench_fig10_sage.dir/bench_fig10_sage.cpp.o"
  "CMakeFiles/bench_fig10_sage.dir/bench_fig10_sage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
