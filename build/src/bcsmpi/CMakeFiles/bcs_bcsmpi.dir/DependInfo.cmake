
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bcsmpi/api.cpp" "src/bcsmpi/CMakeFiles/bcs_bcsmpi.dir/api.cpp.o" "gcc" "src/bcsmpi/CMakeFiles/bcs_bcsmpi.dir/api.cpp.o.d"
  "/root/repo/src/bcsmpi/collectives.cpp" "src/bcsmpi/CMakeFiles/bcs_bcsmpi.dir/collectives.cpp.o" "gcc" "src/bcsmpi/CMakeFiles/bcs_bcsmpi.dir/collectives.cpp.o.d"
  "/root/repo/src/bcsmpi/comm.cpp" "src/bcsmpi/CMakeFiles/bcs_bcsmpi.dir/comm.cpp.o" "gcc" "src/bcsmpi/CMakeFiles/bcs_bcsmpi.dir/comm.cpp.o.d"
  "/root/repo/src/bcsmpi/phases.cpp" "src/bcsmpi/CMakeFiles/bcs_bcsmpi.dir/phases.cpp.o" "gcc" "src/bcsmpi/CMakeFiles/bcs_bcsmpi.dir/phases.cpp.o.d"
  "/root/repo/src/bcsmpi/runtime.cpp" "src/bcsmpi/CMakeFiles/bcs_bcsmpi.dir/runtime.cpp.o" "gcc" "src/bcsmpi/CMakeFiles/bcs_bcsmpi.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bcs/CMakeFiles/bcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/bcs_mpi_iface.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bcs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/softfloat/CMakeFiles/bcs_softfloat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
