# Empty dependencies file for bcs_bcsmpi.
# This may be replaced when dependencies are built.
