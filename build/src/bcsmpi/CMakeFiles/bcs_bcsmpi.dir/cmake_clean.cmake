file(REMOVE_RECURSE
  "CMakeFiles/bcs_bcsmpi.dir/api.cpp.o"
  "CMakeFiles/bcs_bcsmpi.dir/api.cpp.o.d"
  "CMakeFiles/bcs_bcsmpi.dir/collectives.cpp.o"
  "CMakeFiles/bcs_bcsmpi.dir/collectives.cpp.o.d"
  "CMakeFiles/bcs_bcsmpi.dir/comm.cpp.o"
  "CMakeFiles/bcs_bcsmpi.dir/comm.cpp.o.d"
  "CMakeFiles/bcs_bcsmpi.dir/phases.cpp.o"
  "CMakeFiles/bcs_bcsmpi.dir/phases.cpp.o.d"
  "CMakeFiles/bcs_bcsmpi.dir/runtime.cpp.o"
  "CMakeFiles/bcs_bcsmpi.dir/runtime.cpp.o.d"
  "libbcs_bcsmpi.a"
  "libbcs_bcsmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcs_bcsmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
