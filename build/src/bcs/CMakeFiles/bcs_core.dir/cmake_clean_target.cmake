file(REMOVE_RECURSE
  "libbcs_core.a"
)
