file(REMOVE_RECURSE
  "CMakeFiles/bcs_core.dir/core.cpp.o"
  "CMakeFiles/bcs_core.dir/core.cpp.o.d"
  "libbcs_core.a"
  "libbcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
