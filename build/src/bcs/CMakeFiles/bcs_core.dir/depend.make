# Empty dependencies file for bcs_core.
# This may be replaced when dependencies are built.
