file(REMOVE_RECURSE
  "CMakeFiles/bcs_baseline.dir/comm.cpp.o"
  "CMakeFiles/bcs_baseline.dir/comm.cpp.o.d"
  "CMakeFiles/bcs_baseline.dir/world.cpp.o"
  "CMakeFiles/bcs_baseline.dir/world.cpp.o.d"
  "libbcs_baseline.a"
  "libbcs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
