file(REMOVE_RECURSE
  "libbcs_baseline.a"
)
