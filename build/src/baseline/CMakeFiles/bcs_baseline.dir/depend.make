# Empty dependencies file for bcs_baseline.
# This may be replaced when dependencies are built.
