file(REMOVE_RECURSE
  "libbcs_softfloat.a"
)
