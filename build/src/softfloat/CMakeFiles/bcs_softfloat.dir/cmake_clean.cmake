file(REMOVE_RECURSE
  "CMakeFiles/bcs_softfloat.dir/softfloat.cpp.o"
  "CMakeFiles/bcs_softfloat.dir/softfloat.cpp.o.d"
  "libbcs_softfloat.a"
  "libbcs_softfloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcs_softfloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
