# Empty compiler generated dependencies file for bcs_softfloat.
# This may be replaced when dependencies are built.
