file(REMOVE_RECURSE
  "CMakeFiles/bcs_sim.dir/cpu.cpp.o"
  "CMakeFiles/bcs_sim.dir/cpu.cpp.o.d"
  "CMakeFiles/bcs_sim.dir/engine.cpp.o"
  "CMakeFiles/bcs_sim.dir/engine.cpp.o.d"
  "CMakeFiles/bcs_sim.dir/fiber.cpp.o"
  "CMakeFiles/bcs_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/bcs_sim.dir/noise.cpp.o"
  "CMakeFiles/bcs_sim.dir/noise.cpp.o.d"
  "CMakeFiles/bcs_sim.dir/process.cpp.o"
  "CMakeFiles/bcs_sim.dir/process.cpp.o.d"
  "CMakeFiles/bcs_sim.dir/rng.cpp.o"
  "CMakeFiles/bcs_sim.dir/rng.cpp.o.d"
  "CMakeFiles/bcs_sim.dir/stats.cpp.o"
  "CMakeFiles/bcs_sim.dir/stats.cpp.o.d"
  "CMakeFiles/bcs_sim.dir/time.cpp.o"
  "CMakeFiles/bcs_sim.dir/time.cpp.o.d"
  "CMakeFiles/bcs_sim.dir/trace.cpp.o"
  "CMakeFiles/bcs_sim.dir/trace.cpp.o.d"
  "libbcs_sim.a"
  "libbcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
