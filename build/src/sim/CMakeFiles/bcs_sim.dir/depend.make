# Empty dependencies file for bcs_sim.
# This may be replaced when dependencies are built.
