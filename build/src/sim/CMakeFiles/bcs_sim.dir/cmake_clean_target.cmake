file(REMOVE_RECURSE
  "libbcs_sim.a"
)
