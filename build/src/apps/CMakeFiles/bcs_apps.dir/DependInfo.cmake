
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/nas.cpp" "src/apps/CMakeFiles/bcs_apps.dir/nas.cpp.o" "gcc" "src/apps/CMakeFiles/bcs_apps.dir/nas.cpp.o.d"
  "/root/repo/src/apps/synthetic.cpp" "src/apps/CMakeFiles/bcs_apps.dir/synthetic.cpp.o" "gcc" "src/apps/CMakeFiles/bcs_apps.dir/synthetic.cpp.o.d"
  "/root/repo/src/apps/wavefront.cpp" "src/apps/CMakeFiles/bcs_apps.dir/wavefront.cpp.o" "gcc" "src/apps/CMakeFiles/bcs_apps.dir/wavefront.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/bcs_mpi_iface.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/softfloat/CMakeFiles/bcs_softfloat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
