file(REMOVE_RECURSE
  "libbcs_apps.a"
)
