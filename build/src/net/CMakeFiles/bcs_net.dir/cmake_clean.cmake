file(REMOVE_RECURSE
  "CMakeFiles/bcs_net.dir/cluster.cpp.o"
  "CMakeFiles/bcs_net.dir/cluster.cpp.o.d"
  "CMakeFiles/bcs_net.dir/fabric.cpp.o"
  "CMakeFiles/bcs_net.dir/fabric.cpp.o.d"
  "CMakeFiles/bcs_net.dir/params.cpp.o"
  "CMakeFiles/bcs_net.dir/params.cpp.o.d"
  "CMakeFiles/bcs_net.dir/topology.cpp.o"
  "CMakeFiles/bcs_net.dir/topology.cpp.o.d"
  "libbcs_net.a"
  "libbcs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
