file(REMOVE_RECURSE
  "libbcs_net.a"
)
