# Empty dependencies file for bcs_mpi_iface.
# This may be replaced when dependencies are built.
