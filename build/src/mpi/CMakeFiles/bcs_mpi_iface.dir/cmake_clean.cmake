file(REMOVE_RECURSE
  "CMakeFiles/bcs_mpi_iface.dir/comm.cpp.o"
  "CMakeFiles/bcs_mpi_iface.dir/comm.cpp.o.d"
  "CMakeFiles/bcs_mpi_iface.dir/reduce_ops.cpp.o"
  "CMakeFiles/bcs_mpi_iface.dir/reduce_ops.cpp.o.d"
  "CMakeFiles/bcs_mpi_iface.dir/types.cpp.o"
  "CMakeFiles/bcs_mpi_iface.dir/types.cpp.o.d"
  "libbcs_mpi_iface.a"
  "libbcs_mpi_iface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcs_mpi_iface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
