file(REMOVE_RECURSE
  "libbcs_mpi_iface.a"
)
