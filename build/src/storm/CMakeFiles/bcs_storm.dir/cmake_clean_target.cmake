file(REMOVE_RECURSE
  "libbcs_storm.a"
)
