# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;bcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_net "/root/repo/build/tests/test_net")
set_tests_properties(test_net PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;bcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;bcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_softfloat "/root/repo/build/tests/test_softfloat")
set_tests_properties(test_softfloat PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;bcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_baseline "/root/repo/build/tests/test_baseline")
set_tests_properties(test_baseline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;bcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_bcsmpi "/root/repo/build/tests/test_bcsmpi")
set_tests_properties(test_bcsmpi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;bcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_apps "/root/repo/build/tests/test_apps")
set_tests_properties(test_apps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;bcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_storm "/root/repo/build/tests/test_storm")
set_tests_properties(test_storm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;bcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mpi_iface "/root/repo/build/tests/test_mpi_iface")
set_tests_properties(test_mpi_iface PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;bcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;bcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_runtime_internals "/root/repo/build/tests/test_runtime_internals")
set_tests_properties(test_runtime_internals PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;bcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_edge_cases "/root/repo/build/tests/test_edge_cases")
set_tests_properties(test_edge_cases PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;bcs_add_test;/root/repo/tests/CMakeLists.txt;0;")
