file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_internals.dir/test_runtime_internals.cpp.o"
  "CMakeFiles/test_runtime_internals.dir/test_runtime_internals.cpp.o.d"
  "test_runtime_internals"
  "test_runtime_internals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
