# Empty dependencies file for test_runtime_internals.
# This may be replaced when dependencies are built.
