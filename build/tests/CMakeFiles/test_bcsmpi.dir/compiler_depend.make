# Empty compiler generated dependencies file for test_bcsmpi.
# This may be replaced when dependencies are built.
