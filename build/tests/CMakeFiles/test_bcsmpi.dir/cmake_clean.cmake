file(REMOVE_RECURSE
  "CMakeFiles/test_bcsmpi.dir/test_bcsmpi.cpp.o"
  "CMakeFiles/test_bcsmpi.dir/test_bcsmpi.cpp.o.d"
  "test_bcsmpi"
  "test_bcsmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bcsmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
