file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_iface.dir/test_mpi_iface.cpp.o"
  "CMakeFiles/test_mpi_iface.dir/test_mpi_iface.cpp.o.d"
  "test_mpi_iface"
  "test_mpi_iface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_iface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
