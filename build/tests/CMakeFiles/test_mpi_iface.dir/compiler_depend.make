# Empty compiler generated dependencies file for test_mpi_iface.
# This may be replaced when dependencies are built.
