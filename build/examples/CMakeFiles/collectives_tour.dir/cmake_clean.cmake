file(REMOVE_RECURSE
  "CMakeFiles/collectives_tour.dir/collectives_tour.cpp.o"
  "CMakeFiles/collectives_tour.dir/collectives_tour.cpp.o.d"
  "collectives_tour"
  "collectives_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectives_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
