# Empty dependencies file for sweep3d_tuning.
# This may be replaced when dependencies are built.
