file(REMOVE_RECURSE
  "CMakeFiles/sweep3d_tuning.dir/sweep3d_tuning.cpp.o"
  "CMakeFiles/sweep3d_tuning.dir/sweep3d_tuning.cpp.o.d"
  "sweep3d_tuning"
  "sweep3d_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep3d_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
