file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_fault_tolerance.dir/checkpoint_fault_tolerance.cpp.o"
  "CMakeFiles/checkpoint_fault_tolerance.dir/checkpoint_fault_tolerance.cpp.o.d"
  "checkpoint_fault_tolerance"
  "checkpoint_fault_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
