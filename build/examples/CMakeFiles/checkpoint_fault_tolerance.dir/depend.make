# Empty dependencies file for checkpoint_fault_tolerance.
# This may be replaced when dependencies are built.
