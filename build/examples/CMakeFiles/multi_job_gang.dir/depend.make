# Empty dependencies file for multi_job_gang.
# This may be replaced when dependencies are built.
