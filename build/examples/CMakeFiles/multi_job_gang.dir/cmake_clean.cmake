file(REMOVE_RECURSE
  "CMakeFiles/multi_job_gang.dir/multi_job_gang.cpp.o"
  "CMakeFiles/multi_job_gang.dir/multi_job_gang.cpp.o.d"
  "multi_job_gang"
  "multi_job_gang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_job_gang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
