// One-sided RMA: window registration, put/get/fetch-add posting, and the
// passive-target epoch machinery inside the global-slice microphases
// (DESIGN.md §11).
//
// The paper's BCS core primitives are already one-sided — Xfer-And-Signal
// is a put, Compare-And-Write a remote atomic — and this layer surfaces
// them through the same descriptor-posting discipline every other BCS-MPI
// operation uses.  One slice is one passive-target epoch:
//
//   post (slice t)  the origin rank drops an RmaOpDescriptor into its
//                   node's NIC FIFO and may keep computing;
//   DEM (slice t)   all ops bound for one destination node coalesce into a
//                   single batch descriptor (Carver et al.) and ride one
//                   droppable Xfer-And-Signal; lost batches retry per-op
//                   next slice, exactly like send descriptors;
//   MSM (slice t)   the target node sorts its arrived ops into canonical
//                   (job, origin rank, posting seq) order and applies them
//                   to the window — one apply point per epoch, so
//                   concurrent fetch-adds linearize identically at any
//                   thread count, serial or parallel;
//   P2P (slice t)   results (get payloads, fetch-add old values, put acks)
//                   return to each origin node in one transfer;
//   boundary (t+1)  the Node Manager wakes blocked origin ranks: posted-in-
//                   slice-t ops are visible at the slice t+1 boundary.
//
// Every hook below is a strict no-op when no RMA op is in flight — no
// events, no traces, no stat changes — which is what keeps RMA-off runs
// byte-identical to the pre-RMA runtime.

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "bcsmpi/runtime.hpp"

namespace bcs::bcsmpi {

const char* rmaKindName(RmaKind k) {
  switch (k) {
    case RmaKind::kPut: return "put";
    case RmaKind::kGet: return "get";
    case RmaKind::kFetchAdd: return "fetch-add";
  }
  return "?";
}

namespace {

/// Wire bytes one op contributes beyond the shared batch header: its record
/// plus any payload that travels with it (put data out, nothing for get —
/// the data rides the return leg — and the 8-byte operand for fetch-add).
std::size_t rmaOutboundBytes(const BcsMpiConfig& cfg,
                             const RmaOpDescriptor& op) {
  switch (op.kind) {
    case RmaKind::kPut: return cfg.rma_op_bytes + op.bytes;
    case RmaKind::kGet: return cfg.rma_op_bytes;
    case RmaKind::kFetchAdd: return cfg.rma_op_bytes + sizeof(std::int64_t);
  }
  return cfg.rma_op_bytes;
}

/// Wire bytes of one op's return record (completion + inbound payload).
std::size_t rmaReturnBytes(const BcsMpiConfig& cfg,
                           const RmaOpDescriptor& op) {
  switch (op.kind) {
    case RmaKind::kPut: return cfg.rma_op_bytes;
    case RmaKind::kGet: return cfg.rma_op_bytes + op.bytes;
    case RmaKind::kFetchAdd: return cfg.rma_op_bytes + sizeof(std::int64_t);
  }
  return cfg.rma_op_bytes;
}

/// Canonical epoch order: (job, origin rank, posting seq).  One total order
/// on every node for every run, which is what "fetch-add resolved in
/// canonical rank order" means operationally.
bool canonicalRmaOrder(const RmaOpDescriptor& a, const RmaOpDescriptor& b) {
  if (a.job != b.job) return a.job < b.job;
  if (a.origin_rank != b.origin_rank) return a.origin_rank < b.origin_rank;
  return a.seq < b.seq;
}

}  // namespace

// ---------------------------------------------------------------------------
// Posting (application fibers)
// ---------------------------------------------------------------------------

int Runtime::createWindow(int job, int rank, void* base, std::size_t bytes) {
  RankState& rs = rankState(job, rank);
  if (rs.proc) rs.proc->compute(config_.post_overhead);
  const int win =
      windows_.registerWindow(windowOwnerKey(job, rank), base, bytes);
  if (race_) {
    // Windows are runtime state applied from the MSM, which runs on shard 0
    // like the rest of the control plane.  Mid-run registration is safe:
    // the registry is only read at quiesced merge points.
    race_->registerObject(race::ObjectKind::kRmaWindow,
                          (static_cast<std::uint64_t>(job) << 40) |
                              (static_cast<std::uint64_t>(rank) << 8) |
                              static_cast<std::uint64_t>(win),
                          0);
  }
  raceWindow(job, rank, win, race::RaceDetector::Access::kWrite,
             "Runtime::createWindow");
  return win;
}

std::uint64_t Runtime::postPut(int job, int rank, int target, int window,
                               std::size_t offset, const void* src,
                               std::size_t bytes) {
  if (target < 0 || target >= jobSize(job)) {
    throw sim::SimError("postPut: bad target rank " + std::to_string(target));
  }
  RankState& rs = rankState(job, rank);
  if (rs.proc) rs.proc->compute(config_.post_overhead);
  const std::uint64_t req = rs.next_req++;
  rs.requests.emplace(req, ReqInfo{});
  raceRank(job, rank, race::RaceDetector::Access::kWrite, "Runtime::postPut");
  raceNode(rs.node, race::FieldGroup::kRma,
           race::RaceDetector::Access::kWrite, "Runtime::postPut");

  RmaOpDescriptor d;
  d.job = job;
  d.origin_rank = rank;
  d.target_rank = target;
  d.kind = RmaKind::kPut;
  d.window = window;
  d.offset = offset;
  d.bytes = bytes;
  d.origin_src = static_cast<const std::byte*>(src);
  d.request = req;
  d.posted_at = rs.proc ? rs.proc->now() : cluster_.engine().now();
  d.seq = ++desc_seq_;
  d.call_index = rs.next_rma_call++;
  ++stats_.rma_ops;
  nodeState(rs.node).rma_fresh.push_back(d);
  return req;
}

std::uint64_t Runtime::postGet(int job, int rank, int target, int window,
                               std::size_t offset, void* dst,
                               std::size_t bytes) {
  if (target < 0 || target >= jobSize(job)) {
    throw sim::SimError("postGet: bad target rank " + std::to_string(target));
  }
  RankState& rs = rankState(job, rank);
  if (rs.proc) rs.proc->compute(config_.post_overhead);
  const std::uint64_t req = rs.next_req++;
  rs.requests.emplace(req, ReqInfo{});
  raceRank(job, rank, race::RaceDetector::Access::kWrite, "Runtime::postGet");
  raceNode(rs.node, race::FieldGroup::kRma,
           race::RaceDetector::Access::kWrite, "Runtime::postGet");

  RmaOpDescriptor d;
  d.job = job;
  d.origin_rank = rank;
  d.target_rank = target;
  d.kind = RmaKind::kGet;
  d.window = window;
  d.offset = offset;
  d.bytes = bytes;
  d.origin_dst = static_cast<std::byte*>(dst);
  d.request = req;
  d.posted_at = rs.proc ? rs.proc->now() : cluster_.engine().now();
  d.seq = ++desc_seq_;
  d.call_index = rs.next_rma_call++;
  ++stats_.rma_ops;
  nodeState(rs.node).rma_fresh.push_back(d);
  return req;
}

std::uint64_t Runtime::postFetchAdd(int job, int rank, int target, int window,
                                    std::size_t offset, std::int64_t delta,
                                    std::int64_t* old_value) {
  if (target < 0 || target >= jobSize(job)) {
    throw sim::SimError("postFetchAdd: bad target rank " +
                        std::to_string(target));
  }
  RankState& rs = rankState(job, rank);
  if (rs.proc) rs.proc->compute(config_.post_overhead);
  const std::uint64_t req = rs.next_req++;
  rs.requests.emplace(req, ReqInfo{});
  raceRank(job, rank, race::RaceDetector::Access::kWrite,
           "Runtime::postFetchAdd");
  raceNode(rs.node, race::FieldGroup::kRma,
           race::RaceDetector::Access::kWrite, "Runtime::postFetchAdd");

  RmaOpDescriptor d;
  d.job = job;
  d.origin_rank = rank;
  d.target_rank = target;
  d.kind = RmaKind::kFetchAdd;
  d.window = window;
  d.offset = offset;
  d.bytes = sizeof(std::int64_t);
  d.origin_dst = reinterpret_cast<std::byte*>(old_value);
  d.operand = delta;
  d.request = req;
  d.posted_at = rs.proc ? rs.proc->now() : cluster_.engine().now();
  d.seq = ++desc_seq_;
  d.call_index = rs.next_rma_call++;
  ++stats_.rma_ops;
  nodeState(rs.node).rma_fresh.push_back(d);
  return req;
}

// ---------------------------------------------------------------------------
// DEM — coalesced exchange (Buffer Sender side)
// ---------------------------------------------------------------------------

void Runtime::drainRmaFifos(int node) {
  NodeState& ns = nodeState(node);
  if (ns.rma_retry.empty() && ns.rma_fresh.empty()) return;
  raceNode(node, race::FieldGroup::kRma, race::RaceDetector::Access::kWrite,
           "Runtime::drainRmaFifos");
  // Retransmissions first, same as the send-descriptor FIFO: they are older
  // than everything still fresh.
  std::vector<RmaOpDescriptor> to_exchange;
  to_exchange.reserve(ns.rma_retry.size() + ns.rma_fresh.size());
  to_exchange.insert(to_exchange.end(),
                     std::make_move_iterator(ns.rma_retry.begin()),
                     std::make_move_iterator(ns.rma_retry.end()));
  to_exchange.insert(to_exchange.end(),
                     std::make_move_iterator(ns.rma_fresh.begin()),
                     std::make_move_iterator(ns.rma_fresh.end()));
  ns.rma_retry.clear();
  ns.rma_fresh.clear();

  // NIC-thread processing time for the drained batch.
  const Duration work = static_cast<Duration>(to_exchange.size()) *
                        config_.nic_desc_processing;
  if (work > 0) {
    opStarted(node);
    cluster_.engine().after(work, [this, node] { opFinished(node); });
  }

  // Coalescing (Carver et al.): all ops bound for one destination node
  // share one descriptor-sized header per slice; each op adds only its
  // record + payload.  A std::map keyes the grouping so batch issue order
  // is destination order — canonical on every run.
  std::map<int, std::vector<RmaOpDescriptor>> by_dest;
  for (RmaOpDescriptor& op : to_exchange) {
    const int dst_node = nodeOfRank(op.job, op.target_rank);
    if (nodeEvicted(dst_node)) {
      failRequest(op.job, op.origin_rank, op.request, op.target_rank,
                  op.window);
      continue;
    }
    by_dest[dst_node].push_back(std::move(op));
  }

  for (auto& [dst_node, group] : by_dest) {
    // Without coalescing every op pays the full descriptor header — the
    // epoch semantics are identical, only the modeled wire cost changes.
    std::vector<std::vector<RmaOpDescriptor>> batches;
    if (config_.rma_coalescing) {
      batches.push_back(std::move(group));
    } else {
      for (RmaOpDescriptor& op : group) {
        batches.push_back({std::move(op)});
      }
    }
    for (std::vector<RmaOpDescriptor>& b : batches) {
      std::size_t bytes = config_.descriptor_bytes;
      for (const RmaOpDescriptor& op : b) {
        bytes += rmaOutboundBytes(config_, op);
      }
      auto batch = std::make_shared<std::vector<RmaOpDescriptor>>(std::move(b));
      opStarted(node);
      ++stats_.rma_batches;
      ++stats_.descriptors_exchanged;
      const int dst = dst_node;
      core::XferRequest xfer;
      xfer.src_node = node;
      xfer.dest_nodes = {dst};
      xfer.bytes = bytes;
      xfer.droppable = true;
      xfer.deliver = [this, node, dst, batch](int) {
        NodeState& dest = nodeState(dst);
        dest.rma_inbound.insert(dest.rma_inbound.end(), batch->begin(),
                                batch->end());
        if (trace_) {
          trace_->record(cluster_.engine().now(),
                         sim::TraceCategory::kDescriptor, dst,
                         "rma batch from n" + std::to_string(node) + ": " +
                             std::to_string(batch->size()) + " op(s)");
        }
        opFinished(node);
      };
      xfer.on_failed = [this, node, dst, batch](int) {
        if (nodeEvicted(node)) {  // we died while the batch was in flight
          opFinished(node);
          return;
        }
        for (const RmaOpDescriptor& op : *batch) {
          if (nodeEvicted(dst) ||
              op.retries >= config_.max_descriptor_retries) {
            failRequest(op.job, op.origin_rank, op.request, op.target_rank,
                        op.window);
            continue;
          }
          RmaOpDescriptor retry = op;
          ++retry.retries;
          ++stats_.retransmits;
          if (trace_) {
            trace_->record(cluster_.engine().now(),
                           sim::TraceCategory::kFault, node,
                           std::string("rma ") + rmaKindName(op.kind) +
                               " to rank " + std::to_string(op.target_rank) +
                               " lost; retransmit #" +
                               std::to_string(retry.retries) + " next slice");
          }
          nodeState(node).rma_retry.push_back(std::move(retry));
        }
        opFinished(node);
      };
      core_.xferAndSignal(std::move(xfer));
    }
  }
}

// ---------------------------------------------------------------------------
// MSM — canonical epoch apply (target node)
// ---------------------------------------------------------------------------

void Runtime::scheduleRmaOps(int node, Duration& cost) {
  NodeState& ns = nodeState(node);
  if (ns.rma_inbound.empty()) return;
  raceNode(node, race::FieldGroup::kRma, race::RaceDetector::Access::kWrite,
           "Runtime::scheduleRmaOps");
  std::vector<RmaOpDescriptor> epoch;
  epoch.swap(ns.rma_inbound);
  // The single sort at the single apply point is the determinism argument:
  // whatever order batches arrived in (serial, parallel, retransmitted),
  // the epoch applies in (job, origin rank, seq) order.
  std::sort(epoch.begin(), epoch.end(), canonicalRmaOrder);
  if (verifier_) {
    verifier_->onRmaEpoch(slice_index_, cluster_.engine().now(), node, epoch);
  }
  for (const RmaOpDescriptor& op : epoch) {
    cost += config_.nic_rma_op_cost;
    applyRmaOp(node, op);
  }
}

void Runtime::applyRmaOp(int node, const RmaOpDescriptor& op) {
  const core::WindowRegion& region = windows_.resolve(
      windowOwnerKey(op.job, op.target_rank), op.window, op.offset, op.bytes);
  switch (op.kind) {
    case RmaKind::kPut:
      raceWindow(op.job, op.target_rank, op.window,
                 race::RaceDetector::Access::kWrite, "Runtime::applyRmaOp");
      std::memcpy(region.base + op.offset, op.origin_src, op.bytes);
      break;
    case RmaKind::kGet: {
      raceWindow(op.job, op.target_rank, op.window,
                 race::RaceDetector::Access::kRead, "Runtime::applyRmaOp");
      // The origin buffer is written here, at the apply point, and the
      // payload cost is charged on the return transfer — the same early-
      // write trick issueGets uses: the origin rank is blocked (or has not
      // waited) until its completion lands, so the write is unobservable
      // before then.
      std::memcpy(op.origin_dst, region.base + op.offset, op.bytes);
      break;
    }
    case RmaKind::kFetchAdd: {
      raceWindow(op.job, op.target_rank, op.window,
                 race::RaceDetector::Access::kWrite, "Runtime::applyRmaOp");
      std::int64_t old = 0;
      std::memcpy(&old, region.base + op.offset, sizeof(old));
      const std::int64_t fresh = old + op.operand;
      std::memcpy(region.base + op.offset, &fresh, sizeof(fresh));
      if (op.origin_dst != nullptr) {
        std::memcpy(op.origin_dst, &old, sizeof(old));
      }
      break;
    }
  }
  if (trace_) {
    trace_->record(cluster_.engine().now(), sim::TraceCategory::kDma, node,
                   std::string("rma ") + rmaKindName(op.kind) + " " +
                       std::to_string(op.bytes) + "B from rank " +
                       std::to_string(op.origin_rank) + " on win " +
                       std::to_string(op.window) + " of rank " +
                       std::to_string(op.target_rank) + " @" +
                       std::to_string(op.offset));
  }
  nodeState(node).rma_returns.push_back(op);
}

// ---------------------------------------------------------------------------
// P2P — completion returns to the origin nodes
// ---------------------------------------------------------------------------

void Runtime::runRmaReturns(int node) {
  NodeState& ns = nodeState(node);
  if (ns.rma_returns.empty()) return;
  raceNode(node, race::FieldGroup::kRma, race::RaceDetector::Access::kWrite,
           "Runtime::runRmaReturns");
  std::vector<RmaOpDescriptor> rets;
  rets.swap(ns.rma_returns);
  ns.rma_returns.reserve(rets.capacity());

  std::map<int, std::vector<RmaOpDescriptor>> by_origin;
  for (RmaOpDescriptor& op : rets) {
    const int origin_node = nodeOfRank(op.job, op.origin_rank);
    if (nodeEvicted(origin_node)) continue;  // no one left to complete
    by_origin[origin_node].push_back(std::move(op));
  }

  for (auto& [origin_node, group] : by_origin) {
    std::size_t bytes = config_.descriptor_bytes;
    for (const RmaOpDescriptor& op : group) {
      bytes += rmaReturnBytes(config_, op);
    }
    auto batch =
        std::make_shared<std::vector<RmaOpDescriptor>>(std::move(group));
    opStarted(node);
    const int origin = origin_node;
    core::XferRequest xfer;
    xfer.src_node = node;
    xfer.dest_nodes = {origin};
    xfer.bytes = bytes;
    xfer.droppable = true;
    xfer.deliver = [this, node, batch](int) {
      for (const RmaOpDescriptor& op : *batch) {
        completeRequest(op.job, op.origin_rank, op.request, op.target_rank,
                        op.window, op.bytes);
      }
      opFinished(node);
    };
    xfer.on_failed = [this, node, origin, batch](int) {
      if (nodeEvicted(node)) {
        // The applying node died mid-return; release the live origins (the
        // in-flight batch is invisible to the eviction scrub).
        for (const RmaOpDescriptor& op : *batch) {
          failRequest(op.job, op.origin_rank, op.request, op.target_rank,
                      op.window);
        }
        opFinished(node);
        return;
      }
      if (!nodeEvicted(origin)) {
        // The ops already applied — completion must not be re-applied, only
        // re-delivered.  Uncapped like chunk retries: the origin is alive,
        // so the return eventually lands.
        ++stats_.retransmits;
        if (trace_) {
          trace_->record(cluster_.engine().now(), sim::TraceCategory::kFault,
                         node,
                         "rma completion batch to n" + std::to_string(origin) +
                             " (" + std::to_string(batch->size()) +
                             " op(s)) lost; retrying next slice");
        }
        NodeState& my = nodeState(node);
        my.rma_returns.insert(my.rma_returns.end(), batch->begin(),
                              batch->end());
      }
      opFinished(node);
    };
    core_.xferAndSignal(std::move(xfer));
  }
}

}  // namespace bcs::bcsmpi
