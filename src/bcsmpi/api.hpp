#pragma once

// The BCS API (paper Appendix A, Figure 12).
//
// This is the layer between the BCS-MPI library and the runtime system:
// point-to-point primitives and the three basic collectives (barrier,
// broadcast, reduce) are implemented *in the NIC* (descriptors + globally
// scheduled microphases, src/bcsmpi/runtime.*), while the remaining
// collectives (scatter/gather/allgather/alltoall, vectorial and not) are
// built on top of these — in this codebase through the shared
// mpi::Comm composition layer used by BcsComm.
//
//   BCS primitive     | here
//   ------------------+------------------------------------------
//   bcs_send()        | send(blocking flag)
//   bcs_recv()        | recv(blocking flag)
//   bcs_probe()       | probe(blocking flag)
//   bcs_test()        | test(blocking flag)
//   bcs_testall()     | testall(blocking flag)
//   bcs_barrier()     | barrier()
//   bcs_bcast()       | bcast()
//   bcs_reduce()      | reduce(all flag)
//   bcs_win_create()  | winCreate()
//   bcs_put()         | put() / putAsync()
//   bcs_get()         | get() / getAsync()
//   bcs_fetch_add()   | fetchAdd() / fetchAddAsync()
//
// The one-sided flavour (DESIGN.md §11) is passive-target: the target never
// posts a matching descriptor.  Ops posted in slice t apply at the target in
// slice t's MSM microphase and the origin observes completion at the t+1
// boundary; fetch-adds on the same word linearize in canonical rank order.
//
// One BcsApi instance belongs to one application process (job, rank); its
// methods must be called from that process's fiber.

#include <cstddef>
#include <span>

#include "bcsmpi/runtime.hpp"
#include "mpi/types.hpp"

namespace bcs::bcsmpi {

/// Request handle returned by the non-blocking flavours (BCS_Request in
/// Figure 13).
struct BcsRequest {
  std::uint64_t id = 0;
  bool null() const { return id == 0; }
};

/// Window handle returned by winCreate (BCS_Win).  Window ids are per-owner:
/// remote ops name the pair (target rank, window id).
struct BcsWindow {
  int id = -1;
  bool null() const { return id < 0; }
};

class BcsApi {
 public:
  BcsApi(Runtime& runtime, int job, int rank, sim::Process& proc);

  int rank() const { return rank_; }
  int size() const;
  sim::Process& process() { return proc_; }
  Runtime& runtime() { return runtime_; }

  /// Posts a send descriptor to the Buffer Sender.  If `blocking`, suspends
  /// until the message has been transferred (the process is restarted at a
  /// slice boundary); otherwise returns a request to bcs_test() later.
  BcsRequest send(const void* buf, std::size_t bytes, int dst, int tag,
                  bool blocking);

  /// Posts a receive descriptor to the Buffer Receiver.
  BcsRequest recv(void* buf, std::size_t bytes, int src, int tag,
                  bool blocking, mpi::Status* status = nullptr);

  /// Tests for a matching incoming message (send descriptor already
  /// exchanged to this node).
  bool probe(int src, int tag, bool blocking, mpi::Status* status);

  /// Tests/waits for completion of one request.  Returns false only for a
  /// non-blocking test that found the request incomplete.  On success the
  /// request is released.
  bool test(BcsRequest& req, bool blocking, mpi::Status* status = nullptr);

  /// Tests/waits for completion of several requests (all-or-nothing for the
  /// non-blocking flavour, like MPI_Testall).
  bool testall(std::span<BcsRequest> reqs, bool blocking);

  /// Non-consuming completion peek (the raw Test-Event on the request's
  /// completion flag in NIC memory).
  bool peek(const BcsRequest& req) const;

  /// NIC-level collectives (executed by the CH / RH threads).
  void barrier();
  void bcast(void* buf, std::size_t bytes, int root);
  void reduce(bool all, const void* contrib, void* result, std::size_t count,
              mpi::Datatype dt, mpi::ReduceOp op, int root);

  /// One-sided RMA (passive-target epochs, DESIGN.md §11).  winCreate is
  /// local-only: callers must barrier() before issuing remote ops against a
  /// freshly created window, and again before reusing/freeing its memory.
  BcsWindow winCreate(void* base, std::size_t bytes);
  void put(const void* src, std::size_t bytes, int target, BcsWindow win,
           std::size_t offset, mpi::Status* status = nullptr);
  void get(void* dst, std::size_t bytes, int target, BcsWindow win,
           std::size_t offset, mpi::Status* status = nullptr);
  std::int64_t fetchAdd(int target, BcsWindow win, std::size_t offset,
                        std::int64_t delta, mpi::Status* status = nullptr);
  BcsRequest putAsync(const void* src, std::size_t bytes, int target,
                      BcsWindow win, std::size_t offset);
  BcsRequest getAsync(void* dst, std::size_t bytes, int target, BcsWindow win,
                      std::size_t offset);
  /// `old_value` must stay valid until the request completes.
  BcsRequest fetchAddAsync(int target, BcsWindow win, std::size_t offset,
                           std::int64_t delta, std::int64_t* old_value);

 private:
  Runtime& runtime_;
  int job_;
  int rank_;
  sim::Process& proc_;
};

}  // namespace bcs::bcsmpi
