// DEM / MSM / P2P microphase implementations: the Buffer Sender, Buffer
// Receiver and DMA Helper NIC threads, plus the Node Manager's
// slice-boundary process wakeups (paper §4.2-§4.3, Figure 6).

#include <algorithm>
#include <cstring>
#include <string>

#include "bcsmpi/runtime.hpp"

namespace bcs::bcsmpi {

void Runtime::wakeAtSliceStart(int node) {
  raceNode(node, race::FieldGroup::kNodeManager,
           race::RaceDetector::Access::kWrite, "Runtime::wakeAtSliceStart");
  NodeState& ns = nodeState(node);
  // Blocked processes whose operations completed during the previous slice
  // are restarted at the beginning of this one (Figure 2, step 5).
  for (const auto& [job, rank] : ns.wake_list) {
    RankState& rs = rankState(job, rank);
    if (rs.proc) rs.proc->wake();
  }
  ns.wake_list.clear();
  for (const auto& [job, rank] : ns.probe_waiters) {
    RankState& rs = rankState(job, rank);
    if (rs.proc) rs.proc->wake();
  }
  ns.probe_waiters.clear();

  // Gang scheduling (NM duty): one job owns the CPUs per slice, round-robin
  // over unfinished jobs (§5.4, option 1).
  if (config_.gang_scheduling && jobs_.size() > 1) {
    std::vector<int> runnable;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      if (jobs_[j].finished < static_cast<int>(jobs_[j].ranks.size())) {
        runnable.push_back(static_cast<int>(j));
      }
    }
    if (!runnable.empty()) {
      int scheduled =
          runnable[static_cast<std::size_t>(slice_index_ % runnable.size())];
      // Backfill (§5.4): if the slice's job has nothing runnable on this
      // node — every local process is blocked on communication — hand the
      // CPUs to a job that can use them instead of idling the slice.
      auto locally_runnable = [&](int j) {
        for (RankState& rs : jobs_[static_cast<std::size_t>(j)].ranks) {
          if (rs.node == node && rs.proc != nullptr && !rs.finished &&
              (rs.proc->computing() || !rs.proc->blocked())) {
            return true;
          }
        }
        return false;
      };
      if (!locally_runnable(scheduled)) {
        for (std::size_t k = 0; k < runnable.size(); ++k) {
          const int candidate = runnable[static_cast<std::size_t>(
              (slice_index_ + 1 + k) % runnable.size())];
          if (locally_runnable(candidate)) {
            scheduled = candidate;
            break;
          }
        }
      }
      for (std::size_t j = 0; j < jobs_.size(); ++j) {
        for (RankState& rs : jobs_[j].ranks) {
          if (rs.node != node || rs.proc == nullptr || rs.finished) continue;
          rs.proc->setComputeFrozen(static_cast<int>(j) != scheduled);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DEM — Descriptor Exchange Microphase
// ---------------------------------------------------------------------------

void Runtime::runDem(int node, std::uint64_t seq) {
  beginNodePhase(node, seq, config_.dem_floor, 0);
  wakeAtSliceStart(node);
  // The BS/BR read their descriptor FIFOs a small window after the strobe,
  // so a process the NM restarted at this very boundary can still slip its
  // next descriptor into the current slice (FIFO-read semantics of the real
  // NIC threads).
  opStarted(node);
  cluster_.engine().after(config_.dem_drain_window, [this, node] {
    drainDescriptorFifos(node);
    opFinished(node);
  });
}

void Runtime::drainDescriptorFifos(int node) {
  raceNode(node, race::FieldGroup::kBufferSender,
           race::RaceDetector::Access::kWrite,
           "Runtime::drainDescriptorFifos");
  NodeState& ns = nodeState(node);
  // Retransmissions first: they are older than anything still in the fresh
  // FIFO, so draining them first preserves posting order as far as possible.
  // The whole batch is moved out of the NIC FIFOs in two splices — no
  // element-by-element copy.
  std::vector<SendDescriptor> to_exchange;
  to_exchange.reserve(ns.bs_retry.size() + ns.bs_fresh.size());
  to_exchange.insert(to_exchange.end(),
                     std::make_move_iterator(ns.bs_retry.begin()),
                     std::make_move_iterator(ns.bs_retry.end()));
  to_exchange.insert(to_exchange.end(),
                     std::make_move_iterator(ns.bs_fresh.begin()),
                     std::make_move_iterator(ns.bs_fresh.end()));
  ns.bs_retry.clear();
  ns.bs_fresh.clear();
  while (!ns.recv_fresh.empty()) {
    RecvDescriptor r = ns.recv_fresh.front();
    ns.recv_fresh.pop_front();
    if (r.want_src != mpi::kAnySource &&
        nodeEvicted(nodeOfRank(r.job, r.want_src))) {
      // Posted after the wanted source's node was evicted: can never match.
      failRequest(r.job, r.dst_rank, r.request, r.want_src, r.want_tag);
      continue;
    }
    ns.recv_eligible.insert(r);
  }
  const int coll_processed = preprocessCollectivesCount(node);
  // One-sided ops drained from the same FIFOs, coalesced per destination
  // (rma.cpp); a no-op with no RMA in flight.
  drainRmaFifos(node);

  // NIC-thread processing time for the drained batch.
  const Duration work =
      static_cast<Duration>(to_exchange.size() + coll_processed) *
      config_.nic_desc_processing;
  if (work > 0) {
    opStarted(node);
    cluster_.engine().after(work, [this, node] { opFinished(node); });
  }

  // BS: deliver each send descriptor to the destination node's BR.  The
  // phase completes when every descriptor has landed or its loss has been
  // detected (tracked through the per-op tokens; the transfer itself is one
  // Xfer-And-Signal).  A dropped descriptor is retransmitted in the next
  // slice's DEM — never lost silently.
  for (const SendDescriptor& d : to_exchange) {
    const int dst_node = nodeOfRank(d.job, d.dst_rank);
    if (nodeEvicted(dst_node)) {
      failRequest(d.job, d.src_rank, d.request, d.dst_rank, d.tag);
      continue;
    }
    opStarted(node);
    ++stats_.descriptors_exchanged;
    core::XferRequest xfer;
    xfer.src_node = node;
    xfer.dest_nodes = {dst_node};
    xfer.bytes = config_.descriptor_bytes;
    xfer.droppable = true;
    xfer.deliver = [this, node, dst_node, d](int) {
      nodeState(dst_node).remote_sends.insert(d);
      if (trace_) {
        trace_->record(cluster_.engine().now(),
                       sim::TraceCategory::kDescriptor, dst_node,
                       "send desc from rank " + std::to_string(d.src_rank) +
                           " tag " + std::to_string(d.tag) + " (" +
                           std::to_string(d.bytes) + "B)");
      }
      opFinished(node);
    };
    xfer.on_failed = [this, node, dst_node, d](int) {
      if (nodeEvicted(node)) {  // we died while the descriptor was in flight
        opFinished(node);
        return;
      }
      if (nodeEvicted(dst_node) || d.retries >= config_.max_descriptor_retries) {
        failRequest(d.job, d.src_rank, d.request, d.dst_rank, d.tag);
      } else {
        SendDescriptor retry = d;
        ++retry.retries;
        ++stats_.retransmits;
        if (trace_) {
          trace_->record(cluster_.engine().now(), sim::TraceCategory::kFault,
                         node,
                         "desc to rank " + std::to_string(d.dst_rank) +
                             " tag " + std::to_string(d.tag) +
                             " lost; retransmit #" +
                             std::to_string(retry.retries) + " next slice");
        }
        nodeState(node).bs_retry.push_back(std::move(retry));
      }
      opFinished(node);
    };
    core_.xferAndSignal(std::move(xfer));
  }
}

int Runtime::preprocessCollectivesCount(int node) {
  // BR pre-processing (§4.4): group collective descriptors by job; once all
  // local ranks of a job posted the same generation, publish the node's
  // per-job flag (a local write to a global variable) and keep only the
  // bookkeeping needed to finish the operation locally.
  NodeState& ns = nodeState(node);
  int processed = 0;
  while (!ns.coll_fresh.empty()) {
    CollectiveDescriptor d = ns.coll_fresh.front();
    ns.coll_fresh.pop_front();
    ++processed;

    if (jobState(d.job).degraded) {
      // A collective over a job that lost ranks can never be globally
      // scheduled (the dead node's flag variable will not advance).
      failRequest(d.job, d.rank, d.request, mpi::kAnySource, mpi::kAnyTag);
      continue;
    }
    PendingCollective& pc = ns.pending_coll[d.job];
    if (!pc.active) {
      pc.active = true;
      pc.type = d.type;
      pc.gen = d.gen;
      pc.root = d.root;
      pc.count = d.count;
      pc.dt = d.dt;
      pc.op = d.op;
      pc.flagged = false;
      pc.caw_inflight = false;
      pc.executing = false;
      pc.children_left = 0;
      pc.local.clear();
    }
    if (pc.gen != d.gen || pc.type != d.type) {
      throw sim::SimError(
          "collective mismatch: ranks of job " + std::to_string(d.job) +
          " disagree on operation (gen " + std::to_string(pc.gen) + " vs " +
          std::to_string(d.gen) + ")");
    }
    pc.local.push_back(d);

    // Count the job's ranks living on this node.
    const JobState& js = jobState(d.job);
    int local_ranks = 0;
    for (int n : js.node_of_rank) {
      if (n == node) ++local_ranks;
    }
    if (static_cast<int>(pc.local.size()) == local_ranks) {
      pc.flagged = true;
      core_.writeVarLocal(node, js.coll_flag, pc.gen);
      if (trace_) {
        trace_->record(cluster_.engine().now(),
                       sim::TraceCategory::kCollective, node,
                       std::string("flag set: ") + collectiveTypeName(pc.type) +
                           " gen " + std::to_string(pc.gen));
      }
    }
  }
  return processed;
}

// ---------------------------------------------------------------------------
// MSM — Message Scheduling Microphase
// ---------------------------------------------------------------------------

void Runtime::runMsm(int node, std::uint64_t seq) {
  Duration match_cost = 0;
  matchDescriptors(node, match_cost);
  scheduleChunks(node);
  // Passive-target epoch apply: RMA ops that arrived in this slice's DEM
  // hit their windows here, in canonical order (rma.cpp).
  scheduleRmaOps(node, match_cost);
  beginNodePhase(node, seq, config_.msm_floor, match_cost);
  scheduleCollectiveQueries(node);
}

void Runtime::matchDescriptors(int node, Duration& cost) {
  raceNode(node, race::FieldGroup::kBufferReceiver,
           race::RaceDetector::Access::kWrite, "Runtime::matchDescriptors");
  NodeState& ns = nodeState(node);
  if (ns.recv_eligible.empty() || ns.remote_sends.empty()) return;
  // For each posted receive (in post order) find the matching remote send
  // descriptor with the lowest posting sequence — matching by seq rather
  // than arrival order preserves MPI's non-overtaking guarantee per
  // (source, tag) even when a retransmitted descriptor arrives a slice
  // later than a younger one.
  //
  // Only receives that can possibly match need visiting: the concrete
  // receives whose envelope has at least one arrived send (one bucket
  // lookup per distinct send envelope) plus every wildcard receive.  The
  // candidate list is sorted by posting seq, which for receives equals
  // their old insertion order, so the pass visits the same receives the
  // full quadratic scan would have matched, in the same order.
  std::vector<std::uint64_t>& cand = ns.match_scratch;
  cand.clear();
  ns.remote_sends.forEachEnvelope([&](const EnvelopeKey& key) {
    if (const auto* bucket = ns.recv_eligible.bucketFor(key)) {
      cand.insert(cand.end(), bucket->begin(), bucket->end());
    }
  });
  const auto& wilds = ns.recv_eligible.wildcards();
  cand.insert(cand.end(), wilds.begin(), wilds.end());
  std::sort(cand.begin(), cand.end());

  for (const std::uint64_t recv_seq : cand) {
    const RecvDescriptor* r = ns.recv_eligible.find(recv_seq);
    if (r == nullptr) continue;  // consumed earlier this pass
    const SendDescriptor* s = ns.remote_sends.lowestSeqMatch(*r);
    if (s == nullptr) continue;  // its send went to an earlier receive
    if (verifier_) {
      // Record the finding *before* the truncation throw below so the
      // report survives the unwound run; the throw itself is unchanged
      // (verify-off behavior is preserved exactly).
      const std::size_t eligible =
          r->want_src == mpi::kAnySource
              ? ns.remote_sends.countEligibleSources(*r)
              : 1;
      verifier_->onMatch(slice_index_, cluster_.engine().now(), node, *s, *r,
                         eligible);
    }
    if (s->bytes > r->bytes) {
      throw sim::SimError("recv truncation: rank " +
                          std::to_string(r->dst_rank) + " posted " +
                          std::to_string(r->bytes) + "B for a " +
                          std::to_string(s->bytes) + "B message");
    }
    cost += config_.nic_match_cost;
    ++stats_.matches;
    MatchDescriptor m;
    m.send = ns.remote_sends.take(s->seq);
    m.recv = ns.recv_eligible.take(recv_seq);
    ns.match_queue.push_back(std::move(m));
  }
}

void Runtime::scheduleChunks(int node) {
  raceNode(node, race::FieldGroup::kDma, race::RaceDetector::Access::kWrite,
           "Runtime::scheduleChunks");
  NodeState& ns = nodeState(node);
  std::size_t budget = config_.slice_byte_budget;
  // One chunk per message per slice (§4.3): the first chunk this slice,
  // the remainder in the following slices.  Transfers already in progress
  // sit at the queue front and therefore keep their priority.
  for (auto it = ns.match_queue.begin();
       it != ns.match_queue.end() && budget > 0;) {
    MatchDescriptor& m = *it;
    const std::size_t remaining = m.send.bytes - m.offset;
    const std::size_t sched =
        std::min({remaining, config_.chunk_bytes, budget});
    if (sched == 0 && remaining > 0) break;  // budget exhausted

    GetOp op;
    op.src_node = nodeOfRank(m.send.job, m.send.src_rank);
    op.src = m.send.data + m.offset;
    op.dst = m.recv.data + m.offset;
    op.bytes = sched;
    op.final_chunk = (m.offset + sched == m.send.bytes);
    op.job = m.send.job;
    op.src_rank = m.send.src_rank;
    op.dst_rank = m.recv.dst_rank;
    op.tag = m.send.tag;
    op.message_bytes = m.send.bytes;
    op.send_req = m.send.request;
    op.recv_req = m.recv.request;
    ns.slice_gets.push_back(op);

    budget -= sched;
    m.offset += sched;
    if (m.offset == m.send.bytes) {
      it = ns.match_queue.erase(it);
    } else {
      ++it;  // one chunk per slice: move on to the next message
    }
  }
}

void Runtime::scheduleCollectiveQueries(int node) {
  NodeState& ns = nodeState(node);
  for (auto& [job, pc] : ns.pending_coll) {
    if (!pc.active || !pc.flagged || pc.caw_inflight || pc.executing) continue;
    JobState& js = jobState(job);
    // Only the job master's node runs the scheduling query (§4.4: all other
    // collective descriptors were discarded at pre-processing).
    if (node != js.node_of_rank[0]) continue;
    if (core_.readVar(node, js.coll_sched) >= pc.gen) continue;  // scheduled
    pc.caw_inflight = true;
    opStarted(node);
    core::CompareAndWriteRequest req;
    req.src_node = node;
    req.nodes = js.nodes;
    req.var = js.coll_flag;
    req.op = core::CmpOp::kGE;
    req.value = pc.gen;
    req.do_write = true;
    req.write_var = js.coll_sched;
    req.write_value = pc.gen;
    const int job_id = job;
    core_.compareAndWriteAsync(std::move(req), [this, node, job_id](bool ok) {
      NodeState& my = nodeState(node);
      auto it = my.pending_coll.find(job_id);
      if (it != my.pending_coll.end()) it->second.caw_inflight = false;
      if (ok) ++stats_.collectives_scheduled;
      opFinished(node);
    });
  }
}

// ---------------------------------------------------------------------------
// P2P — Point-to-point Microphase (DMA Helper)
// ---------------------------------------------------------------------------

void Runtime::runP2p(int node, std::uint64_t seq) {
  raceNode(node, race::FieldGroup::kDma, race::RaceDetector::Access::kWrite,
           "Runtime::runP2p");
  NodeState& ns = nodeState(node);
  std::vector<GetOp> gets;
  gets.swap(ns.slice_gets);
  // The swapped-out vector returns its capacity at the end of the phase (a
  // retransmission push_back mid-phase may allocate; steady state does not).
  ns.slice_gets.reserve(gets.capacity());
  beginNodePhase(node, seq, 0,
                 static_cast<Duration>(gets.size() + ns.rma_returns.size()) *
                     config_.nic_desc_processing);
  issueGets(node, gets);
  // RMA completion returns share the transmission phase with the DH gets.
  runRmaReturns(node);
}

void Runtime::issueGets(int node, const std::vector<GetOp>& gets) {
  for (const GetOp& op : gets) {
    const ProgressKey key{op.job, op.dst_rank, op.recv_req};
    if (nodeEvicted(op.src_node)) {
      // Source died between scheduling and this phase.
      failRequest(op.job, op.dst_rank, op.recv_req, op.src_rank, op.tag);
      nodeState(node).chunk_progress.erase(key);
      continue;
    }
    opStarted(node);
    ++stats_.chunks_transferred;
    // The DH reads directly from the source process's memory — a one-sided
    // get, no intervention from either application process (Figure 6,
    // step 9).
    core::XferRequest xfer;
    xfer.src_node = op.src_node;
    xfer.dest_nodes = {node};
    xfer.bytes = op.bytes;
    xfer.droppable = true;
    xfer.deliver = [this, node, op, key](int) {
      std::memcpy(op.dst, op.src, op.bytes);
      if (trace_) {
        trace_->record(cluster_.engine().now(), sim::TraceCategory::kDma,
                       node,
                       "get " + std::to_string(op.bytes) + "B from rank " +
                           std::to_string(op.src_rank) +
                           (op.final_chunk ? " (final)" : ""));
      }
      // Completion is by byte count, not by the final-chunk flag: under
      // retransmission an earlier chunk can land *after* the final one.
      NodeState& my = nodeState(node);
      std::size_t& got = my.chunk_progress[key];
      got += op.bytes;
      if (got >= op.message_bytes) {
        my.chunk_progress.erase(key);
        completeRequest(op.job, op.dst_rank, op.recv_req, op.src_rank, op.tag,
                        op.message_bytes);
        completeRequest(op.job, op.src_rank, op.send_req, op.dst_rank, op.tag,
                        op.message_bytes);
      }
      opFinished(node);
    };
    xfer.on_failed = [this, node, op, key](int) {
      if (nodeEvicted(node)) {
        // We (the receiving node) died mid-flight; release the live sender.
        failRequest(op.job, op.src_rank, op.send_req, op.dst_rank, op.tag);
        opFinished(node);
        return;
      }
      if (nodeEvicted(op.src_node)) {
        failRequest(op.job, op.dst_rank, op.recv_req, op.src_rank, op.tag);
        nodeState(node).chunk_progress.erase(key);
      } else {
        // Random loss: re-issue the same get in the next slice's P2P.
        ++stats_.retransmits;
        if (trace_) {
          trace_->record(cluster_.engine().now(), sim::TraceCategory::kFault,
                         node,
                         "chunk " + std::to_string(op.bytes) +
                             "B from rank " + std::to_string(op.src_rank) +
                             " lost; retrying next slice");
        }
        nodeState(node).slice_gets.push_back(op);
      }
      opFinished(node);
    };
    core_.xferAndSignal(std::move(xfer));
  }
}

}  // namespace bcs::bcsmpi
