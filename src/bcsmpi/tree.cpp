// Hierarchical control plane (DESIGN.md §7) — active iff
// BcsMpiConfig::tree_fanout > 0.
//
// The flat Strobe Sender touches O(nodes) control messages per microphase:
// one multicast leg per Strobe Receiver plus a Compare-And-Write poll over
// the whole live set.  At 512+ nodes that serializes the whole slice behind
// the root's NIC.  Here the strobe set is a two-level k-ary tree instead:
//
//   root SS ── microstrobe ──> rack SS (one per fanout-sized rack)
//                              relays to its members (aggregate-completion
//                              multicast: ONE engine event per rack),
//                              runs the local half of the scheduling
//                              microphases, and coalesces its members'
//                              completions into ONE upward ack.
//
// So the root touches O(racks) messages per microphase and never polls —
// phase transitions are push-driven by the coalesced acks.  Failover reuses
// the epoch-fenced Compare-And-Write election per level: a dead rack SS is
// replaced from within its rack, a dead root from among the rack SSes.
//
// Timing inside a rack is deliberately coarser than flat mode (members
// share one floor event and one DEM drain event per rack instead of one
// timer each) — that is the point of the aggregation.  Tree-mode schedules
// are therefore pinned by their own golden traces; flat mode
// (tree_fanout = 0) bypasses every function in this file and stays
// byte-identical to the historical goldens.

#include "bcsmpi/runtime.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace bcs::bcsmpi {

// ---------------------------------------------------------------------------
// Downward path: root -> rack SSes -> members
// ---------------------------------------------------------------------------

void Runtime::strobePhaseTree(Phase p, std::uint64_t seq) {
  tree_phase_ = p;
  tree_phase_open_ = true;
  std::vector<int> ss_nodes;
  ss_nodes.reserve(static_cast<std::size_t>(sstree_.rackCount()));
  for (int r = 0; r < sstree_.rackCount(); ++r) {
    if (sstree_.members(r).empty()) continue;
    const int ss = sstree_.ss(r);
    if (ss != strobe_node_) ss_nodes.push_back(ss);
  }
  const bool self_rack = strobe_node_ < cluster_.numComputeNodes();
  root_msgs_slice_ +=
      static_cast<std::uint64_t>(ss_nodes.size()) + (self_rack ? 1u : 0u);
  const std::uint64_t epoch = control_epoch_;
  if (!ss_nodes.empty()) {
    core::XferRequest strobe;
    strobe.src_node = strobe_node_;
    strobe.dest_nodes = std::move(ss_nodes);
    strobe.bytes = 16;  // phase id + sequence number
    strobe.deliver = [this, p, seq, epoch](int node) {
      if (epoch != control_epoch_) return;
      onRackStrobe(sstree_.rackOf(node), p, seq);
    };
    core_.xferAndSignal(std::move(strobe));
  }
  if (self_rack) {
    // A backup root is itself a compute node and (by election) the SS of its
    // own rack; it hears the strobe through NIC-local memory.
    const int rack = sstree_.rackOf(strobe_node_);
    cluster_.engine().at(cluster_.engine().now(), [this, p, seq, epoch, rack] {
      if (epoch != control_epoch_) return;
      onRackStrobe(rack, p, seq);
    });
  }
}

void Runtime::onRackStrobe(int rack, Phase p, std::uint64_t seq) {
  const std::vector<int>& members = sstree_.members(rack);
  if (members.empty()) return;
  const int ss = sstree_.ss(rack);
  if (nodeEvicted(ss)) return;  // strobe raced an eviction
  // A strobe reaching the rack SS is proof of root life.
  NodeState& ss_ns = nodeState(ss);
  ss_ns.last_strobe = cluster_.engine().now();
  if (!ss_ns.watchdog_armed) {
    armWatchdogAt(ss, ss_ns.last_strobe + watchdogTimeout());
  }
  TreeRackState& rk = tree_racks_[static_cast<std::size_t>(rack)];
  if (seq < rk.seq) return;  // stale duplicate from an abandoned recovery
  if (seq == rk.seq) {
    // Recovery re-strobe of a microphase already relayed: skip the relay and
    // re-walk the members directly — the fan-out is idempotent.
    rackFanout(rack, p, seq);
    return;
  }
  rk.seq = seq;
  std::vector<int> dests;
  dests.reserve(members.size());
  for (int m : members) {
    if (m != ss) dests.push_back(m);
  }
  if (dests.empty()) {
    cluster_.engine().at(cluster_.engine().now(),
                         [this, rack, p, seq] { rackFanout(rack, p, seq); });
    return;
  }
  // Relay to the members with aggregate completion only: no per-destination
  // callback means the fabric schedules ONE engine event for the whole rack
  // (see XferRequest::on_all), which is what makes the fan-out O(1) in
  // events instead of O(members).
  core::XferRequest relay;
  relay.src_node = ss;
  relay.dest_nodes = std::move(dests);
  relay.bytes = 16;
  relay.on_all = [this, rack, p, seq] { rackFanout(rack, p, seq); };
  core_.xferAndSignal(std::move(relay));
}

void Runtime::rackFanout(int rack, Phase p, std::uint64_t seq) {
  TreeRackState& rk = tree_racks_[static_cast<std::size_t>(rack)];
  if (seq != rk.seq) return;  // superseded while the relay was in flight
  const std::vector<int>& members = sstree_.members(rack);
  if (members.empty()) return;
  const SimTime now = cluster_.engine().now();
  if (cluster_.faults()->nodeDown(sstree_.ss(rack), now)) {
    // The rack SS died mid-relay; the member-level watchdogs will promote a
    // successor, whose re-strobe re-enters here.
    return;
  }
  Duration max_busy = 0;
  int inited = 0;
  int pending = 0;
  bool any_drain = false;
  for (int m : members) {
    NodeState& ns = nodeState(m);
    if (ns.phase_seq >= seq) {
      // Already in (or past) this phase — a recovery re-strobe re-enters
      // here with members that hold tokens from the original strobe; they
      // stay pending until their ops drain.
      if (ns.phase_seq == seq && ns.outstanding > 0) ++pending;
      continue;
    }
    if (cluster_.faults()->nodeDown(m, now)) {
      // A hung member is skipped, not waited for: the rack acks without
      // it and heartbeat eviction (or a rejoin) repairs it later.
      continue;
    }
    ns.last_strobe = now;
    if (!ns.watchdog_armed) armWatchdogAt(m, now + watchdogTimeout());
    if (treeMemberIdle(ns, p)) {
      // Idle fast path: the member observes the strobe (sequence number
      // and watchdog above) but holds no completion tokens — there is no
      // process to wake, nothing to drain, match, get or execute, so the
      // phase-done write and the token bookkeeping would be pure
      // overhead.  In the sparse steady state this is every member, and
      // skipping it is what keeps a rack's per-slice cost O(messages)
      // instead of O(members).
      ns.phase_seq = seq;
      ns.outstanding = 0;
      ns.tree_floor = false;
      ns.tree_drain = false;
      continue;
    }
    max_busy = std::max(max_busy, treeInitMember(m, p, seq));
    // Counted pending unconditionally: the floor token taken in
    // treeInitMember can only be released by a later engine event, never
    // within this call.
    ++inited;
    ++pending;
    if (p == Phase::kDem) any_drain = true;
  }
  rk.pending = pending;
  if (any_drain) {
    // ONE descriptor-FIFO drain event for the whole rack (flat mode arms one
    // per node).
    cluster_.engine().after(config_.dem_drain_window,
                            [this, rack, seq] { treeDrain(rack, seq); });
  }
  if (inited > 0) {
    // ONE phase-floor event for the whole rack, at the slowest member's
    // busy time.  An all-idle rack schedules nothing and acks immediately
    // below: the phase floor models NIC descriptor processing, and an idle
    // NIC has no descriptors to process.
    if (max_busy <= 0) {
      cluster_.engine().at(now,
                           [this, rack, seq] { treeReleaseFloor(rack, seq); });
    } else {
      cluster_.engine().after(
          max_busy, [this, rack, seq] { treeReleaseFloor(rack, seq); });
    }
  }
  if (rk.pending == 0) sendRackAck(rack, seq);
}

bool Runtime::treeMemberIdle(const NodeState& ns, Phase p) const {
  // An entry in pending_coll outlives its operation (active flips false on
  // completion), so emptiness of the map is the wrong test — scan for an
  // actionable entry instead.  Conservative on purpose: any active
  // collective marks the MSM/BBM/RM phases busy without re-deriving the
  // scheduling preconditions those phases check themselves.
  const auto any_collective = [&ns] {
    for (const auto& [job, pc] : ns.pending_coll) {
      if (pc.active && !pc.executing) return true;
    }
    return false;
  };
  switch (p) {
    case Phase::kDem:
      return ns.wake_list.empty() && ns.bs_retry.empty() &&
             ns.bs_fresh.empty() && ns.recv_fresh.empty() &&
             ns.coll_fresh.empty() && ns.rma_fresh.empty() &&
             ns.rma_retry.empty();
    case Phase::kMsm:
      // Mirrors matchDescriptors' own early-out (matching needs both sides)
      // plus the chunk scheduler's queue, the RMA epoch apply and the
      // collective CAW query.
      return (ns.recv_eligible.empty() || ns.remote_sends.empty()) &&
             ns.match_queue.empty() && ns.rma_inbound.empty() &&
             !any_collective();
    case Phase::kP2p:
      return ns.slice_gets.empty() && ns.rma_returns.empty();
    case Phase::kBbm:
    case Phase::kRm:
      return !any_collective();
  }
  return false;
}

Duration Runtime::treeInitMember(int node, Phase p, std::uint64_t seq) {
  NodeState& ns = nodeState(node);
  ns.phase_seq = seq;
  ns.outstanding = 0;
  // The NIC-thread floor token, released by the rack-shared floor event.
  opStarted(node);
  ns.tree_floor = true;
  switch (p) {
    case Phase::kDem: {
      wakeAtSliceStart(node);
      // FIFO-drain token, released by the rack-shared drain event.
      opStarted(node);
      ns.tree_drain = true;
      return config_.dem_floor;
    }
    case Phase::kMsm: {
      Duration match_cost = 0;
      matchDescriptors(node, match_cost);
      scheduleChunks(node);
      scheduleRmaOps(node, match_cost);
      scheduleCollectiveQueries(node);
      return std::max(config_.msm_floor, match_cost);
    }
    case Phase::kP2p: {
      std::vector<GetOp> gets;
      gets.swap(ns.slice_gets);
      ns.slice_gets.reserve(gets.capacity());
      const Duration busy =
          static_cast<Duration>(gets.size() + ns.rma_returns.size()) *
          config_.nic_desc_processing;
      issueGets(node, gets);
      runRmaReturns(node);
      return busy;
    }
    case Phase::kBbm: {
      std::vector<int> ready_jobs;
      const int ops = collectReadyCollectives(node, /*reduce_phase=*/false,
                                              ready_jobs);
      for (int job : ready_jobs) executeBroadcast(node, job);
      return static_cast<Duration>(ops) * config_.nic_desc_processing;
    }
    case Phase::kRm: {
      std::vector<int> ready_jobs;
      const int ops = collectReadyCollectives(node, /*reduce_phase=*/true,
                                              ready_jobs);
      for (int job : ready_jobs) executeReduce(node, job);
      return static_cast<Duration>(ops) * config_.nic_desc_processing;
    }
  }
  return 0;
}

void Runtime::treeReleaseFloor(int rack, std::uint64_t seq) {
  for (int m : sstree_.members(rack)) {
    NodeState& ns = nodeState(m);
    if (ns.tree_floor && ns.phase_seq == seq) {
      ns.tree_floor = false;
      opFinished(m);
    }
  }
}

void Runtime::treeDrain(int rack, std::uint64_t seq) {
  for (int m : sstree_.members(rack)) {
    NodeState& ns = nodeState(m);
    if (ns.tree_drain && ns.phase_seq == seq) {
      ns.tree_drain = false;
      drainDescriptorFifos(m);
      opFinished(m);
    }
  }
}

// ---------------------------------------------------------------------------
// Upward path: members -> rack SS -> root
// ---------------------------------------------------------------------------

void Runtime::treeMemberDone(int node) {
  if (nodeEvicted(node)) return;
  const int rack = sstree_.rackOf(node);
  TreeRackState& rk = tree_racks_[static_cast<std::size_t>(rack)];
  if (nodeState(node).phase_seq != rk.seq) return;  // stale completion
  if (rk.pending > 0 && --rk.pending == 0 && rk.acked_seq < rk.seq) {
    sendRackAck(rack, rk.seq);
  }
}

void Runtime::sendRackAck(int rack, std::uint64_t seq) {
  const int ss = sstree_.ss(rack);
  const SimTime now = cluster_.engine().now();
  if (ss < 0 || nodeEvicted(ss) || cluster_.faults()->nodeDown(ss, now)) {
    return;
  }
  ++stats_.coalesced_acks;
  const std::uint64_t epoch = control_epoch_;
  if (ss == strobe_node_) {
    // The root heads this rack itself; the ack is a NIC-local write.
    cluster_.engine().at(now, [this, rack, seq, epoch] {
      if (epoch != control_epoch_) return;
      onRackAck(rack, seq);
    });
    return;
  }
  core::XferRequest ack;
  ack.src_node = ss;
  ack.dest_nodes = {strobe_node_};
  // Coalesced completion plus the rack's descriptor summary for the global
  // half of the MSM — one message upward per rack per microphase.
  ack.bytes = 64;
  ack.deliver = [this, rack, seq, epoch](int) {
    if (epoch != control_epoch_) return;
    onRackAck(rack, seq);
  };
  core_.xferAndSignal(std::move(ack));
}

void Runtime::onRackAck(int rack, std::uint64_t seq) {
  if (stop_requested_) return;
  if (seq != phase_seq_) return;  // ack for an abandoned microphase
  TreeRackState& rk = tree_racks_[static_cast<std::size_t>(rack)];
  if (rk.acked_seq >= seq) return;  // duplicate (recovery re-ack)
  rk.acked_seq = seq;
  ++root_msgs_slice_;
  maybeTreePhaseDone();
}

void Runtime::maybeTreePhaseDone() {
  if (!tree_phase_open_ || stop_requested_ || phase_seq_ == 0) return;
  for (int r = 0; r < sstree_.rackCount(); ++r) {
    if (sstree_.members(r).empty()) continue;
    if (tree_racks_[static_cast<std::size_t>(r)].acked_seq < phase_seq_) {
      return;
    }
  }
  tree_phase_open_ = false;
  if (tree_recovering_) {
    // Every live rack re-acked the interrupted microphase: the machine is
    // quiescent.  Abandon the rest of the slice and resume on the grid,
    // mirroring the flat recoverPhase semantics.
    tree_recovering_ = false;
    resumeStrobe();
    return;
  }
  phaseComplete(tree_phase_);
}

// ---------------------------------------------------------------------------
// Failover: per-level elections and tree repair
// ---------------------------------------------------------------------------

void Runtime::treeRecover() {
  if (stop_requested_ || live_compute_nodes_.empty()) {
    strobing_ = false;
    return;
  }
  if (phase_seq_ == 0) {
    // Nothing was ever strobed; just take over the grid.
    resumeStrobe();
    return;
  }
  // The promoted root never saw the old root's ack bookkeeping: restart the
  // collection from scratch and re-strobe the interrupted microphase.  The
  // relays and fan-outs are idempotent (members already at this seq are not
  // re-initialized; racks re-ack from their own state), so this is a pure
  // global quiesce.
  if (trace_) {
    trace_->record(cluster_.engine().now(), sim::TraceCategory::kFailover,
                   strobe_node_,
                   "re-strobing microphase seq " + std::to_string(phase_seq_) +
                       " to re-collect rack acks");
  }
  tree_recovering_ = true;
  for (TreeRackState& rk : tree_racks_) rk.acked_seq = 0;
  strobePhaseTree(tree_phase_, phase_seq_);
}

void Runtime::onWatchdogTree(int node) {
  const SimTime now = cluster_.engine().now();
  const int rack = sstree_.rackOf(node);
  const int ss = sstree_.ss(rack);
  if (ss == node) {
    // Rack SSes hear the root directly: silence means the root is suspect.
    // The deterministic claim leader is the SS of the lowest live rack.
    if (node != sstree_.firstLiveRackSs()) {
      armWatchdogAt(node, now + watchdogTimeout());
      return;
    }
    beginTreeElection(node);
    return;
  }
  // A plain member is strobed by its rack SS.  While the SS is up the
  // silence is the root's problem — the SS-level ladder above owns that;
  // keep watching.  Only a dead rack SS makes a member act.
  if (!cluster_.faults()->nodeDown(ss, now)) {
    armWatchdogAt(node, now + watchdogTimeout());
    return;
  }
  int leader = -1;
  for (int m : sstree_.members(rack)) {
    if (m != ss) {
      leader = m;
      break;
    }
  }
  if (node != leader) {
    armWatchdogAt(node, now + watchdogTimeout());
    return;
  }
  beginTreeElection(node);
}

void Runtime::beginTreeElection(int node) {
  if (election_inflight_) {
    armWatchdogAt(node, cluster_.engine().now() + watchdogTimeout());
    return;
  }
  election_inflight_ = true;
  const int rack = sstree_.rackOf(node);
  const bool was_rack_ss = sstree_.ss(rack) == node;
  if (trace_) {
    trace_->record(cluster_.engine().now(), sim::TraceCategory::kFailover,
                   node,
                   std::string("suspecting ") +
                       (was_rack_ss ? "root" : "rack") +
                       " Strobe Sender death; claiming epoch " +
                       std::to_string(control_epoch_ + 1));
  }
  // One global epoch guards both levels: rack-SS replacement and root
  // replacement serialize through the same Compare-And-Write claim, so two
  // simultaneous failures (rack SS + root) cannot elect in parallel.
  core::CompareAndWriteRequest req;
  req.src_node = node;
  req.nodes = live_compute_nodes_;
  req.var = epoch_var_;
  req.op = core::CmpOp::kEQ;
  req.value = static_cast<std::int64_t>(control_epoch_);
  req.do_write = true;
  req.write_var = epoch_var_;
  req.write_value = static_cast<std::int64_t>(control_epoch_ + 1);
  core_.compareAndWriteAsync(
      std::move(req), [this, node, rack, was_rack_ss](bool claimed) {
        if (!claimed) {
          if (trace_) {
            trace_->record(cluster_.engine().now(),
                           sim::TraceCategory::kFailover, node,
                           "epoch claim failed; retrying");
          }
          cluster_.engine().after(config_.election_retry_interval,
                                  [this, node] {
                                    election_inflight_ = false;
                                    onWatchdog(node);
                                  });
          return;
        }
        election_inflight_ = false;
        ++control_epoch_;
        ++stats_.elections;
        const SimTime now = cluster_.engine().now();
        if (!was_rack_ss) {
          const int old_ss = sstree_.ss(rack);
          sstree_.setSs(rack, node);
          if (trace_) {
            trace_->record(now, sim::TraceCategory::kFailover, node,
                           "promoted to rack Strobe Sender of rack " +
                               std::to_string(rack) + " (was n" +
                               std::to_string(old_ss) + "), epoch " +
                               std::to_string(control_epoch_));
          }
        }
        const bool root_dead =
            cluster_.faults()->nodeDown(strobe_node_, now) ||
            (strobe_node_ < cluster_.numComputeNodes() &&
             nodeEvicted(strobe_node_));
        if (was_rack_ss || root_dead) {
          const int old_root = strobe_node_;
          strobe_node_ = node;
          sstree_.setSs(rack, node);  // the root heads its own rack
          if (trace_) {
            trace_->record(now, sim::TraceCategory::kFailover, node,
                           "elected backup root Strobe Sender (was n" +
                               std::to_string(old_root) + "), epoch " +
                               std::to_string(control_epoch_) +
                               "; recovering phase seq " +
                               std::to_string(phase_seq_));
          }
          if (failover_handler_) failover_handler_(node, control_epoch_);
        }
        strobing_ = true;
        treeRecover();
      });
}

void Runtime::treeHandleEviction(int node) {
  const int rack = sstree_.rackOf(node);
  TreeRackState& rk = tree_racks_[static_cast<std::size_t>(rack)];
  // Whether the dead member was gating the current microphase must be read
  // BEFORE the membership edit (its NodeState is scrubbed later, at the
  // boundary, but the pending count is rack bookkeeping).
  const NodeState& ns = nodeState(node);
  const bool counted =
      rk.seq == phase_seq_ && ns.phase_seq == rk.seq && ns.outstanding > 0;
  const storm::SsTree::EvictResult ev = sstree_.evict(node);
  if (!ev.removed) return;
  if (counted && rk.pending > 0) --rk.pending;
  if (ev.rack_empty) {
    if (trace_) {
      trace_->record(cluster_.engine().now(), sim::TraceCategory::kFailover,
                     node,
                     "rack " + std::to_string(rack) + " lost its last member");
    }
    // An empty rack no longer gates phase completion.
    maybeTreePhaseDone();
    return;
  }
  if (ev.ss_changed) {
    const int new_ss = sstree_.ss(rack);
    if (trace_) {
      trace_->record(cluster_.engine().now(), sim::TraceCategory::kFailover,
                     new_ss,
                     "promoted to rack Strobe Sender of rack " +
                         std::to_string(rack) + " (n" + std::to_string(node) +
                         " evicted)");
    }
    // Re-strobe the rack under its successor so the in-flight microphase
    // can still finish (the fan-out is idempotent; the members keep their
    // tokens).
    if (strobing_ && !stop_requested_ && tree_phase_open_ &&
        rk.acked_seq < phase_seq_) {
      const Phase p = tree_phase_;
      const std::uint64_t seq = phase_seq_;
      const std::uint64_t epoch = control_epoch_;
      if (new_ss == strobe_node_) {
        cluster_.engine().at(cluster_.engine().now(),
                             [this, rack, p, seq, epoch] {
                               if (epoch != control_epoch_) return;
                               onRackStrobe(rack, p, seq);
                             });
      } else if (!cluster_.faults()->nodeDown(strobe_node_,
                                              cluster_.engine().now())) {
        ++root_msgs_slice_;
        core::XferRequest restrobe;
        restrobe.src_node = strobe_node_;
        restrobe.dest_nodes = {new_ss};
        restrobe.bytes = 16;
        restrobe.deliver = [this, rack, p, seq, epoch](int) {
          if (epoch != control_epoch_) return;
          onRackStrobe(rack, p, seq);
        };
        core_.xferAndSignal(std::move(restrobe));
      }
    }
    return;
  }
  if (counted && rk.pending == 0 && tree_phase_open_ &&
      rk.acked_seq < rk.seq) {
    // The dead node was the last member gating the rack: ack on its behalf.
    sendRackAck(rack, rk.seq);
  }
}

void Runtime::treeHandleRejoin(int node) {
  const int rack = sstree_.rackOf(node);
  const bool revived = sstree_.rejoin(node);
  if (revived) {
    // The rack was empty (it stopped gating phases when its last member
    // left); bring its bookkeeping up to date so it does not gate the
    // microphase already in flight.  The node's scrubbed NodeState has
    // phase_seq 0, so the next strobe initializes it normally.
    TreeRackState& rk = tree_racks_[static_cast<std::size_t>(rack)];
    rk.seq = phase_seq_;
    rk.acked_seq = phase_seq_;
    rk.pending = 0;
  }
}

// ---------------------------------------------------------------------------
// Verification
// ---------------------------------------------------------------------------

void Runtime::treeAudit(verify::Verifier& v, SimTime now) {
  // Rack walk in index order (deterministic report order).  A rack whose
  // coalesced ack never reached the root — or that still counts busy
  // members — is a leaked ack buffer; report it with rack provenance.
  for (int r = 0; r < sstree_.rackCount(); ++r) {
    const std::vector<int>& members = sstree_.members(r);
    if (members.empty()) continue;
    const TreeRackState& rk = tree_racks_[static_cast<std::size_t>(r)];
    if (rk.acked_seq >= phase_seq_ && rk.pending == 0) continue;
    std::string detail =
        "rack " + std::to_string(r) + " (SS n" +
        std::to_string(sstree_.ss(r)) + "): coalesced ack for microphase seq " +
        std::to_string(phase_seq_) + " never reached the root (acked " +
        std::to_string(rk.acked_seq) + ", " + std::to_string(rk.pending) +
        " member(s) pending";
    for (int m : members) {
      if (nodeState(m).outstanding > 0) detail += " n" + std::to_string(m);
    }
    detail += ")";
    v.addFinding(verify::Category::kLeakedAck, now, slice_index_,
                 sstree_.ss(r), /*job=*/-1, /*rank=*/-1, detail);
  }
}

}  // namespace bcs::bcsmpi
