#pragma once

// Tunables of the BCS-MPI runtime (paper §4, §5.1).

#include <cstddef>

#include "sim/time.hpp"

namespace bcs::bcsmpi {

using sim::Duration;

struct BcsMpiConfig {
  /// Length of the global time slice.  The paper uses 500 us everywhere
  /// (§5.1); bench_ablation_timeslice sweeps this.
  Duration time_slice = sim::usec(500);

  /// Minimum durations of the two global-message-scheduling microphases.
  /// "In the current implementation, these two phases take approximately
  /// 125 us" (§4.3) — the floors model the fixed cost of strobing, FIFO
  /// draining and queue walks even on idle slices.
  Duration dem_floor = sim::usec(60);
  Duration msm_floor = sim::usec(65);

  /// How often the Strobe Sender re-issues its Compare-And-Write when
  /// polling for microphase completion.
  Duration strobe_poll_interval = sim::usec(5);

  /// Slice watchdog: a Strobe Receiver that hears no microstrobe for
  /// `watchdog_slices` × time_slice suspects the Strobe Sender died and
  /// enters the failover election (lowest-id live compute node promotes
  /// itself to backup Strobe Sender).  0 disables the watchdog.
  int watchdog_slices = 8;

  /// Back-off before a backup Strobe Sender candidate retries a failed
  /// epoch claim (the Compare-And-Write either lost to a concurrent claim
  /// or found part of the quorum down).
  Duration election_retry_interval = sim::usec(50);

  /// The BS/BR drain their shared-memory descriptor FIFOs this long after
  /// the DEM strobe arrives; descriptors posted inside the window (e.g. by
  /// a process the NM just restarted at the slice boundary) are still
  /// scheduled in the current slice, exactly like a FIFO read in the real
  /// NIC thread.  Must stay below dem_floor.
  Duration dem_drain_window = sim::usec(20);

  /// Cost for an application process to post a descriptor into the NIC
  /// shared-memory FIFO (no system call, §4.5).
  Duration post_overhead = sim::usec(0.6);

  /// Wire size of one communication descriptor.
  std::size_t descriptor_bytes = 128;

  /// Bound on per-descriptor retransmissions after network loss.  A
  /// descriptor that fails this many times has its request completed in
  /// error rather than retried forever (the slice-per-retry cadence makes
  /// runaway retry loops expensive and easy to bound).
  int max_descriptor_retries = 64;

  /// NIC-thread processing cost per descriptor (BS dispatch / BR intake).
  Duration nic_desc_processing = sim::usec(0.3);

  /// Wire size of one one-sided operation record inside a coalesced RMA
  /// batch descriptor (DESIGN.md §11).  Many small puts to one destination
  /// share a single descriptor_bytes header per slice; each op adds only
  /// this much plus its payload.
  std::size_t rma_op_bytes = 32;

  /// NIC-thread cost to apply one one-sided op to the target window during
  /// the MSM (bounds check + copy/add dispatch).
  Duration nic_rma_op_cost = sim::usec(0.4);

  /// Coalesce all RMA ops bound for one destination node into a single
  /// batch descriptor per slice (Carver et al., DESIGN.md §11).  Off = one
  /// full descriptor_bytes exchange per op; epoch semantics are identical
  /// either way, only the modeled wire cost changes.
  bool rma_coalescing = true;

  /// BR cost to match one send/receive descriptor pair and build the
  /// matching descriptor.
  Duration nic_match_cost = sim::usec(0.8);

  /// Largest chunk of one message transferred in a single time slice; the
  /// BR splits bigger messages across consecutive slices (§4.3).
  std::size_t chunk_bytes = 64 * 1024;

  /// Per-node byte budget the BR may schedule into one point-to-point
  /// microphase (roughly bandwidth * transmission-phase length).
  std::size_t slice_byte_budget = 80 * 1024;

  /// Per-element cost of the Reduce Helper's softfloat arithmetic on the
  /// FPU-less NIC processor (§4.4).
  Duration nic_reduce_per_element = sim::usec(0.8);

  /// Bring-up cost of the BCS-MPI runtime system (NIC thread forking, NIC
  /// memory setup, STORM handshakes).  The paper's IS discussion (§5.3)
  /// attributes IS's ~10% slowdown on a ~12 s run largely to this.
  Duration runtime_init_overhead = sim::msec(800);

  /// Hierarchical Strobe-Sender tree (DESIGN.md §7).  0 = the paper's flat
  /// control plane: one Strobe Sender multicasts every microstrobe to every
  /// compute node and polls the full set with Compare-And-Write.  A positive
  /// value groups compute nodes into racks of `tree_fanout` consecutive
  /// indices; a rack-level SS relays each microstrobe to its members and
  /// coalesces their completions into one upward ack, so the root only
  /// touches O(racks) control messages per microphase instead of O(nodes).
  /// Flat mode is byte-identical to the pre-tree runtime (the goldens pin
  /// it); tree mode is replay-deterministic with its own goldens.
  int tree_fanout = 0;

  /// Round-robin gang scheduling of multiple jobs at slice granularity
  /// (§5.4, first mitigation option).
  bool gang_scheduling = false;

  /// Attach the dynamic protocol verifier (src/verify): collective-color
  /// divergence, truncated receives, wildcard-receive races, and a finalize
  /// audit of leaked descriptors/requests/retransmission state.  A pure
  /// observer — a clean run traces byte-identically with it on or off, and
  /// every hot-path hook is a single pointer null check when off.
  bool verify = false;

  /// Retention cap on verifier findings; the per-category counters keep
  /// counting past it (pathological runs stay bounded in memory).
  std::size_t verify_max_findings = 256;

  /// Attach the deterministic shard-ownership race detector (src/race,
  /// DESIGN.md §10): per-window access sets over runtime/core/fabric state,
  /// merged at every barrier and slice boundary, reporting cross-shard
  /// write-write / read-write conflicts and non-owner writes with event-key
  /// provenance.  Same seed => same RaceReport at any thread count — even
  /// threads=1, where TSan sees nothing.  A pure observer like `verify`: a
  /// clean run traces byte-identically with it on or off, and every hook is
  /// a single pointer null check when off.
  bool race_detect = false;

  /// Retention cap on race-detector findings; counters stay exact past it.
  std::size_t race_max_findings = 256;

  /// Periodic full-state checkpoint cadence (src/snapshot, DESIGN.md §8):
  /// when > 0 and a sink is installed via Runtime::setSnapshotSink, the sink
  /// fires at every Nth slice boundary — the paper's §6 claim made concrete:
  /// the boundary is globally consistent by construction, so the snapshot
  /// needs no marker algorithm or message draining.  0 = off.
  std::uint64_t checkpoint_every_slices = 0;
};

}  // namespace bcs::bcsmpi
