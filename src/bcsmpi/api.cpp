#include "bcsmpi/api.hpp"

namespace bcs::bcsmpi {

BcsApi::BcsApi(Runtime& runtime, int job, int rank, sim::Process& proc)
    : runtime_(runtime), job_(job), rank_(rank), proc_(proc) {}

int BcsApi::size() const { return runtime_.jobSize(job_); }

BcsRequest BcsApi::send(const void* buf, std::size_t bytes, int dst, int tag,
                        bool blocking) {
  BcsRequest req{runtime_.postSend(job_, rank_, buf, bytes, dst, tag)};
  if (blocking) {
    runtime_.waitRequest(job_, rank_, req.id, nullptr);
    return BcsRequest{};
  }
  return req;
}

BcsRequest BcsApi::recv(void* buf, std::size_t bytes, int src, int tag,
                        bool blocking, mpi::Status* status) {
  BcsRequest req{runtime_.postRecv(job_, rank_, buf, bytes, src, tag)};
  if (blocking) {
    runtime_.waitRequest(job_, rank_, req.id, status);
    return BcsRequest{};
  }
  return req;
}

bool BcsApi::probe(int src, int tag, bool blocking, mpi::Status* status) {
  return runtime_.probe(job_, rank_, src, tag, status, blocking);
}

bool BcsApi::test(BcsRequest& req, bool blocking, mpi::Status* status) {
  if (req.null()) return true;
  if (blocking) {
    // MPI_Wait on a non-blocking request busy-polls the completion flag in
    // NIC memory and continues immediately (Figure 2(b)) — unlike the
    // blocking primitives, which deschedule until a slice boundary.
    runtime_.waitRequest(job_, rank_, req.id, status, /*spin=*/true);
    req = BcsRequest{};
    return true;
  }
  if (runtime_.testRequest(job_, rank_, req.id, status)) {
    req = BcsRequest{};
    return true;
  }
  return false;
}

bool BcsApi::peek(const BcsRequest& req) const {
  if (req.null()) return true;
  return runtime_.peekRequest(job_, rank_, req.id);
}

bool BcsApi::testall(std::span<BcsRequest> reqs, bool blocking) {
  if (blocking) {
    for (BcsRequest& r : reqs) test(r, /*blocking=*/true);
    return true;
  }
  // Non-blocking: all-or-nothing (MPI_Testall semantics).
  for (const BcsRequest& r : reqs) {
    if (!peek(r)) return false;
  }
  for (BcsRequest& r : reqs) test(r, /*blocking=*/false);
  return true;
}

void BcsApi::barrier() {
  const std::uint64_t req = runtime_.postCollective(
      job_, rank_, CollectiveType::kBarrier, /*root=*/0, nullptr, nullptr, 0,
      mpi::Datatype::kByte, mpi::ReduceOp::kSum);
  runtime_.waitRequest(job_, rank_, req, nullptr);
}

void BcsApi::bcast(void* buf, std::size_t bytes, int root) {
  const std::uint64_t req = runtime_.postCollective(
      job_, rank_, CollectiveType::kBcast, root, buf, buf, bytes,
      mpi::Datatype::kByte, mpi::ReduceOp::kSum);
  runtime_.waitRequest(job_, rank_, req, nullptr);
}

void BcsApi::reduce(bool all, const void* contrib, void* result,
                    std::size_t count, mpi::Datatype dt, mpi::ReduceOp op,
                    int root) {
  const std::uint64_t req = runtime_.postCollective(
      job_, rank_,
      all ? CollectiveType::kAllreduce : CollectiveType::kReduce, root,
      contrib, result, count, dt, op);
  runtime_.waitRequest(job_, rank_, req, nullptr);
}

BcsWindow BcsApi::winCreate(void* base, std::size_t bytes) {
  return BcsWindow{runtime_.createWindow(job_, rank_, base, bytes)};
}

void BcsApi::put(const void* src, std::size_t bytes, int target,
                 BcsWindow win, std::size_t offset, mpi::Status* status) {
  const std::uint64_t req =
      runtime_.postPut(job_, rank_, target, win.id, offset, src, bytes);
  runtime_.waitRequest(job_, rank_, req, status);
}

void BcsApi::get(void* dst, std::size_t bytes, int target, BcsWindow win,
                 std::size_t offset, mpi::Status* status) {
  const std::uint64_t req =
      runtime_.postGet(job_, rank_, target, win.id, offset, dst, bytes);
  runtime_.waitRequest(job_, rank_, req, status);
}

std::int64_t BcsApi::fetchAdd(int target, BcsWindow win, std::size_t offset,
                              std::int64_t delta, mpi::Status* status) {
  std::int64_t old = 0;
  const std::uint64_t req =
      runtime_.postFetchAdd(job_, rank_, target, win.id, offset, delta, &old);
  runtime_.waitRequest(job_, rank_, req, status);
  return old;
}

BcsRequest BcsApi::putAsync(const void* src, std::size_t bytes, int target,
                            BcsWindow win, std::size_t offset) {
  return BcsRequest{
      runtime_.postPut(job_, rank_, target, win.id, offset, src, bytes)};
}

BcsRequest BcsApi::getAsync(void* dst, std::size_t bytes, int target,
                            BcsWindow win, std::size_t offset) {
  return BcsRequest{
      runtime_.postGet(job_, rank_, target, win.id, offset, dst, bytes)};
}

BcsRequest BcsApi::fetchAddAsync(int target, BcsWindow win,
                                 std::size_t offset, std::int64_t delta,
                                 std::int64_t* old_value) {
  return BcsRequest{runtime_.postFetchAdd(job_, rank_, target, win.id, offset,
                                          delta, old_value)};
}

}  // namespace bcs::bcsmpi
