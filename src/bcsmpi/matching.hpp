#pragma once

// Envelope-hash indexes for MSM descriptor matching.
//
// The Buffer Receiver matches posted receives against arrived send
// descriptors once per slice.  A naive scan is O(receives x sends); these
// indexes bucket both sides by the message envelope (job, dst_rank, src,
// tag) so a slice's matching work is proportional to the number of matches
// (plus the wildcard receives, which by MPI semantics can pair with any
// source/tag and therefore live on a side-list that is scanned in seq
// order).
//
// Determinism invariants (see DESIGN.md §"Simulator internals"):
//  * the canonical store is a std::map keyed by the descriptor's global
//    posting sequence, so every iteration order used for matching, eviction
//    scrubbing and snapshots is the posting order — never hash order;
//  * the unordered_map buckets are only ever used for O(1) *lookup* of a
//    single envelope's seq list; nothing iterates them except
//    forEachEnvelope(), whose results are order-normalized by the caller.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <map>
#include <vector>

#include "bcsmpi/descriptors.hpp"
#include "mpi/types.hpp"

namespace bcs::bcsmpi {

/// MPI point-to-point matching: wildcard tag matches only application
/// (non-negative) tags; internal negative tags must match exactly (see
/// mpi/comm.hpp).
inline bool envelopeMatches(const RecvDescriptor& r, const SendDescriptor& s) {
  return r.job == s.job && r.dst_rank == s.dst_rank &&
         (r.want_src == mpi::kAnySource || r.want_src == s.src_rank) &&
         (r.want_tag == s.tag || (r.want_tag == mpi::kAnyTag && s.tag >= 0));
}

/// Fully concrete message envelope.  Send descriptors always have one;
/// receive descriptors have one unless they use a wildcard.
struct EnvelopeKey {
  int job = 0;
  int dst_rank = 0;
  int src_rank = 0;
  int tag = 0;
  bool operator==(const EnvelopeKey&) const = default;
};

struct EnvelopeHash {
  std::size_t operator()(const EnvelopeKey& k) const {
    // FNV-1a over the four ints; cheap and good enough for bucket spread.
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint64_t v : {static_cast<std::uint64_t>(k.job),
                            static_cast<std::uint64_t>(k.dst_rank),
                            static_cast<std::uint64_t>(k.src_rank),
                            static_cast<std::uint64_t>(k.tag)}) {
      h = (h ^ v) * 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Arrived send descriptors, indexed by envelope.  Replaces the BR's
/// `remote_sends` deque: insertion is O(log n), and finding the lowest-seq
/// send matching a concrete receive is an O(1) bucket lookup.
class SendMatchIndex {
 public:
  void insert(const SendDescriptor& s) {
    auto& bucket = buckets_[keyOf(s)];
    // Keep each bucket sorted by seq.  Descriptors normally arrive in seq
    // order, but a retransmitted (older) descriptor can land after younger
    // ones, so insert positionally rather than push_back.
    bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), s.seq),
                  s.seq);
    by_seq_.emplace(s.seq, s);
  }

  /// The matching send with the lowest posting seq, or nullptr.  Concrete
  /// receives cost one hash lookup; wildcard receives scan the canonical
  /// store in seq order (first hit is the answer).
  const SendDescriptor* lowestSeqMatch(const RecvDescriptor& r) const {
    if (r.want_src != mpi::kAnySource && r.want_tag != mpi::kAnyTag) {
      auto it = buckets_.find(
          EnvelopeKey{r.job, r.dst_rank, r.want_src, r.want_tag});
      if (it == buckets_.end() || it->second.empty()) return nullptr;
      return &by_seq_.at(it->second.front());
    }
    for (const auto& [seq, s] : by_seq_) {
      if (envelopeMatches(r, s)) return &s;
    }
    return nullptr;
  }

  /// Removes and returns the descriptor with posting seq `seq`.
  SendDescriptor take(std::uint64_t seq) {
    auto it = by_seq_.find(seq);
    SendDescriptor s = std::move(it->second);
    by_seq_.erase(it);
    auto& bucket = buckets_[keyOf(s)];
    bucket.erase(std::lower_bound(bucket.begin(), bucket.end(), seq));
    if (bucket.empty()) buckets_.erase(keyOf(s));
    return s;
  }

  bool empty() const { return by_seq_.empty(); }
  std::size_t size() const { return by_seq_.size(); }
  void clear() {
    by_seq_.clear();
    buckets_.clear();
  }

  /// Visits every descriptor in posting (seq) order.
  template <typename F>
  void forEach(F&& f) const {
    for (const auto& [seq, s] : by_seq_) f(s);
  }

  /// Number of distinct source ranks with at least one arrived send that
  /// matches receive `r` — the wildcard-race metric (src/verify): a
  /// kAnySource receive matched while this exceeds 1 depends on descriptor
  /// arrival order for its result.  Scans the canonical seq-ordered store;
  /// only called with the verifier attached, never on the match hot path.
  std::size_t countEligibleSources(const RecvDescriptor& r) const {
    std::vector<int> srcs;
    for (const auto& [seq, s] : by_seq_) {
      if (envelopeMatches(r, s)) srcs.push_back(s.src_rank);
    }
    std::sort(srcs.begin(), srcs.end());
    srcs.erase(std::unique(srcs.begin(), srcs.end()), srcs.end());
    return srcs.size();
  }

  /// Removes every descriptor for which `pred` returns true, visiting in
  /// posting (seq) order.  `pred` may have side effects (eviction scrubbing
  /// fails the affected requests as it goes).
  template <typename Pred>
  void eraseIf(Pred&& pred) {
    for (auto it = by_seq_.begin(); it != by_seq_.end();) {
      if (!pred(it->second)) {
        ++it;
        continue;
      }
      auto& bucket = buckets_[keyOf(it->second)];
      bucket.erase(
          std::lower_bound(bucket.begin(), bucket.end(), it->first));
      if (bucket.empty()) buckets_.erase(keyOf(it->second));
      it = by_seq_.erase(it);
    }
  }

  /// Visits each distinct envelope present in the index (hash order — the
  /// caller must order-normalize anything derived from this).
  template <typename F>
  void forEachEnvelope(F&& f) const {
    for (const auto& [key, bucket] : buckets_) f(key);
  }

 private:
  static EnvelopeKey keyOf(const SendDescriptor& s) {
    return EnvelopeKey{s.job, s.dst_rank, s.src_rank, s.tag};
  }

  std::map<std::uint64_t, SendDescriptor> by_seq_;  ///< canonical, seq order
  // det-ok: O(1) envelope lookup only; the sole iteration (forEachEnvelope)
  // is order-normalized by the caller's sort over the derived seq list
  std::unordered_map<EnvelopeKey, std::vector<std::uint64_t>, EnvelopeHash>
      buckets_;
};

/// Matching-eligible receive descriptors.  Concrete receives are bucketed by
/// envelope; wildcard receives (any-source and/or any-tag) live on a
/// seq-ordered side-list since they can pair with any arriving send.
class RecvMatchIndex {
 public:
  void insert(const RecvDescriptor& r) {
    if (isWildcard(r)) {
      wildcards_.insert(
          std::lower_bound(wildcards_.begin(), wildcards_.end(), r.seq),
          r.seq);
    } else {
      auto& bucket = buckets_[keyOf(r)];
      bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), r.seq),
                    r.seq);
    }
    by_seq_.emplace(r.seq, r);
  }

  const RecvDescriptor* find(std::uint64_t seq) const {
    auto it = by_seq_.find(seq);
    return it == by_seq_.end() ? nullptr : &it->second;
  }

  RecvDescriptor take(std::uint64_t seq) {
    auto it = by_seq_.find(seq);
    RecvDescriptor r = std::move(it->second);
    by_seq_.erase(it);
    if (isWildcard(r)) {
      wildcards_.erase(
          std::lower_bound(wildcards_.begin(), wildcards_.end(), seq));
    } else {
      auto& bucket = buckets_[keyOf(r)];
      bucket.erase(std::lower_bound(bucket.begin(), bucket.end(), seq));
      if (bucket.empty()) buckets_.erase(keyOf(r));
    }
    return r;
  }

  /// Seqs of concrete receives posted for this exact envelope (ascending),
  /// or nullptr if none.
  const std::vector<std::uint64_t>* bucketFor(const EnvelopeKey& key) const {
    auto it = buckets_.find(key);
    return it == buckets_.end() ? nullptr : &it->second;
  }

  /// Seqs of wildcard receives, ascending.
  const std::vector<std::uint64_t>& wildcards() const { return wildcards_; }

  bool empty() const { return by_seq_.empty(); }
  std::size_t size() const { return by_seq_.size(); }
  void clear() {
    by_seq_.clear();
    buckets_.clear();
    wildcards_.clear();
  }

  template <typename F>
  void forEach(F&& f) const {
    for (const auto& [seq, r] : by_seq_) f(r);
  }

  template <typename Pred>
  void eraseIf(Pred&& pred) {
    for (auto it = by_seq_.begin(); it != by_seq_.end();) {
      if (!pred(it->second)) {
        ++it;
        continue;
      }
      const RecvDescriptor& r = it->second;
      if (isWildcard(r)) {
        wildcards_.erase(
            std::lower_bound(wildcards_.begin(), wildcards_.end(), it->first));
      } else {
        auto& bucket = buckets_[keyOf(r)];
        bucket.erase(
            std::lower_bound(bucket.begin(), bucket.end(), it->first));
        if (bucket.empty()) buckets_.erase(keyOf(r));
      }
      it = by_seq_.erase(it);
    }
  }

 private:
  static bool isWildcard(const RecvDescriptor& r) {
    return r.want_src == mpi::kAnySource || r.want_tag == mpi::kAnyTag;
  }
  static EnvelopeKey keyOf(const RecvDescriptor& r) {
    return EnvelopeKey{r.job, r.dst_rank, r.want_src, r.want_tag};
  }

  std::map<std::uint64_t, RecvDescriptor> by_seq_;
  // det-ok: O(1) envelope lookup only (bucketFor); never iterated, and each
  // bucket's seq list is kept sorted independently of hash order
  std::unordered_map<EnvelopeKey, std::vector<std::uint64_t>, EnvelopeHash>
      buckets_;
  std::vector<std::uint64_t> wildcards_;
};

}  // namespace bcs::bcsmpi
