#pragma once

// Communication descriptors (paper §3, §4.3, §4.4).
//
// When an application process invokes a communication primitive it does not
// touch the network: it posts one of these records into a NIC-memory FIFO
// and (if the call is blocking) suspends.  Everything else happens inside
// the NIC threads during the globally scheduled microphases.

#include <cstddef>
#include <cstdint>

#include "mpi/types.hpp"
#include "sim/time.hpp"

namespace bcs::bcsmpi {

/// Posted to the Buffer Sender by MPI_Send / MPI_Isend.
struct SendDescriptor {
  int job = 0;
  int src_rank = 0;
  int dst_rank = 0;
  int tag = 0;
  const std::byte* data = nullptr;  ///< application buffer (zero-copy get)
  std::size_t bytes = 0;
  std::uint64_t request = 0;        ///< completion handle at the source rank
  sim::SimTime posted_at = 0;
  std::uint64_t seq = 0;            ///< global posting order (FIFO tiebreak)
  int retries = 0;                  ///< DEM retransmissions so far
};

/// Posted to the Buffer Receiver by MPI_Recv / MPI_Irecv.
struct RecvDescriptor {
  int job = 0;
  int dst_rank = 0;
  int want_src = mpi::kAnySource;
  int want_tag = mpi::kAnyTag;
  std::byte* data = nullptr;
  std::size_t bytes = 0;            ///< capacity of the posted buffer
  std::uint64_t request = 0;
  sim::SimTime posted_at = 0;
  std::uint64_t seq = 0;
};

/// Built by the BR in the Message Scheduling Microphase for every matched
/// send/receive pair; consumed by the DMA Helper.  Chunking state lives
/// here: `offset` advances slice by slice until the whole payload moved.
struct MatchDescriptor {
  SendDescriptor send;
  RecvDescriptor recv;
  std::size_t offset = 0;
};

/// One-sided operation kinds (DESIGN.md §11).
enum class RmaKind : std::uint8_t {
  kPut,
  kGet,
  kFetchAdd,
};

const char* rmaKindName(RmaKind k);

/// Posted by bcs_put / bcs_get / bcs_fetch_add.  Ops posted in slice t are
/// coalesced per destination node in the DEM, applied to the target window
/// in canonical (job, origin rank, seq) order in the MSM, and completed at
/// the origin at the slice t+1 boundary — a passive-target epoch per slice.
struct RmaOpDescriptor {
  int job = 0;
  int origin_rank = 0;
  int target_rank = 0;
  RmaKind kind = RmaKind::kPut;
  int window = 0;               ///< target rank's window id
  std::size_t offset = 0;       ///< byte offset inside the target window
  std::size_t bytes = 0;        ///< put/get length; 8 for fetch-add
  const std::byte* origin_src = nullptr;  ///< put payload
  std::byte* origin_dst = nullptr;  ///< get destination / fetch-add old value
  std::int64_t operand = 0;     ///< fetch-add delta
  std::uint64_t request = 0;
  sim::SimTime posted_at = 0;
  std::uint64_t seq = 0;        ///< global posting order (canonical tiebreak)
  int call_index = 0;           ///< per-rank RMA call number (blame sites)
  int retries = 0;              ///< DEM retransmissions so far
};

enum class CollectiveType : std::uint8_t {
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
};

const char* collectiveTypeName(CollectiveType t);

/// Posted by every rank entering a collective call.  The BR pre-processes
/// these: once all local ranks of the job posted generation `gen`, the
/// node's per-job flag variable is set and only the job master's descriptor
/// survives to the scheduling step (§4.4).
struct CollectiveDescriptor {
  int job = 0;
  int rank = 0;
  CollectiveType type = CollectiveType::kBarrier;
  int gen = 0;   ///< per-job collective sequence number
  int root = 0;  ///< meaningful for bcast/reduce
  const std::byte* contrib = nullptr;  ///< send side (bcast@root / reduce)
  std::byte* result = nullptr;         ///< recv side
  std::size_t count = 0;
  mpi::Datatype dt = mpi::Datatype::kByte;
  mpi::ReduceOp op = mpi::ReduceOp::kSum;
  std::uint64_t request = 0;
  sim::SimTime posted_at = 0;
};

}  // namespace bcs::bcsmpi
