#include "bcsmpi/runtime.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

namespace bcs::bcsmpi {

const char* phaseName(Phase p) {
  switch (p) {
    case Phase::kDem: return "DEM";
    case Phase::kMsm: return "MSM";
    case Phase::kP2p: return "P2P";
    case Phase::kBbm: return "BBM";
    case Phase::kRm: return "RM";
  }
  return "?";
}

const char* collectiveTypeName(CollectiveType t) {
  switch (t) {
    case CollectiveType::kBarrier: return "barrier";
    case CollectiveType::kBcast: return "bcast";
    case CollectiveType::kReduce: return "reduce";
    case CollectiveType::kAllreduce: return "allreduce";
  }
  return "?";
}

Runtime::Runtime(net::Cluster& cluster, BcsMpiConfig config)
    : cluster_(cluster),
      config_(config),
      core_(cluster.fabric(), &cluster.trace()),
      trace_(&cluster.trace()),
      nodes_(static_cast<std::size_t>(cluster.numComputeNodes())) {
  for (int n = 0; n < cluster.numComputeNodes(); ++n) {
    all_compute_nodes_.push_back(n);
  }
  live_compute_nodes_ = all_compute_nodes_;
  evicted_.assign(static_cast<std::size_t>(cluster.numComputeNodes()), 0);
  phase_done_var_ = core_.allocVar("phase_done", 0);
  epoch_var_ = core_.allocVar("control_epoch", 0);
  strobe_event_ = core_.allocEvent("microstrobe");
  coll_done_event_ = core_.allocEvent("collective-done");
  strobe_node_ = cluster.managementNode();
  tree_mode_ = config_.tree_fanout > 0;
  if (tree_mode_) {
    sstree_ = storm::SsTree(cluster.numComputeNodes(), config_.tree_fanout);
    tree_racks_.resize(static_cast<std::size_t>(sstree_.rackCount()));
  }
  stats_.tree_levels = static_cast<std::uint64_t>(sstree_.levels());
  if (config_.verify) {
    verifier_ = std::make_unique<verify::Verifier>(
        trace_, config_.verify_max_findings);
  }
  if (config_.race_detect) {
    race_ = std::make_unique<race::RaceDetector>(
        cluster.engine(), trace_, config_.race_max_findings);
    cluster.fabric().setRaceDetector(race_.get());
    // The whole BCS control plane runs on shard 0 (see parallelPolicy), so
    // every runtime-owned object registers there.  Workloads that shard
    // nodes themselves (Engine::atOn + Fabric::setShardMap) re-register
    // their state with the real owners.
    for (int n = 0; n < cluster.numComputeNodes(); ++n) {
      const auto id = static_cast<std::uint64_t>(n);
      race_->registerObject(race::ObjectKind::kNodeState, id, 0);
      race_->registerObject(race::ObjectKind::kCoreVars, id, 0);
      race_->registerObject(race::ObjectKind::kCoreEvents, id, 0);
    }
  }
}

Runtime::~Runtime() {
  // The cluster (and its fabric) outlives this runtime; drop the fabric's
  // observer pointer before the detector dies.  The detector's own dtor
  // detaches it from the engine.
  if (race_ && cluster_.fabric().raceDetector() == race_.get()) {
    cluster_.fabric().setRaceDetector(nullptr);
  }
}

// ---------------------------------------------------------------------------
// Job management
// ---------------------------------------------------------------------------

int Runtime::createJob(std::vector<int> node_of_rank) {
  JobState js;
  js.node_of_rank = std::move(node_of_rank);
  js.nodes = js.node_of_rank;
  std::sort(js.nodes.begin(), js.nodes.end());
  js.nodes.erase(std::unique(js.nodes.begin(), js.nodes.end()),
                 js.nodes.end());
  for (int n : js.nodes) {
    if (n < 0 || n >= cluster_.numComputeNodes()) {
      throw sim::SimError("createJob: bad node " + std::to_string(n));
    }
  }
  js.ranks.resize(js.node_of_rank.size());
  for (std::size_t r = 0; r < js.ranks.size(); ++r) {
    js.ranks[r].node = js.node_of_rank[r];
  }
  const int id = static_cast<int>(jobs_.size());
  js.coll_flag = core_.allocVar("coll_flag_j" + std::to_string(id), -1);
  js.coll_sched = core_.allocVar("coll_sched_j" + std::to_string(id), -1);
  if (race_) {
    for (std::size_t r = 0; r < js.ranks.size(); ++r) {
      race_->registerObject(race::ObjectKind::kRankTable,
                            (static_cast<std::uint64_t>(id) << 16) | r, 0);
    }
  }
  jobs_.push_back(std::move(js));
  return id;
}

void Runtime::registerProcess(int job, int rank, sim::Process& proc) {
  JobState& js = jobState(job);
  RankState& rs = rankState(job, rank);
  if (rs.proc != nullptr) {
    throw sim::SimError("registerProcess: duplicate registration");
  }
  rs.proc = &proc;
  ++js.registered;
  ++active_ranks_;
  // Runtime bring-up: NIC thread forking, NIC memory setup, STORM
  // handshakes.  Charged once per process, like MPI_Init.
  proc.compute(config_.runtime_init_overhead);
  // The Strobe Receiver on this rank's node starts its slice watchdog as
  // part of bring-up: from here on, microstrobe silence is suspicious.
  NodeState& ns = nodeState(rs.node);
  ns.last_strobe = proc.now();
  if (!ns.watchdog_armed) {
    armWatchdogAt(rs.node, ns.last_strobe + watchdogTimeout());
  }
  if (!strobing_) {
    strobing_ = true;
    slice_start_ = proc.now();
    cluster_.engine().at(slice_start_, [this] { startSlice(); });
  }
}

void Runtime::registerDetachedRank(int job, int rank) {
  JobState& js = jobState(job);
  RankState& rs = rankState(job, rank);
  if (rs.proc != nullptr || rs.detached) {
    throw sim::SimError("registerDetachedRank: duplicate registration");
  }
  rs.detached = true;
  ++js.registered;
  ++active_ranks_;
  // Same bring-up charge as registerProcess, but without a fiber to bill it
  // to: the rank becomes communication-ready after the init overhead.
  const SimTime ready = cluster_.engine().now() + config_.runtime_init_overhead;
  NodeState& ns = nodeState(rs.node);
  ns.last_strobe = std::max(ns.last_strobe, ready);
  if (!ns.watchdog_armed) {
    armWatchdogAt(rs.node, ns.last_strobe + watchdogTimeout());
  }
  if (!strobing_) {
    strobing_ = true;
    slice_start_ = ready;
    cluster_.engine().at(ready, [this] { startSlice(); });
  }
}

void Runtime::rankFinished(int job, int rank) {
  JobState& js = jobState(job);
  RankState& rs = rankState(job, rank);
  if (rs.finished) return;
  rs.finished = true;
  ++js.finished;
  --active_ranks_;
}

int Runtime::jobSize(int job) const {
  return static_cast<int>(jobs_.at(static_cast<std::size_t>(job))
                              .node_of_rank.size());
}

int Runtime::nodeOfRank(int job, int rank) const {
  return jobs_.at(static_cast<std::size_t>(job))
      .node_of_rank.at(static_cast<std::size_t>(rank));
}

Runtime::RankState& Runtime::rankState(int job, int rank) {
  return jobState(job).ranks.at(static_cast<std::size_t>(rank));
}

Runtime::JobState& Runtime::jobState(int job) {
  return jobs_.at(static_cast<std::size_t>(job));
}

Runtime::NodeState& Runtime::nodeState(int node) {
  return nodes_.at(static_cast<std::size_t>(node));
}

// ---------------------------------------------------------------------------
// Application-facing operations
// ---------------------------------------------------------------------------

std::uint64_t Runtime::postSend(int job, int rank, const void* buf,
                                std::size_t bytes, int dst, int tag) {
  if (dst < 0 || dst >= jobSize(job)) {
    throw sim::SimError("postSend: bad destination rank " +
                        std::to_string(dst));
  }
  RankState& rs = rankState(job, rank);
  if (rs.proc) rs.proc->compute(config_.post_overhead);
  const std::uint64_t req = rs.next_req++;
  rs.requests.emplace(req, ReqInfo{});
  raceRank(job, rank, race::RaceDetector::Access::kWrite, "Runtime::postSend");
  raceNode(rs.node, race::FieldGroup::kBufferSender,
           race::RaceDetector::Access::kWrite, "Runtime::postSend");

  SendDescriptor d;
  d.job = job;
  d.src_rank = rank;
  d.dst_rank = dst;
  d.tag = tag;
  d.data = static_cast<const std::byte*>(buf);
  d.bytes = bytes;
  d.request = req;
  d.posted_at = rs.proc ? rs.proc->now() : cluster_.engine().now();
  d.seq = ++desc_seq_;
  nodeState(rs.node).bs_fresh.push_back(d);
  return req;
}

std::uint64_t Runtime::postRecv(int job, int rank, void* buf,
                                std::size_t bytes, int src, int tag) {
  RankState& rs = rankState(job, rank);
  if (rs.proc) rs.proc->compute(config_.post_overhead);
  const std::uint64_t req = rs.next_req++;
  rs.requests.emplace(req, ReqInfo{});
  raceRank(job, rank, race::RaceDetector::Access::kWrite, "Runtime::postRecv");
  raceNode(rs.node, race::FieldGroup::kBufferReceiver,
           race::RaceDetector::Access::kWrite, "Runtime::postRecv");

  RecvDescriptor d;
  d.job = job;
  d.dst_rank = rank;
  d.want_src = src;
  d.want_tag = tag;
  d.data = static_cast<std::byte*>(buf);
  d.bytes = bytes;
  d.request = req;
  d.posted_at = rs.proc ? rs.proc->now() : cluster_.engine().now();
  d.seq = ++desc_seq_;
  nodeState(rs.node).recv_fresh.push_back(d);
  return req;
}

std::uint64_t Runtime::postCollective(int job, int rank, CollectiveType type,
                                      int root, const void* contrib,
                                      void* result, std::size_t count,
                                      mpi::Datatype dt, mpi::ReduceOp op) {
  RankState& rs = rankState(job, rank);
  if (rs.proc) rs.proc->compute(config_.post_overhead);
  const std::uint64_t req = rs.next_req++;
  rs.requests.emplace(req, ReqInfo{});
  raceRank(job, rank, race::RaceDetector::Access::kWrite,
           "Runtime::postCollective");
  raceNode(rs.node, race::FieldGroup::kCollectives,
           race::RaceDetector::Access::kWrite, "Runtime::postCollective");

  CollectiveDescriptor d;
  d.job = job;
  d.rank = rank;
  d.type = type;
  d.gen = rs.next_coll_gen++;
  d.root = root;
  d.contrib = static_cast<const std::byte*>(contrib);
  d.result = static_cast<std::byte*>(result);
  d.count = count;
  d.dt = dt;
  d.op = op;
  d.request = req;
  d.posted_at = rs.proc ? rs.proc->now() : cluster_.engine().now();
  if (verifier_) {
    verifier_->onCollectivePosted(slice_index_, d.posted_at, rs.node, d,
                                  jobSize(job));
  }
  nodeState(rs.node).coll_fresh.push_back(d);
  return req;
}

Runtime::ReqInfo& Runtime::reqInfo(int job, int rank, std::uint64_t req) {
  RankState& rs = rankState(job, rank);
  auto it = rs.requests.find(req);
  if (it == rs.requests.end()) {
    throw sim::SimError("unknown request " + std::to_string(req));
  }
  return it->second;
}

bool Runtime::peekRequest(int job, int rank, std::uint64_t req) const {
  raceRank(job, rank, race::RaceDetector::Access::kRead,
           "Runtime::peekRequest");
  const JobState& js = jobs_.at(static_cast<std::size_t>(job));
  const RankState& rs = js.ranks.at(static_cast<std::size_t>(rank));
  auto it = rs.requests.find(req);
  if (it == rs.requests.end()) {
    throw sim::SimError("peek on unknown request " + std::to_string(req));
  }
  return it->second.complete;
}

bool Runtime::testRequest(int job, int rank, std::uint64_t req,
                          mpi::Status* status) {
  raceRank(job, rank, race::RaceDetector::Access::kWrite,
           "Runtime::testRequest");
  ReqInfo& info = reqInfo(job, rank, req);
  if (!info.complete) return false;
  if (status) *status = info.status;
  rankState(job, rank).requests.erase(req);
  return true;
}

void Runtime::waitRequest(int job, int rank, std::uint64_t req,
                          mpi::Status* status, bool spin) {
  raceRank(job, rank, race::RaceDetector::Access::kWrite,
           "Runtime::waitRequest");
  RankState& rs = rankState(job, rank);
  // Predicate loop: completion is marked by the NIC threads mid-slice.
  // Spin-waiters resume right then (completeRequest wakes them directly);
  // descheduled waiters are restarted by the NM at the next slice boundary.
  while (!reqInfo(job, rank, req).complete) {
    reqInfo(job, rank, req).spin_waited = spin;
    rs.proc->block();
  }
  if (status) *status = reqInfo(job, rank, req).status;
  rs.requests.erase(req);
}

bool Runtime::probe(int job, int rank, int src, int tag, mpi::Status* status,
                    bool blocking) {
  RankState& rs = rankState(job, rank);
  NodeState& ns = nodeState(rs.node);
  raceNode(rs.node, race::FieldGroup::kBufferReceiver,
           race::RaceDetector::Access::kRead, "Runtime::probe");
  while (true) {
    RecvDescriptor want;
    want.job = job;
    want.dst_rank = rank;
    want.want_src = src;
    want.want_tag = tag;
    // The index reports the lowest-seq matching send — the same descriptor
    // the MSM would pair this probe's hypothetical receive with.
    const SendDescriptor* found = ns.remote_sends.lowestSeqMatch(want);
    if (!found) {
      // A message being transferred right now is also "arrived" for probe
      // purposes (its envelope is known to the BR).
      for (const auto& m : ns.match_queue) {
        if (m.recv.request == 0 && envelopeMatches(want, m.send)) {
          found = &m.send;
          break;
        }
      }
    }
    if (found) {
      if (status) {
        status->source = found->src_rank;
        status->tag = found->tag;
        status->bytes = found->bytes;
      }
      return true;
    }
    if (!blocking) return false;
    ns.probe_waiters.emplace_back(job, rank);
    rs.proc->block();
  }
}

void Runtime::completeRequest(int job, int rank, std::uint64_t req, int peer,
                              int tag, std::size_t bytes) {
  raceRank(job, rank, race::RaceDetector::Access::kWrite,
           "Runtime::completeRequest");
  RankState& rs = rankState(job, rank);
  auto it = rs.requests.find(req);
  if (it == rs.requests.end() || it->second.complete) return;
  it->second.complete = true;
  it->second.status.source = peer;
  it->second.status.tag = tag;
  it->second.status.bytes = bytes;
  ++rs.requests_completed;
  if (nodeEvicted(rs.node)) return;  // a dead rank is never woken
  if (it->second.spin_waited) {
    // A busy-polling MPI_Wait sees the flag flip right away (Figure 2(b)).
    if (rs.proc) rs.proc->wake();
  } else {
    nodeState(rs.node).wake_list.emplace_back(job, rank);
  }
}

void Runtime::failRequest(int job, int rank, std::uint64_t req, int peer,
                          int tag) {
  raceRank(job, rank, race::RaceDetector::Access::kWrite,
           "Runtime::failRequest");
  RankState& rs = rankState(job, rank);
  auto it = rs.requests.find(req);
  if (it == rs.requests.end() || it->second.complete) return;
  it->second.complete = true;
  it->second.status.source = peer;
  it->second.status.tag = tag;
  it->second.status.bytes = 0;
  it->second.status.error = mpi::kErrPeerUnreachable;
  ++rs.requests_completed;
  ++stats_.requests_failed;
  if (trace_) {
    trace_->record(cluster_.engine().now(), sim::TraceCategory::kFault,
                   rs.node,
                   "request " + std::to_string(req) + " of j" +
                       std::to_string(job) + "/r" + std::to_string(rank) +
                       " failed: peer rank " + std::to_string(peer) +
                       " unreachable");
  }
  if (nodeEvicted(rs.node)) return;
  if (it->second.spin_waited) {
    if (rs.proc) rs.proc->wake();
  } else {
    nodeState(rs.node).wake_list.emplace_back(job, rank);
  }
}

// ---------------------------------------------------------------------------
// Strobe Sender (management node)
// ---------------------------------------------------------------------------

void Runtime::startSlice() {
  if (race_) {
    // Serial-mode window boundary: merge the slice's access sets on the
    // same grid the parallel drain's barriers use.  Inside a parallel
    // window this is a no-op — the engine barrier already merged.
    race_->onSliceBoundary(cluster_.engine().now());
  }
  if (stop_requested_) {
    strobing_ = false;
    return;
  }
  if (cluster_.faults()->nodeDown(strobe_node_, cluster_.engine().now())) {
    // The Strobe Sender's node is down: this slice is never strobed.  The
    // Strobe Receivers' slice watchdogs will notice the silence and elect a
    // backup, which resumes the strobe on the period grid.
    if (trace_) {
      trace_->record(cluster_.engine().now(), sim::TraceCategory::kFailover,
                     strobe_node_, "Strobe Sender down; slice not strobed");
    }
    strobing_ = false;
    return;
  }
  if (!pending_evictions_.empty()) {
    // Recovery slice: the microphases of the previous slice completed
    // without the dead node (it left the poll set the moment STORM declared
    // it), so the survivors are globally consistent here — scrub the queues,
    // fail what can no longer complete, checkpoint the rest.
    performRecovery();
    if (stop_requested_ || live_compute_nodes_.empty()) {
      strobing_ = false;
      return;
    }
  }
  if (!pending_rejoins_.empty()) performRejoins();
  if (!checkpoint_cbs_.empty()) {
    // Slice boundary: the previous slice's transfers are all complete, so
    // this snapshot is globally consistent without any message draining.
    const CheckpointRecord record = snapshot();
    std::vector<std::function<void(const CheckpointRecord&)>> cbs;
    cbs.swap(checkpoint_cbs_);
    for (auto& cb : cbs) cb(record);
  }
  if (config_.checkpoint_every_slices > 0 && snapshot_sink_ &&
      slice_index_ > 0 &&
      slice_index_ % config_.checkpoint_every_slices == 0) {
    // Periodic full-state snapshot (src/snapshot): the capture point.  The
    // sink observes, never mutates — a run with the sink installed traces
    // identically to one without (pinned by tests/test_snapshot.cpp).
    ++stats_.checkpoints_taken;
    snapshot_sink_(slice_index_);
  }
  if (verifier_) {
    // The slice boundary is the conceptual MSM reduction point: every
    // collective generation with a full rank set is color-reduced here.
    verifier_->onSliceBoundary(slice_index_, cluster_.engine().now());
  }
  ++slice_index_;
  ++stats_.slices;
  slice_start_ = cluster_.engine().now();
  root_msgs_slice_ = 0;
  strobePhase(Phase::kDem);
}

void Runtime::resumeFromRestore() {
  // The restored state is exactly the capture point inside startSlice():
  // after recovery/rejoin processing, before the boundary bookkeeping.
  // Run the remaining tail verbatim so the continuation is byte-identical
  // to the run that was interrupted.
  strobing_ = true;
  if (race_) race_->onSliceBoundary(cluster_.engine().now());
  if (verifier_) {
    verifier_->onSliceBoundary(slice_index_, cluster_.engine().now());
  }
  ++slice_index_;
  ++stats_.slices;
  slice_start_ = cluster_.engine().now();
  root_msgs_slice_ = 0;
  strobePhase(Phase::kDem);
}

void Runtime::requestCheckpoint(
    std::function<void(const CheckpointRecord&)> cb) {
  checkpoint_cbs_.push_back(std::move(cb));
}

CheckpointRecord Runtime::snapshot() const {
  CheckpointRecord record;
  record.slice = slice_index_;
  record.time = cluster_.engine().now();
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const JobState& js = jobs_[j];
    CheckpointRecord::JobSnapshot snap;
    snap.job = static_cast<int>(j);
    snap.ranks = static_cast<int>(js.ranks.size());
    snap.finished_ranks = js.finished;
    for (const RankState& rs : js.ranks) {
      snap.requests_posted += rs.next_req - 1;
      snap.requests_completed += rs.requests_completed;
    }
    record.jobs.push_back(snap);
  }
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const NodeState& ns = nodes_[n];
    CheckpointRecord::NodeSnapshot snap;
    snap.node = static_cast<int>(n);
    snap.fresh_sends = ns.bs_fresh.size();
    snap.fresh_recvs = ns.recv_fresh.size();
    snap.unmatched_remote = ns.remote_sends.size();
    snap.unmatched_recvs = ns.recv_eligible.size();
    for (const MatchDescriptor& m : ns.match_queue) {
      if (m.offset > 0) {
        ++snap.partial_messages;
        snap.partial_bytes_moved += m.offset;
        record.quiescent = false;
      }
    }
    record.nodes.push_back(snap);
  }
  return record;
}

void Runtime::strobePhase(Phase p) {
  if (live_compute_nodes_.empty()) {
    // Every compute node was evicted mid-slice; nothing left to strobe.
    maybeStop();
    strobing_ = false;
    return;
  }
  const std::uint64_t seq = ++phase_seq_;
  ++stats_.microstrobes;
  if (trace_) {
    trace_->record(cluster_.engine().now(), sim::TraceCategory::kStrobe,
                   strobe_node_,
                   std::string("microstrobe ") + phaseName(p) + " slice " +
                       std::to_string(slice_index_));
  }
  if (tree_mode_) {
    // Hierarchical control plane: strobe the rack-level SSes only; they
    // relay to their members and coalesce the completions (tree.cpp).
    strobePhaseTree(p, seq);
    return;
  }
  root_msgs_slice_ += live_compute_nodes_.size();
  core::XferRequest strobe;
  strobe.src_node = strobe_node_;
  strobe.dest_nodes = live_compute_nodes_;
  strobe.bytes = 16;  // phase id + sequence number
  strobe.deliver = [this, p, seq](int node) { onStrobe(node, p, seq); };
  core_.xferAndSignal(std::move(strobe));
  if (strobe_node_ < cluster_.numComputeNodes()) {
    // A backup Strobe Sender is itself a compute node; the fabric excludes
    // the multicast source from its own destination set, so its Strobe
    // Receiver hears the strobe through NIC-local memory instead.
    cluster_.engine().at(cluster_.engine().now(),
                         [this, p, seq, self = strobe_node_] {
                           onStrobe(self, p, seq);
                         });
  }
  pollPhaseDone(p, seq);
}

void Runtime::pollPhaseDone(Phase p, std::uint64_t seq) {
  if (live_compute_nodes_.empty()) {
    phaseComplete(p);
    return;
  }
  // The node set is rebuilt on every poll round, so an eviction that happens
  // while a phase is stuck immediately unblocks the next poll: the dead node
  // (whose phase_done can never advance) is simply no longer asked.
  ++root_msgs_slice_;
  core::CompareAndWriteRequest req;
  req.src_node = strobe_node_;
  req.nodes = live_compute_nodes_;
  req.var = phase_done_var_;
  req.op = core::CmpOp::kGE;
  req.value = static_cast<std::int64_t>(seq);
  // Epoch fence: if a failover election promotes a new Strobe Sender while
  // this round is in flight, the stale chain must not continue strobing in
  // parallel with the new one.  (A *dead* old SS is already cut off by the
  // fabric suppressing its conditional results; the fence also covers an
  // old SS that is merely stalled.)
  const std::uint64_t epoch = control_epoch_;
  core_.compareAndWriteAsync(std::move(req), [this, p, seq, epoch](bool done) {
    if (epoch != control_epoch_) return;
    if (done) {
      phaseComplete(p);
    } else {
      cluster_.engine().after(config_.strobe_poll_interval,
                              [this, p, seq, epoch] {
                                if (epoch != control_epoch_) return;
                                pollPhaseDone(p, seq);
                              });
    }
  });
}

void Runtime::phaseComplete(Phase p) {
  if (p != Phase::kRm) {
    strobePhase(static_cast<Phase>(static_cast<int>(p) + 1));
    return;
  }
  // Slice finished.  Stop if all work is done, otherwise schedule the next
  // slice on the fixed period grid.
  stats_.fanout_msgs_per_slice = root_msgs_slice_;
  maybeStop();
  if (stop_requested_) {
    strobing_ = false;
    return;
  }
  const SimTime now = cluster_.engine().now();
  SimTime next = slice_start_ + config_.time_slice;
  if (next <= now) {
    ++stats_.slice_overruns;
    // Slipped past the boundary: re-align to the period grid.
    const std::uint64_t k = static_cast<std::uint64_t>(
        (now - slice_start_) / config_.time_slice);
    next = slice_start_ + static_cast<SimTime>(k + 1) * config_.time_slice;
  }
  const std::uint64_t epoch = control_epoch_;
  cluster_.engine().at(next, [this, epoch] {
    if (epoch != control_epoch_) return;
    startSlice();
  });
}

void Runtime::maybeStop() {
  if (active_ranks_ > 0 || stop_requested_) return;
  // All ranks finished; queues must be empty (a rank only finishes after
  // its operations completed), so the strobe can stop.
  stop_requested_ = true;
  stopWatchdogs();
  if (verifier_ && !verifier_->finalized()) runVerifyAudit();
}

// ---------------------------------------------------------------------------
// Protocol verification (src/verify)
// ---------------------------------------------------------------------------

const verify::VerifyReport* Runtime::verifyAudit() {
  if (!verifier_) return nullptr;
  if (!verifier_->finalized()) runVerifyAudit();
  return &verifier_->report();
}

// ---------------------------------------------------------------------------
// Shard-ownership race detection (src/race)
// ---------------------------------------------------------------------------

const race::RaceReport* Runtime::raceAudit() {
  if (!race_) return nullptr;
  // Deliberately not wired into maybeStop(): the strobe can stop inside a
  // parallel window, where merging would read other workers' live tables.
  // After Engine::run returns the world is quiescent and finalize is safe.
  return &race_->finalize(cluster_.engine().now());
}

void Runtime::runVerifyAudit() {
  using verify::Category;
  const SimTime now = cluster_.engine().now();
  verify::Verifier& v = *verifier_;
  auto leak = [&](Category cat, int node, int job, int rank,
                  std::string detail) {
    v.addFinding(cat, now, slice_index_, node, job, rank, std::move(detail));
  };
  for (int n : all_compute_nodes_) {
    // Evicted nodes were scrubbed at recovery (their requests completed in
    // error); auditing the rebuilt empty state would only mask that.
    if (nodeEvicted(n)) continue;
    NodeState& ns = nodeState(n);
    for (const SendDescriptor& d : ns.bs_fresh) {
      leak(Category::kLeakedDescriptor, n, d.job, d.src_rank,
           "send to rank " + std::to_string(d.dst_rank) + " tag " +
               std::to_string(d.tag) + " (" + std::to_string(d.bytes) +
               "B, req " + std::to_string(d.request) + ", posted at " +
               sim::formatTime(d.posted_at) + ") never exchanged");
    }
    for (const SendDescriptor& d : ns.bs_retry) {
      leak(Category::kOrphanedRetransmit, n, d.job, d.src_rank,
           "send to rank " + std::to_string(d.dst_rank) + " tag " +
               std::to_string(d.tag) + " stuck after " +
               std::to_string(d.retries) + " retransmission(s)");
    }
    ns.remote_sends.forEach([&](const SendDescriptor& d) {
      leak(Category::kLeakedDescriptor, n, d.job, d.src_rank,
           "exchanged send from rank " + std::to_string(d.src_rank) +
               " to rank " + std::to_string(d.dst_rank) + " tag " +
               std::to_string(d.tag) + " (" + std::to_string(d.bytes) +
               "B, posted at " + sim::formatTime(d.posted_at) +
               ") never matched a receive");
    });
    for (const RecvDescriptor& d : ns.recv_fresh) {
      leak(Category::kLeakedDescriptor, n, d.job, d.dst_rank,
           "recv (src " + std::to_string(d.want_src) + ", tag " +
               std::to_string(d.want_tag) + ", req " +
               std::to_string(d.request) + ") never left the NIC FIFO");
    }
    ns.recv_eligible.forEach([&](const RecvDescriptor& d) {
      leak(Category::kLeakedDescriptor, n, d.job, d.dst_rank,
           "recv (src " + std::to_string(d.want_src) + ", tag " +
               std::to_string(d.want_tag) + ", req " +
               std::to_string(d.request) + ", posted at " +
               sim::formatTime(d.posted_at) + ") never matched a send");
    });
    for (const MatchDescriptor& m : ns.match_queue) {
      leak(Category::kLeakedDescriptor, n, m.send.job, m.recv.dst_rank,
           "matched message from rank " + std::to_string(m.send.src_rank) +
               " tag " + std::to_string(m.send.tag) + " stalled at " +
               std::to_string(m.offset) + "/" +
               std::to_string(m.send.bytes) + "B");
    }
    for (const GetOp& op : ns.slice_gets) {
      leak(Category::kOrphanedRetransmit, n, op.job, op.dst_rank,
           "scheduled chunk (" + std::to_string(op.bytes) + "B from rank " +
               std::to_string(op.src_rank) + ") never transferred");
    }
    for (const RmaOpDescriptor& op : ns.rma_fresh) {
      leak(Category::kLeakedDescriptor, n, op.job, op.origin_rank,
           std::string("rma ") + rmaKindName(op.kind) + " to window " +
               std::to_string(op.window) + " of rank " +
               std::to_string(op.target_rank) + " (req " +
               std::to_string(op.request) + ", posted at " +
               sim::formatTime(op.posted_at) + ") never exchanged");
    }
    for (const RmaOpDescriptor& op : ns.rma_retry) {
      leak(Category::kOrphanedRetransmit, n, op.job, op.origin_rank,
           std::string("rma ") + rmaKindName(op.kind) + " to window " +
               std::to_string(op.window) + " of rank " +
               std::to_string(op.target_rank) + " stuck after " +
               std::to_string(op.retries) + " retransmission(s)");
    }
    for (const RmaOpDescriptor& op : ns.rma_inbound) {
      leak(Category::kLeakedDescriptor, n, op.job, op.target_rank,
           std::string("rma ") + rmaKindName(op.kind) + " from rank " +
               std::to_string(op.origin_rank) + " on window " +
               std::to_string(op.window) + " (req " +
               std::to_string(op.request) + ") never applied");
    }
    for (const RmaOpDescriptor& op : ns.rma_returns) {
      leak(Category::kOrphanedRetransmit, n, op.job, op.target_rank,
           std::string("rma ") + rmaKindName(op.kind) + " completion for rank " +
               std::to_string(op.origin_rank) + " (req " +
               std::to_string(op.request) + ") never returned to origin");
    }
    {
      // chunk_progress is an unordered_map; normalize to key order before
      // reporting so the audit is replay-identical.
      std::vector<ProgressKey> keys;
      keys.reserve(ns.chunk_progress.size());
      for (const auto& [key, bytes] : ns.chunk_progress) keys.push_back(key);
      std::sort(keys.begin(), keys.end(), [](const ProgressKey& a,
                                             const ProgressKey& b) {
        if (a.job != b.job) return a.job < b.job;
        if (a.dst_rank != b.dst_rank) return a.dst_rank < b.dst_rank;
        return a.recv_req < b.recv_req;
      });
      for (const ProgressKey& key : keys) {
        leak(Category::kOrphanedRetransmit, n, key.job, key.dst_rank,
             "partial byte accounting for req " +
                 std::to_string(key.recv_req) + " (" +
                 std::to_string(ns.chunk_progress.at(key)) +
                 "B landed) with no completion");
      }
    }
    for (const CollectiveDescriptor& d : ns.coll_fresh) {
      leak(Category::kLeakedDescriptor, n, d.job, d.rank,
           "collective #" + std::to_string(d.gen) +
               " descriptor never pre-processed");
    }
    for (const auto& [job, pc] : ns.pending_coll) {
      if (!pc.active) continue;
      leak(Category::kLeakedDescriptor, n, job,
           pc.local.empty() ? -1 : pc.local.front().rank,
           "collective #" + std::to_string(pc.gen) + " (" +
               std::string(collectiveTypeName(pc.type)) + ", " +
               std::to_string(pc.local.size()) +
               " local rank(s)) never globally scheduled");
    }
  }
  // Tree mode: walk the per-rack SS queues in rack order so a coalesced ack
  // stuck below the root is reported with rack provenance (tree.cpp).
  if (tree_mode_) treeAudit(v, now);
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const JobState& js = jobs_[j];
    for (std::size_t r = 0; r < js.ranks.size(); ++r) {
      const RankState& rs = js.ranks[r];
      // The request table is an unordered_map; sort the ids so identical
      // runs report identical orders.
      std::vector<std::uint64_t> open;
      for (const auto& [req, info] : rs.requests) {
        if (!info.complete) open.push_back(req);
      }
      std::sort(open.begin(), open.end());
      for (std::uint64_t req : open) {
        leak(Category::kUnfinishedRequest, rs.node, static_cast<int>(j),
             static_cast<int>(r),
             "request " + std::to_string(req) + " never completed" +
                 (rs.finished ? " (rank exited without waiting)" : ""));
      }
    }
  }
  v.finalizeAudit(now, slice_index_);
}

// ---------------------------------------------------------------------------
// Strobe Receiver + NIC threads (compute nodes)
// ---------------------------------------------------------------------------

void Runtime::opStarted(int node) { ++nodeState(node).outstanding; }

void Runtime::opFinished(int node) {
  NodeState& ns = nodeState(node);
  if (--ns.outstanding == 0) {
    // The phase_done replica is written in both modes: tree-mode recovery
    // after a root election still quiesces via this variable.
    core_.writeVarLocal(node, phase_done_var_,
                        static_cast<std::int64_t>(ns.phase_seq));
    if (tree_mode_) treeMemberDone(node);
  }
}

void Runtime::beginNodePhase(int node, std::uint64_t seq, Duration floor,
                             Duration work_cost) {
  NodeState& ns = nodeState(node);
  ns.phase_seq = seq;
  ns.outstanding = 0;
  // One token for the NIC-thread processing time (at least the phase floor).
  opStarted(node);
  const Duration busy = std::max(floor, work_cost);
  if (busy <= 0) {
    // Degenerate (test) configurations: complete via the engine so the
    // outstanding counter still protects against early completion.
    cluster_.engine().at(cluster_.engine().now(),
                         [this, node] { opFinished(node); });
  } else {
    cluster_.engine().after(busy, [this, node] { opFinished(node); });
  }
}

void Runtime::onStrobe(int node, Phase p, std::uint64_t seq) {
  if (nodeEvicted(node)) return;  // strobe raced an eviction
  // Feed the slice watchdog: a strobe is proof of Strobe Sender life.
  NodeState& ns = nodeState(node);
  ns.last_strobe = cluster_.engine().now();
  if (!ns.watchdog_armed) {
    armWatchdogAt(node, ns.last_strobe + watchdogTimeout());
  }
  raceNode(node, race::FieldGroup::kPhase, race::RaceDetector::Access::kWrite,
           "Runtime::onStrobe");
  switch (p) {
    case Phase::kDem: runDem(node, seq); return;
    case Phase::kMsm: runMsm(node, seq); return;
    case Phase::kP2p: runP2p(node, seq); return;
    case Phase::kBbm: runBbm(node, seq); return;
    case Phase::kRm: runRm(node, seq); return;
  }
}

// ---------------------------------------------------------------------------
// Fault recovery
// ---------------------------------------------------------------------------

void Runtime::notifyNodeFailure(int node) {
  if (node < 0 || node >= cluster_.numComputeNodes() || nodeEvicted(node)) {
    return;
  }
  evicted_[static_cast<std::size_t>(node)] = 1;
  ++stats_.evictions;
  live_compute_nodes_.erase(std::remove(live_compute_nodes_.begin(),
                                        live_compute_nodes_.end(), node),
                            live_compute_nodes_.end());
  pending_evictions_.push_back(node);
  if (trace_) {
    trace_->record(cluster_.engine().now(), sim::TraceCategory::kFault, node,
                   "node evicted; recovery at next slice boundary");
  }
  // Tree repair runs immediately (not at the boundary): the in-flight
  // microphase must be able to finish without the dead member, and a dead
  // rack SS needs a successor before the rack can ack anything.
  if (tree_mode_) treeHandleEviction(node);
}

void Runtime::performRecovery() {
  ++stats_.recovery_slices;
  std::vector<int> dead;
  dead.swap(pending_evictions_);
  for (int node : dead) evictNodeState(node);
  // The survivors' state is globally consistent at this boundary (the dead
  // node completed no transfers after leaving the poll set): take the
  // coordinated checkpoint the paper's §6 sketches.
  recovery_records_.push_back(snapshot());
  if (trace_) {
    trace_->record(cluster_.engine().now(), sim::TraceCategory::kFault, -1,
                   "recovery complete: " + std::to_string(dead.size()) +
                       " node(s) evicted, checkpoint at slice " +
                       std::to_string(slice_index_));
  }
  maybeStop();
}

void Runtime::evictNodeState(int node) {
  NodeState& dead_ns = nodeState(node);
  if (dead_ns.watchdog_armed) cluster_.engine().cancel(dead_ns.watchdog);

  // 1. Requests of *live* ranks whose completion depended on the dead node's
  //    local queues.  (The counterpart descriptor lives on the dead node and
  //    will be discarded below.)
  dead_ns.remote_sends.forEach([this](const SendDescriptor& s) {
    // A send whose descriptor reached the dead BR but never matched: the
    // (live) sender's request can no longer complete.
    failRequest(s.job, s.src_rank, s.request, s.dst_rank, s.tag);
  });
  for (const MatchDescriptor& m : dead_ns.match_queue) {
    failRequest(m.send.job, m.send.src_rank, m.send.request, m.recv.dst_rank,
                m.send.tag);
  }
  for (const GetOp& op : dead_ns.slice_gets) {
    // Chunks the dead DH would have pulled from live senders.
    failRequest(op.job, op.src_rank, op.send_req, op.dst_rank, op.tag);
  }
  // RMA ops from live origins that reached the dead node — arrived but not
  // applied (rma_inbound), or applied with the completion still queued
  // (rma_returns) — can no longer complete normally.
  for (const RmaOpDescriptor& op : dead_ns.rma_inbound) {
    if (nodeOfRank(op.job, op.origin_rank) == node) continue;
    failRequest(op.job, op.origin_rank, op.request, op.target_rank, op.window);
  }
  for (const RmaOpDescriptor& op : dead_ns.rma_returns) {
    if (nodeOfRank(op.job, op.origin_rank) == node) continue;
    failRequest(op.job, op.origin_rank, op.request, op.target_rank, op.window);
  }

  // 2. Ranks on the dead node are gone; their jobs run degraded.  Their RMA
  //    windows go with them — remote ops targeting them fail at the next
  //    drain instead of writing into unreachable NIC memory.
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    JobState& js = jobs_[j];
    for (std::size_t r = 0; r < js.ranks.size(); ++r) {
      if (js.node_of_rank[r] != node) continue;
      windows_.dropOwner(
          windowOwnerKey(static_cast<int>(j), static_cast<int>(r)));
      if (js.ranks[r].finished) continue;
      js.degraded = true;
      rankFinished(static_cast<int>(j), static_cast<int>(r));
    }
  }

  // 3. Drop every queue of the dead node (its NIC memory is unreachable).
  dead_ns = NodeState{};

  // 4. Scrub the survivors' queues of work pinned to the dead node.
  for (int n : live_compute_nodes_) {
    NodeState& ns = nodeState(n);
    auto send_to_dead = [this, node](const SendDescriptor& s) {
      if (nodeOfRank(s.job, s.dst_rank) != node) return false;
      failRequest(s.job, s.src_rank, s.request, s.dst_rank, s.tag);
      return true;
    };
    ns.bs_fresh.erase(
        std::remove_if(ns.bs_fresh.begin(), ns.bs_fresh.end(), send_to_dead),
        ns.bs_fresh.end());
    ns.bs_retry.erase(
        std::remove_if(ns.bs_retry.begin(), ns.bs_retry.end(), send_to_dead),
        ns.bs_retry.end());
    auto recv_from_dead = [this, node](const RecvDescriptor& r) {
      if (r.want_src == mpi::kAnySource ||
          nodeOfRank(r.job, r.want_src) != node) {
        return false;
      }
      failRequest(r.job, r.dst_rank, r.request, r.want_src, r.want_tag);
      return true;
    };
    ns.recv_fresh.erase(std::remove_if(ns.recv_fresh.begin(),
                                       ns.recv_fresh.end(), recv_from_dead),
                        ns.recv_fresh.end());
    ns.recv_eligible.eraseIf(recv_from_dead);
    // Unexchanged RMA ops aimed at the dead node's windows can never apply.
    auto rma_to_dead = [this, node](const RmaOpDescriptor& op) {
      if (nodeOfRank(op.job, op.target_rank) != node) return false;
      failRequest(op.job, op.origin_rank, op.request, op.target_rank,
                  op.window);
      return true;
    };
    ns.rma_fresh.erase(std::remove_if(ns.rma_fresh.begin(),
                                      ns.rma_fresh.end(), rma_to_dead),
                       ns.rma_fresh.end());
    ns.rma_retry.erase(std::remove_if(ns.rma_retry.begin(),
                                      ns.rma_retry.end(), rma_to_dead),
                       ns.rma_retry.end());
    // Inbound ops and queued completions whose origin rank died drop
    // silently — there is no one left to complete them to.
    auto origin_dead = [this, node](const RmaOpDescriptor& op) {
      return nodeOfRank(op.job, op.origin_rank) == node;
    };
    ns.rma_inbound.erase(std::remove_if(ns.rma_inbound.begin(),
                                        ns.rma_inbound.end(), origin_dead),
                         ns.rma_inbound.end());
    ns.rma_returns.erase(std::remove_if(ns.rma_returns.begin(),
                                        ns.rma_returns.end(), origin_dead),
                         ns.rma_returns.end());
    // Descriptors that arrived *from* ranks of the dead node can never be
    // paid off by a DH get; discard them so probes stop seeing ghosts.
    ns.remote_sends.eraseIf([this, node](const SendDescriptor& s) {
      return nodeOfRank(s.job, s.src_rank) == node;
    });
    ns.match_queue.erase(
        std::remove_if(ns.match_queue.begin(), ns.match_queue.end(),
                       [this, node, &ns](const MatchDescriptor& m) {
                         if (nodeOfRank(m.send.job, m.send.src_rank) != node) {
                           return false;
                         }
                         failRequest(m.recv.job, m.recv.dst_rank,
                                     m.recv.request, m.send.src_rank,
                                     m.send.tag);
                         ns.chunk_progress.erase(ProgressKey{
                             m.recv.job, m.recv.dst_rank, m.recv.request});
                         return true;
                       }),
        ns.match_queue.end());
    ns.slice_gets.erase(
        std::remove_if(ns.slice_gets.begin(), ns.slice_gets.end(),
                       [this, node, &ns](const GetOp& op) {
                         if (op.src_node != node) return false;
                         failRequest(op.job, op.dst_rank, op.recv_req,
                                     op.src_rank, op.tag);
                         ns.chunk_progress.erase(
                             ProgressKey{op.job, op.dst_rank, op.recv_req});
                         return true;
                       }),
        ns.slice_gets.end());
    // Collectives of a degraded job can never be globally scheduled (the
    // dead node's flag variable will not advance): fail the ones that have
    // not started executing.  A collective already mid-execution is left
    // alone — see DESIGN.md, "Fault model", documented limitations.
    for (auto& [job, pc] : ns.pending_coll) {
      if (!pc.active || pc.executing || !jobState(job).degraded) continue;
      for (const CollectiveDescriptor& d : pc.local) {
        failRequest(d.job, d.rank, d.request, mpi::kAnySource, mpi::kAnyTag);
      }
      pc.active = false;
      pc.local.clear();
    }
  }
}

// ---------------------------------------------------------------------------
// Control-plane failover: slice watchdogs, backup-SS election, rejoin
// ---------------------------------------------------------------------------

void Runtime::armWatchdogAt(int node, SimTime when) {
  if (config_.watchdog_slices <= 0 || stop_requested_) return;
  NodeState& ns = nodeState(node);
  ns.watchdog_armed = true;
  const SimTime at = std::max(when, cluster_.engine().now());
  ns.watchdog_at = at;  // recorded so snapshots can re-arm at the deadline
  ns.watchdog = cluster_.engine().at(at, [this, node] { onWatchdog(node); });
}

void Runtime::onWatchdog(int node) {
  NodeState& ns = nodeState(node);
  ns.watchdog_armed = false;
  if (stop_requested_ || config_.watchdog_slices <= 0 || nodeEvicted(node)) {
    return;
  }
  const SimTime now = cluster_.engine().now();
  if (cluster_.faults()->nodeDown(node, now)) {
    // This SR's own node is down; a later strobe receipt (short hang) or
    // rejoin re-arms the watchdog.
    return;
  }
  const SimTime deadline = ns.last_strobe + watchdogTimeout();
  if (now < deadline) {
    // A strobe arrived since the timer was set — re-check at its deadline.
    armWatchdogAt(node, deadline);
    return;
  }
  if (node == strobe_node_) return;  // the Strobe Sender never suspects itself
  ++stats_.watchdog_fires;
  if (trace_) {
    trace_->record(now, sim::TraceCategory::kFailover, node,
                   "slice watchdog fired: no microstrobe for " +
                       std::to_string(config_.watchdog_slices) + " slices");
  }
  if (live_compute_nodes_.empty()) return;
  if (tree_mode_) {
    // Two-level suspicion ladder: rack SSes suspect the root, plain members
    // suspect their rack SS (tree.cpp).
    onWatchdogTree(node);
    return;
  }
  if (node != live_compute_nodes_.front()) {
    // Not the election leader: keep watching.  The lowest-id live node runs
    // the claim; everyone converges on the same leader deterministically.
    armWatchdogAt(node, now + watchdogTimeout());
    return;
  }
  beginElection(node);
}

void Runtime::stopWatchdogs() {
  for (int n : all_compute_nodes_) {
    NodeState& ns = nodeState(n);
    if (!ns.watchdog_armed) continue;
    cluster_.engine().cancel(ns.watchdog);
    ns.watchdog_armed = false;
  }
}

void Runtime::beginElection(int node) {
  if (election_inflight_) {
    armWatchdogAt(node, cluster_.engine().now() + watchdogTimeout());
    return;
  }
  election_inflight_ = true;
  if (trace_) {
    trace_->record(cluster_.engine().now(), sim::TraceCategory::kFailover,
                   node,
                   "suspecting Strobe Sender death; claiming epoch " +
                       std::to_string(control_epoch_ + 1));
  }
  // The claim: Compare-And-Write(epoch == current, write current+1) over the
  // whole live set.  Atomic over the quorum, so concurrent claims serialize;
  // it fails while any live-set replica is unreachable or already bumped.
  core::CompareAndWriteRequest req;
  req.src_node = node;
  req.nodes = live_compute_nodes_;
  req.var = epoch_var_;
  req.op = core::CmpOp::kEQ;
  req.value = static_cast<std::int64_t>(control_epoch_);
  req.do_write = true;
  req.write_var = epoch_var_;
  req.write_value = static_cast<std::int64_t>(control_epoch_ + 1);
  core_.compareAndWriteAsync(std::move(req), [this, node](bool claimed) {
    if (!claimed) {
      if (trace_) {
        trace_->record(cluster_.engine().now(), sim::TraceCategory::kFailover,
                       node, "epoch claim failed; retrying");
      }
      cluster_.engine().after(config_.election_retry_interval, [this, node] {
        election_inflight_ = false;
        // Re-enter through the watchdog: if strobes resumed meanwhile (the
        // claim lost to a concurrent winner) this re-arms instead of
        // re-electing.
        onWatchdog(node);
      });
      return;
    }
    election_inflight_ = false;
    ++control_epoch_;
    ++stats_.elections;
    const int old_ss = strobe_node_;
    strobe_node_ = node;
    strobing_ = true;
    if (trace_) {
      trace_->record(cluster_.engine().now(), sim::TraceCategory::kFailover,
                     node,
                     "elected backup Strobe Sender (was n" +
                         std::to_string(old_ss) + "), epoch " +
                         std::to_string(control_epoch_) +
                         "; recovering phase seq " +
                         std::to_string(phase_seq_));
    }
    if (failover_handler_) failover_handler_(node, control_epoch_);
    recoverPhase();
  });
}

void Runtime::recoverPhase() {
  // Before strobing anew, the backup must know the interrupted microphase
  // has quiesced — every live node's in-flight NIC work for the last strobed
  // seq completed — or the per-node outstanding counters would be clobbered.
  // The phase/slice sequence number itself is already known to every SR
  // (each microstrobe carries it); the Compare-And-Write below recovers the
  // *global* completion state for it.  Nodes that can never complete (they
  // died with the old SS) leave via heartbeat eviction, which the failed-
  // over Machine Manager keeps running, so this poll cannot hang forever.
  if (stop_requested_ || live_compute_nodes_.empty()) {
    strobing_ = false;
    return;
  }
  core::CompareAndWriteRequest req;
  req.src_node = strobe_node_;
  req.nodes = live_compute_nodes_;
  req.var = phase_done_var_;
  req.op = core::CmpOp::kGE;
  req.value = static_cast<std::int64_t>(phase_seq_);
  const std::uint64_t epoch = control_epoch_;
  core_.compareAndWriteAsync(std::move(req), [this, epoch](bool done) {
    if (epoch != control_epoch_) return;
    if (done) {
      resumeStrobe();
    } else {
      cluster_.engine().after(config_.strobe_poll_interval, [this, epoch] {
        if (epoch != control_epoch_) return;
        recoverPhase();
      });
    }
  });
}

void Runtime::resumeStrobe() {
  const SimTime now = cluster_.engine().now();
  SimTime next = slice_start_ + config_.time_slice;
  if (next <= now) {
    const std::uint64_t k = static_cast<std::uint64_t>(
        (now - slice_start_) / config_.time_slice);
    next = slice_start_ + static_cast<SimTime>(k + 1) * config_.time_slice;
  }
  if (trace_) {
    trace_->record(now, sim::TraceCategory::kFailover, strobe_node_,
                   "phase quiesced; strobing resumes at " +
                       sim::formatTime(next));
  }
  const std::uint64_t epoch = control_epoch_;
  cluster_.engine().at(next, [this, epoch] {
    if (epoch != control_epoch_) return;
    startSlice();
  });
}

void Runtime::notifyNodeRejoin(int node) {
  if (node < 0 || node >= cluster_.numComputeNodes() || !nodeEvicted(node)) {
    return;
  }
  for (int p : pending_rejoins_) {
    if (p == node) return;
  }
  pending_rejoins_.push_back(node);
  if (trace_) {
    trace_->record(cluster_.engine().now(), sim::TraceCategory::kFailover,
                   node, "rejoin announced; reintegration at slice boundary");
  }
  // With the strobe stopped (job already over, or SS dead pending election)
  // there is no upcoming boundary to wait for — reintegrate immediately so
  // the node is part of whatever happens next.
  if (!strobing_) performRejoins();
}

void Runtime::performRejoins() {
  std::vector<int> back;
  back.swap(pending_rejoins_);
  const SimTime now = cluster_.engine().now();
  for (int node : back) {
    if (!nodeEvicted(node)) continue;
    evicted_[static_cast<std::size_t>(node)] = 0;
    // The node returns scrubbed: NIC queues rebuilt from scratch (its ranks
    // were force-finished at eviction and stay finished).
    nodeState(node) = NodeState{};
    live_compute_nodes_.insert(
        std::lower_bound(live_compute_nodes_.begin(),
                         live_compute_nodes_.end(), node),
        node);
    // Bring the replicated control state up to date so the node is a sound
    // quorum member for future elections and phase polls.
    core_.writeVarLocal(node, epoch_var_,
                        static_cast<std::int64_t>(control_epoch_));
    core_.writeVarLocal(node, phase_done_var_,
                        static_cast<std::int64_t>(phase_seq_));
    ++stats_.rejoins;
    if (trace_) {
      trace_->record(now, sim::TraceCategory::kFailover, node,
                     "rejoined at slice " + std::to_string(slice_index_) +
                         " (epoch " + std::to_string(control_epoch_) +
                         "): queues rebuilt");
    }
    NodeState& ns = nodeState(node);
    ns.last_strobe = now;
    if (!ns.watchdog_armed) {
      armWatchdogAt(node, ns.last_strobe + watchdogTimeout());
    }
    if (tree_mode_) treeHandleRejoin(node);
  }
}

}  // namespace bcs::bcsmpi
