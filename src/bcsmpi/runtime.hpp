#pragma once

// The BCS-MPI runtime system (paper §4).
//
// One Runtime instance manages the whole machine, mirroring the paper's
// process/thread architecture:
//
//   * The Strobe Sender (SS) logic runs on the management node: it opens
//     every microphase by multicasting a microstrobe (Xfer-And-Signal) to
//     the Strobe Receivers and polls for global phase completion with
//     Compare-And-Write, exactly as in Figure 5.
//   * Per compute node, the Strobe Receiver (SR) reacts to microstrobes and
//     activates the NIC threads of the new microphase: the Buffer Sender
//     (BS) and Buffer Receiver (BR) in the two global-message-scheduling
//     microphases, the DMA Helper (DH) in the point-to-point microphase,
//     the Collective Helper (CH) in the broadcast/barrier microphase and
//     the Reduce Helper (RH) in the reduce microphase.
//   * The Node Manager (NM) duties — waking blocked processes at slice
//     boundaries and (optionally) gang-scheduling between jobs — happen at
//     the DEM strobe, the start of each slice.
//
// All inter-node interaction goes through the three BCS core primitives
// (src/bcs); the runtime never touches the fabric directly except via them.
//
// Application processes interact with the runtime only by posting
// descriptors (descriptors.hpp) and blocking on request completion.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bcs/core.hpp"
#include "bcs/window.hpp"
#include "bcsmpi/config.hpp"
#include "bcsmpi/descriptors.hpp"
#include "bcsmpi/matching.hpp"
#include "mpi/types.hpp"
#include "net/cluster.hpp"
#include "race/race.hpp"
#include "sim/pool.hpp"
#include "sim/process.hpp"
#include "storm/sstree.hpp"
#include "verify/verify.hpp"

namespace bcs::snapshot {
class StateIO;  // snapshot/state_io.hpp: serializes runtime internals
}

namespace bcs::bcsmpi {

using sim::Duration;
using sim::SimTime;

/// Microphases of one time slice (Figure 5).  The first two form the
/// "global message scheduling" phase, the last three "message transmission".
enum class Phase : int {
  kDem = 0,  ///< Descriptor Exchange Microphase (BS -> remote BR)
  kMsm = 1,  ///< Message Scheduling Microphase (BR matching + chunking)
  kP2p = 2,  ///< Point-to-point Microphase (DH one-sided gets)
  kBbm = 3,  ///< Broadcast & Barrier Microphase (CH)
  kRm = 4,   ///< Reduce Microphase (RH, softfloat on the NIC)
};
inline constexpr int kNumPhases = 5;

const char* phaseName(Phase p);

/// A globally consistent snapshot of the machine's communication state,
/// taken at a slice boundary (§1: "the fact that the communication state of
/// all processes is known at the beginning of every time slice facilitates
/// the implementation of checkpointing and debugging mechanisms").
///
/// At a boundary every scheduled transfer of the previous slice has
/// completed, so the global state reduces to descriptor queues plus the
/// chunk offsets of partially moved messages — no packet is in flight.
struct CheckpointRecord {
  std::uint64_t slice = 0;
  sim::SimTime time = 0;
  struct JobSnapshot {
    int job = 0;
    int ranks = 0;
    int finished_ranks = 0;
    std::uint64_t requests_posted = 0;
    std::uint64_t requests_completed = 0;
  };
  std::vector<JobSnapshot> jobs;
  struct NodeSnapshot {
    int node = 0;
    std::size_t fresh_sends = 0;       ///< posted, not yet exchanged
    std::size_t fresh_recvs = 0;
    std::size_t unmatched_remote = 0;  ///< exchanged, no matching recv yet
    std::size_t unmatched_recvs = 0;
    std::size_t partial_messages = 0;  ///< matched, mid-chunking
    std::size_t partial_bytes_moved = 0;
  };
  std::vector<NodeSnapshot> nodes;
  /// True iff no message is mid-transfer anywhere (restart from here needs
  /// no payload replay at all).
  bool quiescent = true;
};

/// Aggregate protocol counters, exposed for tests and benches.
struct RuntimeStats {
  std::uint64_t slices = 0;
  std::uint64_t microstrobes = 0;
  std::uint64_t descriptors_exchanged = 0;
  std::uint64_t matches = 0;
  std::uint64_t chunks_transferred = 0;
  std::uint64_t collectives_scheduled = 0;
  std::uint64_t slice_overruns = 0;  ///< slices whose phases ran past period
  // Fault handling (zero on a fault-free run):
  std::uint64_t retransmits = 0;      ///< descriptors/chunks re-sent after loss
  std::uint64_t requests_failed = 0;  ///< requests completed in error
  std::uint64_t evictions = 0;        ///< nodes declared dead and excluded
  std::uint64_t recovery_slices = 0;  ///< slices that opened with a recovery
  // Control-plane failover (see DESIGN.md §4c, "Control-plane failures"):
  std::uint64_t watchdog_fires = 0;   ///< slice watchdogs that expired
  std::uint64_t elections = 0;        ///< successful backup-SS promotions
  std::uint64_t rejoins = 0;          ///< evicted nodes reintegrated
  // Hierarchical control plane (BcsMpiConfig::tree_fanout, DESIGN.md §7):
  std::uint64_t tree_levels = 0;      ///< strobe fan-out levels (1 = flat)
  std::uint64_t coalesced_acks = 0;   ///< rack completions coalesced upward
  /// Control messages the root Strobe Sender touched in the last completed
  /// slice (strobe destinations + completion traffic): O(nodes) flat,
  /// O(racks) with the SS tree — the aggregation win, observable directly.
  std::uint64_t fanout_msgs_per_slice = 0;
  // Checkpoint/restore (src/snapshot, DESIGN.md §8):
  std::uint64_t checkpoints_taken = 0;  ///< periodic-policy snapshots emitted
  std::uint64_t restores = 0;           ///< times this runtime was restored
  // One-sided RMA (DESIGN.md §11):
  std::uint64_t rma_ops = 0;      ///< put/get/fetch-add operations posted
  std::uint64_t rma_batches = 0;  ///< coalesced batch descriptors exchanged

  /// Zeroes every counter (interval measurements around a workload).
  /// Prefer Runtime::resetStats, which preserves structural gauges like
  /// tree_levels across the reset.
  void reset() { *this = RuntimeStats{}; }
};

class Runtime {
 public:
  Runtime(net::Cluster& cluster, BcsMpiConfig config);

  /// Detaches the race detector from the fabric/engine before it dies (the
  /// cluster outlives the runtime; without the detach the fabric would keep
  /// a dangling observer pointer).
  ~Runtime();

  net::Cluster& cluster() { return cluster_; }
  const BcsMpiConfig& config() const { return config_; }
  core::BcsCore& core() { return core_; }
  const RuntimeStats& stats() const { return stats_; }

  /// Zeroes the interval counters (slices, strobes, descriptors, ...) while
  /// preserving structural gauges — tree_levels describes the configured
  /// control plane, not accumulated work, and must survive an interval
  /// reset.
  void resetStats() {
    const std::uint64_t levels = stats_.tree_levels;
    stats_.reset();
    stats_.tree_levels = levels;
  }

  // ---- Job and process management ----

  /// Creates a job whose rank r runs on node node_of_rank[r].
  int createJob(std::vector<int> node_of_rank);

  /// Binds the process running (job, rank).  Called from the process fiber
  /// before any communication; charges the runtime bring-up overhead and
  /// starts the global strobe on first registration.
  void registerProcess(int job, int rank, sim::Process& proc);

  /// Binds (job, rank) as a *detached* rank: no process fiber, all
  /// communication driven through postSend/postRecv/testRequest from engine
  /// timers (src/snapshot's checkpointable workloads use this — fiber stacks
  /// cannot be serialized, plain state machines can).  Mirrors
  /// registerProcess: charges the bring-up overhead and starts the strobe on
  /// first registration.
  void registerDetachedRank(int job, int rank);

  /// Marks (job, rank) finished.  The strobe stops once every registered
  /// rank of every job has finished.
  void rankFinished(int job, int rank);

  int jobSize(int job) const;
  int nodeOfRank(int job, int rank) const;

  // ---- Operations invoked from application fibers ----

  std::uint64_t postSend(int job, int rank, const void* buf,
                         std::size_t bytes, int dst, int tag);
  std::uint64_t postRecv(int job, int rank, void* buf, std::size_t bytes,
                         int src, int tag);
  /// Posts a collective; the runtime assigns the per-rank generation.
  std::uint64_t postCollective(int job, int rank, CollectiveType type,
                               int root, const void* contrib, void* result,
                               std::size_t count, mpi::Datatype dt,
                               mpi::ReduceOp op);

  // ---- One-sided RMA (rma.cpp, DESIGN.md §11) ----
  //
  // Windows are registered symmetrically (every rank registers its windows
  // in the same order, like MPI_Win_create), so window id N of any target
  // rank is addressable without metadata exchange.  Ops posted in slice t
  // are exchanged in t's DEM (coalesced per destination node), applied to
  // the target window in canonical (job, origin rank, posting seq) order in
  // t's MSM — which is what makes concurrent fetch-adds resolve identically
  // serial and parallel — and completed back at the origin so the posting
  // rank observes the result at the slice t+1 boundary: a passive-target
  // epoch per slice, no target-side code involved.

  /// Registers a window over (job, rank)'s memory; returns its window id.
  /// `base` must stay valid until every remote op targeting it completed
  /// (bound the usage with a barrier, as MPI_Win_free does).
  int createWindow(int job, int rank, void* base, std::size_t bytes);

  std::uint64_t postPut(int job, int rank, int target, int window,
                        std::size_t offset, const void* src,
                        std::size_t bytes);
  std::uint64_t postGet(int job, int rank, int target, int window,
                        std::size_t offset, void* dst, std::size_t bytes);
  /// `old_value` (optional) receives the pre-add word when the op completes.
  std::uint64_t postFetchAdd(int job, int rank, int target, int window,
                             std::size_t offset, std::int64_t delta,
                             std::int64_t* old_value);

  bool testRequest(int job, int rank, std::uint64_t req, mpi::Status* status);

  /// Non-consuming completion peek.
  bool peekRequest(int job, int rank, std::uint64_t req) const;

  /// Waits for request completion.  `spin` selects the Figure 2 semantics:
  /// false = the blocking-primitive path (process descheduled; the NM
  /// restarts it at the next slice boundary after completion); true = the
  /// MPI_Wait-on-nonblocking path (the process busy-polls the NIC flag and
  /// resumes at the completion instant).
  void waitRequest(int job, int rank, std::uint64_t req, mpi::Status* status,
                   bool spin = false);
  bool probe(int job, int rank, int src, int tag, mpi::Status* status,
             bool blocking);

  /// Index of the current time slice (also the count of DEM strobes sent).
  std::uint64_t sliceIndex() const { return slice_index_; }

  /// Parallel-run policy whose global barriers are this runtime's slice
  /// boundaries: the strobe schedule already guarantees nodes only interact
  /// across slice edges, so the engine's windowed drain (see
  /// Engine::run(ParallelPolicy)) aligns its merge points with the
  /// slice-boundary hooks (recovery, checkpoints, rejoin) for free.  The
  /// runtime itself runs entirely on shard 0 and is byte-identical under
  /// this policy; workloads sharded per node via Engine::atOn +
  /// Fabric::setShardMap get drained concurrently between boundaries.
  ///
  /// `slices_per_window` coarsens the barrier grid to every Nth slice
  /// boundary — fewer merges, longer contention-free stretches.  Safe only
  /// when all cross-shard traffic (Engine::handoff) spans at least N slice
  /// edges; cross-shard fabric sends whose latency is below N-1 slices will
  /// fail the engine's conservative-window check loudly.  The schedule of
  /// executed events is identical either way — barriers only decide when
  /// merges happen, not what order events fire in.
  sim::ParallelPolicy parallelPolicy(int threads,
                                     int slices_per_window = 1) const {
    sim::ParallelPolicy policy;
    policy.threads = threads;
    policy.window = config_.time_slice;
    policy.windows_per_barrier = slices_per_window;
    const sim::Duration grid =
        config_.time_slice * std::max(slices_per_window, 1);
    policy.next_barrier = [grid](sim::SimTime t) {
      return (t / grid + 1) * grid;  // the strobe grid: slice multiples
    };
    return policy;
  }

  /// Requests a coordinated checkpoint: `cb` runs at the next slice
  /// boundary (before the DEM strobe goes out) with a globally consistent
  /// snapshot.  Multiple pending requests are all served at that boundary.
  void requestCheckpoint(std::function<void(const CheckpointRecord&)> cb);

  /// Builds a snapshot immediately — only meaningful at a slice boundary;
  /// exposed for tests.
  CheckpointRecord snapshot() const;

  /// Installs the periodic full-state snapshot sink: when
  /// `config().checkpoint_every_slices > 0`, the sink fires at every Nth
  /// slice boundary (same quiescent point requestCheckpoint callbacks use)
  /// with the boundary's slice index.  The sink typically calls
  /// snapshot::capture (src/snapshot) — capture is pure observation, so a
  /// run with the sink installed traces identically to one without.
  void setSnapshotSink(std::function<void(std::uint64_t)> sink) {
    snapshot_sink_ = std::move(sink);
  }

  // ---- Fault handling ----

  /// Declares a compute node dead (typically wired to STORM's heartbeat
  /// death handler).  The node leaves the strobe/poll sets immediately — so
  /// the microphase in flight can still complete — and the full recovery
  /// (coordinated checkpoint of the survivors, queue scrubbing, failing of
  /// requests that can no longer complete) runs at the next slice boundary.
  /// Idempotent.
  void notifyNodeFailure(int node);

  bool nodeEvicted(int node) const {
    return node >= 0 && node < static_cast<int>(evicted_.size()) &&
           evicted_[static_cast<std::size_t>(node)] != 0;
  }

  /// Coordinated checkpoints taken by recovery slices, in eviction order.
  const std::vector<CheckpointRecord>& recoveryCheckpoints() const {
    return recovery_records_;
  }

  // ---- Control-plane failover ----

  /// Node currently acting as Strobe Sender.  Initially the management
  /// node; a successful failover election moves it to a compute node.
  int strobeNode() const { return strobe_node_; }

  /// Generation counter of the Strobe Sender role, bumped by every
  /// successful election.  Replicated across live nodes in a global
  /// variable, which is what election claims Compare-And-Write against.
  std::uint64_t controlEpoch() const { return control_epoch_; }

  /// Invoked after a successful failover election with (new strobe node,
  /// new epoch).  Wire it to Storm::failoverTo so STORM's Machine Manager
  /// role (heartbeats, death declaration) moves with the Strobe Sender.
  void setFailoverHandler(std::function<void(int, std::uint64_t)> handler) {
    failover_handler_ = std::move(handler);
  }

  // ---- Protocol verification (src/verify, BcsMpiConfig::verify) ----

  /// The attached dynamic verifier, or nullptr when `config.verify` is off.
  verify::Verifier* verifier() { return verifier_.get(); }

  /// Runs the finalize audit — leaked descriptors, never-completed
  /// requests, orphaned retransmission state — and returns the report
  /// (nullptr when verification is off).  Invoked automatically when the
  /// strobe stops cleanly; call it manually after a bounded run of a
  /// deadlocked or faulted workload.  The audit runs at most once.
  const verify::VerifyReport* verifyAudit();

  // ---- Shard-ownership race detection (src/race, config.race_detect) ----

  /// The attached race detector, or nullptr when `config.race_detect` is
  /// off.  Workloads that shard nodes across the engine (Engine::atOn +
  /// Fabric::setShardMap) can registerObject additional state with it.
  race::RaceDetector* raceDetector() { return race_.get(); }

  /// Merges any access records still open in the current window, finalizes
  /// the detector and returns the report (nullptr when detection is off).
  /// Call after Engine::run returns — the parallel drain merges at barriers,
  /// so finalizing mid-run would double-count the open window.  Idempotent.
  const race::RaceReport* raceAudit();

  /// Announces that an evicted node is back (typically wired to STORM's
  /// rejoin handler, which fires when a hung node resumes acknowledging
  /// heartbeats).  The node is scrubbed and reintegrated at the next slice
  /// boundary: fresh queues, epoch replica brought up to date, watchdog
  /// re-armed.  Ranks that were force-finished at eviction stay finished —
  /// the node returns empty, available to the strobe set and new work.
  void notifyNodeRejoin(int node);

 private:
  struct ReqInfo {
    bool complete = false;
    bool spin_waited = false;  ///< a busy-polling MPI_Wait is watching
    mpi::Status status;
  };
  struct RankState {
    sim::Process* proc = nullptr;
    int node = -1;
    bool detached = false;  ///< registered via registerDetachedRank
    bool finished = false;
    std::uint64_t next_req = 1;
    int next_coll_gen = 0;
    int next_rma_call = 0;  ///< RMA call counter (epoch-race blame sites)
    std::uint64_t requests_completed = 0;
    // det-ok: lookup-only by request id; the verify audit (the one walk)
    // collects the keys and sorts them before reporting
    std::unordered_map<std::uint64_t, ReqInfo> requests;
  };
  struct JobState {
    std::vector<int> node_of_rank;
    std::vector<int> nodes;  ///< unique nodes, ascending
    std::vector<RankState> ranks;
    core::GlobalVarId coll_flag = -1;   ///< highest locally flagged gen
    core::GlobalVarId coll_sched = -1;  ///< highest globally scheduled gen
    int registered = 0;
    int finished = 0;
    bool degraded = false;  ///< lost at least one rank to a node eviction
  };

  /// Per-(node, job) state of the single outstanding collective.
  struct PendingCollective {
    bool active = false;
    CollectiveType type = CollectiveType::kBarrier;
    int gen = -1;
    int root = 0;
    std::size_t count = 0;
    mpi::Datatype dt = mpi::Datatype::kByte;
    mpi::ReduceOp op = mpi::ReduceOp::kSum;
    std::vector<CollectiveDescriptor> local;  ///< descriptors of local ranks
    bool flagged = false;     ///< local flag published (all local ranks in)
    bool caw_inflight = false;  ///< master node: scheduling query running
    bool executing = false;   ///< picked up by CH/RH this slice
    // Reduce Helper state:
    int children_left = 0;
    int parent_node = -1;
    bool local_ready = false;
    std::vector<std::byte> partial;
    std::vector<std::shared_ptr<std::vector<std::byte>>> queued_partials;
  };

  /// One scheduled chunk transfer (a DH get), built in the MSM.
  struct GetOp {
    int src_node = 0;
    const std::byte* src = nullptr;
    std::byte* dst = nullptr;
    std::size_t bytes = 0;
    bool final_chunk = false;
    int job = 0;
    int src_rank = 0;
    int dst_rank = 0;
    int tag = 0;
    std::size_t message_bytes = 0;
    std::uint64_t send_req = 0;
    std::uint64_t recv_req = 0;
  };

  /// Identifies an in-progress message's byte accounting entry.
  struct ProgressKey {
    int job = 0;
    int dst_rank = 0;
    std::uint64_t recv_req = 0;
    bool operator==(const ProgressKey&) const = default;
  };
  struct ProgressKeyHash {
    std::size_t operator()(const ProgressKey& k) const {
      std::uint64_t h = 1469598103934665603ull;
      for (std::uint64_t v : {static_cast<std::uint64_t>(k.job),
                              static_cast<std::uint64_t>(k.dst_rank),
                              k.recv_req}) {
        h = (h ^ v) * 1099511628211ull;
      }
      return static_cast<std::size_t>(h);
    }
  };

  struct NodeState {
    // Buffer Sender
    std::deque<SendDescriptor> bs_fresh;
    std::deque<SendDescriptor> bs_retry;  ///< lost in DEM, resent next slice
    // Buffer Receiver
    SendMatchIndex remote_sends;   ///< arrived during DEMs, by envelope
    std::deque<RecvDescriptor> recv_fresh;  ///< posted by local ranks
    RecvMatchIndex recv_eligible;  ///< visible to matching, by envelope
    std::deque<MatchDescriptor> match_queue;   ///< unscheduled remainders
    std::deque<CollectiveDescriptor> coll_fresh;
    std::map<int, PendingCollective> pending_coll;  ///< by job id
    // DMA Helper work for the current slice
    std::vector<GetOp> slice_gets;
    /// Bytes landed so far per in-progress message, keyed by
    /// (job, dst_rank, recv_req).  Under retransmission a retried earlier
    /// chunk may deliver *after* the message's final chunk, so completion is
    /// driven by byte accounting, not by the final-chunk flag.
    // det-ok: keyed lookup on the DMA path; the verify audit (the one walk)
    // sorts the collected keys before reporting
    std::unordered_map<ProgressKey, std::size_t, ProgressKeyHash>
        chunk_progress;
    /// MSM scratch: candidate recv seqs for this slice's matching pass
    /// (member, not local, so its capacity survives across slices).
    std::vector<std::uint64_t> match_scratch;
    // One-sided RMA (DESIGN.md §11): ops posted by local ranks await the
    // next DEM in rma_fresh; ops lost on the wire wait a slice in
    // rma_retry; ops that arrived for windows homed on this node are
    // applied by the MSM from rma_inbound; applied ops ride rma_returns
    // back to their origin node in the P2P microphase.
    std::deque<RmaOpDescriptor> rma_fresh;
    std::deque<RmaOpDescriptor> rma_retry;
    std::vector<RmaOpDescriptor> rma_inbound;
    std::vector<RmaOpDescriptor> rma_returns;
    // Node Manager
    std::vector<std::pair<int, int>> wake_list;   ///< (job, rank)
    std::vector<std::pair<int, int>> probe_waiters;
    // Microphase completion tracking
    std::uint64_t phase_seq = 0;
    int outstanding = 0;
    // Tree mode (tree_fanout > 0): tokens released by rack-level events
    // rather than per-node timers.  `tree_floor` marks the phase-floor token
    // the rack's shared floor event releases; `tree_drain` marks the DEM
    // FIFO-drain token the rack's shared drain event releases.
    bool tree_floor = false;
    bool tree_drain = false;
    // Slice watchdog (Strobe Receiver side of control-plane failover).
    SimTime last_strobe = 0;
    sim::EventId watchdog{};
    bool watchdog_armed = false;
    SimTime watchdog_at = 0;  ///< deadline of the armed watchdog (snapshots)
  };

  /// Per-rack strobe-protocol state (tree mode).  Role/membership live in
  /// storm::SsTree (sstree_); this is the in-flight microphase bookkeeping
  /// the rack SS keeps alongside.
  struct TreeRackState {
    std::uint64_t seq = 0;        ///< newest microphase relayed to members
    std::uint64_t acked_seq = 0;  ///< newest microphase acked to the root
    int pending = 0;              ///< members still busy with `seq`
  };

  // ---- Strobe Sender (management node) ----
  void startSlice();
  void strobePhase(Phase p);
  void pollPhaseDone(Phase p, std::uint64_t seq);
  void phaseComplete(Phase p);
  void maybeStop();

  // ---- Strobe Receiver / NIC threads (compute nodes) ----
  void onStrobe(int node, Phase p, std::uint64_t seq);
  void beginNodePhase(int node, std::uint64_t seq, Duration floor,
                      Duration work_cost);
  void opStarted(int node);
  void opFinished(int node);
  void runDem(int node, std::uint64_t seq);
  void drainDescriptorFifos(int node);
  void runMsm(int node, std::uint64_t seq);
  void runP2p(int node, std::uint64_t seq);
  void runBbm(int node, std::uint64_t seq);
  void runRm(int node, std::uint64_t seq);

  // One-sided RMA (rma.cpp): DEM coalesced exchange, MSM canonical apply,
  // P2P completion returns.
  void drainRmaFifos(int node);
  void scheduleRmaOps(int node, Duration& cost);
  void applyRmaOp(int node, const RmaOpDescriptor& op);
  void runRmaReturns(int node);
  static std::uint64_t windowOwnerKey(int job, int rank) {
    return (static_cast<std::uint64_t>(job) << 20) |
           static_cast<std::uint64_t>(rank);
  }

  // BR helpers
  int preprocessCollectivesCount(int node);
  void matchDescriptors(int node, Duration& cost);
  void scheduleChunks(int node);
  void scheduleCollectiveQueries(int node);
  /// Issues the DH gets of one P2P microphase (shared by the flat and tree
  /// strobe paths; behavior-identical to the historical runP2p loop).
  void issueGets(int node, const std::vector<GetOp>& gets);
  /// CH/RM pickup: marks schedulable collectives of the requested kind
  /// (reduce_phase selects RM's reduce/allreduce vs BBM's bcast/barrier)
  /// executing and returns how many were picked up.
  int collectReadyCollectives(int node, bool reduce_phase,
                              std::vector<int>& ready_jobs);

  // Hierarchical control plane (tree.cpp; active iff tree_fanout > 0).
  void strobePhaseTree(Phase p, std::uint64_t seq);
  void onRackStrobe(int rack, Phase p, std::uint64_t seq);
  void rackFanout(int rack, Phase p, std::uint64_t seq);
  Duration treeInitMember(int node, Phase p, std::uint64_t seq);
  bool treeMemberIdle(const NodeState& ns, Phase p) const;
  void treeReleaseFloor(int rack, std::uint64_t seq);
  void treeDrain(int rack, std::uint64_t seq);
  void treeMemberDone(int node);
  void sendRackAck(int rack, std::uint64_t seq);
  void onRackAck(int rack, std::uint64_t seq);
  void maybeTreePhaseDone();
  void treeRecover();
  void onWatchdogTree(int node);
  void beginTreeElection(int node);
  void treeHandleEviction(int node);
  void treeHandleRejoin(int node);
  void treeAudit(verify::Verifier& v, SimTime now);

  // CH / RH helpers (collectives.cpp)
  using Payload = std::shared_ptr<std::vector<std::byte>>;
  void executeBroadcast(int node, int job);
  void executeReduce(int node, int job);
  void reduceIncoming(int node, int job, Payload data);
  void reduceApply(int node, int job, Payload data);
  void reduceAdvance(int node, int job);
  void reduceSendUp(int node, int job);
  void reduceDeliverResult(int node, int job);
  void finishCollectiveOnNode(int node, int job, Payload payload);
  int collectiveOwnerNode(const JobState& js,
                          const PendingCollective& pc) const;

  // Completion plumbing
  ReqInfo& reqInfo(int job, int rank, std::uint64_t req);
  void completeRequest(int job, int rank, std::uint64_t req, int peer,
                       int tag, std::size_t bytes);
  /// Completes a request *in error* (peer unreachable).  Idempotent; never
  /// wakes ranks living on evicted nodes.
  void failRequest(int job, int rank, std::uint64_t req, int peer, int tag);
  void wakeAtSliceStart(int node);

  // Fault recovery (runtime.cpp)
  void performRecovery();
  void evictNodeState(int node);

  // Protocol verification (runtime.cpp): the queue/request walk behind
  // verifyAudit().
  void runVerifyAudit();

  // Control-plane failover (runtime.cpp)
  Duration watchdogTimeout() const {
    return static_cast<Duration>(config_.watchdog_slices) * config_.time_slice;
  }
  void armWatchdogAt(int node, SimTime when);
  void onWatchdog(int node);
  void stopWatchdogs();
  void beginElection(int node);
  void recoverPhase();
  void resumeStrobe();
  void performRejoins();

  /// Runs the post-capture tail of startSlice() after a snapshot restore:
  /// the restored state corresponds exactly to the capture point (after
  /// recovery/rejoins, before the boundary bookkeeping), so this picks the
  /// slice up from there.  Invoked only by snapshot::StateIO via the
  /// restore-resume event.
  void resumeFromRestore();

  RankState& rankState(int job, int rank);
  JobState& jobState(int job);
  NodeState& nodeState(int node);

  // Race-detector hooks (src/race): one pointer null check when off.  Const
  // because the read-side hooks live in const methods; record() observes,
  // it never mutates runtime state.
  void raceNode(int node, race::FieldGroup group,
                race::RaceDetector::Access access, const char* site) const {
    if (race_) {
      race_->record(race::ObjectKind::kNodeState,
                    static_cast<std::uint64_t>(node), group, access, site);
    }
  }
  void raceRank(int job, int rank, race::RaceDetector::Access access,
                const char* site) const {
    if (race_) {
      race_->record(race::ObjectKind::kRankTable,
                    (static_cast<std::uint64_t>(job) << 16) |
                        static_cast<std::uint64_t>(rank),
                    race::FieldGroup::kRequests, access, site);
    }
  }
  void raceWindow(int job, int rank, int window,
                  race::RaceDetector::Access access, const char* site) const {
    if (race_) {
      race_->record(race::ObjectKind::kRmaWindow,
                    (static_cast<std::uint64_t>(job) << 40) |
                        (static_cast<std::uint64_t>(rank) << 8) |
                        static_cast<std::uint64_t>(window),
                    race::FieldGroup::kRma, access, site);
    }
  }

  net::Cluster& cluster_;
  BcsMpiConfig config_;
  core::BcsCore core_;
  sim::Trace* trace_;

  /// One-sided RMA window table, keyed by windowOwnerKey(job, rank).
  core::WindowRegistry windows_;

  std::vector<JobState> jobs_;
  std::vector<NodeState> nodes_;
  std::vector<int> all_compute_nodes_;
  std::vector<int> live_compute_nodes_;  ///< strobe/poll set, minus evictions
  std::vector<char> evicted_;            ///< per compute node
  std::vector<int> pending_evictions_;   ///< recovered at next slice boundary
  std::vector<CheckpointRecord> recovery_records_;

  core::GlobalVarId phase_done_var_ = -1;
  /// Replicated Strobe-Sender epoch: every live node holds a copy; a backup
  /// claims the role by Compare-And-Write(== epoch, write epoch+1) over the
  /// live set, which serializes concurrent claims.
  core::GlobalVarId epoch_var_ = -1;
  core::GlobalEventId strobe_event_ = -1;
  /// Local completion event used by CH/RH multicasts (one signal per op).
  core::GlobalEventId coll_done_event_ = -1;

  int strobe_node_ = -1;
  std::uint64_t control_epoch_ = 0;
  bool election_inflight_ = false;
  std::vector<int> pending_rejoins_;  ///< reintegrated at next slice boundary
  std::function<void(int, std::uint64_t)> failover_handler_;

  bool strobing_ = false;
  bool stop_requested_ = false;
  std::uint64_t slice_index_ = 0;
  SimTime slice_start_ = 0;
  std::uint64_t phase_seq_ = 0;
  std::uint64_t desc_seq_ = 0;
  int active_ranks_ = 0;

  // Hierarchical control plane (DESIGN.md §7).
  bool tree_mode_ = false;             ///< config_.tree_fanout > 0, cached
  storm::SsTree sstree_;               ///< rack membership + SS roles
  std::vector<TreeRackState> tree_racks_;
  Phase tree_phase_ = Phase::kDem;     ///< microphase currently in flight
  /// True while a tree microphase is collecting rack acks.  Guards
  /// maybeTreePhaseDone against double-advancing when an eviction (or a
  /// duplicate ack) lands between phases.
  bool tree_phase_open_ = false;
  /// A promoted root is re-collecting acks for the interrupted microphase;
  /// once they all arrive the slice is abandoned and the strobe resumes on
  /// the period grid (mirroring the flat recoverPhase semantics).
  bool tree_recovering_ = false;
  /// Control messages the root touched since the slice started (both
  /// modes); snapshotted into stats_.fanout_msgs_per_slice at slice end.
  std::uint64_t root_msgs_slice_ = 0;

  std::vector<std::function<void(const CheckpointRecord&)>> checkpoint_cbs_;

  /// Periodic full-state snapshot sink (setSnapshotSink); fires at every
  /// `config_.checkpoint_every_slices`-th boundary when installed.
  std::function<void(std::uint64_t)> snapshot_sink_;

  /// Recycles collective payload buffers (see sim/pool.hpp).
  sim::PayloadPool payload_pool_;

  /// Dynamic protocol verifier; null unless config_.verify.  Hot-path hooks
  /// are guarded by this pointer (one predictable branch when off — never a
  /// virtual call), which is what keeps the disabled verifier zero-cost.
  std::unique_ptr<verify::Verifier> verifier_;

  /// Shard-ownership race detector; null unless config_.race_detect.  Same
  /// zero-cost-when-off contract as the verifier: every hook is one pointer
  /// null check.  Owns no engine/fabric state — it detaches in ~Runtime.
  std::unique_ptr<race::RaceDetector> race_;

  RuntimeStats stats_;

  /// Snapshot serializer (src/snapshot/state_io.*): reads and rebuilds the
  /// private state above at slice boundaries.  Friendship instead of a
  /// public state API keeps the snapshot surface out of the runtime's
  /// contract — the serializer versions with the repo, not with callers.
  friend class bcs::snapshot::StateIO;
};

}  // namespace bcs::bcsmpi
