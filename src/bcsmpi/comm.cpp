#include "bcsmpi/comm.hpp"

#include <string>
#include <utility>

namespace bcs::bcsmpi {

BcsComm::BcsComm(std::unique_ptr<BcsApi> api) : api_(std::move(api)) {}

sim::SimTime BcsComm::now() const { return api_->process().now(); }

void BcsComm::compute(Duration work) { api_->process().compute(work); }

mpi::Request BcsComm::isend(const void* buf, std::size_t bytes, int dest,
                            int tag) {
  return mpi::Request{api_->send(buf, bytes, dest, tag, /*blocking=*/false).id};
}

mpi::Request BcsComm::irecv(void* buf, std::size_t bytes, int src, int tag) {
  return mpi::Request{
      api_->recv(buf, bytes, src, tag, /*blocking=*/false).id};
}

void BcsComm::send(const void* buf, std::size_t bytes, int dest, int tag) {
  api_->send(buf, bytes, dest, tag, /*blocking=*/true);
}

void BcsComm::recv(void* buf, std::size_t bytes, int src, int tag,
                   mpi::Status* status) {
  api_->recv(buf, bytes, src, tag, /*blocking=*/true, status);
}

void BcsComm::wait(mpi::Request& r, mpi::Status* status) {
  BcsRequest br{r.id};
  api_->test(br, /*blocking=*/true, status);
  r = mpi::Request{};
}

bool BcsComm::test(mpi::Request& r, mpi::Status* status) {
  BcsRequest br{r.id};
  if (api_->test(br, /*blocking=*/false, status)) {
    r = mpi::Request{};
    return true;
  }
  return false;
}

bool BcsComm::completed(const mpi::Request& r) const {
  if (r.null()) return true;
  return api_->peek(BcsRequest{r.id});
}

bool BcsComm::probe(int src, int tag, mpi::Status* status, bool blocking) {
  return api_->probe(src, tag, blocking, status);
}

void BcsComm::barrier() { api_->barrier(); }

void BcsComm::bcast(void* buf, std::size_t bytes, int root) {
  api_->bcast(buf, bytes, root);
}

void BcsComm::reduce(const void* contrib, void* result, std::size_t count,
                     mpi::Datatype dt, mpi::ReduceOp op, int root) {
  api_->reduce(/*all=*/false, contrib, result, count, dt, op, root);
}

void BcsComm::allreduce(const void* contrib, void* result, std::size_t count,
                        mpi::Datatype dt, mpi::ReduceOp op) {
  api_->reduce(/*all=*/true, contrib, result, count, dt, op, /*root=*/0);
}

void launchJob(Runtime& runtime, const std::vector<int>& node_of_rank,
               const std::function<void(mpi::Comm&)>& body,
               std::vector<sim::SimTime>* finish_times) {
  const int job = runtime.createJob(node_of_rank);
  const int nprocs = static_cast<int>(node_of_rank.size());
  if (finish_times) finish_times->assign(static_cast<std::size_t>(nprocs), 0);
  for (int r = 0; r < nprocs; ++r) {
    runtime.cluster().spawn(
        node_of_rank[static_cast<std::size_t>(r)],
        "bcsmpi-j" + std::to_string(job) + "-rank" + std::to_string(r),
        [&runtime, job, r, body, finish_times](sim::Process& proc) {
          runtime.registerProcess(job, r, proc);
          BcsComm comm(std::make_unique<BcsApi>(runtime, job, r, proc));
          body(comm);
          runtime.rankFinished(job, r);
          if (finish_times) {
            (*finish_times)[static_cast<std::size_t>(r)] = proc.now();
          }
        });
  }
}

void runJob(net::Cluster& cluster, BcsMpiConfig config,
            const std::vector<int>& node_of_rank,
            const std::function<void(mpi::Comm&)>& body,
            std::vector<sim::SimTime>* finish_times) {
  auto runtime = std::make_shared<Runtime>(cluster, config);
  // Keep the runtime alive for the duration of the run via the body
  // closures.
  launchJob(*runtime,node_of_rank,
            [runtime, body](mpi::Comm& c) { body(c); }, finish_times);
  cluster.run();
  if (!cluster.allProcessesFinished()) {
    std::string who;
    for (const auto& n : cluster.unfinishedProcesses()) who += " " + n;
    throw sim::SimError("bcsmpi::runJob deadlock; unfinished:" + who);
  }
}

}  // namespace bcs::bcsmpi
