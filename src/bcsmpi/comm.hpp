#pragma once

// BCS-MPI's MPI facade: the Figure 13 mapping of MPI primitives onto the
// BCS API.
//
//   MPI_Send        -> bcs_send(blocking)        BcsApi::send(.., true)
//   MPI_Isend       -> bcs_send(non-blocking)    BcsApi::send(.., false)
//   MPI_Recv        -> bcs_recv(blocking)        BcsApi::recv(.., true)
//   MPI_Irecv       -> bcs_recv(non-blocking)    BcsApi::recv(.., false)
//   MPI_Probe/Iprobe-> bcs_probe(...)            BcsApi::probe
//   MPI_Wait/Test   -> bcs_test(...)             BcsApi::test
//   MPI_Waitall/Testall -> bcs_testall(...)      BcsApi::testall
//   MPI_Barrier     -> bcs_barrier()             BcsApi::barrier
//   MPI_Bcast       -> bcs_bcast()               BcsApi::bcast
//   MPI_Reduce      -> bcs_reduce(non-all)       BcsApi::reduce(false, ..)
//   MPI_Allreduce   -> bcs_reduce(all)           BcsApi::reduce(true, ..)
//   MPI_Scatter(v)/Gather(v)/Allgather(v)/Alltoall(v)
//                   -> built on top (mpi::Comm composition layer)

#include <functional>
#include <memory>
#include <vector>

#include "bcsmpi/api.hpp"
#include "mpi/comm.hpp"

namespace bcs::bcsmpi {

class BcsComm final : public mpi::Comm {
 public:
  explicit BcsComm(std::unique_ptr<BcsApi> api);

  int rank() const override { return api_->rank(); }
  int size() const override { return api_->size(); }
  SimTime now() const override;
  void compute(Duration work) override;

  mpi::Request isend(const void* buf, std::size_t bytes, int dest,
                     int tag) override;
  mpi::Request irecv(void* buf, std::size_t bytes, int src, int tag) override;
  void send(const void* buf, std::size_t bytes, int dest, int tag) override;
  void recv(void* buf, std::size_t bytes, int src, int tag,
            mpi::Status* status) override;
  void wait(mpi::Request& r, mpi::Status* status) override;
  bool test(mpi::Request& r, mpi::Status* status) override;
  bool completed(const mpi::Request& r) const override;
  bool probe(int src, int tag, mpi::Status* status, bool blocking) override;

  void barrier() override;
  void bcast(void* buf, std::size_t bytes, int root) override;
  void reduce(const void* contrib, void* result, std::size_t count,
              mpi::Datatype dt, mpi::ReduceOp op, int root) override;
  void allreduce(const void* contrib, void* result, std::size_t count,
                 mpi::Datatype dt, mpi::ReduceOp op) override;

  BcsApi& api() { return *api_; }

 private:
  std::unique_ptr<BcsApi> api_;
};

/// Launches an SPMD job on an existing runtime (used when several jobs
/// share the machine, e.g. under gang scheduling).  `finish_times`, if
/// non-null, receives each rank's completion time.
void launchJob(Runtime& runtime, const std::vector<int>& node_of_rank,
               const std::function<void(mpi::Comm&)>& body,
               std::vector<sim::SimTime>* finish_times = nullptr);

/// Convenience single-job runner mirroring baseline::runJob: builds a
/// Runtime, launches the job, runs the cluster to completion and verifies
/// that every rank finished.
void runJob(net::Cluster& cluster, BcsMpiConfig config,
            const std::vector<int>& node_of_rank,
            const std::function<void(mpi::Comm&)>& body,
            std::vector<sim::SimTime>* finish_times = nullptr);

}  // namespace bcs::bcsmpi
