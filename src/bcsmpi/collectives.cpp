// BBM / RM microphase implementations: the Collective Helper and the Reduce
// Helper NIC threads (paper §4.4, Figure 7).
//
// Broadcast and barrier ride the hardware multicast (barrier is "a special
// case of a broadcast operation with no data").  Reduce climbs a binomial
// tree of nodes; partial results are combined *on the NIC* with the
// softfloat library because the Elan3 has no FPU, then — for allreduce —
// the result is multicast back.

#include <algorithm>
#include <cstring>
#include <string>

#include "bcsmpi/runtime.hpp"
#include "mpi/reduce_ops.hpp"

namespace bcs::bcsmpi {

int Runtime::collectiveOwnerNode(const JobState& js,
                                 const PendingCollective& pc) const {
  // Broadcast/reduce execute at the root rank's node (that is where the
  // payload lives / must end up); barrier and allreduce are rooted at the
  // job master.
  if (pc.type == CollectiveType::kBcast || pc.type == CollectiveType::kReduce) {
    return js.node_of_rank.at(static_cast<std::size_t>(pc.root));
  }
  return js.node_of_rank.at(0);
}

// ---------------------------------------------------------------------------
// BBM — Broadcast and Barrier Microphase (Collective Helper)
// ---------------------------------------------------------------------------

int Runtime::collectReadyCollectives(int node, bool reduce_phase,
                                     std::vector<int>& ready_jobs) {
  NodeState& ns = nodeState(node);
  int ops = 0;
  for (auto& [job, pc] : ns.pending_coll) {
    if (!pc.active || pc.executing) continue;
    const bool is_reduce = pc.type == CollectiveType::kReduce ||
                           pc.type == CollectiveType::kAllreduce;
    if (is_reduce != reduce_phase) continue;
    // Scheduled iff the MSM's Compare-And-Write published the generation to
    // every node of the job.
    if (core_.readVar(node, jobState(job).coll_sched) < pc.gen) continue;
    pc.executing = true;
    ready_jobs.push_back(job);
    ++ops;
  }
  return ops;
}

void Runtime::runBbm(int node, std::uint64_t seq) {
  raceNode(node, race::FieldGroup::kCollectives,
           race::RaceDetector::Access::kWrite, "Runtime::runBbm");
  std::vector<int> ready_jobs;
  const int ops = collectReadyCollectives(node, /*reduce_phase=*/false,
                                          ready_jobs);
  beginNodePhase(node, seq, 0,
                 static_cast<Duration>(ops) * config_.nic_desc_processing);
  for (int job : ready_jobs) executeBroadcast(node, job);
}

void Runtime::executeBroadcast(int node, int job) {
  JobState& js = jobState(job);
  PendingCollective& pc = nodeState(node).pending_coll[job];
  const int owner = collectiveOwnerNode(js, pc);
  if (node != owner) {
    // Passive participant: the payload (or the barrier release) arrives as
    // part of the owner's multicast; the owner's completion token keeps the
    // microphase open until then.
    return;
  }

  opStarted(node);
  std::size_t payload_bytes =
      pc.type == CollectiveType::kBcast
          ? pc.count * mpi::datatypeSize(pc.dt)
          : 0;
  // CH reads the root rank's buffer once.
  Payload payload;
  if (payload_bytes > 0) {
    const std::byte* src = nullptr;
    for (const CollectiveDescriptor& d : pc.local) {
      if (d.rank == pc.root) {
        src = d.contrib;
        // A count-divergent job (diagnosable with BcsMpiConfig::verify) may
        // give the root a smaller buffer than pc.count suggests; never read
        // past what the root actually posted.
        payload_bytes =
            std::min(payload_bytes, d.count * mpi::datatypeSize(pc.dt));
      }
    }
    if (src == nullptr) {
      throw sim::SimError("bcast: root rank descriptor missing on owner");
    }
    payload = payload_pool_.acquire(src, payload_bytes);
  }

  std::vector<int> dests;
  for (int n : js.nodes) {
    if (n != owner) dests.push_back(n);
  }
  if (trace_) {
    trace_->record(cluster_.engine().now(), sim::TraceCategory::kCollective,
                   node,
                   std::string("CH ") + collectiveTypeName(pc.type) +
                       " gen " + std::to_string(pc.gen) + " to " +
                       std::to_string(dests.size()) + " node(s)");
  }
  if (dests.empty()) {
    // Single-node job: complete locally right away.
    finishCollectiveOnNode(owner, job, payload);
    opFinished(node);
    return;
  }
  core::XferRequest xfer;
  xfer.src_node = owner;
  xfer.dest_nodes = dests;
  xfer.bytes = payload_bytes + 16;
  xfer.deliver = [this, job, payload](int dest) {
    finishCollectiveOnNode(dest, job, payload);
  };
  // The owner's local ranks complete once the multicast has been delivered
  // everywhere, observed through the local completion event (Test-Event on
  // the Xfer-And-Signal, per the BCS core semantics).
  xfer.local_event = coll_done_event_;
  core_.xferAndSignal(std::move(xfer));
  core_.waitEventAsync(owner, coll_done_event_, [this, owner, job, payload] {
    finishCollectiveOnNode(owner, job, payload);
    opFinished(owner);
  });
}

// ---------------------------------------------------------------------------
// RM — Reduce Microphase (Reduce Helper)
// ---------------------------------------------------------------------------

void Runtime::runRm(int node, std::uint64_t seq) {
  raceNode(node, race::FieldGroup::kCollectives,
           race::RaceDetector::Access::kWrite, "Runtime::runRm");
  std::vector<int> ready_jobs;
  const int ops = collectReadyCollectives(node, /*reduce_phase=*/true,
                                          ready_jobs);
  beginNodePhase(node, seq, 0,
                 static_cast<Duration>(ops) * config_.nic_desc_processing);
  for (int job : ready_jobs) executeReduce(node, job);
}

void Runtime::executeReduce(int node, int job) {
  JobState& js = jobState(job);
  PendingCollective& pc = nodeState(node).pending_coll[job];
  const int owner = collectiveOwnerNode(js, pc);

  // Binomial-tree position among the job's nodes, rotated so the owner is
  // the root.
  const int nn = static_cast<int>(js.nodes.size());
  const auto idx_of = [&](int n) {
    return static_cast<int>(std::find(js.nodes.begin(), js.nodes.end(), n) -
                            js.nodes.begin());
  };
  const int rel = (idx_of(node) - idx_of(owner) + nn) % nn;
  pc.children_left = 0;
  pc.parent_node = -1;
  for (int mask = 1; mask < nn; mask <<= 1) {
    if ((rel & mask) != 0) {
      const int parent_rel = rel & ~mask;
      pc.parent_node = js.nodes[static_cast<std::size_t>(
          (parent_rel + idx_of(owner)) % nn)];
      break;
    }
    if ((rel | mask) < nn) ++pc.children_left;
  }
  pc.local_ready = false;

  // RH combines the local ranks' contributions first (softfloat, per
  // element).  Counts are clamped per descriptor: a count-divergent job
  // (diagnosable with BcsMpiConfig::verify) must stay a protocol error, not
  // a read past a rank's contribution buffer.
  const std::size_t bytes =
      std::min(pc.count, pc.local.front().count) * mpi::datatypeSize(pc.dt);
  pc.partial.assign(pc.local.front().contrib,
                    pc.local.front().contrib + bytes);
  pc.partial.resize(pc.count * mpi::datatypeSize(pc.dt));
  for (std::size_t i = 1; i < pc.local.size(); ++i) {
    mpi::applyReduce(pc.op, pc.dt, pc.partial.data(), pc.local[i].contrib,
                     std::min(pc.count, pc.local[i].count),
                     mpi::ReduceFlavor::kNicSoftFloat);
  }
  opStarted(node);
  const Duration combine_cost =
      static_cast<Duration>(pc.local.size() - 1) *
      static_cast<Duration>(pc.count) * config_.nic_reduce_per_element;
  cluster_.engine().after(std::max<Duration>(combine_cost, 1), [this, node,
                                                                job] {
    PendingCollective& p = nodeState(node).pending_coll[job];
    p.local_ready = true;
    // Apply any child partials that arrived while we were combining.
    std::vector<Payload> queued;
    queued.swap(p.queued_partials);
    for (Payload& q : queued) reduceApply(node, job, std::move(q));
    reduceAdvance(node, job);
  });
}

void Runtime::reduceIncoming(int node, int job, Payload data) {
  PendingCollective& pc = nodeState(node).pending_coll[job];
  if (!pc.local_ready) {
    pc.queued_partials.push_back(std::move(data));
    return;
  }
  reduceApply(node, job, std::move(data));
  reduceAdvance(node, job);
}

void Runtime::reduceApply(int node, int job, Payload data) {
  PendingCollective& pc = nodeState(node).pending_coll[job];
  // A child of a count-divergent job can send a partial smaller than this
  // node's count; clamp so the disagreement stays a diagnosable protocol
  // error (BcsMpiConfig::verify) instead of an out-of-bounds read.
  const std::size_t have = data->size() / mpi::datatypeSize(pc.dt);
  mpi::applyReduce(pc.op, pc.dt, pc.partial.data(), data->data(),
                   std::min(pc.count, have), mpi::ReduceFlavor::kNicSoftFloat);
  --pc.children_left;
}

void Runtime::reduceAdvance(int node, int job) {
  PendingCollective& pc = nodeState(node).pending_coll[job];
  if (!pc.local_ready || pc.children_left > 0) return;
  // All inputs combined.  Charge the softfloat time for the incoming
  // partials (already applied logically) before forwarding.
  JobState& js = jobState(job);
  const int owner = collectiveOwnerNode(js, pc);
  if (node == owner) {
    reduceDeliverResult(node, job);
  } else {
    reduceSendUp(node, job);
  }
}

void Runtime::reduceSendUp(int node, int job) {
  PendingCollective& pc = nodeState(node).pending_coll[job];
  auto snapshot = payload_pool_.acquire(pc.partial.data(), pc.partial.size());
  const int parent = pc.parent_node;
  const Duration cost =
      static_cast<Duration>(pc.count) * config_.nic_reduce_per_element;
  if (trace_) {
    trace_->record(cluster_.engine().now(), sim::TraceCategory::kCollective,
                   node, "RH partial -> n" + std::to_string(parent));
  }
  cluster_.engine().after(cost, [this, node, job, parent, snapshot] {
    core::XferRequest xfer;
    xfer.src_node = node;
    xfer.dest_nodes = {parent};
    xfer.bytes = snapshot->size() + 16;
    xfer.deliver = [this, parent, job, snapshot](int) {
      reduceIncoming(parent, job, snapshot);
    };
    core_.xferAndSignal(std::move(xfer));
    // This node's RH role ends once the partial is on the wire; the phase
    // stays open globally through the owner's token.
    opFinished(node);
  });
}

void Runtime::reduceDeliverResult(int node, int job) {
  JobState& js = jobState(job);
  PendingCollective& pc = nodeState(node).pending_coll[job];
  auto result = payload_pool_.acquire(pc.partial.data(), pc.partial.size());

  std::vector<int> dests;
  for (int n : js.nodes) {
    if (n != node) dests.push_back(n);
  }
  const bool carry_payload = pc.type == CollectiveType::kAllreduce;
  if (trace_) {
    trace_->record(cluster_.engine().now(), sim::TraceCategory::kCollective,
                   node,
                   std::string("RH result ready (") +
                       collectiveTypeName(pc.type) + " gen " +
                       std::to_string(pc.gen) + ")");
  }
  if (dests.empty()) {
    finishCollectiveOnNode(node, job, result);
    opFinished(node);
    return;
  }
  core::XferRequest xfer;
  xfer.src_node = node;
  xfer.dest_nodes = dests;
  xfer.bytes = (carry_payload ? result->size() : 0) + 16;
  xfer.deliver = [this, job, result](int dest) {
    finishCollectiveOnNode(dest, job, result);
  };
  xfer.local_event = coll_done_event_;
  core_.xferAndSignal(std::move(xfer));
  core_.waitEventAsync(node, coll_done_event_, [this, node, job, result] {
    finishCollectiveOnNode(node, job, result);
    opFinished(node);
  });
}

// ---------------------------------------------------------------------------
// Completion
// ---------------------------------------------------------------------------

void Runtime::finishCollectiveOnNode(int node, int job, Payload payload) {
  PendingCollective& pc = nodeState(node).pending_coll[job];
  if (!pc.active) return;
  const std::size_t bytes =
      payload ? std::min(pc.count * mpi::datatypeSize(pc.dt), payload->size())
              : 0;
  for (const CollectiveDescriptor& d : pc.local) {
    // The copy is clamped to the rank's own posted count: a count-divergent
    // job (diagnosable with BcsMpiConfig::verify) must never write past a
    // rank's result buffer.
    const std::size_t want =
        std::min(bytes, d.count * mpi::datatypeSize(pc.dt));
    switch (pc.type) {
      case CollectiveType::kBarrier:
        break;
      case CollectiveType::kBcast:
        if (d.rank != pc.root && payload) {
          std::memcpy(d.result, payload->data(), want);
        }
        break;
      case CollectiveType::kReduce:
        if (d.rank == pc.root && payload) {
          std::memcpy(d.result, payload->data(), want);
        }
        break;
      case CollectiveType::kAllreduce:
        if (payload) std::memcpy(d.result, payload->data(), want);
        break;
    }
    completeRequest(job, d.rank, d.request, pc.root, /*tag=*/-3, want);
  }
  pc.active = false;
  pc.executing = false;
  pc.flagged = false;
  pc.local.clear();
  pc.queued_partials.clear();
}

}  // namespace bcs::bcsmpi
