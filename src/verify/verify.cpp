#include "verify/verify.hpp"

#include <algorithm>

#include "mpi/types.hpp"

namespace bcs::verify {

namespace {

// Local copy of the collective-type names: bcs_verify sits *below*
// bcs_bcsmpi in the link order, so it cannot use the runtime's
// collectiveTypeName definition.
const char* collName(bcsmpi::CollectiveType t) {
  switch (t) {
    case bcsmpi::CollectiveType::kBarrier: return "barrier";
    case bcsmpi::CollectiveType::kBcast: return "bcast";
    case bcsmpi::CollectiveType::kReduce: return "reduce";
    case bcsmpi::CollectiveType::kAllreduce: return "allreduce";
  }
  return "?";
}

// Same story for the RMA kind names (rmaKindName lives in bcs_bcsmpi).
const char* rmaName(bcsmpi::RmaKind k) {
  switch (k) {
    case bcsmpi::RmaKind::kPut: return "put";
    case bcsmpi::RmaKind::kGet: return "get";
    case bcsmpi::RmaKind::kFetchAdd: return "fetch-add";
  }
  return "?";
}

/// FNV-1a over the operation signature: the per-rank collective *color*.
/// Two ranks that called the same operation with agreeing parameters get
/// the same color; the divergence check is color equality.
std::uint64_t collectiveColor(const bcsmpi::CollectiveDescriptor& d) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t v : {static_cast<std::uint64_t>(d.type),
                          static_cast<std::uint64_t>(d.gen),
                          static_cast<std::uint64_t>(d.root),
                          static_cast<std::uint64_t>(d.count),
                          static_cast<std::uint64_t>(d.dt),
                          static_cast<std::uint64_t>(d.op)}) {
    h = (h ^ v) * 1099511628211ull;
  }
  return h;
}

std::string collectiveSignature(const bcsmpi::CollectiveDescriptor& d) {
  std::string s = collName(d.type);
  s += "(root=" + std::to_string(d.root);
  s += ", count=" + std::to_string(d.count);
  s += ", dt=" + std::string(mpi::datatypeName(d.dt));
  s += ", op=" + std::string(mpi::reduceOpName(d.op));
  s += ")";
  return s;
}

}  // namespace

const char* categoryName(Category c) {
  switch (c) {
    case Category::kCollectiveDivergence: return "collective-divergence";
    case Category::kTruncatedRecv: return "truncated-recv";
    case Category::kWildcardRace: return "wildcard-race";
    case Category::kLeakedDescriptor: return "leaked-descriptor";
    case Category::kUnfinishedRequest: return "unfinished-request";
    case Category::kOrphanedRetransmit: return "orphaned-retransmit";
    case Category::kLeakedAck: return "leaked-coalesced-ack";
    case Category::kEpochRace: return "epoch-race";
  }
  return "?";
}

std::string VerifyReport::render() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  std::string out = "bcs-verify report: ";
  out += clean() ? "clean" : std::to_string(total) + " finding(s)";
  out += finalized ? "" : " (finalize audit not run)";
  out += "\n";
  out += "  collectives checked: " + std::to_string(collectives_checked) +
         ", matches checked: " + std::to_string(matches_checked) + "\n";
  for (int c = 0; c < kNumCategories; ++c) {
    if (counts[static_cast<std::size_t>(c)] == 0) continue;
    out += "  " + std::string(categoryName(static_cast<Category>(c))) + ": " +
           std::to_string(counts[static_cast<std::size_t>(c)]) + "\n";
  }
  for (const Finding& f : findings) {
    out += "  [" + sim::formatTime(f.time) + " slice " +
           std::to_string(f.slice) + "] " + categoryName(f.category);
    if (f.job >= 0) out += " j" + std::to_string(f.job);
    if (f.rank >= 0) out += "/r" + std::to_string(f.rank);
    if (f.node >= 0) out += " n" + std::to_string(f.node);
    out += ": " + f.detail + "\n";
  }
  if (dropped_findings > 0) {
    out += "  (+" + std::to_string(dropped_findings) +
           " finding(s) beyond the retention cap)\n";
  }
  return out;
}

Verifier::Verifier(sim::Trace* trace, std::size_t max_findings)
    : trace_(trace), max_findings_(max_findings) {}

void Verifier::addFinding(Category cat, sim::SimTime now, std::uint64_t slice,
                          int node, int job, int rank, std::string detail) {
  ++report_.counts[static_cast<std::size_t>(cat)];
  if (trace_) {
    // Epoch-race findings get their own trace category so RMA-race tests
    // (and humans grepping traces) can separate them from protocol audits.
    sim::TraceCategory tc = cat == Category::kEpochRace
                                ? sim::TraceCategory::kEpochRace
                                : sim::TraceCategory::kVerify;
    trace_->record(now, tc, node,
                   std::string(categoryName(cat)) + ": " + detail);
  }
  if (report_.findings.size() >= max_findings_) {
    ++report_.dropped_findings;
    return;
  }
  Finding f;
  f.category = cat;
  f.time = now;
  f.slice = slice;
  f.node = node;
  f.job = job;
  f.rank = rank;
  f.detail = std::move(detail);
  report_.findings.push_back(std::move(f));
}

void Verifier::onCollectivePosted(std::uint64_t slice, sim::SimTime now,
                                  int node,
                                  const bcsmpi::CollectiveDescriptor& d,
                                  int job_size) {
  (void)slice;
  ColorGroup& g = pending_[{d.job, d.gen}];
  g.expected = job_size;
  ColorEntry e;
  e.rank = d.rank;
  e.node = node;
  e.color = collectiveColor(d);
  e.posted_at = now;
  e.signature = collectiveSignature(d);
  g.entries.push_back(std::move(e));
}

void Verifier::onSliceBoundary(std::uint64_t slice, sim::SimTime now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    const ColorGroup& g = it->second;
    if (static_cast<int>(g.entries.size()) < g.expected) {
      ++it;
      continue;  // some ranks have not reached the call yet
    }
    checkGroup(it->first.first, it->first.second, g, slice, now,
               /*final_audit=*/false);
    it = pending_.erase(it);
  }
}

void Verifier::checkGroup(int job, int gen, const ColorGroup& g,
                          std::uint64_t slice, sim::SimTime now,
                          bool final_audit) {
  // Sort contributions by rank so reports and modal-color selection are
  // independent of posting order.
  std::vector<const ColorEntry*> by_rank;
  by_rank.reserve(g.entries.size());
  for (const ColorEntry& e : g.entries) by_rank.push_back(&e);
  std::sort(by_rank.begin(), by_rank.end(),
            [](const ColorEntry* a, const ColorEntry* b) {
              return a->rank < b->rank;
            });

  // The reference color is the modal one (ties: the lowest rank's), so the
  // report blames the minority — "rank 3 called bcs_reduce while the other
  // 7 called bcs_barrier" reads the right way around.
  std::uint64_t modal = by_rank.front()->color;
  std::size_t modal_count = 0;
  for (const ColorEntry* e : by_rank) {
    std::size_t c = 0;
    for (const ColorEntry* o : by_rank) {
      if (o->color == e->color) ++c;
    }
    if (c > modal_count) {
      modal_count = c;
      modal = e->color;
    }
  }

  const ColorEntry* reference = nullptr;
  std::string offenders;
  int first_offender = -1;
  for (const ColorEntry* e : by_rank) {
    if (e->color == modal) {
      if (!reference) reference = e;
      continue;
    }
    if (first_offender < 0) first_offender = e->rank;
    if (!offenders.empty()) offenders += "; ";
    offenders += "rank " + std::to_string(e->rank) + " called " +
                 e->signature + " at " + sim::formatTime(e->posted_at);
  }

  if (offenders.empty() &&
      static_cast<int>(g.entries.size()) == g.expected) {
    ++report_.collectives_checked;
    return;
  }

  std::string detail = "collective #" + std::to_string(gen) + " of job " +
                       std::to_string(job) + ": ";
  if (!offenders.empty()) {
    detail += offenders + " while " + std::to_string(modal_count) + "/" +
              std::to_string(g.expected) + " rank(s) called " +
              reference->signature;
    if (final_audit &&
        static_cast<int>(g.entries.size()) < g.expected) {
      detail += " (and " +
                std::to_string(g.expected -
                               static_cast<int>(g.entries.size())) +
                " rank(s) never entered it)";
    }
  } else {
    // Uniform colors but an incomplete rank set at the finalize audit: the
    // missing ranks never made the call at all.
    detail += "only " + std::to_string(g.entries.size()) + "/" +
              std::to_string(g.expected) + " rank(s) entered " +
              reference->signature + " (first at " +
              sim::formatTime(by_rank.front()->posted_at) + ")";
  }
  addFinding(Category::kCollectiveDivergence, now, slice,
             first_offender >= 0 ? by_rank.front()->node : -1, job,
             first_offender, std::move(detail));
}

void Verifier::onMatch(std::uint64_t slice, sim::SimTime now, int node,
                       const bcsmpi::SendDescriptor& s,
                       const bcsmpi::RecvDescriptor& r,
                       std::size_t eligible_sources) {
  ++report_.matches_checked;
  if (s.bytes > r.bytes) {
    addFinding(Category::kTruncatedRecv, now, slice, node, r.job, r.dst_rank,
               "recv (req " + std::to_string(r.request) + ", posted at " +
                   sim::formatTime(r.posted_at) + ") buffers " +
                   std::to_string(r.bytes) + "B but rank " +
                   std::to_string(s.src_rank) + " sent " +
                   std::to_string(s.bytes) + "B (tag " +
                   std::to_string(s.tag) + ")");
  }
  if (r.want_src == mpi::kAnySource && eligible_sources > 1) {
    addFinding(Category::kWildcardRace, now, slice, node, r.job, r.dst_rank,
               "wildcard recv (req " + std::to_string(r.request) +
                   ", posted at " + sim::formatTime(r.posted_at) +
                   ") matched rank " + std::to_string(s.src_rank) +
                   " with " + std::to_string(eligible_sources) +
                   " eligible senders in the slice: result depends on "
                   "arrival order (replay-determinism hazard)");
  }
}

void Verifier::onRmaEpoch(std::uint64_t slice, sim::SimTime now, int node,
                          const std::vector<bcsmpi::RmaOpDescriptor>& ops) {
  // `ops` arrives in canonical (job, origin rank, seq) order, so pairwise
  // scanning reports conflicts deterministically.  Epochs are one slice's
  // worth of ops for one node — small by construction — so the quadratic
  // pair walk is fine.
  auto writes = [](const bcsmpi::RmaOpDescriptor& d) {
    return d.kind != bcsmpi::RmaKind::kGet;
  };
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const bcsmpi::RmaOpDescriptor& a = ops[i];
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      const bcsmpi::RmaOpDescriptor& b = ops[j];
      if (a.job != b.job || a.target_rank != b.target_rank ||
          a.window != b.window) {
        continue;
      }
      if (a.origin_rank == b.origin_rank) continue;  // program order holds
      if (!writes(a) && !writes(b)) continue;        // read-read is benign
      if (a.kind == bcsmpi::RmaKind::kFetchAdd &&
          b.kind == bcsmpi::RmaKind::kFetchAdd) {
        continue;  // remote atomics commute; that is their whole point
      }
      std::size_t lo = std::max(a.offset, b.offset);
      std::size_t hi = std::min(a.offset + a.bytes, b.offset + b.bytes);
      if (lo >= hi) continue;  // disjoint ranges
      addFinding(
          Category::kEpochRace, now, slice, node, a.job, a.origin_rank,
          std::string(rmaName(a.kind)) + " by rank " +
              std::to_string(a.origin_rank) + " (call #" +
              std::to_string(a.call_index) + ", posted at " +
              sim::formatTime(a.posted_at) + ") overlaps " +
              rmaName(b.kind) + " by rank " + std::to_string(b.origin_rank) +
              " (call #" + std::to_string(b.call_index) + ", posted at " +
              sim::formatTime(b.posted_at) + ") on window " +
              std::to_string(a.window) + " of rank " +
              std::to_string(a.target_rank) + ", bytes [" +
              std::to_string(lo) + ", " + std::to_string(hi) +
              "): epoch outcome is order-dependent");
    }
  }
}

void Verifier::finalizeAudit(sim::SimTime now, std::uint64_t slice) {
  if (report_.finalized) return;
  for (const auto& [key, g] : pending_) {
    checkGroup(key.first, key.second, g, slice, now, /*final_audit=*/true);
  }
  pending_.clear();
  report_.finalized = true;
}

}  // namespace bcs::verify
