#pragma once

// bcs-verify: the dynamic protocol verifier (PARCOACH-style, see
// SNIPPETS.md and DESIGN.md §5 "Verification layer").
//
// BCS-MPI's global scheduling gives the runtime a synchronized view of all
// communication at every time slice, which makes whole-program correctness
// checking nearly free: at MSM time the Buffer Receivers already hold every
// posted descriptor of the slice, so mismatched collectives, truncated
// receives, wildcard races and leaked protocol state are all visible
// without extra communication.  The `Verifier` exploits exactly that
// vantage point:
//
//  * every collective post contributes a per-rank *color* — a hash of
//    (operation, root, count, datatype, reduce-op) — keyed by
//    (job, call generation).  At each slice boundary (the MSM instant, when
//    the per-job flag variables would be Compare-And-Write'd anyway) the
//    verifier reduces the colors of each completed generation and reports
//    rank-level divergence with call-site provenance (rank, call index,
//    post time, operation signature);
//  * every MSM match is checked for truncation (send larger than the posted
//    receive buffer) *before* the runtime acts on it;
//  * a wildcard (kAnySource) receive that matches while more than one
//    distinct source has an eligible send arrived is flagged as a
//    replay-determinism hazard: the program's result depends on descriptor
//    arrival order, which only the globally scheduled runtime makes
//    reproducible;
//  * the finalize audit (Runtime::verifyAudit) walks every NIC queue and
//    request table and reports leaked descriptors, never-completed requests
//    and orphaned retransmission state.
//
// The verifier is a pure observer.  It never posts events, sends traffic or
// perturbs timing, so a *clean* run traces byte-identically with the
// verifier on or off — findings are the only thing it ever emits (as
// TraceCategory::kVerify records plus the structured VerifyReport).  All
// runtime hooks are guarded by a raw-pointer null check, making the feature
// zero-cost when `BcsMpiConfig::verify` is false.

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bcsmpi/descriptors.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace bcs::snapshot {
class StateIO;  // snapshot/state_io.hpp: serializes verifier state
}

namespace bcs::verify {

/// Diagnostic categories, one counter each in the VerifyReport.
enum class Category : int {
  kCollectiveDivergence = 0,  ///< ranks disagree on a collective call
  kTruncatedRecv,             ///< matched send larger than the recv buffer
  kWildcardRace,              ///< kAnySource recv with >1 eligible sender
  kLeakedDescriptor,          ///< descriptor still queued at finalize
  kUnfinishedRequest,         ///< request never completed
  kOrphanedRetransmit,        ///< retry/chunk accounting left behind
  kLeakedAck,                 ///< rack coalesced-ack buffer never drained
  kEpochRace,                 ///< conflicting RMA ops on one window range
                              ///< within one passive-target epoch
};
inline constexpr int kNumCategories = 8;

const char* categoryName(Category c);

/// One structured diagnostic.  `rank`/`job`/`node` are -1 when the finding
/// is not specific to one.
struct Finding {
  Category category = Category::kLeakedDescriptor;
  sim::SimTime time = 0;
  std::uint64_t slice = 0;
  int node = -1;
  int job = -1;
  int rank = -1;
  std::string detail;
};

/// Aggregated verification outcome: per-category counters (always exact)
/// plus the retained findings (capped; see BcsMpiConfig::verify_max_findings).
struct VerifyReport {
  std::array<std::uint64_t, kNumCategories> counts{};
  std::vector<Finding> findings;
  std::uint64_t dropped_findings = 0;  ///< found beyond the retention cap
  std::uint64_t collectives_checked = 0;  ///< color groups reduced clean
  std::uint64_t matches_checked = 0;      ///< send/recv pairs examined
  bool finalized = false;  ///< the finalize audit has run

  std::uint64_t count(Category c) const {
    return counts[static_cast<std::size_t>(c)];
  }
  bool clean() const {
    for (std::uint64_t c : counts) {
      if (c != 0) return false;
    }
    return true;
  }
  /// Human-readable rendering (header, per-category counts, findings).
  std::string render() const;
};

class Verifier {
 public:
  /// Findings are mirrored to `trace` (TraceCategory::kVerify) when tracing
  /// is enabled; at most `max_findings` are retained in the report.
  explicit Verifier(sim::Trace* trace, std::size_t max_findings = 256);

  // ---- Prong A hooks (called by the Runtime, verifier-on only) ----

  /// A rank posted a collective descriptor; contributes its color to the
  /// (job, generation) group.  `job_size` = total ranks expected.
  void onCollectivePosted(std::uint64_t slice, sim::SimTime now, int node,
                          const bcsmpi::CollectiveDescriptor& d, int job_size);

  /// Slice boundary = the conceptual MSM reduction point: every collective
  /// generation whose full rank set has posted is color-reduced and either
  /// counted clean or reported divergent.
  void onSliceBoundary(std::uint64_t slice, sim::SimTime now);

  /// The MSM matched send `s` to receive `r` on `node`.  Checks byte-count
  /// agreement (truncation) and, for wildcard receives, the number of
  /// distinct eligible sources (`eligible_sources`, 1 for concrete
  /// receives) for the replay-determinism hazard.
  void onMatch(std::uint64_t slice, sim::SimTime now, int node,
               const bcsmpi::SendDescriptor& s, const bcsmpi::RecvDescriptor& r,
               std::size_t eligible_sources);

  /// One node's passive-target RMA epoch: `ops` is the canonically sorted
  /// batch the MSM is about to apply to windows living on `node` this slice
  /// (DESIGN.md §11).  Since every op targeting a window lands on the
  /// window's home node, this is the complete epoch view — the PARCOACH-
  /// dynamic vantage point.  Two ops from different origin ranks whose
  /// byte ranges on one (job, target rank, window) overlap, where at least
  /// one writes and they are not both fetch-adds (remote atomics commute),
  /// make the epoch's outcome order-dependent under any runtime without
  /// the canonical-order guarantee; each such pair is reported with origin
  /// ranks, per-rank call indices and the overlapping range as blame.
  void onRmaEpoch(std::uint64_t slice, sim::SimTime now, int node,
                  const std::vector<bcsmpi::RmaOpDescriptor>& ops);

  /// Records one finding (used directly by the Runtime's finalize audit).
  void addFinding(Category cat, sim::SimTime now, std::uint64_t slice,
                  int node, int job, int rank, std::string detail);

  /// Flushes incomplete collective groups (a generation some ranks never
  /// entered is itself a divergence) and marks the report finalized.
  /// Idempotent.
  void finalizeAudit(sim::SimTime now, std::uint64_t slice);

  bool finalized() const { return report_.finalized; }
  const VerifyReport& report() const { return report_; }

 private:
  /// One rank's contribution to a collective color group.
  struct ColorEntry {
    int rank = -1;
    int node = -1;
    std::uint64_t color = 0;
    sim::SimTime posted_at = 0;
    std::string signature;  ///< "reduce(root=0, count=4, dt=f64, op=sum)"
  };
  struct ColorGroup {
    int expected = 0;  ///< job size when the first rank posted
    std::vector<ColorEntry> entries;
  };

  void checkGroup(int job, int gen, const ColorGroup& g, std::uint64_t slice,
                  sim::SimTime now, bool final_audit);

  sim::Trace* trace_;
  std::size_t max_findings_;
  /// Pending color groups keyed by (job, generation) — a std::map so every
  /// reduction pass visits groups in (job, gen) order, never hash order.
  std::map<std::pair<int, int>, ColorGroup> pending_;
  VerifyReport report_;

  /// Snapshot serializer (src/snapshot): pending color groups and the
  /// report round-trip so a verify-on run restores to the same findings.
  friend class bcs::snapshot::StateIO;
};

}  // namespace bcs::verify
