#pragma once

// Tiny deterministic LZSS codec shared by the golden-trace corpus and the
// snapshot format (src/snapshot).
//
// Trace dumps are extremely repetitive text (a few hundred distinct line
// shapes), so a 64 KiB sliding window with greedy hash-chain matching gets
// 15-30x on them — enough to keep multi-megabyte reference traces as
// small checked-in files — while staying ~100 lines of dependency-free
// C++ whose output is bit-stable across platforms (a requirement: the
// corpus is diffed byte-for-byte, so the *compressor* must be as
// deterministic as the traces it stores).  Snapshot sections are binary
// rather than text but share the repetitive structure (runs of zeroed
// counters, near-identical per-node records), so the same codec applies.
//
// Format:  "BCSG1" magic, u64 LE raw size, then token groups: one flag
// byte (LSB first; 0 = literal, 1 = match) followed by 8 tokens — a
// literal byte, or a match of (u16 LE backward offset >= 1, u8 length-3)
// covering lengths 3..258.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace bcs::codec {

constexpr char kMagic[5] = {'B', 'C', 'S', 'G', '1'};
constexpr std::size_t kWindow = 65535;
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 258;
constexpr int kMaxProbes = 64;  ///< hash-chain depth bound

inline std::vector<std::uint8_t> compress(const std::string& raw) {
  std::vector<std::uint8_t> out;
  out.reserve(raw.size() / 4 + 16);
  for (char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(raw.size() >> (8 * i)));
  }

  constexpr std::size_t kHashSize = 1u << 15;
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(raw.size(), -1);
  auto hash3 = [&raw](std::size_t i) {
    const std::uint32_t h = static_cast<std::uint8_t>(raw[i]) |
                            (static_cast<std::uint8_t>(raw[i + 1]) << 8) |
                            (static_cast<std::uint8_t>(raw[i + 2]) << 16);
    return (h * 2654435761u) >> 17;  // Knuth multiplicative, 15 bits
  };
  auto insert = [&](std::size_t i) {
    if (i + kMinMatch > raw.size()) return;
    const std::uint32_t h = hash3(i);
    prev[i] = head[h];
    head[h] = static_cast<std::int64_t>(i);
  };

  std::size_t flag_at = 0;
  int flag_bits = 8;  // force a fresh flag byte on the first token
  auto beginToken = [&](bool is_match) {
    if (flag_bits == 8) {
      flag_at = out.size();
      out.push_back(0);
      flag_bits = 0;
    }
    if (is_match) out[flag_at] |= static_cast<std::uint8_t>(1u << flag_bits);
    ++flag_bits;
  };

  std::size_t i = 0;
  while (i < raw.size()) {
    std::size_t best_len = 0, best_off = 0;
    if (i + kMinMatch <= raw.size()) {
      std::int64_t cand = head[hash3(i)];
      const std::size_t limit = std::min(kMaxMatch, raw.size() - i);
      for (int probes = 0; cand >= 0 && probes < kMaxProbes;
           cand = prev[static_cast<std::size_t>(cand)], ++probes) {
        const std::size_t c = static_cast<std::size_t>(cand);
        if (i - c > kWindow) break;  // chains are position-ordered
        std::size_t len = 0;
        while (len < limit && raw[c + len] == raw[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_off = i - c;
          if (len == limit) break;
        }
      }
    }
    if (best_len >= kMinMatch) {
      beginToken(true);
      out.push_back(static_cast<std::uint8_t>(best_off));
      out.push_back(static_cast<std::uint8_t>(best_off >> 8));
      out.push_back(static_cast<std::uint8_t>(best_len - kMinMatch));
      for (std::size_t k = 0; k < best_len; ++k) insert(i + k);
      i += best_len;
    } else {
      beginToken(false);
      out.push_back(static_cast<std::uint8_t>(raw[i]));
      insert(i);
      ++i;
    }
  }
  return out;
}

inline std::string decompress(const std::vector<std::uint8_t>& blob) {
  std::size_t p = 0;
  auto need = [&](std::size_t n) {
    if (p + n > blob.size()) {
      throw std::runtime_error("lzss codec: truncated stream");
    }
  };
  need(sizeof(kMagic) + 8);
  for (char c : kMagic) {
    if (static_cast<char>(blob[p++]) != c) {
      throw std::runtime_error("lzss codec: bad magic");
    }
  }
  std::uint64_t raw_size = 0;
  for (int i = 0; i < 8; ++i) {
    raw_size |= static_cast<std::uint64_t>(blob[p++]) << (8 * i);
  }

  std::string out;
  out.reserve(raw_size);
  std::uint8_t flags = 0;
  int flag_bits = 8;
  while (out.size() < raw_size) {
    if (flag_bits == 8) {
      need(1);
      flags = blob[p++];
      flag_bits = 0;
    }
    const bool is_match = (flags >> flag_bits) & 1;
    ++flag_bits;
    if (is_match) {
      need(3);
      const std::size_t off = blob[p] | (static_cast<std::size_t>(blob[p + 1]) << 8);
      const std::size_t len = static_cast<std::size_t>(blob[p + 2]) + kMinMatch;
      p += 3;
      if (off == 0 || off > out.size()) {
        throw std::runtime_error("lzss codec: bad match offset");
      }
      for (std::size_t k = 0; k < len; ++k) {
        out.push_back(out[out.size() - off]);  // may overlap; byte-by-byte
      }
    } else {
      need(1);
      out.push_back(static_cast<char>(blob[p++]));
    }
  }
  if (out.size() != raw_size) {
    throw std::runtime_error("lzss codec: size mismatch");
  }
  return out;
}

}  // namespace bcs::codec
