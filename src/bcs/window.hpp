#pragma once

// One-sided RMA window registry (DESIGN.md §11).
//
// A window exposes a contiguous region of a rank's process memory for
// remote puts/gets/fetch-adds.  The registry is passive bookkeeping only —
// the BCS-MPI runtime schedules the actual data movement as passive-target
// epochs inside the global-slice microphases, built on the same
// Xfer-And-Signal primitive every other transfer uses.  Registration is
// symmetric (every rank of a job registers the same window id in the same
// order, like MPI_Win_create), so a window id plus a target rank names a
// remote region without any extra metadata exchange.

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace bcs::core {

/// One registered region: raw process memory owned by the registering
/// fiber.  The pointer must stay valid until the owning rank finishes (the
/// BCS-MPI API enforces this with a barrier-bounded usage discipline).
struct WindowRegion {
  unsigned char* base = nullptr;
  std::size_t bytes = 0;
};

/// Per-owner window table.  Owners are opaque 64-bit keys (the BCS-MPI
/// runtime packs (job, rank)); window ids are sequential per owner so
/// symmetric registration yields symmetric ids.
class WindowRegistry {
 public:
  /// Registers a region for `owner` and returns its window id (0, 1, ...).
  int registerWindow(std::uint64_t owner, void* base, std::size_t bytes);

  /// Resolves (owner, window) and bounds-checks [offset, offset+bytes).
  /// Throws sim::SimError on unknown windows or out-of-range accesses.
  const WindowRegion& resolve(std::uint64_t owner, int window,
                              std::size_t offset, std::size_t bytes) const;

  /// True iff `owner` has registered at least one window.
  bool ownerHasWindows(std::uint64_t owner) const;

  /// Drops all windows registered by `owner` (rank finished or evicted).
  void dropOwner(std::uint64_t owner);

  std::size_t totalWindows() const;

 private:
  std::map<std::uint64_t, std::vector<WindowRegion>> windows_;
};

}  // namespace bcs::core
