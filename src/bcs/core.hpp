#pragma once

// The BCS core primitives (paper §2).
//
// The whole system software stack of this repository — STORM resource
// management, the BCS-MPI runtime, and the BCS API — is built exclusively on
// the three operations below, exactly as the paper prescribes:
//
//   Xfer-And-Signal   Transfers a block of data from local memory to the
//                     global memory of a set of nodes (possibly one node).
//                     Optionally signals a local and/or remote event upon
//                     completion.  Non-blocking.
//   Test-Event        Polls a local event; optionally blocks until signaled.
//   Compare-And-Write Compares (>=, <, ==, !=) a global variable on a set of
//                     nodes against a local value; if the condition holds on
//                     *all* nodes, optionally writes a new value to a
//                     (possibly different) global variable on those nodes.
//                     Atomic and sequentially consistent.
//
// Global data lives at "the same virtual address on all nodes"; here that is
// a GlobalVarId resolving to one 64-bit word per node, mirroring
// network-interface memory on QsNet.  Events are QsNet-style counted events:
// they accumulate signals and release waiters one signal at a time.
//
// Both an actor-style interface (completion callbacks — used by the NIC
// threads) and a fiber-blocking interface (used by code running inside
// simulated processes) are provided; the paper's semantics note 4 explicitly
// leaves host-CPU vs co-processor execution open.

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "sim/process.hpp"
#include "sim/trace.hpp"

namespace bcs::core {

using GlobalVarId = int;
using GlobalEventId = int;

/// Comparison operators supported by Compare-And-Write (paper §2).
enum class CmpOp { kGE, kLT, kEQ, kNE };

const char* cmpOpName(CmpOp op);
bool cmpEval(CmpOp op, std::int64_t lhs, std::int64_t rhs);

/// Parameters of one Xfer-And-Signal invocation.
struct XferRequest {
  int src_node = 0;
  std::vector<int> dest_nodes;  ///< Destination set (may include src).
  std::size_t bytes = 0;        ///< Payload size for the timing model.
  /// Data movement: invoked once per destination at its delivery instant.
  /// This is where callers copy real payload bytes (the fabric itself only
  /// models time).  May be empty for pure-signal transfers.
  std::function<void(int dest)> deliver;
  /// Event on src_node signaled once the transfer completed everywhere
  /// (-1 = none).
  GlobalEventId local_event = -1;
  /// Event signaled on every destination at its delivery instant (-1=none).
  GlobalEventId remote_event = -1;
  /// Marks the transfer as subject to random loss under an attached
  /// FaultInjector.  Only honoured on the single-destination (unicast) path;
  /// hardware multicast is reliable.
  bool droppable = false;
  /// Invoked (instead of deliver/local_event) when a single-destination
  /// transfer is lost or the endpoint is down.  Without it, loss is silent.
  std::function<void(int dest)> on_failed;
  /// Invoked once, at the instant the transfer has completed at every
  /// destination.  With no `deliver` and no `remote_event` the hardware
  /// multicast needs no per-destination completion at all — the NIC only
  /// observes the aggregate — which is what makes a relay fan-out O(1) in
  /// engine events instead of O(destinations) (see DESIGN.md §7).
  std::function<void()> on_all;
};

/// Parameters of one Compare-And-Write invocation.
struct CompareAndWriteRequest {
  int src_node = 0;
  std::vector<int> nodes;  ///< The set whose copies of `var` are examined.
  GlobalVarId var = -1;
  CmpOp op = CmpOp::kEQ;
  std::int64_t value = 0;
  /// Optional write phase, applied to all `nodes` iff the condition held on
  /// all of them (atomically, at one simulated instant).
  bool do_write = false;
  GlobalVarId write_var = -1;
  std::int64_t write_value = 0;
};

class BcsCore {
 public:
  BcsCore(net::Fabric& fabric, sim::Trace* trace = nullptr);

  net::Fabric& fabric() { return fabric_; }
  int numNodes() const { return fabric_.numNodes(); }

  // ---- Global variables ----

  /// Allocates a global variable (one 64-bit word per node).  Allocation is
  /// a setup-time operation (no simulated cost), like mapping global memory
  /// at job launch.
  GlobalVarId allocVar(std::string name, std::int64_t initial = 0);

  std::int64_t readVar(int node, GlobalVarId var) const;

  /// Local write to this node's copy (a NIC-memory store; free).
  void writeVarLocal(int node, GlobalVarId var, std::int64_t value);

  // ---- Events ----

  GlobalEventId allocEvent(std::string name);

  /// Signals an event on `node` `count` times (a local operation).
  void signalLocal(int node, GlobalEventId ev, int count = 1);

  /// Non-blocking Test-Event: true iff at least one signal is pending.
  /// Does not consume the signal.
  bool testEvent(int node, GlobalEventId ev) const;

  /// Actor-style wait: `cb` runs (as an engine event) as soon as a signal is
  /// available, consuming it.  FIFO among waiters.
  void waitEventAsync(int node, GlobalEventId ev, std::function<void()> cb);

  /// Blocking Test-Event for code running on a simulated process fiber:
  /// consumes one signal, blocking the process until one is available.
  void testEventBlocking(sim::Process& proc, GlobalEventId ev);

  /// Number of pending (unconsumed) signals — used by tests.
  int pendingSignals(int node, GlobalEventId ev) const;

  // ---- Xfer-And-Signal ----

  /// Non-blocking put to a node set.  Completion is observable only through
  /// the events named in the request (paper §2, note 3).
  void xferAndSignal(XferRequest req);

  // ---- Compare-And-Write ----

  /// Actor-style: `on_result` runs when the conditional round completes.
  void compareAndWriteAsync(CompareAndWriteRequest req,
                            std::function<void(bool)> on_result);

  /// Fiber-blocking variant: returns the condition outcome.
  bool compareAndWriteBlocking(sim::Process& proc,
                               CompareAndWriteRequest req);

 private:
  struct EventState {
    int pending = 0;
    std::deque<std::function<void()>> waiters;
  };

  void checkVar(GlobalVarId var) const;
  void checkEvent(GlobalEventId ev) const;
  EventState& eventState(int node, GlobalEventId ev);
  const EventState& eventState(int node, GlobalEventId ev) const;

  net::Fabric& fabric_;
  sim::Trace* trace_;
  // vars_[var][node], events_[ev][node]
  std::vector<std::vector<std::int64_t>> vars_;
  std::vector<std::string> var_names_;
  std::vector<std::vector<EventState>> events_;
  std::vector<std::string> event_names_;

  /// Snapshot serializer (src/snapshot): global-variable replicas and event
  /// pending counts round-trip; capture refuses while any event has queued
  /// waiters (closures cannot be serialized — the slice boundary has none).
  friend class bcs::snapshot::StateIO;
};

}  // namespace bcs::core
