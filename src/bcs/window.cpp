#include "bcs/window.hpp"

#include <string>

#include "sim/engine.hpp"

namespace bcs::core {

int WindowRegistry::registerWindow(std::uint64_t owner, void* base,
                                   std::size_t bytes) {
  if (base == nullptr || bytes == 0) {
    throw sim::SimError("WindowRegistry: empty region");
  }
  auto& regions = windows_[owner];
  regions.push_back(
      WindowRegion{static_cast<unsigned char*>(base), bytes});
  return static_cast<int>(regions.size()) - 1;
}

const WindowRegion& WindowRegistry::resolve(std::uint64_t owner, int window,
                                            std::size_t offset,
                                            std::size_t bytes) const {
  auto it = windows_.find(owner);
  if (it == windows_.end() || window < 0 ||
      window >= static_cast<int>(it->second.size())) {
    throw sim::SimError("WindowRegistry: unknown window " +
                        std::to_string(window));
  }
  const WindowRegion& region = it->second[static_cast<std::size_t>(window)];
  if (offset > region.bytes || bytes > region.bytes - offset) {
    throw sim::SimError("WindowRegistry: access [" + std::to_string(offset) +
                        ", " + std::to_string(offset + bytes) +
                        ") outside window of " +
                        std::to_string(region.bytes) + " bytes");
  }
  return region;
}

bool WindowRegistry::ownerHasWindows(std::uint64_t owner) const {
  auto it = windows_.find(owner);
  return it != windows_.end() && !it->second.empty();
}

void WindowRegistry::dropOwner(std::uint64_t owner) { windows_.erase(owner); }

std::size_t WindowRegistry::totalWindows() const {
  std::size_t n = 0;
  for (const auto& [owner, regions] : windows_) n += regions.size();
  return n;
}

}  // namespace bcs::core
