#include "bcs/core.hpp"

#include <memory>
#include <utility>

#include "race/race.hpp"

namespace bcs::core {

namespace {
// The NIC var/event tables are shard-0 control-plane state (the whole BCS
// protocol runs there); the detector confirms no foreign shard touches them.
inline void raceTouch(net::Fabric& fabric, race::ObjectKind kind, int node,
                      race::FieldGroup group, race::RaceDetector::Access acc,
                      const char* site) {
  race::RaceDetector* rd = fabric.raceDetector();
  if (rd != nullptr) {
    rd->record(kind, static_cast<std::uint64_t>(node), group, acc, site);
  }
}
}  // namespace

const char* cmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kGE: return ">=";
    case CmpOp::kLT: return "<";
    case CmpOp::kEQ: return "==";
    case CmpOp::kNE: return "!=";
  }
  return "?";
}

bool cmpEval(CmpOp op, std::int64_t lhs, std::int64_t rhs) {
  switch (op) {
    case CmpOp::kGE: return lhs >= rhs;
    case CmpOp::kLT: return lhs < rhs;
    case CmpOp::kEQ: return lhs == rhs;
    case CmpOp::kNE: return lhs != rhs;
  }
  return false;
}

BcsCore::BcsCore(net::Fabric& fabric, sim::Trace* trace)
    : fabric_(fabric), trace_(trace) {}

GlobalVarId BcsCore::allocVar(std::string name, std::int64_t initial) {
  vars_.emplace_back(static_cast<std::size_t>(numNodes()), initial);
  var_names_.push_back(std::move(name));
  return static_cast<GlobalVarId>(vars_.size()) - 1;
}

void BcsCore::checkVar(GlobalVarId var) const {
  if (var < 0 || static_cast<std::size_t>(var) >= vars_.size()) {
    throw sim::SimError("BcsCore: bad global variable id " +
                        std::to_string(var));
  }
}

void BcsCore::checkEvent(GlobalEventId ev) const {
  if (ev < 0 || static_cast<std::size_t>(ev) >= events_.size()) {
    throw sim::SimError("BcsCore: bad event id " + std::to_string(ev));
  }
}

std::int64_t BcsCore::readVar(int node, GlobalVarId var) const {
  checkVar(var);
  raceTouch(fabric_, race::ObjectKind::kCoreVars, node,
            race::FieldGroup::kVars, race::RaceDetector::Access::kRead,
            "BcsCore::readVar");
  return vars_[static_cast<std::size_t>(var)].at(static_cast<std::size_t>(node));
}

void BcsCore::writeVarLocal(int node, GlobalVarId var, std::int64_t value) {
  checkVar(var);
  raceTouch(fabric_, race::ObjectKind::kCoreVars, node,
            race::FieldGroup::kVars, race::RaceDetector::Access::kWrite,
            "BcsCore::writeVarLocal");
  vars_[static_cast<std::size_t>(var)].at(static_cast<std::size_t>(node)) =
      value;
}

GlobalEventId BcsCore::allocEvent(std::string name) {
  events_.emplace_back(static_cast<std::size_t>(numNodes()));
  event_names_.push_back(std::move(name));
  return static_cast<GlobalEventId>(events_.size()) - 1;
}

BcsCore::EventState& BcsCore::eventState(int node, GlobalEventId ev) {
  checkEvent(ev);
  return events_[static_cast<std::size_t>(ev)].at(
      static_cast<std::size_t>(node));
}

const BcsCore::EventState& BcsCore::eventState(int node,
                                               GlobalEventId ev) const {
  checkEvent(ev);
  return events_[static_cast<std::size_t>(ev)].at(
      static_cast<std::size_t>(node));
}

void BcsCore::signalLocal(int node, GlobalEventId ev, int count) {
  raceTouch(fabric_, race::ObjectKind::kCoreEvents, node,
            race::FieldGroup::kEvents, race::RaceDetector::Access::kWrite,
            "BcsCore::signalLocal");
  EventState& st = eventState(node, ev);
  st.pending += count;
  // Release waiters FIFO, one pending signal each.  Callbacks are deferred
  // through the engine so a waiter can re-arm without re-entrancy surprises.
  while (st.pending > 0 && !st.waiters.empty()) {
    --st.pending;
    std::function<void()> cb = std::move(st.waiters.front());
    st.waiters.pop_front();
    fabric_.engine().at(fabric_.engine().now(), std::move(cb));
  }
}

bool BcsCore::testEvent(int node, GlobalEventId ev) const {
  raceTouch(fabric_, race::ObjectKind::kCoreEvents, node,
            race::FieldGroup::kEvents, race::RaceDetector::Access::kRead,
            "BcsCore::testEvent");
  return eventState(node, ev).pending > 0;
}

int BcsCore::pendingSignals(int node, GlobalEventId ev) const {
  return eventState(node, ev).pending;
}

void BcsCore::waitEventAsync(int node, GlobalEventId ev,
                             std::function<void()> cb) {
  raceTouch(fabric_, race::ObjectKind::kCoreEvents, node,
            race::FieldGroup::kEvents, race::RaceDetector::Access::kWrite,
            "BcsCore::waitEventAsync");
  EventState& st = eventState(node, ev);
  if (st.pending > 0 && st.waiters.empty()) {
    --st.pending;
    fabric_.engine().at(fabric_.engine().now(), std::move(cb));
    return;
  }
  st.waiters.push_back(std::move(cb));
}

void BcsCore::testEventBlocking(sim::Process& proc, GlobalEventId ev) {
  waitEventAsync(proc.node(), ev, [&proc] { proc.wake(); });
  proc.block();
}

void BcsCore::xferAndSignal(XferRequest req) {
  if (trace_) {
    trace_->record(fabric_.engine().now(), sim::TraceCategory::kBcsCore,
                   req.src_node,
                   "Xfer-And-Signal " + std::to_string(req.bytes) + "B to " +
                       std::to_string(req.dest_nodes.size()) + " node(s)");
  }
  if (req.dest_nodes.empty()) {
    throw sim::SimError("Xfer-And-Signal: empty destination set");
  }

  auto st = std::make_shared<XferRequest>(std::move(req));
  // A request with neither per-destination data movement nor a remote event
  // keeps the fabric's per-destination callback empty: the multicast then
  // schedules no per-destination engine events at all, only the aggregate
  // `on_all` completion — one event per fan-out, however wide.
  std::function<void(int)> per_dest;
  if (st->deliver || st->remote_event >= 0) {
    per_dest = [this, st](int dest) {
      if (st->deliver) st->deliver(dest);
      if (st->remote_event >= 0) signalLocal(dest, st->remote_event);
    };
  }
  auto all_done = [this, st] {
    if (st->local_event >= 0) signalLocal(st->src_node, st->local_event);
    if (st->on_all) st->on_all();
  };

  if (st->dest_nodes.size() == 1) {
    const int dest = st->dest_nodes.front();
    net::SendOptions opts;
    opts.droppable = st->droppable;
    if (st->on_failed) {
      opts.on_failed = [st, dest] { st->on_failed(dest); };
    }
    fabric_.unicast(
        st->src_node, dest, st->bytes,
        [per_dest, all_done, dest] {
          if (per_dest) per_dest(dest);
          all_done();
        },
        /*on_injected=*/{}, std::move(opts));
    return;
  }
  fabric_.multicast(st->src_node, st->dest_nodes, st->bytes,
                    std::move(per_dest), std::move(all_done));
}

void BcsCore::compareAndWriteAsync(CompareAndWriteRequest req,
                                   std::function<void(bool)> on_result) {
  checkVar(req.var);
  if (req.do_write) checkVar(req.write_var);
  if (req.nodes.empty()) {
    throw sim::SimError("Compare-And-Write: empty node set");
  }
  if (trace_) {
    trace_->record(fabric_.engine().now(), sim::TraceCategory::kBcsCore,
                   req.src_node,
                   "Compare-And-Write " + var_names_[static_cast<std::size_t>(req.var)] +
                       " " + cmpOpName(req.op) + " " +
                       std::to_string(req.value) + " on " +
                       std::to_string(req.nodes.size()) + " node(s)");
  }
  auto st = std::make_shared<CompareAndWriteRequest>(std::move(req));
  fabric_.conditional(
      st->src_node, st->nodes,
      /*eval=*/
      [this, st](int node) { return cmpEval(st->op, readVar(node, st->var), st->value); },
      /*write=*/
      [this, st](int node) {
        if (st->do_write) writeVarLocal(node, st->write_var, st->write_value);
      },
      std::move(on_result));
}

bool BcsCore::compareAndWriteBlocking(sim::Process& proc,
                                      CompareAndWriteRequest req) {
  bool result = false;
  compareAndWriteAsync(std::move(req), [&proc, &result](bool ok) {
    result = ok;
    proc.wake();
  });
  proc.block();
  return result;
}

}  // namespace bcs::core
