#include "mpi/comm.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace bcs::mpi {

void Comm::send(const void* buf, std::size_t bytes, int dest, int tag) {
  Request r = isend(buf, bytes, dest, tag);
  wait(r);
}

void Comm::recv(void* buf, std::size_t bytes, int src, int tag,
                Status* status) {
  Request r = irecv(buf, bytes, src, tag);
  wait(r, status);
}

void Comm::waitall(std::span<Request> reqs) {
  for (Request& r : reqs) wait(r);
}

bool Comm::testall(std::span<Request> reqs) {
  // MPI_Testall semantics: either all complete (and all are released) or
  // none are.  First peek without consuming, then consume.
  for (const Request& r : reqs) {
    if (!r.null() && !completed(r)) return false;
  }
  for (Request& r : reqs) {
    if (!r.null()) test(r);
  }
  return true;
}

void Comm::scatter(const void* send_buf, std::size_t bytes_each,
                   void* recv_buf, int root) {
  std::vector<std::size_t> counts, displs;
  if (rank() == root) {
    counts.assign(static_cast<std::size_t>(size()), bytes_each);
    displs.resize(static_cast<std::size_t>(size()));
    for (std::size_t i = 0; i < displs.size(); ++i) displs[i] = i * bytes_each;
  }
  scatterv(send_buf, counts, displs, recv_buf, bytes_each, root);
}

void Comm::scatterv(const void* send_buf, std::span<const std::size_t> counts,
                    std::span<const std::size_t> displs, void* recv_buf,
                    std::size_t recv_bytes, int root) {
  const int tag = nextCollTag();
  if (rank() == root) {
    if (counts.size() != static_cast<std::size_t>(size()) ||
        displs.size() != counts.size()) {
      throw std::invalid_argument("scatterv: bad counts/displs at root");
    }
    const auto* base = static_cast<const std::byte*>(send_buf);
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(size()) - 1);
    for (int r = 0; r < size(); ++r) {
      const auto i = static_cast<std::size_t>(r);
      if (r == rank()) {
        std::memcpy(recv_buf, base + displs[i], counts[i]);
        continue;
      }
      reqs.push_back(isend(base + displs[i], counts[i], r, tag));
    }
    waitall(reqs);
  } else {
    recv(recv_buf, recv_bytes, root, tag);
  }
}

void Comm::gather(const void* send_buf, std::size_t bytes_each,
                  void* recv_buf, int root) {
  std::vector<std::size_t> counts, displs;
  if (rank() == root) {
    counts.assign(static_cast<std::size_t>(size()), bytes_each);
    displs.resize(static_cast<std::size_t>(size()));
    for (std::size_t i = 0; i < displs.size(); ++i) displs[i] = i * bytes_each;
  }
  gatherv(send_buf, bytes_each, recv_buf, counts, displs, root);
}

void Comm::gatherv(const void* send_buf, std::size_t send_bytes,
                   void* recv_buf, std::span<const std::size_t> counts,
                   std::span<const std::size_t> displs, int root) {
  const int tag = nextCollTag();
  if (rank() == root) {
    if (counts.size() != static_cast<std::size_t>(size()) ||
        displs.size() != counts.size()) {
      throw std::invalid_argument("gatherv: bad counts/displs at root");
    }
    auto* base = static_cast<std::byte*>(recv_buf);
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(size()) - 1);
    for (int r = 0; r < size(); ++r) {
      const auto i = static_cast<std::size_t>(r);
      if (r == rank()) {
        std::memcpy(base + displs[i], send_buf, counts[i]);
        continue;
      }
      reqs.push_back(irecv(base + displs[i], counts[i], r, tag));
    }
    waitall(reqs);
  } else {
    send(send_buf, send_bytes, root, tag);
  }
}

void Comm::allgather(const void* send_buf, std::size_t bytes_each,
                     void* recv_buf) {
  gather(send_buf, bytes_each, recv_buf, /*root=*/0);
  bcast(recv_buf, bytes_each * static_cast<std::size_t>(size()), /*root=*/0);
}

void Comm::allgatherv(const void* send_buf, std::size_t send_bytes,
                      void* recv_buf, std::span<const std::size_t> counts,
                      std::span<const std::size_t> displs) {
  if (counts.size() != static_cast<std::size_t>(size()) ||
      displs.size() != counts.size()) {
    throw std::invalid_argument("allgatherv: counts/displs must be global");
  }
  gatherv(send_buf, send_bytes, recv_buf, counts, displs, /*root=*/0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    total = std::max(total, displs[i] + counts[i]);
  }
  bcast(recv_buf, total, /*root=*/0);
}

void Comm::alltoall(const void* send_buf, std::size_t bytes_each,
                    void* recv_buf) {
  std::vector<std::size_t> counts(static_cast<std::size_t>(size()),
                                  bytes_each);
  std::vector<std::size_t> displs(static_cast<std::size_t>(size()));
  for (std::size_t i = 0; i < displs.size(); ++i) displs[i] = i * bytes_each;
  alltoallv(send_buf, counts, displs, recv_buf, counts, displs);
}

void Comm::alltoallv(const void* send_buf,
                     std::span<const std::size_t> send_counts,
                     std::span<const std::size_t> send_displs, void* recv_buf,
                     std::span<const std::size_t> recv_counts,
                     std::span<const std::size_t> recv_displs) {
  if (send_counts.size() != static_cast<std::size_t>(size()) ||
      recv_counts.size() != send_counts.size()) {
    throw std::invalid_argument("alltoallv: bad counts");
  }
  const int tag = nextCollTag();
  const auto* sbase = static_cast<const std::byte*>(send_buf);
  auto* rbase = static_cast<std::byte*>(recv_buf);
  {
    const auto i = static_cast<std::size_t>(rank());
    std::memcpy(rbase + recv_displs[i], sbase + send_displs[i],
                std::min(send_counts[i], recv_counts[i]));
  }
  // Rotated (pairwise) schedule: rank r exchanges with r+1, r+2, ... so no
  // single node's NIC becomes everyone's first target — without this, all
  // ranks drain node 0 first and its egress serializes the whole pattern.
  std::vector<Request> reqs;
  reqs.reserve(2 * static_cast<std::size_t>(size()) - 2);
  for (int k = 1; k < size(); ++k) {
    const int r = (rank() + k) % size();
    const auto i = static_cast<std::size_t>(r);
    reqs.push_back(irecv(rbase + recv_displs[i], recv_counts[i], r, tag));
    reqs.push_back(isend(sbase + send_displs[i], send_counts[i], r, tag));
  }
  waitall(reqs);
}

}  // namespace bcs::mpi
