#pragma once

// Common MPI-style types shared by the two message-passing implementations
// in this repository (the BCS-MPI library under src/bcsmpi and the
// latency-optimized "Quadrics MPI"-style baseline under src/baseline).
//
// The subset mirrors what the paper's Figure 13 maps: point-to-point with
// blocking/non-blocking flavours, probe/test/wait(all), and the collective
// set {barrier, bcast, reduce, allreduce, scatter(v), gather(v),
// allgather(v), alltoall(v)}.

#include <cstddef>
#include <cstdint>
#include <string>

namespace bcs::mpi {

/// Wildcards (MPI_ANY_SOURCE / MPI_ANY_TAG).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Element datatypes understood by the reduction machinery.
enum class Datatype : std::uint8_t {
  kByte,
  kInt32,
  kInt64,
  kFloat32,
  kFloat64,
};

std::size_t datatypeSize(Datatype dt);
const char* datatypeName(Datatype dt);

/// Reduction operators.
enum class ReduceOp : std::uint8_t { kSum, kProd, kMin, kMax };

const char* reduceOpName(ReduceOp op);

/// Error classes reported in Status::error (subset of MPI error classes;
/// kErrPeerUnreachable plays the role of MPI_ERR_PROC_FAILED).
inline constexpr int kSuccess = 0;
inline constexpr int kErrPeerUnreachable = 1;

/// Completion status of a receive (subset of MPI_Status).
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
  /// kSuccess, or kErrPeerUnreachable when the operation was completed *in
  /// error* because the peer's node was evicted after a fault.
  int error = kSuccess;
};

/// Opaque request handle for non-blocking operations.  Identifiers are
/// allocated by the owning communicator; a default-constructed Request is
/// "null" (MPI_REQUEST_NULL): wait/test on it succeed immediately.
struct Request {
  std::uint64_t id = 0;
  bool null() const { return id == 0; }
};

}  // namespace bcs::mpi
