#include "mpi/types.hpp"

#include <stdexcept>

namespace bcs::mpi {

std::size_t datatypeSize(Datatype dt) {
  switch (dt) {
    case Datatype::kByte: return 1;
    case Datatype::kInt32: return 4;
    case Datatype::kInt64: return 8;
    case Datatype::kFloat32: return 4;
    case Datatype::kFloat64: return 8;
  }
  throw std::invalid_argument("datatypeSize: bad datatype");
}

const char* datatypeName(Datatype dt) {
  switch (dt) {
    case Datatype::kByte: return "byte";
    case Datatype::kInt32: return "int32";
    case Datatype::kInt64: return "int64";
    case Datatype::kFloat32: return "float32";
    case Datatype::kFloat64: return "float64";
  }
  return "?";
}

const char* reduceOpName(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "sum";
    case ReduceOp::kProd: return "prod";
    case ReduceOp::kMin: return "min";
    case ReduceOp::kMax: return "max";
  }
  return "?";
}

}  // namespace bcs::mpi
