#include "mpi/reduce_ops.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "softfloat/softfloat.hpp"

namespace bcs::mpi {
namespace {

template <typename T>
T hostOp(ReduceOp op, T a, T b) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kProd: return a * b;
    case ReduceOp::kMin: return std::min(a, b);
    case ReduceOp::kMax: return std::max(a, b);
  }
  throw std::invalid_argument("hostOp: bad op");
}

template <typename T>
void hostLoop(ReduceOp op, void* acc, const void* in, std::size_t count) {
  auto* a = static_cast<T*>(acc);
  const auto* b = static_cast<const T*>(in);
  for (std::size_t i = 0; i < count; ++i) a[i] = hostOp(op, a[i], b[i]);
}

float sfOp32(ReduceOp op, float a, float b) {
  switch (op) {
    case ReduceOp::kSum: return sf::addf(a, b);
    case ReduceOp::kProd: return sf::mulf(a, b);
    case ReduceOp::kMin: return sf::minf(a, b);
    case ReduceOp::kMax: return sf::maxf(a, b);
  }
  throw std::invalid_argument("sfOp32: bad op");
}

double sfOp64(ReduceOp op, double a, double b) {
  switch (op) {
    case ReduceOp::kSum: return sf::addd(a, b);
    case ReduceOp::kProd: return sf::muld(a, b);
    case ReduceOp::kMin: return sf::mind(a, b);
    case ReduceOp::kMax: return sf::maxd(a, b);
  }
  throw std::invalid_argument("sfOp64: bad op");
}

}  // namespace

void applyReduce(ReduceOp op, Datatype dt, void* acc, const void* in,
                 std::size_t count, ReduceFlavor flavor) {
  switch (dt) {
    case Datatype::kByte:
      // Reduce over raw bytes treats them as unsigned integers.
      hostLoop<std::uint8_t>(op, acc, in, count);
      return;
    case Datatype::kInt32:
      hostLoop<std::int32_t>(op, acc, in, count);
      return;
    case Datatype::kInt64:
      hostLoop<std::int64_t>(op, acc, in, count);
      return;
    case Datatype::kFloat32: {
      if (flavor == ReduceFlavor::kHost) {
        hostLoop<float>(op, acc, in, count);
        return;
      }
      auto* a = static_cast<float*>(acc);
      const auto* b = static_cast<const float*>(in);
      for (std::size_t i = 0; i < count; ++i) a[i] = sfOp32(op, a[i], b[i]);
      return;
    }
    case Datatype::kFloat64: {
      if (flavor == ReduceFlavor::kHost) {
        hostLoop<double>(op, acc, in, count);
        return;
      }
      auto* a = static_cast<double*>(acc);
      const auto* b = static_cast<const double*>(in);
      for (std::size_t i = 0; i < count; ++i) a[i] = sfOp64(op, a[i], b[i]);
      return;
    }
  }
  throw std::invalid_argument("applyReduce: bad datatype");
}

}  // namespace bcs::mpi
