#pragma once

// Elementwise reduction kernels.
//
// Two execution flavours:
//   * kHost — native CPU arithmetic (what the baseline MPI uses when it
//     reduces in the host processors);
//   * kNicSoftFloat — integer arithmetic everywhere; float32/float64 go
//     through src/softfloat, exactly like the paper's Reduce Helper on the
//     FPU-less Elan3 NIC (§4.4, SoftFloat citation [30]).
//
// Both flavours produce bit-identical IEEE results for add/min/max (the
// softfloat library rounds to nearest even like the host), which the test
// suite checks — that equivalence is what made NIC-side reduction safe to
// deploy.

#include <cstddef>

#include "mpi/types.hpp"

namespace bcs::mpi {

enum class ReduceFlavor { kHost, kNicSoftFloat };

/// acc[i] = op(acc[i], in[i]) for count elements of type dt.
/// Buffers must not overlap and must hold count * datatypeSize(dt) bytes.
void applyReduce(ReduceOp op, Datatype dt, void* acc, const void* in,
                 std::size_t count, ReduceFlavor flavor);

}  // namespace bcs::mpi
