#pragma once

// The communicator interface both message-passing libraries implement.
//
// Application skeletons (src/apps) are written against this interface only,
// so the same source runs unmodified over Quadrics-MPI-style eager/
// rendezvous messaging (src/baseline) and over globally coscheduled BCS-MPI
// (src/bcsmpi) — exactly the apples-to-apples setup of the paper's §5.
//
// Layering follows the paper's Appendix A: barrier, bcast and reduce are
// primitive (each backend supplies its own, NIC-level for BCS-MPI), while
// scatter(v) / gather(v) / allgather(v) / alltoall(v) are implemented here
// once, on top of the point-to-point and primitive-collective operations.
//
// Buffers are raw byte ranges plus an element Datatype where reduction
// arithmetic is involved; typed convenience wrappers are at the bottom.

#include <cstddef>
#include <span>
#include <vector>

#include "mpi/types.hpp"
#include "sim/time.hpp"

namespace bcs::mpi {

class Comm {
 public:
  virtual ~Comm() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Simulated wall clock (for timing sections of an application).
  virtual sim::SimTime now() const = 0;

  /// Consumes `work` ns of CPU on this process's node (the computation part
  /// of a bulk-synchronous step).
  virtual void compute(sim::Duration work) = 0;

  // ---- Point-to-point ----

  virtual void send(const void* buf, std::size_t bytes, int dest, int tag);
  virtual void recv(void* buf, std::size_t bytes, int src, int tag,
                    Status* status = nullptr);
  virtual Request isend(const void* buf, std::size_t bytes, int dest,
                        int tag) = 0;
  virtual Request irecv(void* buf, std::size_t bytes, int src, int tag) = 0;

  /// Blocks until `r` completes; clears it to the null request.
  virtual void wait(Request& r, Status* status = nullptr) = 0;

  /// Non-blocking completion check; on success clears `r` and returns true.
  virtual bool test(Request& r, Status* status = nullptr) = 0;

  /// Non-consuming completion peek: true iff `r` has completed.  Unlike
  /// test(), never releases the request (needed for MPI_Testall's
  /// all-or-nothing semantics).
  virtual bool completed(const Request& r) const = 0;

  virtual void waitall(std::span<Request> reqs);
  virtual bool testall(std::span<Request> reqs);

  /// MPI_Probe/MPI_Iprobe: checks for a matching incoming message without
  /// receiving it.  Returns true (and fills `status`) if one is pending.
  virtual bool probe(int src, int tag, Status* status, bool blocking) = 0;

  // ---- Primitive collectives (backend-specific) ----

  virtual void barrier() = 0;
  virtual void bcast(void* buf, std::size_t bytes, int root) = 0;
  virtual void reduce(const void* contrib, void* result, std::size_t count,
                      Datatype dt, ReduceOp op, int root) = 0;
  virtual void allreduce(const void* contrib, void* result, std::size_t count,
                         Datatype dt, ReduceOp op) = 0;

  // ---- Composed collectives (implemented here on top of the above) ----

  /// Root holds size()*bytes_each; every rank receives its slice.
  void scatter(const void* send_buf, std::size_t bytes_each, void* recv_buf,
               int root);
  /// Vectorial scatter: per-rank byte counts and displacements at the root.
  void scatterv(const void* send_buf, std::span<const std::size_t> counts,
                std::span<const std::size_t> displs, void* recv_buf,
                std::size_t recv_bytes, int root);

  void gather(const void* send_buf, std::size_t bytes_each, void* recv_buf,
              int root);
  void gatherv(const void* send_buf, std::size_t send_bytes, void* recv_buf,
               std::span<const std::size_t> counts,
               std::span<const std::size_t> displs, int root);

  void allgather(const void* send_buf, std::size_t bytes_each,
                 void* recv_buf);
  void allgatherv(const void* send_buf, std::size_t send_bytes,
                  void* recv_buf, std::span<const std::size_t> counts,
                  std::span<const std::size_t> displs);

  /// Each rank sends bytes_each to every rank (send_buf holds size() *
  /// bytes_each, laid out by destination; recv_buf likewise by source).
  void alltoall(const void* send_buf, std::size_t bytes_each, void* recv_buf);
  void alltoallv(const void* send_buf, std::span<const std::size_t> send_counts,
                 std::span<const std::size_t> send_displs, void* recv_buf,
                 std::span<const std::size_t> recv_counts,
                 std::span<const std::size_t> recv_displs);

  // ---- Typed convenience wrappers ----

  template <typename T>
  void sendv(std::span<const T> data, int dest, int tag) {
    send(data.data(), data.size_bytes(), dest, tag);
  }
  template <typename T>
  void recvv(std::span<T> data, int src, int tag, Status* st = nullptr) {
    recv(data.data(), data.size_bytes(), src, tag, st);
  }
  template <typename T>
  Request isendv(std::span<const T> data, int dest, int tag) {
    return isend(data.data(), data.size_bytes(), dest, tag);
  }
  template <typename T>
  Request irecvv(std::span<T> data, int src, int tag) {
    return irecv(data.data(), data.size_bytes(), src, tag);
  }

  /// Scalar allreduce, e.g. `double s = comm.allreduceOne(x, kSum)`.
  double allreduceOne(double value, ReduceOp op) {
    double out = 0;
    allreduce(&value, &out, 1, Datatype::kFloat64, op);
    return out;
  }
  std::int64_t allreduceOne(std::int64_t value, ReduceOp op) {
    std::int64_t out = 0;
    allreduce(&value, &out, 1, Datatype::kInt64, op);
    return out;
  }

 protected:
  /// Internal point-to-point traffic (composed collectives, reduction
  /// trees) uses *negative* tags.  Application tags must be >= 0 (as in
  /// MPI), and kAnyTag receives match only non-negative tags, so internal
  /// traffic can never be stolen by an application wildcard receive — the
  /// role MPI communicator contexts play in a real implementation.
  /// Collectives are invoked in the same order by every rank, so the
  /// per-rank sequence number agrees across ranks without communication.
  static constexpr int kCollTagBase = -(1 << 20);
  int nextCollTag() { return kCollTagBase - (coll_seq_++ & 0xFFFF); }

 private:
  int coll_seq_ = 0;
};

}  // namespace bcs::mpi
