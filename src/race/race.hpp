#pragma once

// bcs-race: deterministic shard-ownership race detector for the parallel
// engine (DESIGN.md §10).
//
// The parallel mode's byte-identity guarantee (DESIGN.md §6) holds only for
// workloads honouring the shard contract: shards interact exclusively
// through Engine::handoff().  Scheduling violations (cross-shard atOn /
// cancel inside a window) already fail loudly — but cross-shard *data*
// accesses are invisible: a model callback on shard 1 that pokes state owned
// by shard 5 races silently, and TSan only catches the interleavings it
// happens to see (and nothing at all on a 1-core host, or at threads=1).
//
// This detector closes that hole the same way bcs-verify audits the
// protocol: as a pure observer over the *logical* execution.  An ownership
// registry tags simulator state (per-node runtime NodeState, per-rank
// request tables, BCS core var/event tables, fabric endpoints, shard
// queues, pool/stat stripes) with its owning shard; instrumentation hooks
// record per-window read/write access sets keyed by (object, field group,
// executing shard) with event-key + call-site provenance; at every barrier
// the access sets merge in canonical shard order and any (object, group)
// touched by two shards in one window — or written by a non-owner — becomes
// a structured finding.  Because accesses are keyed by the canonical event
// key (identical serial/parallel, any thread count) and merged in a
// canonical order, the same seed yields the same RaceReport at threads=1
// and threads=8 — the detector sees every logical race on every run, where
// TSan sees only physically-exhibited ones.  Clean runs stay byte-identical
// detector-on/off: findings are the only thing it ever traces.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace bcs::sim {
class Trace;
}

namespace bcs::race {

/// What a tracked object is.  The (kind, id) pair names one object:
///   kNodeState      — bcsmpi per-node runtime state; id = node
///   kRankTable      — bcsmpi per-rank request table; id = (job << 16) | rank
///   kCoreVars       — BCS core variable row; id = node
///   kCoreEvents     — BCS core event row; id = node
///   kFabricEndpoint — fabric NIC endpoint; id = node
///   kShardQueue     — an engine shard's pending-event queue; id = shard
///   kPoolStripe     — payload-pool freelist stripe; id = stripe (exempt)
///   kStatStripe     — fabric statistics stripe; id = stripe (exempt)
///   kRmaWindow      — one-sided RMA window; id = (job << 40) | (rank << 8) | win
enum class ObjectKind : std::uint8_t {
  kNodeState,
  kRankTable,
  kCoreVars,
  kCoreEvents,
  kFabricEndpoint,
  kShardQueue,
  kPoolStripe,
  kStatStripe,
  kRmaWindow,
};
const char* objectKindName(ObjectKind k);

/// Which part of the object was touched.  Conflicts are detected at
/// (object, group) granularity: two shards touching *different* groups of
/// one NodeState in a window is still a finding-free run only if the groups
/// really are disjoint state — which is exactly what the grouping asserts.
enum class FieldGroup : std::uint8_t {
  kBufferSender,    // send-side descriptor FIFOs and retry queues
  kBufferReceiver,  // receive-side posted/unexpected tables
  kCollectives,     // collective descriptors and reduction scratch
  kDma,             // chunk progress and scheduled gets
  kNodeManager,     // slice scheduling, watchdog, membership
  kPhase,           // DEM/MSM/P2P/BBM/RM microphase entry state
  kRequests,        // per-rank request table
  kVars,            // BCS core variable cells
  kEvents,          // BCS core event cells
  kEgress,          // endpoint egress (injection) side
  kIngress,         // endpoint ingress (delivery) side
  kQueue,           // the shard queue itself (cross-shard atOn/cancel)
  kStripe,          // striped shared state (exempt by construction)
  kRma,             // RMA window memory and epoch queues
};
const char* fieldGroupName(FieldGroup g);

enum class Category : std::uint8_t {
  kWriteWrite,          // two shards wrote one (object, group) in a window
  kReadWrite,           // one wrote, another read, same window
  kOwnershipViolation,  // a single non-owner shard wrote
};
constexpr int kNumCategories = 3;
const char* categoryName(Category c);

/// One confirmed finding.  `detail` carries the full provenance (event
/// keys, times, call sites) pre-rendered; everything is deterministic, so
/// reports compare with ==.
struct Finding {
  Category category;
  sim::SimTime time = 0;  ///< merge boundary the conflict surfaced at
  ObjectKind kind;
  std::uint64_t id = 0;
  FieldGroup group;
  std::string detail;

  bool operator==(const Finding&) const = default;
};

/// Mirrors verify::VerifyReport: exact per-category counters, a capped
/// finding list, and a render() for humans.
struct RaceReport {
  std::uint64_t counts[kNumCategories] = {};
  std::vector<Finding> findings;
  std::uint64_t dropped_findings = 0;  ///< found beyond the retention cap

  std::uint64_t windows_merged = 0;
  std::uint64_t accesses_recorded = 0;
  std::uint64_t objects_tracked = 0;  ///< registry size at last merge
  bool finalized = false;

  bool clean() const;
  std::string render() const;

  bool operator==(const RaceReport&) const = default;
};

/// The detector.  Construct, then attach with Engine::setShardObserver
/// (the bcsmpi Runtime does both when BcsMpiConfig::race_detect is set).
///
/// Thread-safety contract (all deterministic-by-construction, no atomics):
///   * record() may be called from any worker mid-window; it writes only
///     the executing shard's table, and a shard belongs to exactly one
///     worker for the whole run.
///   * registerObject()/registerShared() are setup-time (no run active).
///   * onBarrier() runs on the coordinator with workers quiesced;
///     onSliceBoundary() no-ops inside a parallel window (the barrier
///     merge supersedes it) so serial and parallel runs merge on the same
///     slice grid.
///   * finalize() is for after run() returns (Runtime::raceAudit()).
class RaceDetector final : public sim::ShardAccessObserver {
 public:
  enum class Access : std::uint8_t { kRead, kWrite };

  /// Shards above this are untrackable (the table array is pre-sized so
  /// workers never resize shared structure mid-window); recording from a
  /// higher shard fails the simulation loudly.
  static constexpr std::size_t kMaxTrackedShards = 1024;

  RaceDetector(sim::Engine& engine, sim::Trace* trace,
               std::size_t max_findings = 256);
  ~RaceDetector() override;

  // ----- ownership registry (setup-time) -----

  /// Declares `(kind, id)` owned by `owner`.  Re-registration overwrites
  /// (Fabric::setShardMap re-tags endpoints).  Unregistered objects default
  /// to shard 0 — the serial world's single shard.
  void registerObject(ObjectKind kind, std::uint64_t id, sim::ShardId owner);

  /// Declares `(kind, id)` intentionally shared (striped pools/stats whose
  /// internal synchronization is their own): recorded but never a finding.
  void registerShared(ObjectKind kind, std::uint64_t id);

  // ----- instrumentation (any worker, mid-window) -----

  /// Records one access by the executing event.  No-op outside event
  /// execution (setup/teardown code runs single-threaded by construction).
  /// `site` must be a string literal — it is stored by pointer.
  void record(ObjectKind kind, std::uint64_t id, FieldGroup group,
              Access access, const char* site);

  // ----- sim::ShardAccessObserver -----

  void onSerialCrossShard(sim::ShardId target, const char* what) override;
  void onBarrier(sim::SimTime boundary) override;

  // ----- merge points and report -----

  /// Serial-mode window boundary (the Runtime calls this at every slice
  /// start, mirroring the parallel barrier grid).  Inside a parallel window
  /// it is a no-op: the engine barrier already merges there, and merging
  /// from a worker would read other workers' live tables.
  void onSliceBoundary(sim::SimTime boundary);

  /// Merges any outstanding accesses and seals the report.  Idempotent.
  const RaceReport& finalize(sim::SimTime now);

  const RaceReport& report() const { return report_; }

 private:
  struct ObjectKey {
    ObjectKind kind;
    FieldGroup group;
    std::uint64_t id;
    auto operator<=>(const ObjectKey&) const = default;
  };

  /// First-access provenance: canonical event key + sim time + call site.
  struct Provenance {
    std::uint64_t event_key = 0;
    sim::SimTime time = 0;
    const char* site = nullptr;
  };

  struct AccessEntry {
    Provenance first_read;
    Provenance first_write;
    std::uint32_t reads = 0;
    std::uint32_t writes = 0;
  };

  /// One shard's window access set.  alignas(64) so two workers' tables
  /// never share a cache line; `touched` lets the merge skip the (many)
  /// idle shards without scanning their maps.
  struct alignas(64) ShardTable {
    std::map<ObjectKey, AccessEntry> acc;  // ordered: merge order is canonical
    bool touched = false;
  };

  struct OwnerInfo {
    sim::ShardId owner = 0;
    bool shared = false;
  };

  void mergeTables(sim::SimTime boundary);
  OwnerInfo ownerOf(const ObjectKey& key) const;
  void addFinding(Category cat, sim::SimTime boundary, const ObjectKey& key,
                  std::string detail);
  static std::string describe(const ObjectKey& key);
  static std::string describeAccess(sim::ShardId shard, const Provenance& p);

  sim::Engine& engine_;
  sim::Trace* trace_;  // findings only; clean runs never touch it
  std::size_t max_findings_;
  std::vector<ShardTable> tables_;  // indexed by shard, fixed size
  std::map<std::pair<std::uint8_t, std::uint64_t>, OwnerInfo> registry_;
  RaceReport report_;
};

}  // namespace bcs::race
