#include "race/race.hpp"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "sim/trace.hpp"

namespace bcs::race {

const char* objectKindName(ObjectKind k) {
  switch (k) {
    case ObjectKind::kNodeState: return "node-state";
    case ObjectKind::kRankTable: return "rank-table";
    case ObjectKind::kCoreVars: return "core-vars";
    case ObjectKind::kCoreEvents: return "core-events";
    case ObjectKind::kFabricEndpoint: return "endpoint";
    case ObjectKind::kShardQueue: return "shard-queue";
    case ObjectKind::kPoolStripe: return "pool-stripe";
    case ObjectKind::kStatStripe: return "stat-stripe";
    case ObjectKind::kRmaWindow: return "rma-window";
  }
  return "?";
}

const char* fieldGroupName(FieldGroup g) {
  switch (g) {
    case FieldGroup::kBufferSender: return "BufferSender";
    case FieldGroup::kBufferReceiver: return "BufferReceiver";
    case FieldGroup::kCollectives: return "Collectives";
    case FieldGroup::kDma: return "Dma";
    case FieldGroup::kNodeManager: return "NodeManager";
    case FieldGroup::kPhase: return "Phase";
    case FieldGroup::kRequests: return "Requests";
    case FieldGroup::kVars: return "Vars";
    case FieldGroup::kEvents: return "Events";
    case FieldGroup::kEgress: return "Egress";
    case FieldGroup::kIngress: return "Ingress";
    case FieldGroup::kQueue: return "Queue";
    case FieldGroup::kStripe: return "Stripe";
    case FieldGroup::kRma: return "RmaWindow";
  }
  return "?";
}

const char* categoryName(Category c) {
  switch (c) {
    case Category::kWriteWrite: return "write-write";
    case Category::kReadWrite: return "read-write";
    case Category::kOwnershipViolation: return "ownership-violation";
  }
  return "?";
}

bool RaceReport::clean() const {
  for (std::uint64_t c : counts) {
    if (c != 0) return false;
  }
  return dropped_findings == 0;
}

std::string RaceReport::render() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  std::string out = "bcs-race report: ";
  if (total == 0) {
    out += "clean";
  } else {
    out += std::to_string(total) + " finding(s)";
  }
  out += " (" + std::to_string(windows_merged) + " window(s), " +
         std::to_string(accesses_recorded) + " access(es), " +
         std::to_string(objects_tracked) + " registered object(s)";
  out += finalized ? ", finalized)\n" : ")\n";
  for (int c = 0; c < kNumCategories; ++c) {
    if (counts[c] == 0) continue;
    out += "  " + std::string(categoryName(static_cast<Category>(c))) + ": " +
           std::to_string(counts[c]) + "\n";
  }
  for (const Finding& f : findings) {
    out += "  [" + sim::formatTime(f.time) + "] " +
           categoryName(f.category) + " " + f.detail + "\n";
  }
  if (dropped_findings > 0) {
    out += "  (+" + std::to_string(dropped_findings) +
           " finding(s) beyond the retention cap; counters are exact)\n";
  }
  return out;
}

RaceDetector::RaceDetector(sim::Engine& engine, sim::Trace* trace,
                           std::size_t max_findings)
    : engine_(engine),
      trace_(trace),
      max_findings_(max_findings),
      tables_(kMaxTrackedShards) {
  engine_.setShardObserver(this);
}

RaceDetector::~RaceDetector() {
  if (engine_.shardObserver() == this) engine_.setShardObserver(nullptr);
}

void RaceDetector::registerObject(ObjectKind kind, std::uint64_t id,
                                  sim::ShardId owner) {
  registry_[{static_cast<std::uint8_t>(kind), id}] = OwnerInfo{owner, false};
}

void RaceDetector::registerShared(ObjectKind kind, std::uint64_t id) {
  registry_[{static_cast<std::uint8_t>(kind), id}] = OwnerInfo{0, true};
}

void RaceDetector::record(ObjectKind kind, std::uint64_t id, FieldGroup group,
                          Access access, const char* site) {
  const std::uint64_t event_key = engine_.currentEventKey();
  if (event_key == 0) return;  // setup/teardown: single-threaded, no shards
  const sim::ShardId shard = engine_.currentShard();
  if (static_cast<std::size_t>(shard) >= kMaxTrackedShards) {
    sim::simFail("RaceDetector: shard " + std::to_string(shard) +
                 " beyond kMaxTrackedShards");
  }
  ShardTable& table = tables_[shard];
  table.touched = true;
  AccessEntry& entry = table.acc[ObjectKey{kind, group, id}];
  const Provenance prov{event_key, engine_.now(), site};
  if (access == Access::kWrite) {
    if (entry.writes++ == 0) entry.first_write = prov;
  } else {
    if (entry.reads++ == 0) entry.first_read = prov;
  }
}

void RaceDetector::onSerialCrossShard(sim::ShardId target, const char* what) {
  record(ObjectKind::kShardQueue, target, FieldGroup::kQueue, Access::kWrite,
         what);
}

void RaceDetector::onBarrier(sim::SimTime boundary) { mergeTables(boundary); }

void RaceDetector::onSliceBoundary(sim::SimTime boundary) {
  // Inside a parallel window this thread is a worker and other workers'
  // tables are live — the engine barrier (onBarrier) merges on the same
  // slice grid instead, so serial and parallel runs partition accesses into
  // identical windows.
  if (sim::detail::currentWorkerIndex() >= 0) return;
  mergeTables(boundary);
}

const RaceReport& RaceDetector::finalize(sim::SimTime now) {
  if (report_.finalized) return report_;
  mergeTables(now);
  report_.finalized = true;
  return report_;
}

RaceDetector::OwnerInfo RaceDetector::ownerOf(const ObjectKey& key) const {
  // A shard queue is owned by its shard; stripes are shared by design even
  // when nobody registered them.  Everything else defaults to shard 0 (the
  // serial world's only shard) unless registered.
  if (key.kind == ObjectKind::kShardQueue) {
    return OwnerInfo{static_cast<sim::ShardId>(key.id), false};
  }
  const auto it =
      registry_.find({static_cast<std::uint8_t>(key.kind), key.id});
  if (it != registry_.end()) return it->second;
  if (key.kind == ObjectKind::kPoolStripe ||
      key.kind == ObjectKind::kStatStripe) {
    return OwnerInfo{0, true};
  }
  return OwnerInfo{0, false};
}

std::string RaceDetector::describe(const ObjectKey& key) {
  std::string out = objectKindName(key.kind);
  out += ' ';
  if (key.kind == ObjectKind::kRankTable) {
    out += "j" + std::to_string(key.id >> 16) + "/r" +
           std::to_string(key.id & 0xFFFF);
  } else {
    out += std::to_string(key.id);
  }
  out += " group ";
  out += fieldGroupName(key.group);
  return out;
}

std::string RaceDetector::describeAccess(sim::ShardId shard,
                                         const Provenance& p) {
  char key_hex[32];
  std::snprintf(key_hex, sizeof(key_hex), "0x%" PRIx64, p.event_key);
  return "shard " + std::to_string(shard) + " (key=" + key_hex +
         ", t=" + sim::formatTime(p.time) +
         ", site=" + (p.site != nullptr ? p.site : "?") + ")";
}

void RaceDetector::addFinding(Category cat, sim::SimTime boundary,
                              const ObjectKey& key, std::string detail) {
  ++report_.counts[static_cast<int>(cat)];
  if (trace_ != nullptr) {
    int node = -1;
    switch (key.kind) {
      case ObjectKind::kNodeState:
      case ObjectKind::kCoreVars:
      case ObjectKind::kCoreEvents:
      case ObjectKind::kFabricEndpoint:
        node = static_cast<int>(key.id);
        break;
      default:
        break;
    }
    trace_->record(boundary, sim::TraceCategory::kRace, node,
                   std::string(categoryName(cat)) + ": " + detail);
  }
  if (report_.findings.size() >= max_findings_) {
    ++report_.dropped_findings;
    return;
  }
  report_.findings.push_back(
      Finding{cat, boundary, key.kind, key.id, key.group, std::move(detail)});
}

void RaceDetector::mergeTables(sim::SimTime boundary) {
  ++report_.windows_merged;
  report_.objects_tracked = registry_.size();

  // Gather every touched (object, group) with its touching shards, in
  // canonical order: ObjectKey ascending (std::map), shards ascending (the
  // table scan below runs in shard order).  This order — not any worker
  // timing — decides finding order, which is what makes the report
  // identical at every thread count.
  struct Toucher {
    sim::ShardId shard;
    const AccessEntry* entry;
  };
  std::map<ObjectKey, std::vector<Toucher>> gathered;
  for (std::size_t s = 0; s < tables_.size(); ++s) {
    ShardTable& table = tables_[s];
    if (!table.touched) continue;
    for (const auto& [key, entry] : table.acc) {
      report_.accesses_recorded += entry.reads + entry.writes;
      gathered[key].push_back(Toucher{static_cast<sim::ShardId>(s), &entry});
    }
  }

  for (const auto& [key, touchers] : gathered) {
    const OwnerInfo info = ownerOf(key);
    if (info.shared) continue;  // striped by design: never a finding

    std::size_t writer_count = 0;
    for (const Toucher& t : touchers) {
      if (t.entry->writes > 0) ++writer_count;
    }

    if (touchers.size() >= 2 && writer_count >= 1) {
      if (writer_count >= 2) {
        // First two writer shards carry the provenance; more writers are
        // summarized (each pair would restate the same conflict).
        const Toucher* a = nullptr;
        const Toucher* b = nullptr;
        for (const Toucher& t : touchers) {
          if (t.entry->writes == 0) continue;
          if (a == nullptr) {
            a = &t;
          } else if (b == nullptr) {
            b = &t;
            break;
          }
        }
        std::string detail = "on " + describe(key) + ": " +
                             describeAccess(a->shard, a->entry->first_write) +
                             " vs " +
                             describeAccess(b->shard, b->entry->first_write);
        if (writer_count > 2) {
          detail +=
              " (+" + std::to_string(writer_count - 2) + " more writer(s))";
        }
        addFinding(Category::kWriteWrite, boundary, key, std::move(detail));
      } else {
        const Toucher* writer = nullptr;
        const Toucher* reader = nullptr;
        for (const Toucher& t : touchers) {
          if (t.entry->writes > 0) {
            writer = &t;
          } else if (reader == nullptr) {
            reader = &t;
          }
        }
        std::string detail =
            "on " + describe(key) + ": write by " +
            describeAccess(writer->shard, writer->entry->first_write) +
            " vs read by " +
            describeAccess(reader->shard, reader->entry->first_read);
        if (touchers.size() > 2) {
          detail +=
              " (+" + std::to_string(touchers.size() - 2) + " more reader(s))";
        }
        addFinding(Category::kReadWrite, boundary, key, std::move(detail));
      }
    } else if (touchers.size() == 1) {
      const Toucher& t = touchers.front();
      if (t.entry->writes > 0 && t.shard != info.owner) {
        addFinding(Category::kOwnershipViolation, boundary, key,
                   "on " + describe(key) + " owned by shard " +
                       std::to_string(info.owner) + ": write by " +
                       describeAccess(t.shard, t.entry->first_write));
      }
    }
  }

  for (auto& table : tables_) {
    if (table.touched) {
      table.acc.clear();
      table.touched = false;
    }
  }
}

}  // namespace bcs::race
