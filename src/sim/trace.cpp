#include "sim/trace.hpp"

#include <cstdio>
#include <utility>

#include "sim/engine.hpp"

namespace bcs::sim {

const char* traceCategoryName(TraceCategory c) {
  switch (c) {
    case TraceCategory::kEngine: return "ENGINE";
    case TraceCategory::kCpu: return "CPU";
    case TraceCategory::kNet: return "NET";
    case TraceCategory::kBcsCore: return "BCSCORE";
    case TraceCategory::kStrobe: return "STROBE";
    case TraceCategory::kDescriptor: return "DESC";
    case TraceCategory::kDma: return "DMA";
    case TraceCategory::kCollective: return "COLL";
    case TraceCategory::kStorm: return "STORM";
    case TraceCategory::kFault: return "FAULT";
    case TraceCategory::kFailover: return "FAILOVER";
    case TraceCategory::kVerify: return "VERIFY";
    case TraceCategory::kApp: return "APP";
    case TraceCategory::kRace: return "RACE";
    case TraceCategory::kEpochRace: return "EPOCHRACE";
  }
  return "?";
}

void Trace::enable(bool echo_to_stderr) {
  enabled_ = true;
  echo_ = echo_to_stderr;
}

void Trace::record(SimTime t, TraceCategory cat, int node, std::string msg) {
  if (!enabled_) return;
  if (detail::deferTraceRecord(this, &Trace::commitThunk, t,
                               static_cast<std::uint8_t>(cat), node,
                               std::move(msg))) {
    return;  // inside a parallel window; committed at the next barrier
  }
  append(t, cat, node, std::move(msg));
}

void Trace::commitThunk(void* trace, SimTime t, std::uint8_t category,
                        int node, std::string&& msg) {
  static_cast<Trace*>(trace)->append(t, static_cast<TraceCategory>(category),
                                     node, std::move(msg));
}

void Trace::append(SimTime t, TraceCategory cat, int node, std::string&& msg) {
  if (echo_) {
    std::fprintf(stderr, "[%14s] %-8s n%-3d %s\n", formatTime(t).c_str(),
                 traceCategoryName(cat), node, msg.c_str());
  }
  records_.push_back(TraceRecord{t, cat, node, std::move(msg)});
}

std::size_t Trace::count(
    const std::function<bool(const TraceRecord&)>& pred) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (pred(r)) ++n;
  }
  return n;
}

std::string Trace::dump() const {
  std::string out;
  for (const auto& r : records_) {
    out += "[" + formatTime(r.time) + "] ";
    out += traceCategoryName(r.category);
    out += " n" + std::to_string(r.node) + ": " + r.message + "\n";
  }
  return out;
}

}  // namespace bcs::sim
