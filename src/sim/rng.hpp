#pragma once

// Deterministic pseudo-random number generation for the simulator.
//
// We use xoshiro256** (Blackman & Vigna) seeded through splitmix64, rather
// than std::mt19937, because its stream is identical across standard library
// implementations — reproducibility of experiment output is a hard
// requirement for this repository (EXPERIMENTS.md records exact numbers).

#include <cstdint>

namespace bcs::snapshot {
class StateIO;  // snapshot/state_io.hpp: serializes the 4-word state
}

namespace bcs::sim {

/// splitmix64 step; used to expand a single 64-bit seed into a full state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDBC5C0DEULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) word = splitmix64(seed);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for the small ranges used in workload generation.
    return (*this)() % n;
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed value (Box-Muller).
  double normal(double mean, double stddev);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};

  /// Snapshot serializer (src/snapshot): the whole generator state is
  /// state_[4] — normal() draws both Box-Muller values per call, so there
  /// is no hidden cached spare to capture.
  friend class bcs::snapshot::StateIO;
};

/// Derives an independent child seed from (parent seed, stream index).
/// Used to give every node / process its own deterministic stream.
constexpr std::uint64_t deriveSeed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t s = seed ^ (0xA5A5A5A5DEADBEEFULL + stream * 0x9E3779B97F4A7C15ULL);
  return splitmix64(s);
}

/// Derives the seed for a shard-local RNG stream in the parallel engine
/// mode (Engine::run(ParallelPolicy)).  A shard's draws must come only from
/// its own stream — a generator shared across shards would be drawn from in
/// nondeterministic interleavings by concurrent workers.  The offset keeps
/// shard streams disjoint from the per-node / per-process streams that use
/// plain deriveSeed with small indices.
constexpr std::uint64_t deriveShardSeed(std::uint64_t seed,
                                        std::uint16_t shard) {
  return deriveSeed(seed, 0x5AA5000000000000ULL + shard);
}

}  // namespace bcs::sim
