#pragma once

// The discrete-event engine at the heart of bcssim.
//
// Design notes
// ------------
//  * Single logical thread of control.  Event callbacks run to completion;
//    when a callback resumes a fiber (see fiber.hpp) the engine thread blocks
//    until that fiber yields again, so at any instant exactly one piece of
//    model code is running.  This gives sequential consistency and bitwise
//    reproducibility on any host, including the 1-core build machines.
//  * Ties are broken by insertion order (a monotonically increasing sequence
//    number), never by pointer values, so runs are deterministic.
//  * The pending set is a two-level calendar queue: near-future events live
//    in a wheel of fixed-width buckets indexed by (when >> kBucketShift);
//    events beyond the wheel horizon go to an overflow heap and are compared
//    against the wheel cursor on every pop.  Buckets are plain vectors:
//    enqueue is push_back, and the bucket is sorted by (when, seq) exactly
//    once, when the cursor first reaches it, after which draining is
//    pop_back.  Late arrivals into the already-sorted current bucket (a
//    callback scheduling within the same ~2 us window) use a sorted insert.
//  * Event nodes are pooled and reused; the callback lives in a
//    small-buffer-optimized slot inside the node, so the common
//    at/after/cancel/run cycle performs zero heap allocations for callables
//    up to EventCallback::kInlineBytes.
//  * Cancellation is O(1): an EventId carries the node's generation, cancel
//    disarms the node (and frees its callback) in place, and the disarmed
//    entry is dropped lazily when the queue walk reaches it (see
//    droppedTombstones()).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace bcs::sim {

/// Handle to a scheduled event; usable to cancel it before it fires.  The
/// generation check makes stale handles (already fired, cancelled, or whose
/// pooled node was reused) fail cancel() harmlessly.
struct EventId {
  std::uint32_t slot = 0;  ///< 1-based pool slot; 0 = never scheduled
  std::uint32_t gen = 0;
  bool valid() const { return slot != 0; }
};

/// Thrown when the simulation reaches a state it cannot make progress from
/// (e.g. every process blocked and no event pending) if the harness asked for
/// deadlock detection, or on internal invariant violations.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Reports a fatal simulation error.  Throws SimError where exceptions are
/// available; prints and aborts under -fno-exceptions, so the sim layer stays
/// usable in exception-free benchmark builds.
[[noreturn]] void simFail(const std::string& what);

/// Move-only type-erased callable with a small-buffer slot.  Callables up to
/// kInlineBytes (with alignment <= kInlineAlign) that are
/// nothrow-move-constructible are stored in place; anything larger falls back
/// to one heap allocation.  The slot is sized so a whole event node fits in
/// one 64-byte cache line.
class EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 40;
  static constexpr std::size_t kInlineAlign = 8;

  EventCallback() noexcept = default;
  EventCallback(EventCallback&& o) noexcept { moveFrom(o); }
  EventCallback& operator=(EventCallback&& o) noexcept {
    if (this != &o) {
      reset();
      moveFrom(o);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  template <typename Fn>
  void emplace(Fn&& fn) {
    using F = std::decay_t<Fn>;
    reset();
    if constexpr (sizeof(F) <= kInlineBytes && alignof(F) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<F>) {
      ::new (static_cast<void*>(storage_)) F(std::forward<Fn>(fn));
      vt_ = &kInlineVTable<F>;
    } else {
      heap_ = new F(std::forward<Fn>(fn));
      vt_ = &kHeapVTable<F>;
    }
  }

  explicit operator bool() const { return vt_ != nullptr; }

  void operator()() { vt_->invoke(object()); }

  /// Invokes the callable, then destroys it, through a single fused vtable
  /// entry (one indirect call instead of two on the per-event hot path).
  /// If the callable throws it is left intact; reset() then cleans it up.
  void invokeAndReset() {
    const VTable* vt = vt_;
    void* obj = object();
    vt->invoke_destroy(obj);
    vt_ = nullptr;
    heap_ = nullptr;
  }

  void reset() {
    if (!vt_) return;
    vt_->destroy(object());
    vt_ = nullptr;
    heap_ = nullptr;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*invoke_destroy)(void*);  ///< fused call-then-destroy (hot path)
    void (*destroy)(void*);
    /// Move-construct dst from src, then destroy src.  Null for heap-stored
    /// callables (moves just steal the pointer).
    void (*relocate)(void* dst, void* src);
  };

  template <typename F>
  static void invokeFn(void* p) {
    (*static_cast<F*>(p))();
  }
  template <typename F>
  static void invokeDestroyInline(void* p) {
    F* f = static_cast<F*>(p);
    (*f)();
    f->~F();
  }
  template <typename F>
  static void invokeDestroyHeap(void* p) {
    F* f = static_cast<F*>(p);
    (*f)();
    delete f;
  }
  template <typename F>
  static void destroyInline(void* p) {
    static_cast<F*>(p)->~F();
  }
  template <typename F>
  static void destroyHeap(void* p) {
    delete static_cast<F*>(p);
  }
  template <typename F>
  static void relocateFn(void* dst, void* src) {
    ::new (dst) F(std::move(*static_cast<F*>(src)));
    static_cast<F*>(src)->~F();
  }

  template <typename F>
  static constexpr VTable kInlineVTable{&invokeFn<F>, &invokeDestroyInline<F>,
                                        &destroyInline<F>, &relocateFn<F>};
  template <typename F>
  static constexpr VTable kHeapVTable{&invokeFn<F>, &invokeDestroyHeap<F>,
                                      &destroyHeap<F>, nullptr};

  void* object() {
    return vt_ && vt_->relocate ? static_cast<void*>(storage_) : heap_;
  }

  void moveFrom(EventCallback& o) noexcept {
    vt_ = o.vt_;
    if (!vt_) return;
    if (vt_->relocate) {
      vt_->relocate(storage_, o.storage_);
    } else {
      heap_ = o.heap_;
      o.heap_ = nullptr;
    }
    o.vt_ = nullptr;
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineBytes];
  void* heap_ = nullptr;
  const VTable* vt_ = nullptr;
};

/// The event engine.  Owns the clock and the pending-event queue.
class Engine {
 public:
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (must be >= now()).
  template <typename Fn>
  EventId at(SimTime when, Fn&& fn) {
    if (when < now_) failSchedulePast(when);
    const std::uint32_t slot = acquireNode();
    Node& n = node(slot);
    n.armed = true;
    n.fn.emplace(std::forward<Fn>(fn));
    ++live_;
    enqueue(QEntry{when, next_seq_++, slot});
    return EventId{slot + 1, n.gen};
  }

  /// Schedules `fn` to run `delay` nanoseconds from now (delay >= 0).
  template <typename Fn>
  EventId after(Duration delay, Fn&& fn) {
    if (delay < 0) failNegativeDelay();
    return at(now_ + delay, std::forward<Fn>(fn));
  }

  /// Cancels a pending event in O(1).  Returns true if the event was still
  /// pending; the queued entry becomes a tombstone dropped lazily.
  bool cancel(EventId id);

  /// Runs until the queue drains or `until` is reached (whichever first).
  /// Returns the time of the last processed event.
  SimTime run(SimTime until = INT64_MAX);

  /// Runs exactly one event if available.  Returns false if the queue is
  /// empty.  Useful for fine-grained unit tests of the engine itself.
  bool step();

  /// Number of live (scheduled, not cancelled, not yet fired) events.
  std::size_t pendingEvents() const { return live_; }

  /// Total number of events executed since construction.
  std::uint64_t executedEvents() const { return executed_; }

  /// Cancelled entries physically reclaimed from the queue so far; together
  /// with cancelledEvents() this makes cancellation overhead observable.
  std::uint64_t droppedTombstones() const { return dropped_tombstones_; }

  /// Total successful cancel() calls since construction.
  std::uint64_t cancelledEvents() const { return cancelled_; }

  /// Zeroes the cumulative counters (executed / cancelled / reclaimed
  /// tombstones) for interval measurements.  The live-event count is queue
  /// occupancy, not a statistic, and is left alone.
  void resetStats() {
    executed_ = 0;
    cancelled_ = 0;
    dropped_tombstones_ = 0;
  }

 private:
  /// Pooled event node.  The ordering key (when, seq) lives only in the
  /// queue entry; the node carries just the callback and handle state, so a
  /// node is exactly one cache line.  Nodes live in fixed-size chunks whose
  /// addresses never move, which lets run() invoke a callback in place (no
  /// per-event move-out) while the callback freely schedules more events.
  struct Node {
    EventCallback fn;
    std::uint32_t gen = 0;
    bool armed = false;
  };
  static_assert(sizeof(Node) <= 64, "event node should stay one cache line");

  static constexpr std::uint32_t kChunkShift = 10;  // 1024 nodes per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  // 2^11 ns (~2 us) buckets; 2048 of them give an ~4.2 ms horizon, over 8
  // default time slices.  Anything further lands in the overflow heap.
  // Narrow buckets keep per-bucket sorts small (the sort is the dominant
  // drain cost); the horizon only has to cover the densely-populated near
  // future, since far-future timers are cheap in the overflow heap.
  static constexpr int kBucketShift = 11;
  static constexpr std::uint64_t kNumBuckets = 2048;
  static constexpr std::uint64_t kBucketMask = kNumBuckets - 1;

  /// Queue entry: the ordering key is carried alongside the slot index so
  /// sorting and heap sifts stay inside the (hot, contiguous) queue arrays
  /// and never chase into the node pool.
  struct QEntry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    bool firesBefore(const QEntry& o) const {
      return when != o.when ? when < o.when : seq < o.seq;
    }
  };

  [[noreturn]] void failSchedulePast(SimTime when) const;
  [[noreturn]] static void failNegativeDelay();

  Node& node(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & kChunkMask];
  }
  std::uint32_t acquireNode();
  void releaseNode(std::uint32_t slot);
  void enqueue(QEntry entry);
  /// Locates the earliest live event without removing it, dropping any
  /// tombstones in the way.  Returns false when no live event remains.
  bool peekNext(QEntry& entry, bool& from_overflow);
  void extract(bool from_overflow);
  void fire(const QEntry& entry);
  static void heapPush(std::vector<QEntry>& heap, QEntry entry);
  static void heapPop(std::vector<QEntry>& heap);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t dropped_tombstones_ = 0;
  std::size_t live_ = 0;

  std::vector<std::unique_ptr<Node[]>> chunks_;  ///< stable pooled nodes
  std::uint32_t node_count_ = 0;     ///< slots handed out so far
  std::vector<std::uint32_t> free_;  ///< reusable slots, LIFO

  std::uint64_t base_ = 0;  ///< absolute bucket index of the wheel cursor
  /// Absolute index of the bucket sorted for draining (only ever the one at
  /// the cursor); UINT64_MAX when none.  base_ is monotone, so a stale value
  /// can never collide with a future bucket index.
  std::uint64_t sorted_bucket_ = UINT64_MAX;
  std::size_t wheel_count_ = 0;  ///< entries in the wheel (incl. tombstones)
  /// Per-bucket entry lists; the bucket at sorted_bucket_ is sorted
  /// descending by (when, seq) so back() is the earliest entry.
  std::vector<std::vector<QEntry>> buckets_;
  std::vector<QEntry> overflow_;  ///< beyond-horizon min-heap
};

}  // namespace bcs::sim
