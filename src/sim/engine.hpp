#pragma once

// The discrete-event engine at the heart of bcssim.
//
// Design notes
// ------------
//  * Single logical thread of control.  Event callbacks run to completion;
//    when a callback resumes a fiber (see fiber.hpp) the engine thread blocks
//    until that fiber yields again, so at any instant exactly one piece of
//    model code is running.  This gives sequential consistency and bitwise
//    reproducibility on any host, including the 1-core build machines.
//  * Ties are broken by insertion order (a monotonically increasing sequence
//    number), never by pointer values, so runs are deterministic.
//  * Cancellation is O(log n) amortized: cancelled entries stay in the heap
//    and are skipped when popped.

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace bcs::sim {

/// Handle to a scheduled event; usable to cancel it before it fires.
struct EventId {
  std::uint64_t seq = 0;
  bool valid() const { return seq != 0; }
};

/// Thrown when the simulation reaches a state it cannot make progress from
/// (e.g. every process blocked and no event pending) if the harness asked for
/// deadlock detection, or on internal invariant violations.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// The event engine.  Owns the clock and the pending-event queue.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (must be >= now()).
  EventId at(SimTime when, std::function<void()> fn);

  /// Schedules `fn` to run `delay` nanoseconds from now (delay >= 0).
  EventId after(Duration delay, std::function<void()> fn);

  /// Cancels a pending event.  Returns true if the event was still pending.
  bool cancel(EventId id);

  /// Runs until the queue drains or `until` is reached (whichever first).
  /// Returns the time of the last processed event.
  SimTime run(SimTime until = INT64_MAX);

  /// Runs exactly one event if available.  Returns false if the queue is
  /// empty.  Useful for fine-grained unit tests of the engine itself.
  bool step();

  /// Number of events currently pending (including not-yet-skipped
  /// cancelled entries' live complement).
  std::size_t pendingEvents() const { return live_; }

  /// Total number of events executed since construction.
  std::uint64_t executedEvents() const { return executed_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    // Min-heap: earliest time first; FIFO among equal times.
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  // seq -> callback; erased on cancel, so heap entries with no callback are
  // tombstones.
  std::unordered_map<std::uint64_t, std::function<void()>> callbacks_;
};

}  // namespace bcs::sim
