#pragma once

// The discrete-event engine at the heart of bcssim.
//
// Design notes
// ------------
//  * Single logical thread of control.  Event callbacks run to completion;
//    when a callback resumes a fiber (see fiber.hpp) the engine thread blocks
//    until that fiber yields again, so at any instant exactly one piece of
//    model code is running.  This gives sequential consistency and bitwise
//    reproducibility on any host, including the 1-core build machines.
//  * Ties are broken by insertion order (a monotonically increasing sequence
//    number), never by pointer values, so runs are deterministic.
//  * The pending set is a two-level calendar queue: near-future events live
//    in a wheel of fixed-width buckets indexed by (when >> kBucketShift);
//    events beyond the wheel horizon go to an overflow heap and are compared
//    against the wheel cursor on every pop.  Buckets are plain vectors:
//    enqueue is push_back, and the bucket is sorted by (when, key) exactly
//    once, when the cursor first reaches it, after which draining is
//    pop_back.  Late arrivals into the already-sorted current bucket (a
//    callback scheduling within the same ~2 us window) use a sorted insert.
//  * Event nodes are pooled and reused; the callback lives in a
//    small-buffer-optimized slot inside the node, so the common
//    at/after/cancel/run cycle performs zero heap allocations for callables
//    up to EventCallback::kInlineBytes.
//  * Cancellation is O(1): an EventId carries the node's generation, cancel
//    disarms the node (and frees its callback) in place, and the disarmed
//    entry is dropped lazily when the queue walk reaches it (see
//    droppedTombstones()).
//
// Parallel slice execution
// ------------------------
//  Every event belongs to a shard (default: shard 0, inherited from the
//  event that scheduled it).  The canonical execution order is
//
//      (when, shard, band, seq)
//
//  packed into a single 64-bit key: 16 bits of shard, one "handoff band"
//  bit, and a 47-bit per-shard sequence number.  The classic run() pops in
//  exactly that order; run(ParallelPolicy) drains each shard on a worker
//  pool up to the next global barrier (a slice/microphase boundary) and
//  merges cross-shard effects at the barrier in the same order — so traces,
//  stats and RNG streams are byte-identical between the two modes.  Shards
//  may only interact through handoff(), which targets a time at or past the
//  next barrier (the conservative-window lookahead the BCS time slice makes
//  explicit).  The serial path is the reference implementation; the
//  parallel mode is opt-in per run() call.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace bcs::snapshot {
class StateIO;  // snapshot/state_io.hpp: serializes engine counters
}

namespace bcs::sim {

/// Shard index: the unit of parallelism.  Shard 0 is the default home of
/// all events (and of the whole BCS control plane); workloads opt into
/// parallelism by placing per-node event chains on per-node shards.
using ShardId = std::uint16_t;

/// Opt-in parallel execution mode for Engine::run.  Barriers default to the
/// multiples of `window` (the BCS time-slice grid); `next_barrier`, when
/// set, overrides that with an arbitrary monotone schedule (e.g. microphase
/// boundaries from the strobe program) and must return a time strictly
/// greater than its argument.
struct ParallelPolicy {
  int threads = 2;
  Duration window = usec(500);

  /// Barrier coarsening on the default grid: merge points land on multiples
  /// of `window * windows_per_barrier`.  Legal only when the workload's
  /// cross-shard lookahead covers the coarser grid (Engine::handoff targets
  /// must land at or past the *next barrier*, which is now further out);
  /// violations fail loudly, so widening this is always safe to try.
  /// Ignored when `next_barrier` is set.
  int windows_per_barrier = 1;

  /// Caps the worker-thread count at the host's hardware concurrency (and
  /// at the shard count — surplus workers own no shards).  Results are
  /// byte-identical either way; oversubscribing a compute-bound drain past
  /// the physical cores only adds context-switch thrash, so production
  /// runs leave this on.  The conformance/stress tests turn it off to
  /// exercise real thread pools regardless of the host.
  bool clamp_to_hardware = true;

  std::function<SimTime(SimTime)> next_barrier;
};

namespace detail {

struct ExecContext;  // per-worker window state; defined in engine.cpp

/// Commit thunk for a trace record deferred during a parallel window (the
/// engine cannot name sim::Trace: the -fno-exceptions bench smoke compiles
/// engine.cpp standalone, so the coupling is a function pointer supplied by
/// trace.cpp).
using TraceCommitFn = void (*)(void* trace, SimTime t, std::uint8_t category,
                               int node, std::string&& message);

/// Defers a trace record into the executing worker's buffer.  Returns false
/// when no parallel window is active on this thread (the caller appends
/// directly, as in serial mode).
bool deferTraceRecord(void* trace, TraceCommitFn commit, SimTime t,
                      std::uint8_t category, int node, std::string&& message);

/// Index of the worker executing the current parallel window on this
/// thread, or -1 outside a window.  Lets shared observers (e.g. Fabric
/// statistics) stripe their state per worker instead of contending on one
/// cache line.
int currentWorkerIndex();

/// Exec-context baton for fiber switches: a fiber body runs on its own OS
/// thread, so the waker snapshots its context (currentExecContext) and the
/// fiber adopts it after every wake (adoptExecContext).  See sim/fiber.cpp.
void* currentExecContext();
void adoptExecContext(void* ctx);

}  // namespace detail

/// Handle to a scheduled event; usable to cancel it before it fires.  The
/// generation check makes stale handles (already fired, cancelled, or whose
/// pooled node was reused) fail cancel() harmlessly.
struct EventId {
  std::uint32_t slot = 0;  ///< 1-based pool slot; 0 = never scheduled
  std::uint32_t gen = 0;
  bool valid() const { return slot != 0; }
};

/// Thrown when the simulation reaches a state it cannot make progress from
/// (e.g. every process blocked and no event pending) if the harness asked for
/// deadlock detection, or on internal invariant violations.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Reports a fatal simulation error.  Throws SimError where exceptions are
/// available; prints and aborts under -fno-exceptions, so the sim layer stays
/// usable in exception-free benchmark builds.
[[noreturn]] void simFail(const std::string& what);

/// Move-only type-erased callable with a small-buffer slot.  Callables up to
/// kInlineBytes (with alignment <= kInlineAlign) that are
/// nothrow-move-constructible are stored in place; anything larger falls back
/// to one heap allocation.  The slot is sized so a whole event node fits in
/// one 64-byte cache line.
class EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 40;
  static constexpr std::size_t kInlineAlign = 8;

  EventCallback() noexcept = default;
  EventCallback(EventCallback&& o) noexcept { moveFrom(o); }
  EventCallback& operator=(EventCallback&& o) noexcept {
    if (this != &o) {
      reset();
      moveFrom(o);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  template <typename Fn>
  void emplace(Fn&& fn) {
    using F = std::decay_t<Fn>;
    reset();
    if constexpr (sizeof(F) <= kInlineBytes && alignof(F) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<F>) {
      ::new (static_cast<void*>(storage_)) F(std::forward<Fn>(fn));
      vt_ = &kInlineVTable<F>;
    } else {
      heap_ = new F(std::forward<Fn>(fn));
      vt_ = &kHeapVTable<F>;
    }
  }

  explicit operator bool() const { return vt_ != nullptr; }

  void operator()() { vt_->invoke(object()); }

  /// Invokes the callable, then destroys it, through a single fused vtable
  /// entry (one indirect call instead of two on the per-event hot path).
  /// If the callable throws it is left intact; reset() then cleans it up.
  void invokeAndReset() {
    const VTable* vt = vt_;
    void* obj = object();
    vt->invoke_destroy(obj);
    vt_ = nullptr;
    heap_ = nullptr;
  }

  void reset() {
    if (!vt_) return;
    vt_->destroy(object());
    vt_ = nullptr;
    heap_ = nullptr;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*invoke_destroy)(void*);  ///< fused call-then-destroy (hot path)
    void (*destroy)(void*);
    /// Move-construct dst from src, then destroy src.  Null for heap-stored
    /// callables (moves just steal the pointer).
    void (*relocate)(void* dst, void* src);
  };

  template <typename F>
  static void invokeFn(void* p) {
    (*static_cast<F*>(p))();
  }
  template <typename F>
  static void invokeDestroyInline(void* p) {
    F* f = static_cast<F*>(p);
    (*f)();
    f->~F();
  }
  template <typename F>
  static void invokeDestroyHeap(void* p) {
    F* f = static_cast<F*>(p);
    (*f)();
    delete f;
  }
  template <typename F>
  static void destroyInline(void* p) {
    static_cast<F*>(p)->~F();
  }
  template <typename F>
  static void destroyHeap(void* p) {
    delete static_cast<F*>(p);
  }
  template <typename F>
  static void relocateFn(void* dst, void* src) {
    ::new (dst) F(std::move(*static_cast<F*>(src)));
    static_cast<F*>(src)->~F();
  }

  template <typename F>
  static constexpr VTable kInlineVTable{&invokeFn<F>, &invokeDestroyInline<F>,
                                        &destroyInline<F>, &relocateFn<F>};
  template <typename F>
  static constexpr VTable kHeapVTable{&invokeFn<F>, &invokeDestroyHeap<F>,
                                      &destroyHeap<F>, nullptr};

  void* object() {
    return vt_ && vt_->relocate ? static_cast<void*>(storage_) : heap_;
  }

  void moveFrom(EventCallback& o) noexcept {
    vt_ = o.vt_;
    if (!vt_) return;
    if (vt_->relocate) {
      vt_->relocate(storage_, o.storage_);
    } else {
      heap_ = o.heap_;
      o.heap_ = nullptr;
    }
    o.vt_ = nullptr;
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineBytes];
  void* heap_ = nullptr;
  const VTable* vt_ = nullptr;
};

/// Pure observer of shard-contract-relevant execution points, attached via
/// Engine::setShardObserver (the shard-ownership race detector in src/race
/// is the one implementation).  The engine guarantees:
///   * onSerialCrossShard fires only in *serial* mode, when an executing
///     event schedules onto or cancels an event of another shard — the
///     operations the parallel mode rejects loudly but the serial engine
///     has always allowed silently;
///   * onBarrier fires on the coordinating thread after a parallel window
///     merge, with every worker quiesced and all deferred effects
///     committed — the one point where cross-worker state may be read.
/// Observers must not schedule, cancel or otherwise mutate engine state.
class ShardAccessObserver {
 public:
  virtual ~ShardAccessObserver() = default;
  /// `target` is the foreign shard; `what` a static call-site label
  /// ("Engine::atOn" / "Engine::cancel").
  virtual void onSerialCrossShard(ShardId target, const char* what) = 0;
  /// `boundary` is the merged window's end time (the barrier grid point).
  virtual void onBarrier(SimTime boundary) = 0;
};

/// The event engine.  Owns the clock and the pending-event queue.
class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.  Inside a parallel window this is the firing
  /// time of the event executing on the calling worker.
  SimTime now() const { return par_active_ ? nowParallel() : now_; }

  /// Schedules `fn` to run at absolute time `when` (must be >= now()) on
  /// the current shard: the shard of the executing event, or shard 0
  /// outside event context.  All pre-existing code therefore stays on
  /// shard 0 with behaviour identical to the pre-shard engine.
  template <typename Fn>
  EventId at(SimTime when, Fn&& fn) {
    const Prep p = beginSchedule(when);
    Node& n = node(p.slot);
    n.armed = true;
    n.shard = p.shard;
    n.fn.emplace(std::forward<Fn>(fn));
    return finishSchedule(p, when);
  }

  /// Schedules `fn` to run `delay` nanoseconds from now (delay >= 0).
  template <typename Fn>
  EventId after(Duration delay, Fn&& fn) {
    if (delay < 0) failNegativeDelay();
    return at(now() + delay, std::forward<Fn>(fn));
  }

  /// Schedules onto an explicit shard.  Outside a parallel window any shard
  /// is valid (setup-time placement of per-node event chains); inside a
  /// window it must name the executing shard — cross-shard scheduling goes
  /// through handoff().
  template <typename Fn>
  EventId atOn(ShardId shard, SimTime when, Fn&& fn) {
    const Prep p = beginScheduleOn(shard, when);
    Node& n = node(p.slot);
    n.armed = true;
    n.shard = p.shard;
    n.fn.emplace(std::forward<Fn>(fn));
    return finishSchedule(p, when);
  }

  /// Cross-shard scheduling.  During a parallel window the event is staged
  /// and applied at the next barrier, so `when` must be at or past that
  /// barrier (the slice-synchronous lookahead contract; violations fail
  /// loudly).  In serial mode it enqueues immediately with the same
  /// ordering key, which is what keeps the two modes byte-identical:
  /// handoffs order after all shard-native events at equal (when, shard)
  /// in both modes.  Handoffs are not cancellable (no EventId).
  template <typename Fn>
  void handoff(ShardId shard, SimTime when, Fn&& fn) {
    EventCallback cb;
    cb.emplace(std::forward<Fn>(fn));
    handoffImpl(shard, when, std::move(cb));
  }

  /// Cancels a pending event in O(1).  Returns true if the event was still
  /// pending; the queued entry becomes a tombstone dropped lazily.  During
  /// a parallel window only same-shard events may be cancelled.
  bool cancel(EventId id);

  /// Runs until the queue drains or `until` is reached (whichever first).
  /// Returns the time of the last processed event.
  SimTime run(SimTime until = INT64_MAX);

  /// Runs the same simulation on a worker pool: per-shard queues drain
  /// concurrently up to each global barrier, then cross-shard effects merge
  /// in canonical (when, shard, band, seq) order.  Byte-identical to the
  /// serial run() for workloads honouring the shard contract (shards
  /// interact only via handoff()).  The calling thread doubles as worker 0,
  /// so fibers (all shard 0) always execute on the caller's thread.
  SimTime run(const ParallelPolicy& policy, SimTime until = INT64_MAX);

  /// Runs exactly one event if available.  Returns false if the queue is
  /// empty.  Useful for fine-grained unit tests of the engine itself.
  bool step();

  /// Number of live (scheduled, not cancelled, not yet fired) events.
  std::size_t pendingEvents() const { return live_; }

  /// Total number of events executed since construction.
  std::uint64_t executedEvents() const { return executed_; }

  /// Cancelled entries physically reclaimed from the queue so far; together
  /// with cancelledEvents() this makes cancellation overhead observable.
  /// Reclamation timing is a queue-internal detail and is the one counter
  /// *not* covered by the serial≡parallel identity guarantee.
  std::uint64_t droppedTombstones() const { return dropped_tombstones_; }

  /// Event-node pool slots handed out since construction (high-water mark,
  /// never shrinks).  A stable value across repeated runs of the same
  /// workload proves the per-worker arenas recycle nodes instead of
  /// growing the pool; see the arena tests in test_sim.cpp.
  std::uint32_t poolSlots() const {
    return node_count_.load(std::memory_order_relaxed);
  }

  /// Total successful cancel() calls since construction.
  std::uint64_t cancelledEvents() const { return cancelled_; }

  /// Zeroes the cumulative counters (executed / cancelled / reclaimed
  /// tombstones) for interval measurements.  The live-event count is queue
  /// occupancy, not a statistic, and is left alone.
  void resetStats() {
    executed_ = 0;
    cancelled_ = 0;
    dropped_tombstones_ = 0;
  }

  /// Attaches (or detaches, with nullptr) a shard-access observer.  At most
  /// one; the caller keeps ownership and must outlive the engine or detach
  /// first.
  void setShardObserver(ShardAccessObserver* obs) { observer_ = obs; }
  ShardAccessObserver* shardObserver() const { return observer_; }

  /// Shard of the event executing on the calling thread (serial or
  /// parallel); 0 outside event execution.
  ShardId currentShard() const;

  /// Canonical ordering key of the event executing on the calling thread —
  /// (shard | handoff band | seq), identical between serial and parallel
  /// runs of the same workload — or 0 outside event execution (per-shard
  /// sequences start at 1, so no real event has key 0).  This is the
  /// provenance anchor the race detector stamps on every recorded access.
  std::uint64_t currentEventKey() const;

 private:
  /// Pooled event node.  The ordering key (when, key) lives only in the
  /// queue entry; the node carries just the callback and handle state, so a
  /// node is exactly one cache line.  Nodes live in fixed-size chunks whose
  /// addresses never move, which lets run() invoke a callback in place (no
  /// per-event move-out) while the callback freely schedules more events.
  struct Node {
    EventCallback fn;
    std::uint32_t gen = 0;
    ShardId shard = 0;
    bool armed = false;
  };
  static_assert(sizeof(Node) <= 64, "event node should stay one cache line");

  static constexpr std::uint32_t kChunkShift = 10;  // 1024 nodes per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;
  /// Upper bound on pool chunks (4M nodes).  chunks_ reserves this up
  /// front so its data pointer never moves: workers index into it while
  /// another worker appends a chunk under chunk_mu_.
  static constexpr std::size_t kMaxChunks = 4096;

  // 2^11 ns (~2 us) buckets; 2048 of them give an ~4.2 ms horizon, over 8
  // default time slices.  Anything further lands in the overflow heap.
  // Narrow buckets keep per-bucket sorts small (the sort is the dominant
  // drain cost); the horizon only has to cover the densely-populated near
  // future, since far-future timers are cheap in the overflow heap.
  static constexpr int kBucketShift = 11;
  static constexpr std::uint64_t kNumBuckets = 2048;
  static constexpr std::uint64_t kBucketMask = kNumBuckets - 1;

  /// Queue entry: the ordering key is carried alongside the slot index so
  /// sorting and heap sifts stay inside the (hot, contiguous) queue arrays
  /// and never chase into the node pool.  `key` packs
  /// (shard, handoff band, per-shard seq) — see the header comment — so a
  /// single integer compare realizes the canonical total order; shard-0
  /// native events have key == seq, the pre-shard ordering.
  struct QEntry {
    SimTime when;
    std::uint64_t key;
    std::uint32_t slot;
    bool firesBefore(const QEntry& o) const {
      return when != o.when ? when < o.when : key < o.key;
    }
  };

  struct Prep {
    std::uint32_t slot;
    detail::ExecContext* ctx;  ///< non-null inside a parallel window
    ShardId shard;
  };

  [[noreturn]] void failSchedulePast(SimTime when, SimTime now) const;
  [[noreturn]] static void failNegativeDelay();

  Node& node(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & kChunkMask];
  }
  std::uint32_t acquireNode();
  std::uint32_t acquireNodeCtx(detail::ExecContext& ctx);
  void releaseNode(std::uint32_t slot);
  Prep beginSchedule(SimTime when);
  Prep beginScheduleOn(ShardId shard, SimTime when);
  EventId finishSchedule(const Prep& p, SimTime when);
  void handoffImpl(ShardId shard, SimTime when, EventCallback cb);
  SimTime nowParallel() const;
  void enqueue(QEntry entry);
  /// Locates the earliest live event without removing it, dropping any
  /// tombstones in the way.  Returns false when no live event remains.
  bool peekNext(QEntry& entry, bool& from_overflow);
  void extract(bool from_overflow);
  void fire(const QEntry& entry);
  static void heapPush(std::vector<QEntry>& heap, QEntry entry);
  static void heapPop(std::vector<QEntry>& heap);

  /// Per-shard pending set during a parallel run.  Split in two so the hot
  /// within-window drain never pays heap discipline: `near` holds the
  /// current window's events sorted descending by (when, key) — back() is
  /// the earliest, drain is pop_back, and intra-window arrivals use a
  /// sorted insert (the calendar queue's late-arrival move) — while `far`
  /// is a plain min-heap of everything at or past the window end (retry
  /// timers, next-slice work).  Each worker owns its shards' queues for the
  /// whole window; alignas(64) keeps neighbouring shards' headers off each
  /// other's cache lines (the vector headers were the false-sharing suspect
  /// in the flat shard_heaps_ layout this replaces).
  struct alignas(64) ShardQueue {
    std::vector<QEntry> near;  ///< current window, sorted desc, drain=pop_back
    std::vector<QEntry> far;   ///< min-heap of events at/past the window end
  };

  // ----- parallel driver (engine.cpp) -----
  void distributeToShards();
  void workerLoop(int w);
  void drainWindow(detail::ExecContext& ctx, SimTime window_end);
  void fireCtx(detail::ExecContext& ctx, const QEntry& entry);
  void mergeWindow();
  void finishParallel();

  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t dropped_tombstones_ = 0;
  std::size_t live_ = 0;

  /// Per-shard sequence counters for native (band-0) events, plus the
  /// global counter for handoff (band-1) events.  Within a shard both
  /// modes draw in the shard's execution order; handoffs draw in global
  /// canonical order (serially at call sites, at the barrier in parallel),
  /// which is the same sequence — the core of the identity argument.
  std::vector<std::uint64_t> shard_seq_;
  std::uint64_t handoff_seq_ = 1;
  ShardId cur_shard_ = 0;  ///< shard of the event firing in serial mode
  std::uint64_t cur_key_ = 0;  ///< key of the event firing in serial mode
  ShardAccessObserver* observer_ = nullptr;  ///< src/race detector, if any

  std::vector<std::unique_ptr<Node[]>> chunks_;  ///< stable pooled nodes
  /// Slots handed out so far.  Atomic only for the relaxed bounds check in
  /// cancel(): growth is single-threaded (serial) or under chunk_mu_.
  std::atomic<std::uint32_t> node_count_{0};
  std::vector<std::uint32_t> free_;  ///< reusable slots, LIFO
  std::mutex chunk_mu_;  ///< guards chunk growth during parallel windows

  std::uint64_t base_ = 0;  ///< absolute bucket index of the wheel cursor
  /// Absolute index of the bucket sorted for draining (only ever the one at
  /// the cursor); UINT64_MAX when none.  base_ is monotone, so a stale value
  /// can never collide with a future bucket index.
  std::uint64_t sorted_bucket_ = UINT64_MAX;
  std::size_t wheel_count_ = 0;  ///< entries in the wheel (incl. tombstones)
  /// Per-bucket entry lists; the bucket at sorted_bucket_ is sorted
  /// descending by (when, key) so back() is the earliest entry.
  std::vector<std::vector<QEntry>> buckets_;
  std::vector<QEntry> overflow_;  ///< beyond-horizon min-heap

  // ----- parallel-run state (live only inside run(ParallelPolicy)) -----
  bool par_active_ = false;
  std::vector<ShardQueue> shard_qs_;  ///< per-shard two-level queues
  std::vector<std::unique_ptr<detail::ExecContext>> ctxs_;
  std::vector<std::thread> workers_;

  // Lock-free window barrier.  The coordinator publishes window_end_, then
  // release-bumps window_gen_; workers acquire-load the generation (so the
  // window end is visible), drain, and release-add workers_done_, which the
  // coordinator acquire-polls before merging.  Each atomic sits on its own
  // cache line so the barrier handshake never false-shares with anything.
  // Waiters spin briefly then yield — on an oversubscribed host the yield
  // path dominates, which is exactly right.
  alignas(64) std::atomic<std::uint64_t> window_gen_{0};
  alignas(64) std::atomic<int> workers_done_{0};
  alignas(64) std::atomic<bool> par_quit_{false};
  SimTime window_end_ = 0;  ///< published via the window_gen_ release/acquire

  /// Snapshot serializer (src/snapshot): warps now_/base_ and restores the
  /// seq counters so a restored run draws identical event keys.  Pending
  /// events are never serialized — restore re-arms them logically.
  friend class bcs::snapshot::StateIO;
};

}  // namespace bcs::sim
