#pragma once

// A simulated application process: a fiber bound to a node's CPU scheduler.
//
// Model code inside the process body may call:
//   * compute(work)  — consume CPU time (subject to dæmon preemption and
//                      gang-scheduling freezes on that node's scheduler);
//   * block()/wake() — suspend until some other component (NIC thread,
//                      runtime, peer process) wakes it.
//
// wake() never resumes the fiber inline; it schedules an engine event at the
// current time, so it is safe to call from anywhere (including from another
// fiber's stack) without re-entering the engine.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/time.hpp"

namespace bcs::sim {

class Process {
 public:
  using Body = std::function<void(Process&)>;

  /// `node` is informational (used by traces and by the MPI layers to find
  /// the right NIC).  `name` appears in deadlock reports.
  Process(Engine& engine, CpuScheduler& cpu, int node, std::string name,
          Body body);
  ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Schedules the first resume of the process at time `when`.
  void start(SimTime when);

  // ----- Fiber-side API (call only from inside the body) -----

  /// Consumes `work` ns of CPU.  Returns when the work has been serviced.
  void compute(Duration work);

  /// Suspends until wake() is called.  If wake() already happened since the
  /// last block() (a "permit" is pending), returns immediately.
  void block();

  /// Current simulated time (convenience passthrough).
  SimTime now() const { return engine_.now(); }

  // ----- Engine-side API -----

  /// Wakes a blocked process (or banks a permit if it is not blocked yet).
  void wake();

  /// Freezes / unfreezes the process's current compute task, if any
  /// (gang scheduling).  Also freezes future compute() calls until unfrozen.
  void setComputeFrozen(bool frozen);

  bool finished() const { return fiber_ && fiber_->finished(); }
  bool blocked() const { return blocked_; }

  /// True while the process is inside compute() (its fiber is suspended,
  /// but it is waiting for CPU service, not for an external event) — i.e.
  /// it can use CPU time if scheduled.
  bool computing() const { return current_task_.valid(); }
  int node() const { return node_; }
  const std::string& name() const { return name_; }

  /// Total CPU work this process has requested via compute() — used by
  /// tests to check that gang scheduling does not lose work.
  Duration totalComputeRequested() const { return total_compute_; }

  Engine& engine() { return engine_; }

 private:
  void resumeFromEngine();

  Engine& engine_;
  CpuScheduler& cpu_;
  int node_;
  std::string name_;
  Body body_;
  std::unique_ptr<Fiber> fiber_;
  bool blocked_ = false;
  int permits_ = 0;
  bool frozen_ = false;
  CpuTaskId current_task_{};
  Duration total_compute_ = 0;
};

}  // namespace bcs::sim
