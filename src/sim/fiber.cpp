#include "sim/fiber.hpp"

#include <utility>

namespace bcs::sim {

Fiber::Fiber(std::function<void()> body) : body_(std::move(body)) {}

Fiber::~Fiber() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_) return;  // thread never launched
    if (!finished_) {
      // Ask the fiber to unwind: next yield() observes kill_ and throws.
      kill_ = true;
      turn_ = Turn::kFiber;
      cv_.notify_all();
      cv_.wait(lock, [this] { return turn_ == Turn::kEngine; });
    }
  }
  if (thread_.joinable()) thread_.join();
}

void Fiber::resume() {
  std::unique_lock<std::mutex> lock(mu_);
  if (finished_) return;
  if (!started_) {
    started_ = true;
    thread_ = std::thread([this] { threadMain(); });
  }
  turn_ = Turn::kFiber;
  cv_.notify_all();
  cv_.wait(lock, [this] { return turn_ == Turn::kEngine; });
  if (error_) {
    std::exception_ptr err = std::exchange(error_, nullptr);
    std::rethrow_exception(err);
  }
}

void Fiber::yield() {
  std::unique_lock<std::mutex> lock(mu_);
  turn_ = Turn::kEngine;
  cv_.notify_all();
  cv_.wait(lock, [this] { return turn_ == Turn::kFiber; });
  if (kill_) throw FiberKilled{};
}

void Fiber::threadMain() {
  {
    // Wait for the first resume()'s baton (resume() sets turn_ before the
    // thread starts, so this usually falls straight through).
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return turn_ == Turn::kFiber; });
  }
  try {
    if (!kill_) body_();
  } catch (const FiberKilled&) {
    // Normal forced unwind; not an error.
  } catch (...) {
    error_ = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mu_);
  finished_ = true;
  turn_ = Turn::kEngine;
  cv_.notify_all();
}

}  // namespace bcs::sim
