#include "sim/fiber.hpp"

#include <utility>

#include "sim/engine.hpp"

namespace bcs::sim {

Fiber::Fiber(std::function<void()> body) : body_(std::move(body)) {}

Fiber::~Fiber() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_) return;  // thread never launched
    if (!finished_) {
      // Ask the fiber to unwind: next yield() observes kill_ and throws.
      kill_ = true;
      resume_ctx_ = detail::currentExecContext();
      turn_ = Turn::kFiber;
      cv_.notify_all();
      cv_.wait(lock, [this] { return turn_ == Turn::kEngine; });
    }
  }
  if (thread_.joinable()) thread_.join();
}

void Fiber::resume() {
  std::unique_lock<std::mutex> lock(mu_);
  if (finished_) return;
  resume_ctx_ = detail::currentExecContext();
  if (!started_) {
    started_ = true;
    thread_ = std::thread([this] { threadMain(); });
  }
  turn_ = Turn::kFiber;
  cv_.notify_all();
  cv_.wait(lock, [this] { return turn_ == Turn::kEngine; });
  if (error_) {
    std::exception_ptr err = std::exchange(error_, nullptr);
    lock.unlock();  // don't hold mu_ through an arbitrary handler
    std::rethrow_exception(err);
  }
}

void Fiber::yield() {
  std::unique_lock<std::mutex> lock(mu_);
  turn_ = Turn::kEngine;
  cv_.notify_all();
  cv_.wait(lock, [this] { return turn_ == Turn::kFiber; });
  // Pick up the waker's engine context (it may be a different parallel
  // worker — or none — each time) before running any model code.
  detail::adoptExecContext(resume_ctx_);
  if (kill_) throw FiberKilled{};
}

void Fiber::threadMain() {
  bool run_body;
  {
    // Wait for the first resume()'s baton (resume() sets turn_ before the
    // thread starts, so this usually falls straight through).  kill_ is
    // read under the same lock: the destructor may have raced resume() and
    // requested an immediate unwind.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return turn_ == Turn::kFiber; });
    detail::adoptExecContext(resume_ctx_);
    run_body = !kill_;
  }
  std::exception_ptr error;
  try {
    if (run_body) body_();
  } catch (const FiberKilled&) {
    // Normal forced unwind; not an error.
  } catch (...) {
    error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mu_);
  error_ = error;
  finished_ = true;
  turn_ = Turn::kEngine;
  cv_.notify_all();
}

bool Fiber::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

}  // namespace bcs::sim
