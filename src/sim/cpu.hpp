#pragma once

// Per-node CPU model.
//
// Each simulated node has a fixed number of CPUs (the paper's "crescendo"
// cluster nodes are dual 1 GHz Pentium-III, so the default is 2).  Compute
// demand is expressed in nanoseconds of CPU work and serviced with a
// processor-sharing discipline:
//
//   * kDaemon tasks (OS / resource-management dæmons) preempt user work;
//     each active dæmon occupies one CPU.  This is how we model the
//     "computational holes of several hundreds of ms" that un-coordinated
//     system dæmons punch into fine-grained applications [Petrini et al.,
//     SC'03 "missing supercomputer performance"].
//   * kUser tasks share the remaining CPUs equally.  A task can also be
//     frozen (descheduled) — used by the STORM Node Manager to implement
//     gang scheduling at time-slice boundaries.
//
// Whenever the active set changes, remaining work is advanced at the old
// rates and the earliest completion event is re-armed: O(tasks) per change,
// and tasks-per-node is tiny (<= 2 app processes + dæmons).

#include <cstdint>
#include <functional>
#include <limits>
#include <map>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace bcs::sim {

/// Opaque handle to a submitted compute task.
struct CpuTaskId {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class CpuScheduler {
 public:
  enum class Priority { kUser, kDaemon };

  CpuScheduler(Engine& engine, int num_cpus);

  /// Submits `work` nanoseconds of CPU demand.  `done` fires (as an engine
  /// event) when the task has accumulated that much service.  Tasks start
  /// runnable.
  CpuTaskId submit(Duration work, Priority prio, std::function<void()> done);

  /// Removes a task without running its completion callback.
  void cancel(CpuTaskId id);

  /// Freezes / unfreezes a task (gang scheduling).  A frozen task receives
  /// zero service but keeps its remaining work.
  void setRunnable(CpuTaskId id, bool runnable);

  /// Remaining CPU demand of a task; 0 if unknown/finished.
  Duration remaining(CpuTaskId id) const;

  /// Number of tasks currently receiving service.
  int activeTasks() const;

  int numCpus() const { return num_cpus_; }

  /// Total CPU-time actually delivered to user tasks (for utilization
  /// statistics).
  double userCpuTimeDelivered() const { return user_delivered_; }

 private:
  struct Task {
    double remaining_ns;
    Priority prio;
    bool runnable;
    std::function<void()> done;
  };

  /// Credits service since the last update at current rates and fires
  /// completions.  Must run *before* any task-set mutation.
  void account();
  /// Recomputes rates and re-arms the next-completion event.
  void rearm();
  void countActive(int& daemons, int& users) const;
  double rateFor(const Task& t, int active_daemons, int active_users) const;

  Engine& engine_;
  int num_cpus_;
  std::uint64_t next_id_ = 1;
  /// Ordered by task id: account() accumulates floating-point service over
  /// this container, and FP addition is not associative — iteration must be
  /// in a reproducible order, never hash order.  The per-node task count is
  /// tiny, so the tree walk costs nothing measurable.
  std::map<std::uint64_t, Task> tasks_;
  SimTime last_update_ = 0;
  EventId pending_completion_{};
  double user_delivered_ = 0;
};

}  // namespace bcs::sim
