#pragma once

// Deterministic fault injection for the simulated machine.
//
// The paper's §6 names coordinated checkpointing / fault tolerance as the
// natural extension enabled by BCS's slice-global quiescence; to exercise
// that machinery the simulator needs faults that are (a) realistic — message
// drops, link degradation, node crashes and hangs — and (b) perfectly
// reproducible, so a failing run can be replayed bit-for-bit from its seed.
//
// A FaultPlan describes *what* can go wrong; the FaultInjector turns the
// plan into concrete per-packet decisions using its own xoshiro256** stream
// (derived from the cluster seed, independent of the workload streams).
// Because the discrete-event engine is single-threaded and breaks ties
// deterministically, the injector is queried in a reproducible order and two
// runs with the same (seed, plan) produce identical fault schedules — the
// property tests/test_determinism.cpp asserts on.
//
// Scoping: random drops apply only to traffic the sender marked *droppable*
// (the DMA/put path: descriptor exchanges and chunk gets).  Hardware
// multicast and network conditionals are reliable on QsNet ("ordered,
// reliable multicast" — paper §2), so strobes, heartbeats and
// Compare-And-Write rounds never drop; they fail only when an endpoint is
// down, which is what the heartbeat/eviction protocol recovers from.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace bcs::sim {

/// Declarative description of the faults a run should experience.
struct FaultPlan {
  /// Probability that one droppable packet is lost in the network.
  double drop_rate = 0.0;

  /// Probability that one droppable packet takes `degrade_latency` extra
  /// time on the wire (link-level retraining / congestion spikes).
  double degrade_rate = 0.0;
  Duration degrade_latency = usec(50);

  /// A node-level fault: from `at` the node's NIC neither sends nor
  /// receives.  `hang == 0` means a permanent crash; otherwise the node
  /// recovers after `hang` (a stall long enough to miss heartbeats but not
  /// necessarily long enough to be declared dead).
  struct NodeFault {
    int node = -1;
    SimTime at = 0;
    Duration hang = 0;
  };
  std::vector<NodeFault> node_faults;

  /// Sentinel for "the management node" in NodeFault::node.  Plans are built
  /// before the machine size is known, so the Cluster resolves this to its
  /// actual management-node index at construction.
  static constexpr int kManagementNode = -2;

  FaultPlan& dropRate(double rate) {
    drop_rate = rate;
    return *this;
  }
  FaultPlan& degrade(double rate, Duration extra) {
    degrade_rate = rate;
    degrade_latency = extra;
    return *this;
  }
  FaultPlan& crashNode(int node, SimTime at) {
    node_faults.push_back(NodeFault{node, at, 0});
    return *this;
  }
  FaultPlan& hangNode(int node, SimTime at, Duration duration) {
    node_faults.push_back(NodeFault{node, at, duration});
    return *this;
  }
  /// Crashes the management node — the Strobe Sender and STORM Machine
  /// Manager — exercising the control-plane failover protocol.
  FaultPlan& crashManagementNode(SimTime at) {
    return crashNode(kManagementNode, at);
  }
  FaultPlan& hangManagementNode(SimTime at, Duration duration) {
    return hangNode(kManagementNode, at, duration);
  }

  bool empty() const {
    return drop_rate <= 0 && degrade_rate <= 0 && node_faults.empty();
  }

  /// One-line human-readable summary, for traces and reports.
  std::string describe() const;
};

/// Aggregate injector decisions, for tests and reports.
struct FaultStats {
  std::uint64_t drops = 0;       ///< droppable packets lost
  std::uint64_t degrades = 0;    ///< packets given extra latency
  std::uint64_t forced_down = 0; ///< nodes downed at run time (forceDown)

  /// Zeroes every counter (interval measurements around a workload).
  void reset() { *this = FaultStats{}; }
};

/// Turns a FaultPlan into deterministic per-packet decisions.  One instance
/// per cluster, consulted by the Fabric.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed);

  /// Draws the drop decision for one droppable packet.  Consumes randomness
  /// only when drop_rate > 0, so fault-free runs keep their exact timing.
  bool shouldDrop(int src, int dst);

  /// Extra wire latency for one droppable packet (0 = not degraded).
  Duration degradeExtra();

  /// True iff `node` is crashed or inside a hang window at `now`.  A pure
  /// function of the plan and the clock — no state, no draws.
  bool nodeDown(int node, SimTime now) const;

  /// Registers a permanent node-down fault at run time.  This is how actors
  /// that *cause* failures (e.g. Storm::killNode) publish them: the injector
  /// is the single source of truth for endpoint liveness, and the fabric's
  /// suppression produces every downstream symptom (missed heartbeats,
  /// failed sends).  Consumes no randomness.
  void forceDown(int node, SimTime at);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;

  /// Snapshot serializer (src/snapshot): restores the drop/degrade RNG
  /// stream and the counters; forced-down entries are re-applied through
  /// forceDown (they live in plan_ past the configured faults).
  friend class bcs::snapshot::StateIO;
};

}  // namespace bcs::sim
