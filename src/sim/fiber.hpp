#pragma once

// Fibers: blocking-style model code on top of the event engine.
//
// Application skeletons (SWEEP3D, NAS kernels, ...) are written as ordinary
// C++ functions that call blocking MPI operations.  Each simulated process
// runs on a Fiber — an OS thread that is baton-passed with the engine thread
// so that exactly one of {engine, some fiber} executes at any instant.  This
// preserves the determinism of the single-threaded engine while letting
// model code keep a natural call stack (deeply nested blocking calls, as in
// the wavefront codes, would be painful as hand-written state machines).
//
// Lifecycle:  the engine resumes a fiber; the fiber runs until it calls
// yield() (typically via Process::block()) or returns; control then returns
// to the engine.  A fiber destroyed before finishing is unwound by throwing
// FiberKilled through its stack.

#include <exception>
#include <functional>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace bcs::sim {

/// Thrown through a fiber's stack to unwind it on forced termination.
/// Model code must not swallow this exception (catch(...) blocks must
/// rethrow).
struct FiberKilled {};

class Fiber {
 public:
  /// Creates a fiber that will run `body` once first resumed.
  explicit Fiber(std::function<void()> body);

  /// Joins the underlying thread; force-unwinds the body if unfinished.
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Runs the fiber until it yields or finishes.  Must be called from the
  /// engine side.  Rethrows any exception that escaped the fiber body.
  void resume();

  /// Suspends the calling fiber and returns control to the engine side.
  /// Must be called from inside the fiber body.
  void yield();

  /// True once the body has returned (or was unwound).
  bool finished() const { return finished_; }

 private:
  enum class Turn { kEngine, kFiber };

  void threadMain();

  std::function<void()> body_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Turn turn_ = Turn::kEngine;
  bool started_ = false;
  bool finished_ = false;
  bool kill_ = false;
  std::exception_ptr error_;
};

}  // namespace bcs::sim
