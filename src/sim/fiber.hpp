#pragma once

// Fibers: blocking-style model code on top of the event engine.
//
// Application skeletons (SWEEP3D, NAS kernels, ...) are written as ordinary
// C++ functions that call blocking MPI operations.  Each simulated process
// runs on a Fiber — an OS thread that is baton-passed with the engine thread
// so that exactly one of {engine, some fiber} executes at any instant.  This
// preserves the determinism of the single-threaded engine while letting
// model code keep a natural call stack (deeply nested blocking calls, as in
// the wavefront codes, would be painful as hand-written state machines).
//
// Lifecycle:  the engine resumes a fiber; the fiber runs until it calls
// yield() (typically via Process::block()) or returns; control then returns
// to the engine.  A fiber destroyed before finishing is unwound by throwing
// FiberKilled through its stack.
//
// All shared flags (started_/finished_/kill_/error_/turn_ and the parallel
// exec-context baton) live under mu_ for their whole lifecycle: the baton
// handoff guarantees mutual exclusion *between* waits, but every read or
// write of the flags themselves is lock-protected so the wake/join path is
// race-free under ThreadSanitizer too.

#include <exception>
#include <functional>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace bcs::sim {

/// Thrown through a fiber's stack to unwind it on forced termination.
/// Model code must not swallow this exception (catch(...) blocks must
/// rethrow).
struct FiberKilled {};

class Fiber {
 public:
  /// Creates a fiber that will run `body` once first resumed.
  explicit Fiber(std::function<void()> body);

  /// Joins the underlying thread; force-unwinds the body if unfinished.
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Runs the fiber until it yields or finishes.  Must be called from the
  /// engine side.  Rethrows any exception that escaped the fiber body.
  void resume();

  /// Suspends the calling fiber and returns control to the engine side.
  /// Must be called from inside the fiber body.
  void yield();

  /// True once the body has returned (or was unwound).
  bool finished() const;

 private:
  enum class Turn { kEngine, kFiber };

  void threadMain();

  std::function<void()> body_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Turn turn_ = Turn::kEngine;
  bool started_ = false;
  bool finished_ = false;
  bool kill_ = false;
  std::exception_ptr error_;
  /// Exec-context baton: the fiber body runs on its own OS thread, which
  /// has no engine worker context of its own.  Every waker (resume() or the
  /// destructor's kill path) snapshots its context here under mu_, and the
  /// fiber adopts it on wake — so code running on the fiber schedules and
  /// traces exactly as if it ran inline in the waking event.
  void* resume_ctx_ = nullptr;
};

}  // namespace bcs::sim
