#include "sim/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <utility>

namespace bcs::sim {

void simFail(const std::string& what) {
#if defined(__cpp_exceptions)
  throw SimError(what);
#else
  std::fprintf(stderr, "bcssim fatal: %s\n", what.c_str());
  std::abort();
#endif
}

// ---------------------------------------------------------------------------
// Canonical ordering key: (shard : 16 | handoff band : 1 | seq : 47).
// ---------------------------------------------------------------------------

namespace {

constexpr int kShardShift = 48;
constexpr std::uint64_t kHandoffBand = 1ull << 47;

std::uint64_t makeKey(ShardId shard, bool handoff_band, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(shard) << kShardShift) |
         (handoff_band ? kHandoffBand : 0) | seq;
}

ShardId keyShard(std::uint64_t key) {
  return static_cast<ShardId>(key >> kShardShift);
}

}  // namespace

// ---------------------------------------------------------------------------
// Per-worker execution context.  Everything a firing callback touches
// through the engine (scheduling, cancellation, counters, deferred side
// effects) routes through here during a parallel window, so workers never
// write shared engine state mid-window; the coordinator folds the deltas in
// at the barrier, in canonical order.
// ---------------------------------------------------------------------------

namespace detail {

/// One worker's whole window state lives here, cache-line aligned so two
/// workers' hot fields never share a line.  The outbound handoff batches
/// are indexed by destination shard: each staging event appends to its
/// destination's vector, and the barrier performs a single canonically-
/// ordered bulk merge over all (worker, destination) batches instead of
/// staging per event through shared engine state.
struct alignas(64) ExecContext {
  struct StagedHandoff {
    SimTime when;
    SimTime src_when;       ///< firing time of the staging event
    std::uint64_t src_key;  ///< canonical key of the staging event
    std::uint32_t idx;      ///< handoff() call ordinal within that event
    EventCallback cb;
  };
  struct DeferredTrace {
    void* trace;
    TraceCommitFn commit;
    SimTime t;
    std::uint8_t category;
    int node;
    std::string message;
    SimTime src_when;
    std::uint64_t src_key;
    std::uint32_t idx;
  };

  Engine* eng = nullptr;
  int worker = 0;
  SimTime now = 0;
  SimTime window_end = 0;
  ShardId cur_shard = 0;
  std::uint64_t cur_key = 0;
  std::uint32_t handoff_idx = 0;
  std::uint32_t trace_idx = 0;
  void* queue = nullptr;  ///< the executing shard's Engine::ShardQueue
  std::vector<std::uint32_t> free;  ///< worker-private node arena
  std::int64_t live_delta = 0;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t dropped = 0;
  SimTime max_fired = -1;
  /// Outbound handoff batches, one vector per destination shard (grown
  /// lazily; `outbound_touched` lists the non-empty ones so the barrier
  /// never scans the full width).
  std::vector<std::vector<StagedHandoff>> outbound;
  std::vector<ShardId> outbound_touched;
  std::vector<DeferredTrace> deferred;
#if defined(__cpp_exceptions)
  std::exception_ptr error;
#endif

  std::vector<StagedHandoff>& outboundFor(ShardId shard) {
    if (static_cast<std::size_t>(shard) >= outbound.size()) {
      outbound.resize(static_cast<std::size_t>(shard) + 1);
    }
    auto& batch = outbound[shard];
    if (batch.empty()) outbound_touched.push_back(shard);
    return batch;
  }
};

namespace {
thread_local ExecContext* t_ctx = nullptr;
}  // namespace

void* currentExecContext() { return t_ctx; }
void adoptExecContext(void* ctx) { t_ctx = static_cast<ExecContext*>(ctx); }

int currentWorkerIndex() { return t_ctx != nullptr ? t_ctx->worker : -1; }

bool deferTraceRecord(void* trace, TraceCommitFn commit, SimTime t,
                      std::uint8_t category, int node, std::string&& message) {
  ExecContext* ctx = t_ctx;
  if (ctx == nullptr) return false;
  ctx->deferred.push_back(ExecContext::DeferredTrace{
      trace, commit, t, category, node, std::move(message), ctx->now,
      ctx->cur_key, ctx->trace_idx++});
  return true;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Construction, node pool
// ---------------------------------------------------------------------------

Engine::Engine() : shard_seq_(1, 1), buckets_(kNumBuckets) {
  free_.reserve(kChunkSize);
  overflow_.reserve(64);
  // The chunk table never reallocates (workers index it while another
  // worker appends under chunk_mu_); reserve the lifetime maximum up front.
  chunks_.reserve(kMaxChunks);
}

Engine::~Engine() = default;

void Engine::failSchedulePast(SimTime when, SimTime now) const {
  simFail("Engine::at: scheduling into the past (when=" + formatTime(when) +
          ", now=" + formatTime(now) + ")");
}

void Engine::failNegativeDelay() { simFail("Engine::after: negative delay"); }

std::uint32_t Engine::acquireNode() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const std::uint32_t slot = node_count_.fetch_add(1, std::memory_order_relaxed);
  if ((slot >> kChunkShift) == chunks_.size()) {
    if (chunks_.size() == kMaxChunks) simFail("Engine: event-node pool exhausted");
    chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
  }
  return slot;
}

std::uint32_t Engine::acquireNodeCtx(detail::ExecContext& ctx) {
  if (!ctx.free.empty()) {
    const std::uint32_t slot = ctx.free.back();
    ctx.free.pop_back();
    return slot;
  }
  // Refill the worker's arena with a batch of slots; the shared free list,
  // chunk growth and the slot counter are all serialized under chunk_mu_.
  // (The coordinator touches free_ without the lock only while workers are
  // parked between windows, so this is the sole concurrent access path.)
  // The batch is sized so a steady-state worker visits the lock at most
  // once per few windows — after the first windows the arena self-sustains
  // on recycled slots and never comes back here at all.
  constexpr std::uint32_t kBatch = 256;
  std::lock_guard<std::mutex> lock(chunk_mu_);
  std::uint32_t got = 0;
  while (got < kBatch && !free_.empty()) {
    ctx.free.push_back(free_.back());
    free_.pop_back();
    ++got;
  }
  for (; got < kBatch; ++got) {
    const std::uint32_t slot =
        node_count_.fetch_add(1, std::memory_order_relaxed);
    if ((slot >> kChunkShift) == chunks_.size()) {
      if (chunks_.size() == kMaxChunks) {
        simFail("Engine: event-node pool exhausted");
      }
      chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
    }
    ctx.free.push_back(slot);
  }
  const std::uint32_t slot = ctx.free.back();
  ctx.free.pop_back();
  return slot;
}

void Engine::releaseNode(std::uint32_t slot) {
  Node& n = node(slot);
  n.armed = false;
  ++n.gen;  // invalidate any outstanding handles to this slot
  free_.push_back(slot);
}

// ---------------------------------------------------------------------------
// Queue primitives (shared by the serial calendar and the shard heaps)
// ---------------------------------------------------------------------------

void Engine::heapPush(std::vector<QEntry>& heap, QEntry entry) {
  heap.push_back(entry);
  std::size_t i = heap.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!entry.firesBefore(heap[parent])) break;
    heap[i] = heap[parent];
    i = parent;
  }
  heap[i] = entry;
}

void Engine::heapPop(std::vector<QEntry>& heap) {
  const QEntry last = heap.back();
  heap.pop_back();
  if (heap.empty()) return;
  std::size_t i = 0;
  const std::size_t n = heap.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap[child + 1].firesBefore(heap[child])) ++child;
    if (!heap[child].firesBefore(last)) break;
    heap[i] = heap[child];
    i = child;
  }
  heap[i] = last;
}

// Descending (when, key): back() of a sorted bucket is the earliest entry.
static constexpr auto kLaterFirst = [](const auto& a, const auto& b) {
  return b.firesBefore(a);
};

void Engine::enqueue(QEntry entry) {
  std::uint64_t idx = static_cast<std::uint64_t>(entry.when) >> kBucketShift;
  // The cursor may already have scanned past this event's natural bucket
  // (base_ tracks the wheel minimum, and `when >= now_` is all we checked).
  // Clamping keeps ordering correct: within a bucket entries order by
  // (when, key), and all later buckets hold strictly later times.
  if (idx < base_) idx = base_;
  if (idx < base_ + kNumBuckets) {
    auto& bucket = buckets_[idx & kBucketMask];
    if (idx == sorted_bucket_) {
      // Late arrival into the bucket currently being drained: keep it
      // sorted so pop order stays exact.
      bucket.insert(
          std::upper_bound(bucket.begin(), bucket.end(), entry, kLaterFirst),
          entry);
    } else {
      bucket.push_back(entry);
    }
    ++wheel_count_;
  } else {
    heapPush(overflow_, entry);
  }
}

bool Engine::peekNext(QEntry& entry, bool& from_overflow) {
  // Drop dead entries from the overflow top first so the comparison below
  // sees a live candidate (or none).
  while (!overflow_.empty() && !node(overflow_.front().slot).armed) {
    releaseNode(overflow_.front().slot);
    heapPop(overflow_);
    ++dropped_tombstones_;
  }
  // Advance the cursor to the first bucket with a live entry, sorting each
  // bucket once as the cursor reaches it.
  const QEntry* wheel_top = nullptr;
  while (wheel_count_ > 0) {
    auto& bucket = buckets_[base_ & kBucketMask];
    if (!bucket.empty() && base_ != sorted_bucket_) {
      std::sort(bucket.begin(), bucket.end(), kLaterFirst);
      sorted_bucket_ = base_;
    }
    while (!bucket.empty() && !node(bucket.back().slot).armed) {
      releaseNode(bucket.back().slot);
      bucket.pop_back();
      --wheel_count_;
      ++dropped_tombstones_;
    }
    if (!bucket.empty()) {
      wheel_top = &bucket.back();
      break;
    }
    ++base_;
  }
  if (wheel_top == nullptr && overflow_.empty()) return false;
  if (wheel_top == nullptr) {
    entry = overflow_.front();
    from_overflow = true;
    // All activity lives beyond the horizon; jump the cursor so future
    // enqueues near this time land in the wheel again.
    const std::uint64_t idx =
        static_cast<std::uint64_t>(overflow_.front().when) >> kBucketShift;
    if (idx > base_) base_ = idx;
    return true;
  }
  if (!overflow_.empty() && overflow_.front().firesBefore(*wheel_top)) {
    entry = overflow_.front();
    from_overflow = true;
    return true;
  }
  entry = *wheel_top;
  from_overflow = false;
  return true;
}

void Engine::extract(bool from_overflow) {
  if (from_overflow) {
    heapPop(overflow_);
  } else {
    buckets_[base_ & kBucketMask].pop_back();
    --wheel_count_;
  }
}

// ---------------------------------------------------------------------------
// Scheduling and cancellation (context-aware)
// ---------------------------------------------------------------------------

Engine::Prep Engine::beginSchedule(SimTime when) {
  detail::ExecContext* ctx = detail::t_ctx;
  if (ctx != nullptr && ctx->eng == this) {
    if (when < ctx->now) failSchedulePast(when, ctx->now);
    return Prep{acquireNodeCtx(*ctx), ctx, ctx->cur_shard};
  }
  if (when < now_) failSchedulePast(when, now_);
  return Prep{acquireNode(), nullptr, cur_shard_};
}

Engine::Prep Engine::beginScheduleOn(ShardId shard, SimTime when) {
  detail::ExecContext* ctx = detail::t_ctx;
  if (ctx != nullptr && ctx->eng == this) {
    if (shard != ctx->cur_shard) {
      simFail("Engine::atOn: cross-shard scheduling (shard " +
              std::to_string(shard) + " from shard " +
              std::to_string(ctx->cur_shard) +
              ") during a parallel window; use handoff()");
    }
    if (when < ctx->now) failSchedulePast(when, ctx->now);
    return Prep{acquireNodeCtx(*ctx), ctx, shard};
  }
  if (when < now_) failSchedulePast(when, now_);
  // The serial engine has always allowed cross-shard atOn silently (the
  // parallel mode rejects it above).  Surface it to the race detector: it
  // is a write into the target shard's queue by the executing event.
  if (observer_ != nullptr && cur_key_ != 0 && shard != cur_shard_) {
    observer_->onSerialCrossShard(shard, "Engine::atOn");
  }
  return Prep{acquireNode(), nullptr, shard};
}

EventId Engine::finishSchedule(const Prep& p, SimTime when) {
  Node& n = node(p.slot);
  if (p.ctx != nullptr) {
    ++p.ctx->live_delta;
    // shard_seq_ is pre-sized by the coordinator and p.shard is owned by
    // exactly this worker for the whole run, so the draw is race-free and
    // replays the serial engine's per-shard sequence exactly.
    const std::uint64_t key =
        makeKey(p.shard, false, shard_seq_[p.shard]++);
    const QEntry entry{when, key, p.slot};
    // Same-shard scheduling only (beginSchedule* enforce it), so the target
    // queue is always the one the worker is draining: events inside the
    // window keep `near` sorted via the calendar queue's late-arrival
    // insert; everything else takes the far heap.
    auto& sq = *static_cast<ShardQueue*>(p.ctx->queue);
    if (when < p.ctx->window_end) {
      sq.near.insert(
          std::upper_bound(sq.near.begin(), sq.near.end(), entry, kLaterFirst),
          entry);
    } else {
      heapPush(sq.far, entry);
    }
    return EventId{p.slot + 1, n.gen};
  }
  ++live_;
  if (p.shard >= shard_seq_.size()) {
    shard_seq_.resize(static_cast<std::size_t>(p.shard) + 1, 1);
  }
  const std::uint64_t key = makeKey(p.shard, false, shard_seq_[p.shard]++);
  enqueue(QEntry{when, key, p.slot});
  return EventId{p.slot + 1, n.gen};
}

void Engine::handoffImpl(ShardId shard, SimTime when, EventCallback cb) {
  detail::ExecContext* ctx = detail::t_ctx;
  if (ctx != nullptr && ctx->eng == this) {
    if (when < ctx->window_end) {
      simFail("Engine::handoff: target time " + formatTime(when) +
              " precedes the next barrier (" + formatTime(ctx->window_end) +
              "); handoffs must land at or past the barrier");
    }
    ctx->outboundFor(shard).push_back(detail::ExecContext::StagedHandoff{
        when, ctx->now, ctx->cur_key, ctx->handoff_idx++, std::move(cb)});
    return;
  }
  if (when < now_) failSchedulePast(when, now_);
  const std::uint32_t slot = acquireNode();
  Node& n = node(slot);
  n.armed = true;
  n.shard = shard;
  n.fn = std::move(cb);
  ++live_;
  enqueue(QEntry{when, makeKey(shard, true, handoff_seq_++), slot});
}

bool Engine::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t slot = id.slot - 1;
  if (slot >= node_count_.load(std::memory_order_relaxed)) return false;
  Node& n = node(slot);
  if (!n.armed || n.gen != id.gen) return false;
  detail::ExecContext* ctx = detail::t_ctx;
  if (ctx != nullptr && ctx->eng == this) {
    if (n.shard != ctx->cur_shard) {
      simFail("Engine::cancel: cross-shard cancel (event on shard " +
              std::to_string(n.shard) + " from shard " +
              std::to_string(ctx->cur_shard) + ") during a parallel window");
    }
    n.armed = false;  // tombstone, reclaimed lazily by the owning worker
    n.fn.reset();
    --ctx->live_delta;
    ++ctx->cancelled;
    return true;
  }
  // Serial-mode cross-shard cancel: allowed (the parallel mode fails
  // loudly), but reported to the race detector as a foreign-queue write.
  if (observer_ != nullptr && cur_key_ != 0 && n.shard != cur_shard_) {
    observer_->onSerialCrossShard(n.shard, "Engine::cancel");
  }
  n.armed = false;  // queue entry becomes a tombstone, reclaimed lazily
  n.fn.reset();
  --live_;
  ++cancelled_;
  return true;
}

SimTime Engine::nowParallel() const {
  const detail::ExecContext* ctx = detail::t_ctx;
  return (ctx != nullptr && ctx->eng == this) ? ctx->now : now_;
}

ShardId Engine::currentShard() const {
  const detail::ExecContext* ctx = detail::t_ctx;
  return (ctx != nullptr && ctx->eng == this) ? ctx->cur_shard : cur_shard_;
}

std::uint64_t Engine::currentEventKey() const {
  const detail::ExecContext* ctx = detail::t_ctx;
  return (ctx != nullptr && ctx->eng == this) ? ctx->cur_key : cur_key_;
}

// ---------------------------------------------------------------------------
// Serial execution (the reference implementation)
// ---------------------------------------------------------------------------

// Fires the event in `entry` (already extracted from the queue).  The
// callback runs in place: node addresses are stable and the slot is not
// released until the callback returns, so reentrant at()/cancel() calls are
// safe and a self-cancel fails harmlessly (armed is already false).
void Engine::fire(const QEntry& entry) {
  now_ = entry.when;
  Node& n = node(entry.slot);
  cur_shard_ = n.shard;
  cur_key_ = entry.key;
  n.armed = false;
  --live_;
  ++executed_;
#if defined(__cpp_exceptions)
  try {
    n.fn.invokeAndReset();
  } catch (...) {
    n.fn.reset();
    releaseNode(entry.slot);
    throw;
  }
#else
  n.fn.invokeAndReset();
#endif
  releaseNode(entry.slot);
}

bool Engine::step() {
  QEntry entry;
  bool from_overflow;
  if (!peekNext(entry, from_overflow)) return false;
  extract(from_overflow);
  fire(entry);
  cur_shard_ = 0;
  cur_key_ = 0;
  return true;
}

SimTime Engine::run(SimTime until) {
  // Fused peek + extract + fire loop.  Equivalent to `while (step())` with
  // an `until` bound, but keeps the bucket reference and queue entry in
  // registers across the pop instead of re-deriving them per event.
  for (;;) {
    while (!overflow_.empty() && !node(overflow_.front().slot).armed) {
      releaseNode(overflow_.front().slot);
      heapPop(overflow_);
      ++dropped_tombstones_;
    }
    std::vector<QEntry>* bucket = nullptr;
    while (wheel_count_ > 0) {
      bucket = &buckets_[base_ & kBucketMask];
      if (!bucket->empty() && base_ != sorted_bucket_) {
        std::sort(bucket->begin(), bucket->end(), kLaterFirst);
        sorted_bucket_ = base_;
      }
      while (!bucket->empty() && !node(bucket->back().slot).armed) {
        releaseNode(bucket->back().slot);
        bucket->pop_back();
        --wheel_count_;
        ++dropped_tombstones_;
      }
      if (!bucket->empty()) break;
      bucket = nullptr;
      ++base_;
    }
    if (bucket == nullptr) {
      if (overflow_.empty()) break;  // queue exhausted
      const QEntry entry = overflow_.front();
      if (entry.when > until) break;
      // All activity lives beyond the horizon; jump the cursor so future
      // enqueues near this time land in the wheel again.
      const std::uint64_t idx =
          static_cast<std::uint64_t>(entry.when) >> kBucketShift;
      if (idx > base_) base_ = idx;
      heapPop(overflow_);
      fire(entry);
      continue;
    }
    const QEntry wheel_top = bucket->back();
    if (!overflow_.empty() && overflow_.front().firesBefore(wheel_top)) {
      const QEntry entry = overflow_.front();
      if (entry.when > until) break;
      heapPop(overflow_);
      fire(entry);
      continue;
    }
    if (wheel_top.when > until) break;
    bucket->pop_back();
    --wheel_count_;
    // Warm the next victim's node line while this callback runs.
    if (!bucket->empty()) __builtin_prefetch(&node(bucket->back().slot));
    fire(wheel_top);
  }
  cur_shard_ = 0;
  cur_key_ = 0;
  if (now_ < until && until != INT64_MAX) now_ = until;
  return now_;
}

// ---------------------------------------------------------------------------
// Parallel execution: windowed worker pool with barrier merge
// ---------------------------------------------------------------------------

void Engine::distributeToShards() {
  std::vector<QEntry> pending;
  pending.reserve(wheel_count_ + overflow_.size());
  for (auto& bucket : buckets_) {
    pending.insert(pending.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  wheel_count_ = 0;
  sorted_bucket_ = UINT64_MAX;
  pending.insert(pending.end(), overflow_.begin(), overflow_.end());
  overflow_.clear();

  std::size_t nshards = 1;
  for (const QEntry& e : pending) {
    nshards = std::max(nshards, static_cast<std::size_t>(keyShard(e.key)) + 1);
  }
  // shard_qs_ survives between runs so its vectors keep their capacity;
  // between windows every entry lives in `far` (near drains to empty by
  // construction), so distribution only touches the far heaps.
  if (shard_qs_.size() < nshards) shard_qs_.resize(nshards);
  if (shard_seq_.size() < nshards) shard_seq_.resize(nshards, 1);
  for (const QEntry& e : pending) {
    heapPush(shard_qs_[keyShard(e.key)].far, e);
  }
}

// Bounded spin before yielding: long enough to catch a near-simultaneous
// publication on a multicore host, short enough that an oversubscribed
// worker (more workers than cores) surrenders its timeslice promptly.
static constexpr int kBarrierSpins = 256;

void Engine::workerLoop(int w) {
  detail::ExecContext& ctx = *ctxs_[static_cast<std::size_t>(w)];
  std::uint64_t seen_gen = 0;
  for (;;) {
    SimTime wend;
    for (int spins = 0;; ++spins) {
      if (par_quit_.load(std::memory_order_acquire)) return;
      const std::uint64_t gen = window_gen_.load(std::memory_order_acquire);
      if (gen != seen_gen) {
        seen_gen = gen;
        // The acquire above synchronizes with the coordinator's release
        // bump, so the plain read of window_end_ is ordered.
        wend = window_end_;
        break;
      }
      if (spins >= kBarrierSpins) std::this_thread::yield();
    }
    drainWindow(ctx, wend);
    workers_done_.fetch_add(1, std::memory_order_release);
  }
}

void Engine::fireCtx(detail::ExecContext& ctx, const QEntry& entry) {
  ctx.now = entry.when;
  ctx.cur_shard = keyShard(entry.key);
  ctx.cur_key = entry.key;
  ctx.handoff_idx = 0;
  ctx.trace_idx = 0;
  if (entry.when > ctx.max_fired) ctx.max_fired = entry.when;
  Node& n = node(entry.slot);
  n.armed = false;
  --ctx.live_delta;
  ++ctx.executed;
#if defined(__cpp_exceptions)
  try {
    n.fn.invokeAndReset();
  } catch (...) {
    n.fn.reset();
    ++n.gen;
    ctx.free.push_back(entry.slot);
    throw;
  }
#else
  n.fn.invokeAndReset();
#endif
  ++n.gen;
  ctx.free.push_back(entry.slot);
}

void Engine::drainWindow(detail::ExecContext& ctx, SimTime window_end) {
  detail::ExecContext* prev = detail::t_ctx;
  detail::t_ctx = &ctx;
  ctx.window_end = window_end;
#if defined(__cpp_exceptions)
  try {
#endif
    const std::size_t stride = ctxs_.size();
    for (std::size_t s = static_cast<std::size_t>(ctx.worker);
         s < shard_qs_.size(); s += stride) {
      ShardQueue& sq = shard_qs_[s];
      ctx.queue = &sq;
      // Window prep: move matured far entries into the near vector (dead
      // ones recycle straight into this worker's arena) and sort it once,
      // descending, so the drain below is pop_back off the tail.  Intra-
      // window arrivals keep the order via sorted insert in finishSchedule.
      while (!sq.far.empty() && sq.far.front().when < window_end) {
        const QEntry e = sq.far.front();
        heapPop(sq.far);
        if (!node(e.slot).armed) {
          ++node(e.slot).gen;
          ctx.free.push_back(e.slot);
          ++ctx.dropped;
          continue;
        }
        sq.near.push_back(e);
      }
      std::sort(sq.near.begin(), sq.near.end(), kLaterFirst);
      while (!sq.near.empty()) {
        const QEntry entry = sq.near.back();
        sq.near.pop_back();
        if (!node(entry.slot).armed) {
          ++node(entry.slot).gen;
          ctx.free.push_back(entry.slot);
          ++ctx.dropped;
          continue;
        }
        fireCtx(ctx, entry);
      }
      // Invariant on exit: near is empty — between barriers every pending
      // event for this shard lives in far.
    }
#if defined(__cpp_exceptions)
  } catch (...) {
    ctx.error = std::current_exception();
  }
#endif
  ctx.queue = nullptr;
  detail::t_ctx = prev;
}

void Engine::mergeWindow() {
  // Counter deltas first (cheap, order-insensitive).
  for (auto& cp : ctxs_) {
    detail::ExecContext& c = *cp;
    executed_ += c.executed;
    cancelled_ += c.cancelled;
    dropped_tombstones_ += c.dropped;
    live_ = static_cast<std::size_t>(static_cast<std::int64_t>(live_) +
                                     c.live_delta);
    if (c.max_fired > now_) now_ = c.max_fired;
    c.executed = 0;
    c.cancelled = 0;
    c.dropped = 0;
    c.live_delta = 0;
    c.max_fired = -1;
  }

  // Cross-shard handoffs: each worker accumulated one batch per destination
  // shard; the barrier applies them all in the canonical order of their
  // staging events — exactly the order the serial engine would have drawn
  // handoff sequence numbers in.  One global sequence counter keeps keys
  // consistent across mixed serial/parallel segments of the same run.
  struct MergeRef {
    detail::ExecContext::StagedHandoff* h;
    ShardId dest;
  };
  std::vector<MergeRef> staged;
  for (auto& cp : ctxs_) {
    for (ShardId dest : cp->outbound_touched) {
      for (auto& h : cp->outbound[static_cast<std::size_t>(dest)]) {
        staged.push_back(MergeRef{&h, dest});
      }
    }
  }
  std::sort(staged.begin(), staged.end(),
            [](const MergeRef& a, const MergeRef& b) {
              if (a.h->src_when != b.h->src_when)
                return a.h->src_when < b.h->src_when;
              if (a.h->src_key != b.h->src_key)
                return a.h->src_key < b.h->src_key;
              return a.h->idx < b.h->idx;
            });
  for (const MergeRef& r : staged) {
    if (static_cast<std::size_t>(r.dest) >= shard_qs_.size()) {
      shard_qs_.resize(static_cast<std::size_t>(r.dest) + 1);
      shard_seq_.resize(static_cast<std::size_t>(r.dest) + 1, 1);
    }
    const std::uint32_t slot = acquireNode();
    Node& n = node(slot);
    n.armed = true;
    n.shard = r.dest;
    n.fn = std::move(r.h->cb);
    ++live_;
    heapPush(shard_qs_[r.dest].far,
             QEntry{r.h->when, makeKey(r.dest, true, handoff_seq_++), slot});
  }
  for (auto& cp : ctxs_) {
    for (ShardId dest : cp->outbound_touched) {
      cp->outbound[static_cast<std::size_t>(dest)].clear();
    }
    cp->outbound_touched.clear();
  }

  // Deferred trace records, spliced in canonical emission order (the serial
  // engine appends in execution order, and execution order is the key
  // order; ties within one event keep their call order via idx).
  std::vector<detail::ExecContext::DeferredTrace*> traces;
  for (auto& cp : ctxs_) {
    for (auto& d : cp->deferred) traces.push_back(&d);
  }
  std::sort(traces.begin(), traces.end(),
            [](const detail::ExecContext::DeferredTrace* a,
               const detail::ExecContext::DeferredTrace* b) {
              if (a->src_when != b->src_when) return a->src_when < b->src_when;
              if (a->src_key != b->src_key) return a->src_key < b->src_key;
              return a->idx < b->idx;
            });
  for (detail::ExecContext::DeferredTrace* d : traces) {
    d->commit(d->trace, d->t, d->category, d->node, std::move(d->message));
  }
  for (auto& cp : ctxs_) cp->deferred.clear();
}

void Engine::finishParallel() {
  par_quit_.store(true, std::memory_order_release);
  for (auto& t : workers_) t.join();
  workers_.clear();
  // Worker arenas fold back into the shared free list in worker order
  // (slot ids are not observable, but replays should still be identical).
  for (auto& cp : ctxs_) {
    free_.insert(free_.end(), cp->free.begin(), cp->free.end());
    cp->free.clear();
  }
  // Events beyond `until` (and any remaining tombstones) return to the
  // global calendar so a later run — serial or parallel — continues them.
  // `near` is normally empty here; it only holds entries after an abort
  // mid-window, and those must survive too.
  for (auto& sq : shard_qs_) {
    for (const QEntry& e : sq.near) enqueue(e);
    sq.near.clear();
    for (const QEntry& e : sq.far) enqueue(e);
    sq.far.clear();
  }
  ctxs_.clear();
  par_active_ = false;
  cur_shard_ = 0;
  cur_key_ = 0;
}

SimTime Engine::run(const ParallelPolicy& policy, SimTime until) {
  if (policy.threads < 1) {
    simFail("Engine::run: ParallelPolicy.threads must be >= 1");
  }
  if (par_active_ || detail::t_ctx != nullptr) {
    simFail("Engine::run: nested parallel run");
  }
  if (!policy.next_barrier && policy.window <= 0) {
    simFail("Engine::run: ParallelPolicy.window must be positive");
  }
  if (policy.windows_per_barrier < 1) {
    simFail("Engine::run: ParallelPolicy.windows_per_barrier must be >= 1");
  }

  distributeToShards();

  // More workers than cores (or than shards) only adds scheduler thrash;
  // the shard→worker assignment is not observable — byte-identity holds by
  // construction of the canonical event order — so clamping is always safe.
  int nworkers = policy.threads;
  if (policy.clamp_to_hardware) {
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0 && nworkers > static_cast<int>(hw)) {
      nworkers = static_cast<int>(hw);
    }
    if (nworkers > static_cast<int>(shard_qs_.size())) {
      nworkers = static_cast<int>(shard_qs_.size());
    }
    if (nworkers < 1) nworkers = 1;
  }
  ctxs_.clear();
  for (int w = 0; w < nworkers; ++w) {
    auto ctx = std::make_unique<detail::ExecContext>();
    ctx->eng = this;
    ctx->worker = w;
    ctx->outbound.resize(shard_qs_.size());
    ctxs_.push_back(std::move(ctx));
  }
  par_quit_.store(false, std::memory_order_relaxed);
  window_gen_.store(0, std::memory_order_relaxed);
  workers_done_.store(0, std::memory_order_relaxed);
  par_active_ = true;
  for (int w = 1; w < nworkers; ++w) {
    workers_.emplace_back([this, w] { workerLoop(w); });
  }

  // Barrier coarsening: several grid windows fused into one barrier-to-
  // barrier stretch.  Only valid when the model keeps cross-shard effects
  // on a coarser grid too (the runtime knows its slice schedule).
  const SimTime grid =
      policy.window > 0
          ? policy.window * static_cast<SimTime>(policy.windows_per_barrier)
          : 0;

#if defined(__cpp_exceptions)
  try {
#endif
    for (;;) {
      // Earliest pending event across shards (dropping dead heap tops).
      // Between barriers everything sits in the far heaps; near is empty.
      SimTime tmin = INT64_MAX;
      bool any = false;
      for (auto& sq : shard_qs_) {
        auto& heap = sq.far;
        while (!heap.empty() && !node(heap.front().slot).armed) {
          releaseNode(heap.front().slot);
          heapPop(heap);
          ++dropped_tombstones_;
        }
        if (!heap.empty()) {
          any = true;
          tmin = std::min(tmin, heap.front().when);
        }
      }
      if (!any || tmin > until) break;

      SimTime wend;
      if (policy.next_barrier) {
        wend = policy.next_barrier(tmin);
        if (wend <= tmin) {
          simFail("Engine::run: ParallelPolicy.next_barrier must return a "
                  "time past its argument");
        }
      } else {
        wend = (tmin / grid + 1) * grid;
      }
      if (until != INT64_MAX && wend > until) wend = until + 1;

      if (nworkers > 1) {
        workers_done_.store(0, std::memory_order_relaxed);
        window_end_ = wend;
        // The release bump publishes window_end_ to the workers' acquire
        // loads — this is the whole barrier wake-up path, no mutex.
        window_gen_.fetch_add(1, std::memory_order_release);
      }
      // The coordinator doubles as worker 0 (fibers live on shard 0, so
      // model code with a call stack always runs on the caller's thread).
      drainWindow(*ctxs_[0], wend);
      if (nworkers > 1) {
        for (int spins = 0; workers_done_.load(std::memory_order_acquire) !=
                            nworkers - 1;
             ++spins) {
          if (spins >= kBarrierSpins) {
            std::this_thread::yield();
            spins = 0;
          }
        }
      }
#if defined(__cpp_exceptions)
      for (auto& cp : ctxs_) {
        if (cp->error) {
          std::exception_ptr err = std::exchange(cp->error, nullptr);
          std::rethrow_exception(err);
        }
      }
#endif
      mergeWindow();
      // All worker effects up to `wend` are now committed on this thread;
      // the race detector merges its per-shard access tables here.
      if (observer_ != nullptr) observer_->onBarrier(wend);
    }
#if defined(__cpp_exceptions)
  } catch (...) {
    finishParallel();
    throw;
  }
#endif
  finishParallel();
  if (now_ < until && until != INT64_MAX) now_ = until;
  return now_;
}

}  // namespace bcs::sim
