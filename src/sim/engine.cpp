#include "sim/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace bcs::sim {

void simFail(const std::string& what) {
#if defined(__cpp_exceptions)
  throw SimError(what);
#else
  std::fprintf(stderr, "bcssim fatal: %s\n", what.c_str());
  std::abort();
#endif
}

Engine::Engine() : buckets_(kNumBuckets) {
  free_.reserve(kChunkSize);
  overflow_.reserve(64);
}

void Engine::failSchedulePast(SimTime when) const {
  simFail("Engine::at: scheduling into the past (when=" + formatTime(when) +
          ", now=" + formatTime(now_) + ")");
}

void Engine::failNegativeDelay() { simFail("Engine::after: negative delay"); }

std::uint32_t Engine::acquireNode() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const std::uint32_t slot = node_count_++;
  if ((slot >> kChunkShift) == chunks_.size()) {
    chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
  }
  return slot;
}

void Engine::releaseNode(std::uint32_t slot) {
  Node& n = node(slot);
  n.armed = false;
  ++n.gen;  // invalidate any outstanding handles to this slot
  free_.push_back(slot);
}

void Engine::heapPush(std::vector<QEntry>& heap, QEntry entry) {
  heap.push_back(entry);
  std::size_t i = heap.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!entry.firesBefore(heap[parent])) break;
    heap[i] = heap[parent];
    i = parent;
  }
  heap[i] = entry;
}

void Engine::heapPop(std::vector<QEntry>& heap) {
  const QEntry last = heap.back();
  heap.pop_back();
  if (heap.empty()) return;
  std::size_t i = 0;
  const std::size_t n = heap.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap[child + 1].firesBefore(heap[child])) ++child;
    if (!heap[child].firesBefore(last)) break;
    heap[i] = heap[child];
    i = child;
  }
  heap[i] = last;
}

// Descending (when, seq): back() of a sorted bucket is the earliest entry.
static constexpr auto kLaterFirst = [](const auto& a, const auto& b) {
  return b.firesBefore(a);
};

void Engine::enqueue(QEntry entry) {
  std::uint64_t idx = static_cast<std::uint64_t>(entry.when) >> kBucketShift;
  // The cursor may already have scanned past this event's natural bucket
  // (base_ tracks the wheel minimum, and `when >= now_` is all we checked).
  // Clamping keeps ordering correct: within a bucket entries order by
  // (when, seq), and all later buckets hold strictly later times.
  if (idx < base_) idx = base_;
  if (idx < base_ + kNumBuckets) {
    auto& bucket = buckets_[idx & kBucketMask];
    if (idx == sorted_bucket_) {
      // Late arrival into the bucket currently being drained: keep it
      // sorted so pop order stays exact.
      bucket.insert(
          std::upper_bound(bucket.begin(), bucket.end(), entry, kLaterFirst),
          entry);
    } else {
      bucket.push_back(entry);
    }
    ++wheel_count_;
  } else {
    heapPush(overflow_, entry);
  }
}

bool Engine::peekNext(QEntry& entry, bool& from_overflow) {
  // Drop dead entries from the overflow top first so the comparison below
  // sees a live candidate (or none).
  while (!overflow_.empty() && !node(overflow_.front().slot).armed) {
    releaseNode(overflow_.front().slot);
    heapPop(overflow_);
    ++dropped_tombstones_;
  }
  // Advance the cursor to the first bucket with a live entry, sorting each
  // bucket once as the cursor reaches it.
  const QEntry* wheel_top = nullptr;
  while (wheel_count_ > 0) {
    auto& bucket = buckets_[base_ & kBucketMask];
    if (!bucket.empty() && base_ != sorted_bucket_) {
      std::sort(bucket.begin(), bucket.end(), kLaterFirst);
      sorted_bucket_ = base_;
    }
    while (!bucket.empty() && !node(bucket.back().slot).armed) {
      releaseNode(bucket.back().slot);
      bucket.pop_back();
      --wheel_count_;
      ++dropped_tombstones_;
    }
    if (!bucket.empty()) {
      wheel_top = &bucket.back();
      break;
    }
    ++base_;
  }
  if (wheel_top == nullptr && overflow_.empty()) return false;
  if (wheel_top == nullptr) {
    entry = overflow_.front();
    from_overflow = true;
    // All activity lives beyond the horizon; jump the cursor so future
    // enqueues near this time land in the wheel again.
    const std::uint64_t idx =
        static_cast<std::uint64_t>(overflow_.front().when) >> kBucketShift;
    if (idx > base_) base_ = idx;
    return true;
  }
  if (!overflow_.empty() && overflow_.front().firesBefore(*wheel_top)) {
    entry = overflow_.front();
    from_overflow = true;
    return true;
  }
  entry = *wheel_top;
  from_overflow = false;
  return true;
}

void Engine::extract(bool from_overflow) {
  if (from_overflow) {
    heapPop(overflow_);
  } else {
    buckets_[base_ & kBucketMask].pop_back();
    --wheel_count_;
  }
}

bool Engine::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t slot = id.slot - 1;
  if (slot >= node_count_) return false;
  Node& n = node(slot);
  if (!n.armed || n.gen != id.gen) return false;
  n.armed = false;  // queue entry becomes a tombstone, reclaimed lazily
  n.fn.reset();
  --live_;
  ++cancelled_;
  return true;
}

// Fires the event in `entry` (already extracted from the queue).  The
// callback runs in place: node addresses are stable and the slot is not
// released until the callback returns, so reentrant at()/cancel() calls are
// safe and a self-cancel fails harmlessly (armed is already false).
void Engine::fire(const QEntry& entry) {
  now_ = entry.when;
  Node& n = node(entry.slot);
  n.armed = false;
  --live_;
  ++executed_;
#if defined(__cpp_exceptions)
  try {
    n.fn.invokeAndReset();
  } catch (...) {
    n.fn.reset();
    releaseNode(entry.slot);
    throw;
  }
#else
  n.fn.invokeAndReset();
#endif
  releaseNode(entry.slot);
}

bool Engine::step() {
  QEntry entry;
  bool from_overflow;
  if (!peekNext(entry, from_overflow)) return false;
  extract(from_overflow);
  fire(entry);
  return true;
}

SimTime Engine::run(SimTime until) {
  // Fused peek + extract + fire loop.  Equivalent to `while (step())` with
  // an `until` bound, but keeps the bucket reference and queue entry in
  // registers across the pop instead of re-deriving them per event.
  for (;;) {
    while (!overflow_.empty() && !node(overflow_.front().slot).armed) {
      releaseNode(overflow_.front().slot);
      heapPop(overflow_);
      ++dropped_tombstones_;
    }
    std::vector<QEntry>* bucket = nullptr;
    while (wheel_count_ > 0) {
      bucket = &buckets_[base_ & kBucketMask];
      if (!bucket->empty() && base_ != sorted_bucket_) {
        std::sort(bucket->begin(), bucket->end(), kLaterFirst);
        sorted_bucket_ = base_;
      }
      while (!bucket->empty() && !node(bucket->back().slot).armed) {
        releaseNode(bucket->back().slot);
        bucket->pop_back();
        --wheel_count_;
        ++dropped_tombstones_;
      }
      if (!bucket->empty()) break;
      bucket = nullptr;
      ++base_;
    }
    if (bucket == nullptr) {
      if (overflow_.empty()) break;  // queue exhausted
      const QEntry entry = overflow_.front();
      if (entry.when > until) break;
      // All activity lives beyond the horizon; jump the cursor so future
      // enqueues near this time land in the wheel again.
      const std::uint64_t idx =
          static_cast<std::uint64_t>(entry.when) >> kBucketShift;
      if (idx > base_) base_ = idx;
      heapPop(overflow_);
      fire(entry);
      continue;
    }
    const QEntry wheel_top = bucket->back();
    if (!overflow_.empty() && overflow_.front().firesBefore(wheel_top)) {
      const QEntry entry = overflow_.front();
      if (entry.when > until) break;
      heapPop(overflow_);
      fire(entry);
      continue;
    }
    if (wheel_top.when > until) break;
    bucket->pop_back();
    --wheel_count_;
    // Warm the next victim's node line while this callback runs.
    if (!bucket->empty()) __builtin_prefetch(&node(bucket->back().slot));
    fire(wheel_top);
  }
  if (now_ < until && until != INT64_MAX) now_ = until;
  return now_;
}

}  // namespace bcs::sim
