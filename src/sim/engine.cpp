#include "sim/engine.hpp"

#include <utility>

namespace bcs::sim {

EventId Engine::at(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    throw SimError("Engine::at: scheduling into the past (when=" +
                   formatTime(when) + ", now=" + formatTime(now_) + ")");
  }
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq});
  callbacks_.emplace(seq, std::move(fn));
  ++live_;
  return EventId{seq};
}

EventId Engine::after(Duration delay, std::function<void()> fn) {
  if (delay < 0) throw SimError("Engine::after: negative delay");
  return at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  auto it = callbacks_.find(id.seq);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_;
  return true;
}

bool Engine::step() {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    auto it = callbacks_.find(top.seq);
    if (it == callbacks_.end()) {
      heap_.pop();  // tombstone left by cancel()
      continue;
    }
    heap_.pop();
    now_ = top.when;
    // Move the callback out before erasing so that the callback may freely
    // schedule/cancel events (including re-entrantly growing callbacks_).
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    --live_;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

SimTime Engine::run(SimTime until) {
  while (!heap_.empty()) {
    // Peek past tombstones to find the next live event time.
    Entry top = heap_.top();
    if (callbacks_.find(top.seq) == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (top.when > until) break;
    step();
  }
  if (now_ < until && until != INT64_MAX) now_ = until;
  return now_;
}

}  // namespace bcs::sim
