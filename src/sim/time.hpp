#pragma once

// Simulated-time primitives for the bcssim discrete-event engine.
//
// All simulated time is kept in signed 64-bit nanoseconds.  A signed type is
// deliberate: durations are frequently subtracted and intermediate negative
// values must not wrap.  2^63 ns is ~292 years of simulated time, far beyond
// any experiment in this repository.

#include <cstdint>
#include <string>

namespace bcs::sim {

/// A point in simulated time, in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulated time, in nanoseconds.
using Duration = std::int64_t;

/// Nanoseconds (identity; exists for symmetry and call-site clarity).
constexpr Duration nsec(double n) { return static_cast<Duration>(n); }

/// Microseconds to nanoseconds.
constexpr Duration usec(double us) { return static_cast<Duration>(us * 1e3); }

/// Milliseconds to nanoseconds.
constexpr Duration msec(double ms) { return static_cast<Duration>(ms * 1e6); }

/// Seconds to nanoseconds.
constexpr Duration sec(double s) { return static_cast<Duration>(s * 1e9); }

/// Nanoseconds to microseconds (floating point, for reporting).
constexpr double toUsec(Duration d) { return static_cast<double>(d) / 1e3; }

/// Nanoseconds to milliseconds (floating point, for reporting).
constexpr double toMsec(Duration d) { return static_cast<double>(d) / 1e6; }

/// Nanoseconds to seconds (floating point, for reporting).
constexpr double toSec(Duration d) { return static_cast<double>(d) / 1e9; }

/// Human-readable rendering ("12.5 us", "3.2 ms", ...) for logs and traces.
std::string formatTime(SimTime t);

}  // namespace bcs::sim
