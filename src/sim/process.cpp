#include "sim/process.hpp"

#include <utility>

namespace bcs::sim {

Process::Process(Engine& engine, CpuScheduler& cpu, int node, std::string name,
                 Body body)
    : engine_(engine),
      cpu_(cpu),
      node_(node),
      name_(std::move(name)),
      body_(std::move(body)) {
  fiber_ = std::make_unique<Fiber>([this] { body_(*this); });
}

void Process::start(SimTime when) {
  engine_.at(when, [this] { resumeFromEngine(); });
}

void Process::resumeFromEngine() {
  if (!fiber_ || fiber_->finished()) return;
  fiber_->resume();
}

void Process::compute(Duration work) {
  if (work <= 0) return;
  total_compute_ += work;
  // Predicate loop, not a bare block(): a spurious wake() (e.g. a runtime
  // waking every blocked-or-not process at a slice boundary) may bank a
  // permit, and compute() must not return before its own task finished.
  bool done = false;
  current_task_ = cpu_.submit(work, CpuScheduler::Priority::kUser, [this, &done] {
    done = true;
    wake();
  });
  if (frozen_) cpu_.setRunnable(current_task_, false);
  try {
    while (!done) block();
  } catch (...) {
    // Forced unwind (FiberKilled): the completion callback captures this
    // frame, so it must not fire afterwards.
    cpu_.cancel(current_task_);
    current_task_ = CpuTaskId{};
    throw;
  }
  current_task_ = CpuTaskId{};
}

void Process::block() {
  if (permits_ > 0) {
    --permits_;
    return;
  }
  blocked_ = true;
  fiber_->yield();
}

void Process::wake() {
  if (blocked_) {
    blocked_ = false;
    engine_.at(engine_.now(), [this] { resumeFromEngine(); });
  } else {
    ++permits_;
  }
}

void Process::setComputeFrozen(bool frozen) {
  frozen_ = frozen;
  if (current_task_.valid()) cpu_.setRunnable(current_task_, !frozen);
}

}  // namespace bcs::sim
