#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace bcs::sim {

std::string formatTime(SimTime t) {
  char buf[64];
  const double abs_t = std::abs(static_cast<double>(t));
  if (abs_t < 1e3) {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(t));
  } else if (abs_t < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3f us", static_cast<double>(t) / 1e3);
  } else if (abs_t < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", static_cast<double>(t) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6f s", static_cast<double>(t) / 1e9);
  }
  return buf;
}

}  // namespace bcs::sim
