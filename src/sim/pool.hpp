#pragma once

// A freelist pool for byte-buffer payloads.
//
// Collective execution (and anything else shipping payload copies through
// the simulated fabric) used to allocate a fresh
// shared_ptr<vector<std::byte>> per hop; across thousands of slices that is
// pure allocator churn.  The pool hands out the same shared_ptr-based
// handles, but the control block's deleter returns the vector (capacity
// intact) to a freelist instead of freeing it.
//
// Lifetime: the freelist state is itself held by shared_ptr and captured by
// every deleter, so handles may outlive the pool object (events still queued
// in the engine when the owning Runtime dies drop their buffers safely —
// they just free instead of recycling once the pool is gone).

#include <cstddef>
#include <memory>
#include <vector>

namespace bcs::sim {

class PayloadPool {
 public:
  using Buffer = std::vector<std::byte>;
  using Ptr = std::shared_ptr<Buffer>;

  /// Retaining more spare buffers than any realistic fan-out needs just
  /// pins memory; beyond this the deleter lets buffers die normally.
  static constexpr std::size_t kMaxSpare = 64;

  PayloadPool() : state_(std::make_shared<State>()) {}

  /// An uninitialized (resized) buffer of `bytes` bytes.
  Ptr acquire(std::size_t bytes) {
    Buffer* raw = grab();
    raw->resize(bytes);
    return wrap(raw);
  }

  /// A buffer holding a copy of [data, data + bytes).
  Ptr acquire(const std::byte* data, std::size_t bytes) {
    Buffer* raw = grab();
    raw->assign(data, data + bytes);
    return wrap(raw);
  }

  std::size_t spareBuffers() const { return state_->spare.size(); }

 private:
  struct State {
    std::vector<std::unique_ptr<Buffer>> spare;
  };

  Buffer* grab() {
    if (state_->spare.empty()) return new Buffer();
    Buffer* raw = state_->spare.back().release();
    state_->spare.pop_back();
    return raw;
  }

  Ptr wrap(Buffer* raw) {
    return Ptr(raw, [st = state_](Buffer* b) {
      if (st->spare.size() < kMaxSpare) {
        b->clear();  // keeps capacity for the next acquire
        st->spare.emplace_back(b);
      } else {
        delete b;
      }
    });
  }

  std::shared_ptr<State> state_;
};

}  // namespace bcs::sim
