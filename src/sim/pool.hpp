#pragma once

// A freelist pool for byte-buffer payloads.
//
// Collective execution (and anything else shipping payload copies through
// the simulated fabric) used to allocate a fresh
// shared_ptr<vector<std::byte>> per hop; across thousands of slices that is
// pure allocator churn.  The pool hands out the same shared_ptr-based
// handles, but the control block's deleter returns the vector (capacity
// intact) to a freelist instead of freeing it.
//
// Thread model: under parallel execution every worker thread acquires and
// releases payloads, and a buffer acquired on one shard's worker is often
// released on another's after a cross-shard handoff.  The freelist is
// therefore striped: each stripe is an independently spin-locked freelist
// sitting on its own cache line, and a thread hashes to a home stripe once
// (thread_local), so the common same-thread acquire/release path never
// contends with other workers.  Spinlocks (not mutexes) because the
// critical section is a couple of pointer moves.
//
// Lifetime: the freelist state is itself held by shared_ptr and captured by
// every deleter, so handles may outlive the pool object (events still queued
// in the engine when the owning Runtime dies drop their buffers safely).
// The full post-mortem sequence, audited because it is easy to get wrong:
//   1. The pool object dies; `state_` drops one reference, but every live
//      handle's deleter still holds one, so State survives.
//   2. A handle released after that parks its buffer in the orphaned
//      State's stripe exactly as before — recycling still "works", the
//      buffer just has no pool left to hand it out again.
//   3. When the last handle dies, its deleter runs, then the captured
//      shared_ptr<State> releases the final reference; the stripes'
//      unique_ptrs free every parked buffer.  No step touches the dead
//      pool object, so there is no use-after-free window and no leak
//      (tests/test_sim.cpp pins this under the sanitize preset).
// The State keeps an atomic count of outstanding handles (liveHandles())
// so callers can observe the contract; every wrap() increments it and the
// deleter decrements it, whichever thread — or pool lifetime — the release
// happens under.

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

namespace bcs::sim {

class PayloadPool {
 public:
  using Buffer = std::vector<std::byte>;
  using Ptr = std::shared_ptr<Buffer>;

  /// Retaining more spare buffers than any realistic fan-out needs just
  /// pins memory; beyond this (per stripe) the deleter lets buffers die
  /// normally.
  static constexpr std::size_t kMaxSpare = 64;

  /// Power of two; comfortably more stripes than the engine runs workers,
  /// so two workers rarely share one even with an unlucky hash.
  static constexpr std::size_t kStripes = 8;

  PayloadPool() : state_(std::make_shared<State>()) {}

  /// An uninitialized (resized) buffer of `bytes` bytes.
  Ptr acquire(std::size_t bytes) {
    Buffer* raw = grab();
    raw->resize(bytes);
    return wrap(raw);
  }

  /// A buffer holding a copy of [data, data + bytes).
  Ptr acquire(const std::byte* data, std::size_t bytes) {
    Buffer* raw = grab();
    raw->assign(data, data + bytes);
    return wrap(raw);
  }

  /// Handles currently outstanding (acquired, deleter not yet run).  The
  /// count survives in the shared State, so it stays meaningful for
  /// handles that outlive the pool object.  Diagnostic use only.
  std::size_t liveHandles() const {
    return state_->live.load(std::memory_order_relaxed);
  }

  /// Total spare buffers across stripes.  Takes each stripe lock briefly;
  /// diagnostic use only.
  std::size_t spareBuffers() const {
    std::size_t total = 0;
    for (auto& stripe : state_->stripes) {
      LockGuard guard(stripe.busy);
      total += stripe.spare.size();
    }
    return total;
  }

 private:
  struct alignas(64) Stripe {
    mutable std::atomic_flag busy;  // default-initialized clear (C++20)
    std::vector<std::unique_ptr<Buffer>> spare;
  };

  struct State {
    Stripe stripes[kStripes];
    std::atomic<std::size_t> live{0};  // outstanding handles (see above)
  };

  struct LockGuard {
    explicit LockGuard(std::atomic_flag& flag) : flag_(flag) {
      while (flag_.test_and_set(std::memory_order_acquire)) {
        // Two pointer moves inside; spinning beats parking by a margin.
      }
    }
    ~LockGuard() { flag_.clear(std::memory_order_release); }
    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;
    std::atomic_flag& flag_;
  };

  static std::size_t homeStripe() {
    static thread_local const std::size_t home =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) %
        kStripes;
    return home;
  }

  Buffer* grab() {
    Stripe& stripe = state_->stripes[homeStripe()];
    {
      LockGuard guard(stripe.busy);
      if (!stripe.spare.empty()) {
        Buffer* raw = stripe.spare.back().release();
        stripe.spare.pop_back();
        return raw;
      }
    }
    return new Buffer();
  }

  Ptr wrap(Buffer* raw) {
    state_->live.fetch_add(1, std::memory_order_relaxed);
    return Ptr(raw, [st = state_](Buffer* b) {
      st->live.fetch_sub(1, std::memory_order_relaxed);
      Stripe& stripe = st->stripes[homeStripe()];
      {
        LockGuard guard(stripe.busy);
        if (stripe.spare.size() < kMaxSpare) {
          b->clear();  // keeps capacity for the next acquire
          stripe.spare.emplace_back(b);
          return;
        }
      }
      delete b;
    });
  }

  std::shared_ptr<State> state_;
};

}  // namespace bcs::sim
