#pragma once

// A freelist pool for byte-buffer payloads.
//
// Collective execution (and anything else shipping payload copies through
// the simulated fabric) used to allocate a fresh
// shared_ptr<vector<std::byte>> per hop; across thousands of slices that is
// pure allocator churn.  The pool hands out the same shared_ptr-based
// handles, but the control block's deleter returns the vector (capacity
// intact) to a freelist instead of freeing it.
//
// Thread model: under parallel execution every worker thread acquires and
// releases payloads, and a buffer acquired on one shard's worker is often
// released on another's after a cross-shard handoff.  The freelist is
// therefore striped: each stripe is an independently spin-locked freelist
// sitting on its own cache line, and a thread hashes to a home stripe once
// (thread_local), so the common same-thread acquire/release path never
// contends with other workers.  Spinlocks (not mutexes) because the
// critical section is a couple of pointer moves.
//
// Lifetime: the freelist state is itself held by shared_ptr and captured by
// every deleter, so handles may outlive the pool object (events still queued
// in the engine when the owning Runtime dies drop their buffers safely —
// they just free instead of recycling once the pool is gone).

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

namespace bcs::sim {

class PayloadPool {
 public:
  using Buffer = std::vector<std::byte>;
  using Ptr = std::shared_ptr<Buffer>;

  /// Retaining more spare buffers than any realistic fan-out needs just
  /// pins memory; beyond this (per stripe) the deleter lets buffers die
  /// normally.
  static constexpr std::size_t kMaxSpare = 64;

  /// Power of two; comfortably more stripes than the engine runs workers,
  /// so two workers rarely share one even with an unlucky hash.
  static constexpr std::size_t kStripes = 8;

  PayloadPool() : state_(std::make_shared<State>()) {}

  /// An uninitialized (resized) buffer of `bytes` bytes.
  Ptr acquire(std::size_t bytes) {
    Buffer* raw = grab();
    raw->resize(bytes);
    return wrap(raw);
  }

  /// A buffer holding a copy of [data, data + bytes).
  Ptr acquire(const std::byte* data, std::size_t bytes) {
    Buffer* raw = grab();
    raw->assign(data, data + bytes);
    return wrap(raw);
  }

  /// Total spare buffers across stripes.  Takes each stripe lock briefly;
  /// diagnostic use only.
  std::size_t spareBuffers() const {
    std::size_t total = 0;
    for (auto& stripe : state_->stripes) {
      LockGuard guard(stripe.busy);
      total += stripe.spare.size();
    }
    return total;
  }

 private:
  struct alignas(64) Stripe {
    mutable std::atomic_flag busy;  // default-initialized clear (C++20)
    std::vector<std::unique_ptr<Buffer>> spare;
  };

  struct State {
    Stripe stripes[kStripes];
  };

  struct LockGuard {
    explicit LockGuard(std::atomic_flag& flag) : flag_(flag) {
      while (flag_.test_and_set(std::memory_order_acquire)) {
        // Two pointer moves inside; spinning beats parking by a margin.
      }
    }
    ~LockGuard() { flag_.clear(std::memory_order_release); }
    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;
    std::atomic_flag& flag_;
  };

  static std::size_t homeStripe() {
    static thread_local const std::size_t home =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) %
        kStripes;
    return home;
  }

  Buffer* grab() {
    Stripe& stripe = state_->stripes[homeStripe()];
    {
      LockGuard guard(stripe.busy);
      if (!stripe.spare.empty()) {
        Buffer* raw = stripe.spare.back().release();
        stripe.spare.pop_back();
        return raw;
      }
    }
    return new Buffer();
  }

  Ptr wrap(Buffer* raw) {
    return Ptr(raw, [st = state_](Buffer* b) {
      Stripe& stripe = st->stripes[homeStripe()];
      {
        LockGuard guard(stripe.busy);
        if (stripe.spare.size() < kMaxSpare) {
          b->clear();  // keeps capacity for the next acquire
          stripe.spare.emplace_back(b);
          return;
        }
      }
      delete b;
    });
  }

  std::shared_ptr<State> state_;
};

}  // namespace bcs::sim
