#include "sim/fault.hpp"

#include <utility>

namespace bcs::sim {

std::string FaultPlan::describe() const {
  if (empty()) return "no faults";
  std::string out;
  auto append = [&out](std::string piece) {
    if (!out.empty()) out += ", ";
    out += std::move(piece);
  };
  if (drop_rate > 0) {
    append("drop " + std::to_string(drop_rate * 100.0) + "%");
  }
  if (degrade_rate > 0) {
    append("degrade " + std::to_string(degrade_rate * 100.0) + "% by " +
           formatTime(degrade_latency));
  }
  for (const NodeFault& f : node_faults) {
    const std::string who =
        f.node == kManagementNode ? "mgmt" : "n" + std::to_string(f.node);
    if (f.hang == 0) {
      append("crash " + who + " at " + formatTime(f.at));
    } else {
      append("hang " + who + " at " + formatTime(f.at) + " for " +
             formatTime(f.hang));
    }
  }
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), rng_(seed) {}

bool FaultInjector::shouldDrop(int, int) {
  if (plan_.drop_rate <= 0) return false;
  if (rng_.uniform() >= plan_.drop_rate) return false;
  ++stats_.drops;
  return true;
}

Duration FaultInjector::degradeExtra() {
  if (plan_.degrade_rate <= 0) return 0;
  if (rng_.uniform() >= plan_.degrade_rate) return 0;
  ++stats_.degrades;
  return plan_.degrade_latency;
}

void FaultInjector::forceDown(int node, SimTime at) {
  plan_.node_faults.push_back(FaultPlan::NodeFault{node, at, 0});
  ++stats_.forced_down;
}

bool FaultInjector::nodeDown(int node, SimTime now) const {
  for (const FaultPlan::NodeFault& f : plan_.node_faults) {
    if (f.node != node || now < f.at) continue;
    if (f.hang == 0 || now < f.at + f.hang) return true;
  }
  return false;
}

}  // namespace bcs::sim
