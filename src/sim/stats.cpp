#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace bcs::sim {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / buckets) {
  if (buckets <= 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: bad range/bucket count");
  }
  counts_.assign(static_cast<std::size_t>(buckets) + 2, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++counts_.front();
  } else if (x >= hi_) {
    ++counts_.back();
  } else {
    const auto b = static_cast<std::size_t>((x - lo_) / bucket_width_);
    ++counts_[1 + std::min(b, counts_.size() - 3)];
  }
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      if (i == 0) return lo_;
      if (i == counts_.size() - 1) return hi_;
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i - 1) + frac) * bucket_width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(int width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 1; i + 1 < counts_.size(); ++i) {
    const double b_lo = lo_ + static_cast<double>(i - 1) * bucket_width_;
    const int bar = static_cast<int>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) * width);
    std::snprintf(line, sizeof(line), "%12.3f | %-*s %llu\n", b_lo, width,
                  std::string(static_cast<std::size_t>(bar), '#').c_str(),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

}  // namespace bcs::sim
