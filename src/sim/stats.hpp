#pragma once

// Statistics accumulators used by benches and EXPERIMENTS.md tables.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace bcs::sim {

/// Streaming mean/variance (Welford) plus min/max.
class Accumulator {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void add(double x);
  std::uint64_t total() const { return total_; }

  /// Approximate quantile (0 <= q <= 1) by linear interpolation within the
  /// containing bucket.
  double quantile(double q) const;

  std::string render(int width = 50) const;  ///< ASCII art, for logs.

 private:
  double lo_, hi_, bucket_width_;
  std::vector<std::uint64_t> counts_;  // [under, b0..bn-1, over]
  std::uint64_t total_ = 0;
};

}  // namespace bcs::sim
