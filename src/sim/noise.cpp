#include "sim/noise.hpp"

namespace bcs::sim {

NoiseInjector::NoiseInjector(Engine& engine, CpuScheduler& cpu,
                             NoiseConfig config, std::uint64_t seed)
    : engine_(engine), cpu_(cpu), config_(config), rng_(seed) {}

void NoiseInjector::start(SimTime when) {
  running_ = true;
  Duration phase = 0;
  if (!config_.coordinated && config_.period > 0) {
    phase = static_cast<Duration>(
        rng_.uniform() * static_cast<double>(config_.period));
  }
  const SimTime first = when + phase;
  next_ = engine_.at(first < engine_.now() ? engine_.now() : first,
                     [this] { fire(); });
}

void NoiseInjector::stop() {
  running_ = false;
  if (next_.valid()) {
    engine_.cancel(next_);
    next_ = EventId{};
  }
}

void NoiseInjector::arm(Duration delay) {
  if (!running_) return;
  next_ = engine_.after(delay, [this] { fire(); });
}

void NoiseInjector::fire() {
  next_ = EventId{};
  if (!running_) return;
  ++activations_;
  cpu_.submit(config_.duration, CpuScheduler::Priority::kDaemon, nullptr);
  double period = static_cast<double>(config_.period);
  if (config_.jitter > 0) {
    period *= rng_.uniform(1.0 - config_.jitter, 1.0 + config_.jitter);
  }
  arm(static_cast<Duration>(period));
}

}  // namespace bcs::sim
