#pragma once

// Lightweight event tracing.
//
// The BCS paper argues that global coordination makes the system "much
// simpler to ... debug and model"; the trace facility is how this repository
// demonstrates that: every microstrobe, descriptor exchange, match and DMA
// can be recorded and asserted on in tests.  Tracing is off by default and
// costs one branch per record when disabled.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace bcs::sim {

enum class TraceCategory : std::uint8_t {
  kEngine,
  kCpu,
  kNet,
  kBcsCore,
  kStrobe,      // SS/SR microstrobes and microphase transitions
  kDescriptor,  // descriptor post/exchange/match
  kDma,         // point-to-point payload movement
  kCollective,  // CH/RH activity
  kStorm,       // MM/NM resource-management traffic
  kFault,       // injected faults, retransmissions, evictions, recovery
  kFailover,    // control-plane failover: watchdogs, elections, rejoins
  kVerify,      // protocol-verifier findings (src/verify)
  kApp,
  kRace,        // shard-ownership race-detector findings (src/race)
  kEpochRace,   // RMA epoch-race findings (src/verify, DESIGN.md §11)
};

const char* traceCategoryName(TraceCategory c);

struct TraceRecord {
  SimTime time;
  TraceCategory category;
  int node;  // -1 when not node-specific
  std::string message;
};

class Trace {
 public:
  /// Enables collection (optionally mirrored to stderr for live debugging).
  void enable(bool echo_to_stderr = false);
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  /// Records one entry.  Inside a parallel engine window (see
  /// Engine::run(ParallelPolicy)) the record is deferred into the worker's
  /// buffer and spliced into records_ at the next barrier in canonical
  /// event order, so the final record stream is byte-identical to a serial
  /// run.  The stderr echo, when enabled, happens at commit time.
  void record(SimTime t, TraceCategory cat, int node, std::string msg);

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Number of records matching a predicate — handy in protocol tests.
  std::size_t count(const std::function<bool(const TraceRecord&)>& pred) const;

  /// Renders all records as text ("[time] CATEGORY node: message").
  std::string dump() const;

 private:
  /// Commit thunk handed to the engine's deferral hook (type-erased so the
  /// engine translation unit never names Trace; see detail::TraceCommitFn).
  static void commitThunk(void* trace, SimTime t, std::uint8_t category,
                          int node, std::string&& msg);
  void append(SimTime t, TraceCategory cat, int node, std::string&& msg);

  bool enabled_ = false;
  bool echo_ = false;
  std::vector<TraceRecord> records_;
};

}  // namespace bcs::sim
