#pragma once

// Lightweight event tracing.
//
// The BCS paper argues that global coordination makes the system "much
// simpler to ... debug and model"; the trace facility is how this repository
// demonstrates that: every microstrobe, descriptor exchange, match and DMA
// can be recorded and asserted on in tests.  Tracing is off by default and
// costs one branch per record when disabled.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace bcs::sim {

enum class TraceCategory : std::uint8_t {
  kEngine,
  kCpu,
  kNet,
  kBcsCore,
  kStrobe,      // SS/SR microstrobes and microphase transitions
  kDescriptor,  // descriptor post/exchange/match
  kDma,         // point-to-point payload movement
  kCollective,  // CH/RH activity
  kStorm,       // MM/NM resource-management traffic
  kFault,       // injected faults, retransmissions, evictions, recovery
  kFailover,    // control-plane failover: watchdogs, elections, rejoins
  kVerify,      // protocol-verifier findings (src/verify)
  kApp,
};

const char* traceCategoryName(TraceCategory c);

struct TraceRecord {
  SimTime time;
  TraceCategory category;
  int node;  // -1 when not node-specific
  std::string message;
};

class Trace {
 public:
  /// Enables collection (optionally mirrored to stderr for live debugging).
  void enable(bool echo_to_stderr = false);
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void record(SimTime t, TraceCategory cat, int node, std::string msg);

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Number of records matching a predicate — handy in protocol tests.
  std::size_t count(const std::function<bool(const TraceRecord&)>& pred) const;

  /// Renders all records as text ("[time] CATEGORY node: message").
  std::string dump() const;

 private:
  bool enabled_ = false;
  bool echo_ = false;
  std::vector<TraceRecord> records_;
};

}  // namespace bcs::sim
