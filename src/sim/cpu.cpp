#include "sim/cpu.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace bcs::sim {

namespace {
// Completion times are computed in floating point; treat anything below this
// as "done now" to avoid re-arming zero-length events forever.
constexpr double kEpsilonNs = 1e-6;
}  // namespace

CpuScheduler::CpuScheduler(Engine& engine, int num_cpus)
    : engine_(engine), num_cpus_(num_cpus) {
  if (num_cpus <= 0) throw SimError("CpuScheduler: need at least one CPU");
}

double CpuScheduler::rateFor(const Task& t, int active_daemons,
                             int active_users) const {
  if (!t.runnable || t.remaining_ns <= 0) return 0.0;
  if (t.prio == Priority::kDaemon) {
    // Each dæmon gets up to a full CPU; if there are more dæmons than CPUs
    // they share all CPUs equally.
    return std::min(1.0, static_cast<double>(num_cpus_) / active_daemons);
  }
  const double cpus_for_daemons =
      std::min<double>(num_cpus_, active_daemons);
  const double cpus_left = num_cpus_ - cpus_for_daemons;
  if (cpus_left <= 0 || active_users == 0) return 0.0;
  return std::min(1.0, cpus_left / active_users);
}

void CpuScheduler::countActive(int& daemons, int& users) const {
  daemons = users = 0;
  for (const auto& [id, t] : tasks_) {
    if (!t.runnable || t.remaining_ns <= 0) continue;
    (t.prio == Priority::kDaemon ? daemons : users)++;
  }
}

void CpuScheduler::account() {
  // Credit service delivered since the last update at the *current* rates.
  // Must be called BEFORE any mutation of the task set, so newly added or
  // removed tasks never retroactively change past service.
  const SimTime now = engine_.now();
  int active_daemons = 0, active_users = 0;
  countActive(active_daemons, active_users);
  const double elapsed = static_cast<double>(now - last_update_);
  if (elapsed > 0) {
    for (auto& [id, t] : tasks_) {
      const double rate = rateFor(t, active_daemons, active_users);
      if (rate <= 0) continue;
      const double served = std::min(t.remaining_ns, rate * elapsed);
      t.remaining_ns -= served;
      if (t.prio == Priority::kUser) user_delivered_ += served;
    }
  }
  last_update_ = now;

  // Fire completions for tasks that have drained (tasks_ is id-ordered, so
  // the collected list already is too).
  std::vector<std::uint64_t> finished;
  for (auto& [id, t] : tasks_) {
    if (t.remaining_ns <= kEpsilonNs) finished.push_back(id);
  }
  for (std::uint64_t id : finished) {
    auto it = tasks_.find(id);
    std::function<void()> done = std::move(it->second.done);
    tasks_.erase(it);
    if (done) engine_.at(now, std::move(done));
  }
}

void CpuScheduler::rearm() {
  if (pending_completion_.valid()) {
    engine_.cancel(pending_completion_);
    pending_completion_ = EventId{};
  }
  int active_daemons = 0, active_users = 0;
  countActive(active_daemons, active_users);
  double soonest = std::numeric_limits<double>::infinity();
  for (const auto& [id, t] : tasks_) {
    const double rate = rateFor(t, active_daemons, active_users);
    if (rate <= 0) continue;
    soonest = std::min(soonest, t.remaining_ns / rate);
  }
  if (std::isfinite(soonest)) {
    const auto delay =
        static_cast<Duration>(std::ceil(std::max(soonest, 0.0)));
    pending_completion_ = engine_.after(delay, [this] {
      pending_completion_ = EventId{};
      account();
      rearm();
    });
  }
}

CpuTaskId CpuScheduler::submit(Duration work, Priority prio,
                               std::function<void()> done) {
  if (work < 0) throw SimError("CpuScheduler::submit: negative work");
  account();
  const std::uint64_t id = next_id_++;
  if (work == 0) {
    // Zero-length work completes immediately (deferred via the engine so
    // completion ordering stays consistent with nonzero tasks).
    if (done) engine_.at(engine_.now(), std::move(done));
    rearm();
    return CpuTaskId{id};
  }
  tasks_.emplace(id, Task{static_cast<double>(work), prio, /*runnable=*/true,
                          std::move(done)});
  rearm();
  return CpuTaskId{id};
}

void CpuScheduler::cancel(CpuTaskId id) {
  auto it = tasks_.find(id.id);
  if (it == tasks_.end()) return;
  account();
  tasks_.erase(id.id);  // account() may already have completed+erased it
  rearm();
}

void CpuScheduler::setRunnable(CpuTaskId id, bool runnable) {
  auto it = tasks_.find(id.id);
  if (it == tasks_.end()) return;
  if (it->second.runnable == runnable) return;
  account();
  it = tasks_.find(id.id);
  if (it != tasks_.end()) it->second.runnable = runnable;
  rearm();
}

Duration CpuScheduler::remaining(CpuTaskId id) const {
  auto it = tasks_.find(id.id);
  if (it == tasks_.end()) return 0;
  return static_cast<Duration>(std::ceil(it->second.remaining_ns));
}

int CpuScheduler::activeTasks() const {
  int n = 0;
  for (const auto& [id, t] : tasks_) {
    if (t.runnable && t.remaining_ns > 0) ++n;
  }
  return n;
}

}  // namespace bcs::sim
