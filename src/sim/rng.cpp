#include "sim/rng.hpp"

#include <cmath>

namespace bcs::sim {

double Rng::exponential(double mean) {
  // Inverse-CDF; guard the log argument away from zero.
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller transform.  One value per call keeps the generator stateless
  // with respect to caller interleaving (important for determinism when the
  // same Rng is shared by several model components).
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(6.28318530717958647692 * u2);
}

}  // namespace bcs::sim
