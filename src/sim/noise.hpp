#pragma once

// OS-noise injection.
//
// The paper's §4.5 notes that the user-level BCS-MPI prototype suffers from
// uncoordinated OS scheduling of the Node Manager dæmon, and cites the
// "missing supercomputer performance" effect [20]: periodic system dæmons
// steal the CPU for hundreds of microseconds and, when uncoordinated across
// nodes, their cost is amortized over *every* fine-grained compute step.
//
// NoiseInjector plants such a dæmon on a node: every `period` (with optional
// per-node phase and jitter) it grabs one CPU for `duration`.  The
// bench_ablation_noise harness uses it to show why *coscheduling* the system
// activities — BCS's central idea — matters.

#include <cstdint>

#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace bcs::sim {

struct NoiseConfig {
  Duration period = msec(10);    ///< Mean time between dæmon activations.
  Duration duration = usec(500); ///< CPU time consumed per activation.
  double jitter = 0.1;           ///< Fractional uniform jitter on the period.
  /// When true, all nodes fire in phase (coordinated/coscheduled dæmons —
  /// the cure the paper proposes); when false each node gets a random phase
  /// (the pathological case).
  bool coordinated = false;
};

class NoiseInjector {
 public:
  NoiseInjector(Engine& engine, CpuScheduler& cpu, NoiseConfig config,
                std::uint64_t seed);

  /// Begins injecting at time `when` (plus per-node phase if uncoordinated).
  void start(SimTime when);

  /// Stops scheduling further activations (a running one finishes).
  void stop();

  std::uint64_t activations() const { return activations_; }

 private:
  void fire();
  void arm(Duration delay);

  Engine& engine_;
  CpuScheduler& cpu_;
  NoiseConfig config_;
  Rng rng_;
  bool running_ = false;
  EventId next_{};
  std::uint64_t activations_ = 0;
};

}  // namespace bcs::sim
