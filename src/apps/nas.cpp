#include "apps/nas.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/engine.hpp"

namespace bcs::apps {

namespace {

/// Ring-offset neighbour list (same shape as the synthetic benchmark).
std::vector<int> ringNeighbors(int rank, int size, int count) {
  std::vector<int> peers;
  for (int k = 0; k < count; ++k) {
    const int off = k / 2 + 1;
    peers.push_back((k % 2 == 0) ? (rank + off) % size
                                 : (rank + size - off) % size);
  }
  return peers;
}

/// Non-blocking halo exchange with `peers`; returns a delivery checksum.
double haloExchange(mpi::Comm& comm, const std::vector<int>& peers,
                    std::size_t bytes, int tag) {
  std::vector<std::vector<std::uint8_t>> out(peers.size()), in(peers.size());
  std::vector<mpi::Request> reqs;
  reqs.reserve(2 * peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    out[i].assign(bytes, static_cast<std::uint8_t>(
                             (comm.rank() * 37 + tag) & 0xFF));
    in[i].resize(bytes);
    reqs.push_back(comm.irecv(in[i].data(), bytes, peers[i], tag));
  }
  for (std::size_t i = 0; i < peers.size(); ++i) {
    reqs.push_back(comm.isend(out[i].data(), bytes, peers[i], tag));
  }
  comm.waitall(reqs);
  double sum = 0;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (in[i][0] != static_cast<std::uint8_t>((peers[i] * 37 + tag) & 0xFF)) {
      throw sim::SimError("haloExchange: corrupted halo");
    }
    sum += static_cast<double>(in[i][bytes / 2]);
  }
  return sum;
}

}  // namespace

double nasIS(mpi::Comm& comm, const IsConfig& cfg) {
  const int P = comm.size();
  const auto per_peer = cfg.bytes_per_peer;
  std::vector<std::uint8_t> send_keys(per_peer * static_cast<std::size_t>(P));
  std::vector<std::uint8_t> recv_keys(per_peer * static_cast<std::size_t>(P));
  double checksum = 0;
  for (int it = 0; it < cfg.iterations; ++it) {
    // Local ranking of keys.
    comm.compute(cfg.compute_per_iteration);
    // Key redistribution: the all-to-all that dominates IS communication.
    for (int d = 0; d < P; ++d) {
      send_keys[static_cast<std::size_t>(d) * per_peer] =
          static_cast<std::uint8_t>((comm.rank() + d + it) & 0xFF);
    }
    comm.alltoall(send_keys.data(), per_peer, recv_keys.data());
    for (int s = 0; s < P; ++s) {
      const auto v = recv_keys[static_cast<std::size_t>(s) * per_peer];
      if (v != static_cast<std::uint8_t>((s + comm.rank() + it) & 0xFF)) {
        throw sim::SimError("nasIS: bad key block");
      }
      checksum += v;
    }
    // Verification allreduce over the key counts.
    checksum += static_cast<double>(comm.allreduceOne(
        static_cast<std::int64_t>(comm.rank() + it), mpi::ReduceOp::kSum));
  }
  return checksum;
}

double nasEP(mpi::Comm& comm, const EpConfig& cfg) {
  for (int c = 0; c < cfg.compute_chunks; ++c) {
    comm.compute(cfg.total_compute / cfg.compute_chunks);
  }
  // Gaussian-pair counts: three small allreduces (sx, sy, counts).
  double checksum = 0;
  checksum += comm.allreduceOne(0.5 * (comm.rank() + 1), mpi::ReduceOp::kSum);
  checksum += comm.allreduceOne(1.5 * (comm.rank() + 1), mpi::ReduceOp::kSum);
  checksum += static_cast<double>(comm.allreduceOne(
      static_cast<std::int64_t>(comm.rank()), mpi::ReduceOp::kMax));
  return checksum;
}

double nasCG(mpi::Comm& comm, const CgConfig& cfg) {
  const int P = comm.size();
  const int me = comm.rank();
  std::vector<std::uint8_t> out(cfg.exchange_bytes), in(cfg.exchange_bytes);
  double checksum = 0;
  for (int it = 0; it < cfg.iterations; ++it) {
    comm.compute(cfg.compute_per_iteration);
    // Consecutive blocking transpose exchanges (q <- A.p): partner flips a
    // different bit each round; even ranks send first, odd receive first,
    // so the blocking pair never deadlocks.
    for (int round = 0; round < cfg.exchange_rounds; ++round) {
      int partner = me ^ (1 << round);
      if (partner >= P) partner = me;  // edge of a non-power-of-two grid
      if (partner == me) continue;
      out.assign(cfg.exchange_bytes,
                 static_cast<std::uint8_t>((me + it + round) & 0xFF));
      if (((me >> round) & 1) == 0) {
        comm.send(out.data(), out.size(), partner, round);
        comm.recv(in.data(), in.size(), partner, round);
      } else {
        comm.recv(in.data(), in.size(), partner, round);
        comm.send(out.data(), out.size(), partner, round);
      }
      if (in[0] !=
          static_cast<std::uint8_t>((partner + it + round) & 0xFF)) {
        throw sim::SimError("nasCG: bad exchange");
      }
      checksum += in[0];
    }
    // Two dot-product allreduces per iteration (rho, alpha denominators).
    checksum += comm.allreduceOne(1e-3 * (me + it), mpi::ReduceOp::kSum);
    checksum += comm.allreduceOne(2e-3 * (me - it), mpi::ReduceOp::kSum);
  }
  return checksum;
}

double nasMG(mpi::Comm& comm, const MgConfig& cfg) {
  const auto peers = ringNeighbors(comm.rank(), comm.size(), 4);
  double checksum = 0;
  for (int cycle = 0; cycle < cfg.cycles; ++cycle) {
    // Down-sweep then up-sweep of the V-cycle: compute and halo size halve
    // with each coarser level.
    for (int pass = 0; pass < 2; ++pass) {
      for (int l = 0; l < cfg.levels; ++l) {
        const int level = (pass == 0) ? l : cfg.levels - 1 - l;
        comm.compute(cfg.compute_top_level >> level);
        const std::size_t halo =
            std::max<std::size_t>(cfg.halo_top_bytes >> level, 256);
        checksum += haloExchange(comm, peers, halo,
                                 cycle * 2 * cfg.levels + pass * cfg.levels +
                                     level);
      }
    }
    checksum +=
        comm.allreduceOne(1e-6 * comm.rank() + cycle, mpi::ReduceOp::kMax);
  }
  return checksum;
}

double sage(mpi::Comm& comm, const SageConfig& cfg) {
  const auto peers = ringNeighbors(comm.rank(), comm.size(), cfg.neighbors);
  double checksum = 0;
  for (int step = 0; step < cfg.steps; ++step) {
    // Adaptive-mesh compute step...
    comm.compute(cfg.compute_per_step);
    // ...gather/scatter of ghost cells with non-blocking operations...
    checksum += haloExchange(comm, peers, cfg.halo_bytes, step);
    // ...and the global reduction closing every compute step (§5.3).
    checksum += comm.allreduceOne(1e-3 * (comm.rank() + step),
                                  mpi::ReduceOp::kSum);
  }
  return checksum;
}

}  // namespace bcs::apps
