#pragma once

// Dynamic loop self-scheduling on one-sided RMA (DESIGN.md §11).
//
// A job shares `chunks` independent loop iterations whose cost ramps
// linearly (chunk 0 cheapest, chunk N-1 up to `cost_ramp`× dearer) — the
// classic irregular-loop shape where a static block partition leaves the
// high-index ranks working long after the low-index ranks went idle.
//
// Two schedulers over the same iteration space:
//
//   * selfSchedule — idle ranks *steal* the next chunk index with
//     bcs_fetch_add on a shared counter homed in a window on rank 0.  No
//     master rank, no request/reply rendezvous: one remote atomic per
//     claim, resolved inside the target's MSM microphase in canonical rank
//     order, so the chunk→owner map is deterministic (serial ≡ parallel).
//     Requires a BcsComm (the counter lives in NIC-homed window memory).
//
//   * staticSchedule — block partition, no communication during the loop.
//     Runs on any mpi::Comm; the bench pairs it with the baseline
//     rendezvous runtime as the comparison point.
//
// Both finish with an allreduce of the chunk→owner map, so every rank
// returns the same digest and the property tests can check conservation
// (every chunk executed exactly once) even under a fault soup.

#include <cstdint>
#include <vector>

#include "mpi/comm.hpp"
#include "sim/time.hpp"

namespace bcs::apps {

struct SelfSchedConfig {
  int chunks = 256;        ///< loop iterations to distribute
  int chunk_batch = 1;     ///< indices claimed per fetch-add
  sim::Duration base_cost = sim::usec(200);  ///< cost of chunk 0
  double cost_ramp = 4.0;  ///< chunk N-1 costs base_cost * cost_ramp
};

struct SelfSchedResult {
  /// Chunk indices this rank executed, in execution order.
  std::vector<int> chunks;
  /// FNV-1a over the global chunk→owner map (identical on every rank that
  /// completed the final allreduce; 0 if the job degraded before it).
  std::uint64_t digest = 0;
  /// Entries of the global owner map: owners[c] == rank that ran chunk c,
  /// or -1 if it was never claimed (counter owner crashed mid-loop).
  std::vector<int> owners;
};

/// Per-chunk cost under the linear ramp (shared by both schedulers).
sim::Duration chunkCost(const SelfSchedConfig& cfg, int chunk);

/// Work-stealing scheduler on bcs_fetch_add.  `comm` must be a BcsComm.
SelfSchedResult selfSchedule(mpi::Comm& comm, const SelfSchedConfig& cfg);

/// Static block partition over the same cost ramp (baseline comparator).
SelfSchedResult staticSchedule(mpi::Comm& comm, const SelfSchedConfig& cfg);

}  // namespace bcs::apps
