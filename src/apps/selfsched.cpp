#include "apps/selfsched.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "bcsmpi/comm.hpp"
#include "sim/engine.hpp"

namespace bcs::apps {

namespace {

std::uint64_t fnv1a(const std::vector<int>& v) {
  std::uint64_t h = 1469598103934665603ULL;
  for (int x : v) {
    for (int b = 0; b < 4; ++b) {
      h ^= static_cast<std::uint64_t>((static_cast<std::uint32_t>(x) >>
                                       (8 * b)) &
                                      0xff);
      h *= 1099511628211ULL;
    }
  }
  return h;
}

// Merge the per-rank claim map into a global chunk→owner map + digest.
// Encoding claims as rank+1 keeps "unclaimed" (0) distinct from rank 0.
void mergeOwners(mpi::Comm& comm, const SelfSchedConfig& cfg,
                 SelfSchedResult& out) {
  std::vector<std::int64_t> mine(static_cast<std::size_t>(cfg.chunks), 0);
  for (int c : out.chunks) mine[static_cast<std::size_t>(c)] = comm.rank() + 1;
  std::vector<std::int64_t> all(static_cast<std::size_t>(cfg.chunks), 0);
  comm.allreduce(mine.data(), all.data(), mine.size(),
                 mpi::Datatype::kInt64, mpi::ReduceOp::kSum);
  out.owners.resize(static_cast<std::size_t>(cfg.chunks));
  for (std::size_t c = 0; c < all.size(); ++c) {
    out.owners[c] = static_cast<int>(all[c]) - 1;
  }
  out.digest = fnv1a(out.owners);
}

}  // namespace

sim::Duration chunkCost(const SelfSchedConfig& cfg, int chunk) {
  const double span = cfg.chunks > 1 ? static_cast<double>(cfg.chunks - 1)
                                     : 1.0;
  const double factor =
      1.0 + (cfg.cost_ramp - 1.0) * static_cast<double>(chunk) / span;
  return static_cast<sim::Duration>(
      std::llround(static_cast<double>(cfg.base_cost) * factor));
}

SelfSchedResult selfSchedule(mpi::Comm& comm, const SelfSchedConfig& cfg) {
  auto* bcs = dynamic_cast<bcsmpi::BcsComm*>(&comm);
  if (!bcs) {
    throw sim::SimError(
        "selfSchedule needs a BcsComm (the chunk counter lives in a "
        "one-sided window); use staticSchedule on other runtimes");
  }
  bcsmpi::BcsApi& api = bcs->api();
  SelfSchedResult out;

  // Rank 0 homes the shared chunk counter.  The leading barrier orders
  // window registration before the first steal; the trailing one keeps the
  // counter's storage alive until every remote fetch-add has returned.
  std::int64_t counter = 0;
  bcsmpi::BcsWindow win{};
  if (comm.rank() == 0) win = api.winCreate(&counter, sizeof(counter));
  comm.barrier();
  int win_id = win.id;
  comm.bcast(&win_id, sizeof(win_id), /*root=*/0);
  win.id = win_id;

  const int batch = std::max(1, cfg.chunk_batch);
  while (true) {
    mpi::Status st;
    const std::int64_t start =
        api.fetchAdd(/*target=*/0, win, /*offset=*/0, batch, &st);
    if (st.error != mpi::kSuccess) break;  // counter owner unreachable
    if (start >= cfg.chunks) break;
    const std::int64_t end =
        std::min<std::int64_t>(start + batch, cfg.chunks);
    for (std::int64_t c = start; c < end; ++c) {
      comm.compute(chunkCost(cfg, static_cast<int>(c)));
      out.chunks.push_back(static_cast<int>(c));
    }
  }
  comm.barrier();
  mergeOwners(comm, cfg, out);
  return out;
}

SelfSchedResult staticSchedule(mpi::Comm& comm, const SelfSchedConfig& cfg) {
  SelfSchedResult out;
  const int size = comm.size();
  const int lo = static_cast<int>(
      static_cast<std::int64_t>(cfg.chunks) * comm.rank() / size);
  const int hi = static_cast<int>(
      static_cast<std::int64_t>(cfg.chunks) * (comm.rank() + 1) / size);
  for (int c = lo; c < hi; ++c) {
    comm.compute(chunkCost(cfg, c));
    out.chunks.push_back(c);
  }
  comm.barrier();
  mergeOwners(comm, cfg, out);
  return out;
}

}  // namespace bcs::apps
