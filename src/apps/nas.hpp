#pragma once

// Communication skeletons of the NAS Parallel Benchmarks used in §5.3
// (NPB 2.4, class C): IS, EP, CG, MG.  LU lives in wavefront.hpp.
//
// Each skeleton reproduces the documented communication pattern and
// granularity of the original code; the numerical work is replaced by
// calibrated virtual compute time plus a small amount of real arithmetic
// whose checksum validates message delivery across MPI implementations.

#include <cstddef>

#include "mpi/comm.hpp"
#include "sim/time.hpp"

namespace bcs::apps {

/// IS — Integer Sort: bucket sort of integer keys.  Coarse-grained; per
/// iteration an all-to-all(v) key redistribution plus small allreduces.
struct IsConfig {
  int iterations = 10;
  sim::Duration compute_per_iteration = sim::msec(1050);
  std::size_t bytes_per_peer = 32 * 1024;  ///< key exchange volume / peer
};
double nasIS(mpi::Comm& comm, const IsConfig& cfg);

/// EP — Embarrassingly Parallel: pure computation, three small allreduces
/// at the end.
struct EpConfig {
  sim::Duration total_compute = sim::sec(20.2);
  int compute_chunks = 16;  ///< granularity of progress (no communication)
};
double nasEP(mpi::Comm& comm, const EpConfig& cfg);

/// CG — Conjugate Gradient: per iteration, consecutive *blocking* transpose
/// exchanges (the paper's explanation for CG's slowdown) plus dot-product
/// allreduces.
struct CgConfig {
  int iterations = 75;
  sim::Duration compute_per_iteration = sim::msec(170);
  std::size_t exchange_bytes = 16 * 1024;
  int exchange_rounds = 2;  ///< consecutive blocking send/recv rounds
};
double nasCG(mpi::Comm& comm, const CgConfig& cfg);

/// MG — Multigrid: V-cycles over grid levels; nearest-neighbour halo
/// exchanges (non-blocking) whose message size shrinks with the level,
/// plus one allreduce per cycle.
struct MgConfig {
  int cycles = 40;
  int levels = 5;
  sim::Duration compute_top_level = sim::msec(200);  ///< halves per level
  std::size_t halo_top_bytes = 32 * 1024;            ///< halves per level
};
double nasMG(mpi::Comm& comm, const MgConfig& cfg);

/// SAGE (SAIC's Adaptive Grid Eulerian hydrocode), timing.input: medium
/// granularity, non-blocking nearest-neighbour exchange + one small reduce
/// per compute step (§5.3).
struct SageConfig {
  int steps = 24;
  sim::Duration compute_per_step = sim::msec(260);
  std::size_t halo_bytes = 48 * 1024;
  int neighbors = 4;
};
double sage(mpi::Comm& comm, const SageConfig& cfg);

}  // namespace bcs::apps
