#include "apps/synthetic.hpp"

#include <vector>

namespace bcs::apps {

sim::Duration syntheticBarrier(mpi::Comm& comm,
                               const SyntheticBarrierConfig& cfg) {
  comm.barrier();  // align everyone before measuring
  const sim::SimTime t0 = comm.now();
  for (int i = 0; i < cfg.iterations; ++i) {
    comm.compute(cfg.granularity);
    comm.barrier();
  }
  return comm.now() - t0;
}

sim::Duration syntheticNeighbor(mpi::Comm& comm,
                                const SyntheticNeighborConfig& cfg) {
  const int P = comm.size();
  const int me = comm.rank();
  // Neighbour k of rank r is r +- (k/2 + 1) around the ring — a standard
  // stand-in for a stencil when P is not a perfect grid.
  std::vector<int> peers;
  for (int k = 0; k < cfg.neighbors; ++k) {
    const int off = k / 2 + 1;
    peers.push_back((k % 2 == 0) ? (me + off) % P : (me + P - off) % P);
  }
  std::vector<std::vector<char>> out(peers.size()), in(peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    out[i].assign(cfg.message_bytes, static_cast<char>(me));
    in[i].resize(cfg.message_bytes);
  }

  comm.barrier();
  const sim::SimTime t0 = comm.now();
  for (int it = 0; it < cfg.iterations; ++it) {
    comm.compute(cfg.granularity);
    std::vector<mpi::Request> reqs;
    reqs.reserve(2 * peers.size());
    for (std::size_t i = 0; i < peers.size(); ++i) {
      reqs.push_back(comm.irecv(in[i].data(), in[i].size(), peers[i], it));
    }
    for (std::size_t i = 0; i < peers.size(); ++i) {
      reqs.push_back(comm.isend(out[i].data(), out[i].size(), peers[i], it));
    }
    comm.waitall(reqs);
  }
  return comm.now() - t0;
}

}  // namespace bcs::apps
