#pragma once

// Generic 2D wavefront (pipelined sweep) engine.
//
// SWEEP3D — "the core of a widely used method of solving the Boltzmann
// transport equation" (§5.4) — and the NPB LU solver both follow this
// pattern: processes form a 2D grid; a sweep starts at one corner and
// ripples diagonally; within a sweep each process handles `blocks`
// independent k-blocks (pipelined angles), receiving boundary data from two
// upstream neighbours and forwarding downstream after computing.
//
// Two communication styles, matching the paper's experiment:
//   * blocking  — MPI_Send/MPI_Recv per block, the original SWEEP3D style
//     that loses ~30% under BCS-MPI (every blocking call aligns to the
//     slice grid);
//   * non-blocking — the paper's <50-line rewrite: pre-posted MPI_Irecv,
//     MPI_Isend downstream, MPI_Waitall at sweep end.  Transfers of block
//     b+1 overlap the computation of block b, hiding the slice latency.

#include <cstddef>

#include "mpi/comm.hpp"
#include "sim/time.hpp"

namespace bcs::apps {

struct WavefrontConfig {
  int px = 0;  ///< process grid (0 = choose near-square factorization)
  int py = 0;
  int sweeps = 8;    ///< corner-alternating sweeps per iteration (octants)
  int iterations = 1;
  int blocks = 8;    ///< pipelined k-blocks per sweep
  sim::Duration block_compute = sim::usec(437);  ///< 3.5 ms / 8 blocks
  std::size_t message_bytes = 2048;
  bool blocking = true;
};

/// Near-square factorization helper (largest divisor pair).
void gridShape(int nprocs, int& px, int& py);

/// Runs the wavefront; returns a checksum over all received boundary data
/// (bitwise identical across MPI implementations — used for validation).
double wavefront(mpi::Comm& comm, const WavefrontConfig& cfg);

/// SWEEP3D skeleton: fine-grained wavefront, ~3.5 ms per compute step
/// (§5.4), blocking or non-blocking flavour.
struct Sweep3dConfig {
  int time_steps = 10;  ///< outer (source-iteration) steps
  int sweeps_per_step = 4;  ///< corner pairs (octants grouped per axis)
  int blocks = 8;       ///< pipelined k-blocks (angle batches) per sweep
  /// Compute per wavefront step — "each compute step takes ~3.5 ms" and is
  /// surrounded by the four neighbour messages (§5.4).
  sim::Duration step_compute = sim::msec(3.5);
  std::size_t message_bytes = 2560;
  bool blocking = true;
};
double sweep3d(mpi::Comm& comm, const Sweep3dConfig& cfg);

/// NPB LU skeleton: SSOR iterations, each a forward + backward wavefront
/// with medium-grained blocks and blocking communication (§5.3: "several
/// consecutive blocking calls inside a loop").
struct LuConfig {
  int iterations = 40;
  int blocks = 6;
  sim::Duration block_compute = sim::msec(12);
  std::size_t message_bytes = 4096;
};
double nasLU(mpi::Comm& comm, const LuConfig& cfg);

}  // namespace bcs::apps
