#include "apps/wavefront.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/engine.hpp"

namespace bcs::apps {

void gridShape(int nprocs, int& px, int& py) {
  px = 1;
  for (int d = 1; d * d <= nprocs; ++d) {
    if (nprocs % d == 0) px = d;
  }
  py = nprocs / px;
}

namespace {

/// Deterministic payload byte: the same on sender and receiver, so the
/// receiver-side checksum is comparable across MPI implementations.
std::uint8_t payloadByte(int from_rank, int sweep, int block, std::size_t i) {
  return static_cast<std::uint8_t>(
      (static_cast<std::size_t>(from_rank) * 131 +
       static_cast<std::size_t>(sweep) * 17 +
       static_cast<std::size_t>(block) * 7 + i * 3) &
      0xFF);
}

struct GridPos {
  int x, y, px, py, rank;
  int at(int dx, int dy) const {
    const int nx = x + dx, ny = y + dy;
    if (nx < 0 || nx >= px || ny < 0 || ny >= py) return -1;
    return ny * px + nx;
  }
};

}  // namespace

double wavefront(mpi::Comm& comm, const WavefrontConfig& cfg) {
  int px = cfg.px, py = cfg.py;
  if (px <= 0 || py <= 0) gridShape(comm.size(), px, py);
  const GridPos pos{comm.rank() % px, comm.rank() / px, px, py, comm.rank()};

  double checksum = 0;
  std::vector<std::uint8_t> w_in(cfg.message_bytes), n_in(cfg.message_bytes);
  std::vector<std::uint8_t> e_out(cfg.message_bytes), s_out(cfg.message_bytes);

  for (int iter = 0; iter < cfg.iterations; ++iter) {
    for (int sweep = 0; sweep < cfg.sweeps; ++sweep) {
      // Alternate the sweep corner: even sweeps go NW->SE, odd SE->NW
      // (the upstream/downstream roles flip).
      const int dir = (sweep % 2 == 0) ? 1 : -1;
      const int up_w = pos.at(-dir, 0);
      const int up_n = pos.at(0, -dir);
      const int dn_e = pos.at(dir, 0);
      const int dn_s = pos.at(0, dir);
      const int tag_base = (iter * cfg.sweeps + sweep) * 4 * cfg.blocks;

      auto fill_out = [&](int block) {
        for (std::size_t i = 0; i < cfg.message_bytes; ++i) {
          e_out[i] = payloadByte(pos.rank, sweep, block, i);
          s_out[i] = payloadByte(pos.rank, sweep, block, i + 1);
        }
      };
      auto absorb = [&](const std::vector<std::uint8_t>& buf, int from,
                        int block, std::size_t shift) {
        if (from < 0) return;
        // Spot-check a few bytes into the checksum (cheap but sensitive).
        checksum += static_cast<double>(buf[0]) +
                    static_cast<double>(buf[cfg.message_bytes / 2]);
        if (buf[0] != payloadByte(from, sweep, block, shift)) {
          throw sim::SimError("wavefront: corrupted boundary data");
        }
      };

      if (cfg.blocking) {
        for (int b = 0; b < cfg.blocks; ++b) {
          const int tag = tag_base + 4 * b;
          if (up_w >= 0) comm.recv(w_in.data(), w_in.size(), up_w, tag);
          if (up_n >= 0) comm.recv(n_in.data(), n_in.size(), up_n, tag + 1);
          absorb(w_in, up_w, b, 0);
          absorb(n_in, up_n, b, 1);
          comm.compute(cfg.block_compute);
          fill_out(b);
          if (dn_e >= 0) comm.send(e_out.data(), e_out.size(), dn_e, tag);
          if (dn_s >= 0) comm.send(s_out.data(), s_out.size(), dn_s, tag + 1);
        }
      } else {
        // Non-blocking rewrite: pre-post all receives of the sweep, overlap
        // downstream sends with the next block's computation, wait for all
        // sends at sweep end.
        std::vector<std::vector<std::uint8_t>> w_bufs, n_bufs;
        std::vector<mpi::Request> w_reqs(static_cast<std::size_t>(cfg.blocks));
        std::vector<mpi::Request> n_reqs(static_cast<std::size_t>(cfg.blocks));
        w_bufs.resize(static_cast<std::size_t>(cfg.blocks));
        n_bufs.resize(static_cast<std::size_t>(cfg.blocks));
        for (int b = 0; b < cfg.blocks; ++b) {
          const int tag = tag_base + 4 * b;
          if (up_w >= 0) {
            w_bufs[static_cast<std::size_t>(b)].resize(cfg.message_bytes);
            w_reqs[static_cast<std::size_t>(b)] =
                comm.irecv(w_bufs[static_cast<std::size_t>(b)].data(),
                           cfg.message_bytes, up_w, tag);
          }
          if (up_n >= 0) {
            n_bufs[static_cast<std::size_t>(b)].resize(cfg.message_bytes);
            n_reqs[static_cast<std::size_t>(b)] =
                comm.irecv(n_bufs[static_cast<std::size_t>(b)].data(),
                           cfg.message_bytes, up_n, tag + 1);
          }
        }
        std::vector<mpi::Request> send_reqs;
        std::vector<std::vector<std::uint8_t>> e_bufs, s_bufs;
        e_bufs.resize(static_cast<std::size_t>(cfg.blocks));
        s_bufs.resize(static_cast<std::size_t>(cfg.blocks));
        for (int b = 0; b < cfg.blocks; ++b) {
          const int tag = tag_base + 4 * b;
          const auto bi = static_cast<std::size_t>(b);
          comm.wait(w_reqs[bi]);
          comm.wait(n_reqs[bi]);
          if (up_w >= 0) absorb(w_bufs[bi], up_w, b, 0);
          if (up_n >= 0) absorb(n_bufs[bi], up_n, b, 1);
          comm.compute(cfg.block_compute);
          fill_out(b);
          if (dn_e >= 0) {
            e_bufs[bi] = e_out;
            send_reqs.push_back(
                comm.isend(e_bufs[bi].data(), cfg.message_bytes, dn_e, tag));
          }
          if (dn_s >= 0) {
            s_bufs[bi] = s_out;
            send_reqs.push_back(
                comm.isend(s_bufs[bi].data(), cfg.message_bytes, dn_s,
                           tag + 1));
          }
        }
        comm.waitall(send_reqs);
      }
    }
  }
  return checksum;
}

double sweep3d(mpi::Comm& comm, const Sweep3dConfig& cfg) {
  WavefrontConfig w;
  w.sweeps = cfg.sweeps_per_step;
  w.iterations = cfg.time_steps;
  w.blocks = cfg.blocks;
  w.block_compute = cfg.step_compute;
  w.message_bytes = cfg.message_bytes;
  w.blocking = cfg.blocking;
  return wavefront(comm, w);
}

double nasLU(mpi::Comm& comm, const LuConfig& cfg) {
  // SSOR: forward sweep (lower triangular) + backward sweep per iteration,
  // always with blocking communication (the paper's point about LU).
  WavefrontConfig w;
  w.sweeps = 2;
  w.iterations = cfg.iterations;
  w.blocks = cfg.blocks;
  w.block_compute = cfg.block_compute;
  w.message_bytes = cfg.message_bytes;
  w.blocking = true;
  return wavefront(comm, w);
}

}  // namespace bcs::apps
