#pragma once

// The two synthetic benchmarks of paper §5.2.
//
// Many scientific codes are bulk-synchronous [Valiant'90]: compute for a
// granularity g, then either globally synchronize or exchange messages with
// a nearest-neighbour stencil.  Figure 8 sweeps the granularity and the
// number of processes for both patterns.

#include <cstddef>

#include "mpi/comm.hpp"
#include "sim/time.hpp"

namespace bcs::apps {

struct SyntheticBarrierConfig {
  sim::Duration granularity = sim::msec(10);
  int iterations = 50;
};

/// Compute-then-barrier loop (Figure 8 a/b).  Returns the per-rank elapsed
/// time of the measured loop (init excluded).
sim::Duration syntheticBarrier(mpi::Comm& comm,
                               const SyntheticBarrierConfig& cfg);

struct SyntheticNeighborConfig {
  sim::Duration granularity = sim::msec(10);
  int iterations = 50;
  int neighbors = 4;                 ///< paper: 4 neighbours
  std::size_t message_bytes = 4096;  ///< paper: 4 KB messages
};

/// Compute, exchange non-blocking messages with a ring-offset neighbour
/// stencil, wait for all (Figure 8 c/d).  Returns per-rank elapsed time.
sim::Duration syntheticNeighbor(mpi::Comm& comm,
                                const SyntheticNeighborConfig& cfg);

}  // namespace bcs::apps
