#include "snapshot/checkpoint.hpp"

#include <string>
#include <utility>

#include "snapshot/state_io.hpp"
#include "snapshot/wire.hpp"

namespace bcs::snapshot {

namespace {

// build() and buildBare() must construct the stack in the same order: the
// engine's variable/event allocations and the runtime's per-node layout
// depend only on construction order, and a restore writes captured state
// into a structurally identical fresh build.
Simulation buildCommon(const ScenarioSpec& spec) {
  Simulation sim;
  sim.spec = spec;
  sim.cluster = std::make_unique<net::Cluster>(spec.cluster);
  if (spec.trace) sim.cluster->trace().enable();
  sim.runtime = std::make_unique<bcsmpi::Runtime>(*sim.cluster, spec.mpi);
  sim.job = sim.runtime->createJob(spec.ring.node_of_rank);
  sim.registry = std::make_unique<BufferRegistry>();
  sim.workload = std::make_unique<DetachedRing>(*sim.runtime, sim.job,
                                                spec.ring, *sim.registry);
  if (spec.with_storm) {
    sim.storm = std::make_unique<storm::Storm>(*sim.cluster, spec.storm);
    if (spec.wire_fault_handlers) {
      bcsmpi::Runtime* rt = sim.runtime.get();
      storm::Storm* st = sim.storm.get();
      st->setDeathHandler([rt](int node) { rt->notifyNodeFailure(node); });
      st->setRejoinHandler([rt](int node) { rt->notifyNodeRejoin(node); });
      rt->setFailoverHandler(
          [st](int node, std::uint64_t) { st->failoverTo(node); });
    }
  }
  return sim;
}

}  // namespace

std::uint64_t fingerprintConfig(const ScenarioSpec& spec) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ull; };
  const net::ClusterConfig& c = spec.cluster;
  mix(static_cast<std::uint64_t>(c.num_compute_nodes));
  mix(static_cast<std::uint64_t>(c.cpus_per_node));
  mix(c.seed);
  mix(c.inject_noise ? 1 : 0);
  const bcsmpi::BcsMpiConfig& m = spec.mpi;
  mix(static_cast<std::uint64_t>(m.time_slice));
  mix(static_cast<std::uint64_t>(m.dem_floor));
  mix(static_cast<std::uint64_t>(m.msm_floor));
  mix(static_cast<std::uint64_t>(m.strobe_poll_interval));
  mix(static_cast<std::uint64_t>(m.watchdog_slices));
  mix(static_cast<std::uint64_t>(m.election_retry_interval));
  mix(static_cast<std::uint64_t>(m.dem_drain_window));
  mix(static_cast<std::uint64_t>(m.post_overhead));
  mix(static_cast<std::uint64_t>(m.descriptor_bytes));
  mix(static_cast<std::uint64_t>(m.max_descriptor_retries));
  mix(static_cast<std::uint64_t>(m.nic_desc_processing));
  mix(static_cast<std::uint64_t>(m.nic_match_cost));
  mix(static_cast<std::uint64_t>(m.chunk_bytes));
  mix(static_cast<std::uint64_t>(m.slice_byte_budget));
  mix(static_cast<std::uint64_t>(m.nic_reduce_per_element));
  mix(static_cast<std::uint64_t>(m.runtime_init_overhead));
  mix(static_cast<std::uint64_t>(m.tree_fanout));
  mix(m.gang_scheduling ? 1 : 0);
  mix(m.verify ? 1 : 0);
  mix(static_cast<std::uint64_t>(m.verify_max_findings));
  mix(m.checkpoint_every_slices);
  const storm::StormConfig& s = spec.storm;
  mix(static_cast<std::uint64_t>(s.heartbeat_period));
  mix(static_cast<std::uint64_t>(s.max_missed_heartbeats));
  mix(static_cast<std::uint64_t>(s.nm_spawn_overhead));
  mix(static_cast<std::uint64_t>(s.mm_dispatch_overhead));
  mix(static_cast<std::uint64_t>(s.launch_poll_interval));
  const RingSpec& r = spec.ring;
  mix(static_cast<std::uint64_t>(r.ranks));
  mix(static_cast<std::uint64_t>(r.rounds));
  mix(static_cast<std::uint64_t>(r.bytes));
  for (int n : r.node_of_rank) mix(static_cast<std::uint64_t>(n));
  mix(spec.with_storm ? 1 : 0);
  mix(spec.wire_fault_handlers ? 1 : 0);
  mix(spec.trace ? 1 : 0);
  return h;
}

Simulation build(const ScenarioSpec& spec) {
  Simulation sim = buildCommon(spec);
  for (int r = 0; r < spec.ring.ranks; ++r) {
    sim.runtime->registerDetachedRank(sim.job, r);
  }
  sim.workload->start();
  if (sim.storm) sim.storm->startHeartbeats();
  return sim;
}

std::vector<std::uint8_t> capture(Simulation& sim) {
  StateIO::checkCapturable(sim);
  SnapshotWriter w;
  StateIO::saveAll(sim, w);
  return w.finish(fingerprintConfig(sim.spec));
}

Simulation restore(const ScenarioSpec& spec,
                   const std::vector<std::uint8_t>& blob) {
  SnapshotReader reader(blob);
  const std::uint64_t want = fingerprintConfig(spec);
  if (reader.fingerprint() != want) {
    throw SnapshotError(
        "header",
        "config fingerprint mismatch: snapshot " +
            std::to_string(reader.fingerprint()) + ", scenario " +
            std::to_string(want) +
            " (machine shape and runtime config must match; only FaultPlan "
            "and NetworkParams may differ between branches)");
  }
  // Bare build: identical construction order to build(), but nothing is
  // started — no rank registration, no workload ticks, no heartbeats — so
  // the engine holds zero pending events until restoreAll re-arms them.
  Simulation sim = buildCommon(spec);
  StateIO::restoreAll(sim, reader);
  return sim;
}

std::uint64_t traceDumpBytesAt(const std::vector<std::uint8_t>& blob) {
  SnapshotReader reader(blob);
  const std::string raw = reader.section("meta");
  Decoder d(raw, "meta");
  d.i64();  // capture instant
  d.u64();  // slice index
  return d.u64();
}

}  // namespace bcs::snapshot
