#pragma once

// Pointer swizzling for snapshots.
//
// Descriptors and chunk GetOps hold raw pointers into application buffers.
// A snapshot cannot store pointers, so checkpointable workloads register
// every communication buffer here under a stable id; capture rewrites each
// pointer as (buffer id, offset) and restore resolves it against the fresh
// process's registry (same ids, same sizes — the workload registers them in
// construction order).  Buffer *contents* are serialized too: a restored
// run must re-send exactly the bytes the interrupted run would have.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/error.hpp"
#include "snapshot/wire.hpp"

namespace bcs::snapshot {

inline constexpr std::uint32_t kNullBuffer = 0xffffffffu;

/// A serializable stand-in for a pointer into a registered buffer.
struct BufRef {
  std::uint32_t id = kNullBuffer;
  std::uint64_t offset = 0;
};

class BufferRegistry {
 public:
  void add(std::uint32_t id, std::byte* data, std::size_t size) {
    for (const Entry& e : entries_) {
      if (e.id == id) {
        throw SnapshotError("buffers",
                            "duplicate buffer id " + std::to_string(id));
      }
    }
    entries_.push_back(Entry{id, data, size});
  }

  /// Pointer → reference.  Null maps to kNullBuffer; a pointer outside every
  /// registered buffer means the workload forgot to register one — refuse
  /// the capture rather than snapshot a dangling address.
  BufRef refOf(const std::byte* p) const {
    if (p == nullptr) return BufRef{};
    for (const Entry& e : entries_) {
      if (p >= e.data && p < e.data + e.size) {
        return BufRef{e.id, static_cast<std::uint64_t>(p - e.data)};
      }
    }
    // One-past-the-end of a buffer is a valid position for a fully-consumed
    // chunk pointer; resolve it against the owning buffer.
    for (const Entry& e : entries_) {
      if (p == e.data + e.size) return BufRef{e.id, e.size};
    }
    throw SnapshotError("buffers", "pointer into an unregistered buffer");
  }

  std::byte* resolve(BufRef ref) const {
    if (ref.id == kNullBuffer) return nullptr;
    for (const Entry& e : entries_) {
      if (e.id != ref.id) continue;
      if (ref.offset > e.size) {
        throw SnapshotError("buffers",
                            "offset " + std::to_string(ref.offset) +
                                " past end of buffer " +
                                std::to_string(ref.id));
      }
      return e.data + ref.offset;
    }
    throw SnapshotError("buffers",
                        "unknown buffer id " + std::to_string(ref.id));
  }

  void saveRef(Encoder& e, const std::byte* p) const {
    const BufRef r = refOf(p);
    e.u32(r.id);
    e.u64(r.offset);
  }
  std::byte* loadRef(Decoder& d) const {
    BufRef r;
    r.id = d.u32();
    r.offset = d.u64();
    return resolve(r);
  }

  void saveContents(Encoder& e) const {
    e.u32(static_cast<std::uint32_t>(entries_.size()));
    for (const Entry& ent : entries_) {
      e.u32(ent.id);
      e.u64(ent.size);
      e.bytes(ent.data, ent.size);
    }
  }
  void restoreContents(Decoder& d) {
    const std::uint32_t n = d.u32();
    if (n != entries_.size()) {
      d.fail("buffer count " + std::to_string(n) + " != registered " +
             std::to_string(entries_.size()));
    }
    for (Entry& ent : entries_) {
      const std::uint32_t id = d.u32();
      const std::uint64_t size = d.u64();
      if (id != ent.id || size != ent.size) {
        d.fail("buffer " + std::to_string(ent.id) + " shape mismatch");
      }
      d.bytes(ent.data, ent.size);
    }
  }

 private:
  struct Entry {
    std::uint32_t id;
    std::byte* data;
    std::size_t size;
  };
  std::vector<Entry> entries_;
};

}  // namespace bcs::snapshot
