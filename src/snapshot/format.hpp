#pragma once

// The snapshot container format (DESIGN.md §8).
//
// Layout (all integers little-endian):
//
//   "BCSS"                       magic, 4 bytes
//   u32  format version          (kFormatVersion)
//   u64  config fingerprint      (FNV-1a over the scenario's scalar config;
//                                 restore refuses a mismatched machine)
//   u32  section count
//   per section:
//     u16  name length, name bytes
//     u64  raw (decompressed) size
//     u64  compressed size
//     u32  CRC-32 of the compressed payload
//   concatenated LZSS payloads (src/codec/lzss.hpp), in table order
//
// Sections are independently compressed and checksummed, so corruption is
// reported at section granularity (tools/snapshot_inspect.py shows the same
// table).  Every parse error is a SnapshotError naming the section — a
// truncated, bit-flipped or version-skewed snapshot is rejected loudly,
// never undefined behaviour.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/error.hpp"

namespace bcs::snapshot {

inline constexpr char kMagic[4] = {'B', 'C', 'S', 'S'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// CRC-32 (IEEE 802.3, reflected) over a byte range.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// Section-table entry, as parsed from (or about to be written to) a blob.
struct SectionInfo {
  std::string name;
  std::uint64_t raw_size = 0;
  std::uint64_t comp_size = 0;
  std::uint32_t crc = 0;
};

class SnapshotWriter {
 public:
  /// Adds one named section (raw bytes; compressed on the spot).
  void addSection(const std::string& name, const std::string& raw);

  /// Assembles the final blob.
  std::vector<std::uint8_t> finish(std::uint64_t fingerprint) const;

 private:
  struct Sec {
    std::string name;
    std::uint64_t raw_size;
    std::vector<std::uint8_t> comp;
  };
  std::vector<Sec> secs_;
};

class SnapshotReader {
 public:
  /// Parses the header and section table; throws SnapshotError("header", …)
  /// on truncation, bad magic or a version this build does not understand.
  explicit SnapshotReader(std::vector<std::uint8_t> blob);

  std::uint64_t fingerprint() const { return fingerprint_; }
  const std::vector<SectionInfo>& sections() const { return sections_; }
  bool hasSection(const std::string& name) const;

  /// Decompressed payload of one section; CRC and size are verified and
  /// failures throw SnapshotError naming the section.
  std::string section(const std::string& name) const;

 private:
  std::vector<std::uint8_t> blob_;
  std::uint64_t fingerprint_ = 0;
  std::vector<SectionInfo> sections_;
  std::vector<std::size_t> payload_at_;  ///< offset of each payload in blob_
};

}  // namespace bcs::snapshot
