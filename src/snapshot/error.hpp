#pragma once

// Structured snapshot failure (src/snapshot, DESIGN.md §8).
//
// Every refusal — capture-time guards, truncated or corrupted files, format
// or fingerprint skew — names the section it was detected in, so a broken
// snapshot diagnoses itself instead of producing undefined behaviour.

#include <stdexcept>
#include <string>

namespace bcs::snapshot {

class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(std::string section, std::string reason)
      : std::runtime_error("snapshot [" + section + "]: " + reason),
        section_(std::move(section)),
        reason_(std::move(reason)) {}

  /// Section the failure was detected in ("header", "engine", "runtime",
  /// ... or "capture" for capture-time guard refusals).
  const std::string& section() const { return section_; }
  const std::string& reason() const { return reason_; }

 private:
  std::string section_;
  std::string reason_;
};

}  // namespace bcs::snapshot
