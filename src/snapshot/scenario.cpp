#include "snapshot/scenario.hpp"

#include <numeric>

namespace bcs::snapshot {

namespace {

std::vector<int> oneRankPerNode(int n) {
  std::vector<int> map(static_cast<std::size_t>(n));
  std::iota(map.begin(), map.end(), 0);
  return map;
}

}  // namespace

ScenarioSpec ckptRing(bool verify) {
  ScenarioSpec s;
  s.cluster.num_compute_nodes = 8;
  s.cluster.seed = 20260809;
  s.mpi.runtime_init_overhead = sim::usec(200);
  s.mpi.verify = verify;
  s.ring.ranks = 8;
  s.ring.node_of_rank = oneRankPerNode(8);
  s.ring.rounds = 12;
  s.ring.bytes = 512;
  return s;
}

ScenarioSpec ckptSoup(bool verify) {
  ScenarioSpec s;
  s.cluster.num_compute_nodes = 32;
  s.cluster.seed = 20260805;
  s.cluster.faults.dropRate(0.05).crashNode(13, sim::msec(6));
  s.mpi.runtime_init_overhead = sim::usec(200);
  s.mpi.verify = verify;
  s.storm.heartbeat_period = sim::usec(500);
  s.ring.ranks = 32;
  s.ring.node_of_rank = oneRankPerNode(32);
  s.ring.rounds = 40;
  s.ring.bytes = 256;
  s.with_storm = true;
  s.wire_fault_handlers = true;
  return s;
}

ScenarioSpec ckptTree(bool verify) {
  ScenarioSpec s;
  s.cluster.num_compute_nodes = 32;
  s.cluster.seed = 20260811;
  s.mpi.runtime_init_overhead = sim::usec(200);
  s.mpi.tree_fanout = 8;
  s.mpi.verify = verify;
  s.ring.ranks = 32;
  s.ring.node_of_rank = oneRankPerNode(32);
  s.ring.rounds = 10;
  s.ring.bytes = 256;
  return s;
}

std::string traceCkptResume() {
  ScenarioSpec spec = ckptRing(/*verify=*/true);
  spec.mpi.checkpoint_every_slices = 4;

  // The interrupted run: periodic snapshots, killed mid-flight at 3 ms
  // (after the slice-4 boundary capture at 2.2 ms).
  Simulation b = build(spec);
  std::vector<std::uint8_t> blob;
  b.runtime->setSnapshotSink(
      [&b, &blob](std::uint64_t) { blob = capture(b); });
  b.cluster->run(sim::msec(3));
  const std::string b_dump = b.cluster->trace().dump();
  const std::uint64_t prefix = traceDumpBytesAt(blob);

  // Resume in a fresh stack and run to completion; splice the continuation
  // after the capture-time prefix.
  Simulation c = restore(spec, blob);
  c.cluster->run();
  return b_dump.substr(0, static_cast<std::size_t>(prefix)) +
         c.cluster->trace().dump();
}

}  // namespace bcs::snapshot
