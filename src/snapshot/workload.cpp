#include "snapshot/workload.hpp"

namespace bcs::snapshot {

DetachedRing::DetachedRing(bcsmpi::Runtime& rt, int job, RingSpec spec,
                           BufferRegistry& registry)
    : rt_(rt), job_(job), spec_(std::move(spec)) {
  const std::size_t n = static_cast<std::size_t>(spec_.ranks);
  sms_.resize(n);
  send_bufs_.resize(n);
  recv_bufs_.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    send_bufs_[r].resize(spec_.bytes);
    recv_bufs_[r].resize(spec_.bytes);
    registry.add(static_cast<std::uint32_t>(2 * r), send_bufs_[r].data(),
                 spec_.bytes);
    registry.add(static_cast<std::uint32_t>(2 * r + 1), recv_bufs_[r].data(),
                 spec_.bytes);
  }
}

void DetachedRing::start() {
  // First ticks land at (350 + r) µs past the first slice boundary grid
  // origin; registration starts the strobe with boundaries on the
  // runtime_init_overhead grid (200 µs mod slice in the ckpt scenarios), so
  // the cadence never collides with boundary events.
  const SimTime now = rt_.cluster().engine().now();
  const sim::Duration slice = rt_.config().time_slice;
  for (int r = 0; r < spec_.ranks; ++r) {
    armTick(r, now + slice - sim::usec(150) + sim::usec(r));
  }
}

void DetachedRing::armTick(int r, SimTime at) {
  sms_[static_cast<std::size_t>(r)].next_tick_at = at;
  rt_.cluster().engine().at(at, [this, r] { tick(r); });
}

void DetachedRing::fillSendBuffer(int r) {
  // Deterministic round-dependent payload, so the data digest proves the
  // restored run moved the same bytes.
  RankSm& sm = sms_[static_cast<std::size_t>(r)];
  std::vector<std::byte>& buf = send_bufs_[static_cast<std::size_t>(r)];
  for (std::size_t k = 0; k < buf.size(); ++k) {
    buf[k] = static_cast<std::byte>(
        (static_cast<std::size_t>(r) * 131 +
         static_cast<std::size_t>(sm.round) * 17 + k) &
        0xff);
  }
}

void DetachedRing::tick(int r) {
  RankSm& sm = sms_[static_cast<std::size_t>(r)];
  if (sm.finished) return;
  if (rt_.nodeEvicted(rt_.nodeOfRank(job_, r))) {
    // The node was declared dead: eviction already force-finished the rank;
    // just stop driving it.
    sm.finished = true;
    ++finished_count_;
    return;
  }
  if (!sm.waiting) {
    fillSendBuffer(r);
    const int dst = (r + 1) % spec_.ranks;
    const int src = (r - 1 + spec_.ranks) % spec_.ranks;
    sm.send_req =
        rt_.postSend(job_, r, send_bufs_[static_cast<std::size_t>(r)].data(),
                     spec_.bytes, dst, sm.round);
    sm.recv_req =
        rt_.postRecv(job_, r, recv_bufs_[static_cast<std::size_t>(r)].data(),
                     spec_.bytes, src, sm.round);
    sm.send_done = false;
    sm.recv_done = false;
    sm.waiting = true;
  } else {
    // testRequest consumes the request on success (including completion in
    // error after a peer eviction), hence the done flags.
    mpi::Status st;
    if (!sm.send_done && rt_.testRequest(job_, r, sm.send_req, &st)) {
      sm.send_done = true;
    }
    if (!sm.recv_done && rt_.testRequest(job_, r, sm.recv_req, &st)) {
      sm.recv_done = true;
    }
    if (sm.send_done && sm.recv_done) {
      sm.waiting = false;
      ++sm.round;
      if (sm.round >= spec_.rounds) {
        sm.finished = true;
        ++finished_count_;
        rt_.rankFinished(job_, r);
        return;  // no re-arm
      }
    }
  }
  armTick(r, rt_.cluster().engine().now() + rt_.config().time_slice);
}

std::uint64_t DetachedRing::dataDigest() const {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ull; };
  for (int r = 0; r < spec_.ranks; ++r) {
    const RankSm& sm = sms_[static_cast<std::size_t>(r)];
    mix(static_cast<std::uint64_t>(sm.round));
    mix(sm.finished ? 1 : 0);
    for (std::byte b : recv_bufs_[static_cast<std::size_t>(r)]) {
      mix(static_cast<std::uint64_t>(b));
    }
  }
  return h;
}

}  // namespace bcs::snapshot
