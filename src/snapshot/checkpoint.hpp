#pragma once

// Slice-boundary checkpoint/restore (the paper's §6 claim made concrete;
// DESIGN.md §8).
//
// At a slice boundary the global communication state is known by
// construction — every transfer of the previous slice has completed, no
// packet is in flight — so a full-state snapshot needs no marker algorithm
// or message draining: it is a pure serialization of calendar, NIC queues,
// RNG streams and membership books.  capture() produces a versioned,
// checksummed blob (format.hpp); restore() rebuilds a *fresh* simulation
// from the same ScenarioSpec and the blob, and the continuation is
// byte-identical to the uninterrupted run (pinned against the golden-trace
// corpus by tests/test_snapshot.cpp).
//
// Branching what-if replay: restore() takes the spec by value, so a caller
// can fork one snapshot into several branches that differ only in their
// FaultPlan — the plan is deliberately excluded from the config fingerprint
// (so is NetworkParams) — and diff the divergent traces with bcs-verify on.

#include <cstdint>
#include <memory>
#include <vector>

#include "bcsmpi/config.hpp"
#include "bcsmpi/runtime.hpp"
#include "net/cluster.hpp"
#include "snapshot/buffers.hpp"
#include "snapshot/error.hpp"
#include "snapshot/workload.hpp"
#include "storm/storm.hpp"

namespace bcs::snapshot {

/// Everything needed to (re)build a checkpointable simulation.  Scalar
/// fields participate in the config fingerprint; ClusterConfig::faults and
/// NetworkParams do not (branch on them).
struct ScenarioSpec {
  net::ClusterConfig cluster;
  bcsmpi::BcsMpiConfig mpi;
  storm::StormConfig storm;
  RingSpec ring;
  bool with_storm = false;
  /// Wire STORM death/rejoin declarations to runtime eviction/reintegration
  /// and runtime failover to STORM's Machine Manager move.
  bool wire_fault_handlers = false;
  bool trace = true;
};

/// A built simulation: the cluster plus the full BCS stack on top of it.
/// Owns everything; destruction order (workload, storm, runtime, cluster)
/// is the reverse of construction.
struct Simulation {
  ScenarioSpec spec;
  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<bcsmpi::Runtime> runtime;
  std::unique_ptr<storm::Storm> storm;  ///< null unless spec.with_storm
  std::unique_ptr<BufferRegistry> registry;
  std::unique_ptr<DetachedRing> workload;
  int job = -1;

  Simulation() = default;
  Simulation(Simulation&&) = default;
  Simulation& operator=(Simulation&&) = default;
  ~Simulation() {
    // Members destroy in reverse declaration order, which is already
    // workload → registry → storm → runtime → cluster.
  }
};

/// FNV-1a over the scenario's scalar configuration.  Restoring a snapshot
/// into a machine with a different shape is refused via this fingerprint;
/// FaultPlan and NetworkParams are excluded so what-if branches and timing
/// studies can reuse one snapshot.
std::uint64_t fingerprintConfig(const ScenarioSpec& spec);

/// Builds and *starts* the scenario: ranks registered, first workload ticks
/// armed, heartbeats running.  Call cluster->run() after.
Simulation build(const ScenarioSpec& spec);

/// Serializes the full simulator state.  Only valid at a slice boundary —
/// install it via Runtime::setSnapshotSink (with
/// BcsMpiConfig::checkpoint_every_slices) or call from a
/// requestCheckpoint callback.  Pure observation: a run that captures
/// traces byte-identically to one that does not.  Throws SnapshotError
/// ("capture", …) when the state holds anything unserializable (live
/// fibers, an election in flight, active collectives, queued event
/// waiters).
std::vector<std::uint8_t> capture(Simulation& sim);

/// Rebuilds a fresh simulation from `spec` and a blob produced by
/// capture().  The spec must fingerprint-match the blob except for
/// FaultPlan/NetworkParams.  Call cluster->run() on the result to continue
/// the interrupted run; the trace starts empty (splice it after the
/// captured run's prefix to compare with an uninterrupted run).
Simulation restore(const ScenarioSpec& spec,
                   const std::vector<std::uint8_t>& blob);

/// Convenience for drills: the byte length of the cluster's trace dump
/// recorded inside `blob` at capture time (splice point for
/// prefix + continuation == uninterrupted comparisons).
std::uint64_t traceDumpBytesAt(const std::vector<std::uint8_t>& blob);

}  // namespace bcs::snapshot
