#pragma once

// The checkpointable ring workload (DESIGN.md §8).
//
// Fibers cannot be serialized — a suspended process is a stack, not data —
// so checkpointable workloads are *detached* state machines: every rank is
// registered with Runtime::registerDetachedRank (no process), and all
// communication is driven by engine timers through postSend / postRecv /
// testRequest.  The whole per-rank state fits in a handful of plain fields,
// which is exactly what a snapshot can capture and a restore can re-arm.
//
// The workload itself is a tagged ring exchange: each round, rank r sends
// `bytes` to (r+1) % N and receives from (r-1+N) % N, both tagged with the
// round number, then polls both requests on a slice-period cadence until
// they complete.  Per-rank tick timers sit at (350 + r) µs offsets within
// the 500 µs slice so they never collide with slice boundaries (200 µs),
// STORM heartbeat rounds (0) or inspections (250) — distinct firing times
// are what make the restore re-arm order provably irrelevant (§8).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bcsmpi/runtime.hpp"
#include "snapshot/buffers.hpp"

namespace bcs::snapshot {

using sim::SimTime;

/// Shape of the ring scenario (part of the config fingerprint).
struct RingSpec {
  int ranks = 0;
  std::vector<int> node_of_rank;
  int rounds = 0;
  std::size_t bytes = 256;
};

class DetachedRing {
 public:
  /// Allocates buffers and registers them (ids 2r = send, 2r+1 = recv) but
  /// schedules nothing; call start() to arm the first ticks, or let
  /// StateIO re-arm restored ones.
  DetachedRing(bcsmpi::Runtime& rt, int job, RingSpec spec,
               BufferRegistry& registry);

  /// Arms every rank's first tick (fresh runs only, before Cluster::run).
  void start();

  /// Number of ranks that stopped ticking (finished all rounds, or live on
  /// an evicted node).
  int finishedRanks() const { return finished_count_; }
  bool allFinished() const { return finished_count_ == spec_.ranks; }

  /// FNV-1a digest over every rank's (round, receive buffer) — the
  /// application-visible outcome, compared across restored and
  /// uninterrupted runs.
  std::uint64_t dataDigest() const;

 private:
  friend class StateIO;

  struct RankSm {
    int round = 0;
    bool waiting = false;  ///< requests posted, polling for completion
    std::uint64_t send_req = 0;
    std::uint64_t recv_req = 0;
    bool send_done = false;
    bool recv_done = false;
    SimTime next_tick_at = 0;  ///< deadline of the armed tick (snapshots)
    bool finished = false;     ///< no tick armed anymore
  };

  void armTick(int r, SimTime at);
  void tick(int r);
  void fillSendBuffer(int r);

  bcsmpi::Runtime& rt_;
  int job_;
  RingSpec spec_;
  std::vector<RankSm> sms_;
  std::vector<std::vector<std::byte>> send_bufs_;
  std::vector<std::vector<std::byte>> recv_bufs_;
  int finished_count_ = 0;
};

}  // namespace bcs::snapshot
