#pragma once

// The state serializer behind capture()/restore() (checkpoint.hpp).
//
// StateIO is a friend of every stateful simulator class (Engine, Rng,
// FaultInjector, Fabric, BcsCore, Storm, Runtime, Verifier, DetachedRing):
// it reads their privates at capture and writes them back into freshly
// constructed objects at restore.  Friendship instead of public state APIs
// keeps the snapshot surface out of each class's contract — the serializer
// versions with the repo, not with callers.
//
// Pending engine events are never serialized (they are closures).  Capture
// records each timer's *logical* deadline (watchdog_at, next_round_at_,
// inspect_at_, next_tick_at); restore warps the fresh engine's clock to the
// capture instant and re-arms every timer from the recorded deadlines, in a
// canonical order whose correctness rests on all re-armed events firing at
// pairwise-distinct times (the off-grid cadences documented in DESIGN.md
// §8).  A final resume event at the capture instant runs the post-capture
// tail of the slice boundary (Runtime::resumeFromRestore), so every event
// the continuation schedules draws a sequence number *after* all re-armed
// events — exactly the pending-before-boundary < scheduled-at-boundary
// order the interrupted run had.

#include "snapshot/checkpoint.hpp"
#include "snapshot/format.hpp"
#include "snapshot/wire.hpp"

namespace bcs::snapshot {

class StateIO {
 public:
  /// Capture-time guards: throws SnapshotError("capture", …) when the
  /// simulation holds state that cannot round-trip (live fibers, an
  /// election or active collective in flight, queued event waiters,
  /// un-dispatched boundary work).
  static void checkCapturable(Simulation& sim);

  /// Serializes every subsystem into `w` (one section each).
  static void saveAll(Simulation& sim, SnapshotWriter& w);

  /// Restores a bare-built simulation (checkpoint.cpp's buildBare) from the
  /// reader's sections, then re-arms all timers and the resume event.
  static void restoreAll(Simulation& sim, const SnapshotReader& r);

 private:
  // Per-subsystem (de)serializers.  Static members rather than file-local
  // helpers because friendship is granted to StateIO, not to free functions.
  static void saveCore(Encoder& e, const core::BcsCore& c);
  static void restoreCore(Decoder& d, core::BcsCore& c);
  static void saveStorm(Encoder& e, const storm::Storm& st);
  static void restoreStorm(Decoder& d, storm::Storm& st);
  static void saveVerifier(Encoder& e, const verify::Verifier& v);
  static void restoreVerifier(Decoder& d, verify::Verifier& v);
  static void saveRuntime(Encoder& e, const bcsmpi::Runtime& rt,
                          const BufferRegistry& reg);
  static void restoreRuntime(Decoder& d, bcsmpi::Runtime& rt,
                             const BufferRegistry& reg);
  static void saveWorkload(Encoder& e, const DetachedRing& wl);
  static void restoreWorkload(Decoder& d, DetachedRing& wl);
};

}  // namespace bcs::snapshot
