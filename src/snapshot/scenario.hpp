#pragma once

// Canonical checkpointable scenarios (tests/test_snapshot.cpp, the
// ckpt_resume golden, and examples/checkpoint_fault_tolerance.cpp all share
// these, so drills and goldens can never drift apart).
//
// All three keep every cadence off the slice-boundary grid (DESIGN.md §8):
// boundaries sit at 200 µs mod 500 (runtime_init_overhead), STORM heartbeat
// rounds at 0, inspections at 250, workload ticks at (350 + rank) — so every
// event a restore re-arms fires at a pairwise-distinct time and the re-arm
// order is provably irrelevant.

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/checkpoint.hpp"

namespace bcs::snapshot {

/// 8 nodes, one rank each, 12 ring rounds, no faults.  The minimal
/// round-trip scenario.
ScenarioSpec ckptRing(bool verify = false);

/// The acceptance-criteria soup: 32 nodes, 5% random descriptor/chunk loss,
/// node 13 crashing at 6 ms, STORM heartbeats at 500 µs wired to runtime
/// eviction — retransmission, eviction and recovery state all live across
/// the checkpoint.
ScenarioSpec ckptSoup(bool verify = false);

/// 32 nodes under the hierarchical control plane (tree_fanout = 8, four
/// racks): rack incumbents, coalesced-ack and tree-phase state round-trip.
ScenarioSpec ckptTree(bool verify = false);

/// The "ckpt_resume" golden trace: the ring scenario checkpointed at slice 4,
/// killed mid-run at 3 ms, restored into a fresh stack and run to
/// completion; returns capture-time trace prefix + the restored run's trace.
/// Pinned under tests/golden/ so capture/restore byte behavior can never
/// drift silently.
std::string traceCkptResume();

}  // namespace bcs::snapshot
