#pragma once

// Little-endian scalar encoding for snapshot sections.
//
// Every section payload is built with an Encoder and parsed with a Decoder.
// The Decoder is bounds-checked on every read and throws SnapshotError
// naming its section, so a truncated or bit-flipped payload that slips past
// the CRC (it cannot, but defense in depth is free here) still fails loudly
// instead of reading out of bounds.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "snapshot/error.hpp"

namespace bcs::snapshot {

class Encoder {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void bytes(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  void str(const std::string& s) {
    u64(s.size());
    out_.append(s);
  }

  const std::string& data() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void le(std::uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string out_;
};

class Decoder {
 public:
  Decoder(std::string_view data, std::string section)
      : data_(data), section_(std::move(section)) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() { return u8() != 0; }
  void bytes(void* dst, std::size_t n) {
    need(n);
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
  }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  bool atEnd() const { return pos_ == data_.size(); }
  /// Call after the last field: trailing garbage means the payload does not
  /// match the schema this build expects.
  void expectEnd() const {
    if (!atEnd()) {
      throw SnapshotError(section_, std::to_string(data_.size() - pos_) +
                                        " trailing byte(s) after last field");
    }
  }
  const std::string& section() const { return section_; }
  [[noreturn]] void fail(const std::string& reason) const {
    throw SnapshotError(section_, reason);
  }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw SnapshotError(section_,
                          "truncated payload: need " + std::to_string(n) +
                              " byte(s) at offset " + std::to_string(pos_) +
                              " of " + std::to_string(data_.size()));
    }
  }
  std::uint64_t le(int width) {
    need(static_cast<std::size_t>(width));
    std::uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += static_cast<std::size_t>(width);
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  std::string section_;
};

}  // namespace bcs::snapshot
