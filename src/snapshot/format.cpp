#include "snapshot/format.hpp"

#include <array>

#include "codec/lzss.hpp"
#include "snapshot/wire.hpp"

namespace bcs::snapshot {

namespace {

std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void SnapshotWriter::addSection(const std::string& name,
                                const std::string& raw) {
  secs_.push_back(Sec{name, raw.size(), codec::compress(raw)});
}

std::vector<std::uint8_t> SnapshotWriter::finish(
    std::uint64_t fingerprint) const {
  Encoder head;
  head.bytes(kMagic, sizeof(kMagic));
  head.u32(kFormatVersion);
  head.u64(fingerprint);
  head.u32(static_cast<std::uint32_t>(secs_.size()));
  for (const Sec& s : secs_) {
    head.u16(static_cast<std::uint16_t>(s.name.size()));
    head.bytes(s.name.data(), s.name.size());
    head.u64(s.raw_size);
    head.u64(s.comp.size());
    head.u32(crc32(s.comp.data(), s.comp.size()));
  }
  std::vector<std::uint8_t> blob;
  blob.reserve(head.data().size() + 4096);
  for (char c : head.data()) blob.push_back(static_cast<std::uint8_t>(c));
  for (const Sec& s : secs_) {
    blob.insert(blob.end(), s.comp.begin(), s.comp.end());
  }
  return blob;
}

SnapshotReader::SnapshotReader(std::vector<std::uint8_t> blob)
    : blob_(std::move(blob)) {
  Decoder d(std::string_view(reinterpret_cast<const char*>(blob_.data()),
                             blob_.size()),
            "header");
  char magic[4];
  d.bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    d.fail("bad magic (not a BCSS snapshot)");
  }
  const std::uint32_t version = d.u32();
  if (version != kFormatVersion) {
    d.fail("unsupported format version " + std::to_string(version) +
           " (this build reads version " + std::to_string(kFormatVersion) +
           ")");
  }
  fingerprint_ = d.u64();
  const std::uint32_t count = d.u32();
  std::uint64_t payload_bytes = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    SectionInfo info;
    const std::uint16_t name_len = d.u16();
    info.name.resize(name_len);
    d.bytes(info.name.data(), name_len);
    info.raw_size = d.u64();
    info.comp_size = d.u64();
    info.crc = d.u32();
    payload_bytes += info.comp_size;
    sections_.push_back(std::move(info));
  }
  // The header decoder tracked how far the table reached; payloads follow
  // in table order.  Recompute the table-end offset by re-walking sizes.
  std::size_t at = 4 + 4 + 8 + 4;
  for (const SectionInfo& info : sections_) {
    at += 2 + info.name.size() + 8 + 8 + 4;
  }
  for (const SectionInfo& info : sections_) {
    payload_at_.push_back(at);
    at += static_cast<std::size_t>(info.comp_size);
  }
  if (at > blob_.size()) {
    throw SnapshotError("header",
                        "truncated file: section table promises " +
                            std::to_string(payload_bytes) +
                            " payload byte(s), file holds " +
                            std::to_string(blob_.size()) + " total");
  }
}

bool SnapshotReader::hasSection(const std::string& name) const {
  for (const SectionInfo& info : sections_) {
    if (info.name == name) return true;
  }
  return false;
}

std::string SnapshotReader::section(const std::string& name) const {
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const SectionInfo& info = sections_[i];
    if (info.name != name) continue;
    const std::uint8_t* p = blob_.data() + payload_at_[i];
    if (crc32(p, static_cast<std::size_t>(info.comp_size)) != info.crc) {
      throw SnapshotError(name, "CRC mismatch (corrupted payload)");
    }
    std::string raw;
    try {
      raw = codec::decompress(
          std::vector<std::uint8_t>(p, p + info.comp_size));
    } catch (const std::exception& e) {
      throw SnapshotError(name, std::string("decompression failed: ") +
                                    e.what());
    }
    if (raw.size() != info.raw_size) {
      throw SnapshotError(name, "decompressed size " +
                                    std::to_string(raw.size()) +
                                    " != recorded raw size " +
                                    std::to_string(info.raw_size));
    }
    return raw;
  }
  throw SnapshotError(name, "section missing from snapshot");
}

}  // namespace bcs::snapshot
