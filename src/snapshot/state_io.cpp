#include "snapshot/state_io.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "snapshot/wire.hpp"

namespace bcs::snapshot {

namespace {

// ---------------------------------------------------------------------------
// Descriptor encoding (pointers swizzled through the BufferRegistry)
// ---------------------------------------------------------------------------

void saveSend(Encoder& e, const BufferRegistry& reg,
              const bcsmpi::SendDescriptor& d) {
  e.i32(d.job);
  e.i32(d.src_rank);
  e.i32(d.dst_rank);
  e.i32(d.tag);
  reg.saveRef(e, d.data);
  e.u64(d.bytes);
  e.u64(d.request);
  e.i64(d.posted_at);
  e.u64(d.seq);
  e.i32(d.retries);
}

bcsmpi::SendDescriptor loadSend(Decoder& d, const BufferRegistry& reg) {
  bcsmpi::SendDescriptor s;
  s.job = d.i32();
  s.src_rank = d.i32();
  s.dst_rank = d.i32();
  s.tag = d.i32();
  s.data = reg.loadRef(d);
  s.bytes = d.u64();
  s.request = d.u64();
  s.posted_at = d.i64();
  s.seq = d.u64();
  s.retries = d.i32();
  return s;
}

void saveRecv(Encoder& e, const BufferRegistry& reg,
              const bcsmpi::RecvDescriptor& d) {
  e.i32(d.job);
  e.i32(d.dst_rank);
  e.i32(d.want_src);
  e.i32(d.want_tag);
  reg.saveRef(e, d.data);
  e.u64(d.bytes);
  e.u64(d.request);
  e.i64(d.posted_at);
  e.u64(d.seq);
}

bcsmpi::RecvDescriptor loadRecv(Decoder& d, const BufferRegistry& reg) {
  bcsmpi::RecvDescriptor r;
  r.job = d.i32();
  r.dst_rank = d.i32();
  r.want_src = d.i32();
  r.want_tag = d.i32();
  r.data = reg.loadRef(d);
  r.bytes = d.u64();
  r.request = d.u64();
  r.posted_at = d.i64();
  r.seq = d.u64();
  return r;
}

void saveIntVec(Encoder& e, const std::vector<int>& v) {
  e.u32(static_cast<std::uint32_t>(v.size()));
  for (int x : v) e.i32(x);
}

std::vector<int> loadIntVec(Decoder& d) {
  const std::uint32_t n = d.u32();
  std::vector<int> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(d.i32());
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Capture-time guards
// ---------------------------------------------------------------------------

void StateIO::checkCapturable(Simulation& sim) {
  auto refuse = [](const std::string& why) {
    throw SnapshotError("capture", why);
  };
  if (sim.cluster->processCount() > 0) {
    refuse("cluster has process fibers; only detached workloads "
           "(registerDetachedRank) are checkpointable");
  }
  bcsmpi::Runtime& rt = *sim.runtime;
  if (rt.election_inflight_) refuse("failover election in flight");
  if (!rt.checkpoint_cbs_.empty()) {
    refuse("un-dispatched requestCheckpoint callbacks");
  }
  if (!rt.pending_evictions_.empty() || !rt.pending_rejoins_.empty()) {
    refuse("pending evictions/rejoins: capture must run at the slice "
           "boundary, after recovery (use the snapshot sink)");
  }
  for (const auto& ns : rt.nodes_) {
    if (!ns.coll_fresh.empty()) refuse("undrained collective descriptors");
    for (const auto& [job, pc] : ns.pending_coll) {
      if (pc.active) {
        refuse("collective in flight (job " + std::to_string(job) + ")");
      }
    }
    if (!ns.rma_fresh.empty() || !ns.rma_retry.empty() ||
        !ns.rma_inbound.empty() || !ns.rma_returns.empty()) {
      refuse("RMA epoch in flight (one-sided ops hold raw window pointers)");
    }
  }
  if (rt.windows_.totalWindows() != 0) {
    refuse("registered RMA windows (window base addresses cannot be "
           "serialized; free windows before capture)");
  }
  auto checkCore = [&refuse](core::BcsCore& c, const char* which) {
    for (const auto& per_node : c.events_) {
      for (const auto& ev : per_node) {
        if (!ev.waiters.empty()) {
          refuse(std::string("queued event waiters on the ") + which +
                 " core (closures cannot be serialized)");
        }
      }
    }
  };
  checkCore(rt.core_, "runtime");
  if (sim.storm) checkCore(sim.storm->core_, "storm");
}

// ---------------------------------------------------------------------------
// Per-subsystem serializers
// ---------------------------------------------------------------------------

void StateIO::saveCore(Encoder& e, const core::BcsCore& c) {
  e.u32(static_cast<std::uint32_t>(c.vars_.size()));
  for (const auto& per_node : c.vars_) {
    e.u32(static_cast<std::uint32_t>(per_node.size()));
    for (std::int64_t v : per_node) e.i64(v);
  }
  e.u32(static_cast<std::uint32_t>(c.events_.size()));
  for (const auto& per_node : c.events_) {
    e.u32(static_cast<std::uint32_t>(per_node.size()));
    for (const auto& ev : per_node) e.i32(ev.pending);
  }
}

void StateIO::restoreCore(Decoder& d, core::BcsCore& c) {
  const std::uint32_t nvars = d.u32();
  if (nvars != c.vars_.size()) {
    d.fail("global-variable count mismatch (snapshot " +
           std::to_string(nvars) + ", fresh " +
           std::to_string(c.vars_.size()) + ")");
  }
  for (auto& per_node : c.vars_) {
    const std::uint32_t nn = d.u32();
    if (nn != per_node.size()) d.fail("variable replica count mismatch");
    for (std::int64_t& v : per_node) v = d.i64();
  }
  const std::uint32_t nevents = d.u32();
  if (nevents != c.events_.size()) d.fail("event count mismatch");
  for (auto& per_node : c.events_) {
    const std::uint32_t nn = d.u32();
    if (nn != per_node.size()) d.fail("event replica count mismatch");
    for (auto& ev : per_node) ev.pending = d.i32();
  }
  d.expectEnd();
}

void StateIO::saveStorm(Encoder& e, const storm::Storm& st) {
  e.u32(static_cast<std::uint32_t>(st.node_info_.size()));
  for (const auto& info : st.node_info_) {
    e.i32(info.used_slots);
    e.i32(info.missed);
    e.boolean(info.marked_dead);
  }
  e.i64(st.launch_seq_);
  e.i64(st.hb_seq_);
  e.boolean(st.heartbeats_on_);
  e.u64(st.hb_sent_);
  e.i32(st.mm_node_);
  e.i64(st.next_round_at_);
  e.i64(st.inspect_at_);
  e.i64(st.inspect_seq_);
  e.boolean(st.inspect_pending_);
}

void StateIO::restoreStorm(Decoder& d, storm::Storm& st) {
  const std::uint32_t n = d.u32();
  if (n != st.node_info_.size()) d.fail("node count mismatch");
  for (auto& info : st.node_info_) {
    info.used_slots = d.i32();
    info.missed = d.i32();
    info.marked_dead = d.boolean();
  }
  st.launch_seq_ = d.i64();
  st.hb_seq_ = d.i64();
  st.heartbeats_on_ = d.boolean();
  st.hb_sent_ = d.u64();
  st.mm_node_ = d.i32();
  st.next_round_at_ = d.i64();
  st.inspect_at_ = d.i64();
  st.inspect_seq_ = d.i64();
  st.inspect_pending_ = d.boolean();
  d.expectEnd();
}

void StateIO::saveVerifier(Encoder& e, const verify::Verifier& v) {
  e.u32(static_cast<std::uint32_t>(v.pending_.size()));
  for (const auto& [key, group] : v.pending_) {
    e.i32(key.first);
    e.i32(key.second);
    e.i32(group.expected);
    e.u32(static_cast<std::uint32_t>(group.entries.size()));
    for (const auto& ent : group.entries) {
      e.i32(ent.rank);
      e.i32(ent.node);
      e.u64(ent.color);
      e.i64(ent.posted_at);
      e.str(ent.signature);
    }
  }
  const verify::VerifyReport& rep = v.report_;
  for (std::uint64_t c : rep.counts) e.u64(c);
  e.u32(static_cast<std::uint32_t>(rep.findings.size()));
  for (const auto& f : rep.findings) {
    e.i32(static_cast<std::int32_t>(f.category));
    e.i64(f.time);
    e.u64(f.slice);
    e.i32(f.node);
    e.i32(f.job);
    e.i32(f.rank);
    e.str(f.detail);
  }
  e.u64(rep.dropped_findings);
  e.u64(rep.collectives_checked);
  e.u64(rep.matches_checked);
  e.boolean(rep.finalized);
}

void StateIO::restoreVerifier(Decoder& d, verify::Verifier& v) {
  const std::uint32_t ngroups = d.u32();
  v.pending_.clear();
  for (std::uint32_t i = 0; i < ngroups; ++i) {
    const int job = d.i32();
    const int gen = d.i32();
    auto& group = v.pending_[{job, gen}];
    group.expected = d.i32();
    const std::uint32_t nentries = d.u32();
    for (std::uint32_t k = 0; k < nentries; ++k) {
      verify::Verifier::ColorEntry ent;
      ent.rank = d.i32();
      ent.node = d.i32();
      ent.color = d.u64();
      ent.posted_at = d.i64();
      ent.signature = d.str();
      group.entries.push_back(std::move(ent));
    }
  }
  verify::VerifyReport& rep = v.report_;
  for (std::uint64_t& c : rep.counts) c = d.u64();
  rep.findings.clear();
  const std::uint32_t nfindings = d.u32();
  for (std::uint32_t i = 0; i < nfindings; ++i) {
    verify::Finding f;
    f.category = static_cast<verify::Category>(d.i32());
    f.time = d.i64();
    f.slice = d.u64();
    f.node = d.i32();
    f.job = d.i32();
    f.rank = d.i32();
    f.detail = d.str();
    rep.findings.push_back(std::move(f));
  }
  rep.dropped_findings = d.u64();
  rep.collectives_checked = d.u64();
  rep.matches_checked = d.u64();
  rep.finalized = d.boolean();
  d.expectEnd();
}

void StateIO::saveRuntime(Encoder& e, const bcsmpi::Runtime& rt,
                          const BufferRegistry& reg) {
  e.u64(rt.control_epoch_);
  e.i32(rt.strobe_node_);
  e.boolean(rt.stop_requested_);
  e.u64(rt.slice_index_);
  e.i64(rt.slice_start_);
  e.u64(rt.phase_seq_);
  e.u64(rt.desc_seq_);
  e.i32(rt.active_ranks_);
  saveIntVec(e, rt.live_compute_nodes_);
  e.u32(static_cast<std::uint32_t>(rt.evicted_.size()));
  for (char c : rt.evicted_) e.u8(static_cast<std::uint8_t>(c));
  e.u32(static_cast<std::uint32_t>(rt.recovery_records_.size()));
  for (const auto& rec : rt.recovery_records_) {
    e.u64(rec.slice);
    e.i64(rec.time);
    e.boolean(rec.quiescent);
    e.u32(static_cast<std::uint32_t>(rec.jobs.size()));
    for (const auto& js : rec.jobs) {
      e.i32(js.job);
      e.i32(js.ranks);
      e.i32(js.finished_ranks);
      e.u64(js.requests_posted);
      e.u64(js.requests_completed);
    }
    e.u32(static_cast<std::uint32_t>(rec.nodes.size()));
    for (const auto& ns : rec.nodes) {
      e.i32(ns.node);
      e.u64(ns.fresh_sends);
      e.u64(ns.fresh_recvs);
      e.u64(ns.unmatched_remote);
      e.u64(ns.unmatched_recvs);
      e.u64(ns.partial_messages);
      e.u64(ns.partial_bytes_moved);
    }
  }
  const bcsmpi::RuntimeStats& s = rt.stats_;
  for (std::uint64_t v :
       {s.slices, s.microstrobes, s.descriptors_exchanged, s.matches,
        s.chunks_transferred, s.collectives_scheduled, s.slice_overruns,
        s.retransmits, s.requests_failed, s.evictions, s.recovery_slices,
        s.watchdog_fires, s.elections, s.rejoins, s.tree_levels,
        s.coalesced_acks, s.fanout_msgs_per_slice, s.checkpoints_taken,
        s.restores}) {
    e.u64(v);
  }
  e.u32(static_cast<std::uint32_t>(rt.jobs_.size()));
  for (const auto& js : rt.jobs_) {
    saveIntVec(e, js.node_of_rank);
    saveIntVec(e, js.nodes);
    e.i32(js.registered);
    e.i32(js.finished);
    e.boolean(js.degraded);
    e.u32(static_cast<std::uint32_t>(js.ranks.size()));
    for (const auto& rs : js.ranks) {
      e.boolean(rs.detached);
      e.boolean(rs.finished);
      e.u64(rs.next_req);
      e.i32(rs.next_coll_gen);
      e.u64(rs.requests_completed);
      std::vector<std::uint64_t> keys;
      keys.reserve(rs.requests.size());
      for (const auto& [id, info] : rs.requests) keys.push_back(id);
      std::sort(keys.begin(), keys.end());
      e.u32(static_cast<std::uint32_t>(keys.size()));
      for (std::uint64_t id : keys) {
        const auto& info = rs.requests.at(id);
        e.u64(id);
        e.boolean(info.complete);
        e.boolean(info.spin_waited);
        e.i32(info.status.source);
        e.i32(info.status.tag);
        e.u64(info.status.bytes);
        e.i32(info.status.error);
      }
    }
  }
  e.u32(static_cast<std::uint32_t>(rt.nodes_.size()));
  for (const auto& ns : rt.nodes_) {
    e.u32(static_cast<std::uint32_t>(ns.bs_fresh.size()));
    for (const auto& d : ns.bs_fresh) saveSend(e, reg, d);
    e.u32(static_cast<std::uint32_t>(ns.bs_retry.size()));
    for (const auto& d : ns.bs_retry) saveSend(e, reg, d);
    e.u32(static_cast<std::uint32_t>(ns.remote_sends.size()));
    ns.remote_sends.forEach(
        [&](const bcsmpi::SendDescriptor& d) { saveSend(e, reg, d); });
    e.u32(static_cast<std::uint32_t>(ns.recv_fresh.size()));
    for (const auto& d : ns.recv_fresh) saveRecv(e, reg, d);
    e.u32(static_cast<std::uint32_t>(ns.recv_eligible.size()));
    ns.recv_eligible.forEach(
        [&](const bcsmpi::RecvDescriptor& d) { saveRecv(e, reg, d); });
    e.u32(static_cast<std::uint32_t>(ns.match_queue.size()));
    for (const auto& m : ns.match_queue) {
      saveSend(e, reg, m.send);
      saveRecv(e, reg, m.recv);
      e.u64(m.offset);
    }
    e.u32(static_cast<std::uint32_t>(ns.slice_gets.size()));
    for (const auto& g : ns.slice_gets) {
      e.i32(g.src_node);
      reg.saveRef(e, g.src);
      reg.saveRef(e, g.dst);
      e.u64(g.bytes);
      e.boolean(g.final_chunk);
      e.i32(g.job);
      e.i32(g.src_rank);
      e.i32(g.dst_rank);
      e.i32(g.tag);
      e.u64(g.message_bytes);
      e.u64(g.send_req);
      e.u64(g.recv_req);
    }
    // chunk_progress is an unordered_map; serialize in sorted key order so
    // the snapshot bytes are deterministic.
    std::vector<std::pair<bcsmpi::Runtime::ProgressKey, std::size_t>> prog(
        ns.chunk_progress.begin(), ns.chunk_progress.end());
    std::sort(prog.begin(), prog.end(), [](const auto& a, const auto& b) {
      return std::tie(a.first.job, a.first.dst_rank, a.first.recv_req) <
             std::tie(b.first.job, b.first.dst_rank, b.first.recv_req);
    });
    e.u32(static_cast<std::uint32_t>(prog.size()));
    for (const auto& [key, bytes] : prog) {
      e.i32(key.job);
      e.i32(key.dst_rank);
      e.u64(key.recv_req);
      e.u64(bytes);
    }
    e.u32(static_cast<std::uint32_t>(ns.wake_list.size()));
    for (const auto& [job, rank] : ns.wake_list) {
      e.i32(job);
      e.i32(rank);
    }
    e.u32(static_cast<std::uint32_t>(ns.probe_waiters.size()));
    for (const auto& [job, rank] : ns.probe_waiters) {
      e.i32(job);
      e.i32(rank);
    }
    e.u64(ns.phase_seq);
    e.i32(ns.outstanding);
    e.boolean(ns.tree_floor);
    e.boolean(ns.tree_drain);
    e.i64(ns.last_strobe);
    e.boolean(ns.watchdog_armed);
    e.i64(ns.watchdog_at);
  }
  e.u32(static_cast<std::uint32_t>(rt.tree_racks_.size()));
  for (const auto& rack : rt.tree_racks_) {
    e.u64(rack.seq);
    e.u64(rack.acked_seq);
    e.i32(rack.pending);
  }
  e.i32(static_cast<std::int32_t>(rt.tree_phase_));
  e.boolean(rt.tree_phase_open_);
  e.boolean(rt.tree_recovering_);
  const int racks = rt.sstree_.enabled() ? rt.sstree_.rackCount() : 0;
  e.u32(static_cast<std::uint32_t>(racks));
  for (int r = 0; r < racks; ++r) e.i32(rt.sstree_.ss(r));
}

void StateIO::restoreRuntime(Decoder& d, bcsmpi::Runtime& rt,
                             const BufferRegistry& reg) {
  rt.control_epoch_ = d.u64();
  rt.strobe_node_ = d.i32();
  rt.stop_requested_ = d.boolean();
  rt.slice_index_ = d.u64();
  rt.slice_start_ = d.i64();
  rt.phase_seq_ = d.u64();
  rt.desc_seq_ = d.u64();
  rt.active_ranks_ = d.i32();
  rt.live_compute_nodes_ = loadIntVec(d);
  const std::uint32_t nevicted = d.u32();
  if (nevicted != rt.evicted_.size()) d.fail("evicted-set size mismatch");
  for (char& c : rt.evicted_) c = static_cast<char>(d.u8());
  rt.recovery_records_.clear();
  const std::uint32_t nrecords = d.u32();
  for (std::uint32_t i = 0; i < nrecords; ++i) {
    bcsmpi::CheckpointRecord rec;
    rec.slice = d.u64();
    rec.time = d.i64();
    rec.quiescent = d.boolean();
    const std::uint32_t njobs = d.u32();
    for (std::uint32_t j = 0; j < njobs; ++j) {
      bcsmpi::CheckpointRecord::JobSnapshot js;
      js.job = d.i32();
      js.ranks = d.i32();
      js.finished_ranks = d.i32();
      js.requests_posted = d.u64();
      js.requests_completed = d.u64();
      rec.jobs.push_back(js);
    }
    const std::uint32_t nnodes = d.u32();
    for (std::uint32_t n = 0; n < nnodes; ++n) {
      bcsmpi::CheckpointRecord::NodeSnapshot ns;
      ns.node = d.i32();
      ns.fresh_sends = d.u64();
      ns.fresh_recvs = d.u64();
      ns.unmatched_remote = d.u64();
      ns.unmatched_recvs = d.u64();
      ns.partial_messages = d.u64();
      ns.partial_bytes_moved = d.u64();
      rec.nodes.push_back(ns);
    }
    rt.recovery_records_.push_back(std::move(rec));
  }
  bcsmpi::RuntimeStats& s = rt.stats_;
  for (std::uint64_t* v :
       {&s.slices, &s.microstrobes, &s.descriptors_exchanged, &s.matches,
        &s.chunks_transferred, &s.collectives_scheduled, &s.slice_overruns,
        &s.retransmits, &s.requests_failed, &s.evictions, &s.recovery_slices,
        &s.watchdog_fires, &s.elections, &s.rejoins, &s.tree_levels,
        &s.coalesced_acks, &s.fanout_msgs_per_slice, &s.checkpoints_taken,
        &s.restores}) {
    *v = d.u64();
  }
  const std::uint32_t njobs = d.u32();
  if (njobs != rt.jobs_.size()) d.fail("job count mismatch");
  for (auto& js : rt.jobs_) {
    js.node_of_rank = loadIntVec(d);
    js.nodes = loadIntVec(d);
    js.registered = d.i32();
    js.finished = d.i32();
    js.degraded = d.boolean();
    const std::uint32_t nranks = d.u32();
    if (nranks != js.ranks.size()) d.fail("rank count mismatch");
    for (auto& rs : js.ranks) {
      rs.proc = nullptr;
      rs.detached = d.boolean();
      rs.finished = d.boolean();
      rs.next_req = d.u64();
      rs.next_coll_gen = d.i32();
      rs.requests_completed = d.u64();
      rs.requests.clear();
      const std::uint32_t nreqs = d.u32();
      for (std::uint32_t i = 0; i < nreqs; ++i) {
        const std::uint64_t id = d.u64();
        auto& info = rs.requests[id];
        info.complete = d.boolean();
        info.spin_waited = d.boolean();
        info.status.source = d.i32();
        info.status.tag = d.i32();
        info.status.bytes = d.u64();
        info.status.error = d.i32();
      }
    }
  }
  const std::uint32_t nnodes = d.u32();
  if (nnodes != rt.nodes_.size()) d.fail("node count mismatch");
  for (auto& ns : rt.nodes_) {
    ns.bs_fresh.clear();
    for (std::uint32_t i = 0, n = d.u32(); i < n; ++i) {
      ns.bs_fresh.push_back(loadSend(d, reg));
    }
    ns.bs_retry.clear();
    for (std::uint32_t i = 0, n = d.u32(); i < n; ++i) {
      ns.bs_retry.push_back(loadSend(d, reg));
    }
    ns.remote_sends.clear();
    for (std::uint32_t i = 0, n = d.u32(); i < n; ++i) {
      ns.remote_sends.insert(loadSend(d, reg));
    }
    ns.recv_fresh.clear();
    for (std::uint32_t i = 0, n = d.u32(); i < n; ++i) {
      ns.recv_fresh.push_back(loadRecv(d, reg));
    }
    ns.recv_eligible.clear();
    for (std::uint32_t i = 0, n = d.u32(); i < n; ++i) {
      ns.recv_eligible.insert(loadRecv(d, reg));
    }
    ns.match_queue.clear();
    for (std::uint32_t i = 0, n = d.u32(); i < n; ++i) {
      bcsmpi::MatchDescriptor m;
      m.send = loadSend(d, reg);
      m.recv = loadRecv(d, reg);
      m.offset = d.u64();
      ns.match_queue.push_back(std::move(m));
    }
    ns.slice_gets.clear();
    for (std::uint32_t i = 0, n = d.u32(); i < n; ++i) {
      bcsmpi::Runtime::GetOp g;
      g.src_node = d.i32();
      g.src = reg.loadRef(d);
      g.dst = reg.loadRef(d);
      g.bytes = d.u64();
      g.final_chunk = d.boolean();
      g.job = d.i32();
      g.src_rank = d.i32();
      g.dst_rank = d.i32();
      g.tag = d.i32();
      g.message_bytes = d.u64();
      g.send_req = d.u64();
      g.recv_req = d.u64();
      ns.slice_gets.push_back(g);
    }
    ns.chunk_progress.clear();
    for (std::uint32_t i = 0, n = d.u32(); i < n; ++i) {
      bcsmpi::Runtime::ProgressKey key;
      key.job = d.i32();
      key.dst_rank = d.i32();
      key.recv_req = d.u64();
      ns.chunk_progress[key] = d.u64();
    }
    ns.wake_list.clear();
    for (std::uint32_t i = 0, n = d.u32(); i < n; ++i) {
      const int job = d.i32();
      const int rank = d.i32();
      ns.wake_list.emplace_back(job, rank);
    }
    ns.probe_waiters.clear();
    for (std::uint32_t i = 0, n = d.u32(); i < n; ++i) {
      const int job = d.i32();
      const int rank = d.i32();
      ns.probe_waiters.emplace_back(job, rank);
    }
    ns.phase_seq = d.u64();
    ns.outstanding = d.i32();
    ns.tree_floor = d.boolean();
    ns.tree_drain = d.boolean();
    ns.last_strobe = d.i64();
    ns.watchdog_armed = d.boolean();
    ns.watchdog_at = d.i64();
  }
  const std::uint32_t nracks = d.u32();
  if (nracks != rt.tree_racks_.size()) d.fail("tree rack count mismatch");
  for (auto& rack : rt.tree_racks_) {
    rack.seq = d.u64();
    rack.acked_seq = d.u64();
    rack.pending = d.i32();
  }
  rt.tree_phase_ = static_cast<bcsmpi::Phase>(d.i32());
  rt.tree_phase_open_ = d.boolean();
  rt.tree_recovering_ = d.boolean();
  const std::uint32_t ss_racks = d.u32();
  const std::uint32_t fresh_racks = static_cast<std::uint32_t>(
      rt.sstree_.enabled() ? rt.sstree_.rackCount() : 0);
  if (ss_racks != fresh_racks) d.fail("SS-tree rack count mismatch");
  if (rt.sstree_.enabled()) {
    // Membership first (derived from the evicted set), then roles.
    for (std::size_t n = 0; n < rt.evicted_.size(); ++n) {
      if (rt.evicted_[n]) rt.sstree_.evict(static_cast<int>(n));
    }
    for (std::uint32_t r = 0; r < ss_racks; ++r) {
      const int ss = d.i32();
      if (ss != -1 && ss != rt.sstree_.ss(static_cast<int>(r))) {
        rt.sstree_.setSs(static_cast<int>(r), ss);
      }
    }
  }
  d.expectEnd();
}

void StateIO::saveWorkload(Encoder& e, const DetachedRing& wl) {
  e.u32(static_cast<std::uint32_t>(wl.sms_.size()));
  for (const auto& sm : wl.sms_) {
    e.i32(sm.round);
    e.boolean(sm.waiting);
    e.u64(sm.send_req);
    e.u64(sm.recv_req);
    e.boolean(sm.send_done);
    e.boolean(sm.recv_done);
    e.i64(sm.next_tick_at);
    e.boolean(sm.finished);
  }
  e.i32(wl.finished_count_);
}

void StateIO::restoreWorkload(Decoder& d, DetachedRing& wl) {
  const std::uint32_t n = d.u32();
  if (n != wl.sms_.size()) d.fail("rank count mismatch");
  for (auto& sm : wl.sms_) {
    sm.round = d.i32();
    sm.waiting = d.boolean();
    sm.send_req = d.u64();
    sm.recv_req = d.u64();
    sm.send_done = d.boolean();
    sm.recv_done = d.boolean();
    sm.next_tick_at = d.i64();
    sm.finished = d.boolean();
  }
  wl.finished_count_ = d.i32();
  d.expectEnd();
}

void StateIO::saveAll(Simulation& sim, SnapshotWriter& w) {
  sim::Engine& eng = sim.cluster->engine();
  bcsmpi::Runtime& rt = *sim.runtime;
  const BufferRegistry& reg = *sim.registry;

  {
    Encoder e;
    e.i64(eng.now());
    e.u64(rt.slice_index_);
    e.u64(sim.cluster->trace().dump().size());
    e.u64(sim.cluster->trace().records().size());
    e.boolean(sim.storm != nullptr);
    e.boolean(rt.verifier_ != nullptr);
    w.addSection("meta", e.data());
  }
  {
    Encoder e;
    e.i64(eng.now_);
    e.u32(static_cast<std::uint32_t>(eng.shard_seq_.size()));
    for (std::uint64_t s : eng.shard_seq_) e.u64(s);
    e.u64(eng.handoff_seq_);
    e.u64(eng.executed_);
    e.u64(eng.cancelled_);
    e.u64(eng.dropped_tombstones_);
    w.addSection("engine", e.data());
  }
  {
    Encoder e;
    for (std::uint64_t word : sim.cluster->rng().state_) e.u64(word);
    w.addSection("rng", e.data());
  }
  {
    Encoder e;
    sim::FaultInjector& fi = *sim.cluster->faults();
    for (std::uint64_t word : fi.rng_.state_) e.u64(word);
    e.u64(fi.stats_.drops);
    e.u64(fi.stats_.degrades);
    e.u64(fi.stats_.forced_down);
    // Faults forced at run time (Storm::killNode & co.) live past the
    // configured plan entries; a restore re-appends them onto whatever plan
    // the branch supplies.
    const std::size_t base = sim.spec.cluster.faults.node_faults.size();
    const auto& all = fi.plan_.node_faults;
    e.u32(static_cast<std::uint32_t>(all.size() - base));
    for (std::size_t i = base; i < all.size(); ++i) {
      e.i32(all[i].node);
      e.i64(all[i].at);
      e.i64(all[i].hang);
    }
    w.addSection("fault", e.data());
  }
  {
    Encoder e;
    net::Fabric& f = sim.cluster->fabric();
    e.u32(static_cast<std::uint32_t>(f.endpoints_.size()));
    for (const auto& ep : f.endpoints_) {
      e.i64(ep.egress_free);
      e.i64(ep.ingress_free);
    }
    const net::FabricStats s = f.stats();
    for (std::uint64_t v : {s.unicasts, s.multicasts, s.conditionals,
                            s.payload_bytes, s.drops, s.failed_sends,
                            s.suppressed_deliveries,
                            s.suppressed_conditionals}) {
      e.u64(v);
    }
    w.addSection("fabric", e.data());
  }
  {
    Encoder e;
    saveCore(e, rt.core_);
    w.addSection("core.runtime", e.data());
  }
  {
    Encoder e;
    saveRuntime(e, rt, reg);
    w.addSection("runtime", e.data());
  }
  if (sim.storm) {
    {
      Encoder e;
      saveCore(e, sim.storm->core_);
      w.addSection("core.storm", e.data());
    }
    Encoder e;
    saveStorm(e, *sim.storm);
    w.addSection("storm", e.data());
  }
  if (rt.verifier_) {
    Encoder e;
    saveVerifier(e, *rt.verifier_);
    w.addSection("verify", e.data());
  }
  {
    Encoder e;
    saveWorkload(e, *sim.workload);
    w.addSection("workload", e.data());
  }
  {
    Encoder e;
    reg.saveContents(e);
    w.addSection("buffers", e.data());
  }
}

void StateIO::restoreAll(Simulation& sim, const SnapshotReader& r) {
  sim::Engine& eng = sim.cluster->engine();
  bcsmpi::Runtime& rt = *sim.runtime;

  const std::string meta_raw = r.section("meta");
  Decoder meta(meta_raw, "meta");
  const sim::SimTime now = meta.i64();
  meta.u64();  // slice index (informational; restored with the runtime)
  meta.u64();  // trace dump bytes at capture
  meta.u64();  // trace record count at capture
  const bool with_storm = meta.boolean();
  const bool with_verify = meta.boolean();
  meta.expectEnd();
  if (with_storm != (sim.storm != nullptr)) {
    meta.fail("snapshot and scenario disagree on STORM presence");
  }
  if (with_verify != (rt.verifier_ != nullptr)) {
    meta.fail("snapshot and scenario disagree on the verifier");
  }

  {
    const std::string raw = r.section("engine");
    Decoder d(raw, "engine");
    eng.now_ = d.i64();
    if (eng.now_ != now) d.fail("engine clock disagrees with meta");
    eng.base_ = static_cast<std::uint64_t>(eng.now_) >>
                sim::Engine::kBucketShift;
    const std::uint32_t nshards = d.u32();
    eng.shard_seq_.assign(nshards, 0);
    for (std::uint64_t& s : eng.shard_seq_) s = d.u64();
    eng.handoff_seq_ = d.u64();
    eng.executed_ = d.u64();
    eng.cancelled_ = d.u64();
    eng.dropped_tombstones_ = d.u64();
    d.expectEnd();
  }
  {
    const std::string raw = r.section("rng");
    Decoder d(raw, "rng");
    for (std::uint64_t& word : sim.cluster->rng().state_) word = d.u64();
    d.expectEnd();
  }
  {
    const std::string raw = r.section("fault");
    Decoder d(raw, "fault");
    sim::FaultInjector& fi = *sim.cluster->faults();
    for (std::uint64_t& word : fi.rng_.state_) word = d.u64();
    fi.stats_.drops = d.u64();
    fi.stats_.degrades = d.u64();
    fi.stats_.forced_down = d.u64();
    for (std::uint32_t i = 0, n = d.u32(); i < n; ++i) {
      sim::FaultPlan::NodeFault nf;
      nf.node = d.i32();
      nf.at = d.i64();
      nf.hang = d.i64();
      fi.plan_.node_faults.push_back(nf);
    }
    d.expectEnd();
  }
  {
    const std::string raw = r.section("fabric");
    Decoder d(raw, "fabric");
    net::Fabric& f = sim.cluster->fabric();
    const std::uint32_t n = d.u32();
    if (n != f.endpoints_.size()) d.fail("endpoint count mismatch");
    for (auto& ep : f.endpoints_) {
      ep.egress_free = d.i64();
      ep.ingress_free = d.i64();
    }
    // Fold the captured stripes into stripe 0 — the serial path's stripe;
    // restored runs continue serially.  The remaining stripes of the fresh
    // fabric are already zero.
    net::FabricStats& s = f.stat_stripes_[0].s;
    s.unicasts = d.u64();
    s.multicasts = d.u64();
    s.conditionals = d.u64();
    s.payload_bytes = d.u64();
    s.drops = d.u64();
    s.failed_sends = d.u64();
    s.suppressed_deliveries = d.u64();
    s.suppressed_conditionals = d.u64();
    d.expectEnd();
  }
  {
    const std::string raw = r.section("core.runtime");
    Decoder d(raw, "core.runtime");
    restoreCore(d, rt.core_);
  }
  {
    const std::string raw = r.section("runtime");
    Decoder d(raw, "runtime");
    restoreRuntime(d, rt, *sim.registry);
  }
  if (sim.storm) {
    {
      const std::string raw = r.section("core.storm");
      Decoder d(raw, "core.storm");
      restoreCore(d, sim.storm->core_);
    }
    const std::string raw = r.section("storm");
    Decoder d(raw, "storm");
    restoreStorm(d, *sim.storm);
  }
  if (rt.verifier_) {
    const std::string raw = r.section("verify");
    Decoder d(raw, "verify");
    restoreVerifier(d, *rt.verifier_);
  }
  {
    const std::string raw = r.section("workload");
    Decoder d(raw, "workload");
    restoreWorkload(d, *sim.workload);
  }
  {
    const std::string raw = r.section("buffers");
    Decoder d(raw, "buffers");
    sim.registry->restoreContents(d);
    d.expectEnd();
  }

  // ---- Re-arm timers (engine clock already warped to the capture instant).
  // All re-armed deadlines are pairwise distinct by the off-grid cadence
  // argument (DESIGN.md §8), so only one ordering property matters: every
  // re-armed event draws its sequence number before the resume event fires,
  // hence before anything the continuation schedules — matching the
  // interrupted run, where all pending events were armed before the
  // boundary.

  // Slice watchdogs, node-ascending (their original arming order).
  for (int n : rt.all_compute_nodes_) {
    auto& ns = rt.nodes_[static_cast<std::size_t>(n)];
    if (!ns.watchdog_armed) continue;
    ns.watchdog_armed = false;
    rt.armWatchdogAt(n, ns.watchdog_at);
  }

  // STORM heartbeat chain: the pending inspection first, then the next
  // round — the order heartbeatRound arms them in.
  if (sim.storm) {
    storm::Storm& st = *sim.storm;
    if (st.inspect_pending_) {
      eng.at(st.inspect_at_, [sp = sim.storm.get(), seq = st.inspect_seq_] {
        sp->inspectRound(seq);
      });
    }
    if (st.next_round_at_ > now) st.scheduleRound(st.next_round_at_);
  }

  // Workload ticks, rank-ascending.
  for (std::size_t r = 0; r < sim.workload->sms_.size(); ++r) {
    const auto& sm = sim.workload->sms_[r];
    if (sm.finished) continue;
    sim.workload->armTick(static_cast<int>(r), sm.next_tick_at);
  }

  ++rt.stats_.restores;

  // The resume event: runs the post-capture tail of the slice boundary.
  eng.at(now, [rp = sim.runtime.get()] { rp->resumeFromRestore(); });
}

}  // namespace bcs::snapshot
