#include "net/cluster.hpp"

#include <utility>

namespace bcs::net {

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  if (config_.num_compute_nodes <= 0) {
    throw sim::SimError("Cluster: need at least one compute node");
  }
  fabric_ = std::make_unique<Fabric>(engine_, config_.network, totalNodes(),
                                     &trace_);
  // The injector always exists (so run-time actors like Storm::killNode can
  // register faults through it even on fault-free configs); an empty plan
  // draws no randomness and changes no timing.  Stream 13 is reserved for
  // fault decisions so adding faults never perturbs the workload/noise
  // randomness of an otherwise identical run.
  sim::FaultPlan plan = config_.faults;
  for (sim::FaultPlan::NodeFault& f : plan.node_faults) {
    if (f.node == sim::FaultPlan::kManagementNode) f.node = managementNode();
  }
  fault_ = std::make_unique<sim::FaultInjector>(std::move(plan),
                                                sim::deriveSeed(config_.seed, 13));
  fabric_->setFaultInjector(fault_.get());
  if (!config_.faults.empty()) {
    trace_.record(0, sim::TraceCategory::kFault, -1,
                  "fault plan: " + config_.faults.describe());
  }
  cpus_.reserve(static_cast<std::size_t>(totalNodes()));
  for (int n = 0; n < totalNodes(); ++n) {
    cpus_.push_back(
        std::make_unique<sim::CpuScheduler>(engine_, config_.cpus_per_node));
  }
  if (config_.inject_noise) {
    for (int n = 0; n < numComputeNodes(); ++n) {
      // Coordinated (coscheduled) dæmons must stay in phase forever, so
      // they share one jitter stream; uncoordinated ones drift on their
      // own per-node streams.
      const std::uint64_t stream =
          config_.noise.coordinated ? 7 : static_cast<std::uint64_t>(n) + 1000;
      auto inj = std::make_unique<sim::NoiseInjector>(
          engine_, *cpus_[static_cast<std::size_t>(n)], config_.noise,
          sim::deriveSeed(config_.seed, stream));
      inj->start(0);
      noise_.push_back(std::move(inj));
    }
  }
}

sim::Process& Cluster::spawn(int node, std::string name,
                             sim::Process::Body body, sim::SimTime when) {
  if (node < 0 || node >= totalNodes()) {
    throw sim::SimError("Cluster::spawn: bad node " + std::to_string(node));
  }
  processes_.push_back(std::make_unique<sim::Process>(
      engine_, *cpus_[static_cast<std::size_t>(node)], node, std::move(name),
      std::move(body)));
  processes_.back()->start(std::max(when, engine_.now()));
  return *processes_.back();
}

sim::SimTime Cluster::run(sim::SimTime until) {
  // Noise dæmons re-arm themselves forever; when asked to run to queue
  // drain we must stop them once all processes finish, otherwise the run
  // never terminates.  run() therefore loops: run a bounded horizon, check.
  if (noise_.empty() || until != INT64_MAX) return engine_.run(until);

  while (true) {
    // Advance in 100 ms slabs until all processes have finished.
    const sim::SimTime horizon = engine_.now() + sim::msec(100);
    engine_.run(horizon);
    if (allProcessesFinished()) {
      for (auto& n : noise_) n->stop();
      return engine_.run();  // drain remaining events
    }
    if (engine_.pendingEvents() == 0) return engine_.now();  // deadlock
  }
}

sim::SimTime Cluster::run(const sim::ParallelPolicy& policy,
                          sim::SimTime until) {
  // Mirrors the serial overload's noise-dæmon handling.
  if (noise_.empty() || until != INT64_MAX) return engine_.run(policy, until);

  while (true) {
    const sim::SimTime horizon = engine_.now() + sim::msec(100);
    engine_.run(policy, horizon);
    if (allProcessesFinished()) {
      for (auto& n : noise_) n->stop();
      return engine_.run(policy);
    }
    if (engine_.pendingEvents() == 0) return engine_.now();  // deadlock
  }
}

bool Cluster::allProcessesFinished() const {
  for (const auto& p : processes_) {
    if (!p->finished()) return false;
  }
  return true;
}

std::vector<std::string> Cluster::unfinishedProcesses() const {
  std::vector<std::string> out;
  for (const auto& p : processes_) {
    if (!p->finished()) out.push_back(p->name());
  }
  return out;
}

}  // namespace bcs::net
