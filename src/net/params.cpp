#include "net/params.hpp"

namespace bcs::net {

using sim::usec;

NetworkParams NetworkParams::qsnet() {
  // Quadrics QsNet / Elan3 (QM-400) as deployed in the paper's "crescendo"
  // cluster [Petrini et al., IEEE Micro 22(1)]: ~340 MB/s links, ~2 us MPI
  // half round trip dominated by software, 66 MHz/64-bit PCI (~500 MB/s
  // peak, ~400 MB/s sustained), hardware multicast and network conditionals
  // in the Elite switches.  The conditional lands < 10 us out to 1024 nodes
  // (Table 1), the multicast delivers > 150 MB/s per destination.
  NetworkParams p;
  p.name = "QsNet";
  p.wire_latency = sim::nsec(300);
  p.hop_latency = sim::nsec(35);
  p.nic_tx_overhead = sim::nsec(700);
  p.nic_rx_overhead = sim::nsec(500);
  p.link_bandwidth = 0.340;   // 340 MB/s
  p.pci_bandwidth = 0.400;    // sustained 64-bit/66 MHz PCI
  p.pci_latency = sim::nsec(250);
  p.radix = 4;                // quaternary fat tree
  p.hw_multicast = true;
  p.hw_conditional = true;
  p.mcast_base_latency = usec(3);
  p.cond_base_latency = usec(4);
  p.cond_hop_latency = sim::nsec(500);
  p.sw_step_latency = usec(8);  // only used if hw support is disabled
  p.mcast_bandwidth = 0.200;    // > 150 MB/s per destination
  return p;
}

NetworkParams NetworkParams::gigabitEthernet() {
  // Gigabit Ethernet with an EMP-style OS-bypass stack [Shivam et al.,
  // SC'01].  No collective hardware: BCS primitives are emulated with a
  // binomial software tree at ~46 us per level (Table 1 row 1).
  NetworkParams p;
  p.name = "GigE";
  p.wire_latency = usec(20);
  p.hop_latency = usec(5);
  p.nic_tx_overhead = usec(8);
  p.nic_rx_overhead = usec(8);
  p.link_bandwidth = 0.125;  // 1 Gb/s
  p.pci_bandwidth = 0.400;
  p.pci_latency = sim::nsec(500);
  p.radix = 16;
  p.hw_multicast = false;
  p.hw_conditional = false;
  p.mcast_base_latency = 0;
  p.cond_base_latency = 0;
  p.cond_hop_latency = 0;
  p.sw_step_latency = usec(46);
  p.mcast_bandwidth = 0.010;  // store-and-forward relaying
  return p;
}

NetworkParams NetworkParams::myrinet() {
  // Myrinet 2000 with NIC-assisted multicast [Bhoedjang et al., ICPP'98;
  // Buntinas et al., CANPC'00]: ~20 us per software-tree level for the
  // conditional, ~15 MB/s delivered per destination for NIC-based multicast
  // (aggregate ~15n MB/s, Table 1 row 2).
  NetworkParams p;
  p.name = "Myrinet";
  p.wire_latency = usec(6);
  p.hop_latency = sim::nsec(300);
  p.nic_tx_overhead = usec(1);
  p.nic_rx_overhead = usec(1);
  p.link_bandwidth = 0.245;  // ~2 Gb/s
  p.pci_bandwidth = 0.400;
  p.pci_latency = sim::nsec(300);
  p.radix = 16;
  p.hw_multicast = false;
  p.hw_conditional = false;
  p.mcast_base_latency = 0;
  p.cond_base_latency = 0;
  p.cond_hop_latency = 0;
  p.sw_step_latency = usec(20);
  p.mcast_bandwidth = 0.015;  // 15 MB/s per destination
  return p;
}

NetworkParams NetworkParams::infiniband() {
  // Infiniband 4x (spec 1.0a era): good point-to-point, but BCS primitives
  // emulated in software at ~20 us per tree level (Table 1 row 3).
  NetworkParams p;
  p.name = "Infiniband";
  p.wire_latency = usec(5);
  p.hop_latency = sim::nsec(200);
  p.nic_tx_overhead = usec(2);
  p.nic_rx_overhead = usec(2);
  p.link_bandwidth = 0.800;  // 4x SDR payload
  p.pci_bandwidth = 0.400;   // PCI-X hosts of the era
  p.pci_latency = sim::nsec(300);
  p.radix = 8;
  p.hw_multicast = false;
  p.hw_conditional = false;
  p.mcast_base_latency = 0;
  p.cond_base_latency = 0;
  p.cond_hop_latency = 0;
  p.sw_step_latency = usec(20);
  p.mcast_bandwidth = 0.060;
  return p;
}

NetworkParams NetworkParams::bluegeneL() {
  // BlueGene/L [Gupta, Scaling to New Heights '02]: dedicated collective
  // and barrier networks — conditional < 2 us, broadcast delivers ~700 MB/s
  // per node (Table 1 row 5).
  NetworkParams p;
  p.name = "BlueGene/L";
  p.wire_latency = sim::nsec(100);
  p.hop_latency = sim::nsec(50);
  p.nic_tx_overhead = sim::nsec(300);
  p.nic_rx_overhead = sim::nsec(300);
  p.link_bandwidth = 0.175;  // per torus link
  p.pci_bandwidth = 0;       // memory-integrated NIC
  p.pci_latency = 0;
  p.radix = 4;
  p.hw_multicast = true;
  p.hw_conditional = true;
  p.mcast_base_latency = usec(1);
  p.cond_base_latency = usec(1);
  p.cond_hop_latency = sim::nsec(100);
  p.sw_step_latency = usec(5);
  p.mcast_bandwidth = 0.700;  // 700 MB/s per node
  return p;
}

}  // namespace bcs::net
