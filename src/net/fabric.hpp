#pragma once

// The interconnect fabric: timing model for unicasts, multicasts and network
// conditionals over a fat tree.
//
// The fabric is a *timing* oracle: callers pass callbacks and the fabric
// invokes them at the simulated instants where the corresponding hardware
// would raise its events.  Data movement itself (copying payload bytes into
// destination buffers, signalling QsNet-style events) is layered on top by
// the BCS core (src/bcs) — this keeps the fabric reusable for the baseline
// MPI as well.
//
// Point-to-point cost model (LogGP-flavoured):
//
//     inject  = now + o_tx + pci_lat
//     startTx = max(inject, egressFree[src]);  egress busy for G*S
//     arrival = startTx + L(src,dst) + G*S     (cut-through pipe)
//     deliver = max(arrival, ingressFree[dst] + G*S) + o_rx
//
// so an uncontended transfer costs o_tx + L + G*S + o_rx and endpoints
// serialize under contention — the behaviour that matters for the paper's
// nearest-neighbour and alltoall patterns.
//
// Hardware multicast occupies the source egress once and the switch fans the
// packet out; per-destination delivery bandwidth comes from
// NetworkParams::mcast_bandwidth.  Networks without hardware support fall
// back to a binomial software tree of unicasts with a per-level software
// step (sw_step_latency), which reproduces the 46/20 us-per-level rows of
// the paper's Table 1.
//
// The network conditional evaluates a predicate on a node set at one
// simulated instant and (optionally) writes a value back at that same
// instant — this is what makes Compare-And-Write sequentially consistent.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/params.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace bcs::race {
class RaceDetector;
}

namespace bcs::net {

using sim::Duration;
using sim::SimTime;

/// Aggregate fabric statistics, for utilization reports and tests.  All
/// counters are std::uint64_t (payload_bytes included — it used to be a
/// double, which silently loses exactness past 2^53 bytes).
struct FabricStats {
  std::uint64_t unicasts = 0;
  std::uint64_t multicasts = 0;
  std::uint64_t conditionals = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t drops = 0;         ///< droppable unicasts lost at random
  std::uint64_t failed_sends = 0;  ///< unicasts to/from a down endpoint
  std::uint64_t suppressed_deliveries = 0;  ///< multicast legs to down nodes
  std::uint64_t suppressed_conditionals = 0;  ///< rounds whose issuer died

  /// Zeroes every counter (interval measurements around a workload).
  void reset() { *this = FabricStats{}; }
};

/// Per-send options for unicast.  Default-constructed == the historical
/// behaviour: reliable delivery, no failure notification.
struct SendOptions {
  /// Marks the packet as subject to random loss/degradation from the
  /// FaultPlan.  Senders of protocol-critical traffic (strobes, heartbeats)
  /// leave this false: on QsNet those paths are hardware-reliable and fail
  /// only when an endpoint is down.
  bool droppable = false;
  /// Invoked (instead of on_delivered) when the transfer is lost or an
  /// endpoint is down, at the instant the sender's ack timer would expire.
  /// Without it, a lost packet is silently dropped.
  std::function<void()> on_failed;
};

class Fabric {
 public:
  Fabric(sim::Engine& engine, NetworkParams params, int num_nodes,
         sim::Trace* trace = nullptr);

  int numNodes() const { return num_nodes_; }
  const NetworkParams& params() const { return params_; }
  const FatTree& topology() const { return tree_; }

  /// End-to-end first-bit latency between two nodes (no payload term).
  Duration baseLatency(int src, int dst) const;

  /// Sends `bytes` from src to dst.  `on_delivered` fires at the instant the
  /// last byte (plus rx overhead) lands at dst; `on_injected` (optional)
  /// fires when the source NIC egress is free again.  Under an attached
  /// FaultInjector the transfer may be lost (see SendOptions).
  void unicast(int src, int dst, std::size_t bytes,
               std::function<void()> on_delivered,
               std::function<void()> on_injected = {}, SendOptions opts = {});

  /// Multicasts `bytes` from src to every node in `dests` (src excluded
  /// automatically if present).  `on_delivered_at(node)` fires per
  /// destination; `on_all` (optional) once after the last delivery.
  void multicast(int src, std::vector<int> dests, std::size_t bytes,
                 std::function<void(int)> on_delivered_at,
                 std::function<void()> on_all = {});

  /// Network conditional: at one instant T (= now + conditional latency),
  /// evaluates eval(node) for each node in `nodes`; if all are true, runs
  /// write(node) for each node at T.  on_result(all_true) also runs at T.
  /// This is the substrate for Compare-And-Write.
  void conditional(int src, std::vector<int> nodes,
                   std::function<bool(int)> eval,
                   std::function<void(int)> write,
                   std::function<void(bool)> on_result);

  /// Latency of one conditional round for `n` participating nodes.
  Duration conditionalLatency(int n) const;

  /// First-bit latency of a multicast reaching every destination.
  Duration multicastLatency() const;

  /// Folded view over the per-worker statistic stripes.  Cheap (a few
  /// cache lines); call between runs, not from concurrent model code.
  FabricStats stats() const;

  /// Attaches (or detaches, with nullptr) a fault injector.  Not owned; must
  /// outlive the fabric or be detached first.  Incompatible with a shard map
  /// (fault decisions draw from one RNG stream, which concurrent shard
  /// workers would consume in nondeterministic order).
  void setFaultInjector(sim::FaultInjector* injector);
  sim::FaultInjector* faultInjector() const { return fault_; }

  /// Declares the node → shard placement for parallel engine runs
  /// (Engine::run(ParallelPolicy)).  `shard_of[n]` is node n's shard; an
  /// empty vector (the default) disables the feature.  With a map in place:
  ///   * same-shard unicasts behave exactly as before;
  ///   * cross-shard unicasts model the source side normally, then deliver
  ///     through Engine::handoff to the destination's shard — skipping the
  ///     destination ingress-serialization term, since that endpoint state
  ///     belongs to another shard (a documented approximation: barrier
  ///     spacing at or below the minimum network latency keeps deliveries
  ///     past the next barrier, the classic conservative-window condition);
  ///   * multicast/conditional with cross-shard participants fail loudly —
  ///     keep collective control traffic on one shard;
  ///   * stats counters are bumped atomically (relaxed).
  /// The BCS runtime never installs a map — its whole control plane runs on
  /// shard 0 — so every existing code path is untouched.
  void setShardMap(std::vector<sim::ShardId> shard_of);
  bool shardMapped() const { return !shard_map_.empty(); }

  /// Attaches (or detaches, with nullptr) the shard-ownership race detector
  /// (src/race).  Not owned; must outlive the fabric or be detached first.
  /// Registers every NIC endpoint with its owning shard (the shard map's,
  /// or shard 0) and the statistic stripes as shared-exempt; setShardMap
  /// re-tags the endpoints if it runs later.  Zero cost when detached: one
  /// null-pointer check per endpoint touch.
  void setRaceDetector(race::RaceDetector* detector);
  race::RaceDetector* raceDetector() const { return race_; }

  sim::Engine& engine() { return engine_; }

 private:
  struct Endpoint {
    SimTime egress_free = 0;
    SimTime ingress_free = 0;
  };

  void softwareMulticast(int src, const std::vector<int>& dests,
                         std::size_t bytes,
                         std::function<void(int)> on_delivered_at,
                         std::function<void()> on_all);

  void checkNode(int node) const;
  /// (Re-)registers endpoint ownership with the attached race detector.
  void registerRaceObjects();
  /// Counter bump routed to the calling worker's statistic stripe, so
  /// concurrent shard workers never ping-pong one shared cache line.  The
  /// serial path (no worker context) keeps a plain non-atomic add.
  void bump(std::uint64_t FabricStats::* counter, std::uint64_t delta = 1);

  sim::Engine& engine_;
  NetworkParams params_;
  int num_nodes_;
  FatTree tree_;
  std::vector<Endpoint> endpoints_;
  sim::Trace* trace_;
  sim::FaultInjector* fault_ = nullptr;
  race::RaceDetector* race_ = nullptr;  ///< src/race observer; not owned
  std::vector<sim::ShardId> shard_map_;  ///< node -> shard; empty = off

  /// Stripe 0 belongs to the serial path (and the coordinator outside a
  /// drain); workers 0..N hash onto stripes 1..kStatStripes-1, each on its
  /// own cache line.  stats() folds them back into one FabricStats.
  static constexpr std::size_t kStatStripes = 16;
  struct alignas(64) StatStripe {
    FabricStats s;
  };
  StatStripe stat_stripes_[kStatStripes];

  /// Snapshot serializer (src/snapshot): endpoint free-times and the folded
  /// stats round-trip; restore folds all stripes into stripe 0 (the serial
  /// path's stripe — restored runs continue serially).
  friend class bcs::snapshot::StateIO;
};

}  // namespace bcs::net
