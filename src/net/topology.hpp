#pragma once

// Fat-tree topology helper.
//
// QsNet builds quaternary fat trees: nodes are leaves; each switch level
// groups `radix` subtrees.  For timing we only need the number of switch
// levels a message crosses (up to the lowest common ancestor and back down),
// which this class computes from node indices.

#include <stdexcept>

namespace bcs::net {

class FatTree {
 public:
  FatTree(int num_nodes, int radix);

  int numNodes() const { return num_nodes_; }
  int radix() const { return radix_; }
  int levels() const { return levels_; }

  /// Number of switch levels to the lowest common ancestor of a and b
  /// (1 = same leaf switch).  a != b required.
  int lcaLevel(int a, int b) const;

  /// Switch hops crossed by a packet from a to b: up to the LCA and back
  /// down (2 * lcaLevel - 1 links between switches + adapters folded into
  /// per-hop cost by the caller).
  int hops(int a, int b) const;

 private:
  int num_nodes_;
  int radix_;
  int levels_;
};

/// Rack grouping for the hierarchical control plane (DESIGN.md §7): compute
/// nodes are partitioned into racks of `fanout` consecutive indices —
/// [0, fanout), [fanout, 2*fanout), ... — matching how a fat tree places
/// physically adjacent leaves under one edge switch, so a rack-local
/// multicast stays within one switch subtree.  Pure index arithmetic; the
/// live membership bookkeeping on top of it lives in storm::SsTree.
class RackLayout {
 public:
  RackLayout(int num_nodes, int fanout);

  int numNodes() const { return num_nodes_; }
  int fanout() const { return fanout_; }
  int rackCount() const { return rack_count_; }

  /// Rack that node `n` belongs to.
  int rackOf(int n) const;

  /// Lowest node index of rack `r`.
  int rackFirst(int r) const;

  /// Number of nodes in rack `r` (the last rack may be short).
  int rackSize(int r) const;

 private:
  int num_nodes_;
  int fanout_;
  int rack_count_;
};

}  // namespace bcs::net
