#include "net/topology.hpp"

#include <algorithm>

namespace bcs::net {

FatTree::FatTree(int num_nodes, int radix)
    : num_nodes_(num_nodes), radix_(radix) {
  if (num_nodes <= 0) throw std::invalid_argument("FatTree: num_nodes <= 0");
  if (radix < 2) throw std::invalid_argument("FatTree: radix < 2");
  levels_ = 1;
  long long capacity = radix_;
  while (capacity < num_nodes_) {
    capacity *= radix_;
    ++levels_;
  }
}

int FatTree::lcaLevel(int a, int b) const {
  if (a < 0 || a >= num_nodes_ || b < 0 || b >= num_nodes_) {
    throw std::out_of_range("FatTree::lcaLevel: node out of range");
  }
  if (a == b) return 0;
  int level = 0;
  int ga = a, gb = b;
  while (ga != gb) {
    ga /= radix_;
    gb /= radix_;
    ++level;
  }
  return level;
}

int FatTree::hops(int a, int b) const {
  if (a == b) return 0;
  return 2 * lcaLevel(a, b) - 1;
}

RackLayout::RackLayout(int num_nodes, int fanout)
    : num_nodes_(num_nodes), fanout_(fanout) {
  if (num_nodes <= 0) {
    throw std::invalid_argument("RackLayout: num_nodes <= 0");
  }
  if (fanout <= 0) throw std::invalid_argument("RackLayout: fanout <= 0");
  rack_count_ = (num_nodes_ + fanout_ - 1) / fanout_;
}

int RackLayout::rackOf(int n) const {
  if (n < 0 || n >= num_nodes_) {
    throw std::out_of_range("RackLayout::rackOf: node out of range");
  }
  return n / fanout_;
}

int RackLayout::rackFirst(int r) const {
  if (r < 0 || r >= rack_count_) {
    throw std::out_of_range("RackLayout::rackFirst: rack out of range");
  }
  return r * fanout_;
}

int RackLayout::rackSize(int r) const {
  if (r < 0 || r >= rack_count_) {
    throw std::out_of_range("RackLayout::rackSize: rack out of range");
  }
  return std::min(num_nodes_, (r + 1) * fanout_) - r * fanout_;
}

}  // namespace bcs::net
