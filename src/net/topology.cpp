#include "net/topology.hpp"

namespace bcs::net {

FatTree::FatTree(int num_nodes, int radix)
    : num_nodes_(num_nodes), radix_(radix) {
  if (num_nodes <= 0) throw std::invalid_argument("FatTree: num_nodes <= 0");
  if (radix < 2) throw std::invalid_argument("FatTree: radix < 2");
  levels_ = 1;
  long long capacity = radix_;
  while (capacity < num_nodes_) {
    capacity *= radix_;
    ++levels_;
  }
}

int FatTree::lcaLevel(int a, int b) const {
  if (a < 0 || a >= num_nodes_ || b < 0 || b >= num_nodes_) {
    throw std::out_of_range("FatTree::lcaLevel: node out of range");
  }
  if (a == b) return 0;
  int level = 0;
  int ga = a, gb = b;
  while (ga != gb) {
    ga /= radix_;
    gb /= radix_;
    ++level;
  }
  return level;
}

int FatTree::hops(int a, int b) const {
  if (a == b) return 0;
  return 2 * lcaLevel(a, b) - 1;
}

}  // namespace bcs::net
