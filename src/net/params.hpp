#pragma once

// Network parameter sets.
//
// Every interconnect the paper mentions (Table 1) is described by one
// NetworkParams value.  The BCS core primitives behave differently depending
// on whether the network has *native* support for ordered multicast and
// network conditionals (QsNet, BlueGene/L) or must emulate them with a
// software tree (Gigabit Ethernet, Myrinet, Infiniband) — the per-level
// software step latencies below are calibrated so that the measured
// primitive costs land on the paper's Table 1 envelope:
//
//   network      Compare-And-Write        Xfer-And-Signal aggregate BW
//   GigE         46 log2(n) us            (not available)
//   Myrinet      20 log2(n) us            ~15n MB/s
//   Infiniband   20 log2(n) us            (not available)
//   QsNet        < 10 us                  > 150n MB/s
//   BlueGene/L   < 2 us                   700n MB/s
//
// Bandwidths are stored in bytes/ns (== GB/s) to keep arithmetic in the
// engine's native nanosecond unit.

#include <string>

#include "sim/time.hpp"

namespace bcs::net {

using sim::Duration;

struct NetworkParams {
  std::string name;

  // --- Point-to-point path ---
  Duration wire_latency;      ///< Fixed end-to-end first-bit latency floor.
  Duration hop_latency;       ///< Added per switch level crossed (x2, up+down).
  Duration nic_tx_overhead;   ///< NIC-side processing to inject a message.
  Duration nic_rx_overhead;   ///< NIC-side processing on delivery.
  double link_bandwidth;      ///< bytes/ns per link.
  double pci_bandwidth;       ///< bytes/ns host<->NIC (0 = not a bottleneck).
  Duration pci_latency;       ///< DMA start-up across the host bus.
  int radix = 4;              ///< Fat-tree switch radix (QsNet is quaternary).

  /// Extra delay after the expected delivery instant before the sender's NIC
  /// reports a transfer as failed (lost packet / unreachable endpoint).
  /// Models the hardware ack timeout of a reliable-delivery NIC.
  Duration ack_timeout = sim::usec(10);

  // --- BCS core primitive support ---
  bool hw_multicast = false;      ///< Ordered, reliable hardware multicast.
  bool hw_conditional = false;    ///< Network conditional (query broadcast).
  Duration mcast_base_latency;    ///< Native multicast first-bit latency.
  Duration cond_base_latency;     ///< Native conditional round-trip.
  Duration cond_hop_latency;      ///< Native conditional per-tree-level cost.
  Duration sw_step_latency;       ///< Per-tree-level cost of *emulated* ops.
  double mcast_bandwidth;         ///< bytes/ns delivered per destination.

  /// Effective point-to-point payload bandwidth (link and host-bus in
  /// series).
  double effectiveBandwidth() const {
    if (pci_bandwidth <= 0) return link_bandwidth;
    return link_bandwidth < pci_bandwidth ? link_bandwidth : pci_bandwidth;
  }

  // Presets (constants documented in params.cpp with sources).
  static NetworkParams qsnet();
  static NetworkParams gigabitEthernet();
  static NetworkParams myrinet();
  static NetworkParams infiniband();
  static NetworkParams bluegeneL();
};

}  // namespace bcs::net
