#pragma once

// Cluster: the simulated machine.
//
// Mirrors the paper's experimental setup (§5.1): N compute nodes plus one
// management node, each compute node with two CPUs and one NIC, all attached
// to a fat-tree fabric.  Node indices 0..N-1 are compute nodes; index N is
// the management node (where STORM's Machine Manager and BCS-MPI's Strobe
// Sender run).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "net/params.hpp"
#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/noise.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace bcs::net {

struct ClusterConfig {
  int num_compute_nodes = 32;
  int cpus_per_node = 2;  ///< crescendo nodes are dual Pentium-III
  NetworkParams network = NetworkParams::qsnet();
  std::uint64_t seed = 42;

  /// Optional OS-noise dæmon on every compute node (see sim/noise.hpp).
  bool inject_noise = false;
  sim::NoiseConfig noise;

  /// Faults the machine should suffer (see sim/fault.hpp).  The injector's
  /// randomness is a stream derived from `seed`, so fault schedules are
  /// reproducible and independent of the workload's draws.
  sim::FaultPlan faults;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int numComputeNodes() const { return config_.num_compute_nodes; }
  int managementNode() const { return config_.num_compute_nodes; }
  int totalNodes() const { return config_.num_compute_nodes + 1; }

  sim::Engine& engine() { return engine_; }
  Fabric& fabric() { return *fabric_; }
  sim::Trace& trace() { return trace_; }
  const ClusterConfig& config() const { return config_; }
  sim::CpuScheduler& cpu(int node) { return *cpus_.at(static_cast<std::size_t>(node)); }
  sim::Rng& rng() { return rng_; }

  /// The machine's fault injector — always present (an empty plan draws
  /// nothing).  `kManagementNode` sentinels in the config's plan have been
  /// resolved to the real management-node index.
  sim::FaultInjector* faults() { return fault_.get(); }

  /// Creates a process on `node` and schedules its first run at `when`.
  /// The Cluster owns the process.
  sim::Process& spawn(int node, std::string name, sim::Process::Body body,
                      sim::SimTime when = 0);

  /// Runs the simulation until the event queue drains (or `until`).
  /// Returns the final simulated time.
  sim::SimTime run(sim::SimTime until = INT64_MAX);

  /// Same, on the engine's parallel worker pool.  Byte-identical to the
  /// serial overload when the workload honours the shard contract (see
  /// Engine::run(ParallelPolicy)); the whole BCS control plane lives on
  /// shard 0, so this only pays off for workloads explicitly placed on
  /// per-node shards (Fabric::setShardMap + Engine::atOn).
  sim::SimTime run(const sim::ParallelPolicy& policy,
                   sim::SimTime until = INT64_MAX);

  /// True iff every spawned process has finished.  Call after run(); if the
  /// queue drained with processes still blocked, the run deadlocked and
  /// unfinishedProcesses() names the culprits.
  bool allProcessesFinished() const;
  std::vector<std::string> unfinishedProcesses() const;

  /// Number of processes ever spawned.  Snapshot capture (src/snapshot)
  /// refuses clusters with any: fiber stacks cannot be serialized, so
  /// checkpointable workloads must be detached state machines.
  std::size_t processCount() const { return processes_.size(); }

 private:
  ClusterConfig config_;
  sim::Engine engine_;
  sim::Trace trace_;
  sim::Rng rng_;
  std::unique_ptr<sim::FaultInjector> fault_;
  std::unique_ptr<Fabric> fabric_;
  std::vector<std::unique_ptr<sim::CpuScheduler>> cpus_;
  std::vector<std::unique_ptr<sim::NoiseInjector>> noise_;
  std::vector<std::unique_ptr<sim::Process>> processes_;
};

}  // namespace bcs::net
