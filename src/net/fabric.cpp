#include "net/fabric.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <utility>

#include "race/race.hpp"

namespace bcs::net {

namespace {
// Shorthand for endpoint access records; no-op when no detector attached.
inline void raceTouch(race::RaceDetector* race, int node,
                      race::FieldGroup group, const char* site) {
  if (race != nullptr) {
    race->record(race::ObjectKind::kFabricEndpoint,
                 static_cast<std::uint64_t>(node), group,
                 race::RaceDetector::Access::kWrite, site);
  }
}
}  // namespace

Fabric::Fabric(sim::Engine& engine, NetworkParams params, int num_nodes,
               sim::Trace* trace)
    : engine_(engine),
      params_(std::move(params)),
      num_nodes_(num_nodes),
      tree_(num_nodes, params_.radix),
      endpoints_(static_cast<std::size_t>(num_nodes)),
      trace_(trace) {}

void Fabric::checkNode(int node) const {
  if (node < 0 || node >= num_nodes_) {
    throw sim::SimError("Fabric: node index " + std::to_string(node) +
                        " out of range [0, " + std::to_string(num_nodes_) +
                        ")");
  }
}

void Fabric::setFaultInjector(sim::FaultInjector* injector) {
  if (injector != nullptr && !shard_map_.empty()) {
    sim::simFail("Fabric: a fault injector cannot be combined with a shard "
                 "map (fault RNG draws would race across shard workers)");
  }
  fault_ = injector;
}

void Fabric::setShardMap(std::vector<sim::ShardId> shard_of) {
  if (!shard_of.empty()) {
    if (fault_ != nullptr) {
      sim::simFail("Fabric: a shard map cannot be combined with a fault "
                   "injector (fault RNG draws would race across shard "
                   "workers)");
    }
    if (shard_of.size() != static_cast<std::size_t>(num_nodes_)) {
      sim::simFail("Fabric::setShardMap: map covers " +
                   std::to_string(shard_of.size()) + " nodes, fabric has " +
                   std::to_string(num_nodes_));
    }
  }
  shard_map_ = std::move(shard_of);
  registerRaceObjects();
}

void Fabric::setRaceDetector(race::RaceDetector* detector) {
  race_ = detector;
  registerRaceObjects();
}

void Fabric::registerRaceObjects() {
  if (race_ == nullptr) return;
  for (int n = 0; n < num_nodes_; ++n) {
    const sim::ShardId owner =
        shard_map_.empty() ? 0 : shard_map_[static_cast<std::size_t>(n)];
    race_->registerObject(race::ObjectKind::kFabricEndpoint,
                          static_cast<std::uint64_t>(n), owner);
  }
  // The statistic stripes are shared *by design* — per-worker cache-line
  // stripes with atomic folds — so multi-shard writes are exempt.
  for (std::size_t s = 0; s < kStatStripes; ++s) {
    race_->registerShared(race::ObjectKind::kStatStripe, s);
  }
}

void Fabric::bump(std::uint64_t FabricStats::* counter, std::uint64_t delta) {
  const int w = sim::detail::currentWorkerIndex();
  if (race_ != nullptr) {
    // Stripes are registered shared-exempt: the record documents the
    // multi-shard write without ever producing a finding.
    const std::uint64_t stripe =
        w < 0 ? 0 : 1 + static_cast<std::uint64_t>(w) % (kStatStripes - 1);
    race_->record(race::ObjectKind::kStatStripe, stripe,
                  race::FieldGroup::kStripe, race::RaceDetector::Access::kWrite,
                  "Fabric::bump");
  }
  if (w < 0) {
    // Serial engine, or the parallel coordinator between windows — single
    // threaded by construction, so the plain add stays.
    stat_stripes_[0].s.*counter += delta;
    return;
  }
  // Each worker gets its own cache-line stripe (for any realistic worker
  // count); the atomic add only matters if two workers ever hash together,
  // and on a private line it costs the same as a plain add.
  StatStripe& stripe =
      stat_stripes_[1 + static_cast<std::size_t>(w) % (kStatStripes - 1)];
  std::atomic_ref<std::uint64_t>(stripe.s.*counter)
      .fetch_add(delta, std::memory_order_relaxed);
}

FabricStats Fabric::stats() const {
  FabricStats total;
  for (const StatStripe& stripe : stat_stripes_) {
    total.unicasts += stripe.s.unicasts;
    total.multicasts += stripe.s.multicasts;
    total.conditionals += stripe.s.conditionals;
    total.payload_bytes += stripe.s.payload_bytes;
    total.drops += stripe.s.drops;
    total.failed_sends += stripe.s.failed_sends;
    total.suppressed_deliveries += stripe.s.suppressed_deliveries;
    total.suppressed_conditionals += stripe.s.suppressed_conditionals;
  }
  return total;
}

Duration Fabric::baseLatency(int src, int dst) const {
  if (src == dst) return params_.pci_latency;
  return params_.wire_latency +
         static_cast<Duration>(tree_.hops(src, dst)) * params_.hop_latency;
}

void Fabric::unicast(int src, int dst, std::size_t bytes,
                     std::function<void()> on_delivered,
                     std::function<void()> on_injected, SendOptions opts) {
  checkNode(src);
  checkNode(dst);
  bump(&FabricStats::unicasts);
  bump(&FabricStats::payload_bytes, static_cast<std::uint64_t>(bytes));

  const SimTime now = engine_.now();

  // Cross-shard transfer under a shard map: model the source side (egress
  // occupancy, wire latency) as usual, but hand the delivery off to the
  // destination's shard instead of touching its ingress state.  The handoff
  // lands at or past the next barrier by the conservative-window contract
  // (Engine::handoff enforces it loudly).
  if (!shard_map_.empty() && src != dst &&
      shard_map_[static_cast<std::size_t>(src)] !=
          shard_map_[static_cast<std::size_t>(dst)]) {
    const double bw = params_.effectiveBandwidth();
    const auto serial =
        static_cast<Duration>(std::ceil(static_cast<double>(bytes) / bw));
    Endpoint& e_src = endpoints_[static_cast<std::size_t>(src)];
    const SimTime inject = now + params_.nic_tx_overhead + params_.pci_latency;
    const SimTime start_tx = std::max(inject, e_src.egress_free);
    e_src.egress_free = start_tx + serial;
    // Cross-shard: only the source endpoint is touched — the destination's
    // ingress state belongs to another shard and is deliberately skipped.
    raceTouch(race_, src, race::FieldGroup::kEgress, "Fabric::unicast");
    const SimTime completion = start_tx + baseLatency(src, dst) + serial +
                               params_.nic_rx_overhead;
    if (trace_) {
      trace_->record(now, sim::TraceCategory::kNet, src,
                     "unicast -> n" + std::to_string(dst) + " " +
                         std::to_string(bytes) + "B, delivers at " +
                         sim::formatTime(completion) + " (x-shard)");
    }
    if (on_injected) engine_.at(e_src.egress_free, std::move(on_injected));
    engine_.handoff(shard_map_[static_cast<std::size_t>(dst)], completion,
                    std::move(on_delivered));
    return;
  }

  // A down source NIC cannot inject anything: report failure after the ack
  // timeout without occupying the wire.
  if (fault_ && fault_->nodeDown(src, now)) {
    bump(&FabricStats::failed_sends);
    if (trace_) {
      trace_->record(now, sim::TraceCategory::kFault, src,
                     "unicast -> n" + std::to_string(dst) +
                         " failed: source down");
    }
    if (opts.on_failed) {
      engine_.at(now + params_.ack_timeout, std::move(opts.on_failed));
    }
    return;
  }

  if (src == dst) {
    // NIC loopback: payload crosses the host bus twice but never the wire.
    const double bw =
        params_.pci_bandwidth > 0 ? params_.pci_bandwidth : params_.link_bandwidth;
    const auto xfer = static_cast<Duration>(static_cast<double>(bytes) / bw);
    const Duration total = params_.nic_tx_overhead + params_.nic_rx_overhead +
                           params_.pci_latency + xfer;
    if (on_injected) engine_.at(now + params_.nic_tx_overhead, std::move(on_injected));
    engine_.at(now + total, std::move(on_delivered));
    return;
  }

  const double bw = params_.effectiveBandwidth();
  const auto serial =
      static_cast<Duration>(std::ceil(static_cast<double>(bytes) / bw));

  Endpoint& e_src = endpoints_[static_cast<std::size_t>(src)];
  Endpoint& e_dst = endpoints_[static_cast<std::size_t>(dst)];

  const SimTime inject = now + params_.nic_tx_overhead + params_.pci_latency;
  const SimTime start_tx = std::max(inject, e_src.egress_free);
  e_src.egress_free = start_tx + serial;
  raceTouch(race_, src, race::FieldGroup::kEgress, "Fabric::unicast");

  // Fault decisions: the packet occupies the source egress either way (it
  // was injected), but a lost packet never occupies the destination ingress
  // and never delivers.  The drop draw happens before the degrade draw so
  // the randomness stream is consumed in a fixed order.
  bool lost = false;
  Duration degrade = 0;
  if (fault_) {
    const bool dropped = opts.droppable && fault_->shouldDrop(src, dst);
    const bool dst_down = fault_->nodeDown(dst, now);
    lost = dropped || dst_down;
    if (dropped) {
      bump(&FabricStats::drops);
    } else if (dst_down) {
      bump(&FabricStats::failed_sends);
    }
    if (!lost && opts.droppable) degrade = fault_->degradeExtra();
  }

  const SimTime arrival = start_tx + baseLatency(src, dst) + serial + degrade;

  if (lost) {
    if (trace_) {
      trace_->record(now, sim::TraceCategory::kFault, src,
                     "unicast -> n" + std::to_string(dst) + " " +
                         std::to_string(bytes) + "B lost");
    }
    if (on_injected) engine_.at(e_src.egress_free, std::move(on_injected));
    if (opts.on_failed) {
      engine_.at(arrival + params_.nic_rx_overhead + params_.ack_timeout,
                 std::move(opts.on_failed));
    }
    return;
  }

  const SimTime deliver_end =
      std::max(arrival, e_dst.ingress_free + serial);
  e_dst.ingress_free = deliver_end;
  raceTouch(race_, dst, race::FieldGroup::kIngress, "Fabric::unicast");

  const SimTime completion = deliver_end + params_.nic_rx_overhead;

  if (trace_) {
    trace_->record(now, sim::TraceCategory::kNet, src,
                   "unicast -> n" + std::to_string(dst) + " " +
                       std::to_string(bytes) + "B, delivers at " +
                       sim::formatTime(completion));
  }
  if (on_injected) engine_.at(e_src.egress_free, std::move(on_injected));
  engine_.at(completion, std::move(on_delivered));
}

void Fabric::multicast(int src, std::vector<int> dests, std::size_t bytes,
                       std::function<void(int)> on_delivered_at,
                       std::function<void()> on_all) {
  checkNode(src);
  dests.erase(std::remove(dests.begin(), dests.end(), src), dests.end());
  std::sort(dests.begin(), dests.end());
  dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
  for (int d : dests) checkNode(d);
  if (!shard_map_.empty()) {
    const sim::ShardId home = shard_map_[static_cast<std::size_t>(src)];
    for (int d : dests) {
      if (shard_map_[static_cast<std::size_t>(d)] != home) {
        sim::simFail("Fabric::multicast: cross-shard destination n" +
                     std::to_string(d) +
                     " under a shard map (keep collective traffic on one "
                     "shard)");
      }
    }
  }

  bump(&FabricStats::multicasts);
  bump(&FabricStats::payload_bytes,
       static_cast<std::uint64_t>(bytes) *
           static_cast<std::uint64_t>(std::max<std::size_t>(dests.size(), 1)));

  if (dests.empty()) {
    if (on_all) engine_.at(engine_.now(), std::move(on_all));
    return;
  }

  if (!params_.hw_multicast) {
    softwareMulticast(src, dests, bytes, std::move(on_delivered_at),
                      std::move(on_all));
    return;
  }

  const SimTime now = engine_.now();
  const double bw = params_.effectiveBandwidth();
  const auto serial =
      static_cast<Duration>(std::ceil(static_cast<double>(bytes) / bw));
  const double mbw = params_.mcast_bandwidth > 0 ? params_.mcast_bandwidth : bw;
  const auto dserial =
      static_cast<Duration>(std::ceil(static_cast<double>(bytes) / mbw));

  Endpoint& e_src = endpoints_[static_cast<std::size_t>(src)];
  const SimTime inject = now + params_.nic_tx_overhead + params_.pci_latency;
  const SimTime start_tx = std::max(inject, e_src.egress_free);
  e_src.egress_free = start_tx + serial;
  raceTouch(race_, src, race::FieldGroup::kEgress, "Fabric::multicast");

  // The switch fans out; the fixed part is the depth of the tree.
  const Duration fanout_latency =
      params_.mcast_base_latency +
      static_cast<Duration>(tree_.levels()) * params_.hop_latency;

  // Legs to down destinations (or the whole fan-out, if the source is down)
  // are suppressed: the hardware multicast is reliable for live endpoints,
  // so live destinations still receive even when siblings are dead.
  const bool src_down = fault_ && fault_->nodeDown(src, now);
  SimTime last = start_tx + fanout_latency;  // fallback if no live dest
  for (int d : dests) {
    if (src_down || (fault_ && fault_->nodeDown(d, now))) {
      bump(&FabricStats::suppressed_deliveries);
      if (trace_) {
        trace_->record(now, sim::TraceCategory::kFault, src,
                       "multicast leg -> n" + std::to_string(d) +
                           " suppressed (endpoint down)");
      }
      continue;
    }
    Endpoint& e_dst = endpoints_[static_cast<std::size_t>(d)];
    const SimTime arrival = start_tx + fanout_latency + dserial;
    const SimTime deliver_end = std::max(arrival, e_dst.ingress_free + dserial);
    e_dst.ingress_free = deliver_end;
    raceTouch(race_, d, race::FieldGroup::kIngress, "Fabric::multicast");
    const SimTime completion = deliver_end + params_.nic_rx_overhead;
    last = std::max(last, completion);
    if (on_delivered_at) {
      engine_.at(completion, [cb = on_delivered_at, d] { cb(d); });
    }
  }
  if (trace_) {
    trace_->record(now, sim::TraceCategory::kNet, src,
                   "hw-multicast to " + std::to_string(dests.size()) +
                       " nodes, " + std::to_string(bytes) + "B");
  }
  if (on_all) engine_.at(last, std::move(on_all));
}

void Fabric::softwareMulticast(int src, const std::vector<int>& dests,
                               std::size_t bytes,
                               std::function<void(int)> on_delivered_at,
                               std::function<void()> on_all) {
  // Binomial tree rooted at src.  Relay order: src, dests[0], dests[1], ...
  // Position i forwards to positions i + 2^k for i + 2^k < n, largest k
  // first — the classic log2(n) schedule.  Each forward costs one software
  // step on the relaying NIC plus a unicast.
  struct State {
    std::vector<int> order;
    std::function<void(int)> per_dest;
    std::function<void()> all_done;
    std::size_t outstanding = 0;
  };
  auto st = std::make_shared<State>();
  st->order.reserve(dests.size() + 1);
  st->order.push_back(src);
  st->order.insert(st->order.end(), dests.begin(), dests.end());
  st->per_dest = std::move(on_delivered_at);
  st->all_done = std::move(on_all);
  st->outstanding = dests.size();

  const std::size_t n = st->order.size();

  // Doubling schedule: in round r (r = 1, 2, 4, ...), every position p < r
  // with p + r < n sends to position p + r.  A position issues its sends
  // when its own copy of the payload has arrived, so depth and contention
  // are modelled by the chained unicasts themselves, each preceded by one
  // software processing step on the relaying NIC.
  struct Issue {
    std::size_t from, to;
  };
  std::vector<Issue> schedule;
  for (std::size_t r = 1; r < 2 * n; r <<= 1) {
    for (std::size_t p = 0; p < r && p + r < n; ++p) {
      schedule.push_back(Issue{p, p + r});
    }
  }
  // received[i] callback chain: when position i has the payload, issue all
  // its scheduled sends (those with from == i).
  auto issueFrom = std::make_shared<std::function<void(std::size_t)>>();
  auto sched = std::make_shared<std::vector<Issue>>(std::move(schedule));
  std::size_t bytes_copy = bytes;
  *issueFrom = [this, st, issueFrom, sched, bytes_copy](std::size_t pos) {
    for (const Issue& is : *sched) {
      if (is.from != pos) continue;
      const int from_node = st->order[is.from];
      const int to_node = st->order[is.to];
      const std::size_t to_pos = is.to;
      engine_.after(params_.sw_step_latency, [this, st, issueFrom, from_node,
                                              to_node, to_pos, bytes_copy] {
        unicast(from_node, to_node,
                bytes_copy,
                [st, issueFrom, to_node, to_pos] {
                  if (st->per_dest) st->per_dest(to_node);
                  (*issueFrom)(to_pos);
                  if (--st->outstanding == 0 && st->all_done) st->all_done();
                });
      });
    }
  };
  (*issueFrom)(0);
}

Duration Fabric::conditionalLatency(int n) const {
  if (n <= 1) return params_.hw_conditional ? params_.cond_base_latency
                                            : params_.sw_step_latency;
  if (params_.hw_conditional) {
    // Query broadcast down + combine up, pipelined in the switches.
    const int levels = tree_.levels();
    return params_.cond_base_latency +
           static_cast<Duration>(levels) * params_.cond_hop_latency;
  }
  // Software tree: one step per level of a binary reduction.
  const int steps =
      static_cast<int>(std::ceil(std::log2(static_cast<double>(n))));
  return static_cast<Duration>(steps) * params_.sw_step_latency;
}

Duration Fabric::multicastLatency() const {
  if (params_.hw_multicast) {
    return params_.mcast_base_latency +
           static_cast<Duration>(tree_.levels()) * params_.hop_latency;
  }
  const int steps = static_cast<int>(
      std::ceil(std::log2(static_cast<double>(std::max(num_nodes_, 2)))));
  return static_cast<Duration>(steps) *
         (params_.sw_step_latency + params_.wire_latency);
}

void Fabric::conditional(int src, std::vector<int> nodes,
                         std::function<bool(int)> eval,
                         std::function<void(int)> write,
                         std::function<void(bool)> on_result) {
  checkNode(src);
  for (int d : nodes) checkNode(d);
  if (!shard_map_.empty()) {
    const sim::ShardId home = shard_map_[static_cast<std::size_t>(src)];
    for (int d : nodes) {
      if (shard_map_[static_cast<std::size_t>(d)] != home) {
        sim::simFail("Fabric::conditional: cross-shard participant n" +
                     std::to_string(d) +
                     " under a shard map (keep conditional rounds on one "
                     "shard)");
      }
    }
  }
  bump(&FabricStats::conditionals);

  const Duration lat = conditionalLatency(static_cast<int>(nodes.size()));
  engine_.after(lat, [this, src, nodes = std::move(nodes),
                      eval = std::move(eval), write = std::move(write),
                      on_result = std::move(on_result)] {
    // A round whose issuing NIC died before the combine returns delivers its
    // result to no one: the poll chain of a dead Strobe Sender ends here
    // instead of keeping a ghost SS alive.  (Down *participants* merely
    // evaluate false, below — the issuer is special.)
    if (fault_ && fault_->nodeDown(src, engine_.now())) {
      bump(&FabricStats::suppressed_conditionals);
      if (trace_) {
        trace_->record(engine_.now(), sim::TraceCategory::kFault, src,
                       "conditional result suppressed: issuer down");
      }
      return;
    }
    bool all = true;
    for (int n : nodes) {
      // A down node never answers the query broadcast, so the combine
      // reports false — the conditional cannot hang, it just fails.
      if ((fault_ && fault_->nodeDown(n, engine_.now())) || !eval(n)) {
        all = false;
        break;
      }
    }
    if (all && write) {
      for (int n : nodes) write(n);
    }
    if (on_result) on_result(all);
  });
}

}  // namespace bcs::net
