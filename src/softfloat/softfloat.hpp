#pragma once

// IEEE-754 software floating point (binary32 / binary64).
//
// The paper's Reduce Helper computes MPI reductions *on the NIC*, and the
// QsNet Elan3 NIC has no floating-point unit, so the original system used
// John Hauser's SoftFloat.  This is a from-scratch, self-contained
// equivalent: pure integer implementations of addition, subtraction,
// multiplication, comparison and min/max with round-to-nearest-even,
// covering NaNs, infinities, signed zeros and subnormals.
//
// The interface works on raw bit patterns (uint32_t/uint64_t) exactly like
// SoftFloat; thin wrappers taking float/double (via bit_cast) are provided
// for convenience and for differential testing against the host FPU.

#include <bit>
#include <cstdint>

namespace bcs::sf {

// ---- binary32 ----
std::uint32_t f32_add(std::uint32_t a, std::uint32_t b);
std::uint32_t f32_sub(std::uint32_t a, std::uint32_t b);
std::uint32_t f32_mul(std::uint32_t a, std::uint32_t b);
bool f32_eq(std::uint32_t a, std::uint32_t b);  ///< IEEE ==: NaN compares false.
bool f32_lt(std::uint32_t a, std::uint32_t b);  ///< IEEE <:  NaN compares false.
bool f32_le(std::uint32_t a, std::uint32_t b);
std::uint32_t f32_min(std::uint32_t a, std::uint32_t b);  ///< minNum semantics.
std::uint32_t f32_max(std::uint32_t a, std::uint32_t b);  ///< maxNum semantics.
std::uint32_t f32_from_i32(std::int32_t v);
bool f32_is_nan(std::uint32_t a);

// ---- binary64 ----
std::uint64_t f64_add(std::uint64_t a, std::uint64_t b);
std::uint64_t f64_sub(std::uint64_t a, std::uint64_t b);
std::uint64_t f64_mul(std::uint64_t a, std::uint64_t b);
bool f64_eq(std::uint64_t a, std::uint64_t b);
bool f64_lt(std::uint64_t a, std::uint64_t b);
bool f64_le(std::uint64_t a, std::uint64_t b);
std::uint64_t f64_min(std::uint64_t a, std::uint64_t b);
std::uint64_t f64_max(std::uint64_t a, std::uint64_t b);
std::uint64_t f64_from_i64(std::int64_t v);
bool f64_is_nan(std::uint64_t a);

// ---- convenience wrappers over native types (testing / reduce kernels) ----
inline float addf(float a, float b) {
  return std::bit_cast<float>(
      f32_add(std::bit_cast<std::uint32_t>(a), std::bit_cast<std::uint32_t>(b)));
}
inline float mulf(float a, float b) {
  return std::bit_cast<float>(
      f32_mul(std::bit_cast<std::uint32_t>(a), std::bit_cast<std::uint32_t>(b)));
}
inline float minf(float a, float b) {
  return std::bit_cast<float>(
      f32_min(std::bit_cast<std::uint32_t>(a), std::bit_cast<std::uint32_t>(b)));
}
inline float maxf(float a, float b) {
  return std::bit_cast<float>(
      f32_max(std::bit_cast<std::uint32_t>(a), std::bit_cast<std::uint32_t>(b)));
}
inline double addd(double a, double b) {
  return std::bit_cast<double>(
      f64_add(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b)));
}
inline double muld(double a, double b) {
  return std::bit_cast<double>(
      f64_mul(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b)));
}
inline double mind(double a, double b) {
  return std::bit_cast<double>(
      f64_min(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b)));
}
inline double maxd(double a, double b) {
  return std::bit_cast<double>(
      f64_max(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b)));
}

}  // namespace bcs::sf
