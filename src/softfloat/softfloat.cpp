#include "softfloat/softfloat.hpp"

#include <bit>
#include <limits>
#include <type_traits>
#include <utility>

namespace bcs::sf {
namespace {

// Generic IEEE-754 implementation parameterized over the format.  The two
// instantiations (binary32, binary64) share all logic; `DUint` must hold a
// full significand product (64-bit for binary32, 128-bit for binary64).
template <typename Uint, typename DUint, int kBits, int kExpBits>
struct Ieee {
  static constexpr int kFracBits = kBits - 1 - kExpBits;
  static constexpr int kExpMax = (1 << kExpBits) - 1;
  static constexpr Uint kFracMask = (Uint{1} << kFracBits) - 1;
  static constexpr Uint kSignMask = Uint{1} << (kBits - 1);
  // Quiet NaN with the conventional payload (exp all-ones, top frac bit).
  static constexpr Uint kQNaN =
      (Uint{kExpMax} << kFracBits) | (Uint{1} << (kFracBits - 1)) | kSignMask;

  static constexpr bool sign(Uint x) { return (x >> (kBits - 1)) != 0; }
  static constexpr int exp(Uint x) {
    return static_cast<int>((x >> kFracBits) & kExpMax);
  }
  static constexpr Uint frac(Uint x) { return x & kFracMask; }
  static constexpr bool isNaN(Uint x) {
    return exp(x) == kExpMax && frac(x) != 0;
  }
  static constexpr bool isInf(Uint x) {
    return exp(x) == kExpMax && frac(x) == 0;
  }
  static constexpr bool isZero(Uint x) { return (x & ~kSignMask) == 0; }
  static constexpr Uint inf(bool s) {
    return (s ? kSignMask : Uint{0}) | (Uint{kExpMax} << kFracBits);
  }
  static constexpr Uint zero(bool s) { return s ? kSignMask : Uint{0}; }

  /// Assembles a raw encoding.  `f` may carry a bit at position kFracBits
  /// when e == 0 (a subnormal sum that reached 1.0: the addition carries
  /// into the exponent field and yields the smallest normal, which is the
  /// correct encoding).  For e > 0 callers pass f < 2^kFracBits.
  static constexpr Uint assemble(bool s, int e, Uint f) {
    return (s ? kSignMask : Uint{0}) +
           (static_cast<Uint>(e) << kFracBits) + f;
  }

  /// Right-shift with sticky: any bit shifted out sets bit 0 of the result.
  static constexpr Uint shiftRightJam(Uint x, int count) {
    if (count == 0) return x;
    if (count >= kBits) return x != 0 ? Uint{1} : Uint{0};
    const Uint out = x >> count;
    const Uint lost = x & ((Uint{1} << count) - 1);
    return out | (lost != 0 ? Uint{1} : Uint{0});
  }

  /// Rounds (to nearest even) and packs a result.
  ///
  /// Input convention: `sig` carries 3 extra low bits (guard/round/sticky)
  /// and — for normal results — its leading 1 sits at bit kFracBits + 3.
  /// `e` is the *stored* biased exponent that leading-bit position
  /// represents, i.e. value = (-1)^s * 2^(e - bias) * sig / 2^(kFracBits+3).
  static Uint roundAndPack(bool s, int e, Uint sig) {
    if (e <= 0) {
      // Result falls in the subnormal range: shift into subnormal scale
      // (effective exponent 1) before rounding so rounding is done at the
      // correct bit position.
      sig = shiftRightJam(sig, 1 - e);
      e = 0;
    }
    const Uint grs = sig & 7;
    sig >>= 3;
    if (grs > 4 || (grs == 4 && (sig & 1))) ++sig;  // nearest-even
    if (sig == 0) return zero(s);
    if (sig >> (kFracBits + 1)) {
      // Round-up carried out of the significand (1.11..1 -> 10.00..0).
      sig >>= 1;
      ++e;
    }
    if (e == 0) {
      // Subnormal; if rounding produced the implicit bit, assemble() turns
      // it into the smallest normal.
      return assemble(s, 0, sig);
    }
    if (e >= kExpMax) return inf(s);  // overflow, round-to-nearest -> Inf
    return assemble(s, e, sig & kFracMask);
  }

  /// Normalizes a subnormal input significand; returns the shift applied.
  static int normalizeSubnormal(Uint& sig) {
    const int lz = std::countl_zero(sig) - (std::numeric_limits<Uint>::digits -
                                            (kFracBits + 1));
    sig <<= lz;
    return lz;
  }

  static Uint propagateNaN(Uint a, Uint b) {
    // Quiet whichever NaN we have (payload preservation à la SoftFloat is
    // not required by IEEE; we return the canonical quiet NaN).
    (void)a;
    (void)b;
    return kQNaN;
  }

  // ---- addition of magnitudes (signs equal) ----
  static Uint addMags(Uint a, Uint b, bool s) {
    int ea = exp(a), eb = exp(b);
    Uint sa = frac(a), sb = frac(b);
    if (ea < eb) {
      std::swap(ea, eb);
      std::swap(sa, sb);
    }
    if (ea == kExpMax) {
      if (sa != 0 || (eb == kExpMax && sb != 0)) return propagateNaN(a, b);
      return inf(s);
    }
    // Attach implicit bits and 3 GRS bits.
    if (ea == 0) {
      // Both subnormal: trivially aligned; a carry into bit kFracBits makes
      // the smallest normal via assemble().
      return assemble(s, 0, sa + sb);
    }
    sa = (sa | (Uint{1} << kFracBits)) << 3;
    if (eb == 0) {
      sb <<= 3;
      ++eb;  // subnormals have effective exponent 1
    } else {
      sb = (sb | (Uint{1} << kFracBits)) << 3;
    }
    sb = shiftRightJam(sb, ea - eb);
    Uint sum = sa + sb;
    if (sum & (Uint{1} << (kFracBits + 4))) {
      sum = shiftRightJam(sum, 1);
      ++ea;
    }
    return roundAndPack(s, ea, sum);
  }

  // ---- subtraction of magnitudes (signs differ; result sign resolved) ----
  static Uint subMags(Uint a, Uint b, bool s) {
    int ea = exp(a), eb = exp(b);
    Uint sa = frac(a), sb = frac(b);

    if (ea == kExpMax) {
      if (sa != 0) return propagateNaN(a, b);
      if (eb == kExpMax) {
        return sb != 0 ? propagateNaN(a, b) : kQNaN;  // Inf - Inf
      }
      return inf(s);
    }
    if (eb == kExpMax) {
      return sb != 0 ? propagateNaN(a, b) : inf(!s);
    }

    bool flip = false;
    if (ea < eb || (ea == eb && sa < sb)) {
      std::swap(ea, eb);
      std::swap(sa, sb);
      flip = true;
    } else if (ea == eb && sa == sb) {
      return zero(false);  // exact cancellation -> +0 (round-to-nearest)
    }
    const bool rs = flip ? !s : s;

    if (ea == 0) {
      // Both subnormal.
      return assemble(rs, 0, sa - sb);
    }
    sa = (sa | (Uint{1} << kFracBits)) << 3;
    if (eb == 0) {
      sb <<= 3;
      ++eb;
    } else {
      sb = (sb | (Uint{1} << kFracBits)) << 3;
    }
    sb = shiftRightJam(sb, ea - eb);
    Uint diff = sa - sb;
    // Normalize left.
    const int lz = std::countl_zero(diff) -
                   (std::numeric_limits<Uint>::digits - (kFracBits + 4));
    diff <<= lz;
    ea -= lz;
    return roundAndPack(rs, ea, diff);
  }

  static Uint add(Uint a, Uint b) {
    if (sign(a) == sign(b)) return addMags(a, b, sign(a));
    return subMags(a, b, sign(a));
  }

  static Uint sub(Uint a, Uint b) { return add(a, b ^ kSignMask); }

  static Uint mul(Uint a, Uint b) {
    const bool s = sign(a) != sign(b);
    int ea = exp(a), eb = exp(b);
    Uint sa = frac(a), sb = frac(b);

    if (ea == kExpMax || eb == kExpMax) {
      if (isNaN(a) || isNaN(b)) return propagateNaN(a, b);
      if ((isInf(a) && isZero(b)) || (isInf(b) && isZero(a))) return kQNaN;
      return inf(s);
    }
    if (sa == 0 && ea == 0) return zero(s);
    if (sb == 0 && eb == 0) return zero(s);

    if (ea == 0) {
      ea = 1 - normalizeSubnormal(sa);
      sa &= kFracMask;  // normalizeSubnormal leaves the implicit bit set
      sa |= Uint{1} << kFracBits;
    } else {
      sa |= Uint{1} << kFracBits;
    }
    if (eb == 0) {
      eb = 1 - normalizeSubnormal(sb);
      sb &= kFracMask;
      sb |= Uint{1} << kFracBits;
    } else {
      sb |= Uint{1} << kFracBits;
    }

    // Product of two (kFracBits+1)-bit significands: 2*kFracBits+1 or +2
    // bits.  Keep kFracBits+4 bits (leading 1 at bit kFracBits+3) with
    // sticky.
    int e = ea + eb - ((1 << (kExpBits - 1)) - 1);  // unbias once
    DUint prod = static_cast<DUint>(sa) * static_cast<DUint>(sb);
    // Leading 1 of prod is at bit 2*kFracBits or 2*kFracBits+1.
    const int target = kFracBits + 3;
    int lead = 2 * kFracBits;
    if (prod >> (2 * kFracBits + 1)) {
      lead = 2 * kFracBits + 1;
      ++e;
    }
    const int drop = lead - target;
    Uint sig;
    if (drop > 0) {
      const DUint lost = prod & ((DUint{1} << drop) - 1);
      sig = static_cast<Uint>(prod >> drop) | (lost != 0 ? Uint{1} : Uint{0});
    } else {
      sig = static_cast<Uint>(prod << -drop);
    }
    return roundAndPack(s, e, sig);
  }

  // ---- comparisons ----
  static bool eq(Uint a, Uint b) {
    if (isNaN(a) || isNaN(b)) return false;
    if (isZero(a) && isZero(b)) return true;  // -0 == +0
    return a == b;
  }

  static bool lt(Uint a, Uint b) {
    if (isNaN(a) || isNaN(b)) return false;
    const bool sa = sign(a), sb = sign(b);
    if (isZero(a) && isZero(b)) return false;
    if (sa != sb) return sa;
    if (sa) return (a & ~kSignMask) > (b & ~kSignMask);
    return a < b;
  }

  static bool le(Uint a, Uint b) {
    if (isNaN(a) || isNaN(b)) return false;
    return eq(a, b) || lt(a, b);
  }

  // minNum/maxNum (IEEE 754-2008 §5.3.1): a quiet NaN operand is treated as
  // missing data, so min(NaN, x) == x.
  static Uint minNum(Uint a, Uint b) {
    if (isNaN(a)) return isNaN(b) ? kQNaN : b;
    if (isNaN(b)) return a;
    return lt(b, a) ? b : a;
  }
  static Uint maxNum(Uint a, Uint b) {
    if (isNaN(a)) return isNaN(b) ? kQNaN : b;
    if (isNaN(b)) return a;
    return lt(a, b) ? b : a;
  }

  /// Exact-when-possible signed-integer conversion (round-to-nearest-even).
  template <typename Int>
  static Uint fromInt(Int v) {
    if (v == 0) return 0;
    const bool s = v < 0;
    using UInt = std::make_unsigned_t<Int>;
    UInt mag = s ? UInt(0) - static_cast<UInt>(v) : static_cast<UInt>(v);
    const int top = std::numeric_limits<UInt>::digits - 1 -
                    std::countl_zero(mag);
    int e = ((1 << (kExpBits - 1)) - 1) + top;
    // Position the leading 1 at bit kFracBits+3 (our rounding format).
    const int target = kFracBits + 3;
    Uint sig;
    if (top <= target) {
      sig = static_cast<Uint>(static_cast<DUint>(mag) << (target - top));
    } else {
      const int drop = top - target;
      const UInt lost = mag & ((UInt{1} << drop) - 1);
      sig = static_cast<Uint>(mag >> drop) | (lost != 0 ? Uint{1} : Uint{0});
    }
    return roundAndPack(s, e, sig);
  }
};

using F32 = Ieee<std::uint32_t, std::uint64_t, 32, 8>;
using F64 = Ieee<std::uint64_t, unsigned __int128, 64, 11>;

}  // namespace

std::uint32_t f32_add(std::uint32_t a, std::uint32_t b) { return F32::add(a, b); }
std::uint32_t f32_sub(std::uint32_t a, std::uint32_t b) { return F32::sub(a, b); }
std::uint32_t f32_mul(std::uint32_t a, std::uint32_t b) { return F32::mul(a, b); }
bool f32_eq(std::uint32_t a, std::uint32_t b) { return F32::eq(a, b); }
bool f32_lt(std::uint32_t a, std::uint32_t b) { return F32::lt(a, b); }
bool f32_le(std::uint32_t a, std::uint32_t b) { return F32::le(a, b); }
std::uint32_t f32_min(std::uint32_t a, std::uint32_t b) { return F32::minNum(a, b); }
std::uint32_t f32_max(std::uint32_t a, std::uint32_t b) { return F32::maxNum(a, b); }
std::uint32_t f32_from_i32(std::int32_t v) { return F32::fromInt(v); }
bool f32_is_nan(std::uint32_t a) { return F32::isNaN(a); }

std::uint64_t f64_add(std::uint64_t a, std::uint64_t b) { return F64::add(a, b); }
std::uint64_t f64_sub(std::uint64_t a, std::uint64_t b) { return F64::sub(a, b); }
std::uint64_t f64_mul(std::uint64_t a, std::uint64_t b) { return F64::mul(a, b); }
bool f64_eq(std::uint64_t a, std::uint64_t b) { return F64::eq(a, b); }
bool f64_lt(std::uint64_t a, std::uint64_t b) { return F64::lt(a, b); }
bool f64_le(std::uint64_t a, std::uint64_t b) { return F64::le(a, b); }
std::uint64_t f64_min(std::uint64_t a, std::uint64_t b) { return F64::minNum(a, b); }
std::uint64_t f64_max(std::uint64_t a, std::uint64_t b) { return F64::maxNum(a, b); }
std::uint64_t f64_from_i64(std::int64_t v) { return F64::fromInt(v); }
bool f64_is_nan(std::uint64_t a) { return F64::isNaN(a); }

}  // namespace bcs::sf
