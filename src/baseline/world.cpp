#include <algorithm>
#include <cstring>
#include <utility>

#include "baseline/baseline.hpp"

namespace bcs::baseline {

namespace {
constexpr std::size_t kEagerHeaderBytes = 32;
}  // namespace

World::World(net::Cluster& cluster, BaselineConfig config,
             std::vector<int> node_of_rank)
    : cluster_(cluster),
      config_(config),
      node_of_rank_(std::move(node_of_rank)),
      ranks_(node_of_rank_.size()) {
  for (int node : node_of_rank_) {
    if (node < 0 || node >= cluster_.numComputeNodes()) {
      throw sim::SimError("baseline::World: rank mapped to bad node " +
                          std::to_string(node));
    }
  }
}

std::unique_ptr<BaselineComm> World::init(int rank, sim::Process& proc) {
  RankState& state = rs(rank);
  if (state.proc != nullptr) {
    throw sim::SimError("baseline::World: rank " + std::to_string(rank) +
                        " initialized twice");
  }
  state.proc = &proc;
  proc.compute(config_.init_overhead);
  return std::make_unique<BaselineComm>(*this, rank, proc);
}

std::uint64_t World::newRequest(int rank, bool is_send) {
  RankState& state = rs(rank);
  const std::uint64_t id = state.next_req++;
  ReqState req;
  req.is_send = is_send;
  state.requests.emplace(id, req);
  return id;
}

void World::completeRequest(int rank, std::uint64_t req, int src, int tag,
                            std::size_t bytes) {
  RankState& state = rs(rank);
  auto it = state.requests.find(req);
  if (it == state.requests.end()) return;  // request was abandoned
  it->second.complete = true;
  it->second.status.source = src;
  it->second.status.tag = tag;
  it->second.status.bytes = bytes;
  if (state.proc) state.proc->wake();
}

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

std::uint64_t World::startSend(int src_rank, const void* buf,
                               std::size_t bytes, int dest, int tag) {
  if (dest < 0 || dest >= size()) {
    throw sim::SimError("send: bad destination rank " + std::to_string(dest));
  }
  RankState& state = rs(src_rank);
  state.proc->compute(config_.send_overhead);
  const std::uint64_t req = newRequest(src_rank, /*is_send=*/true);
  const int src_node = nodeOfRank(src_rank);
  const int dst_node = nodeOfRank(dest);

  if (bytes <= config_.eager_threshold) {
    // Eager: copy out of the user buffer now; the send completes once the
    // NIC has injected the message (the buffer is reusable from then on).
    auto data = std::make_shared<std::vector<std::byte>>(
        static_cast<const std::byte*>(buf),
        static_cast<const std::byte*>(buf) + bytes);
    cluster_.fabric().unicast(
        src_node, dst_node, bytes + kEagerHeaderBytes,
        /*on_delivered=*/
        [this, dest, src_rank, tag, data] {
          deliverEager(dest, src_rank, tag, data);
        },
        /*on_injected=*/
        [this, src_rank, req, dest, tag, bytes] {
          completeRequest(src_rank, req, dest, tag, bytes);
        });
    return req;
  }

  // Rendezvous: send an RTS; the payload moves zero-copy once the receiver
  // posts a matching receive and returns a CTS.
  state.proc->compute(config_.rendezvous_overhead);
  PendingRts rts;
  rts.sender_req = req;
  rts.sender_buf = buf;
  rts.bytes = bytes;
  rts.src = src_rank;
  rts.tag = tag;
  cluster_.fabric().unicast(src_node, dst_node, config_.control_message_bytes,
                            [this, dest, rts] { deliverRts(dest, rts); });
  return req;
}

void World::deliverEager(int dst_rank, int src_rank, int tag,
                         std::shared_ptr<std::vector<std::byte>> data) {
  RankState& state = rs(dst_rank);
  // Try to match a posted receive (FIFO).
  for (auto it = state.posted.begin(); it != state.posted.end(); ++it) {
    if (!tagMatches(it->src, it->tag, src_rank, tag)) continue;
    if (data->size() > it->bytes) {
      throw sim::SimError("recv truncation: rank " + std::to_string(dst_rank) +
                          " posted " + std::to_string(it->bytes) +
                          "B for a " + std::to_string(data->size()) +
                          "B message (src=" + std::to_string(src_rank) +
                          ", tag=" + std::to_string(tag) + ")");
    }
    std::memcpy(it->buf, data->data(), data->size());
    const std::uint64_t req = it->req_id;
    state.posted.erase(it);
    completeRequest(dst_rank, req, src_rank, tag, data->size());
    return;
  }
  // Unexpected: buffer it.
  UnexpectedEager u;
  u.data = std::move(data);
  u.src = src_rank;
  u.tag = tag;
  u.arrived = cluster_.engine().now();
  state.unexpected.push_back(std::move(u));
  if (state.proc) state.proc->wake();  // a blocking probe may be waiting
}

void World::deliverRts(int dst_rank, PendingRts rts) {
  RankState& state = rs(dst_rank);
  for (auto it = state.posted.begin(); it != state.posted.end(); ++it) {
    if (!tagMatches(it->src, it->tag, rts.src, rts.tag)) continue;
    PostedRecv recv = *it;
    state.posted.erase(it);
    issueCts(dst_rank, rts, recv);
    return;
  }
  state.pending_rts.push_back(rts);
  if (state.proc) state.proc->wake();  // blocking probe
}

void World::issueCts(int dst_rank, const PendingRts& rts,
                     const PostedRecv& recv) {
  if (rts.bytes > recv.bytes) {
    throw sim::SimError("recv truncation (rendezvous): posted " +
                        std::to_string(recv.bytes) + "B for a " +
                        std::to_string(rts.bytes) + "B message");
  }
  const int dst_node = nodeOfRank(dst_rank);
  const int src_node = nodeOfRank(rts.src);
  // CTS control message back to the sender...
  cluster_.fabric().unicast(
      dst_node, src_node, config_.control_message_bytes,
      [this, dst_rank, dst_node, src_node, rts, recv] {
        // ...then the payload, zero-copy out of the sender buffer.
        // The payload moves as a get out of the sender buffer, so the
        // sender's request must stay open (buffer pinned) until delivery.
        cluster_.fabric().unicast(
            src_node, dst_node, rts.bytes,
            /*on_delivered=*/
            [this, dst_rank, rts, recv] {
              std::memcpy(recv.buf, rts.sender_buf, rts.bytes);
              completeRequest(dst_rank, recv.req_id, rts.src, rts.tag,
                              rts.bytes);
              completeRequest(rts.src, rts.sender_req, dst_rank, rts.tag,
                              rts.bytes);
            });
      });
}

std::uint64_t World::startRecv(int dst_rank, void* buf, std::size_t bytes,
                               int src, int tag) {
  RankState& state = rs(dst_rank);
  state.proc->compute(config_.recv_overhead);
  const std::uint64_t req = newRequest(dst_rank, /*is_send=*/false);

  // 1. Unexpected eager messages, in arrival order.
  for (auto it = state.unexpected.begin(); it != state.unexpected.end();
       ++it) {
    if (!tagMatches(src, tag, it->src, it->tag)) continue;
    if (it->data->size() > bytes) {
      throw sim::SimError("recv truncation: posted " + std::to_string(bytes) +
                          "B for a " + std::to_string(it->data->size()) +
                          "B unexpected message");
    }
    std::memcpy(buf, it->data->data(), it->data->size());
    completeRequest(dst_rank, req, it->src, it->tag, it->data->size());
    state.unexpected.erase(it);
    return req;
  }
  // 2. Pending rendezvous RTSes.
  for (auto it = state.pending_rts.begin(); it != state.pending_rts.end();
       ++it) {
    if (!tagMatches(src, tag, it->src, it->tag)) continue;
    PendingRts rts = *it;
    state.pending_rts.erase(it);
    PostedRecv recv{req, buf, bytes, src, tag};
    issueCts(dst_rank, rts, recv);
    return req;
  }
  // 3. Nothing yet: post.
  state.posted.push_back(PostedRecv{req, buf, bytes, src, tag});
  return req;
}

// ---------------------------------------------------------------------------
// runJob
// ---------------------------------------------------------------------------

void runJob(net::Cluster& cluster, BaselineConfig config,
            const std::vector<int>& node_of_rank,
            const std::function<void(mpi::Comm&)>& body,
            std::vector<SimTime>* finish_times) {
  auto world = std::make_shared<World>(cluster, config, node_of_rank);
  const int nprocs = world->size();
  if (finish_times) finish_times->assign(static_cast<std::size_t>(nprocs), 0);
  for (int r = 0; r < nprocs; ++r) {
    cluster.spawn(node_of_rank[static_cast<std::size_t>(r)],
                  "baseline-rank" + std::to_string(r),
                  [world, r, body, finish_times](sim::Process& proc) {
                    auto comm = world->init(r, proc);
                    body(*comm);
                    if (finish_times) {
                      (*finish_times)[static_cast<std::size_t>(r)] =
                          proc.now();
                    }
                  });
  }
  cluster.run();
  if (!cluster.allProcessesFinished()) {
    std::string who;
    for (const auto& n : cluster.unfinishedProcesses()) who += " " + n;
    throw sim::SimError("baseline::runJob deadlock; unfinished:" + who);
  }
}

std::vector<int> blockMapping(int nprocs, int num_nodes, int per_node) {
  std::vector<int> map(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    const int node = r / per_node;
    if (node >= num_nodes) {
      throw sim::SimError("blockMapping: not enough nodes for " +
                          std::to_string(nprocs) + " ranks");
    }
    map[static_cast<std::size_t>(r)] = node;
  }
  return map;
}

}  // namespace bcs::baseline
