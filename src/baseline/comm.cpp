#include <algorithm>
#include <cstring>
#include <vector>

#include "baseline/baseline.hpp"

namespace bcs::baseline {

namespace {
/// Host-side per-element cost of combining reduction operands (cached
/// adds on a 1 GHz Pentium-III).
constexpr sim::Duration kHostReducePerElement = 3;  // ns
/// Internal tag band for the host binomial reduce tree (negative tags are
/// invisible to application wildcard receives; see mpi/comm.hpp).
constexpr int kReduceTagBase = -(1 << 22);
}  // namespace

BaselineComm::BaselineComm(World& world, int rank, sim::Process& proc)
    : world_(world), rank_(rank), proc_(proc) {}

int BaselineComm::size() const { return world_.size(); }

SimTime BaselineComm::now() const { return proc_.now(); }

void BaselineComm::compute(Duration work) { proc_.compute(work); }

mpi::Request BaselineComm::isend(const void* buf, std::size_t bytes, int dest,
                                 int tag) {
  return mpi::Request{world_.startSend(rank_, buf, bytes, dest, tag)};
}

mpi::Request BaselineComm::irecv(void* buf, std::size_t bytes, int src,
                                 int tag) {
  return mpi::Request{world_.startRecv(rank_, buf, bytes, src, tag)};
}

void BaselineComm::wait(mpi::Request& r, mpi::Status* status) {
  if (r.null()) return;
  World::RankState& state = world_.rs(rank_);
  auto it = state.requests.find(r.id);
  if (it == state.requests.end()) {
    throw sim::SimError("wait on unknown request");
  }
  while (!it->second.complete) {
    proc_.block();
    it = state.requests.find(r.id);
  }
  if (status) *status = it->second.status;
  state.requests.erase(it);
  r = mpi::Request{};
}

bool BaselineComm::test(mpi::Request& r, mpi::Status* status) {
  if (r.null()) return true;
  World::RankState& state = world_.rs(rank_);
  auto it = state.requests.find(r.id);
  if (it == state.requests.end()) {
    throw sim::SimError("test on unknown request");
  }
  if (!it->second.complete) return false;
  if (status) *status = it->second.status;
  state.requests.erase(it);
  r = mpi::Request{};
  return true;
}

bool BaselineComm::completed(const mpi::Request& r) const {
  if (r.null()) return true;
  const World::RankState& state =
      const_cast<World&>(world_).rs(rank_);
  auto it = state.requests.find(r.id);
  if (it == state.requests.end()) {
    throw sim::SimError("completed() on unknown request");
  }
  return it->second.complete;
}

bool BaselineComm::probe(int src, int tag, mpi::Status* status,
                         bool blocking) {
  World::RankState& state = world_.rs(rank_);
  while (true) {
    for (const auto& u : state.unexpected) {
      if (World::tagMatches(src, tag, u.src, u.tag)) {
        if (status) {
          status->source = u.src;
          status->tag = u.tag;
          status->bytes = u.data->size();
        }
        return true;
      }
    }
    for (const auto& rts : state.pending_rts) {
      if (World::tagMatches(src, tag, rts.src, rts.tag)) {
        if (status) {
          status->source = rts.src;
          status->tag = rts.tag;
          status->bytes = rts.bytes;
        }
        return true;
      }
    }
    if (!blocking) return false;
    proc_.block();  // woken on any arrival
  }
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

void BaselineComm::barrier() {
  proc_.compute(world_.config().collective_overhead);
  World::RankState& state = world_.rs(rank_);
  const int gen = state.barrier_gen++;
  World::BarrierState& b = world_.barriers_[gen];
  ++b.arrived;
  if (b.arrived == size()) {
    // Last arrival fires the hardware barrier; everyone is released one
    // hw_barrier_latency later.
    world_.cluster_.engine().after(world_.config().hw_barrier_latency,
                                   [this, gen] {
                                     World::BarrierState& bb =
                                         world_.barriers_[gen];
                                     bb.released = true;
                                     for (auto& rk : world_.ranks_) {
                                       if (rk.proc) rk.proc->wake();
                                     }
                                   });
  }
  while (!world_.barriers_[gen].released) proc_.block();
  // Cleanup: the last rank to leave retires the generation.
  World::BarrierState& done = world_.barriers_[gen];
  if (++done.exited == size()) world_.barriers_.erase(gen);
}

void BaselineComm::bcast(void* buf, std::size_t bytes, int root) {
  proc_.compute(world_.config().collective_overhead);
  World::RankState& state = world_.rs(rank_);
  const int gen = state.bcast_gen++;
  World::BcastState& st = world_.bcasts_[gen];
  if (st.node_arrived.empty()) {
    st.node_arrived.assign(static_cast<std::size_t>(world_.cluster_.totalNodes()),
                           false);
  }

  if (rank_ == root) {
    st.data = std::make_shared<std::vector<std::byte>>(
        static_cast<const std::byte*>(buf),
        static_cast<const std::byte*>(buf) + bytes);
    std::vector<int> dest_nodes;
    for (int r = 0; r < size(); ++r) {
      if (r != root) dest_nodes.push_back(world_.nodeOfRank(r));
    }
    world_.cluster_.fabric().multicast(
        world_.nodeOfRank(root), dest_nodes, bytes,
        /*per destination node*/
        [this, gen](int node) {
          World::BcastState& s = world_.bcasts_[gen];
          s.node_arrived[static_cast<std::size_t>(node)] = true;
          for (auto& rk : world_.ranks_) {
            if (rk.proc) rk.proc->wake();
          }
        },
        /*all delivered*/
        [this, gen] {
          world_.bcasts_[gen].root_sent = true;
          for (auto& rk : world_.ranks_) {
            if (rk.proc) rk.proc->wake();
          }
        });
    while (!world_.bcasts_[gen].root_sent) proc_.block();
  } else {
    const auto my_node = static_cast<std::size_t>(world_.nodeOfRank(rank_));
    const auto root_node = static_cast<std::size_t>(world_.nodeOfRank(root));
    if (my_node == root_node) {
      // Co-located with the root: the payload is in node memory already;
      // it is visible once the root has issued the broadcast.
      while (!world_.bcasts_[gen].root_sent) proc_.block();
    } else {
      while (!world_.bcasts_[gen].node_arrived[my_node]) proc_.block();
    }
    World::BcastState& s = world_.bcasts_[gen];
    if (s.data->size() != bytes) {
      throw sim::SimError("bcast: size mismatch across ranks");
    }
    std::memcpy(buf, s.data->data(), bytes);
  }
  World::BcastState& done = world_.bcasts_[gen];
  if (++done.exited == size()) world_.bcasts_.erase(gen);
}

void BaselineComm::reduce(const void* contrib, void* result,
                          std::size_t count, mpi::Datatype dt,
                          mpi::ReduceOp op, int root) {
  proc_.compute(world_.config().collective_overhead);
  World::RankState& state = world_.rs(rank_);
  const int gen = state.reduce_gen++;
  const int tag = kReduceTagBase - (gen & 0xFFFF);
  const std::size_t bytes = count * datatypeSize(dt);
  const int P = size();

  // Binomial tree rooted (virtually) at 0 after rotating ranks by root.
  const int rel = (rank_ - root + P) % P;
  std::vector<std::byte> acc(static_cast<const std::byte*>(contrib),
                             static_cast<const std::byte*>(contrib) + bytes);
  std::vector<std::byte> incoming(bytes);
  for (int mask = 1; mask < P; mask <<= 1) {
    if ((rel & mask) != 0) {
      const int parent_rel = rel & ~mask;
      const int parent = (parent_rel + root) % P;
      send(acc.data(), bytes, parent, tag);
      break;
    }
    const int child_rel = rel | mask;
    if (child_rel >= P) continue;
    const int child = (child_rel + root) % P;
    recv(incoming.data(), bytes, child, tag);
    proc_.compute(static_cast<Duration>(count) * kHostReducePerElement);
    mpi::applyReduce(op, dt, acc.data(), incoming.data(), count,
                     mpi::ReduceFlavor::kHost);
  }
  if (rank_ == root) std::memcpy(result, acc.data(), bytes);
}

void BaselineComm::allreduce(const void* contrib, void* result,
                             std::size_t count, mpi::Datatype dt,
                             mpi::ReduceOp op) {
  reduce(contrib, result, count, dt, op, /*root=*/0);
  bcast(result, count * datatypeSize(dt), /*root=*/0);
}

}  // namespace bcs::baseline
