#pragma once

// "Quadrics MPI"-style baseline: a latency-optimized, per-message MPI
// implementation in the spirit of MPICH 1.2.4 over qsnetlibs (the
// production library the paper compares BCS-MPI against in §5).
//
// Protocols:
//   * Eager for payloads <= eager_threshold: the sender copies the payload
//     and injects immediately; unexpected messages are buffered at the
//     receiver.  The send completes locally once injected.
//   * Rendezvous above the threshold: RTS -> (matching receive posted) ->
//     CTS -> zero-copy payload transfer.
//   * Collectives: hardware barrier and hardware-multicast broadcast (the
//     Elan3 features Quadrics MPI exploits), host-side binomial-tree reduce
//     (the PCI round trip the paper's NIC-side Reduce Helper avoids).
//
// Unlike BCS-MPI, the host CPU pays per-call software overheads (modelled
// as CPU work, so they contend with application computation), and nothing
// is globally scheduled — this is exactly the design point the paper
// contrasts with.
//
// Blocking contract used throughout this repository: every fiber-side wait
// is a predicate loop (`while (!done) proc.block()`), so a spurious
// Process::wake is always harmless.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/reduce_ops.hpp"
#include "mpi/types.hpp"
#include "net/cluster.hpp"
#include "sim/process.hpp"

namespace bcs::baseline {

using sim::Duration;
using sim::SimTime;

struct BaselineConfig {
  std::size_t eager_threshold = 16 * 1024;

  // Host software path costs (consume CPU, like the real MPICH layers).
  Duration send_overhead = sim::usec(1.0);
  Duration recv_overhead = sim::usec(0.9);
  Duration rendezvous_overhead = sim::usec(1.5);  ///< extra RTS/CTS handling
  Duration collective_overhead = sim::usec(1.0);  ///< per collective call

  std::size_t control_message_bytes = 64;  ///< RTS/CTS wire size

  /// Latency of the Elan3 hardware barrier once all ranks have arrived.
  Duration hw_barrier_latency = sim::usec(10);

  /// MPI_Init cost per process (job launch handled by rsh-style scripts;
  /// small compared to BCS-MPI's runtime bring-up, see bench_fig9).
  Duration init_overhead = sim::msec(5);
};

class World;

/// Per-rank communicator handle (one per application process).
class BaselineComm final : public mpi::Comm {
 public:
  BaselineComm(World& world, int rank, sim::Process& proc);

  int rank() const override { return rank_; }
  int size() const override;
  SimTime now() const override;
  void compute(Duration work) override;

  mpi::Request isend(const void* buf, std::size_t bytes, int dest,
                     int tag) override;
  mpi::Request irecv(void* buf, std::size_t bytes, int src, int tag) override;
  void wait(mpi::Request& r, mpi::Status* status) override;
  bool test(mpi::Request& r, mpi::Status* status) override;
  bool completed(const mpi::Request& r) const override;
  bool probe(int src, int tag, mpi::Status* status, bool blocking) override;

  void barrier() override;
  void bcast(void* buf, std::size_t bytes, int root) override;
  void reduce(const void* contrib, void* result, std::size_t count,
              mpi::Datatype dt, mpi::ReduceOp op, int root) override;
  void allreduce(const void* contrib, void* result, std::size_t count,
                 mpi::Datatype dt, mpi::ReduceOp op) override;

  sim::Process& process() { return proc_; }

 private:
  World& world_;
  int rank_;
  sim::Process& proc_;
};

/// Shared state of one parallel job run over the baseline MPI.
class World {
 public:
  /// `node_of_rank[r]` is the cluster node hosting rank r.
  World(net::Cluster& cluster, BaselineConfig config,
        std::vector<int> node_of_rank);

  int size() const { return static_cast<int>(node_of_rank_.size()); }
  net::Cluster& cluster() { return cluster_; }
  const BaselineConfig& config() const { return config_; }
  int nodeOfRank(int rank) const {
    return node_of_rank_.at(static_cast<std::size_t>(rank));
  }

  /// Registers the process that runs `rank` and returns its communicator.
  /// Called once per rank, from the process fiber, before any communication
  /// (this is "MPI_Init": it also charges init_overhead).
  std::unique_ptr<BaselineComm> init(int rank, sim::Process& proc);

 private:
  friend class BaselineComm;

  // ---- point-to-point plumbing ----
  struct PostedRecv {
    std::uint64_t req_id;
    void* buf;
    std::size_t bytes;
    int src;  // kAnySource allowed
    int tag;  // kAnyTag allowed
  };
  struct UnexpectedEager {
    std::shared_ptr<std::vector<std::byte>> data;
    int src;
    int tag;
    SimTime arrived;
  };
  struct PendingRts {
    std::uint64_t sender_req;
    const void* sender_buf;
    std::size_t bytes;
    int src;
    int tag;
  };
  struct ReqState {
    bool complete = false;
    bool is_send = false;
    mpi::Status status;
  };
  struct RankState {
    sim::Process* proc = nullptr;
    std::uint64_t next_req = 1;
    std::unordered_map<std::uint64_t, ReqState> requests;
    std::deque<PostedRecv> posted;        // receive queue, FIFO
    std::deque<UnexpectedEager> unexpected;
    std::deque<PendingRts> pending_rts;   // RTSes with no matching recv yet
    // Collective generations (each rank calls collectives in order).
    int barrier_gen = 0;
    int bcast_gen = 0;
    int reduce_gen = 0;
  };

  struct BarrierState {
    int arrived = 0;
    int exited = 0;
    bool released = false;
  };
  struct BcastState {
    std::shared_ptr<std::vector<std::byte>> data;
    std::vector<bool> node_arrived;  // indexed by cluster node
    bool root_sent = false;
    int exited = 0;
  };

  static bool tagMatches(int want_src, int want_tag, int src, int tag) {
    return (want_src == mpi::kAnySource || want_src == src) &&
           (want_tag == mpi::kAnyTag || want_tag == tag);
  }

  RankState& rs(int rank) { return ranks_.at(static_cast<std::size_t>(rank)); }

  std::uint64_t newRequest(int rank, bool is_send);
  void completeRequest(int rank, std::uint64_t req, int src, int tag,
                       std::size_t bytes);

  // Sender side.
  std::uint64_t startSend(int src_rank, const void* buf, std::size_t bytes,
                          int dest, int tag);
  // Receiver side.
  std::uint64_t startRecv(int dst_rank, void* buf, std::size_t bytes, int src,
                          int tag);

  void deliverEager(int dst_rank, int src_rank, int tag,
                    std::shared_ptr<std::vector<std::byte>> data);
  void deliverRts(int dst_rank, PendingRts rts);
  void issueCts(int dst_rank, const PendingRts& rts, const PostedRecv& recv);
  void matchPosted(int dst_rank);

  net::Cluster& cluster_;
  BaselineConfig config_;
  std::vector<int> node_of_rank_;
  std::vector<RankState> ranks_;
  std::map<int, BarrierState> barriers_;  // by generation
  std::map<int, BcastState> bcasts_;      // by generation
};

/// Convenience SPMD runner: spawns `size(node_of_rank)` processes, each
/// initializing the baseline MPI and running `body(comm)`.  Returns after
/// cluster.run() completes; per-rank finish times land in `finish_times`
/// (indexed by rank) if non-null.
void runJob(net::Cluster& cluster, BaselineConfig config,
            const std::vector<int>& node_of_rank,
            const std::function<void(mpi::Comm&)>& body,
            std::vector<SimTime>* finish_times = nullptr);

/// Standard block mapping of `nprocs` ranks onto compute nodes
/// (ranks 2i, 2i+1 share node i when 2 CPUs per node).
std::vector<int> blockMapping(int nprocs, int num_nodes, int per_node);

}  // namespace bcs::baseline
