#pragma once

// Strobe-Sender tree membership (DESIGN.md §7, "Hierarchical control
// plane").
//
// STORM owns cluster membership (heartbeats, death declaration, rejoin);
// this module is the membership view the hierarchical control plane needs on
// top of it: which live nodes form each rack, which member currently holds
// the rack's Strobe-Sender role, and how roles move when members die or
// return.  It is deliberately a pure deterministic data structure — no
// engine, no fabric — so the BCS-MPI runtime can consult it from any point
// of the strobe protocol without ordering hazards, and so the determinism
// lint can hold it to the same standard as the runtime itself.
//
// Role rules (mirroring the runtime's epoch-fenced elections):
//   * a rack's SS is initially its lowest node index;
//   * evicting the SS promotes the lowest surviving member (the same
//     deterministic lowest-live-id rule the flat election uses);
//   * a node rejoining an emptied rack revives it with itself as SS.

#include <vector>

#include "net/topology.hpp"

namespace bcs::storm {

class SsTree {
 public:
  /// Disabled (flat control plane): every query that needs a rack throws.
  SsTree() = default;

  /// Partitions nodes 0..num_nodes-1 into racks of `fanout` consecutive
  /// indices (net::RackLayout) with every node initially live.
  SsTree(int num_nodes, int fanout);

  bool enabled() const { return fanout_ > 0; }
  int fanout() const { return fanout_; }

  /// Strobe fan-out levels between the root SS and a compute node:
  /// 1 = flat (root strobes members directly), 2 = root -> rack SS ->
  /// members.  Deeper trees would generalize this; two levels keep the root
  /// at O(nodes / fanout) messages through every scale this repo benches.
  int levels() const { return enabled() ? 2 : 1; }

  int rackCount() const { return static_cast<int>(racks_.size()); }
  int rackOf(int node) const;

  /// Current Strobe Sender of rack `r` (-1 once the rack is empty).
  int ss(int r) const { return rackAt(r).ss; }

  /// Reassigns rack `r`'s SS role (a runtime election result).  `node` must
  /// be a live member of `r`.
  void setSs(int r, int node);

  /// Live members of rack `r`, ascending (the SS is one of them).
  const std::vector<int>& members(int r) const { return rackAt(r).members; }

  /// Racks with at least one live member.
  int liveRackCount() const;

  /// SS of the lowest-indexed non-empty rack — the deterministic leader for
  /// root-level elections.  -1 when every rack is empty.
  int firstLiveRackSs() const;

  struct EvictResult {
    bool removed = false;     ///< node was a live member and is now gone
    bool ss_changed = false;  ///< the node led its rack; a successor rose
    bool rack_empty = false;  ///< the rack lost its last member
  };

  /// Removes `node` from its rack, promoting the lowest surviving member to
  /// SS if the node held the role.  Idempotent.
  EvictResult evict(int node);

  /// Re-inserts an evicted `node` (sorted).  Returns true when the rack was
  /// empty — the node revives it as its SS.  Idempotent.
  bool rejoin(int node);

 private:
  struct Rack {
    int ss = -1;
    std::vector<int> members;  ///< live nodes, ascending
  };

  const Rack& rackAt(int r) const;
  Rack& rackAt(int r);

  int fanout_ = 0;
  std::vector<int> rack_of_node_;
  std::vector<Rack> racks_;
};

}  // namespace bcs::storm
