#include "storm/storm.hpp"

#include <algorithm>
#include <string>

namespace bcs::storm {

Storm::Storm(net::Cluster& cluster, StormConfig config)
    : cluster_(cluster),
      config_(config),
      core_(cluster.fabric(), &cluster.trace()),
      node_info_(static_cast<std::size_t>(cluster.numComputeNodes())) {
  launch_var_ = core_.allocVar("storm_launch", 0);
  hb_var_ = core_.allocVar("storm_heartbeat", 0);
  mm_node_ = cluster.managementNode();
}

// ---------------------------------------------------------------------------
// Resource accounting
// ---------------------------------------------------------------------------

std::vector<int> Storm::allocate(int nprocs, int per_node,
                                 Placement placement) {
  std::vector<int> node_of_rank;
  node_of_rank.reserve(static_cast<std::size_t>(nprocs));
  if (placement == Placement::kPack) {
    for (int n = 0; n < cluster_.numComputeNodes() &&
                    static_cast<int>(node_of_rank.size()) < nprocs;
         ++n) {
      NodeInfo& info = node_info_[static_cast<std::size_t>(n)];
      if (info.marked_dead) continue;
      while (info.used_slots < per_node &&
             static_cast<int>(node_of_rank.size()) < nprocs) {
        ++info.used_slots;
        node_of_rank.push_back(n);
      }
    }
  } else {
    // Round-robin passes: one slot per node per pass.
    for (int pass = 0; pass < per_node &&
                       static_cast<int>(node_of_rank.size()) < nprocs;
         ++pass) {
      for (int n = 0; n < cluster_.numComputeNodes() &&
                      static_cast<int>(node_of_rank.size()) < nprocs;
           ++n) {
        NodeInfo& info = node_info_[static_cast<std::size_t>(n)];
        if (info.marked_dead || info.used_slots >= per_node) continue;
        if (info.used_slots > pass) continue;  // already filled this pass
        ++info.used_slots;
        node_of_rank.push_back(n);
      }
    }
  }
  if (static_cast<int>(node_of_rank.size()) < nprocs) {
    // Roll back the partial allocation before failing.
    release(node_of_rank);
    throw sim::SimError("Storm::allocate: not enough free slots for " +
                        std::to_string(nprocs) + " processes");
  }
  return node_of_rank;
}

void Storm::release(const std::vector<int>& node_of_rank) {
  for (int n : node_of_rank) {
    NodeInfo& info = node_info_.at(static_cast<std::size_t>(n));
    if (info.used_slots > 0) --info.used_slots;
  }
}

int Storm::usedSlots(int node) const {
  return node_info_.at(static_cast<std::size_t>(node)).used_slots;
}

// ---------------------------------------------------------------------------
// Job launch
// ---------------------------------------------------------------------------

void Storm::launchImage(const std::vector<int>& nodes,
                        std::size_t binary_bytes, int procs_per_node,
                        std::function<void(SimTime)> on_launched) {
  const int mgmt = mm_node_;
  const std::int64_t seq = ++launch_seq_;
  const SimTime t0 = cluster_.engine().now();

  cluster_.trace().record(t0, sim::TraceCategory::kStorm, mgmt,
                          "launch: " + std::to_string(binary_bytes) +
                              "B image to " + std::to_string(nodes.size()) +
                              " node(s)");

  // MM prepares the command, then one hardware multicast carries the whole
  // image; each NM forks its processes and acknowledges via the global
  // launch variable.
  cluster_.engine().after(config_.mm_dispatch_overhead, [this, nodes,
                                                         binary_bytes,
                                                         procs_per_node, seq,
                                                         t0, mgmt,
                                                         on_launched] {
    core::XferRequest xfer;
    xfer.src_node = mgmt;
    xfer.dest_nodes = nodes;
    xfer.bytes = binary_bytes;
    xfer.deliver = [this, seq, procs_per_node](int node) {
      const Duration spawn =
          config_.nm_spawn_overhead * std::max(procs_per_node, 1);
      cluster_.engine().after(spawn, [this, node, seq] {
        core_.writeVarLocal(node, launch_var_, seq);
      });
    };
    core_.xferAndSignal(std::move(xfer));

    // MM polls global readiness with Compare-And-Write.
    auto poll = std::make_shared<std::function<void()>>();
    *poll = [this, nodes, seq, t0, mgmt, on_launched, poll] {
      core::CompareAndWriteRequest req;
      req.src_node = mgmt;
      req.nodes = nodes;
      req.var = launch_var_;
      req.op = core::CmpOp::kGE;
      req.value = seq;
      core_.compareAndWriteAsync(std::move(req), [this, t0, on_launched,
                                                  poll](bool ready) {
        if (ready) {
          if (on_launched) on_launched(cluster_.engine().now() - t0);
        } else {
          cluster_.engine().after(config_.launch_poll_interval, *poll);
        }
      });
    };
    (*poll)();
  });
}

// ---------------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------------

void Storm::startHeartbeats() {
  if (heartbeats_on_) return;
  heartbeats_on_ = true;
  heartbeatRound();
}

void Storm::stopHeartbeats() { heartbeats_on_ = false; }

void Storm::heartbeatRound() {
  if (!heartbeats_on_) return;
  const int mm = mm_node_;
  const SimTime round_start = cluster_.engine().now();
  if (cluster_.faults()->nodeDown(mm, round_start)) {
    // The MM host is down: it sends and inspects nothing this round.  The
    // cadence timer stays armed so a failed-over MM picks the chain back up
    // on the next period.
    scheduleRound(round_start + config_.heartbeat_period);
    return;
  }
  const std::int64_t seq = ++hb_seq_;
  ++hb_sent_;

  std::vector<int> nodes;
  for (int n = 0; n < cluster_.numComputeNodes(); ++n) nodes.push_back(n);

  core::XferRequest beat;
  beat.src_node = mm;
  beat.dest_nodes = nodes;
  beat.bytes = 16;
  // The NM acknowledges on delivery; whether a node receives at all is the
  // fabric's call (down nodes have their multicast legs suppressed), so the
  // injector is the only liveness authority.
  beat.deliver = [this, seq](int node) {
    core_.writeVarLocal(node, hb_var_, seq);
  };
  core_.xferAndSignal(std::move(beat));
  if (mm < cluster_.numComputeNodes()) {
    // A failed-over MM is itself a compute node; the fabric excludes the
    // multicast source, so its NM acknowledges through NIC-local memory.
    core_.writeVarLocal(mm, hb_var_, seq);
  }

  // Half a period later, the MM inspects each node's acknowledgement.
  inspect_seq_ = seq;
  inspect_at_ = round_start + config_.heartbeat_period / 2;
  inspect_pending_ = true;
  cluster_.engine().at(inspect_at_, [this, seq] { inspectRound(seq); });
  scheduleRound(round_start + config_.heartbeat_period);
}

void Storm::inspectRound(std::int64_t seq) {
  inspect_pending_ = false;
  if (cluster_.faults()->nodeDown(mm_node_, cluster_.engine().now())) {
    return;  // the MM died between strobe and inspection
  }
  for (int n = 0; n < cluster_.numComputeNodes(); ++n) {
    NodeInfo& info = node_info_[static_cast<std::size_t>(n)];
    if (core_.readVar(n, hb_var_) >= seq) {
      if (info.marked_dead) {
        // A node declared dead is acknowledging again: a hang window
        // ended.  Clear the MM's books and announce the rejoin.
        info.marked_dead = false;
        info.missed = 0;
        cluster_.trace().record(cluster_.engine().now(),
                                sim::TraceCategory::kFailover, n,
                                "rejoined: heartbeat acknowledged after "
                                "death declaration");
        if (rejoin_handler_) rejoin_handler_(n);
      } else {
        info.missed = 0;
      }
    } else if (!info.marked_dead) {
      if (++info.missed >= config_.max_missed_heartbeats) {
        info.marked_dead = true;
        cluster_.trace().record(cluster_.engine().now(),
                                sim::TraceCategory::kStorm, n,
                                "declared dead after " +
                                    std::to_string(info.missed) +
                                    " missed heartbeats");
        if (death_handler_) death_handler_(n);
      }
    }
  }
}

void Storm::scheduleRound(SimTime at) {
  next_round_at_ = at;
  cluster_.engine().at(at, [this] { heartbeatRound(); });
}

bool Storm::nodeAlive(int node) const {
  return !node_info_.at(static_cast<std::size_t>(node)).marked_dead;
}

void Storm::killNode(int node) {
  (void)node_info_.at(static_cast<std::size_t>(node));  // range check
  cluster_.faults()->forceDown(node, cluster_.engine().now());
}

void Storm::failoverTo(int node) {
  if (node == mm_node_) return;
  const int old_mm = mm_node_;
  mm_node_ = node;
  cluster_.trace().record(cluster_.engine().now(),
                          sim::TraceCategory::kFailover, node,
                          "Machine Manager failed over (was n" +
                              std::to_string(old_mm) + ")");
}

std::vector<int> Storm::deadNodes() const {
  std::vector<int> dead;
  for (int n = 0; n < cluster_.numComputeNodes(); ++n) {
    if (node_info_[static_cast<std::size_t>(n)].marked_dead) dead.push_back(n);
  }
  return dead;
}

}  // namespace bcs::storm
