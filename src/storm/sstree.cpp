#include "storm/sstree.hpp"

#include <algorithm>
#include <stdexcept>

namespace bcs::storm {

SsTree::SsTree(int num_nodes, int fanout) : fanout_(fanout) {
  const net::RackLayout layout(num_nodes, fanout);
  rack_of_node_.resize(static_cast<std::size_t>(num_nodes));
  racks_.resize(static_cast<std::size_t>(layout.rackCount()));
  for (int n = 0; n < num_nodes; ++n) {
    const int r = layout.rackOf(n);
    rack_of_node_[static_cast<std::size_t>(n)] = r;
    racks_[static_cast<std::size_t>(r)].members.push_back(n);
  }
  for (Rack& rack : racks_) rack.ss = rack.members.front();
}

int SsTree::rackOf(int node) const {
  if (node < 0 || node >= static_cast<int>(rack_of_node_.size())) {
    throw std::out_of_range("SsTree::rackOf: node out of range");
  }
  return rack_of_node_[static_cast<std::size_t>(node)];
}

const SsTree::Rack& SsTree::rackAt(int r) const {
  if (r < 0 || r >= rackCount()) {
    throw std::out_of_range("SsTree: rack out of range");
  }
  return racks_[static_cast<std::size_t>(r)];
}

SsTree::Rack& SsTree::rackAt(int r) {
  if (r < 0 || r >= rackCount()) {
    throw std::out_of_range("SsTree: rack out of range");
  }
  return racks_[static_cast<std::size_t>(r)];
}

void SsTree::setSs(int r, int node) {
  Rack& rack = rackAt(r);
  if (!std::binary_search(rack.members.begin(), rack.members.end(), node)) {
    throw std::invalid_argument("SsTree::setSs: node not a live member");
  }
  rack.ss = node;
}

int SsTree::liveRackCount() const {
  int live = 0;
  for (const Rack& rack : racks_) {
    if (!rack.members.empty()) ++live;
  }
  return live;
}

int SsTree::firstLiveRackSs() const {
  for (const Rack& rack : racks_) {
    if (!rack.members.empty()) return rack.ss;
  }
  return -1;
}

SsTree::EvictResult SsTree::evict(int node) {
  EvictResult result;
  Rack& rack = rackAt(rackOf(node));
  auto it = std::lower_bound(rack.members.begin(), rack.members.end(), node);
  if (it == rack.members.end() || *it != node) return result;
  rack.members.erase(it);
  result.removed = true;
  if (rack.members.empty()) {
    rack.ss = -1;
    result.rack_empty = true;
    return result;
  }
  if (rack.ss == node) {
    rack.ss = rack.members.front();
    result.ss_changed = true;
  }
  return result;
}

bool SsTree::rejoin(int node) {
  Rack& rack = rackAt(rackOf(node));
  auto it = std::lower_bound(rack.members.begin(), rack.members.end(), node);
  if (it != rack.members.end() && *it == node) return false;
  const bool was_empty = rack.members.empty();
  rack.members.insert(it, node);
  if (was_empty) rack.ss = node;
  return was_empty;
}

}  // namespace bcs::storm
