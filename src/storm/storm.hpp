#pragma once

// STORM — the resource-management substrate BCS-MPI is integrated in
// (paper §4, and Frachtenberg et al., "STORM: Lightning-Fast Resource
// Management", SC'02 [8]).
//
// STORM's insight is the same as BCS-MPI's: build every resource-management
// function on the BCS core primitives so it rides the network's collective
// hardware.  Implemented here:
//
//   * Job launch: the Machine Manager (MM) transfers the job image to all
//     target nodes with a single Xfer-And-Signal multicast; the Node
//     Managers (NM) fork the processes; the MM detects global readiness
//     with Compare-And-Write.  Launch latency is therefore (nearly)
//     independent of the node count — the "orders of magnitude faster than
//     production software" claim that bench_storm_launch reproduces.
//   * Heartbeats: periodic MM strobes acknowledged through a global
//     variable; nodes missing `max_missed_heartbeats` consecutive beats are
//     declared dead (the fault-detection hook the paper's future-work
//     section builds towards).
//   * Resource accounting: per-node process slots with first-fit
//     allocation.

#include <cstdint>
#include <functional>
#include <vector>

#include "bcs/core.hpp"
#include "net/cluster.hpp"

namespace bcs::storm {

using sim::Duration;
using sim::SimTime;

struct StormConfig {
  Duration heartbeat_period = sim::msec(50);
  int max_missed_heartbeats = 3;
  /// NM-side cost to fork/exec one process from the transferred image.
  Duration nm_spawn_overhead = sim::usec(300);
  /// MM-side cost to prepare a launch command.
  Duration mm_dispatch_overhead = sim::usec(100);
  /// How often the MM polls for launch completion.
  Duration launch_poll_interval = sim::usec(20);
};

class Storm {
 public:
  Storm(net::Cluster& cluster, StormConfig config = {});

  core::BcsCore& core() { return core_; }
  const StormConfig& config() const { return config_; }

  // ---- Resource accounting ----

  /// kPack fills a node's slots before moving on (one job per node set);
  /// kSpread deals slots round-robin across nodes (time-shared jobs at
  /// multiprogramming level > 1, for gang scheduling).
  enum class Placement { kPack, kSpread };

  /// Allocation of `nprocs` rank slots, at most `per_node` per node.
  /// Throws if the machine is full.  Returns node_of_rank.
  std::vector<int> allocate(int nprocs, int per_node,
                            Placement placement = Placement::kPack);
  void release(const std::vector<int>& node_of_rank);
  int usedSlots(int node) const;

  // ---- Job launch ----

  /// Launches a job image of `binary_bytes` onto `nodes` (`procs_per_node`
  /// processes each).  `on_launched` fires when every NM has reported
  /// readiness through the global launch variable.
  void launchImage(const std::vector<int>& nodes, std::size_t binary_bytes,
                   int procs_per_node, std::function<void(SimTime)> on_launched);

  // ---- Heartbeats / fault detection ----

  void startHeartbeats();
  void stopHeartbeats();
  std::uint64_t heartbeatsSent() const { return hb_sent_; }
  bool nodeAlive(int node) const;
  /// Fault injection: downs the node's NIC via the cluster's FaultInjector
  /// — the single source of truth for endpoint liveness — so it stops
  /// acknowledging heartbeats (and sending anything else).
  void killNode(int node);
  /// Nodes currently considered dead by the MM.
  std::vector<int> deadNodes() const;

  /// Invoked once per node, at the instant the MM declares it dead.  This is
  /// the integration point with the BCS-MPI runtime: wire it to
  /// Runtime::notifyNodeFailure for coordinated eviction and recovery.
  void setDeathHandler(std::function<void(int)> handler) {
    death_handler_ = std::move(handler);
  }

  /// Invoked once per node when a node previously declared dead resumes
  /// acknowledging heartbeats (a hang shorter than forever).  Mirror of
  /// setDeathHandler: wire it to Runtime::notifyNodeRejoin so the node is
  /// scrubbed and reintegrated at a slice boundary.
  void setRejoinHandler(std::function<void(int)> handler) {
    rejoin_handler_ = std::move(handler);
  }

  /// Node currently hosting the Machine Manager role (heartbeat source,
  /// death/rejoin declaration).  Initially the management node.
  int machineManagerNode() const { return mm_node_; }

  /// Moves the MM role to `node` — wired to Runtime::setFailoverHandler so
  /// STORM fails over together with the Strobe Sender.  The heartbeat chain
  /// keeps its cadence; rounds simply originate from the new host.
  void failoverTo(int node);

 private:
  void heartbeatRound();
  /// The MM-side inspection of round `seq`'s acknowledgements (the second
  /// half of heartbeatRound, split out so a snapshot restore can re-arm a
  /// pending inspection at its recorded deadline).
  void inspectRound(std::int64_t seq);
  /// Arms the next heartbeatRound at `at`, recording the deadline for
  /// snapshots.
  void scheduleRound(SimTime at);

  net::Cluster& cluster_;
  StormConfig config_;
  core::BcsCore core_;

  struct NodeInfo {
    int used_slots = 0;
    int missed = 0;  ///< MM's view: consecutive missed heartbeats
    bool marked_dead = false;
  };
  std::vector<NodeInfo> node_info_;

  core::GlobalVarId launch_var_ = -1;
  core::GlobalVarId hb_var_ = -1;
  std::int64_t launch_seq_ = 0;
  std::int64_t hb_seq_ = 0;
  bool heartbeats_on_ = false;
  std::uint64_t hb_sent_ = 0;
  int mm_node_ = -1;
  std::function<void(int)> death_handler_;
  std::function<void(int)> rejoin_handler_;

  // Heartbeat timer bookkeeping (logical mirrors of the armed engine
  // events, so snapshots can capture and re-arm them).
  SimTime next_round_at_ = 0;        ///< deadline of the armed next round
  SimTime inspect_at_ = 0;           ///< deadline of the armed inspection
  std::int64_t inspect_seq_ = 0;     ///< round the armed inspection checks
  bool inspect_pending_ = false;     ///< an inspection event is armed

  /// Snapshot serializer (src/snapshot): membership books, heartbeat
  /// counters and the timer mirrors above round-trip; restore re-arms the
  /// pending inspection and the next round from the recorded deadlines.
  friend class bcs::snapshot::StateIO;
};

}  // namespace bcs::storm
