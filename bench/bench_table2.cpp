// Table 2 reproduction: application/benchmark slowdown summary.
//
//   Application | paper slowdown
//   SAGE        |  -0.42 %
//   SWEEP3D     |  -2.23 %   (non-blocking rewrite)
//   IS          |  10.14 %
//   EP          |   5.35 %
//   MG          |   4.37 %
//   CG          |  10.83 %
//   LU          |  15.04 %

#include <cstdio>
#include <functional>

#include "apps/nas.hpp"
#include "apps/wavefront.hpp"
#include "bench/common.hpp"

namespace {

using namespace bcs;
using namespace bcs::bench;

struct Row {
  const char* name;
  int np;
  AppFn app;
  double paper_pct;
  bool short_run;  ///< include the BCS runtime bring-up (NPB-style run)
};

}  // namespace

int main() {
  HarnessConfig npb;
  npb.bcs.runtime_init_overhead = sim::msec(1100);
  npb.baseline.init_overhead = sim::msec(30);

  HarnessConfig prod;  // long production codes: bring-up negligible
  prod.bcs.runtime_init_overhead = sim::msec(30);
  prod.baseline.init_overhead = sim::msec(5);

  apps::SageConfig sage_cfg;
  apps::Sweep3dConfig sw_cfg;
  sw_cfg.blocking = false;  // Table 2 lists the non-blocking rewrite
  apps::IsConfig is_cfg;
  apps::EpConfig ep_cfg;
  apps::MgConfig mg_cfg;
  apps::CgConfig cg_cfg;
  apps::LuConfig lu_cfg;

  const Row rows[] = {
      {"SAGE", 62, [sage_cfg](mpi::Comm& c) { (void)apps::sage(c, sage_cfg); },
       -0.42, false},
      {"SWEEP3D", 62,
       [sw_cfg](mpi::Comm& c) { (void)apps::sweep3d(c, sw_cfg); }, -2.23,
       false},
      {"IS", 64, [is_cfg](mpi::Comm& c) { (void)apps::nasIS(c, is_cfg); },
       10.14, true},
      {"EP", 64, [ep_cfg](mpi::Comm& c) { (void)apps::nasEP(c, ep_cfg); },
       5.35, true},
      {"MG", 64, [mg_cfg](mpi::Comm& c) { (void)apps::nasMG(c, mg_cfg); },
       4.37, true},
      {"CG", 64, [cg_cfg](mpi::Comm& c) { (void)apps::nasCG(c, cg_cfg); },
       10.83, true},
      {"LU", 64, [lu_cfg](mpi::Comm& c) { (void)apps::nasLU(c, lu_cfg); },
       15.04, true},
  };

  banner("Table 2: Benchmark and Application Slowdown (BCS-MPI vs "
         "production-style MPI)");
  std::printf("%-10s %-12s %-14s %-14s\n", "app", "processes",
              "measured (%)", "paper (%)");
  for (const Row& r : rows) {
    const HarnessConfig& h = r.short_run ? npb : prod;
    const double base = runBaseline(h, r.np, r.app).seconds;
    const double bcs_s = runBcs(h, r.np, r.app).seconds;
    std::printf("%-10s %-12d %-14.2f %-14.2f\n", r.name, r.np,
                slowdownPct(bcs_s, base), r.paper_pct);
  }
  std::printf(
      "\nNotes: NPB rows are short class-C runs and include the BCS-MPI\n"
      "runtime bring-up (the paper's explanation for IS/EP); SAGE and\n"
      "SWEEP3D are long production codes where it is negligible.  The\n"
      "paper's slightly *negative* slowdowns for SAGE/SWEEP3D come from\n"
      "OS-noise on the real cluster's baseline, which bench_ablation_noise\n"
      "explores separately.\n");
  return 0;
}
