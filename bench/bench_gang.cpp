// Gang-scheduling benchmark (paper §5.4, mitigation option 1): when an
// application blocks for communication, schedule a different parallel job
// in the wasted slices.  Two fine-grained blocking-heavy jobs time-share
// the machine; with gang scheduling their combined makespan approaches the
// serial sum of their *useful* work rather than the sum of their padded
// runtimes.

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/wavefront.hpp"
#include "bench/common.hpp"

namespace {

using namespace bcs;
using namespace bcs::bench;

apps::Sweep3dConfig jobConfig() {
  apps::Sweep3dConfig cfg;
  cfg.time_steps = 3;
  cfg.sweeps_per_step = 4;
  cfg.blocks = 4;
  cfg.blocking = true;  // lots of blocked slices to give away
  return cfg;
}

double runJobs(bool gang, int njobs, double* per_job_seconds) {
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = 8;
  net::Cluster cluster(ccfg);
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = sim::usec(100);
  cfg.gang_scheduling = gang;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);
  const auto app_cfg = jobConfig();
  std::vector<std::vector<sim::SimTime>> finishes(
      static_cast<std::size_t>(njobs));
  for (int j = 0; j < njobs; ++j) {
    bcsmpi::launchJob(
        *runtime, {0, 1, 2, 3, 4, 5, 6, 7},
        [app_cfg](mpi::Comm& c) { (void)apps::sweep3d(c, app_cfg); },
        &finishes[static_cast<std::size_t>(j)]);
  }
  cluster.run();
  sim::SimTime makespan = 0;
  for (int j = 0; j < njobs; ++j) {
    sim::SimTime last = 0;
    for (auto t : finishes[static_cast<std::size_t>(j)]) {
      last = std::max(last, t);
    }
    per_job_seconds[j] = sim::toSec(last);
    makespan = std::max(makespan, last);
  }
  return sim::toSec(makespan);
}

}  // namespace

int main() {
  banner("Gang scheduling: two blocking-heavy jobs sharing 8 nodes");

  double solo[1];
  const double solo_makespan = runJobs(false, 1, solo);
  std::printf("single job alone:                 %.3f s\n", solo_makespan);

  double both[2];
  const double gang_makespan = runJobs(true, 2, both);
  std::printf("two jobs, gang scheduled:         %.3f s (job A %.3f, job B %.3f)\n",
              gang_makespan, both[0], both[1]);
  std::printf("naive serial estimate (2x solo):  %.3f s\n", 2 * solo_makespan);
  std::printf("efficiency vs serial:             %.1f %%\n",
              200.0 * solo_makespan / gang_makespan -
                  100.0);  // >0%: slices reclaimed
  std::printf(
      "\nShape: the gang-scheduled makespan lands below 2x the solo time\n"
      "because each job computes in slices the other spends blocked.\n");
  return 0;
}
