// One-sided self-scheduling benchmark (DESIGN.md §11): the fetch-add
// work-stealing loop on the BCS-MPI runtime vs a static partition on the
// baseline (rendezvous) runtime, under a 4x linear load imbalance.
//
//   * rma_dyn_makespan_ms    — last-rank finish time of the dynamic
//                              self-scheduler (idle ranks steal chunk
//                              indices with bcs_fetch_add);
//   * rma_static_makespan_ms — same iteration space, block-partitioned,
//                              on the baseline runtime;
//   * rma_speedup            — static / dynamic (gated >= 1.1x: stealing
//                              must beat the partition even though every
//                              claim pays the global-slice latency);
//   * rma_coalesce_ratio     — ops per batch descriptor when many small
//                              puts to one destination are posted in one
//                              slice (gated >= 8x: the coalescing layer
//                              must actually fold them into few batches).
//
// All four rows are simulated-time (or counter) metrics — deterministic,
// so the baseline comparison is a behaviour gate, not a wall-clock one.
// Results are appended to BENCH_rma.json; with --baseline <json> the rows
// are compared against the checked-in BENCH_engine.json (keys absent there
// are skipped).  This is the `bench_rma_quick` CTest entry.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "apps/selfsched.hpp"
#include "baseline/baseline.hpp"
#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"
#include "sim/engine.hpp"

namespace {

using namespace bcs;
using sim::msec;
using sim::usec;

constexpr int kRanks = 16;

apps::SelfSchedConfig loopConfig() {
  apps::SelfSchedConfig cfg;
  cfg.chunks = 256;
  cfg.chunk_batch = 4;          // amortize the slice-latency per claim
  cfg.base_cost = msec(1);
  cfg.cost_ramp = 4.0;          // chunk 255 costs 4x chunk 0
  return cfg;
}

double makespanMs(const std::vector<sim::SimTime>& finish) {
  sim::SimTime last = 0;
  for (sim::SimTime t : finish) last = std::max(last, t);
  return sim::toUsec(last) / 1000.0;
}

/// Dynamic self-scheduler on the BCS-MPI runtime.
double dynMakespanMs() {
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = kRanks;
  net::Cluster cluster(ccfg);
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(100);
  std::vector<int> map(kRanks);
  std::iota(map.begin(), map.end(), 0);
  std::vector<sim::SimTime> finish;
  const apps::SelfSchedConfig loop = loopConfig();
  bcsmpi::runJob(cluster, cfg, map,
                 [&loop](mpi::Comm& comm) { apps::selfSchedule(comm, loop); },
                 &finish);
  return makespanMs(finish);
}

/// Static block partition on the baseline rendezvous runtime.
double staticMakespanMs() {
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = kRanks;
  net::Cluster cluster(ccfg);
  baseline::BaselineConfig cfg;
  cfg.init_overhead = usec(100);
  std::vector<int> map(kRanks);
  std::iota(map.begin(), map.end(), 0);
  std::vector<sim::SimTime> finish;
  const apps::SelfSchedConfig loop = loopConfig();
  baseline::runJob(cluster, cfg, map,
                   [&loop](mpi::Comm& comm) {
                     apps::staticSchedule(comm, loop);
                   },
                   &finish);
  return makespanMs(finish);
}

/// Coalescing ratio: three origins each post 32 async 64B puts to rank 0's
/// window inside one slice; the coalescing layer must batch each origin's
/// burst into one descriptor.
double coalesceRatio() {
  const int P = 4;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  net::Cluster cluster(ccfg);
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(100);
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);
  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  std::vector<std::uint8_t> window_mem(32768, 0);
  bcsmpi::launchJob(*runtime, map, [&window_mem](mpi::Comm& comm) {
    auto& api = static_cast<bcsmpi::BcsComm&>(comm).api();
    bcsmpi::BcsWindow win{0};
    if (comm.rank() == 0) {
      win = api.winCreate(window_mem.data(), window_mem.size());
    }
    comm.barrier();
    if (comm.rank() != 0) {
      std::vector<std::uint8_t> payload(
          64, static_cast<std::uint8_t>(comm.rank()));
      std::vector<bcsmpi::BcsRequest> reqs;
      for (int i = 0; i < 32; ++i) {
        const std::size_t offset =
            (static_cast<std::size_t>(comm.rank()) * 32 +
             static_cast<std::size_t>(i)) *
            64;
        reqs.push_back(
            api.putAsync(payload.data(), payload.size(), 0, win, offset));
      }
      for (bcsmpi::BcsRequest& r : reqs) api.test(r, /*blocking=*/true);
    }
    comm.barrier();
  });
  cluster.run();
  const auto& stats = runtime->stats();
  if (stats.rma_batches == 0) return 0.0;
  return static_cast<double>(stats.rma_ops) /
         static_cast<double>(stats.rma_batches);
}

double jsonNumber(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return std::nan("");
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_rma.json";
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  std::map<std::string, double> results;

  std::printf("self-scheduling under 4x load imbalance (%d ranks, %d "
              "chunks)\n", kRanks, loopConfig().chunks);
  const double dyn_ms = dynMakespanMs();
  const double static_ms = staticMakespanMs();
  const double speedup = static_ms / dyn_ms;
  results["rma_dyn_makespan_ms"] = dyn_ms;
  results["rma_static_makespan_ms"] = static_ms;
  results["rma_speedup"] = speedup;
  std::printf("  dynamic (fetch-add stealing) %8.2f ms\n", dyn_ms);
  std::printf("  static  (block partition)    %8.2f ms\n", static_ms);
  std::printf("  speedup %.2fx\n", speedup);

  const double ratio = coalesceRatio();
  results["rma_coalesce_ratio"] = ratio;
  std::printf("put coalescing: %.1f ops per batch descriptor\n", ratio);

  std::ostringstream json;
  json << "{\n  \"bench\": \"rma\"";
  for (const auto& [key, value] : results) {
    json << ",\n  \"" << key << "\": " << value;
  }
  json << "\n}\n";
  {
    std::ofstream f(out_path);
    f << json.str();
  }
  std::printf("wrote %s\n", out_path);

  int failures = 0;
  // Hard floors — the point of the one-sided layer.
  if (speedup < 1.1) {
    std::printf("REGRESSION rma_speedup: %.2fx below the 1.1x floor\n",
                speedup);
    ++failures;
  }
  if (ratio < 8.0) {
    std::printf("REGRESSION rma_coalesce_ratio: %.1f below the 8.0 floor\n",
                ratio);
    ++failures;
  }
  // Drift gate vs the checked-in rows: these are simulated-time metrics,
  // so a >30% move means the epoch pipeline's behaviour changed.
  if (baseline_path != nullptr) {
    std::ifstream f(baseline_path);
    if (!f) {
      std::printf("baseline %s missing; skipping drift gate\n",
                  baseline_path);
    } else {
      std::stringstream buf;
      buf << f.rdbuf();
      const std::string base = buf.str();
      for (const auto& [key, value] : results) {
        const double ref = jsonNumber(base, key);
        if (!(ref > 0)) continue;  // key absent in the baseline
        if (std::fabs(value - ref) > 0.30 * ref) {
          std::printf("DRIFT %s: %.4g vs baseline %.4g\n", key.c_str(),
                      value, ref);
          ++failures;
        }
      }
    }
  }
  if (failures > 0) return 1;
  std::printf("rma gate: ok (speedup floor 1.1x, coalesce floor 8.0)\n");
  return 0;
}
