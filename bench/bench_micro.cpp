// Google-benchmark microbenchmarks of the simulator substrate itself:
// event-engine throughput, fiber context switches, softfloat arithmetic,
// fabric operations and descriptor matching.  These guard the wall-clock
// cost of the reproduction experiments.

#include <benchmark/benchmark.h>

#include <vector>

#include "bcs/core.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/rng.hpp"
#include "softfloat/softfloat.hpp"

namespace {

using namespace bcs;

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      eng.at(i, [&sink] { ++sink; });
    }
    eng.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleRun);

void BM_FiberSwitch(benchmark::State& state) {
  sim::Fiber* self = nullptr;
  sim::Fiber fiber([&] {
    while (true) self->yield();
  });
  self = &fiber;
  for (auto _ : state) {
    fiber.resume();
  }
}
BENCHMARK(BM_FiberSwitch);

void BM_SoftFloatAdd64(benchmark::State& state) {
  sim::Rng rng(42);
  std::vector<std::uint64_t> a(1024), b(1024);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng();
    b[i] = rng();
  }
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      acc ^= sf::f64_add(a[i], b[i]);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SoftFloatAdd64);

void BM_SoftFloatMul32(benchmark::State& state) {
  sim::Rng rng(43);
  std::vector<std::uint32_t> a(1024), b(1024);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::uint32_t>(rng());
    b[i] = static_cast<std::uint32_t>(rng());
  }
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      acc ^= sf::f32_mul(a[i], b[i]);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SoftFloatMul32);

void BM_FabricUnicasts(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    net::Fabric fabric(eng, net::NetworkParams::qsnet(), 32);
    int delivered = 0;
    for (int i = 0; i < 256; ++i) {
      fabric.unicast(i % 16, 16 + i % 16, 4096, [&delivered] { ++delivered; });
    }
    eng.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_FabricUnicasts);

void BM_HardwareMulticast(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    net::Fabric fabric(eng, net::NetworkParams::qsnet(), n + 1);
    std::vector<int> dests;
    for (int i = 0; i < n; ++i) dests.push_back(i);
    bool done = false;
    fabric.multicast(n, dests, 4096, {}, [&done] { done = true; });
    eng.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_HardwareMulticast)->Arg(16)->Arg(64)->Arg(256);

void BM_CompareAndWrite(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    net::Fabric fabric(eng, net::NetworkParams::qsnet(), 33);
    core::BcsCore core(fabric);
    const auto var = core.allocVar("v", 7);
    std::vector<int> nodes;
    for (int i = 0; i < 32; ++i) nodes.push_back(i);
    bool out = false;
    core::CompareAndWriteRequest req;
    req.src_node = 32;
    req.nodes = nodes;
    req.var = var;
    req.op = core::CmpOp::kGE;
    req.value = 7;
    core.compareAndWriteAsync(std::move(req), [&out](bool ok) { out = ok; });
    eng.run();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_CompareAndWrite);

}  // namespace

BENCHMARK_MAIN();
