// Figure 8 reproduction: slowdown of BCS-MPI vs the production-style MPI on
// the two synthetic bulk-synchronous benchmarks.
//   (a) computation + barrier, 62 processes, granularity sweep
//   (b) computation + barrier, 10 ms granularity, process-count sweep
//   (c) computation + 4-neighbour exchange (4 KB), 62 procs, granularity sweep
//   (d) computation + 4-neighbour exchange, 10 ms granularity, process sweep

#include <cstdio>

#include "apps/synthetic.hpp"
#include "bench/common.hpp"

namespace {

using namespace bcs;
using namespace bcs::bench;
using sim::msec;

constexpr int kIterations = 40;

double barrierSlowdown(const HarnessConfig& h, int nprocs, double gran_ms) {
  apps::SyntheticBarrierConfig cfg;
  cfg.granularity = msec(gran_ms);
  cfg.iterations = kIterations;
  sim::Duration base = 0, bcs_t = 0;
  auto app = [&cfg](sim::Duration* out) {
    return [&cfg, out](mpi::Comm& c) {
      const sim::Duration e = apps::syntheticBarrier(c, cfg);
      if (c.rank() == 0) *out = e;
    };
  };
  runBaseline(h, nprocs, app(&base));
  runBcs(h, nprocs, app(&bcs_t));
  return slowdownPct(static_cast<double>(bcs_t), static_cast<double>(base));
}

double neighborSlowdown(const HarnessConfig& h, int nprocs, double gran_ms) {
  apps::SyntheticNeighborConfig cfg;
  cfg.granularity = msec(gran_ms);
  cfg.iterations = kIterations;
  cfg.neighbors = 4;
  cfg.message_bytes = 4096;
  sim::Duration base = 0, bcs_t = 0;
  auto app = [&cfg](sim::Duration* out) {
    return [&cfg, out](mpi::Comm& c) {
      const sim::Duration e = apps::syntheticNeighbor(c, cfg);
      if (c.rank() == 0) *out = e;
    };
  };
  runBaseline(h, nprocs, app(&base));
  runBcs(h, nprocs, app(&bcs_t));
  return slowdownPct(static_cast<double>(bcs_t), static_cast<double>(base));
}

}  // namespace

int main() {
  HarnessConfig h;
  // The measured loop excludes init (both sides aligned by a barrier), so
  // init overheads are irrelevant here; keep them small to save sim time.
  h.baseline.init_overhead = sim::usec(100);
  h.bcs.runtime_init_overhead = sim::usec(100);

  const double grans[] = {0.5, 1, 2, 5, 10, 20, 50};
  const int procs[] = {4, 8, 16, 32, 48, 62};

  banner("Figure 8(a): computation + barrier, 62 processes");
  std::printf("%-18s %-14s\n", "granularity (ms)", "slowdown (%)");
  for (double g : grans) {
    std::printf("%-18.1f %-14.2f\n", g, barrierSlowdown(h, 62, g));
  }

  banner("Figure 8(b): computation + barrier, 10 ms granularity");
  std::printf("%-12s %-14s\n", "processes", "slowdown (%)");
  for (int p : procs) {
    std::printf("%-12d %-14.2f\n", p, barrierSlowdown(h, p, 10));
  }

  banner(
      "Figure 8(c): computation + nearest-neighbour (4 neighbours, 4KB), "
      "62 processes");
  std::printf("%-18s %-14s\n", "granularity (ms)", "slowdown (%)");
  for (double g : grans) {
    std::printf("%-18.1f %-14.2f\n", g, neighborSlowdown(h, 62, g));
  }

  banner("Figure 8(d): computation + nearest-neighbour, 10 ms granularity");
  std::printf("%-12s %-14s\n", "processes", "slowdown (%)");
  for (int p : procs) {
    std::printf("%-12d %-14.2f\n", p, neighborSlowdown(h, p, 10));
  }

  std::printf(
      "\nPaper shape: slowdown falls as granularity grows (<7.5%% at 10 ms\n"
      "for barrier, <8%% for the neighbour stencil) and is nearly flat in\n"
      "the number of processes.\n");
  return 0;
}
