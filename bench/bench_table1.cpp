// Table 1 reproduction: measured performance of the two global BCS core
// mechanisms as a function of the number of nodes, for every interconnect
// the paper lists.
//
//   network      Compare-And-Write       Xfer-And-Signal aggregate BW
//   GigE         46 log2(n) us           (not available)
//   Myrinet      20 log2(n) us           ~15n MB/s
//   Infiniband   20 log2(n) us           (not available)
//   QsNet        < 10 us                 > 150n MB/s
//   BlueGene/L   < 2 us                  700n MB/s
//
// Networks without hardware collectives run the primitives through the
// software-tree emulation; QsNet and BlueGene/L use the native mechanisms.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bcs/core.hpp"
#include "net/fabric.hpp"
#include "net/params.hpp"
#include "sim/engine.hpp"

namespace {

using namespace bcs;

/// Measured Compare-And-Write completion latency over n nodes.
double cawLatencyUs(const net::NetworkParams& params, int n) {
  sim::Engine eng;
  net::Fabric fabric(eng, params, n + 1);
  core::BcsCore core(fabric);
  const auto var = core.allocVar("x", 1);
  std::vector<int> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(i);
  sim::SimTime done = -1;
  core::CompareAndWriteRequest req;
  req.src_node = n;
  req.nodes = nodes;
  req.var = var;
  req.op = core::CmpOp::kGE;
  req.value = 1;
  core.compareAndWriteAsync(std::move(req),
                            [&](bool) { done = eng.now(); });
  eng.run();
  return sim::toUsec(done);
}

/// Measured Xfer-And-Signal aggregate bandwidth (MB/s) delivering `bytes`
/// to n destinations.
double xasAggregateMBs(const net::NetworkParams& params, int n,
                       std::size_t bytes) {
  sim::Engine eng;
  net::Fabric fabric(eng, params, n + 1);
  core::BcsCore core(fabric);
  sim::SimTime done = -1;
  const auto ev = core.allocEvent("done");
  std::vector<int> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(i);
  core::XferRequest xfer;
  xfer.src_node = n;
  xfer.dest_nodes = nodes;
  xfer.bytes = bytes;
  xfer.local_event = ev;
  core.xferAndSignal(std::move(xfer));
  core.waitEventAsync(n, ev, [&] { done = eng.now(); });
  eng.run();
  const double total = static_cast<double>(bytes) * n;
  return total / sim::toSec(done) / 1e6;
}

}  // namespace

int main() {
  const net::NetworkParams nets[] = {
      net::NetworkParams::gigabitEthernet(), net::NetworkParams::myrinet(),
      net::NetworkParams::infiniband(), net::NetworkParams::qsnet(),
      net::NetworkParams::bluegeneL()};
  const int counts[] = {2, 4, 16, 64, 256, 1024};

  std::printf(
      "Table 1: BCS core mechanism performance vs number of nodes n\n");

  std::printf("\nCompare-And-Write latency (us)\n%-14s", "network");
  for (int n : counts) std::printf("%8d", n);
  std::printf("   paper model\n");
  for (const auto& p : nets) {
    std::printf("%-14s", p.name.c_str());
    for (int n : counts) std::printf("%8.1f", cawLatencyUs(p, n));
    if (p.hw_conditional) {
      std::printf("   %s\n", p.name == "QsNet" ? "< 10" : "< 2");
    } else {
      std::printf("   %.0f log2(n)\n", sim::toUsec(p.sw_step_latency));
    }
  }

  std::printf("\nXfer-And-Signal aggregate bandwidth (MB/s), 1 MiB payload\n%-14s",
              "network");
  for (int n : counts) std::printf("%10d", n);
  std::printf("   paper model\n");
  for (const auto& p : nets) {
    std::printf("%-14s", p.name.c_str());
    for (int n : counts) {
      std::printf("%10.0f", xasAggregateMBs(p, n, 1 << 20));
    }
    if (p.name == "Myrinet") {
      std::printf("   ~15n");
    } else if (p.name == "QsNet") {
      std::printf("   > 150n");
    } else if (p.name == "BlueGene/L") {
      std::printf("   700n");
    } else {
      std::printf("   (not available)");
    }
    std::printf("\n");
  }
  std::printf(
      "\n(Aggregate bandwidth = n * payload / completion time; software-\n"
      " emulated multicasts relay through a binomial tree, hardware\n"
      " multicasts fan out in the switches.)\n");
  return 0;
}
