// Protocol microbenchmarks (paper §3.1, §3.2, §4.3, §4.4):
//   * blocking point-to-point delay distribution (expected ~1.5 slices avg)
//   * non-blocking wait cost under full overlap (expected ~0)
//   * DEM+MSM duration (expected ~125 us)
//   * NIC (softfloat) reduce vs host reduce latency vs element count

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "sim/stats.hpp"

namespace {

using namespace bcs;
using namespace bcs::bench;
using sim::msec;
using sim::usec;

void blockingDelay(const HarnessConfig& h) {
  banner("Blocking send/recv delay (paper 3.1: expect ~1.5 time slices avg)");
  std::printf("%-14s %-12s %-12s %-12s\n", "slice (us)", "mean (us)",
              "min (us)", "max (us)");
  for (double slice_us : {250.0, 500.0, 1000.0}) {
    HarnessConfig hh = h;
    hh.bcs.time_slice = usec(slice_us);
    sim::Accumulator acc;
    runBcs(hh, 2, [&](mpi::Comm& comm) {
      char c = 0;
      for (int i = 0; i < 60; ++i) {
        // Sample many phases of the slice grid (co-prime stride).
        comm.compute(usec(118 + 61 * (i % 23)));
        if (comm.rank() == 0) {
          const sim::SimTime t0 = comm.now();
          comm.send(&c, 1, 1, 0);
          acc.add(sim::toUsec(comm.now() - t0));
        } else {
          comm.recv(&c, 1, 0, 0);
        }
      }
    });
    std::printf("%-14.0f %-12.1f %-12.1f %-12.1f   (= %.2f slices avg)\n",
                slice_us, acc.mean(), acc.min(), acc.max(),
                acc.mean() / slice_us);
  }
}

void nonBlockingOverlap(const HarnessConfig& h) {
  banner("Non-blocking overlap (paper 3.2: wait cost ~0 when overlapped)");
  std::printf("%-16s %-18s %-18s\n", "compute (ms)", "wait cost (us)",
              "fully overlapped");
  for (double compute_ms : {0.25, 0.5, 1.0, 2.0, 5.0}) {
    sim::Accumulator acc;
    runBcs(h, 2, [&](mpi::Comm& comm) {
      std::vector<char> out(4096, 'x'), in(4096);
      const int peer = 1 - comm.rank();
      for (int i = 0; i < 20; ++i) {
        std::vector<mpi::Request> reqs;
        reqs.push_back(comm.irecv(in.data(), in.size(), peer, i));
        reqs.push_back(comm.isend(out.data(), out.size(), peer, i));
        comm.compute(msec(compute_ms));
        const sim::SimTime t0 = comm.now();
        comm.waitall(reqs);
        if (comm.rank() == 0) acc.add(sim::toUsec(comm.now() - t0));
      }
    });
    std::printf("%-16.2f %-18.1f %-18s\n", compute_ms, acc.mean(),
                acc.mean() < 5.0 ? "yes" : "no");
  }
}

void demMsmBudget(const HarnessConfig& h) {
  banner("Microphase schedule (paper 4.3: DEM+MSM ~= 125 us)");
  net::Cluster cluster(clusterConfig(h, 8));
  cluster.trace().enable();
  const auto map =
      baseline::blockMapping(8, cluster.numComputeNodes(), h.procs_per_node);
  bcsmpi::runJob(cluster, h.bcs, map, [&](mpi::Comm& comm) {
    char c = 0;
    const int peer = comm.rank() ^ 1;
    for (int i = 0; i < 5; ++i) {
      if (comm.rank() % 2 == 0) {
        comm.send(&c, 1, peer, 0);
      } else {
        comm.recv(&c, 1, peer, 0);
      }
    }
  });
  // Average DEM->P2P strobe spacing over all slices.
  sim::Accumulator acc;
  sim::SimTime dem_at = -1;
  for (const auto& r : cluster.trace().records()) {
    if (r.category != sim::TraceCategory::kStrobe) continue;
    if (r.message.find("DEM") != std::string::npos) dem_at = r.time;
    if (r.message.find("P2P") != std::string::npos && dem_at >= 0) {
      acc.add(sim::toUsec(r.time - dem_at));
      dem_at = -1;
    }
  }
  std::printf("DEM+MSM duration: mean %.1f us (min %.1f, max %.1f) over %llu slices\n",
              acc.mean(), acc.min(), acc.max(),
              static_cast<unsigned long long>(acc.count()));
}

void nicReduce(const HarnessConfig& h) {
  banner("Reduce latency: NIC softfloat RH vs host tree (paper 4.4)");
  std::printf("%-12s %-22s %-22s\n", "elements", "BCS-MPI NIC reduce (us)",
              "baseline host reduce (us)");
  for (std::size_t count : {1u, 8u, 64u, 256u, 1024u}) {
    sim::Accumulator nic, host;
    auto app = [&](mpi::Comm& comm, sim::Accumulator& acc) {
      std::vector<double> in(count, comm.rank() + 0.25), out(count);
      for (int i = 0; i < 10; ++i) {
        const sim::SimTime t0 = comm.now();
        comm.allreduce(in.data(), out.data(), count, mpi::Datatype::kFloat64,
                       mpi::ReduceOp::kSum);
        if (comm.rank() == 0) acc.add(sim::toUsec(comm.now() - t0));
      }
    };
    runBcs(h, 16, [&](mpi::Comm& c) { app(c, nic); });
    runBaseline(h, 16, [&](mpi::Comm& c) { app(c, host); });
    std::printf("%-12zu %-22.1f %-22.1f\n", count, nic.mean(), host.mean());
  }
  std::printf(
      "(BCS-MPI reduce latency is dominated by the slice grid; the NIC\n"
      " computation itself stays off the host CPUs and overlaps compute.)\n");
}

}  // namespace

int main() {
  HarnessConfig h;
  h.baseline.init_overhead = usec(100);
  h.bcs.runtime_init_overhead = usec(100);
  blockingDelay(h);
  nonBlockingOverlap(h);
  demMsmBudget(h);
  nicReduce(h);
  return 0;
}
