// STORM job-launch microbenchmark (the substrate claim of [8], paper §4):
// launching a job image over the hardware-collective primitives costs
// almost the same on 4 nodes as on 256 — unlike rsh/tree-based launchers.

#include <cstdio>
#include <vector>

#include "storm/storm.hpp"

int main() {
  using namespace bcs;

  std::printf("STORM job launch latency (hardware-collective transfer + NM "
              "spawn + CAW readiness poll)\n\n");
  std::printf("%-14s", "image size");
  for (int n : {4, 16, 64, 128, 256}) std::printf("%10d", n);
  std::printf("   (nodes)\n");

  for (std::size_t mb : {1u, 4u, 16u}) {
    std::printf("%3zu MiB       ", mb);
    for (int n : {4, 16, 64, 128, 256}) {
      net::ClusterConfig ccfg;
      ccfg.num_compute_nodes = n;
      net::Cluster cluster(ccfg);
      storm::Storm storm(cluster);
      std::vector<int> nodes;
      for (int i = 0; i < n; ++i) nodes.push_back(i);
      sim::SimTime latency = -1;
      storm.launchImage(nodes, mb << 20, /*procs_per_node=*/2,
                        [&](sim::SimTime lat) { latency = lat; });
      cluster.run();
      std::printf("%9.1fms", sim::toMsec(latency));
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape: latency tracks image size / multicast bandwidth and is\n"
      "nearly flat in the node count — STORM's 'orders of magnitude faster\n"
      "than production' launch claim rides entirely on the BCS core\n"
      "primitives.\n");
  return 0;
}
