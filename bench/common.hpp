#pragma once

// Shared harness for the paper-reproduction benchmarks.
//
// Every bench binary builds a fresh simulated cluster per data point, runs
// the same application skeleton over the baseline ("Quadrics MPI"-style)
// implementation and over BCS-MPI, and prints the rows/series of the
// corresponding paper table or figure.  Times are *simulated* seconds.

#include <cstdio>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "baseline/baseline.hpp"
#include "bcsmpi/comm.hpp"
#include "mpi/comm.hpp"
#include "net/cluster.hpp"

namespace bcs::bench {

using AppFn = std::function<void(mpi::Comm&)>;

struct RunResult {
  double seconds = 0;  ///< max rank finish time (total runtime incl. init)
};

struct HarnessConfig {
  int procs_per_node = 2;  ///< crescendo: dual-CPU nodes
  net::NetworkParams network = net::NetworkParams::qsnet();
  baseline::BaselineConfig baseline;
  bcsmpi::BcsMpiConfig bcs;
  bool inject_noise = false;
  sim::NoiseConfig noise;
};

inline int nodesFor(int nprocs, int per_node) {
  return (nprocs + per_node - 1) / per_node;
}

inline net::ClusterConfig clusterConfig(const HarnessConfig& h, int nprocs) {
  net::ClusterConfig c;
  c.num_compute_nodes = nodesFor(nprocs, h.procs_per_node);
  c.network = h.network;
  c.inject_noise = h.inject_noise;
  c.noise = h.noise;
  return c;
}

inline RunResult runBaseline(const HarnessConfig& h, int nprocs,
                             const AppFn& app) {
  net::Cluster cluster(clusterConfig(h, nprocs));
  const auto map = baseline::blockMapping(nprocs, cluster.numComputeNodes(),
                                          h.procs_per_node);
  std::vector<sim::SimTime> finish;
  baseline::runJob(cluster, h.baseline, map, app, &finish);
  sim::SimTime last = 0;
  for (auto t : finish) last = std::max(last, t);
  return RunResult{sim::toSec(last)};
}

inline RunResult runBcs(const HarnessConfig& h, int nprocs, const AppFn& app) {
  net::Cluster cluster(clusterConfig(h, nprocs));
  const auto map = baseline::blockMapping(nprocs, cluster.numComputeNodes(),
                                          h.procs_per_node);
  std::vector<sim::SimTime> finish;
  bcsmpi::runJob(cluster, h.bcs, map, app, &finish);
  sim::SimTime last = 0;
  for (auto t : finish) last = std::max(last, t);
  return RunResult{sim::toSec(last)};
}

inline double slowdownPct(double bcs_s, double base_s) {
  return (bcs_s / base_s - 1.0) * 100.0;
}

inline void banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace bcs::bench
