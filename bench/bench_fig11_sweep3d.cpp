// Figure 11 reproduction: SWEEP3D runtime under the production-style MPI
// and under BCS-MPI, as a function of the number of processes.
//   (a) original blocking send/receive version — BCS-MPI pays the
//       slice-alignment cost of every blocking call (paper: ~30% slowdown);
//   (b) non-blocking rewrite (Isend/Irecv + Waitall, <50 changed lines) —
//       the penalty disappears and BCS-MPI runs at par or slightly ahead.

#include <cstdio>

#include "apps/wavefront.hpp"
#include "bench/common.hpp"

namespace {

using namespace bcs;
using namespace bcs::bench;

void panel(const HarnessConfig& h, bool blocking) {
  banner(blocking
             ? "Figure 11(a): SWEEP3D, blocking send/receive"
             : "Figure 11(b): SWEEP3D, non-blocking (Isend/Irecv + Waitall)");
  std::printf("%-12s %-16s %-16s %-12s\n", "processes", "baseline (s)",
              "BCS-MPI (s)", "slowdown (%)");
  for (int np : {8, 16, 32, 48, 62}) {
    apps::Sweep3dConfig cfg;
    cfg.blocking = blocking;
    const auto app = [cfg](mpi::Comm& c) { (void)apps::sweep3d(c, cfg); };
    const double base = runBaseline(h, np, app).seconds;
    const double bcs_s = runBcs(h, np, app).seconds;
    std::printf("%-12d %-16.3f %-16.3f %-12.2f\n", np, base, bcs_s,
                slowdownPct(bcs_s, base));
  }
}

}  // namespace

int main() {
  HarnessConfig h;
  // SWEEP3D production runs last minutes-to-hours; the one-time runtime
  // bring-up is negligible there, so it is excluded from this scaled-down
  // run (see EXPERIMENTS.md).
  h.baseline.init_overhead = sim::usec(100);
  h.bcs.runtime_init_overhead = sim::usec(100);
  panel(h, /*blocking=*/true);
  panel(h, /*blocking=*/false);
  std::printf(
      "\nPaper shape: ~30%% slowdown for the blocking version at every\n"
      "process count; the non-blocking rewrite eliminates it (slightly\n"
      "negative slowdown in the paper).\n");
  return 0;
}
