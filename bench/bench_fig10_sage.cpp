// Figure 10 reproduction: SAGE (timing.input) runtime as a function of the
// number of processes, baseline vs BCS-MPI.
//
// SAGE is medium-grained and uses non-blocking nearest-neighbour
// communication followed by one small reduce per compute step, so BCS-MPI
// runs at par with the production-style MPI (paper: -0.42% "slowdown").

#include <cstdio>

#include "apps/nas.hpp"
#include "bench/common.hpp"

int main() {
  using namespace bcs;
  using namespace bcs::bench;

  HarnessConfig h;
  // Production SAGE runs are long; the one-time bring-up is negligible.
  h.baseline.init_overhead = sim::msec(5);
  h.bcs.runtime_init_overhead = sim::msec(30);

  banner("Figure 10: SAGE (timing.input skeleton), runtime vs processes");
  std::printf("%-12s %-16s %-16s %-14s\n", "processes", "Quadrics-style (s)",
              "BCS-MPI (s)", "slowdown (%)");
  for (int np : {4, 8, 16, 32, 48, 62}) {
    apps::SageConfig cfg;
    const auto app = [cfg](mpi::Comm& c) { (void)apps::sage(c, cfg); };
    const double base = runBaseline(h, np, app).seconds;
    const double bcs_s = runBcs(h, np, app).seconds;
    std::printf("%-12d %-16.3f %-16.3f %-14.2f\n", np, base, bcs_s,
                slowdownPct(bcs_s, base));
  }
  std::printf(
      "\nPaper shape: the two curves coincide (slowdown ~0, -0.42%% in\n"
      "Table 2) across the whole process range.\n");
  return 0;
}
