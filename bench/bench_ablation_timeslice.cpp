// Ablation: time-slice length (the paper fixes it at 500 us, §5.1).
//
// Shorter slices cut the blocking latency (~1.5 slices) but raise the fixed
// protocol overhead per slice (DEM+MSM ~ 125 us); longer slices amortize
// the protocol but make every blocking primitive slower.  The sweep shows
// the trade-off for a fine-grained blocking workload and a coarse
// bulk-synchronous one.

#include <cstdio>

#include "apps/synthetic.hpp"
#include "apps/wavefront.hpp"
#include "bench/common.hpp"

namespace {

using namespace bcs;
using namespace bcs::bench;
using sim::usec;

}  // namespace

int main() {
  HarnessConfig h;
  h.baseline.init_overhead = usec(100);
  h.bcs.runtime_init_overhead = usec(100);

  apps::Sweep3dConfig fine;   // fine-grained, blocking
  fine.time_steps = 3;
  fine.sweeps_per_step = 4;
  apps::SyntheticBarrierConfig coarse;  // coarse bulk-synchronous
  coarse.granularity = sim::msec(10);
  coarse.iterations = 20;

  const double base_fine =
      runBaseline(h, 16, [fine](mpi::Comm& c) { (void)apps::sweep3d(c, fine); })
          .seconds;
  const double base_coarse =
      runBaseline(h, 16,
                  [coarse](mpi::Comm& c) { (void)apps::syntheticBarrier(c, coarse); })
          .seconds;

  banner("Ablation: time-slice length (paper default 500 us)");
  std::printf("%-12s %-24s %-24s %-18s\n", "slice (us)",
              "SWEEP3D-blk slowdown (%)", "10ms-barrier slowdown (%)",
              "bulk BW (MB/s)");
  for (double slice : {125.0, 250.0, 500.0, 1000.0, 2000.0}) {
    HarnessConfig hh = h;
    hh.bcs.time_slice = usec(slice);
    // The scheduling floors cannot exceed the slice itself.
    if (hh.bcs.dem_floor + hh.bcs.msm_floor > hh.bcs.time_slice / 2) {
      hh.bcs.dem_floor = hh.bcs.time_slice / 8;
      hh.bcs.msm_floor = hh.bcs.time_slice / 8;
    }
    // Scale the per-slice transmission budget with the slice, like the
    // real BR would (bandwidth x transmission-phase length).
    // ~200 us of every slice goes to scheduling + strobing; the rest is
    // transmission window.
    hh.bcs.slice_byte_budget = static_cast<std::size_t>(
        std::max(8.0 * 1024, 0.34 * (slice - 200.0) * 1e3));
    // One message may use the whole transmission window of a slice.
    hh.bcs.chunk_bytes = hh.bcs.slice_byte_budget;
    const double f =
        runBcs(hh, 16, [fine](mpi::Comm& c) { (void)apps::sweep3d(c, fine); })
            .seconds;
    const double c =
        runBcs(hh, 16,
               [coarse](mpi::Comm& cm) { (void)apps::syntheticBarrier(cm, coarse); })
            .seconds;
    // Bulk point-to-point bandwidth under this slice length.
    double mbps = 0;
    runBcs(hh, 2, [&mbps](mpi::Comm& cm) {
      const std::size_t bytes = 2 << 20;
      std::vector<char> buf(bytes, 1);
      if (cm.rank() == 0) {
        const sim::SimTime t0 = cm.now();
        cm.send(buf.data(), bytes, 1, 0);
        mbps = static_cast<double>(bytes) / sim::toSec(cm.now() - t0) / 1e6;
      } else {
        cm.recv(buf.data(), bytes, 0, 0);
      }
    });
    std::printf("%-12.0f %-24.2f %-24.2f %-18.1f\n", slice,
                slowdownPct(f, base_fine), slowdownPct(c, base_coarse), mbps);
  }
  std::printf(
      "\nShape: shorter slices cut every blocking penalty (latency ~1.5\n"
      "slices) but shrink the per-slice transmission window, throttling\n"
      "bulk bandwidth; the protocol's fixed DEM+MSM cost also stops\n"
      "fitting below ~250 us.  500 us balances latency against bandwidth\n"
      "on QsNet-class links.\n");
  return 0;
}
