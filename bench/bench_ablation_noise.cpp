// Ablation: OS noise and coscheduling (paper §4.5 and [20], "the missing
// supercomputer performance").
//
// Uncoordinated system dæmons steal the CPU for short bursts at random
// phases on every node.  A fine-grained bulk-synchronous application pays
// the *maximum* interference across all nodes at every barrier, so a 1%
// average CPU tax inflates runtime far more than 1%.  Coordinating
// (coscheduling) the dæmons — BCS's core idea applied to system activity —
// collapses the cost back to the average.

#include <cstdio>

#include "apps/synthetic.hpp"
#include "bench/common.hpp"

namespace {

using namespace bcs;
using namespace bcs::bench;
using sim::msec;
using sim::usec;

double runWith(const HarnessConfig& base, bool noise, bool coordinated,
               double gran_ms) {
  HarnessConfig h = base;
  h.inject_noise = noise;
  h.noise.period = msec(10);
  h.noise.duration = usec(800);  // 8% worst-case per-node CPU tax
  h.noise.jitter = 0.3;
  h.noise.coordinated = coordinated;
  apps::SyntheticBarrierConfig cfg;
  cfg.granularity = msec(gran_ms);
  cfg.iterations = 60;
  return runBaseline(h, 32,
                     [cfg](mpi::Comm& c) { (void)apps::syntheticBarrier(c, cfg); })
      .seconds;
}

}  // namespace

int main() {
  HarnessConfig h;
  h.baseline.init_overhead = usec(100);

  banner("Ablation: OS noise on a fine-grained bulk-synchronous code "
         "(32 procs, barrier every step)");
  std::printf("%-18s %-14s %-22s %-22s\n", "granularity (ms)", "quiet (s)",
              "uncoordinated (+%)", "coscheduled dæmons (+%)");
  for (double g : {1.0, 2.0, 5.0, 10.0}) {
    const double quiet = runWith(h, false, false, g);
    const double uncoord = runWith(h, true, false, g);
    const double coord = runWith(h, true, true, g);
    std::printf("%-18.1f %-14.3f %-22.2f %-22.2f\n", g, quiet,
                slowdownPct(uncoord, quiet), slowdownPct(coord, quiet));
  }
  std::printf(
      "\nShape: with uncoordinated noise the barrier collects the slowest\n"
      "node's interference every iteration; coscheduling the dæmons across\n"
      "nodes (same phase everywhere) absorbs most of it — the system-level\n"
      "motivation for BCS's global coordination.\n");
  return 0;
}
