// Compile-and-run proof that the simulator's hot-path layers — the calendar
// event engine, the envelope-hash MSM match indexes, and the payload pool —
// stay fully usable under -fno-exceptions (fatal errors route through
// sim::simFail, which aborts instead of throwing).  Built only in the bench
// preset, where this file and the engine sources are compiled with
// -fno-exceptions; a stray `throw` in any of these layers breaks the build.
#include <cstdio>

#include "bcsmpi/matching.hpp"
#include "sim/engine.hpp"
#include "sim/pool.hpp"

#if defined(__cpp_exceptions)
#error "noexcept_smoke must be compiled with -fno-exceptions"
#endif

int main() {
  bcs::sim::Engine eng;
  int fired = 0;
  eng.at(100, [&] { ++fired; });
  eng.after(bcs::sim::msec(20), [&] { ++fired; });  // beyond wheel horizon
  const bcs::sim::EventId doomed = eng.at(500, [&] { ++fired; });
  if (!eng.cancel(doomed)) return 1;
  eng.run();
  if (fired != 2 || eng.pendingEvents() != 0) return 1;

  bcs::sim::PayloadPool pool;
  auto buf = pool.acquire(4096);
  buf.reset();
  if (pool.spareBuffers() != 1) return 1;

  bcs::bcsmpi::SendMatchIndex sends;
  bcs::bcsmpi::RecvMatchIndex recvs;
  bcs::bcsmpi::SendDescriptor s;
  s.job = 0;
  s.src_rank = 1;
  s.dst_rank = 0;
  s.tag = 7;
  s.seq = 1;
  sends.insert(s);
  bcs::bcsmpi::RecvDescriptor r;
  r.job = 0;
  r.want_src = bcs::mpi::kAnySource;
  r.dst_rank = 0;
  r.want_tag = 7;
  r.seq = 2;
  r.bytes = 64;
  recvs.insert(r);
  const bcs::bcsmpi::SendDescriptor* hit = sends.lowestSeqMatch(r);
  if (hit == nullptr || hit->seq != 1) return 1;

  std::puts("noexcept smoke: ok");
  return 0;
}
