// Ablation: message chunking and the per-slice byte budget (paper §4.3:
// "if the message cannot be transmitted in a single time slice, it is
// chunked and scheduled over multiple time slices").
//
// The budget caps how much payload the DMA Helper moves per slice, keeping
// the transmission phase inside the slice.  Small budgets throttle bulk
// bandwidth; unbounded budgets let a bulk transfer overrun the slice and
// stall the global schedule (slice_overruns).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "sim/stats.hpp"

namespace {

using namespace bcs;
using namespace bcs::bench;

struct Result {
  double bulk_mbps;
  double small_latency_us;
  std::uint64_t overruns;
  std::uint64_t slices;
};

Result runChunk(std::size_t chunk, std::size_t budget) {
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = 4;
  net::Cluster cluster(ccfg);
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = sim::usec(100);
  cfg.chunk_bytes = chunk;
  cfg.slice_byte_budget = budget;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  Result r{};
  const std::size_t bulk_bytes = 4 << 20;
  // Ranks 0/1: bulk transfer.  Ranks 2/3: concurrent small ping-pong whose
  // latency shows whether the bulk stream hogs the schedule.
  bcsmpi::launchJob(*runtime, {0, 1, 2, 3}, [&](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<char> buf(bulk_bytes, 'b');
      const sim::SimTime t0 = comm.now();
      comm.send(buf.data(), buf.size(), 1, 0);
      r.bulk_mbps = static_cast<double>(bulk_bytes) /
                    sim::toSec(comm.now() - t0) / 1e6;
    } else if (comm.rank() == 1) {
      std::vector<char> buf(bulk_bytes);
      comm.recv(buf.data(), buf.size(), 0, 0);
    } else {
      char c = 0;
      sim::Accumulator acc;
      for (int i = 0; i < 12; ++i) {
        comm.compute(sim::usec(137 + 61 * i));
        if (comm.rank() == 2) {
          const sim::SimTime t0 = comm.now();
          comm.send(&c, 1, 3, 1);
          acc.add(sim::toUsec(comm.now() - t0));
        } else {
          comm.recv(&c, 1, 2, 1);
        }
      }
      if (comm.rank() == 2) r.small_latency_us = acc.mean();
    }
  });
  cluster.run();
  r.overruns = runtime->stats().slice_overruns;
  r.slices = runtime->stats().slices;
  return r;
}

}  // namespace

int main() {
  banner("Ablation: chunk size / per-slice byte budget (4 MiB bulk + "
         "concurrent 1B ping-pong)");
  std::printf("%-12s %-12s %-14s %-22s %-10s\n", "chunk (KB)", "budget (KB)",
              "bulk (MB/s)", "small-msg delay (us)", "overruns");
  struct P {
    std::size_t chunk_kb, budget_kb;
  };
  for (P p : {P{16, 24}, P{32, 48}, P{64, 96}, P{128, 192}, P{512, 768},
              P{4096, 8192}}) {
    const Result r = runChunk(p.chunk_kb << 10, p.budget_kb << 10);
    std::printf("%-12zu %-12zu %-14.1f %-22.1f %llu/%llu\n", p.chunk_kb,
                p.budget_kb, r.bulk_mbps, r.small_latency_us,
                static_cast<unsigned long long>(r.overruns),
                static_cast<unsigned long long>(r.slices));
  }
  std::printf(
      "\nShape: bulk bandwidth rises with the budget until it saturates the\n"
      "per-slice transmission window; past that, transfers overrun the\n"
      "slice and the global schedule (and the concurrent small-message\n"
      "traffic) degrades.  The paper's 64 KiB chunks keep the phases inside\n"
      "500 us at QsNet bandwidth.\n");
  return 0;
}
