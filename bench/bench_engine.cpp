// Microbenchmark of the simulation core's hot paths, tracking the perf
// trajectory over PRs:
//
//   * events/sec   — calendar-queue engine on a slice-shaped event soup at
//                    32/128/512 simulated nodes, vs an in-binary copy of the
//                    original binary-heap + std::function engine;
//   * matches/sec  — envelope-hash MSM matcher vs the reference quadratic
//                    matcher on a randomized descriptor soup;
//   * slices/sec   — wall-clock slice rate of a full BCS-MPI runtime driving
//                    a sparse job (one 512B neighbor exchange, then a long
//                    compute block), so the measurement is control-plane
//                    cost: strobes, floors, acks.  Measured flat and through
//                    the hierarchical strobe tree (tree_fanout = 32) at
//                    512/1024/2048 nodes; `tree_speedup_n512` is the gated
//                    ratio (DESIGN.md §7).
//
// Results are appended to BENCH_engine.json (flat "key": value pairs).  With
// --baseline <json>, throughput keys are compared against the checked-in
// baseline and the run fails on a >30% regression — this is the `bench_quick`
// CTest entry (see the `bench` CMake preset).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <map>
#include <queue>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bcsmpi/comm.hpp"
#include "bcsmpi/matching.hpp"
#include "net/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace {

using namespace bcs;
using sim::SimTime;
using sim::usec;

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---------------------------------------------------------------------------
// The pre-calendar-queue engine, kept verbatim so the speedup criterion is
// measured against the real ancestor, not a strawman.
// ---------------------------------------------------------------------------

namespace legacy {

struct EventId {
  std::uint64_t seq = 0;
};

class Engine {
 public:
  SimTime now() const { return now_; }

  EventId at(SimTime when, std::function<void()> fn) {
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{when, seq});
    callbacks_.emplace(seq, std::move(fn));
    return EventId{seq};
  }

  EventId after(sim::Duration delay, std::function<void()> fn) {
    return at(now_ + delay, std::move(fn));
  }

  bool cancel(EventId id) {
    auto it = callbacks_.find(id.seq);
    if (it == callbacks_.end()) return false;
    callbacks_.erase(it);
    return true;
  }

  SimTime run(SimTime until = INT64_MAX) {
    while (!heap_.empty()) {
      Entry top = heap_.top();
      auto it = callbacks_.find(top.seq);
      if (it == callbacks_.end()) {
        heap_.pop();
        continue;
      }
      if (top.when > until) break;
      heap_.pop();
      now_ = top.when;
      std::function<void()> fn = std::move(it->second);
      callbacks_.erase(it);
      ++executed_;
      fn();
    }
    return now_;
  }

  std::uint64_t executedEvents() const { return executed_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    bool operator>(const Entry& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<std::uint64_t, std::function<void()>> callbacks_;
};

}  // namespace legacy

// ---------------------------------------------------------------------------
// Event soup: per slice and node, five jittered microphase events, an op
// completion, a usually-cancelled timeout, and an occasional beyond-horizon
// watchdog — the event mix a slice-synchronous runtime generates.
// ---------------------------------------------------------------------------

/// Capture state of a typical runtime callback (`this` + node/phase ids +
/// a sequence number): larger than std::function's inline buffer, within
/// the calendar engine's 40-byte slot.
struct CallbackCtx {
  void* owner;
  int node;
  int phase;
  std::uint64_t seq;
};

// Per slice, each node schedules: ten jittered microphase/completion events
// (strobe arrivals, phase floors, per-chunk op completions) and one
// retransmit timeout eight slices out that is almost always cancelled when
// the "op" completes first — the timer pattern that litters the pending set
// with mid-life cancellations.  Jitter comes from tables precomputed outside
// the timed region so the measurement is queue work, not RNG.
template <typename EngineT>
double soupEventsPerSec(int nodes, long long slices,
                        std::uint64_t* executed_out = nullptr) {
  constexpr int kPerNode = 10;
  constexpr int kTimeoutSlices = 8;
  EngineT eng;
  sim::Rng rng(2026);
  const SimTime slice_len = usec(500);
  using Id = decltype(eng.at(SimTime{0}, std::function<void()>{}));
  std::uint64_t sink = 0;

  std::vector<SimTime> jitter(static_cast<std::size_t>(nodes) * kPerNode);
  for (auto& j : jitter) {
    j = static_cast<SimTime>(rng.below(static_cast<std::uint64_t>(
        slice_len - 2000)));
  }
  std::vector<std::uint8_t> cancel_mask(
      static_cast<std::size_t>(nodes) * static_cast<std::size_t>(slices));
  for (auto& c : cancel_mask) c = rng.below(16) != 0;  // ~94% cancelled

  // Ring of live retransmit timers, cancelled kTimeoutSlices later.
  std::vector<Id> timers(static_cast<std::size_t>(nodes) * kTimeoutSlices);

  std::function<void(long long)> start_slice = [&](long long s) {
    if (s >= slices) return;
    const SimTime t0 = eng.now();
    for (int n = 0; n < nodes; ++n) {
      const CallbackCtx ctx{&eng, n, 0, static_cast<std::uint64_t>(s)};
      const SimTime* jit = &jitter[static_cast<std::size_t>(n) * kPerNode];
      for (int p = 0; p < kPerNode; ++p) {
        eng.at(t0 + jit[p], [ctx, &sink] { sink += ctx.seq + ctx.node; });
      }
      // Cancel the timer armed kTimeoutSlices ago (its op completed) and
      // arm this slice's.
      Id& timer = timers[static_cast<std::size_t>(
          (s % kTimeoutSlices) * nodes + n)];
      if (s >= kTimeoutSlices &&
          cancel_mask[static_cast<std::size_t>(s - kTimeoutSlices) *
                          static_cast<std::size_t>(nodes) +
                      static_cast<std::size_t>(n)]) {
        eng.cancel(timer);
      }
      timer = eng.at(t0 + kTimeoutSlices * slice_len + jit[0],
                     [ctx, &sink] { sink += ctx.node; });
    }
    eng.at(t0 + slice_len, [&start_slice, s] { start_slice(s + 1); });
  };

  eng.at(0, [&start_slice] { start_slice(0); });
  const auto t0 = std::chrono::steady_clock::now();
  eng.run();
  const double secs = secondsSince(t0);
  if (executed_out) *executed_out = eng.executedEvents() + (sink & 1);
  return static_cast<double>(eng.executedEvents()) / secs;
}

// ---------------------------------------------------------------------------
// Sharded event soup for the parallel engine: one shard per node, the same
// per-slice event mix as above but driven per-shard, plus a cross-shard
// neighbor handoff every fourth slice targeting the next window.  threads=0
// runs the identical workload through the serial scheduler as the baseline;
// the serial and parallel executed-event counts must agree (the conformance
// tier pins the stronger byte-identity guarantee — here it doubles as a
// sanity check that the bench measures the same work).
// ---------------------------------------------------------------------------

double parSoupEventsPerSec(int nodes, long long slices, int threads,
                           std::uint64_t* executed_out = nullptr) {
  constexpr int kPerNode = 10;
  constexpr int kTimeoutSlices = 8;
  sim::Engine eng;
  sim::Rng rng(2026);
  const SimTime slice_len = usec(500);

  std::vector<SimTime> jitter(static_cast<std::size_t>(nodes) * kPerNode);
  for (auto& j : jitter) {
    j = static_cast<SimTime>(rng.below(static_cast<std::uint64_t>(
        slice_len - 2000)));
  }
  std::vector<std::uint8_t> cancel_mask(
      static_cast<std::size_t>(nodes) * static_cast<std::size_t>(slices));
  for (auto& c : cancel_mask) c = rng.below(16) != 0;  // ~94% cancelled

  // Per-shard state only ever touched from that shard's worker; sinks are
  // cache-line strided so parallel bumps don't false-share.
  std::vector<std::uint64_t> sinks(static_cast<std::size_t>(nodes) * 8);
  std::vector<sim::EventId> timers(static_cast<std::size_t>(nodes) *
                                   kTimeoutSlices);

  std::function<void(int, long long)> drive = [&](int n, long long s) {
    if (s >= slices) return;
    const SimTime t0 = eng.now();
    std::uint64_t* sink = &sinks[static_cast<std::size_t>(n) * 8];
    const SimTime* jit = &jitter[static_cast<std::size_t>(n) * kPerNode];
    const CallbackCtx ctx{&eng, n, 0, static_cast<std::uint64_t>(s)};
    for (int p = 0; p < kPerNode; ++p) {
      eng.at(t0 + jit[p], [ctx, sink] { *sink += ctx.seq + ctx.node; });
    }
    sim::EventId& timer = timers[static_cast<std::size_t>(n) * kTimeoutSlices +
                                 static_cast<std::size_t>(s % kTimeoutSlices)];
    if (s >= kTimeoutSlices &&
        cancel_mask[static_cast<std::size_t>(s - kTimeoutSlices) *
                        static_cast<std::size_t>(nodes) +
                    static_cast<std::size_t>(n)]) {
      eng.cancel(timer);
    }
    timer = eng.at(t0 + kTimeoutSlices * slice_len + jit[0],
                   [ctx, sink] { *sink += ctx.node; });
    if (s % 4 == 0) {
      // Next-window neighbor handoff: t0 + slice_len is the window barrier,
      // so any non-negative jitter lands at or past it.
      eng.handoff(static_cast<sim::ShardId>((n + 1) % nodes),
                  t0 + slice_len + jit[0], [ctx, sink] { *sink += ctx.seq; });
    }
    eng.at(t0 + slice_len, [&drive, n, s] { drive(n, s + 1); });
  };

  for (int n = 0; n < nodes; ++n) {
    eng.atOn(static_cast<sim::ShardId>(n), 0, [&drive, n] { drive(n, 0); });
  }

  const auto t0 = std::chrono::steady_clock::now();
  if (threads > 0) {
    sim::ParallelPolicy policy;
    policy.threads = threads;
    policy.window = slice_len;
    eng.run(policy);
  } else {
    eng.run();
  }
  const double secs = secondsSince(t0);
  if (executed_out) *executed_out = eng.executedEvents();
  return static_cast<double>(eng.executedEvents()) / secs;
}

// ---------------------------------------------------------------------------
// Matcher throughput on a randomized descriptor soup.
// ---------------------------------------------------------------------------

struct MatchSoup {
  std::vector<bcsmpi::SendDescriptor> sends;
  std::vector<bcsmpi::RecvDescriptor> recvs;
};

MatchSoup makeMatchSoup(int count, std::uint64_t seed) {
  MatchSoup soup;
  sim::Rng rng(seed);
  std::uint64_t seq = 0;
  for (int i = 0; i < count; ++i) {
    bcsmpi::SendDescriptor s;
    s.job = 0;
    s.dst_rank = static_cast<int>(rng.below(4));
    s.src_rank = static_cast<int>(rng.below(16));
    s.tag = static_cast<int>(rng.below(4));
    s.bytes = 64;
    s.seq = ++seq;
    soup.sends.push_back(s);

    bcsmpi::RecvDescriptor r;
    r.job = 0;
    r.dst_rank = static_cast<int>(rng.below(4));
    r.want_src = rng.below(16) == 0 ? mpi::kAnySource
                                    : static_cast<int>(rng.below(16));
    r.want_tag = rng.below(16) == 0 ? mpi::kAnyTag
                                    : static_cast<int>(rng.below(4));
    r.bytes = 64;
    r.seq = ++seq;
    soup.recvs.push_back(r);
  }
  return soup;
}

double indexMatchesPerSec(const MatchSoup& soup, std::uint64_t* matched_out) {
  bcsmpi::SendMatchIndex sends;
  bcsmpi::RecvMatchIndex recvs;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& s : soup.sends) sends.insert(s);
  for (const auto& r : soup.recvs) recvs.insert(r);
  std::vector<std::uint64_t> cand;
  sends.forEachEnvelope([&](const bcsmpi::EnvelopeKey& key) {
    if (const auto* bucket = recvs.bucketFor(key)) {
      cand.insert(cand.end(), bucket->begin(), bucket->end());
    }
  });
  cand.insert(cand.end(), recvs.wildcards().begin(), recvs.wildcards().end());
  std::sort(cand.begin(), cand.end());
  std::uint64_t matched = 0;
  for (const std::uint64_t recv_seq : cand) {
    const auto* r = recvs.find(recv_seq);
    if (!r) continue;
    const auto* s = sends.lowestSeqMatch(*r);
    if (!s) continue;
    sends.take(s->seq);
    recvs.take(recv_seq);
    ++matched;
  }
  const double secs = secondsSince(t0);
  if (matched_out) *matched_out = matched;
  return static_cast<double>(matched) / secs;
}

double quadraticMatchesPerSec(const MatchSoup& soup) {
  std::deque<bcsmpi::SendDescriptor> sends(soup.sends.begin(),
                                           soup.sends.end());
  std::deque<bcsmpi::RecvDescriptor> recvs(soup.recvs.begin(),
                                           soup.recvs.end());
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t matched = 0;
  for (auto rit = recvs.begin(); rit != recvs.end();) {
    auto sit = sends.end();
    for (auto cand = sends.begin(); cand != sends.end(); ++cand) {
      if (!bcsmpi::envelopeMatches(*rit, *cand)) continue;
      if (sit == sends.end() || cand->seq < sit->seq) sit = cand;
    }
    if (sit == sends.end()) {
      ++rit;
      continue;
    }
    ++matched;
    sends.erase(sit);
    rit = recvs.erase(rit);
  }
  const double secs = secondsSince(t0);
  return static_cast<double>(matched) / secs;
}

// ---------------------------------------------------------------------------
// Full-runtime slice rate: sparse job, one rank per node.  One 512B neighbor
// exchange and then a 250ms compute block (~500 slices at the 500µs grid), so
// nearly every slice is pure control plane — microstrobes, phase floors,
// completion acks — and slices/sec measures that plane's scheduling cost
// rather than fiber context switches or payload movement.  Only the
// steady-state window (sim time 10ms..240ms, ~460 slices) is timed: job
// launch spawns one fiber thread per rank and teardown joins them, a fixed
// O(nodes) host-thread cost that belongs to neither the flat nor the tree
// control plane and would otherwise swamp the short tree runs.  tree_fanout
// = 0 is the flat Strobe Sender; > 0 routes the same job through the
// hierarchical strobe tree (DESIGN.md §7).
// ---------------------------------------------------------------------------

double runtimeSlicesPerSec(int nodes, int tree_fanout,
                           std::uint64_t* slices_out = nullptr) {
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = nodes;
  net::Cluster cluster(ccfg);
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  cfg.tree_fanout = tree_fanout;
  std::vector<int> map(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) map[static_cast<std::size_t>(i)] = i;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);
  const int P = nodes;
  bcsmpi::launchJob(*runtime, map, [P](mpi::Comm& comm) {
    std::vector<char> out(512, 'x'), in(512);
    const int me = comm.rank();
    std::vector<mpi::Request> reqs;
    reqs.push_back(comm.irecv(in.data(), in.size(), (me + P - 1) % P, 0));
    reqs.push_back(comm.isend(out.data(), out.size(), (me + 1) % P, 0));
    comm.waitall(reqs);
    comm.compute(sim::msec(250));
  });
  cluster.run(sim::msec(10));  // startup + exchange, untimed
  const std::uint64_t s0 = runtime->stats().slices;
  const auto t0 = std::chrono::steady_clock::now();
  cluster.run(sim::msec(240));  // steady-state control plane, timed
  const double secs = secondsSince(t0);
  const std::uint64_t slices = runtime->stats().slices - s0;
  cluster.run();  // drain: compute wakes, finalize, fiber exits
  if (slices_out) *slices_out = slices;
  return static_cast<double>(slices) / secs;
}

// ---------------------------------------------------------------------------
// JSON out + baseline regression gate
// ---------------------------------------------------------------------------

/// Extracts `"key": <number>` from a flat JSON file; returns NaN if absent.
double jsonNumber(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return std::nan("");
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_engine.json";
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  std::map<std::string, double> results;

  std::printf("engine event soup (calendar queue vs legacy heap)\n");
  const int soup_nodes[] = {32, 128, 512};
  for (const int n : soup_nodes) {
    const long long slices = 160000 / n;  // ~1.1M events per size
    std::uint64_t events = 0;
    const double eps = soupEventsPerSec<sim::Engine>(n, slices, &events);
    results["events_per_sec_n" + std::to_string(n)] = eps;
    std::printf("  n=%-4d %9.2f M events/s  (%llu events)\n", n, eps / 1e6,
                static_cast<unsigned long long>(events));
  }
  {
    std::uint64_t events = 0;
    const double legacy_eps =
        soupEventsPerSec<legacy::Engine>(128, 160000 / 128, &events);
    results["legacy_events_per_sec_n128"] = legacy_eps;
    const double speedup = results["events_per_sec_n128"] / legacy_eps;
    results["speedup_vs_legacy_n128"] = speedup;
    std::printf("  legacy n=128 %9.2f M events/s  -> speedup %.2fx\n",
                legacy_eps / 1e6, speedup);
  }

  // Warmed, interleaved measurement: one untimed serial + parallel pass
  // faults in pages, allocator arenas and branch predictors, then serial
  // and parallel runs alternate within each rep so both see the same cache
  // and allocator state — the old serial-first ordering is why t1 used to
  // read 1.3x serial on the *identical* workload.  Best-of keeps the least
  // OS-disturbed rep per configuration.
  constexpr int kParReps = 3;
  std::printf("parallel engine soup (one shard per node; "
              "warmed, interleaved best-of-%d)\n", kParReps);
  results["hardware_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
  for (const int n : {128, 512}) {
    const long long slices = 160000 / n;
    const std::string suffix = "_n" + std::to_string(n);
    parSoupEventsPerSec(n, slices, 0);  // warmup, untimed
    parSoupEventsPerSec(n, slices, 4);  // warmup, untimed

    const int thread_counts[] = {1, 2, 4, 8};
    double serial_best = 0;
    std::uint64_t serial_events = 0;
    std::map<int, double> par_best;
    for (int rep = 0; rep < kParReps; ++rep) {
      std::uint64_t ev = 0;
      serial_best = std::max(serial_best,
                             parSoupEventsPerSec(n, slices, 0, &ev));
      serial_events = ev;
      for (const int t : thread_counts) {
        const double eps = parSoupEventsPerSec(n, slices, t, &ev);
        if (ev != serial_events) {
          std::printf("  WARNING t=%d executed %llu events, serial executed "
                      "%llu — parallel run diverged\n",
                      t, static_cast<unsigned long long>(ev),
                      static_cast<unsigned long long>(serial_events));
          return 1;
        }
        par_best[t] = std::max(par_best[t], eps);
      }
    }

    results["par_soup_serial_events_per_sec" + suffix] = serial_best;
    std::printf("  n=%-4d serial  %9.2f M events/s  (%llu events)\n", n,
                serial_best / 1e6,
                static_cast<unsigned long long>(serial_events));
    for (const int t : thread_counts) {
      results["par_soup_events_per_sec_t" + std::to_string(t) + suffix] =
          par_best[t];
      std::printf("  n=%-4d t=%-2d    %9.2f M events/s  (%.2fx serial)\n", n,
                  t, par_best[t] / 1e6, par_best[t] / serial_best);
    }
    results["par_soup_speedup_t4" + suffix] = par_best[4] / serial_best;
    results["par_soup_speedup_t8" + suffix] = par_best[8] / serial_best;
  }

  std::printf("MSM matcher (envelope index vs quadratic reference)\n");
  {
    std::uint64_t matched = 0;
    const double mps = indexMatchesPerSec(makeMatchSoup(60000, 7), &matched);
    results["matches_per_sec_index"] = mps;
    std::printf("  index      %9.2f M matches/s (%llu matched of 60000)\n",
                mps / 1e6, static_cast<unsigned long long>(matched));
    const double qps = quadraticMatchesPerSec(makeMatchSoup(4000, 7));
    results["matches_per_sec_quadratic"] = qps;
    std::printf("  quadratic  %9.2f M matches/s (4000-descriptor soup)\n",
                qps / 1e6);
  }

  // Slice rate uses the same warmed, interleaved best-of-N protocol as the
  // parallel soup: an untimed warmup per configuration, then flat and tree
  // runs alternating within each rep so both see the same cache/allocator
  // state, keeping the best rep per row.  The old single cold run was
  // fiber-baton-bound and could swing 2x with machine load.
  constexpr int kSliceReps = 3;
  constexpr int kTreeFanout = 32;
  std::printf("BCS-MPI runtime slice rate (sparse exchange + 250ms compute; "
              "warmed, interleaved best-of-%d)\n", kSliceReps);
  for (const int n : soup_nodes) {
    const bool tree_row = n == 512;  // the gated flat-vs-tree comparison
    runtimeSlicesPerSec(n, 0);  // warmup, untimed
    if (tree_row) runtimeSlicesPerSec(n, kTreeFanout);  // warmup, untimed
    double flat_best = 0, tree_best = 0;
    std::uint64_t flat_slices = 0, tree_slices = 0;
    for (int rep = 0; rep < kSliceReps; ++rep) {
      flat_best = std::max(flat_best,
                           runtimeSlicesPerSec(n, 0, &flat_slices));
      if (tree_row) {
        tree_best = std::max(
            tree_best, runtimeSlicesPerSec(n, kTreeFanout, &tree_slices));
      }
    }
    results["slices_per_sec_n" + std::to_string(n)] = flat_best;
    std::printf("  n=%-4d flat    %9.1f slices/s (%llu slices simulated)\n",
                n, flat_best, static_cast<unsigned long long>(flat_slices));
    if (tree_row) {
      results["tree_slices_per_sec_n" + std::to_string(n)] = tree_best;
      results["tree_speedup_n" + std::to_string(n)] = tree_best / flat_best;
      std::printf("  n=%-4d tree    %9.1f slices/s (fanout %d, %.2fx flat)\n",
                  n, tree_best, kTreeFanout, tree_best / flat_best);
    }
  }
  // Beyond 512 nodes a flat run is minutes of wall clock — the point of the
  // tree — so the scaling rows are tree-only.
  for (const int n : {1024, 2048}) {
    runtimeSlicesPerSec(n, kTreeFanout);  // warmup, untimed
    double best = 0;
    std::uint64_t slices = 0;
    for (int rep = 0; rep < kSliceReps; ++rep) {
      best = std::max(best, runtimeSlicesPerSec(n, kTreeFanout, &slices));
    }
    results["tree_slices_per_sec_n" + std::to_string(n)] = best;
    std::printf("  n=%-4d tree    %9.1f slices/s (fanout %d, %llu slices "
                "simulated)\n", n, best, kTreeFanout,
                static_cast<unsigned long long>(slices));
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"engine\"";
  for (const auto& [key, value] : results) {
    json << ",\n  \"" << key << "\": " << value;
  }
  json << "\n}\n";
  {
    std::ofstream f(out_path);
    f << json.str();
  }
  std::printf("wrote %s\n", out_path);

  if (baseline_path != nullptr) {
    std::ifstream f(baseline_path);
    if (!f) {
      std::printf("baseline %s missing; skipping regression gate\n",
                  baseline_path);
      return 0;
    }
    std::stringstream buf;
    buf << f.rdbuf();
    const std::string base = buf.str();
    // Wall-clock throughput on shared CI machines is noisy; only a >30%
    // drop on an engine events/sec key — or on slices_per_sec_n512, now
    // that the warmed best-of-3 protocol and the ~500-slice run give it a
    // stable timed region — fails the gate.  The matcher and remaining
    // runtime-slice keys are tracked for the trajectory but not gated.
    int failures = 0;
    for (const auto& [key, value] : results) {
      if (key.rfind("events_per_sec", 0) != 0 &&
          key != "slices_per_sec_n512") {
        continue;
      }
      const double ref = jsonNumber(base, key);
      if (!(ref > 0)) continue;  // key absent in the baseline
      if (value < 0.70 * ref) {
        std::printf("REGRESSION %s: %.3g vs baseline %.3g (-%.0f%%)\n",
                    key.c_str(), value, ref, (1 - value / ref) * 100);
        ++failures;
      }
    }
    // Parallel speedup floor.  The canonical bar is t4 >= 1.8x serial on
    // the 128-node soup; on hosts without 4 hardware threads wall-clock
    // parallel speedup is physically unavailable (the policy clamps its
    // worker count), so the floor relaxes to "parallel must not regress
    // serial" and says so.  These soup rows double as the race detector's
    // zero-overhead gate: the soup runs with race_detect at its default
    // (off), where every hook is a single null-pointer check, so a
    // detector change that leaks cost into the off path regresses
    // par_soup_* against the baseline and fails here.
    const double hw = results["hardware_threads"];
    const double spd = results["par_soup_speedup_t4_n128"];
    const double spd_floor = hw >= 4 ? 1.8 : 0.9;
    if (hw < 4) {
      std::printf("speedup floor waived to %.1f: host has %.0f hardware "
                  "thread(s), wall-clock scaling needs >= 4\n",
                  spd_floor, hw);
    }
    if (spd < spd_floor) {
      std::printf("REGRESSION par_soup_speedup_t4_n128: %.2fx below the "
                  "%.1fx floor\n", spd, spd_floor);
      ++failures;
    }
    // Hierarchical control-plane floor: the strobe tree must keep the
    // 512-node sparse job at least 4x the flat slice rate.  A ratio of two
    // single-threaded wall-clock runs of the same workload, so no
    // hardware-thread waiver applies.
    const double tree_spd = results["tree_speedup_n512"];
    if (tree_spd < 4.0) {
      std::printf("REGRESSION tree_speedup_n512: %.2fx below the 4.0x "
                  "floor\n", tree_spd);
      ++failures;
    }
    if (failures > 0) return 1;
    std::printf("regression gate: ok (threshold -30%% vs %s, t4 speedup "
                "floor %.1fx, tree speedup floor 4.0x)\n", baseline_path,
                spd_floor);
  }
  return 0;
}
