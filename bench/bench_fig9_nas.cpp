// Figure 9 reproduction: NPB class-C-calibrated runtimes (IS, EP, CG, MG,
// LU) under the production-style MPI and under BCS-MPI, 64 processes on 32
// dual-CPU nodes.
//
// Per the paper (§5.3): the coarse bulk-synchronous kernels show a moderate
// slowdown (<= ~8%); IS additionally pays the BCS-MPI runtime bring-up on a
// short run; CG and LU suffer from consecutive blocking calls.

#include <cstdio>

#include "apps/nas.hpp"
#include "apps/wavefront.hpp"
#include "bench/common.hpp"

namespace {

using namespace bcs;
using namespace bcs::bench;

struct Row {
  const char* name;
  AppFn app;
  double paper_slowdown_pct;
};

}  // namespace

int main() {
  HarnessConfig h;
  // BCS-MPI runtime bring-up (NIC threads, STORM handshakes): the overhead
  // the paper blames for IS's slowdown on a ~12 s run.
  h.bcs.runtime_init_overhead = sim::msec(1100);
  h.baseline.init_overhead = sim::msec(30);

  apps::IsConfig is_cfg;
  apps::EpConfig ep_cfg;
  apps::CgConfig cg_cfg;
  apps::MgConfig mg_cfg;
  apps::LuConfig lu_cfg;

  const Row rows[] = {
      {"IS", [is_cfg](mpi::Comm& c) { (void)apps::nasIS(c, is_cfg); }, 10.14},
      {"EP", [ep_cfg](mpi::Comm& c) { (void)apps::nasEP(c, ep_cfg); }, 5.35},
      {"CG", [cg_cfg](mpi::Comm& c) { (void)apps::nasCG(c, cg_cfg); }, 10.83},
      {"MG", [mg_cfg](mpi::Comm& c) { (void)apps::nasMG(c, mg_cfg); }, 4.37},
      {"LU", [lu_cfg](mpi::Comm& c) { (void)apps::nasLU(c, lu_cfg); }, 15.04},
  };

  banner("Figure 9: NAS Parallel Benchmarks (class-C-calibrated skeletons), "
         "64 processes / 32 nodes");
  std::printf("%-6s %-16s %-16s %-14s %-14s\n", "app", "Quadrics-style (s)",
              "BCS-MPI (s)", "slowdown (%)", "paper (%)");
  const int np = 64;
  for (const Row& r : rows) {
    const double base = runBaseline(h, np, r.app).seconds;
    const double bcs_s = runBcs(h, np, r.app).seconds;
    std::printf("%-6s %-16.2f %-16.2f %-14.2f %-14.2f\n", r.name, base, bcs_s,
                slowdownPct(bcs_s, base), r.paper_slowdown_pct);
  }
  std::printf(
      "\n(Runtimes are simulated seconds of the scaled class-C skeletons;\n"
      " the paper's shape to check is the slowdown column.)\n");
  return 0;
}
