#!/usr/bin/env python3
"""Dumps the section table of a BCSS snapshot (src/snapshot, DESIGN.md §8).

Shows the format version, config fingerprint and, per section, the raw and
compressed sizes plus the stored CRC-32 — and whether that CRC matches the
payload actually present in the file.  Pure stdlib; reads the container
header only (it does not decompress payloads, so it works on any version
whose header layout matches v1).

Usage:
    tools/snapshot_inspect.py SNAPSHOT.bcss [...]
"""

import pathlib
import struct
import sys
import zlib

MAGIC = b"BCSS"


def inspect(path: pathlib.Path) -> int:
    blob = path.read_bytes()

    def need(off: int, n: int, what: str) -> bytes:
        if off + n > len(blob):
            raise ValueError(f"truncated in {what} "
                             f"(need {off + n} bytes, have {len(blob)})")
        return blob[off:off + n]

    if need(0, 4, "magic") != MAGIC:
        raise ValueError("bad magic (not a BCSS snapshot)")
    version, = struct.unpack_from("<I", need(4, 4, "version"), 0)
    fingerprint, = struct.unpack_from("<Q", need(8, 8, "fingerprint"), 0)
    count, = struct.unpack_from("<I", need(16, 4, "section count"), 0)

    print(f"{path}: BCSS v{version}  fingerprint {fingerprint:#018x}  "
          f"{count} sections  {len(blob)} bytes")

    off = 20
    table = []
    for i in range(count):
        name_len, = struct.unpack_from("<H", need(off, 2, "name length"), 0)
        off += 2
        name = need(off, name_len, "section name").decode("utf-8")
        off += name_len
        raw_size, comp_size, crc = struct.unpack_from(
            "<QQI", need(off, 20, f"table entry for {name!r}"), 0)
        off += 20
        table.append((name, raw_size, comp_size, crc))

    status = 0
    print(f"  {'section':<16} {'raw':>10} {'compressed':>10} "
          f"{'crc32':>10}  payload")
    for name, raw_size, comp_size, crc in table:
        try:
            payload = need(off, comp_size, f"payload of {name!r}")
        except ValueError as e:
            print(f"  {name:<16} {raw_size:>10} {comp_size:>10} "
                  f"{crc:>10x}  MISSING ({e})")
            status = 1
            break
        off += comp_size
        actual = zlib.crc32(payload) & 0xFFFFFFFF
        ok = "ok" if actual == crc else f"CRC MISMATCH (payload {actual:08x})"
        if actual != crc:
            status = 1
        print(f"  {name:<16} {raw_size:>10} {comp_size:>10} {crc:>10x}  "
              f"{ok}")
    if off != len(blob) and status == 0:
        print(f"  warning: {len(blob) - off} trailing bytes after payloads")
        status = 1
    return status


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    status = 0
    for arg in sys.argv[1:]:
        try:
            status |= inspect(pathlib.Path(arg))
        except (OSError, ValueError) as e:
            print(f"{arg}: {e}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
