#!/usr/bin/env python3
"""Gated clang-tidy driver for the `lint` target.

Runs clang-tidy (with the repository .clang-tidy config) over the sources
listed in a build tree's compile_commands.json, restricted to src/.  The
toolchain image does not always ship clang-tidy, so the driver *gates*
instead of failing: when the binary is missing it prints a notice and exits
0 — the determinism lint (tools/determinism_lint.py) still runs either way.

Usage: tools/run_clang_tidy.py [-p BUILD_DIR] [files...]
  -p BUILD_DIR   build tree with compile_commands.json (default: build)
  files          restrict to these sources (default: every src/ TU in the
                 compilation database)
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path


def main(argv):
    repo_root = Path(__file__).resolve().parent.parent
    build_dir = repo_root / "build"
    files = []
    args = argv[1:]
    while args:
        a = args.pop(0)
        if a == "-p":
            build_dir = Path(args.pop(0))
        else:
            files.append(a)

    tidy = shutil.which("clang-tidy")
    if not tidy:
        print("run_clang_tidy: clang-tidy not found on PATH; skipping "
              "(determinism_lint.py still enforces the determinism rules)")
        return 0

    db = build_dir / "compile_commands.json"
    if not db.exists():
        print(f"run_clang_tidy: {db} missing — configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON (the default preset does)")
        return 1

    if not files:
        entries = json.loads(db.read_text())
        src_prefix = str(repo_root / "src")
        files = sorted({e["file"] for e in entries
                        if e["file"].startswith(src_prefix)})
    if not files:
        print("run_clang_tidy: no src/ translation units in the database")
        return 1

    cmd = [tidy, "-p", str(build_dir), "--quiet",
           "--warnings-as-errors=*"] + files
    print("run_clang_tidy:", " ".join(cmd[:4]), f"... ({len(files)} TUs)")
    return subprocess.call(cmd)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
