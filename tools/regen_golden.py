#!/usr/bin/env python3
"""Regenerates the golden-trace corpus under tests/golden/.

Builds the golden_gen tool in an existing build tree (default: ./build) and
runs it against tests/golden/.  Regenerating is the only sanctioned way to
update the corpus; always review the resulting diff — a golden change means
event schedules moved, which is either the point of your change or a bug.

Usage:
    tools/regen_golden.py [--build-dir BUILD] [--dump NAME]
"""

import argparse
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO / "tests" / "golden"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default=str(REPO / "build"),
                    help="CMake build tree to (re)use [default: ./build]")
    ap.add_argument("--dump", metavar="NAME",
                    help="decompress tests/golden/NAME.trace.bcsz to stdout "
                         "instead of regenerating")
    args = ap.parse_args()

    build = pathlib.Path(args.build_dir)
    if not (build / "CMakeCache.txt").exists():
        subprocess.run(["cmake", "-B", str(build), "-S", str(REPO)],
                       check=True)
    subprocess.run(["cmake", "--build", str(build), "--target", "golden_gen",
                    "-j"], check=True)

    gen = build / "tests" / "golden_gen"
    if not gen.exists():
        print(f"golden_gen not found at {gen}", file=sys.stderr)
        return 1

    if args.dump:
        blob = GOLDEN_DIR / f"{args.dump}.trace.bcsz"
        return subprocess.run([str(gen), "--dump", str(blob)]).returncode

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    subprocess.run([str(gen), str(GOLDEN_DIR)], check=True)
    print(f"corpus written to {GOLDEN_DIR} — review `git diff` before "
          "committing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
