#!/usr/bin/env python3
"""AST-free determinism lint for the simulator core.

The repository's central guarantee is byte-identical replay: same (seed,
plan) => identical traces (tests/test_determinism.cpp).  That guarantee is
only as strong as the absence of nondeterminism *sources* in the simulated
paths, so this checker mechanically bans them in src/sim, src/bcsmpi and
src/storm (the strobe-sender tree lives there) — and src/verify, which
observes those paths:

  1. Wall-clock / host-entropy / host-environment calls: rand(), srand(),
     std::random_device, getenv, system_clock, steady_clock,
     high_resolution_clock, gettimeofday, clock_gettime, random_shuffle.
     Simulated time comes from the event engine; randomness comes from the
     seeded xoshiro streams in sim/rng.hpp.  No exceptions.

  2. Hash-ordered containers: every textual use of std::unordered_map /
     unordered_set (and the multi variants) must carry an audited
     annotation of the form

         // det-ok: <one-line justification>

     on the same line or within the three lines above it, explaining why
     hash order cannot leak into traces, events or RNG draws (e.g.
     "lookup-only", "iteration is order-normalized by the caller's sort").
     An empty justification is an error — the annotation is an audit trail,
     not an escape hatch.  Code that cannot justify itself converts to
     ordered iteration instead (see sim/cpu.cpp's task table).

  3. Stale annotations: a det-ok whose reach (its own line plus the three
     lines below) contains no unordered container is an audit trail
     pointing at nothing — usually left behind by a refactor.  Left in
     place it would silently bless the next unordered container someone
     adds nearby, so it is an error too: drop the marker or move it next
     to the container it audits.

Zero third-party dependencies; line/regex based by design so it runs
anywhere a Python interpreter exists, with no compiler involvement.

Usage: tools/determinism_lint.py [paths...]   (default: src/sim src/bcsmpi
src/storm src/verify src/snapshot src/codec src/race, relative to the
repository root, which is inferred from this file's location)
"""

import re
import sys
from pathlib import Path

DEFAULT_SCOPE = ["src/sim", "src/bcsmpi", "src/storm", "src/verify",
                 "src/snapshot", "src/codec", "src/race", "src/apps",
                 "src/bcs"]
EXTENSIONS = {".hpp", ".cpp", ".h", ".cc"}

BANNED = [
    (re.compile(r"\brand\s*\("), "rand() — use sim/rng.hpp streams"),
    (re.compile(r"\bsrand\s*\("), "srand() — use sim/rng.hpp streams"),
    (re.compile(r"\brandom_device\b"), "std::random_device — host entropy"),
    (re.compile(r"\brandom_shuffle\b"), "random_shuffle — unseeded order"),
    (re.compile(r"\bgetenv\b"), "getenv — host environment in sim path"),
    (re.compile(r"\bsystem_clock\b"), "system_clock — wall clock"),
    (re.compile(r"\bsteady_clock\b"), "steady_clock — wall clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "high_resolution_clock — wall clock"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday — wall clock"),
    (re.compile(r"\bclock_gettime\b"), "clock_gettime — wall clock"),
]

UNORDERED = re.compile(r"\bunordered_(map|set|multimap|multiset)\b")
DET_OK = re.compile(r"//\s*det-ok:(.*)$")
# det-ok must be on the flagged line or within this many lines above it.
DET_OK_REACH = 3


def strip_comments(lines):
    """Returns (code_lines, raw_lines): code_lines have // and /* */ comment
    text removed (string literals are not parsed — good enough for this
    codebase, which keeps banned tokens out of strings)."""
    code = []
    in_block = False
    for raw in lines:
        line = raw
        out = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    i = end + 2
                    in_block = False
            else:
                slash = line.find("//", i)
                block = line.find("/*", i)
                if slash >= 0 and (block < 0 or slash < block):
                    out.append(line[i:slash])
                    i = len(line)
                elif block >= 0:
                    out.append(line[i:block])
                    i = block + 2
                    in_block = True
                else:
                    out.append(line[i:])
                    i = len(line)
        code.append("".join(out))
    return code


def lint_file(path: Path):
    findings = []
    raw = path.read_text().splitlines()
    code = strip_comments(raw)

    def det_ok_near(idx):
        """A well-formed det-ok annotation on the line or just above it.
        Returns (found, error) — an empty justification is its own error."""
        for k in range(idx, max(-1, idx - DET_OK_REACH - 1), -1):
            m = DET_OK.search(raw[k])
            if m:
                if not m.group(1).strip():
                    return True, f"{path}:{k + 1}: det-ok with empty " \
                                 "justification (the annotation is an " \
                                 "audit trail, not an escape hatch)"
                return True, None
        return False, None

    for idx, line in enumerate(code):
        for pattern, why in BANNED:
            if pattern.search(line):
                findings.append(
                    f"{path}:{idx + 1}: banned nondeterminism source: {why}")
        if UNORDERED.search(line) and "#include" not in line:
            found, err = det_ok_near(idx)
            if err:
                findings.append(err)
            elif not found:
                findings.append(
                    f"{path}:{idx + 1}: unordered container without a "
                    "// det-ok: justification (convert to ordered "
                    "iteration or document why hash order cannot leak)")

    # Orphaned / malformed / stale annotations anywhere in the file.
    for idx, rawline in enumerate(raw):
        m = DET_OK.search(rawline)
        if not m:
            continue
        if not m.group(1).strip():
            msg = f"{path}:{idx + 1}: det-ok with empty justification " \
                  "(the annotation is an audit trail, not an escape hatch)"
            if msg not in findings:
                findings.append(msg)
            continue
        # A det-ok blesses its own line and the DET_OK_REACH lines below
        # (det_ok_near scans that far up from a flagged container).  If no
        # unordered container lives in that reach, the annotation audits
        # nothing — and would silently bless whatever container gets added
        # near it next.
        reach = code[idx:idx + DET_OK_REACH + 1]
        if not any(UNORDERED.search(l) and "#include" not in l
                   for l in reach):
            findings.append(
                f"{path}:{idx + 1}: stale det-ok annotation: no unordered "
                f"container on this line or the {DET_OK_REACH} lines below "
                "(drop the marker or move it next to the container it "
                "audits)")
    return findings


def main(argv):
    repo_root = Path(__file__).resolve().parent.parent
    scope = [Path(p) for p in argv[1:]] or [repo_root / p
                                            for p in DEFAULT_SCOPE]
    files = []
    for entry in scope:
        if entry.is_file():
            files.append(entry)
        else:
            files.extend(p for p in sorted(entry.rglob("*"))
                         if p.suffix in EXTENSIONS)
    findings = []
    for f in files:
        findings.extend(lint_file(f))
    if findings:
        print(f"determinism_lint: {len(findings)} finding(s):")
        for f in findings:
            print("  " + f)
        return 1
    print(f"determinism_lint: clean ({len(files)} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
