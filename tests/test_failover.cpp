// Control-plane failover tests: the Strobe Sender (and with it STORM's
// Machine Manager) dies mid-run and the system survives.
//
// The invariants under test:
//   * a Strobe Sender crash during ANY microphase (DEM/MSM/P2P/BBM/RM) is
//     detected by the slice watchdogs, the lowest-id live compute node
//     elects itself backup through a Compare-And-Write epoch claim, and
//     every job runs to completion under the new Strobe Sender;
//   * STORM's Machine Manager role fails over together with the Strobe
//     Sender, so heartbeat-driven fault detection keeps working afterwards;
//   * a node that was declared dead during a hang window re-announces
//     itself once its heartbeats resume and is reintegrated at a slice
//     boundary — and is then genuinely usable for new work;
//   * the whole story — watchdog fires, election, phase recovery, rejoin —
//     is a pure function of (seed, fault plan): replays are byte-identical.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"
#include "storm/storm.hpp"

namespace {

using namespace bcs;
using sim::msec;
using sim::SimTime;
using sim::usec;

bcsmpi::BcsMpiConfig quickCfg() {
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  return cfg;
}

/// Wires the three control-plane hooks the way production code should:
/// heartbeat death -> eviction, heartbeat re-ack -> rejoin, Strobe Sender
/// election -> Machine Manager failover.
void wireControlPlane(storm::Storm& storm, bcsmpi::Runtime& runtime) {
  storm.setDeathHandler([&runtime](int node) {
    runtime.notifyNodeFailure(node);
  });
  storm.setRejoinHandler([&runtime](int node) {
    runtime.notifyNodeRejoin(node);
  });
  runtime.setFailoverHandler([&storm](int node, std::uint64_t) {
    storm.failoverTo(node);
  });
}

// ---------------------------------------------------------------------------
// Strobe Sender crash during each microphase, parameterized
// ---------------------------------------------------------------------------

struct SsCrashOut {
  std::string trace;
  std::vector<sim::TraceRecord> records;
  std::uint64_t elections = 0;
  std::uint64_t watchdog_fires = 0;
  std::uint64_t evictions = 0;
  std::uint64_t requests_failed = 0;
  std::uint64_t suppressed_conditionals = 0;
  std::uint64_t epoch = 0;
  int strobe_node = -1;
  int mm_node = -1;
  std::size_t unfinished = 0;
  std::vector<int> errors;
};

/// Ring job on 8 nodes; the management node (initial Strobe Sender and
/// Machine Manager) crashes at `crash_at` (no crash when negative).
SsCrashOut runSsCrash(SimTime crash_at) {
  const int P = 8;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = 90210;
  if (crash_at >= 0) ccfg.faults.crashManagementNode(crash_at);
  net::Cluster cluster(ccfg);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg = quickCfg();
  cfg.watchdog_slices = 4;  // 2 ms of microstrobe silence triggers failover
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  storm::StormConfig scfg;
  scfg.heartbeat_period = usec(500);
  storm::Storm storm(cluster, scfg);
  wireControlPlane(storm, *runtime);
  storm.startHeartbeats();
  cluster.engine().at(msec(60), [&storm] { storm.stopHeartbeats(); });

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  std::vector<int> errors(P, 0);
  bcsmpi::launchJob(*runtime, map, [&](mpi::Comm& comm) {
    const int me = comm.rank();
    const int right = (me + 1) % P;
    const int left = (me + P - 1) % P;
    std::vector<std::uint8_t> out(1024), in(1024);
    for (int round = 0; round < 12; ++round) {
      auto sreq = comm.isend(out.data(), out.size(), right, round);
      auto rreq = comm.irecv(in.data(), in.size(), left, round);
      mpi::Status ss, rs;
      comm.wait(sreq, &ss);
      comm.wait(rreq, &rs);
      if (ss.error != mpi::kSuccess || rs.error != mpi::kSuccess) {
        ++errors[static_cast<std::size_t>(me)];
      }
    }
  });
  cluster.run();

  SsCrashOut out;
  out.trace = cluster.trace().dump();
  out.records = cluster.trace().records();
  out.elections = runtime->stats().elections;
  out.watchdog_fires = runtime->stats().watchdog_fires;
  out.evictions = runtime->stats().evictions;
  out.requests_failed = runtime->stats().requests_failed;
  out.suppressed_conditionals = cluster.fabric().stats().suppressed_conditionals;
  out.epoch = runtime->controlEpoch();
  out.strobe_node = runtime->strobeNode();
  out.mm_node = storm.machineManagerNode();
  out.unfinished = cluster.unfinishedProcesses().size();
  out.errors = errors;
  return out;
}

class SsCrashDuringPhase : public ::testing::TestWithParam<const char*> {};

TEST_P(SsCrashDuringPhase, BackupElectedAndJobCompletes) {
  const std::string phase = GetParam();

  // Reference run (no fault) pins down the instant the mid-run microstrobe
  // of the target phase goes out; the crash is planted just after it, so the
  // Strobe Sender dies with that exact microphase in flight.
  const SsCrashOut ref = runSsCrash(-1);
  ASSERT_EQ(ref.elections, 0u);
  ASSERT_EQ(ref.watchdog_fires, 0u);
  SimTime strobe_at = -1;
  for (const sim::TraceRecord& r : ref.records) {
    if (r.category == sim::TraceCategory::kStrobe && r.time >= msec(3) &&
        r.message.rfind("microstrobe " + phase + " ", 0) == 0) {
      strobe_at = r.time;
      break;
    }
  }
  ASSERT_GE(strobe_at, 0) << "no mid-run " << phase << " strobe found";

  const SsCrashOut a = runSsCrash(strobe_at + usec(1));

  // Every rank finished: the ranks live on compute nodes, the management
  // node's death costs coordination, not application state.
  EXPECT_EQ(a.unfinished, 0u) << "ranks deadlocked after SS crash";
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(a.errors[static_cast<std::size_t>(r)], 0) << "rank " << r;
  }
  EXPECT_EQ(a.requests_failed, 0u);
  EXPECT_EQ(a.evictions, 0u);  // no compute node died

  // Exactly one election: the watchdogs fired, node 0 (lowest-id live node)
  // claimed epoch 1 and took over both control-plane roles.
  EXPECT_GE(a.watchdog_fires, 1u);
  EXPECT_EQ(a.elections, 1u);
  EXPECT_EQ(a.epoch, 1u);
  EXPECT_EQ(a.strobe_node, 0);
  EXPECT_EQ(a.mm_node, 0);
  const std::size_t elected = std::count_if(
      a.records.begin(), a.records.end(), [](const sim::TraceRecord& r) {
        return r.category == sim::TraceCategory::kFailover &&
               r.message.find("elected backup Strobe Sender") !=
                   std::string::npos;
      });
  EXPECT_EQ(elected, 1u);

  // The crash landed mid-phase, so the dead Strobe Sender had a completion
  // poll in flight; the fabric must cut its result off rather than let a
  // ghost strobe chain race the elected backup's.
  EXPECT_GE(a.suppressed_conditionals, 1u);

  // Replay: same seed, same plan, byte-identical trace.
  const SsCrashOut b = runSsCrash(strobe_at + usec(1));
  EXPECT_EQ(a.trace, b.trace);
}

INSTANTIATE_TEST_SUITE_P(EveryMicrophase, SsCrashDuringPhase,
                         ::testing::Values("DEM", "MSM", "P2P", "BBM", "RM"),
                         [](const auto& info) { return info.param; });

TEST(SsCrash, WatchdogDisabledMeansNoElection) {
  // Negative control for the watchdog_slices knob: with the watchdog off the
  // Strobe Sender's death is fatal — no election, every rank stranded.
  const int P = 4;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = 11;
  ccfg.faults.crashManagementNode(msec(3));
  net::Cluster cluster(ccfg);

  bcsmpi::BcsMpiConfig cfg = quickCfg();
  cfg.watchdog_slices = 0;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  storm::StormConfig scfg;
  scfg.heartbeat_period = usec(500);
  storm::Storm storm(cluster, scfg);
  wireControlPlane(storm, *runtime);
  storm.startHeartbeats();
  cluster.engine().at(msec(20), [&storm] { storm.stopHeartbeats(); });

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  bcsmpi::launchJob(*runtime, map, [&](mpi::Comm& comm) {
    const int me = comm.rank();
    std::vector<std::uint8_t> out(512), in(512);
    for (int round = 0; round < 20; ++round) {
      auto sreq = comm.isend(out.data(), out.size(), (me + 1) % P, round);
      auto rreq = comm.irecv(in.data(), in.size(), (me + P - 1) % P, round);
      comm.wait(sreq, nullptr);
      comm.wait(rreq, nullptr);
    }
  });
  cluster.run();

  EXPECT_EQ(runtime->stats().elections, 0u);
  EXPECT_EQ(runtime->stats().watchdog_fires, 0u);
  EXPECT_EQ(cluster.unfinishedProcesses().size(), static_cast<std::size_t>(P));
}

// ---------------------------------------------------------------------------
// Hung-node rejoin
// ---------------------------------------------------------------------------

struct RejoinOut {
  std::string trace;
  std::uint64_t rejoins = 0;
  std::uint64_t evictions = 0;
  std::uint64_t elections = 0;
  std::uint64_t requests_failed = 0;
  bool node5_evicted = true;
  bool node5_alive = false;
  std::size_t dead_nodes = 99;
  std::size_t unfinished = 99;
  int job2_errors = -1;
};

/// 6-node cluster; the main job runs on nodes 0-3 while node 5 hangs long
/// enough to be declared dead and evicted.  When the hang window ends its
/// heartbeats resume, it rejoins, and a second job launched onto nodes
/// {4, 5} proves the rejoined node really works again.
RejoinOut runRejoin() {
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = 6;
  ccfg.seed = 5150;
  ccfg.faults.hangNode(5, msec(2), msec(6));  // down [2 ms, 8 ms)
  net::Cluster cluster(ccfg);
  cluster.trace().enable();

  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, quickCfg());

  storm::StormConfig scfg;
  scfg.heartbeat_period = usec(500);
  scfg.max_missed_heartbeats = 3;
  storm::Storm storm(cluster, scfg);
  wireControlPlane(storm, *runtime);
  storm.startHeartbeats();
  cluster.engine().at(msec(40), [&storm] { storm.stopHeartbeats(); });

  // Main job: ring on nodes 0-3, long enough to outlast the hang, the death
  // declaration (~3.75 ms) and the rejoin (~8.5 ms).
  bcsmpi::launchJob(*runtime, {0, 1, 2, 3}, [&](mpi::Comm& comm) {
    const int P = comm.size();
    const int me = comm.rank();
    std::vector<std::uint8_t> out(1024), in(1024);
    for (int round = 0; round < 30; ++round) {
      auto sreq = comm.isend(out.data(), out.size(), (me + 1) % P, round);
      auto rreq = comm.irecv(in.data(), in.size(), (me + P - 1) % P, round);
      comm.wait(sreq, nullptr);
      comm.wait(rreq, nullptr);
    }
  });

  // Second job, launched well after the rejoin: node 5 must carry a rank
  // again.  Failures here mean the "reintegrated" node was a zombie.
  auto job2_errors = std::make_shared<int>(0);
  cluster.engine().at(msec(12), [&cluster, runtime, job2_errors] {
    bcsmpi::launchJob(*runtime, {4, 5}, [job2_errors](mpi::Comm& comm) {
      const int peer = 1 - comm.rank();
      std::vector<std::uint8_t> out(256), in(256);
      for (int round = 0; round < 4; ++round) {
        auto sreq = comm.isend(out.data(), out.size(), peer, round);
        auto rreq = comm.irecv(in.data(), in.size(), peer, round);
        mpi::Status ss, rs;
        comm.wait(sreq, &ss);
        comm.wait(rreq, &rs);
        if (ss.error != mpi::kSuccess || rs.error != mpi::kSuccess) {
          ++*job2_errors;
        }
      }
    });
  });
  cluster.run();

  RejoinOut out;
  out.trace = cluster.trace().dump();
  out.rejoins = runtime->stats().rejoins;
  out.evictions = runtime->stats().evictions;
  out.elections = runtime->stats().elections;
  out.requests_failed = runtime->stats().requests_failed;
  out.node5_evicted = runtime->nodeEvicted(5);
  out.node5_alive = storm.nodeAlive(5);
  out.dead_nodes = storm.deadNodes().size();
  out.unfinished = cluster.unfinishedProcesses().size();
  out.job2_errors = *job2_errors;
  return out;
}

TEST(Rejoin, HungNodeIsReintegratedAndUsable) {
  const RejoinOut a = runRejoin();

  // The hang was long enough for a death declaration and eviction...
  EXPECT_EQ(a.evictions, 1u);
  // ...and the node came back: books cleared, queues rebuilt, live again.
  EXPECT_EQ(a.rejoins, 1u);
  EXPECT_FALSE(a.node5_evicted);
  EXPECT_TRUE(a.node5_alive);
  EXPECT_EQ(a.dead_nodes, 0u);

  // The Strobe Sender never died; the stall during the hang stayed below the
  // watchdog horizon.
  EXPECT_EQ(a.elections, 0u);

  // Nobody's traffic was hurt: the main job ran on other nodes, and the
  // second job ran cleanly over the rejoined node.
  EXPECT_EQ(a.unfinished, 0u);
  EXPECT_EQ(a.requests_failed, 0u);
  EXPECT_EQ(a.job2_errors, 0);
}

TEST(Rejoin, ReplayIsByteIdentical) {
  const RejoinOut a = runRejoin();
  const RejoinOut b = runRejoin();
  ASSERT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.rejoins, b.rejoins);
  EXPECT_EQ(a.evictions, b.evictions);
}

// ---------------------------------------------------------------------------
// The acceptance-criteria workload: 32-node fault soup + SS crash mid-run
// ---------------------------------------------------------------------------

struct SoupOut {
  std::string trace;
  std::uint64_t elections = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t suppressed_conditionals = 0;
  std::uint64_t epoch = 0;
  int strobe_node = -1;
  int mm_node = -1;
  std::size_t unfinished = 99;
  std::vector<int> completed, failed;
};

SoupOut runSoup() {
  const int P = 32;
  const int dead_node = 13;
  const int rounds = 20;

  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = 20260805;
  ccfg.faults.dropRate(0.05);
  ccfg.faults.crashNode(dead_node, msec(5));
  ccfg.faults.crashManagementNode(msec(9));
  net::Cluster cluster(ccfg);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg = quickCfg();
  // 3 ms watchdog horizon: above the ~2.3 ms stall a compute-node crash
  // causes while heartbeats converge (no spurious election), below the test
  // budget for detecting the real SS death.
  cfg.watchdog_slices = 6;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  storm::StormConfig scfg;
  scfg.heartbeat_period = usec(500);
  storm::Storm storm(cluster, scfg);
  wireControlPlane(storm, *runtime);
  storm.startHeartbeats();
  cluster.engine().at(msec(200), [&storm] { storm.stopHeartbeats(); });

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);

  SoupOut out;
  out.completed.assign(P, 0);
  out.failed.assign(P, 0);
  bcsmpi::launchJob(*runtime, map, [&](mpi::Comm& comm) {
    const int me = comm.rank();
    std::vector<std::uint8_t> snd(2048), rcv(2048);
    for (int round = 0; round < rounds; ++round) {
      const int partner = me ^ (1 + (round % 7));  // xor matching, P = 32
      if (partner >= P) continue;
      auto sreq = comm.isend(snd.data(), snd.size(), partner, round);
      auto rreq = comm.irecv(rcv.data(), rcv.size(), partner, round);
      mpi::Status ss, rs;
      comm.wait(sreq, &ss);
      comm.wait(rreq, &rs);
      auto& cell = (ss.error == mpi::kSuccess && rs.error == mpi::kSuccess)
                       ? out.completed
                       : out.failed;
      ++cell[static_cast<std::size_t>(me)];
    }
  });
  cluster.run();

  out.trace = cluster.trace().dump();
  out.elections = runtime->stats().elections;
  out.evictions = runtime->stats().evictions;
  out.rejoins = runtime->stats().rejoins;
  out.suppressed_conditionals = cluster.fabric().stats().suppressed_conditionals;
  out.epoch = runtime->controlEpoch();
  out.strobe_node = runtime->strobeNode();
  out.mm_node = storm.machineManagerNode();
  out.unfinished = cluster.unfinishedProcesses().size();
  return out;
}

TEST(Soup, SsCrashMidSoupEveryJobCompletesUnderBackup) {
  const SoupOut a = runSoup();

  // Only the crashed compute node's rank is stranded; everyone else drove
  // all rounds to an outcome under the elected backup Strobe Sender.
  EXPECT_EQ(a.unfinished, 1u);
  for (int r = 0; r < 32; ++r) {
    if (r == 13) continue;
    EXPECT_EQ(a.completed[static_cast<std::size_t>(r)] +
                  a.failed[static_cast<std::size_t>(r)],
              20)
        << "rank " << r;
  }
  EXPECT_GE(a.evictions, 1u);
  EXPECT_EQ(a.elections, 1u);
  EXPECT_EQ(a.epoch, 1u);
  EXPECT_EQ(a.strobe_node, 0);
  EXPECT_EQ(a.mm_node, 0);
}

TEST(Soup, SsCrashMidSoupReplayIsByteIdentical) {
  const SoupOut a = runSoup();
  const SoupOut b = runSoup();
  ASSERT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.elections, b.elections);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
}

}  // namespace
