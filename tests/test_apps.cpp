// Application-skeleton tests: every workload must produce identical
// checksums under the baseline MPI and under BCS-MPI (same messages, same
// data), and the blocking/non-blocking variants must agree with each other.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <numeric>
#include <vector>

#include "apps/nas.hpp"
#include "apps/synthetic.hpp"
#include "apps/wavefront.hpp"
#include "baseline/baseline.hpp"
#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"

namespace {

using namespace bcs;
using sim::msec;
using sim::usec;

using AppFn = std::function<double(mpi::Comm&)>;

std::vector<double> runBaseline(int nprocs, const AppFn& app) {
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = nprocs;
  net::Cluster cluster(ccfg);
  baseline::BaselineConfig cfg;
  cfg.init_overhead = usec(10);
  std::vector<double> sums(static_cast<std::size_t>(nprocs));
  baseline::runJob(cluster, cfg, baseline::blockMapping(nprocs, nprocs, 1),
                   [&](mpi::Comm& c) {
                     sums[static_cast<std::size_t>(c.rank())] = app(c);
                   });
  return sums;
}

std::vector<double> runBcs(int nprocs, const AppFn& app) {
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = nprocs;
  net::Cluster cluster(ccfg);
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  std::vector<int> map(static_cast<std::size_t>(nprocs));
  std::iota(map.begin(), map.end(), 0);
  std::vector<double> sums(static_cast<std::size_t>(nprocs));
  bcsmpi::runJob(cluster, cfg, map, [&](mpi::Comm& c) {
    sums[static_cast<std::size_t>(c.rank())] = app(c);
  });
  return sums;
}

void expectSameChecksums(int nprocs, const AppFn& app, double tol = 1e-9) {
  const auto a = runBaseline(nprocs, app);
  const auto b = runBcs(nprocs, app);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "rank " << i;
  }
}

TEST(Apps, SyntheticBarrierRunsOnBothImplementations) {
  apps::SyntheticBarrierConfig cfg;
  cfg.granularity = msec(1);
  cfg.iterations = 5;
  const auto app = [cfg](mpi::Comm& c) {
    return static_cast<double>(apps::syntheticBarrier(c, cfg));
  };
  // No checksum here (returns elapsed); just require both to complete and
  // BCS to be slower but bounded.
  const auto base = runBaseline(6, app);
  const auto bcs_t = runBcs(6, app);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_GT(base[i], 0);
    EXPECT_GT(bcs_t[i], base[i]);           // slices cost something
    EXPECT_LT(bcs_t[i], 3.0 * base[i]);     // ...but not everything
  }
}

TEST(Apps, SyntheticNeighborChecksOut) {
  apps::SyntheticNeighborConfig cfg;
  cfg.granularity = msec(1);
  cfg.iterations = 4;
  cfg.message_bytes = 2048;
  const auto app = [cfg](mpi::Comm& c) {
    return static_cast<double>(apps::syntheticNeighbor(c, cfg));
  };
  const auto base = runBaseline(6, app);
  const auto bcs_t = runBcs(6, app);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_GT(base[i], 0);
    EXPECT_GT(bcs_t[i], 0);
  }
}

TEST(Apps, WavefrontBlockingChecksumMatchesAcrossImpls) {
  apps::WavefrontConfig cfg;
  cfg.sweeps = 2;
  cfg.iterations = 2;
  cfg.blocks = 3;
  cfg.block_compute = usec(300);
  cfg.message_bytes = 512;
  cfg.blocking = true;
  expectSameChecksums(6, [cfg](mpi::Comm& c) { return apps::wavefront(c, cfg); });
}

TEST(Apps, WavefrontNonBlockingMatchesBlockingChecksum) {
  apps::WavefrontConfig cfg;
  cfg.sweeps = 2;
  cfg.iterations = 1;
  cfg.blocks = 3;
  cfg.block_compute = usec(200);
  cfg.message_bytes = 512;
  cfg.blocking = true;
  auto blocking_cfg = cfg;
  cfg.blocking = false;
  const auto a = runBaseline(
      4, [blocking_cfg](mpi::Comm& c) { return apps::wavefront(c, blocking_cfg); });
  const auto b = runBaseline(
      4, [cfg](mpi::Comm& c) { return apps::wavefront(c, cfg); });
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Apps, Sweep3dBothFlavorsOnBcs) {
  apps::Sweep3dConfig cfg;
  cfg.time_steps = 2;
  cfg.sweeps_per_step = 2;
  cfg.blocks = 3;
  cfg.step_compute = msec(1);
  cfg.message_bytes = 1024;
  cfg.blocking = true;
  auto nb = cfg;
  nb.blocking = false;
  const auto blocking = runBcs(4, [cfg](mpi::Comm& c) { return apps::sweep3d(c, cfg); });
  const auto nonblocking =
      runBcs(4, [nb](mpi::Comm& c) { return apps::sweep3d(c, nb); });
  for (std::size_t i = 0; i < blocking.size(); ++i) {
    EXPECT_DOUBLE_EQ(blocking[i], nonblocking[i]);
  }
}

TEST(Apps, NasISChecksumMatches) {
  apps::IsConfig cfg;
  cfg.iterations = 2;
  cfg.compute_per_iteration = msec(2);
  cfg.bytes_per_peer = 4096;
  expectSameChecksums(5, [cfg](mpi::Comm& c) { return apps::nasIS(c, cfg); });
}

TEST(Apps, NasEPChecksumMatches) {
  apps::EpConfig cfg;
  cfg.total_compute = msec(8);
  cfg.compute_chunks = 4;
  expectSameChecksums(6, [cfg](mpi::Comm& c) { return apps::nasEP(c, cfg); },
                      1e-9);
}

TEST(Apps, NasCGChecksumMatches) {
  apps::CgConfig cfg;
  cfg.iterations = 4;
  cfg.compute_per_iteration = msec(1);
  cfg.exchange_bytes = 2048;
  expectSameChecksums(8, [cfg](mpi::Comm& c) { return apps::nasCG(c, cfg); },
                      1e-9);
}

TEST(Apps, NasMGChecksumMatches) {
  apps::MgConfig cfg;
  cfg.cycles = 2;
  cfg.levels = 3;
  cfg.compute_top_level = msec(1);
  cfg.halo_top_bytes = 4096;
  expectSameChecksums(6, [cfg](mpi::Comm& c) { return apps::nasMG(c, cfg); });
}

TEST(Apps, NasLUChecksumMatches) {
  apps::LuConfig cfg;
  cfg.iterations = 2;
  cfg.blocks = 3;
  cfg.block_compute = usec(300);
  cfg.message_bytes = 1024;
  expectSameChecksums(6, [cfg](mpi::Comm& c) { return apps::nasLU(c, cfg); });
}

TEST(Apps, SageChecksumMatches) {
  apps::SageConfig cfg;
  cfg.steps = 3;
  cfg.compute_per_step = msec(2);
  cfg.halo_bytes = 8192;
  expectSameChecksums(6, [cfg](mpi::Comm& c) { return apps::sage(c, cfg); },
                      1e-9);
}

TEST(Apps, GridShapeFactorsNearSquare) {
  int px = 0, py = 0;
  apps::gridShape(62, px, py);
  EXPECT_EQ(px * py, 62);
  EXPECT_EQ(px, 2);
  apps::gridShape(64, px, py);
  EXPECT_EQ(px, 8);
  EXPECT_EQ(py, 8);
  apps::gridShape(7, px, py);
  EXPECT_EQ(px, 1);
  EXPECT_EQ(py, 7);
}

}  // namespace
