// Fault-injection tests: deterministic drops, retransmission, node crashes,
// heartbeat-driven eviction and coordinated recovery.
//
// The invariants under test, for every (seed, drop-rate, crash-time)
// combination:
//   * no silent loss — every posted send either completes or is reported
//     failed (Status::error == kErrPeerUnreachable) after the peer's node
//     was evicted;
//   * no deadlocked slice — the strobe keeps advancing and every surviving
//     rank runs to completion;
//   * payloads that do complete are byte-intact despite retransmissions.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"
#include "sim/fault.hpp"
#include "storm/storm.hpp"

namespace {

using namespace bcs;
using sim::msec;
using sim::usec;

bcsmpi::BcsMpiConfig quickCfg() {
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  return cfg;
}

// ---- FaultInjector unit behaviour ----

TEST(FaultInjector, SameSeedSameDecisions) {
  sim::FaultPlan plan;
  plan.dropRate(0.3);
  sim::FaultInjector a(plan, 99), b(plan, 99), c(plan, 100);
  std::vector<bool> da, db, dc;
  for (int i = 0; i < 200; ++i) {
    da.push_back(a.shouldDrop(0, 1));
    db.push_back(b.shouldDrop(0, 1));
    dc.push_back(c.shouldDrop(0, 1));
  }
  EXPECT_EQ(da, db);
  EXPECT_NE(da, dc);  // P(collision over 200 draws) ~ 0
  EXPECT_GT(a.stats().drops, 20u);
  EXPECT_LT(a.stats().drops, 120u);
}

TEST(FaultInjector, NodeDownWindows) {
  sim::FaultPlan plan;
  plan.crashNode(3, msec(10)).hangNode(5, msec(20), msec(5));
  sim::FaultInjector inj(plan, 1);
  EXPECT_FALSE(inj.nodeDown(3, msec(10) - 1));
  EXPECT_TRUE(inj.nodeDown(3, msec(10)));
  EXPECT_TRUE(inj.nodeDown(3, msec(500)));  // crash is permanent
  EXPECT_FALSE(inj.nodeDown(5, msec(20) - 1));
  EXPECT_TRUE(inj.nodeDown(5, msec(22)));
  EXPECT_FALSE(inj.nodeDown(5, msec(25)));  // hang window over
  EXPECT_FALSE(inj.nodeDown(0, msec(100)));
}

TEST(FaultInjector, ManagementNodeSentinelResolvesAtClusterBuild) {
  // FaultPlan is written before the cluster exists, so it names the
  // management node symbolically; Cluster resolves the sentinel to the real
  // node id when it constructs its injector.
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = 4;
  ccfg.faults.crashManagementNode(msec(5));
  EXPECT_NE(ccfg.faults.describe().find("mgmt"), std::string::npos);
  net::Cluster cluster(ccfg);
  const int mgmt = cluster.managementNode();
  EXPECT_FALSE(cluster.faults()->nodeDown(mgmt, msec(5) - 1));
  EXPECT_TRUE(cluster.faults()->nodeDown(mgmt, msec(5)));
  EXPECT_TRUE(cluster.faults()->nodeDown(mgmt, msec(500)));
  for (int n = 0; n < 4; ++n) {
    EXPECT_FALSE(cluster.faults()->nodeDown(n, msec(500))) << "node " << n;
  }

  net::ClusterConfig hcfg;
  hcfg.num_compute_nodes = 4;
  hcfg.faults.hangManagementNode(msec(10), msec(5));
  net::Cluster hung(hcfg);
  const int hmgmt = hung.managementNode();
  EXPECT_FALSE(hung.faults()->nodeDown(hmgmt, msec(10) - 1));
  EXPECT_TRUE(hung.faults()->nodeDown(hmgmt, msec(12)));
  EXPECT_FALSE(hung.faults()->nodeDown(hmgmt, msec(15)));  // window over
}

TEST(FaultInjector, ZeroRateDrawsNothing) {
  sim::FaultPlan plan;  // empty
  sim::FaultInjector inj(plan, 7);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(inj.shouldDrop(0, 1));
  EXPECT_EQ(inj.degradeExtra(), 0);
  EXPECT_EQ(inj.stats().drops, 0u);
  EXPECT_EQ(inj.stats().degrades, 0u);
}

// ---- drops + retransmission, no crash ----

TEST(FaultInjection, DroppedDescriptorsAreRetransmittedNextSlice) {
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = 2;
  ccfg.seed = 4242;
  ccfg.faults.dropRate(0.25);  // heavy loss on the droppable paths
  net::Cluster cluster(ccfg);

  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, quickCfg());
  int bad_bytes = 0;
  bcsmpi::launchJob(*runtime, {0, 1}, [&](mpi::Comm& comm) {
    std::vector<std::uint8_t> buf(4096);
    for (int round = 0; round < 25; ++round) {
      if (comm.rank() == 0) {
        for (std::size_t i = 0; i < buf.size(); ++i) {
          buf[i] = static_cast<std::uint8_t>((i + round) & 0xFF);
        }
        comm.send(buf.data(), buf.size(), 1, round);
      } else {
        comm.recv(buf.data(), buf.size(), 0, round);
        for (std::size_t i = 0; i < buf.size(); ++i) {
          if (buf[i] != static_cast<std::uint8_t>((i + round) & 0xFF)) {
            ++bad_bytes;
          }
        }
      }
    }
  });
  cluster.run();

  ASSERT_TRUE(cluster.allProcessesFinished());
  EXPECT_EQ(bad_bytes, 0);
  // At 25% loss over 50 descriptors + 25 chunks, drops are certain.
  EXPECT_GT(cluster.fabric().stats().drops, 0u);
  EXPECT_GT(runtime->stats().retransmits, 0u);
  EXPECT_EQ(runtime->stats().requests_failed, 0u);
  EXPECT_EQ(runtime->stats().evictions, 0u);
}

TEST(FaultInjection, MultiChunkMessageSurvivesChunkLoss) {
  // A message split across many chunks, each likely to be dropped at least
  // once: byte accounting must complete the request only when every chunk
  // actually landed, even if a retried chunk arrives after the final one.
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = 2;
  ccfg.seed = 7;
  ccfg.faults.dropRate(0.3);
  net::Cluster cluster(ccfg);

  bcsmpi::BcsMpiConfig cfg = quickCfg();
  cfg.chunk_bytes = 8 << 10;
  cfg.slice_byte_budget = 8 << 10;  // one chunk per slice
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);
  const std::size_t bytes = 96 << 10;  // 12 chunks
  bool intact = true;
  bcsmpi::launchJob(*runtime, {0, 1}, [&](mpi::Comm& comm) {
    std::vector<std::uint8_t> buf(bytes);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < bytes; ++i) {
        buf[i] = static_cast<std::uint8_t>((i * 13) & 0xFF);
      }
      comm.send(buf.data(), bytes, 1, 0);
    } else {
      comm.recv(buf.data(), bytes, 0, 0);
      for (std::size_t i = 0; i < bytes; ++i) {
        if (buf[i] != static_cast<std::uint8_t>((i * 13) & 0xFF)) {
          intact = false;
          break;
        }
      }
    }
  });
  cluster.run();
  ASSERT_TRUE(cluster.allProcessesFinished());
  EXPECT_TRUE(intact);
  EXPECT_GT(runtime->stats().retransmits, 0u);
  EXPECT_EQ(runtime->stats().requests_failed, 0u);
}

// ---- crash + heartbeat eviction + recovery, parameterized ----

struct CrashParam {
  std::uint64_t seed;
  int drop_bp;       // basis points: 500 = 5%
  double crash_ms;   // node-crash instant
};

class CrashRecovery : public ::testing::TestWithParam<CrashParam> {};

TEST_P(CrashRecovery, SurvivorsCompleteAndNeighborsSeeFailure) {
  const CrashParam p = GetParam();
  const int P = 8;
  const int dead_rank = 3;  // one rank per node

  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = p.seed;
  ccfg.faults.dropRate(p.drop_bp / 10000.0);
  ccfg.faults.crashNode(dead_rank, msec(p.crash_ms));
  net::Cluster cluster(ccfg);

  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, quickCfg());

  storm::StormConfig scfg;
  scfg.heartbeat_period = usec(500);
  scfg.max_missed_heartbeats = 3;
  storm::Storm storm(cluster, scfg);
  storm.setDeathHandler([&](int node) { runtime->notifyNodeFailure(node); });
  storm.startHeartbeats();
  cluster.engine().at(msec(60), [&] { storm.stopHeartbeats(); });

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);

  // Ring exchange: every round each rank sends to its right neighbour and
  // receives from its left.  A rank that sees a failed wait keeps going —
  // breaking out would strand its *live* partners — so after the crash the
  // dead rank's neighbours accumulate one error per remaining round.
  std::vector<int> errors(P, 0);
  bcsmpi::launchJob(*runtime, map, [&](mpi::Comm& comm) {
    const int me = comm.rank();
    const int right = (me + 1) % P;
    const int left = (me + P - 1) % P;
    std::vector<std::uint8_t> out(1024), in(1024);
    for (int round = 0; round < 12; ++round) {
      auto sreq = comm.isend(out.data(), out.size(), right, round);
      auto rreq = comm.irecv(in.data(), in.size(), left, round);
      mpi::Status ss, rs;
      comm.wait(sreq, &ss);
      comm.wait(rreq, &rs);
      if (ss.error != mpi::kSuccess || rs.error != mpi::kSuccess) {
        ++errors[static_cast<std::size_t>(me)];
      }
    }
  });
  cluster.run();

  // The dead rank's fiber is gone for good; every survivor finished.
  const auto unfinished = cluster.unfinishedProcesses();
  ASSERT_EQ(unfinished.size(), 1u) << "survivors deadlocked";
  EXPECT_NE(unfinished[0].find(std::to_string(dead_rank)), std::string::npos);

  // The crash was detected, the node evicted, and one coordinated recovery
  // checkpoint taken.
  EXPECT_FALSE(storm.nodeAlive(dead_rank));
  EXPECT_EQ(runtime->stats().evictions, 1u);
  EXPECT_EQ(runtime->stats().recovery_slices, 1u);
  ASSERT_EQ(runtime->recoveryCheckpoints().size(), 1u);
  EXPECT_TRUE(runtime->nodeEvicted(dead_rank));

  // Only the dead rank's ring neighbours can observe the failure; both must
  // (their counterparty vanished mid-conversation).
  for (int r = 0; r < P; ++r) {
    if (r == dead_rank) continue;
    if (r == (dead_rank + 1) % P || r == (dead_rank + P - 1) % P) {
      EXPECT_GE(errors[static_cast<std::size_t>(r)], 1)
          << "neighbour " << r << " must see at least one failed wait";
    } else {
      EXPECT_EQ(errors[static_cast<std::size_t>(r)], 0)
          << "non-neighbour " << r << " must not see failures";
    }
  }
  EXPECT_GT(runtime->stats().requests_failed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsDropsAndTimes, CrashRecovery,
    ::testing::Values(CrashParam{11, 0, 3.0}, CrashParam{97, 500, 4.0},
                      CrashParam{4242, 500, 6.5}, CrashParam{80808, 1000, 5.0}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_drop" +
             std::to_string(info.param.drop_bp) + "bp_crash" +
             std::to_string(static_cast<int>(info.param.crash_ms * 10)) +
             "e4ns";
    });

// ---- the acceptance-criteria workload: 32-node soup, 5% drop, one crash ----

TEST(FaultInjection, SoupWith32NodesDropAndMidRunCrash) {
  const int P = 32;
  const int dead_node = 13;

  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = 20260805;
  ccfg.faults.dropRate(0.05);
  ccfg.faults.crashNode(dead_node, msec(6));
  net::Cluster cluster(ccfg);

  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, quickCfg());

  storm::StormConfig scfg;
  scfg.heartbeat_period = usec(500);
  storm::Storm storm(cluster, scfg);
  storm.setDeathHandler([&](int node) { runtime->notifyNodeFailure(node); });
  storm.startHeartbeats();
  cluster.engine().at(msec(120), [&] { storm.stopHeartbeats(); });

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);

  // Soup: each round every rank swaps a message with a round-dependent
  // partner (a perfect matching, so recvs are exactly paired with sends).
  // A failed wait just moves the rank on to its next round.
  std::vector<int> completed(P, 0), failed(P, 0);
  bcsmpi::launchJob(*runtime, map, [&](mpi::Comm& comm) {
    const int me = comm.rank();
    std::vector<std::uint8_t> out(2048), in(2048);
    for (int round = 0; round < 10; ++round) {
      const int partner = me ^ (1 + (round % 7));  // xor matching, P = 32
      if (partner >= P) continue;
      auto sreq = comm.isend(out.data(), out.size(), partner, round);
      auto rreq = comm.irecv(in.data(), in.size(), partner, round);
      mpi::Status ss, rs;
      comm.wait(sreq, &ss);
      comm.wait(rreq, &rs);
      auto& cell = (ss.error == mpi::kSuccess && rs.error == mpi::kSuccess)
                       ? completed
                       : failed;
      ++cell[static_cast<std::size_t>(me)];
    }
  });
  cluster.run();

  // Every surviving rank ran all its rounds to an outcome — completed or
  // reported failed, never hung.
  EXPECT_EQ(cluster.unfinishedProcesses().size(), 1u);
  for (int r = 0; r < P; ++r) {
    if (r == dead_node) continue;
    EXPECT_EQ(completed[static_cast<std::size_t>(r)] +
                  failed[static_cast<std::size_t>(r)],
              10)
        << "rank " << r;
  }
  EXPECT_GE(runtime->stats().evictions, 1u);
  EXPECT_GT(runtime->stats().retransmits, 0u);
  EXPECT_GT(cluster.fabric().stats().drops, 0u);
  EXPECT_GT(runtime->stats().requests_failed, 0u);
  ASSERT_GE(runtime->recoveryCheckpoints().size(), 1u);
  // The recovery checkpoint is taken at a slice boundary of the survivors.
  EXPECT_GT(runtime->recoveryCheckpoints()[0].slice, 0u);
}

}  // namespace
