// One-sided RMA tests (DESIGN.md §11): passive-target epoch semantics,
// deterministic remote atomics, the fetch-add self-scheduler, fault
// behaviour, and the epoch-race verify pass.
//
// The semantics under test:
//   * ops posted in slice t apply at the target inside slice t's MSM
//     microphase and complete at the origin at the t+1 boundary;
//   * concurrent fetch-adds on one word linearize in canonical rank order,
//     so results are identical serial vs parallel at any thread count;
//   * an op whose target node died completes *in error* (status carries
//     kErrPeerUnreachable), it never hangs;
//   * the epoch-race pass is a pure observer: verify-on and verify-off
//     runs of a clean workload trace byte-identically, and conflicting
//     same-epoch accesses are reported with rank + call-site blame.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "apps/selfsched.hpp"
#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "storm/storm.hpp"
#include "verify/verify.hpp"

namespace {

using namespace bcs;
using sim::msec;
using sim::usec;
using verify::Category;

bcsmpi::BcsApi& apiOf(mpi::Comm& comm) {
  auto* bc = dynamic_cast<bcsmpi::BcsComm*>(&comm);
  EXPECT_NE(bc, nullptr);
  return bc->api();
}

/// P compute nodes, one rank per node, tracing on.
struct Harness {
  explicit Harness(int P, std::uint64_t seed = 7, bool verify = false,
                   const sim::FaultPlan& plan = {}) : num_ranks(P) {
    net::ClusterConfig ccfg;
    ccfg.num_compute_nodes = P;
    ccfg.seed = seed;
    ccfg.faults = plan;
    cluster = std::make_unique<net::Cluster>(ccfg);
    cluster->trace().enable();
    bcsmpi::BcsMpiConfig cfg;
    cfg.runtime_init_overhead = usec(50);
    cfg.verify = verify;
    runtime = std::make_shared<bcsmpi::Runtime>(*cluster, cfg);
  }

  void launch(const std::function<void(mpi::Comm&)>& body) {
    std::vector<int> map(num_ranks);
    std::iota(map.begin(), map.end(), 0);
    bcsmpi::launchJob(*runtime, map, body);
  }

  int num_ranks;
  std::unique_ptr<net::Cluster> cluster;
  std::shared_ptr<bcsmpi::Runtime> runtime;
};

// ---------------------------------------------------------------------------
// Epoch visibility semantics
// ---------------------------------------------------------------------------

TEST(Rma, PutBecomesVisibleAtEpochBoundary) {
  Harness h(2);
  std::vector<std::uint8_t> window_mem(256, 0);
  std::vector<std::uint8_t> seen;
  h.launch([&](mpi::Comm& comm) {
    bcsmpi::BcsApi& api = apiOf(comm);
    bcsmpi::BcsWindow win{0};
    if (comm.rank() == 1) {
      win = api.winCreate(window_mem.data(), window_mem.size());
    }
    comm.barrier();
    if (comm.rank() == 0) {
      std::vector<std::uint8_t> payload(64);
      for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>(i * 3 + 1);
      }
      mpi::Status st;
      api.put(payload.data(), payload.size(), /*target=*/1, win,
              /*offset=*/32, &st);
      EXPECT_EQ(st.error, mpi::kSuccess);
    }
    // The blocking put returned => its epoch closed; after the barrier the
    // target's memory must hold the payload (passive target: rank 1 never
    // posted anything).
    comm.barrier();
    if (comm.rank() == 1) seen = window_mem;
  });
  h.cluster->run();
  EXPECT_TRUE(h.cluster->allProcessesFinished());
  ASSERT_EQ(seen.size(), 256u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(seen[32 + i], static_cast<std::uint8_t>(i * 3 + 1)) << i;
  }
  EXPECT_EQ(seen[0], 0u);
  EXPECT_EQ(seen[96], 0u);
}

TEST(Rma, GetReadsRemoteWindowWithoutTargetAction) {
  Harness h(2);
  std::vector<std::uint8_t> window_mem(128);
  for (std::size_t i = 0; i < window_mem.size(); ++i) {
    window_mem[i] = static_cast<std::uint8_t>(200 - i);
  }
  std::vector<std::uint8_t> fetched(48, 0);
  h.launch([&](mpi::Comm& comm) {
    bcsmpi::BcsApi& api = apiOf(comm);
    bcsmpi::BcsWindow win{0};
    if (comm.rank() == 1) {
      win = api.winCreate(window_mem.data(), window_mem.size());
    }
    comm.barrier();
    if (comm.rank() == 0) {
      mpi::Status st;
      api.get(fetched.data(), fetched.size(), /*target=*/1, win,
              /*offset=*/16, &st);
      EXPECT_EQ(st.error, mpi::kSuccess);
    }
    comm.barrier();
  });
  h.cluster->run();
  EXPECT_TRUE(h.cluster->allProcessesFinished());
  for (std::size_t i = 0; i < fetched.size(); ++i) {
    EXPECT_EQ(fetched[i], static_cast<std::uint8_t>(200 - (16 + i))) << i;
  }
}

TEST(Rma, SelfNodeRmaUsesNicLoopback) {
  // src == dst goes through the fabric's loopback path (never dropped);
  // a rank may put into its own window like any other target.
  Harness h(1);
  std::int64_t word = 5;
  std::int64_t old = -1;
  h.launch([&](mpi::Comm& comm) {
    bcsmpi::BcsApi& api = apiOf(comm);
    bcsmpi::BcsWindow win = api.winCreate(&word, sizeof(word));
    old = api.fetchAdd(/*target=*/0, win, /*offset=*/0, 37);
  });
  h.cluster->run();
  EXPECT_TRUE(h.cluster->allProcessesFinished());
  EXPECT_EQ(old, 5);
  EXPECT_EQ(word, 42);
}

// ---------------------------------------------------------------------------
// Deterministic remote atomics
// ---------------------------------------------------------------------------

TEST(Rma, FetchAddLinearizesInCanonicalRankOrder) {
  const int P = 4;
  Harness h(P);
  std::int64_t counter = 0;
  std::vector<std::int64_t> olds(P, -1);
  h.launch([&](mpi::Comm& comm) {
    bcsmpi::BcsApi& api = apiOf(comm);
    bcsmpi::BcsWindow win{0};
    if (comm.rank() == 0) win = api.winCreate(&counter, sizeof(counter));
    comm.barrier();
    // All ranks leave the barrier at the same slice boundary and post in
    // the same epoch; the MSM resolves them in canonical rank order, so
    // rank r must observe exactly r prior increments.
    olds[static_cast<std::size_t>(comm.rank())] =
        api.fetchAdd(/*target=*/0, win, /*offset=*/0, 1);
    comm.barrier();
  });
  h.cluster->run();
  EXPECT_TRUE(h.cluster->allProcessesFinished());
  EXPECT_EQ(counter, P);
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(olds[static_cast<std::size_t>(r)], r) << "rank " << r;
  }
}

/// Contention workload digest for the thread-count sweep: R rounds of
/// all-rank fetch-adds, trace + resulting olds folded into one string.
std::string contentionDigest(int threads) {
  const int P = 8;
  Harness h(P, /*seed=*/99);
  std::int64_t counter = 0;
  std::vector<std::int64_t> olds;
  std::mutex mu;
  h.launch([&](mpi::Comm& comm) {
    bcsmpi::BcsApi& api = apiOf(comm);
    bcsmpi::BcsWindow win{0};
    if (comm.rank() == 0) win = api.winCreate(&counter, sizeof(counter));
    comm.barrier();
    std::vector<std::int64_t> mine;
    for (int round = 0; round < 4; ++round) {
      mine.push_back(api.fetchAdd(0, win, 0, comm.rank() + 1));
    }
    comm.barrier();
    std::lock_guard<std::mutex> lock(mu);
    olds.insert(olds.end(), mine.begin(), mine.end());
  });
  if (threads > 0) {
    auto policy = h.runtime->parallelPolicy(threads);
    policy.clamp_to_hardware = false;
    h.cluster->run(policy);
  } else {
    h.cluster->run();
  }
  EXPECT_TRUE(h.cluster->allProcessesFinished());
  std::string digest = h.cluster->trace().dump();
  std::sort(olds.begin(), olds.end());
  for (std::int64_t v : olds) digest += "," + std::to_string(v);
  digest += "|" + std::to_string(counter);
  return digest;
}

TEST(Rma, FetchAddContentionIdenticalAcrossThreadCounts) {
  const std::string serial = contentionDigest(0);
  for (int threads : {1, 2, 4}) {
    EXPECT_EQ(contentionDigest(threads), serial) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// The fetch-add self-scheduler (src/apps/selfsched)
// ---------------------------------------------------------------------------

/// Runs the dynamic self-scheduler on P ranks; returns the trace plus the
/// shared owner-map digest.
std::pair<std::string, std::uint64_t> selfSchedRun(int threads) {
  const int P = 8;
  Harness h(P, /*seed=*/4242);
  apps::SelfSchedConfig cfg;
  cfg.chunks = 64;
  cfg.base_cost = usec(80);
  cfg.cost_ramp = 4.0;
  std::vector<std::uint64_t> digests(P, 0);
  h.launch([&](mpi::Comm& comm) {
    const apps::SelfSchedResult res = apps::selfSchedule(comm, cfg);
    digests[static_cast<std::size_t>(comm.rank())] = res.digest;
  });
  if (threads > 0) {
    auto policy = h.runtime->parallelPolicy(threads);
    policy.clamp_to_hardware = false;
    h.cluster->run(policy);
  } else {
    h.cluster->run();
  }
  EXPECT_TRUE(h.cluster->allProcessesFinished());
  for (int r = 1; r < P; ++r) {
    EXPECT_EQ(digests[static_cast<std::size_t>(r)], digests[0]);
  }
  return {h.cluster->trace().dump(), digests[0]};
}

TEST(Rma, SelfSchedulerSerialEqualsParallelByteIdentical) {
  const auto serial = selfSchedRun(0);
  for (int threads : {2, 4}) {
    const auto par = selfSchedRun(threads);
    EXPECT_EQ(par.first, serial.first) << "threads=" << threads;
    EXPECT_EQ(par.second, serial.second) << "threads=" << threads;
  }
}

TEST(Rma, SelfSchedulerCoversEveryChunkExactlyOnce) {
  const int P = 4;
  Harness h(P);
  apps::SelfSchedConfig cfg;
  cfg.chunks = 40;
  cfg.base_cost = usec(60);
  std::vector<apps::SelfSchedResult> results(P);
  h.launch([&](mpi::Comm& comm) {
    results[static_cast<std::size_t>(comm.rank())] =
        apps::selfSchedule(comm, cfg);
  });
  h.cluster->run();
  EXPECT_TRUE(h.cluster->allProcessesFinished());
  std::vector<int> times_run(static_cast<std::size_t>(cfg.chunks), 0);
  for (const auto& res : results) {
    for (int c : res.chunks) ++times_run[static_cast<std::size_t>(c)];
  }
  for (int c = 0; c < cfg.chunks; ++c) {
    EXPECT_EQ(times_run[static_cast<std::size_t>(c)], 1) << "chunk " << c;
  }
  // The shared owner map agrees with the local claim lists.
  for (const auto& res : results) {
    ASSERT_EQ(res.owners.size(), static_cast<std::size_t>(cfg.chunks));
    for (int c : res.chunks) {
      EXPECT_EQ(res.owners[static_cast<std::size_t>(c)],
                &res - results.data());
    }
  }
}

// ---------------------------------------------------------------------------
// Faults: RMA onto a crashed peer completes in error
// ---------------------------------------------------------------------------

TEST(Rma, PutOntoCrashedPeerCompletesInError) {
  const int P = 4;
  sim::FaultPlan plan;
  plan.dropRate(0.05);
  plan.crashNode(1, msec(4));
  Harness h(P, /*seed=*/31337, /*verify=*/false, plan);

  storm::StormConfig scfg;
  scfg.heartbeat_period = usec(500);
  storm::Storm storm(*h.cluster, scfg);
  storm.setDeathHandler(
      [&](int node) { h.runtime->notifyNodeFailure(node); });
  storm.startHeartbeats();
  h.cluster->engine().at(msec(60), [&] { storm.stopHeartbeats(); });

  std::vector<std::uint8_t> window_mem(64, 0);
  std::vector<int> errors(P, -1);
  h.launch([&](mpi::Comm& comm) {
    bcsmpi::BcsApi& api = apiOf(comm);
    bcsmpi::BcsWindow win{0};
    if (comm.rank() == 1) {
      win = api.winCreate(window_mem.data(), window_mem.size());
    }
    comm.barrier();
    if (comm.rank() == 1) {
      // The victim spins until its node is crashed out from under it.
      for (int i = 0; i < 1000; ++i) comm.compute(usec(100));
      return;
    }
    // Keep putting at the (soon-dead) rank 1 until the eviction lands; the
    // op must complete in error, never hang.
    std::uint8_t byte = static_cast<std::uint8_t>(comm.rank());
    for (int round = 0; round < 64; ++round) {
      mpi::Status st;
      api.put(&byte, 1, /*target=*/1, win,
              static_cast<std::size_t>(comm.rank()), &st);
      if (st.error != mpi::kSuccess) {
        errors[static_cast<std::size_t>(comm.rank())] = st.error;
        return;
      }
    }
  });
  h.cluster->run();
  EXPECT_GE(h.runtime->stats().evictions, 1u);
  for (int r : {0, 2, 3}) {
    EXPECT_EQ(errors[static_cast<std::size_t>(r)], mpi::kErrPeerUnreachable)
        << "rank " << r << " never saw the eviction";
  }
}

// ---------------------------------------------------------------------------
// The epoch-race verify pass
// ---------------------------------------------------------------------------

/// A clean RMA workload (disjoint put ranges + commuting fetch-adds) run
/// with the verifier on or off; returns the full trace.
std::string cleanRmaTrace(bool verify) {
  const int P = 4;
  Harness h(P, /*seed=*/555, verify);
  std::vector<std::uint8_t> window_mem(1024, 0);
  std::int64_t counter = 0;
  h.launch([&](mpi::Comm& comm) {
    bcsmpi::BcsApi& api = apiOf(comm);
    bcsmpi::BcsWindow data{0}, ctr{1};
    if (comm.rank() == 0) {
      data = api.winCreate(window_mem.data(), window_mem.size());
      ctr = api.winCreate(&counter, sizeof(counter));
    }
    comm.barrier();
    std::vector<std::uint8_t> payload(
        64, static_cast<std::uint8_t>(comm.rank() + 1));
    // Disjoint 64B stripes + same-word fetch-adds: no epoch race.
    api.put(payload.data(), payload.size(), 0, data,
            static_cast<std::size_t>(comm.rank()) * 64);
    api.fetchAdd(0, ctr, 0, 1);
    comm.barrier();
  });
  h.cluster->run();
  EXPECT_TRUE(h.cluster->allProcessesFinished());
  if (verify) {
    const verify::VerifyReport* rep = h.runtime->verifyAudit();
    EXPECT_NE(rep, nullptr);
    if (rep) EXPECT_EQ(rep->count(Category::kEpochRace), 0u);
  }
  EXPECT_EQ(counter, P);
  return h.cluster->trace().dump();
}

TEST(Rma, VerifyOnOffTracesAreByteIdentical) {
  EXPECT_EQ(cleanRmaTrace(false), cleanRmaTrace(true));
}

TEST(Rma, OverlappingPutsInOneEpochAreReportedWithBlame) {
  const int P = 3;
  Harness h(P, /*seed=*/11, /*verify=*/true);
  std::vector<std::uint8_t> window_mem(256, 0);
  h.launch([&](mpi::Comm& comm) {
    bcsmpi::BcsApi& api = apiOf(comm);
    bcsmpi::BcsWindow win{0};
    if (comm.rank() == 2) {
      win = api.winCreate(window_mem.data(), window_mem.size());
    }
    comm.barrier();
    if (comm.rank() != 2) {
      // Ranks 0 and 1 both put [0, 128) — same epoch, order-dependent.
      std::vector<std::uint8_t> payload(
          128, static_cast<std::uint8_t>(comm.rank() + 1));
      api.put(payload.data(), payload.size(), 2, win, 0);
    }
    comm.barrier();
  });
  h.cluster->run();
  EXPECT_TRUE(h.cluster->allProcessesFinished());
  const verify::VerifyReport* rep = h.runtime->verifyAudit();
  ASSERT_NE(rep, nullptr);
  EXPECT_GE(rep->count(Category::kEpochRace), 1u);
  const std::string text = rep->render();
  EXPECT_NE(text.find("epoch-race"), std::string::npos) << text;
  EXPECT_NE(text.find("put by rank 0"), std::string::npos) << text;
  EXPECT_NE(text.find("put by rank 1"), std::string::npos) << text;
  EXPECT_NE(text.find("window 0 of rank 2"), std::string::npos) << text;
}

TEST(Rma, PutGetOverlapInOneEpochIsReported) {
  const int P = 3;
  Harness h(P, /*seed=*/12, /*verify=*/true);
  std::vector<std::uint8_t> window_mem(256, 7);
  h.launch([&](mpi::Comm& comm) {
    bcsmpi::BcsApi& api = apiOf(comm);
    bcsmpi::BcsWindow win{0};
    if (comm.rank() == 2) {
      win = api.winCreate(window_mem.data(), window_mem.size());
    }
    comm.barrier();
    if (comm.rank() == 0) {
      std::vector<std::uint8_t> payload(64, 9);
      api.put(payload.data(), payload.size(), 2, win, 32);
    } else if (comm.rank() == 1) {
      std::vector<std::uint8_t> out(64);
      api.get(out.data(), out.size(), 2, win, 64);  // overlaps [64, 96)
    }
    comm.barrier();
  });
  h.cluster->run();
  EXPECT_TRUE(h.cluster->allProcessesFinished());
  const verify::VerifyReport* rep = h.runtime->verifyAudit();
  ASSERT_NE(rep, nullptr);
  EXPECT_GE(rep->count(Category::kEpochRace), 1u);
  const std::string text = rep->render();
  EXPECT_NE(text.find("put"), std::string::npos) << text;
  EXPECT_NE(text.find("get"), std::string::npos) << text;
}

TEST(Rma, CommutingFetchAddsAndDisjointRangesAreNotRaces) {
  const int P = 4;
  Harness h(P, /*seed=*/13, /*verify=*/true);
  std::vector<std::uint8_t> window_mem(512, 0);
  std::int64_t counter = 0;
  h.launch([&](mpi::Comm& comm) {
    bcsmpi::BcsApi& api = apiOf(comm);
    bcsmpi::BcsWindow data{0}, ctr{1};
    if (comm.rank() == 0) {
      data = api.winCreate(window_mem.data(), window_mem.size());
      ctr = api.winCreate(&counter, sizeof(counter));
    }
    comm.barrier();
    // Everyone fetch-adds the same word (atomics commute — not a race)
    // and puts a disjoint stripe (no overlap — not a race).
    api.fetchAdd(0, ctr, 0, 2);
    std::vector<std::uint8_t> payload(
        32, static_cast<std::uint8_t>(comm.rank()));
    api.put(payload.data(), payload.size(), 0, data,
            static_cast<std::size_t>(comm.rank()) * 128);
    comm.barrier();
  });
  h.cluster->run();
  EXPECT_TRUE(h.cluster->allProcessesFinished());
  const verify::VerifyReport* rep = h.runtime->verifyAudit();
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->count(Category::kEpochRace), 0u);
  EXPECT_EQ(counter, 2 * P);
}

}  // namespace
