// Golden-trace conformance: replays the corpus scenarios and diffs their
// trace dumps byte-for-byte against the compressed references under
// tests/golden/.  Any engine change that perturbs event schedules fails
// here loudly; if the perturbation is *intended*, regenerate with
// tools/regen_golden.py and review the diff like any other code change.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "codec/lzss.hpp"
#include "golden_scenarios.hpp"

namespace {

using namespace bcs;

std::string goldenPath(const std::string& name) {
  return std::string(BCS_GOLDEN_DIR) + "/" + name + ".trace.bcsz";
}

std::string loadGolden(const std::string& name) {
  std::ifstream in(goldenPath(name), std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "missing golden file " << goldenPath(name)
                  << " — run tools/regen_golden.py";
    return {};
  }
  std::vector<std::uint8_t> blob{std::istreambuf_iterator<char>(in),
                                 std::istreambuf_iterator<char>()};
  return codec::decompress(blob);
}

/// Pinpoints the first differing line so a schedule perturbation reads as
/// "event X moved", not as a 2 MB string mismatch.
void expectTraceEq(const std::string& expected, const std::string& actual,
                   const std::string& name) {
  if (expected == actual) {
    SUCCEED();
    return;
  }
  std::istringstream e(expected), a(actual);
  std::string el, al;
  std::size_t line = 1;
  while (true) {
    const bool eg = static_cast<bool>(std::getline(e, el));
    const bool ag = static_cast<bool>(std::getline(a, al));
    if (!eg && !ag) break;
    if (!eg || !ag || el != al) {
      FAIL() << name << ": trace diverges from golden at line " << line
             << "\n  golden: " << (eg ? el : std::string("<end of trace>"))
             << "\n  actual: " << (ag ? al : std::string("<end of trace>"))
             << "\nIf this change is intended, regenerate with "
                "tools/regen_golden.py and review the diff.";
    }
    ++line;
  }
  FAIL() << name << ": traces differ but line scan found no divergence";
}

TEST(GoldenCodec, RoundTripsArbitraryData) {
  std::string data;
  for (int i = 0; i < 10000; ++i) {
    data += "line " + std::to_string(i % 97) + ": the quick brown fox ";
    data += static_cast<char>(i * 131 % 256);
  }
  const auto blob = codec::compress(data);
  EXPECT_LT(blob.size(), data.size() / 4);  // repetitive text compresses
  EXPECT_EQ(codec::decompress(blob), data);

  EXPECT_EQ(codec::decompress(codec::compress(std::string{})), "");
  const std::string one = "x";
  EXPECT_EQ(codec::decompress(codec::compress(one)), one);
}

TEST(GoldenCodec, RejectsCorruptStreams) {
  EXPECT_THROW(codec::decompress({}), std::runtime_error);
  auto blob = codec::compress(std::string(1000, 'a'));
  blob[0] ^= 0xFF;  // bad magic
  EXPECT_THROW(codec::decompress(blob), std::runtime_error);
}

class GoldenTrace : public ::testing::TestWithParam<golden::Scenario> {};

TEST_P(GoldenTrace, MatchesCorpus) {
  const golden::Scenario& sc = GetParam();
  const std::string expected = loadGolden(sc.name);
  ASSERT_FALSE(expected.empty());
  const std::string actual = sc.generate();
  expectTraceEq(expected, actual, sc.name);
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenTrace,
                         ::testing::ValuesIn(golden::kScenarios),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(GoldenTrace, ParSoupSerialReplayMatchesParallelGolden) {
  // The par_soup blob is generated through the parallel driver; the serial
  // drain of the identical workload must reproduce it byte-for-byte, which
  // pins the serial ≡ parallel contract against the checked-in corpus (not
  // just against a same-binary reference run).
  const std::string expected = loadGolden("par_soup");
  ASSERT_FALSE(expected.empty());
  expectTraceEq(expected, golden::traceParSoupImpl(/*parallel=*/false),
                "par_soup (serial replay)");
}

}  // namespace
