// Tests for the NIC soft-float library: directed edge cases plus large
// differential sweeps against the host FPU (x86-64 SSE is IEEE-754 with
// round-to-nearest-even, so results must match bit for bit, NaN payloads
// aside).

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "sim/rng.hpp"
#include "softfloat/softfloat.hpp"

namespace {

using namespace bcs::sf;

std::uint32_t bits(float f) { return std::bit_cast<std::uint32_t>(f); }
float value(std::uint32_t b) { return std::bit_cast<float>(b); }
std::uint64_t bits(double f) { return std::bit_cast<std::uint64_t>(f); }
double value64(std::uint64_t b) { return std::bit_cast<double>(b); }

/// Bitwise equality modulo NaN payloads.
::testing::AssertionResult sameF32(std::uint32_t got, std::uint32_t want) {
  if (f32_is_nan(got) && f32_is_nan(want)) {
    return ::testing::AssertionSuccess();
  }
  if (got == want) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << std::hex << "got 0x" << got << " (" << value(got) << "), want 0x"
         << want << " (" << value(want) << ")";
}

::testing::AssertionResult sameF64(std::uint64_t got, std::uint64_t want) {
  if (f64_is_nan(got) && f64_is_nan(want)) {
    return ::testing::AssertionSuccess();
  }
  if (got == want) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << std::hex << "got 0x" << got << " (" << value64(got)
         << "), want 0x" << want << " (" << value64(want) << ")";
}

// -------------------------------------------------------------- Directed --

TEST(SoftFloat32, SimpleArithmetic) {
  EXPECT_TRUE(sameF32(f32_add(bits(1.0f), bits(2.0f)), bits(3.0f)));
  EXPECT_TRUE(sameF32(f32_sub(bits(1.0f), bits(2.0f)), bits(-1.0f)));
  EXPECT_TRUE(sameF32(f32_mul(bits(3.0f), bits(4.0f)), bits(12.0f)));
  EXPECT_TRUE(sameF32(f32_add(bits(0.1f), bits(0.2f)), bits(0.1f + 0.2f)));
}

TEST(SoftFloat32, SignedZeros) {
  EXPECT_TRUE(sameF32(f32_add(bits(0.0f), bits(-0.0f)), bits(0.0f)));
  EXPECT_TRUE(sameF32(f32_add(bits(-0.0f), bits(-0.0f)), bits(-0.0f)));
  EXPECT_TRUE(sameF32(f32_sub(bits(1.0f), bits(1.0f)), bits(0.0f)));
  EXPECT_TRUE(f32_eq(bits(0.0f), bits(-0.0f)));
  EXPECT_FALSE(f32_lt(bits(-0.0f), bits(0.0f)));
}

TEST(SoftFloat32, Infinities) {
  const auto inf = bits(std::numeric_limits<float>::infinity());
  const auto ninf = bits(-std::numeric_limits<float>::infinity());
  EXPECT_TRUE(sameF32(f32_add(inf, bits(1.0f)), inf));
  EXPECT_TRUE(sameF32(f32_add(ninf, bits(1.0f)), ninf));
  EXPECT_TRUE(f32_is_nan(f32_add(inf, ninf)));
  EXPECT_TRUE(f32_is_nan(f32_sub(inf, inf)));
  EXPECT_TRUE(sameF32(f32_mul(inf, bits(-2.0f)), ninf));
  EXPECT_TRUE(f32_is_nan(f32_mul(inf, bits(0.0f))));
}

TEST(SoftFloat32, NaNPropagation) {
  const auto nan = bits(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(f32_is_nan(f32_add(nan, bits(1.0f))));
  EXPECT_TRUE(f32_is_nan(f32_mul(bits(1.0f), nan)));
  EXPECT_FALSE(f32_eq(nan, nan));
  EXPECT_FALSE(f32_lt(nan, bits(1.0f)));
  EXPECT_FALSE(f32_le(nan, nan));
}

TEST(SoftFloat32, MinMaxTreatNaNAsMissing) {
  const auto nan = bits(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(sameF32(f32_min(nan, bits(3.0f)), bits(3.0f)));
  EXPECT_TRUE(sameF32(f32_max(bits(3.0f), nan), bits(3.0f)));
  EXPECT_TRUE(f32_is_nan(f32_min(nan, nan)));
  EXPECT_TRUE(sameF32(f32_min(bits(-1.0f), bits(2.0f)), bits(-1.0f)));
  EXPECT_TRUE(sameF32(f32_max(bits(-1.0f), bits(2.0f)), bits(2.0f)));
}

TEST(SoftFloat32, SubnormalsAndUnderflow) {
  const float min_sub = std::numeric_limits<float>::denorm_min();
  const float min_norm = std::numeric_limits<float>::min();
  EXPECT_TRUE(
      sameF32(f32_add(bits(min_sub), bits(min_sub)), bits(2 * min_sub)));
  // Largest subnormal + smallest subnormal stays exact.
  const float big_sub = min_norm - min_sub;
  EXPECT_TRUE(sameF32(f32_add(bits(big_sub), bits(min_sub)), bits(min_norm)));
  // Multiplication underflowing to subnormal range.
  EXPECT_TRUE(
      sameF32(f32_mul(bits(min_norm), bits(0.5f)), bits(min_norm * 0.5f)));
  // Total underflow to zero.
  EXPECT_TRUE(
      sameF32(f32_mul(bits(min_sub), bits(min_sub)), bits(0.0f)));
}

TEST(SoftFloat32, OverflowToInfinity) {
  const float max = std::numeric_limits<float>::max();
  EXPECT_TRUE(sameF32(f32_add(bits(max), bits(max)), bits(max + max)));
  EXPECT_TRUE(sameF32(f32_mul(bits(max), bits(2.0f)),
                      bits(std::numeric_limits<float>::infinity())));
}

TEST(SoftFloat32, RoundToNearestEvenTieCases) {
  // 2^24 + 1 is not representable; 2^24 + 2 is.  Adding 1.0 to 2^24 must
  // round back down to 2^24 (tie to even).
  const float p24 = 16777216.0f;  // 2^24
  EXPECT_TRUE(sameF32(f32_add(bits(p24), bits(1.0f)), bits(p24)));
  EXPECT_TRUE(sameF32(f32_add(bits(p24), bits(2.0f)), bits(p24 + 2.0f)));
  // 2^24 + 3 rounds to 2^24 + 4 (nearest, ties even).
  EXPECT_TRUE(sameF32(f32_add(bits(p24), bits(3.0f)), bits(p24 + 3.0f)));
}

TEST(SoftFloat32, FromInt) {
  EXPECT_TRUE(sameF32(f32_from_i32(0), bits(0.0f)));
  EXPECT_TRUE(sameF32(f32_from_i32(1), bits(1.0f)));
  EXPECT_TRUE(sameF32(f32_from_i32(-7), bits(-7.0f)));
  EXPECT_TRUE(sameF32(f32_from_i32(16777217), bits(16777217.0f)));  // rounds
  EXPECT_TRUE(sameF32(f32_from_i32(INT32_MIN),
                      bits(static_cast<float>(INT32_MIN))));
}

TEST(SoftFloat64, DirectedBasics) {
  EXPECT_TRUE(sameF64(f64_add(bits(1.5), bits(2.25)), bits(3.75)));
  EXPECT_TRUE(sameF64(f64_mul(bits(1e200), bits(1e200)),
                      bits(std::numeric_limits<double>::infinity())));
  // 1e-400 is below the double subnormal range: underflows to +0.
  EXPECT_TRUE(sameF64(f64_mul(bits(1e-200), bits(1e-200)), bits(0.0)));
  EXPECT_TRUE(f64_is_nan(f64_sub(bits(std::numeric_limits<double>::infinity()),
                                 bits(std::numeric_limits<double>::infinity()))));
  EXPECT_TRUE(sameF64(f64_from_i64(INT64_MAX),
                      bits(static_cast<double>(INT64_MAX))));
}

// ---------------------------------------------------------- Differential --

/// Draws interesting float bit patterns: uniform bits, small exponents,
/// subnormals, specials.
std::uint32_t interestingBits32(bcs::sim::Rng& rng) {
  switch (rng.below(8)) {
    case 0: return static_cast<std::uint32_t>(rng());  // anything
    case 1: return bits(static_cast<float>(rng.normal(0, 1000)));
    case 2: return static_cast<std::uint32_t>(rng()) & 0x807FFFFFu;  // subnormal
    case 3: return bits(std::numeric_limits<float>::infinity());
    case 4: return bits(std::numeric_limits<float>::quiet_NaN());
    case 5: return bits(0.0f);
    case 6: return bits(-0.0f);
    default: {
      // Close exponents: exercises alignment/cancellation paths.
      const auto exp = static_cast<std::uint32_t>(120 + rng.below(16)) << 23;
      return (static_cast<std::uint32_t>(rng()) & 0x807FFFFFu) | exp;
    }
  }
}

std::uint64_t interestingBits64(bcs::sim::Rng& rng) {
  switch (rng.below(8)) {
    case 0: return rng();
    case 1: return bits(rng.normal(0, 1e6));
    case 2: return rng() & 0x800FFFFFFFFFFFFFull;  // subnormal
    case 3: return bits(std::numeric_limits<double>::infinity());
    case 4: return bits(std::numeric_limits<double>::quiet_NaN());
    case 5: return bits(0.0);
    case 6: return bits(-0.0);
    default: {
      const auto exp = static_cast<std::uint64_t>(1010 + rng.below(30)) << 52;
      return (rng() & 0x800FFFFFFFFFFFFFull) | exp;
    }
  }
}

TEST(SoftFloat32, DifferentialAddSubMulAgainstHost) {
  bcs::sim::Rng rng(0xF00D);
  for (int i = 0; i < 200000; ++i) {
    const std::uint32_t a = interestingBits32(rng);
    const std::uint32_t b = interestingBits32(rng);
    const float fa = value(a), fb = value(b);
    ASSERT_TRUE(sameF32(f32_add(a, b), bits(fa + fb)))
        << "add iter " << i << " a=0x" << std::hex << a << " b=0x" << b;
    ASSERT_TRUE(sameF32(f32_sub(a, b), bits(fa - fb)))
        << "sub iter " << i << " a=0x" << std::hex << a << " b=0x" << b;
    ASSERT_TRUE(sameF32(f32_mul(a, b), bits(fa * fb)))
        << "mul iter " << i << " a=0x" << std::hex << a << " b=0x" << b;
  }
}

TEST(SoftFloat32, DifferentialComparisons) {
  bcs::sim::Rng rng(0xBEEF);
  for (int i = 0; i < 100000; ++i) {
    const std::uint32_t a = interestingBits32(rng);
    const std::uint32_t b = interestingBits32(rng);
    const float fa = value(a), fb = value(b);
    ASSERT_EQ(f32_eq(a, b), fa == fb) << "iter " << i;
    ASSERT_EQ(f32_lt(a, b), fa < fb) << "iter " << i;
    ASSERT_EQ(f32_le(a, b), fa <= fb) << "iter " << i;
  }
}

TEST(SoftFloat64, DifferentialAddSubMulAgainstHost) {
  bcs::sim::Rng rng(0xCAFE);
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t a = interestingBits64(rng);
    const std::uint64_t b = interestingBits64(rng);
    const double fa = value64(a), fb = value64(b);
    ASSERT_TRUE(sameF64(f64_add(a, b), bits(fa + fb)))
        << "add iter " << i << " a=0x" << std::hex << a << " b=0x" << b;
    ASSERT_TRUE(sameF64(f64_sub(a, b), bits(fa - fb)))
        << "sub iter " << i << " a=0x" << std::hex << a << " b=0x" << b;
    ASSERT_TRUE(sameF64(f64_mul(a, b), bits(fa * fb)))
        << "mul iter " << i << " a=0x" << std::hex << a << " b=0x" << b;
  }
}

TEST(SoftFloat64, DifferentialComparisons) {
  bcs::sim::Rng rng(0xD00D);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t a = interestingBits64(rng);
    const std::uint64_t b = interestingBits64(rng);
    const double fa = value64(a), fb = value64(b);
    ASSERT_EQ(f64_eq(a, b), fa == fb) << "iter " << i;
    ASSERT_EQ(f64_lt(a, b), fa < fb) << "iter " << i;
    ASSERT_EQ(f64_le(a, b), fa <= fb) << "iter " << i;
  }
}

TEST(SoftFloat64, DifferentialFromInt) {
  bcs::sim::Rng rng(0xABCD);
  for (int i = 0; i < 50000; ++i) {
    const auto v = static_cast<std::int64_t>(rng());
    ASSERT_TRUE(sameF64(f64_from_i64(v), bits(static_cast<double>(v))))
        << "iter " << i << " v=" << v;
    const auto v32 = static_cast<std::int32_t>(rng());
    ASSERT_TRUE(sameF32(f32_from_i32(v32), bits(static_cast<float>(v32))))
        << "iter " << i << " v=" << v32;
  }
}

}  // namespace
