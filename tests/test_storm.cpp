// STORM resource-manager tests: allocation, collective job launch,
// heartbeats and fault detection.

#include <gtest/gtest.h>

#include <vector>

#include "storm/storm.hpp"

namespace {

using namespace bcs;
using sim::msec;
using sim::usec;

net::ClusterConfig cfgNodes(int n) {
  net::ClusterConfig c;
  c.num_compute_nodes = n;
  return c;
}

TEST(Storm, AllocateFirstFitAndRelease) {
  net::Cluster cluster(cfgNodes(4));
  storm::Storm storm(cluster);
  const auto a = storm.allocate(6, /*per_node=*/2);
  EXPECT_EQ(a, (std::vector<int>{0, 0, 1, 1, 2, 2}));
  EXPECT_EQ(storm.usedSlots(0), 2);
  EXPECT_EQ(storm.usedSlots(3), 0);
  const auto b = storm.allocate(2, 2);
  EXPECT_EQ(b, (std::vector<int>{3, 3}));
  EXPECT_THROW(storm.allocate(1, 2), sim::SimError);
  storm.release(a);
  EXPECT_EQ(storm.usedSlots(0), 0);
  const auto c = storm.allocate(2, 2);
  EXPECT_EQ(c, (std::vector<int>{0, 0}));
}

TEST(Storm, LaunchCompletesAndReportsLatency) {
  net::Cluster cluster(cfgNodes(16));
  storm::Storm storm(cluster);
  std::vector<int> nodes;
  for (int n = 0; n < 16; ++n) nodes.push_back(n);
  sim::SimTime latency = -1;
  storm.launchImage(nodes, /*binary_bytes=*/4 << 20, /*procs_per_node=*/2,
                    [&](sim::SimTime lat) { latency = lat; });
  cluster.run();
  ASSERT_GT(latency, 0);
  // 4 MiB at ~200 MB/s multicast delivery ≈ 21 ms, plus spawn and polling.
  EXPECT_GT(latency, msec(15));
  EXPECT_LT(latency, msec(40));
}

TEST(Storm, LaunchLatencyNearlyIndependentOfNodeCount) {
  // The STORM claim: hardware-multicast launch scales O(1)-ish in nodes.
  auto launch_time = [](int n) {
    net::Cluster cluster(cfgNodes(n));
    storm::Storm storm(cluster);
    std::vector<int> nodes;
    for (int i = 0; i < n; ++i) nodes.push_back(i);
    sim::SimTime latency = -1;
    storm.launchImage(nodes, 8 << 20, 2,
                      [&](sim::SimTime lat) { latency = lat; });
    cluster.run();
    return latency;
  };
  const auto t4 = launch_time(4);
  const auto t64 = launch_time(64);
  ASSERT_GT(t4, 0);
  ASSERT_GT(t64, 0);
  EXPECT_LT(static_cast<double>(t64), 1.3 * static_cast<double>(t4));
}

TEST(Storm, HeartbeatsDetectDeadNode) {
  net::Cluster cluster(cfgNodes(8));
  storm::StormConfig scfg;
  scfg.heartbeat_period = msec(10);
  scfg.max_missed_heartbeats = 3;
  storm::Storm storm(cluster, scfg);
  storm.startHeartbeats();
  cluster.engine().at(msec(25), [&] { storm.killNode(5); });
  cluster.engine().at(msec(200), [&] { storm.stopHeartbeats(); });
  cluster.run();
  EXPECT_GE(storm.heartbeatsSent(), 15u);
  EXPECT_FALSE(storm.nodeAlive(5));
  for (int n = 0; n < 8; ++n) {
    if (n != 5) EXPECT_TRUE(storm.nodeAlive(n)) << n;
  }
  EXPECT_EQ(storm.deadNodes(), std::vector<int>{5});
}

TEST(Storm, HangShorterThanThresholdIsNotDeclaredDead) {
  // A 15 ms NIC hang at a 10 ms heartbeat period misses at most 2 beats —
  // below max_missed_heartbeats = 3 — so the MM must NOT declare the node
  // dead (false-positive check).
  net::ClusterConfig ccfg = cfgNodes(8);
  ccfg.faults.hangNode(5, msec(22), msec(15));
  net::Cluster cluster(ccfg);
  storm::StormConfig scfg;
  scfg.heartbeat_period = msec(10);
  scfg.max_missed_heartbeats = 3;
  storm::Storm storm(cluster, scfg);
  storm.startHeartbeats();
  cluster.engine().at(msec(200), [&] { storm.stopHeartbeats(); });
  cluster.run();
  EXPECT_TRUE(storm.nodeAlive(5));
  EXPECT_TRUE(storm.deadNodes().empty());
}

TEST(Storm, FaultPlanCrashIsDeclaredWithinLatencyBound) {
  // A FaultPlan crash silences the node's NIC end to end: the heartbeat
  // multicast leg to it is suppressed by the fabric, so detection needs no
  // cooperation from Storm::killNode.  With period P and threshold 3, a
  // crash at T must be declared in (T + 2P, T + 4P]: the first fully missed
  // beat is checked at most one period after T plus the half-period
  // inspection delay, and two more follow at period intervals.
  net::ClusterConfig ccfg = cfgNodes(8);
  const sim::SimTime crash_at = msec(25);
  ccfg.faults.crashNode(5, crash_at);
  net::Cluster cluster(ccfg);
  storm::StormConfig scfg;
  scfg.heartbeat_period = msec(10);
  scfg.max_missed_heartbeats = 3;
  storm::Storm storm(cluster, scfg);
  sim::SimTime declared_at = -1;
  int handler_calls = 0;
  storm.setDeathHandler([&](int node) {
    EXPECT_EQ(node, 5);
    ++handler_calls;
    declared_at = cluster.engine().now();
  });
  storm.startHeartbeats();
  cluster.engine().at(msec(200), [&] { storm.stopHeartbeats(); });
  cluster.run();
  EXPECT_FALSE(storm.nodeAlive(5));
  EXPECT_EQ(handler_calls, 1);  // death handler fires exactly once
  ASSERT_GT(declared_at, 0);
  EXPECT_GT(declared_at, crash_at + 2 * scfg.heartbeat_period);
  EXPECT_LE(declared_at, crash_at + 4 * scfg.heartbeat_period);
}

TEST(Storm, NoisySlowClusterProducesNoFalsePositives) {
  // OS noise perturbs timing but every node still acknowledges each beat;
  // nobody may be declared dead.
  net::ClusterConfig ccfg = cfgNodes(8);
  ccfg.inject_noise = true;
  net::Cluster cluster(ccfg);
  storm::StormConfig scfg;
  scfg.heartbeat_period = msec(10);
  scfg.max_missed_heartbeats = 3;
  storm::Storm storm(cluster, scfg);
  int handler_calls = 0;
  storm.setDeathHandler([&](int) { ++handler_calls; });
  storm.startHeartbeats();
  cluster.engine().at(msec(300), [&] { storm.stopHeartbeats(); });
  cluster.run(msec(400));
  EXPECT_TRUE(storm.deadNodes().empty());
  EXPECT_EQ(handler_calls, 0);
  EXPECT_GE(storm.heartbeatsSent(), 25u);
}

TEST(Storm, KillNodeRegistersWithTheFaultInjector) {
  // killNode is sugar over FaultInjector::forceDown — the injector is the
  // single source of truth for endpoint liveness, so there is no separate
  // "Storm thinks it's dead" state to fall out of sync.
  net::Cluster cluster(cfgNodes(4));
  storm::StormConfig scfg;
  storm::Storm storm(cluster, scfg);
  EXPECT_EQ(cluster.faults()->stats().forced_down, 0u);
  storm.killNode(2);
  EXPECT_TRUE(cluster.faults()->nodeDown(2, cluster.engine().now()));
  EXPECT_TRUE(cluster.faults()->nodeDown(2, msec(500)));  // permanent
  EXPECT_FALSE(cluster.faults()->nodeDown(1, msec(500)));
  EXPECT_EQ(cluster.faults()->stats().forced_down, 1u);
  // The MM has not *declared* anything yet — that still takes heartbeats.
  EXPECT_TRUE(storm.nodeAlive(2));
}

TEST(Storm, HangPastThresholdIsDeclaredDeadThenRejoins) {
  // A hang longer than the death threshold: the node is declared dead, and
  // when its heartbeats resume the MM clears its books and fires the rejoin
  // hook exactly once.
  net::ClusterConfig ccfg = cfgNodes(8);
  ccfg.faults.hangNode(5, msec(20), msec(60));  // down [20 ms, 80 ms)
  net::Cluster cluster(ccfg);
  storm::StormConfig scfg;
  scfg.heartbeat_period = msec(10);
  scfg.max_missed_heartbeats = 3;
  storm::Storm storm(cluster, scfg);
  int deaths = 0, rejoins = 0;
  sim::SimTime rejoined_at = -1;
  storm.setDeathHandler([&](int node) {
    EXPECT_EQ(node, 5);
    ++deaths;
  });
  storm.setRejoinHandler([&](int node) {
    EXPECT_EQ(node, 5);
    ++rejoins;
    rejoined_at = cluster.engine().now();
  });
  storm.startHeartbeats();
  cluster.engine().at(msec(200), [&] { storm.stopHeartbeats(); });
  cluster.run();
  EXPECT_EQ(deaths, 1);
  EXPECT_EQ(rejoins, 1);
  EXPECT_TRUE(storm.nodeAlive(5));
  EXPECT_TRUE(storm.deadNodes().empty());
  // The rejoin lands with the first inspected beat after the hang window.
  ASSERT_GT(rejoined_at, 0);
  EXPECT_GT(rejoined_at, msec(80));
  EXPECT_LE(rejoined_at, msec(80) + 2 * scfg.heartbeat_period);
}

TEST(Storm, DeadNodesAreSkippedByAllocation) {
  net::Cluster cluster(cfgNodes(4));
  storm::StormConfig scfg;
  scfg.heartbeat_period = msec(5);
  storm::Storm storm(cluster, scfg);
  storm.killNode(1);
  storm.startHeartbeats();
  cluster.engine().at(msec(100), [&] { storm.stopHeartbeats(); });
  cluster.run();
  ASSERT_FALSE(storm.nodeAlive(1));
  const auto a = storm.allocate(6, 2);
  EXPECT_EQ(a, (std::vector<int>{0, 0, 2, 2, 3, 3}));
}

}  // namespace
