// Determinism tests: the whole simulator — including the fault injector —
// must be a pure function of (seed, fault plan, workload).
//
// Two runs with the same seed and plan must produce byte-identical traces,
// even when the run suffers drops, retransmissions and a node crash with
// heartbeat-driven eviction.  Different seeds must produce different fault
// schedules (otherwise "seeded" would be vacuous).

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"
#include "sim/fault.hpp"
#include "storm/storm.hpp"

namespace {

using namespace bcs;
using sim::msec;
using sim::usec;

struct RunResult {
  std::string trace;
  std::uint64_t drops = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t evictions = 0;
};

/// One full run: P-node cluster under `plan`, ring workload with per-rank
/// payload checksums recorded into the trace, optional Storm heartbeats
/// driving eviction.  Returns the complete trace text.
RunResult runWorkload(std::uint64_t seed, const sim::FaultPlan& plan,
                      bool with_storm) {
  const int P = 4;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = seed;
  ccfg.faults = plan;
  net::Cluster cluster(ccfg);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  std::unique_ptr<storm::Storm> storm;
  if (with_storm) {
    storm::StormConfig scfg;
    scfg.heartbeat_period = usec(500);
    storm = std::make_unique<storm::Storm>(cluster, scfg);
    storm->setDeathHandler([&](int node) { runtime->notifyNodeFailure(node); });
    storm->startHeartbeats();
    cluster.engine().at(msec(40), [&s = *storm] { s.stopHeartbeats(); });
  }

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  bcsmpi::launchJob(*runtime, map, [&](mpi::Comm& comm) {
    const int me = comm.rank();
    const int right = (me + 1) % P;
    const int left = (me + P - 1) % P;
    std::vector<std::uint8_t> out(2048), in(2048);
    for (int round = 0; round < 8; ++round) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<std::uint8_t>((i * 3 + me + round) & 0xFF);
      }
      auto sreq = comm.isend(out.data(), out.size(), right, round);
      auto rreq = comm.irecv(in.data(), in.size(), left, round);
      mpi::Status ss, rs;
      comm.wait(sreq, &ss);
      comm.wait(rreq, &rs);
      // Fold the received payload into the trace so byte-level divergence
      // between two runs would show up as differing dumps.
      std::uint64_t sum = 0;
      for (std::uint8_t b : in) sum += b;
      cluster.trace().record(comm.now(), sim::TraceCategory::kApp, me,
                             "round " + std::to_string(round) + " sum " +
                                 std::to_string(sum) + " serr " +
                                 std::to_string(ss.error) + " rerr " +
                                 std::to_string(rs.error));
    }
  });
  cluster.run();

  RunResult res;
  res.trace = cluster.trace().dump();
  res.drops = cluster.fabric().stats().drops;
  res.retransmits = runtime->stats().retransmits;
  res.evictions = runtime->stats().evictions;
  return res;
}

TEST(Determinism, FaultFreeRunsAreByteIdentical) {
  sim::FaultPlan plan;  // empty
  const RunResult a = runWorkload(1234, plan, /*with_storm=*/false);
  const RunResult b = runWorkload(1234, plan, /*with_storm=*/false);
  ASSERT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.drops, 0u);
}

TEST(Determinism, DropsAndRetransmitsAreByteIdentical) {
  sim::FaultPlan plan;
  plan.dropRate(0.15).degrade(0.1, usec(30));
  const RunResult a = runWorkload(777, plan, /*with_storm=*/false);
  const RunResult b = runWorkload(777, plan, /*with_storm=*/false);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_GT(a.drops, 0u);  // the plan actually bit
}

TEST(Determinism, CrashRecoveryRunsAreByteIdentical) {
  sim::FaultPlan plan;
  plan.dropRate(0.05).crashNode(2, msec(2));
  const RunResult a = runWorkload(31337, plan, /*with_storm=*/true);
  const RunResult b = runWorkload(31337, plan, /*with_storm=*/true);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.evictions, 1u);
  EXPECT_EQ(b.evictions, 1u);
}

TEST(Determinism, DifferentSeedsDifferentFaultSchedules) {
  sim::FaultPlan plan;
  plan.dropRate(0.15);
  const RunResult a = runWorkload(1, plan, /*with_storm=*/false);
  const RunResult b = runWorkload(2, plan, /*with_storm=*/false);
  // Over hundreds of draws, two seeds agreeing on every drop decision is
  // astronomically unlikely.
  EXPECT_NE(a.trace, b.trace);
}

TEST(Determinism, FaultPlanDescribeIsStable) {
  sim::FaultPlan plan;
  plan.dropRate(0.05).crashNode(3, msec(10)).hangNode(5, msec(20), msec(5));
  EXPECT_EQ(plan.describe(), plan.describe());
  EXPECT_NE(plan.describe().find("crash"), std::string::npos);
  EXPECT_NE(plan.describe().find("hang"), std::string::npos);
}

}  // namespace
