// Edge cases and failure-mode tests across the stack: engine cancellation
// under churn, fat-tree radix sweeps, fabric loopback and zero-byte
// messages, histogram corners, eager/rendezvous threshold boundary, and
// atomicity of Xfer-And-Signal delivery sets.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "baseline/baseline.hpp"
#include "bcs/core.hpp"
#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"
#include "sim/stats.hpp"

namespace {

using namespace bcs;
using sim::msec;
using sim::usec;

// ------------------------------------------------------------- Engine ----

TEST(EngineEdge, CancelStormLeavesSurvivorsIntact) {
  sim::Engine eng;
  std::vector<sim::EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(eng.at(usec(i + 1), [&] { ++fired; }));
  }
  // Cancel every odd event.
  for (std::size_t i = 1; i < ids.size(); i += 2) {
    EXPECT_TRUE(eng.cancel(ids[i]));
  }
  eng.run();
  EXPECT_EQ(fired, 500);
  EXPECT_EQ(eng.pendingEvents(), 0u);
}

TEST(EngineEdge, CancelFromInsideAnEarlierEvent) {
  sim::Engine eng;
  bool second_ran = false;
  sim::EventId second = eng.at(usec(10), [&] { second_ran = true; });
  eng.at(usec(5), [&] { EXPECT_TRUE(eng.cancel(second)); });
  eng.run();
  EXPECT_FALSE(second_ran);
}

// ------------------------------------------------------------ FatTree ----

class FatTreeRadix : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeRadix, HopsAreSymmetricAndBounded) {
  const int radix = GetParam();
  net::FatTree t(64, radix);
  for (int a = 0; a < 64; a += 7) {
    for (int b = 0; b < 64; b += 5) {
      if (a == b) {
        EXPECT_EQ(t.hops(a, b), 0);
        continue;
      }
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));
      EXPECT_GE(t.hops(a, b), 1);
      EXPECT_LE(t.hops(a, b), 2 * t.levels() - 1);
    }
  }
}

TEST_P(FatTreeRadix, SiblingsAreOneHopApart) {
  const int radix = GetParam();
  net::FatTree t(64, radix);
  EXPECT_EQ(t.hops(0, 1), 1);  // same leaf switch for any radix >= 2
}

INSTANTIATE_TEST_SUITE_P(Radixes, FatTreeRadix, ::testing::Values(2, 4, 8, 16),
                         [](const auto& info) {
                           return "radix" + std::to_string(info.param);
                         });

// ------------------------------------------------------------- Fabric ----

TEST(FabricEdge, ZeroByteUnicastStillPaysLatency) {
  sim::Engine eng;
  net::Fabric fabric(eng, net::NetworkParams::qsnet(), 4);
  sim::SimTime delivered = -1;
  fabric.unicast(0, 1, 0, [&] { delivered = eng.now(); });
  eng.run();
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, usec(5));
}

TEST(FabricEdge, MulticastToOnlySelfCompletesImmediately) {
  sim::Engine eng;
  net::Fabric fabric(eng, net::NetworkParams::qsnet(), 4);
  bool all = false;
  fabric.multicast(2, {2}, 1024, {}, [&] { all = true; });
  eng.run();
  EXPECT_TRUE(all);
}

TEST(FabricEdge, OutOfRangeNodesThrow) {
  sim::Engine eng;
  net::Fabric fabric(eng, net::NetworkParams::qsnet(), 4);
  EXPECT_THROW(fabric.unicast(0, 9, 16, [] {}), sim::SimError);
  EXPECT_THROW(fabric.unicast(-1, 0, 16, [] {}), sim::SimError);
}

TEST(BcsCoreEdge, XferSignalsEveryNodeOfTheDestinationSet) {
  // Semantics note 2 (§2): the put reaches *all* nodes of the set; every
  // destination observes the same delivery (atomicity in the absence of
  // injected faults).
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = 16;
  net::Cluster cluster(ccfg);
  core::BcsCore core(cluster.fabric());
  const auto ev = core.allocEvent("e");
  core::XferRequest req;
  req.src_node = 0;
  for (int n = 1; n < 16; ++n) req.dest_nodes.push_back(n);
  req.bytes = 4096;
  req.remote_event = ev;
  core.xferAndSignal(std::move(req));
  cluster.run();
  for (int n = 1; n < 16; ++n) {
    EXPECT_EQ(core.pendingSignals(n, ev), 1) << "node " << n;
  }
}

// -------------------------------------------------------------- Stats ----

TEST(StatsEdge, HistogramUnderAndOverflow) {
  sim::Histogram h(0.0, 10.0, 10);
  h.add(-5.0);   // underflow bucket
  h.add(15.0);   // overflow bucket
  h.add(5.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_GE(h.quantile(0.5), 0.0);
  EXPECT_LE(h.quantile(1.0), 10.0);
  EXPECT_FALSE(h.render().empty());
}

TEST(StatsEdge, HistogramRejectsBadConstruction) {
  EXPECT_THROW(sim::Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(sim::Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(StatsEdge, AccumulatorSingleValue) {
  sim::Accumulator acc;
  acc.add(42.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 42.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 42.0);
  EXPECT_DOUBLE_EQ(acc.max(), 42.0);
}

// ---------------------------------------- eager/rendezvous boundary ----

TEST(BaselineEdge, ThresholdBoundarySizesDeliverIntact) {
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = 2;
  net::Cluster cluster(ccfg);
  baseline::BaselineConfig cfg;
  cfg.init_overhead = usec(10);
  const std::size_t thr = cfg.eager_threshold;
  const std::size_t sizes[] = {thr - 1, thr, thr + 1, 2 * thr};
  baseline::runJob(cluster, cfg, {0, 1}, [&](mpi::Comm& comm) {
    for (std::size_t s : sizes) {
      std::vector<std::uint8_t> buf(s);
      if (comm.rank() == 0) {
        for (std::size_t i = 0; i < s; ++i) {
          buf[i] = static_cast<std::uint8_t>(i * 13 + s);
        }
        comm.send(buf.data(), s, 1, 0);
      } else {
        comm.recv(buf.data(), s, 0, 0);
        for (std::size_t i = 0; i < s; i += 101) {
          ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 13 + s))
              << "size " << s << " byte " << i;
        }
      }
    }
  });
}

TEST(BaselineEdge, ZeroByteMessagesMatchByEnvelope) {
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = 2;
  net::Cluster cluster(ccfg);
  baseline::BaselineConfig cfg;
  cfg.init_overhead = usec(10);
  int got_tag = -1;
  baseline::runJob(cluster, cfg, {0, 1}, [&](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(nullptr, 0, 1, 42);
    } else {
      mpi::Status st;
      comm.recv(nullptr, 0, 0, mpi::kAnyTag, &st);
      got_tag = st.tag;
      EXPECT_EQ(st.bytes, 0u);
    }
  });
  EXPECT_EQ(got_tag, 42);
}

TEST(BcsMpiEdge, ZeroByteMessages) {
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = 2;
  net::Cluster cluster(ccfg);
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  int got_tag = -1;
  bcsmpi::runJob(cluster, cfg, {0, 1}, [&](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(nullptr, 0, 1, 17);
    } else {
      mpi::Status st;
      comm.recv(nullptr, 0, 0, mpi::kAnyTag, &st);
      got_tag = st.tag;
    }
  });
  EXPECT_EQ(got_tag, 17);
}

TEST(BcsMpiEdge, SelfSendWithinARank) {
  // A rank sending to itself must not deadlock: the non-blocking send is
  // matched against the rank's own posted receive in the same MSM.
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = 2;
  net::Cluster cluster(ccfg);
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  int got = 0;
  bcsmpi::runJob(cluster, cfg, {0, 1}, [&](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 99;
      int in = 0;
      mpi::Request rr = comm.irecv(&in, sizeof in, 0, 0);
      mpi::Request sr = comm.isend(&v, sizeof v, 0, 0);
      comm.wait(rr);
      comm.wait(sr);
      got = in;
    }
  });
  EXPECT_EQ(got, 99);
}

TEST(BcsMpiEdge, ManyTinyMessagesInOneSliceRespectDescriptorCosts) {
  // 64 one-byte messages posted together all exchange in one DEM and
  // transfer in one slice (budget is byte-based, not count-based).
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = 2;
  net::Cluster cluster(ccfg);
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);
  sim::SimTime span = 0;
  bcsmpi::launchJob(*runtime, {0, 1}, [&](mpi::Comm& comm) {
    std::vector<char> vals(64);
    std::vector<mpi::Request> reqs;
    if (comm.rank() == 0) {
      const sim::SimTime t0 = comm.now();
      for (int i = 0; i < 64; ++i) {
        vals[static_cast<std::size_t>(i)] = static_cast<char>(i);
        reqs.push_back(
            comm.isend(&vals[static_cast<std::size_t>(i)], 1, 1, i));
      }
      comm.waitall(reqs);
      span = comm.now() - t0;
    } else {
      for (int i = 0; i < 64; ++i) {
        reqs.push_back(comm.irecv(&vals[static_cast<std::size_t>(i)], 1, 0, i));
      }
      comm.waitall(reqs);
      for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(vals[static_cast<std::size_t>(i)], static_cast<char>(i));
      }
    }
  });
  cluster.run();
  ASSERT_TRUE(cluster.allProcessesFinished());
  EXPECT_EQ(runtime->stats().chunks_transferred, 64u);
  // All 64 fit comfortably within ~2 slices of protocol latency.
  EXPECT_LT(span, 3 * cfg.time_slice);
}

}  // namespace
