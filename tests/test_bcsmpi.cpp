// Integration tests for the BCS-MPI runtime: correctness of the globally
// scheduled point-to-point and collective protocols, plus the timing
// behaviours the paper states (1.5-slice average blocking delay, full
// overlap for non-blocking operations, chunking of large messages).

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "bcsmpi/comm.hpp"
#include "bcsmpi/runtime.hpp"
#include "mpi/comm.hpp"
#include "net/cluster.hpp"

namespace {

using namespace bcs;
using bcsmpi::BcsMpiConfig;
using bcsmpi::runJob;
using baselineMapping = std::vector<int>;
using mpi::Comm;
using sim::msec;
using sim::usec;

net::ClusterConfig smallCluster(int nodes = 8) {
  net::ClusterConfig cfg;
  cfg.num_compute_nodes = nodes;
  return cfg;
}

BcsMpiConfig fastConfig() {
  BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);  // keep unit tests snappy
  return cfg;
}

std::vector<int> oneRankPerNode(int nprocs) {
  std::vector<int> m(static_cast<std::size_t>(nprocs));
  std::iota(m.begin(), m.end(), 0);
  return m;
}

TEST(BcsMpi, PingPongDeliversPayload) {
  net::Cluster cluster(smallCluster());
  std::vector<int> received;
  runJob(cluster, fastConfig(), oneRankPerNode(2), [&](Comm& comm) {
    std::vector<int> buf(256);
    if (comm.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 500);
      comm.sendv<int>(buf, 1, /*tag=*/7);
    } else {
      comm.recvv<int>(buf, 0, 7);
      received = buf;
    }
  });
  ASSERT_EQ(received.size(), 256u);
  EXPECT_EQ(received[0], 500);
  EXPECT_EQ(received[255], 755);
}

TEST(BcsMpi, BlockingDelayIsAboutOneAndAHalfSlices) {
  // §3.1: "the delay per blocking primitive is 1.5 time slices on average".
  // Post at a random point of slice i-1 (expected half a slice before the
  // boundary), scheduled in slice i, restarted at the start of slice i+1.
  net::Cluster cluster(smallCluster());
  BcsMpiConfig cfg = fastConfig();
  std::vector<double> delays;
  runJob(cluster, cfg, oneRankPerNode(2), [&](Comm& comm) {
    char c = 0;
    // Misalign successive iterations against the slice grid.
    for (int i = 0; i < 40; ++i) {
      comm.compute(usec(137));
      if (comm.rank() == 0) {
        const sim::SimTime t0 = comm.now();
        comm.send(&c, 1, 1, 0);
        delays.push_back(sim::toUsec(comm.now() - t0));
      } else {
        comm.recv(&c, 1, 0, 0);
      }
    }
  });
  ASSERT_EQ(delays.size(), 40u);
  double mean = 0;
  for (double d : delays) mean += d;
  mean /= static_cast<double>(delays.size());
  const double slice_us = sim::toUsec(cfg.time_slice);
  // Sender also waits for the receiver's own slice alignment; the average
  // must sit near 1.5 slices (tolerate 1.0-2.5).
  EXPECT_GT(mean, 1.0 * slice_us);
  EXPECT_LT(mean, 2.5 * slice_us);
}

TEST(BcsMpi, NonBlockingOverlapsWithComputation) {
  // §3.2: with Isend/Irecv posted early and enough computation, the wait
  // returns without any slice penalty — communication fully overlapped.
  net::Cluster cluster(smallCluster());
  sim::SimTime wait_cost = -1;
  runJob(cluster, fastConfig(), oneRankPerNode(2), [&](Comm& comm) {
    std::vector<char> out(4096, 'a'), in(4096);
    const int peer = 1 - comm.rank();
    std::vector<mpi::Request> reqs;
    reqs.push_back(comm.irecvv<char>(in, peer, 0));
    reqs.push_back(comm.isendv<char>(std::span<const char>(out), peer, 0));
    comm.compute(msec(5));  // 10 slices: transfer done long before
    const sim::SimTime t0 = comm.now();
    comm.waitall(reqs);
    if (comm.rank() == 0) wait_cost = comm.now() - t0;
  });
  ASSERT_GE(wait_cost, 0);
  EXPECT_LT(wait_cost, usec(5));  // no blocking: just the bookkeeping
}

TEST(BcsMpi, UnexpectedSendBuffersUntilReceivePosted) {
  net::Cluster cluster(smallCluster());
  int got = 0;
  runJob(cluster, fastConfig(), oneRankPerNode(2), [&](Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 41;
      comm.send(&v, sizeof v, 1, 5);
    } else {
      comm.compute(msec(4));
      int v = 0;
      comm.recv(&v, sizeof v, 0, 5);
      got = v + 1;
    }
  });
  EXPECT_EQ(got, 42);
}

TEST(BcsMpi, LargeMessageIsChunkedAcrossSlices) {
  net::Cluster cluster(smallCluster());
  BcsMpiConfig cfg = fastConfig();
  // 512 KiB at 64 KiB per chunk -> 8 chunks; budget allows ~1 chunk per
  // message per slice, so the transfer spans ~8 slices.
  const std::size_t bytes = 512 * 1024;
  bool ok = false;
  sim::SimTime send_span = 0;
  std::uint64_t chunks = 0;
  {
    auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);
    std::vector<sim::SimTime> finish;
    bcsmpi::launchJob(*runtime, oneRankPerNode(2), [&](Comm& comm) {
      std::vector<char> buf(bytes);
      if (comm.rank() == 0) {
        for (std::size_t i = 0; i < bytes; ++i) {
          buf[i] = static_cast<char>(i * 31 + 7);
        }
        const sim::SimTime t0 = comm.now();
        comm.send(buf.data(), bytes, 1, 0);
        send_span = comm.now() - t0;
      } else {
        comm.recv(buf.data(), bytes, 0, 0);
        ok = true;
        for (std::size_t i = 0; i < bytes; ++i) {
          if (buf[i] != static_cast<char>(i * 31 + 7)) {
            ok = false;
            break;
          }
        }
      }
    });
    cluster.run();
    ASSERT_TRUE(cluster.allProcessesFinished());
    chunks = runtime->stats().chunks_transferred;
  }
  EXPECT_TRUE(ok);
  EXPECT_GE(chunks, 8u);
  // The transfer must span at least ~8 slices.
  EXPECT_GT(send_span, 8 * cfg.time_slice);
}

TEST(BcsMpi, TagAndSourceSelectivity) {
  net::Cluster cluster(smallCluster());
  std::vector<int> order;
  runJob(cluster, fastConfig(), oneRankPerNode(3), [&](Comm& comm) {
    if (comm.rank() == 1) {
      const int v = 111;
      comm.compute(msec(2));  // arrives later
      comm.send(&v, sizeof v, 0, 1);
    } else if (comm.rank() == 2) {
      const int v = 222;
      comm.send(&v, sizeof v, 0, 2);
    } else {
      int a = 0, b = 0;
      comm.recv(&a, sizeof a, 1, 1);
      order.push_back(a);
      comm.recv(&b, sizeof b, 2, 2);
      order.push_back(b);
    }
  });
  EXPECT_EQ(order, (std::vector<int>{111, 222}));
}

TEST(BcsMpi, WildcardReceive) {
  net::Cluster cluster(smallCluster());
  std::vector<int> got;
  runJob(cluster, fastConfig(), oneRankPerNode(3), [&](Comm& comm) {
    if (comm.rank() > 0) {
      const int v = comm.rank() * 10;
      if (comm.rank() == 2) comm.compute(msec(2));
      comm.send(&v, sizeof v, 0, 3);
    } else {
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        mpi::Status st;
        comm.recv(&v, sizeof v, mpi::kAnySource, mpi::kAnyTag, &st);
        got.push_back(v);
        EXPECT_EQ(st.source * 10, v);
        EXPECT_EQ(st.bytes, sizeof v);
      }
    }
  });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 10);
  EXPECT_EQ(got[1], 20);
}

TEST(BcsMpi, NonOvertakingSamePair) {
  net::Cluster cluster(smallCluster());
  std::vector<int> got;
  runJob(cluster, fastConfig(), oneRankPerNode(2), [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<mpi::Request> reqs;
      std::vector<int> vals(10);
      for (int i = 0; i < 10; ++i) {
        vals[static_cast<std::size_t>(i)] = i;
        reqs.push_back(
            comm.isend(&vals[static_cast<std::size_t>(i)], sizeof(int), 1, 0));
      }
      comm.waitall(reqs);
    } else {
      for (int i = 0; i < 10; ++i) {
        int v = -1;
        comm.recv(&v, sizeof v, 0, 0);
        got.push_back(v);
      }
    }
  });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(BcsMpi, ProbeSeesExchangedDescriptor) {
  net::Cluster cluster(smallCluster());
  std::size_t probed = 0;
  runJob(cluster, fastConfig(), oneRankPerNode(2), [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<char> payload(333);
      comm.send(payload.data(), payload.size(), 1, 9);
    } else {
      mpi::Status st;
      EXPECT_TRUE(comm.probe(0, 9, &st, /*blocking=*/true));
      probed = st.bytes;
      std::vector<char> buf(st.bytes);
      comm.recv(buf.data(), buf.size(), st.source, st.tag);
    }
  });
  EXPECT_EQ(probed, 333u);
}

TEST(BcsMpi, BarrierSynchronizes) {
  net::Cluster cluster(smallCluster());
  std::vector<sim::SimTime> after(6);
  runJob(cluster, fastConfig(), oneRankPerNode(6), [&](Comm& comm) {
    comm.compute(msec(comm.rank()));
    comm.barrier();
    after[static_cast<std::size_t>(comm.rank())] = comm.now();
  });
  for (int r = 0; r < 6; ++r) {
    EXPECT_GE(after[static_cast<std::size_t>(r)], msec(5));
    // All released at the same slice boundary.
    EXPECT_NEAR(static_cast<double>(after[static_cast<std::size_t>(r)]),
                static_cast<double>(after[0]), usec(50));
  }
}

TEST(BcsMpi, BcastFromNonZeroRoot) {
  net::Cluster cluster(smallCluster());
  std::vector<std::vector<int>> results(5);
  runJob(cluster, fastConfig(), oneRankPerNode(5), [&](Comm& comm) {
    std::vector<int> data(64);
    if (comm.rank() == 3) std::iota(data.begin(), data.end(), 40);
    comm.bcast(data.data(), data.size() * sizeof(int), /*root=*/3);
    results[static_cast<std::size_t>(comm.rank())] = data;
  });
  for (const auto& r : results) {
    ASSERT_EQ(r.size(), 64u);
    EXPECT_EQ(r[0], 40);
    EXPECT_EQ(r[63], 103);
  }
}

TEST(BcsMpi, NicReduceMatchesHostArithmetic) {
  // The RH reduces with softfloat on the NIC; results must equal host IEEE
  // arithmetic bit for bit.
  net::Cluster cluster(smallCluster());
  std::vector<double> nic_result;
  runJob(cluster, fastConfig(), oneRankPerNode(7), [&](Comm& comm) {
    std::vector<double> contrib(8);
    for (std::size_t i = 0; i < contrib.size(); ++i) {
      contrib[i] = 0.1 * static_cast<double>(comm.rank() + 1) +
                   static_cast<double>(i);
    }
    std::vector<double> result(8, -1);
    comm.reduce(contrib.data(), result.data(), 8, mpi::Datatype::kFloat64,
                mpi::ReduceOp::kSum, /*root=*/0);
    if (comm.rank() == 0) nic_result = result;
  });
  ASSERT_EQ(nic_result.size(), 8u);
  // Reference: host arithmetic in the same (tree) order is not required —
  // softfloat addition is exact-rounded, so any order differs by at most
  // the usual FP reassociation.  Sum of ranks' 0.1*(r+1) = 0.1*28 = 2.8.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(nic_result[i], 2.8 + 7.0 * static_cast<double>(i), 1e-9);
  }
}

TEST(BcsMpi, AllreduceDeliversEverywhere) {
  net::Cluster cluster(smallCluster());
  std::vector<std::int64_t> sums(8, 0);
  runJob(cluster, fastConfig(), oneRankPerNode(8), [&](Comm& comm) {
    sums[static_cast<std::size_t>(comm.rank())] = comm.allreduceOne(
        static_cast<std::int64_t>(comm.rank() + 1), mpi::ReduceOp::kSum);
  });
  for (auto s : sums) EXPECT_EQ(s, 36);
}

TEST(BcsMpi, ReduceMinMaxIntAndFloat) {
  net::Cluster cluster(smallCluster());
  std::int64_t imin = 0;
  float fmax = 0;
  runJob(cluster, fastConfig(), oneRankPerNode(5), [&](Comm& comm) {
    const std::int64_t iv = 100 - 7 * comm.rank();
    std::int64_t ir = 0;
    comm.reduce(&iv, &ir, 1, mpi::Datatype::kInt64, mpi::ReduceOp::kMin, 0);
    const float fv = 1.5f * static_cast<float>(comm.rank());
    float fr = 0;
    comm.reduce(&fv, &fr, 1, mpi::Datatype::kFloat32, mpi::ReduceOp::kMax, 0);
    if (comm.rank() == 0) {
      imin = ir;
      fmax = fr;
    }
  });
  EXPECT_EQ(imin, 100 - 28);
  EXPECT_FLOAT_EQ(fmax, 6.0f);
}

TEST(BcsMpi, TwoRanksPerNode) {
  net::Cluster cluster(smallCluster(4));
  std::vector<int> node_of_rank = {0, 0, 1, 1, 2, 2, 3, 3};
  std::vector<std::int64_t> sums(8, 0);
  runJob(cluster, fastConfig(), node_of_rank, [&](Comm& comm) {
    // Mix of p2p (cross-node and same-node) and a collective.
    const int peer = comm.rank() ^ 1;  // same-node partner
    int v = comm.rank() * 3;
    int got = -1;
    mpi::Request rr = comm.irecv(&got, sizeof got, peer, 0);
    mpi::Request sr = comm.isend(&v, sizeof v, peer, 0);
    comm.wait(rr);
    comm.wait(sr);
    EXPECT_EQ(got, peer * 3);
    sums[static_cast<std::size_t>(comm.rank())] = comm.allreduceOne(
        static_cast<std::int64_t>(comm.rank()), mpi::ReduceOp::kSum);
  });
  for (auto s : sums) EXPECT_EQ(s, 28);
}

TEST(BcsMpi, ComposedCollectivesWork) {
  net::Cluster cluster(smallCluster());
  const int P = 4;
  std::vector<bool> ok(static_cast<std::size_t>(P), false);
  runJob(cluster, fastConfig(), oneRankPerNode(P), [&](Comm& comm) {
    const int r = comm.rank();
    bool good = true;
    // alltoall: rank r sends 100*r + d to destination d.
    std::vector<int> send(static_cast<std::size_t>(P));
    std::vector<int> recv(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) {
      send[static_cast<std::size_t>(d)] = 100 * r + d;
    }
    comm.alltoall(send.data(), sizeof(int), recv.data());
    for (int s = 0; s < P; ++s) {
      good = good && recv[static_cast<std::size_t>(s)] == 100 * s + r;
    }
    // allgather
    const int contrib = r * r + 1;
    std::vector<int> all(static_cast<std::size_t>(P), -1);
    comm.allgather(&contrib, sizeof(int), all.data());
    for (int i = 0; i < P; ++i) {
      good = good && all[static_cast<std::size_t>(i)] == i * i + 1;
    }
    ok[static_cast<std::size_t>(r)] = good;
  });
  for (bool b : ok) EXPECT_TRUE(b);
}

TEST(BcsMpi, DemMsmTakeAboutPaperBudget) {
  // §4.3: the two global-message-scheduling microphases take ~125 us.
  // Verify via trace: P2P strobe minus DEM strobe on an active slice.
  net::Cluster cluster(smallCluster());
  cluster.trace().enable();
  runJob(cluster, fastConfig(), oneRankPerNode(2), [&](Comm& comm) {
    char c = 0;
    if (comm.rank() == 0) {
      comm.send(&c, 1, 1, 0);
    } else {
      comm.recv(&c, 1, 0, 0);
    }
  });
  const auto& recs = cluster.trace().records();
  sim::SimTime dem = -1, p2p = -1;
  for (const auto& r : recs) {
    if (r.category != sim::TraceCategory::kStrobe) continue;
    if (r.message.find("DEM") != std::string::npos && dem < 0) dem = r.time;
    if (r.message.find("P2P") != std::string::npos && p2p < 0) p2p = r.time;
  }
  ASSERT_GE(dem, 0);
  ASSERT_GE(p2p, 0);
  const double span_us = sim::toUsec(p2p - dem);
  EXPECT_GT(span_us, 100.0);
  EXPECT_LT(span_us, 160.0);
}

TEST(BcsMpi, SliceGridIsPeriodic) {
  net::Cluster cluster(smallCluster());
  BcsMpiConfig cfg = fastConfig();
  std::uint64_t slices = 0;
  sim::SimTime span = 0;
  {
    auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);
    bcsmpi::launchJob(*runtime, oneRankPerNode(2), [&](Comm& comm) {
      comm.compute(msec(10));
      comm.barrier();
    });
    cluster.run();
    ASSERT_TRUE(cluster.allProcessesFinished());
    slices = runtime->stats().slices;
    span = cluster.engine().now();
  }
  // ~10 ms of work at 500 us slices: at least 20 slices, and the strobe
  // count stays close to elapsed/period (no runaway strobing).
  EXPECT_GE(slices, 20u);
  EXPECT_LE(slices, static_cast<std::uint64_t>(span / cfg.time_slice) + 3);
}

TEST(BcsMpi, GangSchedulingSharesMachineBetweenJobs) {
  // Two jobs on the same nodes with gang scheduling: both make progress
  // and finish; each sees roughly half the CPU.
  net::Cluster cluster(smallCluster(4));
  BcsMpiConfig cfg = fastConfig();
  cfg.gang_scheduling = true;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);
  std::vector<sim::SimTime> fin_a, fin_b;
  auto body = [](Comm& comm) {
    for (int i = 0; i < 10; ++i) {
      comm.compute(msec(1));
      comm.barrier();
    }
  };
  bcsmpi::launchJob(*runtime, {0, 1, 2, 3}, body, &fin_a);
  bcsmpi::launchJob(*runtime, {0, 1, 2, 3}, body, &fin_b);
  cluster.run();
  ASSERT_TRUE(cluster.allProcessesFinished());
  // Serial work is 10 ms per job; with slice-level gang sharing both jobs
  // take at least ~2x minus overlap slack, and both complete.
  for (auto t : fin_a) EXPECT_GT(t, msec(15));
  for (auto t : fin_b) EXPECT_GT(t, msec(15));
}

TEST(BcsMpi, ManySmallMessagesAllToOne) {
  net::Cluster cluster(smallCluster());
  std::int64_t total = 0;
  runJob(cluster, fastConfig(), oneRankPerNode(8), [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::int64_t sum = 0;
      for (int s = 1; s < 8; ++s) {
        for (int k = 0; k < 5; ++k) {
          std::int64_t v = 0;
          comm.recv(&v, sizeof v, s, k);
          sum += v;
        }
      }
      total = sum;
    } else {
      std::vector<mpi::Request> reqs;
      std::vector<std::int64_t> vals(5);
      for (int k = 0; k < 5; ++k) {
        vals[static_cast<std::size_t>(k)] = comm.rank() * 100 + k;
        reqs.push_back(comm.isend(&vals[static_cast<std::size_t>(k)],
                                  sizeof(std::int64_t), 0, k));
      }
      comm.waitall(reqs);
    }
  });
  std::int64_t expect = 0;
  for (int s = 1; s < 8; ++s) {
    for (int k = 0; k < 5; ++k) expect += s * 100 + k;
  }
  EXPECT_EQ(total, expect);
}

TEST(BcsMpi, StressRandomizedExchangePattern) {
  // Property-style: a randomized but deterministic pattern of sends with
  // varying sizes and tags; every byte must arrive intact.
  net::Cluster cluster(smallCluster());
  const int P = 6;
  std::vector<bool> ok(static_cast<std::size_t>(P), false);
  runJob(cluster, fastConfig(), oneRankPerNode(P), [&](Comm& comm) {
    sim::Rng rng(static_cast<std::uint64_t>(comm.rank()) + 77);
    const int r = comm.rank();
    const int right = (r + 1) % P;
    const int left = (r + P - 1) % P;
    bool good = true;
    for (int round = 0; round < 6; ++round) {
      const std::size_t send_n = 64 + (static_cast<std::size_t>(r) * 1315 +
                                       static_cast<std::size_t>(round) * 7919) %
                                          30000;
      const std::size_t recv_n = 64 + (static_cast<std::size_t>(left) * 1315 +
                                       static_cast<std::size_t>(round) * 7919) %
                                          30000;
      std::vector<std::uint8_t> out(send_n), in(recv_n, 0);
      for (std::size_t i = 0; i < send_n; ++i) {
        out[i] = static_cast<std::uint8_t>((i * 131 + static_cast<std::size_t>(r) +
                                            static_cast<std::size_t>(round)) &
                                           0xFF);
      }
      mpi::Request rr = comm.irecv(in.data(), in.size(), left, round);
      mpi::Request sr = comm.isend(out.data(), out.size(), right, round);
      if (rng.below(2) == 0) comm.compute(usec(rng.below(900) + 10));
      comm.wait(rr);
      comm.wait(sr);
      for (std::size_t i = 0; i < recv_n; ++i) {
        if (in[i] != static_cast<std::uint8_t>(
                         (i * 131 + static_cast<std::size_t>(left) +
                          static_cast<std::size_t>(round)) &
                         0xFF)) {
          good = false;
          break;
        }
      }
    }
    ok[static_cast<std::size_t>(r)] = good;
  });
  for (bool b : ok) EXPECT_TRUE(b);
}


TEST(BcsMpi, CheckpointAtSliceBoundaryIsConsistent) {
  // §1: the communication state of all processes is known at the beginning
  // of every time slice — a checkpoint taken there needs no message
  // draining.  Verify the snapshot's global request accounting while a
  // large chunked transfer is mid-flight.
  net::Cluster cluster(smallCluster());
  BcsMpiConfig cfg = fastConfig();
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);
  std::vector<bcsmpi::CheckpointRecord> records;
  bcsmpi::launchJob(*runtime, oneRankPerNode(2), [&](Comm& comm) {
    std::vector<char> buf(512 * 1024);
    if (comm.rank() == 0) {
      comm.send(buf.data(), buf.size(), 1, 0);
    } else {
      comm.recv(buf.data(), buf.size(), 0, 0);
    }
  });
  // Ask for checkpoints while the chunked transfer is in progress.
  cluster.engine().at(msec(1), [&] {
    runtime->requestCheckpoint(
        [&](const bcsmpi::CheckpointRecord& r) { records.push_back(r); });
  });
  cluster.engine().at(msec(2), [&] {
    runtime->requestCheckpoint(
        [&](const bcsmpi::CheckpointRecord& r) { records.push_back(r); });
  });
  cluster.run();
  ASSERT_TRUE(cluster.allProcessesFinished());
  ASSERT_EQ(records.size(), 2u);

  for (const auto& r : records) {
    ASSERT_EQ(r.jobs.size(), 1u);
    EXPECT_EQ(r.jobs[0].ranks, 2);
    // One send + one recv posted in total.
    EXPECT_EQ(r.jobs[0].requests_posted, 2u);
    // Mid-transfer: not yet completed, and the match registers as a
    // partially moved message on the receiving node.
    EXPECT_EQ(r.jobs[0].requests_completed, 0u);
    std::size_t partial = 0, moved = 0;
    for (const auto& n : r.nodes) {
      partial += n.partial_messages;
      moved += n.partial_bytes_moved;
    }
    EXPECT_EQ(partial, 1u);
    EXPECT_GT(moved, 0u);
    EXPECT_FALSE(r.quiescent);
  }
  // Progress is visible between the two checkpoints.
  std::size_t moved0 = 0, moved1 = 0;
  for (const auto& n : records[0].nodes) moved0 += n.partial_bytes_moved;
  for (const auto& n : records[1].nodes) moved1 += n.partial_bytes_moved;
  EXPECT_GT(moved1, moved0);
}

TEST(BcsMpi, CheckpointOfIdleMachineIsQuiescent) {
  net::Cluster cluster(smallCluster());
  BcsMpiConfig cfg = fastConfig();
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);
  bool quiescent = false;
  std::uint64_t completed = 0;
  bcsmpi::launchJob(*runtime, oneRankPerNode(2), [&](Comm& comm) {
    char c = 0;
    if (comm.rank() == 0) {
      comm.send(&c, 1, 1, 0);
    } else {
      comm.recv(&c, 1, 0, 0);
    }
    comm.compute(msec(4));  // long idle tail after communication finished
  });
  cluster.engine().at(msec(3), [&] {
    runtime->requestCheckpoint([&](const bcsmpi::CheckpointRecord& r) {
      quiescent = r.quiescent;
      completed = r.jobs[0].requests_completed;
    });
  });
  cluster.run();
  ASSERT_TRUE(cluster.allProcessesFinished());
  EXPECT_TRUE(quiescent);
  EXPECT_EQ(completed, 2u);
}
}  // namespace
