// Property-style parameterized suites over the protocol's key invariants:
//
//  * blocking delay stays within [1, 2] time slices for any slice length;
//  * chunk accounting: a B-byte message moves in exactly
//    ceil(B / min(chunk, budget-share)) chunks and its transfer spans at
//    least (chunks - 1) slices;
//  * fabric endpoint contention conserves bytes (no transfer finishes
//    faster than the serialization bound) across all network presets;
//  * randomized message soups deliver every byte intact under both
//    implementations for many (seed, size) combinations.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <numeric>
#include <tuple>
#include <utility>
#include <vector>

#include "apps/selfsched.hpp"
#include "baseline/baseline.hpp"
#include "bcsmpi/comm.hpp"
#include "bcsmpi/matching.hpp"
#include "net/cluster.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace {

using namespace bcs;
using sim::msec;
using sim::usec;

// ---- blocking delay bounded by [1, 2] slices for any slice length ----

class BlockingDelayBounds : public ::testing::TestWithParam<double> {};

TEST_P(BlockingDelayBounds, StaysWithinOneToTwoSlices) {
  const double slice_us = GetParam();
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = 2;
  net::Cluster cluster(ccfg);
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  cfg.time_slice = usec(slice_us);
  if (cfg.dem_floor + cfg.msm_floor > cfg.time_slice / 2) {
    cfg.dem_floor = cfg.time_slice / 8;
    cfg.msm_floor = cfg.time_slice / 8;
    cfg.dem_drain_window = cfg.dem_floor / 4;
  }
  sim::Accumulator acc;
  bcsmpi::runJob(cluster, cfg, {0, 1}, [&](mpi::Comm& comm) {
    char c = 0;
    for (int i = 0; i < 30; ++i) {
      comm.compute(usec(31 + 83 * (i % 11)));  // scan phases
      if (comm.rank() == 0) {
        const sim::SimTime t0 = comm.now();
        comm.send(&c, 1, 1, 0);
        acc.add(sim::toUsec(comm.now() - t0) / slice_us);
      } else {
        comm.recv(&c, 1, 0, 0);
      }
    }
  });
  // Individual delays live in [1, 2] slices (+ microphase epsilon); the
  // mean sits near 1.5.
  EXPECT_GE(acc.min(), 0.95);
  EXPECT_LE(acc.max(), 2.15);
  EXPECT_GT(acc.mean(), 1.2);
  EXPECT_LT(acc.mean(), 1.8);
}

INSTANTIATE_TEST_SUITE_P(SliceLengths, BlockingDelayBounds,
                         ::testing::Values(250.0, 500.0, 750.0, 1000.0),
                         [](const auto& info) {
                           return "us" + std::to_string(
                                             static_cast<int>(info.param));
                         });

// ---- chunk accounting ----

class ChunkAccounting
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(ChunkAccounting, ChunkCountAndSliceSpanMatchTheModel) {
  const auto [message_kb, chunk_kb] = GetParam();
  const std::size_t bytes = message_kb << 10;
  const std::size_t chunk = chunk_kb << 10;

  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = 2;
  net::Cluster cluster(ccfg);
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  cfg.chunk_bytes = chunk;
  cfg.slice_byte_budget = chunk;  // exactly one chunk per slice
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);
  sim::SimTime span = 0;
  bcsmpi::launchJob(*runtime, {0, 1}, [&](mpi::Comm& comm) {
    std::vector<char> buf(bytes, 'x');
    if (comm.rank() == 0) {
      const sim::SimTime t0 = comm.now();
      comm.send(buf.data(), bytes, 1, 0);
      span = comm.now() - t0;
    } else {
      comm.recv(buf.data(), bytes, 0, 0);
    }
  });
  cluster.run();
  ASSERT_TRUE(cluster.allProcessesFinished());

  const auto expected_chunks =
      static_cast<std::uint64_t>((bytes + chunk - 1) / chunk);
  EXPECT_EQ(runtime->stats().chunks_transferred, expected_chunks);
  if (expected_chunks > 1) {
    // One chunk per slice: the send occupies at least chunks-1 full slices.
    EXPECT_GE(span, static_cast<sim::SimTime>(expected_chunks - 1) *
                        cfg.time_slice);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndChunks, ChunkAccounting,
    ::testing::Values(std::make_tuple(16u, 64u), std::make_tuple(64u, 64u),
                      std::make_tuple(65u, 64u), std::make_tuple(256u, 64u),
                      std::make_tuple(256u, 32u), std::make_tuple(96u, 16u)),
    [](const auto& info) {
      return "msg" + std::to_string(std::get<0>(info.param)) + "k_chunk" +
             std::to_string(std::get<1>(info.param)) + "k";
    });

// ---- fabric serialization bound across all presets ----

class FabricSerialization : public ::testing::TestWithParam<int> {};

TEST_P(FabricSerialization, TransfersRespectTheSerializationBound) {
  net::NetworkParams params;
  switch (GetParam()) {
    case 0: params = net::NetworkParams::qsnet(); break;
    case 1: params = net::NetworkParams::gigabitEthernet(); break;
    case 2: params = net::NetworkParams::myrinet(); break;
    case 3: params = net::NetworkParams::infiniband(); break;
    default: params = net::NetworkParams::bluegeneL(); break;
  }
  sim::Engine eng;
  net::Fabric fabric(eng, params, 8);
  // 4 concurrent 256 KiB transfers into node 0: the last completion cannot
  // beat total_bytes / effective_bandwidth.
  const std::size_t bytes = 256 << 10;
  sim::SimTime last = 0;
  int done = 0;
  for (int s = 1; s <= 4; ++s) {
    fabric.unicast(s, 0, bytes, [&] {
      last = eng.now();
      ++done;
    });
  }
  eng.run();
  EXPECT_EQ(done, 4);
  const double bound_ns =
      4.0 * static_cast<double>(bytes) / params.effectiveBandwidth();
  EXPECT_GE(static_cast<double>(last), bound_ns * 0.999);
}

std::string networkCaseName(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"qsnet", "gige", "myrinet",
                                       "infiniband", "bluegene"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, FabricSerialization,
                         ::testing::Range(0, 5), networkCaseName);

// ---- MSM matcher: envelope index vs reference quadratic matcher ----

// The envelope-hash match index (bcsmpi/matching.hpp) must produce the
// exact match sequence of the original quadratic matcher: visit receives in
// posting order, pair each with the lowest-posting-seq matching send (MPI
// non-overtaking).  Random soups cover wildcard source/tag receives,
// internal negative tags, and send arrival orders scrambled by simulated
// retransmission.
class MatcherEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

namespace matcher_ref {

using bcsmpi::RecvDescriptor;
using bcsmpi::SendDescriptor;
using MatchLog = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

// Verbatim port of the pre-index Runtime::matchDescriptors loop.
MatchLog quadratic(std::deque<RecvDescriptor> recvs,
                   std::deque<SendDescriptor> sends) {
  MatchLog log;
  for (auto rit = recvs.begin(); rit != recvs.end();) {
    auto sit = sends.end();
    for (auto cand = sends.begin(); cand != sends.end(); ++cand) {
      if (!bcsmpi::envelopeMatches(*rit, *cand)) continue;
      if (sit == sends.end() || cand->seq < sit->seq) sit = cand;
    }
    if (sit == sends.end()) {
      ++rit;
      continue;
    }
    log.emplace_back(rit->seq, sit->seq);
    sends.erase(sit);
    rit = recvs.erase(rit);
  }
  return log;
}

// The candidate-list pass from Runtime::matchDescriptors, driven through
// the public index API.
MatchLog indexed(bcsmpi::RecvMatchIndex& recvs, bcsmpi::SendMatchIndex& sends) {
  MatchLog log;
  std::vector<std::uint64_t> cand;
  sends.forEachEnvelope([&](const bcsmpi::EnvelopeKey& key) {
    if (const auto* bucket = recvs.bucketFor(key)) {
      cand.insert(cand.end(), bucket->begin(), bucket->end());
    }
  });
  cand.insert(cand.end(), recvs.wildcards().begin(), recvs.wildcards().end());
  std::sort(cand.begin(), cand.end());
  for (const std::uint64_t recv_seq : cand) {
    const RecvDescriptor* r = recvs.find(recv_seq);
    if (r == nullptr) continue;
    const SendDescriptor* s = sends.lowestSeqMatch(*r);
    if (s == nullptr) continue;
    log.emplace_back(recv_seq, s->seq);
    sends.take(s->seq);
    recvs.take(recv_seq);
  }
  return log;
}

}  // namespace matcher_ref

TEST_P(MatcherEquivalence, IndexMatcherReproducesQuadraticMatchSequence) {
  sim::Rng rng(GetParam());
  std::uint64_t next_seq = 0;

  bcsmpi::SendMatchIndex send_index;
  bcsmpi::RecvMatchIndex recv_index;
  std::deque<bcsmpi::SendDescriptor> ref_sends;
  std::deque<bcsmpi::RecvDescriptor> ref_recvs;

  // Several matching rounds against carried-over leftovers, like successive
  // MSM slices.
  for (int round = 0; round < 4; ++round) {
    std::vector<bcsmpi::SendDescriptor> sends;
    const int n_sends = 20 + static_cast<int>(rng.below(30));
    for (int i = 0; i < n_sends; ++i) {
      bcsmpi::SendDescriptor s;
      s.job = static_cast<int>(rng.below(2));
      s.dst_rank = static_cast<int>(rng.below(2));
      s.src_rank = static_cast<int>(rng.below(4));
      // Mostly small app tags; occasionally an internal negative tag.
      s.tag = rng.below(8) == 0 ? -2 : static_cast<int>(rng.below(3));
      s.bytes = 64;
      s.seq = ++next_seq;
      sends.push_back(s);
    }
    const int n_recvs = 20 + static_cast<int>(rng.below(30));
    std::vector<bcsmpi::RecvDescriptor> recvs;
    for (int i = 0; i < n_recvs; ++i) {
      bcsmpi::RecvDescriptor r;
      r.job = static_cast<int>(rng.below(2));
      r.dst_rank = static_cast<int>(rng.below(2));
      r.want_src = rng.below(5) == 0 ? mpi::kAnySource
                                     : static_cast<int>(rng.below(4));
      r.want_tag = rng.below(5) == 0
                       ? mpi::kAnyTag
                       : (rng.below(8) == 0 ? -2
                                            : static_cast<int>(rng.below(3)));
      r.bytes = 64;
      r.seq = ++next_seq;
      recvs.push_back(r);
    }
    // Sends arrive in scrambled order (retransmitted descriptors land
    // behind younger ones); receives become eligible in posting order.
    for (std::size_t i = sends.size(); i > 1; --i) {
      std::swap(sends[i - 1], sends[rng.below(i)]);
    }
    for (const auto& s : sends) {
      send_index.insert(s);
      ref_sends.push_back(s);
    }
    for (const auto& r : recvs) {
      recv_index.insert(r);
      ref_recvs.push_back(r);
    }

    const auto expected = matcher_ref::quadratic(ref_recvs, ref_sends);
    const auto actual = matcher_ref::indexed(recv_index, send_index);
    ASSERT_EQ(actual, expected) << "seed " << GetParam() << " round " << round;

    // Mirror the consumed pairs in the reference queues for the next round.
    for (const auto& [recv_seq, send_seq] : expected) {
      ref_recvs.erase(std::find_if(
          ref_recvs.begin(), ref_recvs.end(),
          [s = recv_seq](const auto& r) { return r.seq == s; }));
      ref_sends.erase(std::find_if(
          ref_sends.begin(), ref_sends.end(),
          [s = send_seq](const auto& d) { return d.seq == s; }));
    }
    ASSERT_EQ(send_index.size(), ref_sends.size());
    ASSERT_EQ(recv_index.size(), ref_recvs.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherEquivalence,
                         ::testing::Values(1u, 7u, 42u, 123u, 999u, 5309u,
                                           271828u, 3141592u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---- matching order is independent of within-slice arrival order ----

// The MSM visits receives by posting seq (the candidate list is sorted) and
// pairs each with the lowest-posting-seq send, so the match outcome is a
// pure function of the descriptor *set* — never of the order descriptors
// reached the index.  This is the replay-determinism property the verifier's
// wildcard-race check leans on: permuting every insertion order (sends and
// receives alike, as retransmission and NIC scheduling would) must
// reproduce the identical match log.
class MatcherPermutation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatcherPermutation, MatchLogIsInvariantUnderArrivalOrder) {
  sim::Rng gen_rng(0xfeedface);
  std::uint64_t next_seq = 0;

  // One fixed descriptor soup, built once from a constant seed (wildcards
  // included — the hardest case, since any source can satisfy them).
  std::vector<bcsmpi::SendDescriptor> sends;
  for (int i = 0; i < 40; ++i) {
    bcsmpi::SendDescriptor s;
    s.job = static_cast<int>(gen_rng.below(2));
    s.dst_rank = static_cast<int>(gen_rng.below(2));
    s.src_rank = static_cast<int>(gen_rng.below(4));
    s.tag = static_cast<int>(gen_rng.below(3));
    s.bytes = 64;
    s.seq = ++next_seq;
    sends.push_back(s);
  }
  std::vector<bcsmpi::RecvDescriptor> recvs;
  for (int i = 0; i < 40; ++i) {
    bcsmpi::RecvDescriptor r;
    r.job = static_cast<int>(gen_rng.below(2));
    r.dst_rank = static_cast<int>(gen_rng.below(2));
    r.want_src = gen_rng.below(4) == 0 ? mpi::kAnySource
                                       : static_cast<int>(gen_rng.below(4));
    r.want_tag =
        gen_rng.below(4) == 0 ? mpi::kAnyTag : static_cast<int>(gen_rng.below(3));
    r.bytes = 64;
    r.seq = ++next_seq;
    recvs.push_back(r);
  }

  auto run_in_order = [&](const std::vector<bcsmpi::SendDescriptor>& ss,
                          const std::vector<bcsmpi::RecvDescriptor>& rs) {
    bcsmpi::SendMatchIndex send_index;
    bcsmpi::RecvMatchIndex recv_index;
    for (const auto& s : ss) send_index.insert(s);
    for (const auto& r : rs) recv_index.insert(r);
    return matcher_ref::indexed(recv_index, send_index);
  };

  const auto baseline_log = run_in_order(sends, recvs);
  ASSERT_FALSE(baseline_log.empty());

  // Per-test-param seed drives the permutations; every arrival order must
  // reproduce the baseline log byte for byte.
  sim::Rng perm_rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    auto ps = sends;
    auto pr = recvs;
    for (std::size_t i = ps.size(); i > 1; --i) {
      std::swap(ps[i - 1], ps[perm_rng.below(i)]);
    }
    for (std::size_t i = pr.size(); i > 1; --i) {
      std::swap(pr[i - 1], pr[perm_rng.below(i)]);
    }
    EXPECT_EQ(run_in_order(ps, pr), baseline_log)
        << "seed " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherPermutation,
                         ::testing::Values(2u, 17u, 404u, 90210u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---- randomized message soup, both implementations ----

// Param: (implementation, seed, drop rate in basis points).  Nonzero drop
// rates exercise the retransmission path: descriptors and chunks are lost on
// the wire yet every byte must still arrive intact.  The baseline's traffic
// is not marked droppable (its model is a lossless network), so drops only
// bite the BCS-MPI runs.
class MessageSoup
    : public ::testing::TestWithParam<std::tuple<bool, std::uint64_t, int>> {};

TEST_P(MessageSoup, EveryByteArrivesIntact) {
  const auto [use_bcs, seed, drop_bp] = GetParam();
  const int P = 4;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.faults.dropRate(drop_bp / 10000.0);
  net::Cluster cluster(ccfg);
  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);

  // Deterministic plan shared by all ranks: `rounds` rounds; in each, every
  // rank sends one message of pseudo-random size to a pseudo-random peer.
  struct Msg {
    int from, to;
    std::size_t bytes;
  };
  sim::Rng plan_rng(seed);
  std::vector<std::vector<Msg>> plan;  // per round
  for (int round = 0; round < 5; ++round) {
    std::vector<Msg> msgs;
    for (int s = 0; s < P; ++s) {
      Msg m;
      m.from = s;
      m.to = static_cast<int>((s + 1 + plan_rng.below(P - 1)) % P);
      m.bytes = 1 + plan_rng.below(40000);
      msgs.push_back(m);
    }
    plan.push_back(msgs);
  }

  auto body = [&plan, P](mpi::Comm& comm) {
    const int me = comm.rank();
    for (std::size_t round = 0; round < plan.size(); ++round) {
      std::vector<mpi::Request> reqs;
      std::vector<std::vector<std::uint8_t>> outs, ins;
      std::vector<int> in_from;
      for (const auto& m : plan[round]) {
        if (m.to == me) {
          ins.emplace_back(m.bytes);
          in_from.push_back(m.from);
          reqs.push_back(comm.irecv(ins.back().data(), m.bytes, m.from,
                                    static_cast<int>(round)));
        }
      }
      for (const auto& m : plan[round]) {
        if (m.from == me) {
          outs.emplace_back(m.bytes);
          for (std::size_t i = 0; i < m.bytes; ++i) {
            outs.back()[i] =
                static_cast<std::uint8_t>((i * 7 + m.from + round) & 0xFF);
          }
          reqs.push_back(comm.isend(outs.back().data(), m.bytes, m.to,
                                    static_cast<int>(round)));
        }
      }
      comm.waitall(reqs);
      std::size_t idx = 0;
      for (const auto& m : plan[round]) {
        if (m.to != me) continue;
        const auto& buf = ins[idx];
        const int from = in_from[idx];
        ++idx;
        for (std::size_t i = 0; i < buf.size(); i += 997) {
          ASSERT_EQ(buf[i],
                    static_cast<std::uint8_t>((i * 7 + from + round) & 0xFF))
              << "round " << round << " from " << from << " byte " << i;
        }
      }
    }
    (void)P;
  };

  if (use_bcs) {
    bcsmpi::BcsMpiConfig cfg;
    cfg.runtime_init_overhead = usec(50);
    bcsmpi::runJob(cluster, cfg, map, body);
  } else {
    baseline::BaselineConfig cfg;
    cfg.init_overhead = usec(10);
    baseline::runJob(cluster, cfg, map, body);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndImpls, MessageSoup,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(11u, 97u, 4242u, 80808u),
                       ::testing::Values(0, 500)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "bcsmpi" : "baseline") +
             "_seed" + std::to_string(std::get<1>(info.param)) + "_drop" +
             std::to_string(std::get<2>(info.param)) + "bp";
    });

// ---- self-scheduler chunk-index conservation ----

// Param: (seed, drop rate in basis points, imbalance ramp ×10).  The
// fetch-add self-scheduler (DESIGN.md §11) must hand out every loop chunk
// exactly once no matter how the network behaves: drops force fetch-add
// retransmissions, but the counter lives behind a single MSM apply point,
// so a retried claim is re-*delivered*, never re-*applied*.  Crash-free
// plans only — with the counter intact, conservation must be exact.
class SelfSchedConservation
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int, int>> {};

TEST_P(SelfSchedConservation, EveryChunkIsExecutedExactlyOnce) {
  const auto [seed, drop_bp, ramp_x10] = GetParam();
  const int P = 6;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = seed;
  ccfg.faults.dropRate(drop_bp / 10000.0);
  net::Cluster cluster(ccfg);
  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);

  apps::SelfSchedConfig scfg;
  scfg.chunks = 48;
  scfg.chunk_batch = 1 + static_cast<int>(seed % 3);
  scfg.base_cost = usec(70);
  scfg.cost_ramp = ramp_x10 / 10.0;

  std::vector<apps::SelfSchedResult> results(P);
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  bcsmpi::runJob(cluster, cfg, map, [&](mpi::Comm& comm) {
    results[static_cast<std::size_t>(comm.rank())] =
        apps::selfSchedule(comm, scfg);
  });

  std::vector<int> times_run(static_cast<std::size_t>(scfg.chunks), 0);
  for (const auto& res : results) {
    for (int c : res.chunks) {
      ASSERT_GE(c, 0);
      ASSERT_LT(c, scfg.chunks);
      ++times_run[static_cast<std::size_t>(c)];
    }
  }
  for (int c = 0; c < scfg.chunks; ++c) {
    EXPECT_EQ(times_run[static_cast<std::size_t>(c)], 1)
        << "chunk " << c << " (seed " << seed << ", drop " << drop_bp
        << "bp)";
  }
  // Every rank agreed on the same owner map.
  for (int r = 1; r < P; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)].digest, results[0].digest);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDrops, SelfSchedConservation,
    ::testing::Combine(::testing::Values(3u, 271u, 65537u),
                       ::testing::Values(0, 300, 800),
                       ::testing::Values(10, 40)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_drop" +
             std::to_string(std::get<1>(info.param)) + "bp_ramp" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
