// Parallel slice execution conformance tier (ctest label: par).
//
// The contract under test: Engine::run(ParallelPolicy) is byte-identical to
// the serial reference engine — traces, stats and RNG streams — for any
// workload honouring the shard contract (shards interact only through
// handoff(), which lands at or past the next barrier).  The tier pins that
// claim four ways:
//   * a synthetic multi-shard workload (per-shard RNG streams, cross-shard
//     handoffs, in-window cancellation) at thread counts {1, 2, 4, 7};
//   * sharded fabric traffic (Fabric::setShardMap cross-shard deliveries);
//   * the full BCS runtime on the three heavyweight scenarios — the 32-node
//     fault soup, the Strobe-Sender-crash failover run, and a verifier-on
//     clean run — all of whose events live on shard 0, which must make the
//     parallel mode degenerate to exact serial behaviour;
//   * loud failure of every shard-contract violation.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"
#include "storm/storm.hpp"

namespace {

using namespace bcs;
using sim::msec;
using sim::SimTime;
using sim::usec;

const int kThreadCounts[] = {1, 2, 4, 7};

bcsmpi::BcsMpiConfig quickCfg() {
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  return cfg;
}

// ---------------------------------------------------------------------------
// Synthetic multi-shard workload: per-shard chains + RNG + cancels + handoffs
// ---------------------------------------------------------------------------

struct EngineOut {
  std::string trace;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  std::vector<std::uint64_t> acc;  ///< per-shard RNG digests
  SimTime end = 0;

  bool operator==(const EngineOut&) const = default;
};

/// Five shards, each running a 40-round event chain: every round draws from
/// the shard's own RNG stream, records a trace line, schedules the next
/// round at a jittered offset, arms a far-future timer and cancels the
/// previous one (exercising tombstones), and every 4th round hands a
/// message off to the next shard at the following 500 us barrier.
EngineOut runShardedChains(const sim::ParallelPolicy* policy) {
  constexpr int kShards = 5;
  constexpr int kRounds = 40;

  auto eng = std::make_shared<sim::Engine>();
  auto trace = std::make_shared<sim::Trace>();
  trace->enable();

  struct ShardState {
    sim::Rng rng{0};
    std::uint64_t acc = 0;
    sim::EventId timer;
  };
  auto st = std::make_shared<std::vector<ShardState>>(kShards);
  for (int s = 0; s < kShards; ++s) {
    (*st)[static_cast<std::size_t>(s)].rng.reseed(
        sim::deriveShardSeed(2026, static_cast<std::uint16_t>(s)));
  }

  auto step = std::make_shared<std::function<void(int, int)>>();
  // Recurse through a raw pointer: capturing the shared_ptr here would make
  // the function own itself and leak the whole capture set.  `step` outlives
  // the run below, so the pointer stays valid for every pending event.
  auto* stepp = step.get();
  *step = [eng, trace, st, stepp](int s, int round) {
    ShardState& me = (*st)[static_cast<std::size_t>(s)];
    const std::uint64_t draw = me.rng();
    me.acc ^= draw + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(round);
    trace->record(eng->now(), sim::TraceCategory::kApp, s,
                  "shard " + std::to_string(s) + " round " +
                      std::to_string(round) + " draw " +
                      std::to_string(draw & 0xFFFF));

    // Replace the shard's retransmit-style timer: cancel the old one (a
    // same-shard cancel, always legal) and arm a new one two slices out.
    eng->cancel(me.timer);
    me.timer = eng->at(eng->now() + usec(1000),
                       [trace, eng, s] {
                         trace->record(eng->now(), sim::TraceCategory::kApp, s,
                                       "timer fired on shard " +
                                           std::to_string(s));
                       });

    if (round % 4 == 0) {
      // Cross-shard message to the neighbour, landing past the next global
      // barrier (the 500 us grid) — the only legal inter-shard channel.
      const int peer = (s + 1) % kShards;
      const SimTime barrier = (eng->now() / usec(500) + 1) * usec(500);
      eng->handoff(static_cast<sim::ShardId>(peer),
                   barrier + static_cast<SimTime>(draw % 128),
                   [trace, eng, s, peer, round] {
                     trace->record(eng->now(), sim::TraceCategory::kApp, peer,
                                   "handoff from shard " + std::to_string(s) +
                                       " round " + std::to_string(round));
                   });
    }
    if (round + 1 < kRounds) {
      eng->at(eng->now() + usec(20) + static_cast<SimTime>(draw % 100),
              [stepp, s, round] { (*stepp)(s, round + 1); });
    }
  };

  for (int s = 0; s < kShards; ++s) {
    eng->atOn(static_cast<sim::ShardId>(s), usec(3) * s,
              [step, s] { (*step)(s, 0); });
  }

  EngineOut out;
  out.end = policy ? eng->run(*policy) : eng->run();
  out.trace = trace->dump();
  out.executed = eng->executedEvents();
  out.cancelled = eng->cancelledEvents();
  for (int s = 0; s < kShards; ++s) {
    out.acc.push_back((*st)[static_cast<std::size_t>(s)].acc);
  }
  return out;
}

TEST(ParallelEngine, ShardedChainsMatchSerialAtAllThreadCounts) {
  const EngineOut ref = runShardedChains(nullptr);
  ASSERT_FALSE(ref.trace.empty());
  ASSERT_GT(ref.executed, 200u);
  ASSERT_GT(ref.cancelled, 0u);
  for (int threads : kThreadCounts) {
    sim::ParallelPolicy policy;
    policy.threads = threads;
    policy.clamp_to_hardware = false;
    const EngineOut par = runShardedChains(&policy);
    EXPECT_EQ(par, ref) << "threads=" << threads;
  }
}

TEST(ParallelEngine, CustomBarrierScheduleMatchesSerial) {
  const EngineOut ref = runShardedChains(nullptr);
  sim::ParallelPolicy policy;
  policy.threads = 4;
  policy.clamp_to_hardware = false;
  // A finer, non-uniform barrier grid (250 us) must not change anything:
  // barriers are merge points, not events.
  policy.next_barrier = [](SimTime t) { return (t / usec(250) + 1) * usec(250); };
  EXPECT_EQ(runShardedChains(&policy), ref);
}

TEST(ParallelEngine, BoundedRunsResumeIdentically) {
  // Chop one run into three bounded segments, mixing serial and parallel
  // drains of the *same* engine state; the result must still match the
  // one-shot serial run.  (runShardedChains drives a fresh engine, so here
  // we just re-run it with bounded horizons.)
  constexpr int kShards = 3;
  auto build = [](sim::Engine& eng, sim::Trace& trace) {
    auto step = std::make_shared<std::function<void(int, int)>>();
    // `step` dies when build() returns, so here the *event* lambdas own the
    // function; the function itself holds only a weak self-reference (a
    // shared one would be a cycle and leak the capture set).
    std::weak_ptr<std::function<void(int, int)>> wstep = step;
    *step = [&eng, &trace, wstep](int s, int round) {
      trace.record(eng.now(), sim::TraceCategory::kApp, s,
                   "tick " + std::to_string(round));
      if (round + 1 < 30) {
        auto self = wstep.lock();
        eng.at(eng.now() + usec(37),
               [self, s, round] { (*self)(s, round + 1); });
      }
    };
    for (int s = 0; s < kShards; ++s) {
      eng.atOn(static_cast<sim::ShardId>(s), usec(s),
               [step, s] { (*step)(s, 0); });
    }
  };

  sim::Engine serial;
  sim::Trace serial_trace;
  serial_trace.enable();
  build(serial, serial_trace);
  serial.run();

  sim::Engine mixed;
  sim::Trace mixed_trace;
  mixed_trace.enable();
  build(mixed, mixed_trace);
  sim::ParallelPolicy policy;
  policy.threads = 3;
  policy.clamp_to_hardware = false;
  mixed.run(policy, usec(300));
  mixed.run(usec(700));  // serial middle segment
  mixed.run(policy);
  EXPECT_EQ(mixed_trace.dump(), serial_trace.dump());
  EXPECT_EQ(mixed.executedEvents(), serial.executedEvents());
}

// ---------------------------------------------------------------------------
// Sharded fabric traffic: cross-shard deliveries via Engine::handoff
// ---------------------------------------------------------------------------

struct TrafficOut {
  std::string trace;
  std::uint64_t unicasts = 0;
  std::uint64_t executed = 0;
  std::vector<int> received;
  SimTime end = 0;

  bool operator==(const TrafficOut&) const = default;
};

/// Eight nodes, each on its own shard, each streaming 12 unicasts to its
/// ring neighbour; the next send is triggered by egress-free (shard-local),
/// delivery lands on the destination's shard via handoff.  The 1 us window
/// is below QsNet's minimum end-to-end latency, so every delivery clears
/// the conservative-window contract.
TrafficOut runShardedTraffic(const sim::ParallelPolicy* policy) {
  constexpr int K = 8;
  constexpr int kRounds = 12;

  auto eng = std::make_shared<sim::Engine>();
  auto trace = std::make_shared<sim::Trace>();
  trace->enable();
  auto fabric = std::make_shared<net::Fabric>(
      *eng, net::NetworkParams::qsnet(), K, trace.get());
  std::vector<sim::ShardId> map(K);
  for (int n = 0; n < K; ++n) map[static_cast<std::size_t>(n)] = static_cast<sim::ShardId>(n);
  fabric->setShardMap(map);

  auto received = std::make_shared<std::vector<int>>(K, 0);
  auto send = std::make_shared<std::function<void(int, int)>>();
  auto* sendp = send.get();  // raw self-reference, see runShardedChains
  *send = [fabric, trace, eng, received, sendp](int n, int round) {
    if (round == kRounds) return;
    const int dst = (n + 1) % K;
    fabric->unicast(
        n, dst, 256 + 64 * static_cast<std::size_t>(n),
        /*on_delivered=*/[trace, eng, received, dst, n, round] {
          ++(*received)[static_cast<std::size_t>(dst)];
          trace->record(eng->now(), sim::TraceCategory::kApp, dst,
                        "got round " + std::to_string(round) + " from n" +
                            std::to_string(n));
        },
        /*on_injected=*/[sendp, n, round] { (*sendp)(n, round + 1); });
  };
  for (int n = 0; n < K; ++n) {
    eng->atOn(static_cast<sim::ShardId>(n), usec(n), [send, n] { (*send)(n, 0); });
  }

  TrafficOut out;
  out.end = policy ? eng->run(*policy) : eng->run();
  out.trace = trace->dump();
  out.unicasts = fabric->stats().unicasts;
  out.executed = eng->executedEvents();
  out.received = *received;
  return out;
}

TEST(ParallelEngine, ShardedFabricTrafficMatchesSerial) {
  const TrafficOut ref = runShardedTraffic(nullptr);
  ASSERT_EQ(ref.unicasts, 8u * 12u);
  for (int got : ref.received) EXPECT_EQ(got, 12);
  for (int threads : kThreadCounts) {
    sim::ParallelPolicy policy;
    policy.threads = threads;
    policy.clamp_to_hardware = false;
    policy.window = usec(1);  // <= min QsNet latency: lookahead is safe
    const TrafficOut par = runShardedTraffic(&policy);
    EXPECT_EQ(par, ref) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Shard-contract violations fail loudly
// ---------------------------------------------------------------------------

TEST(ParallelEngine, HandoffShortOfTheBarrierThrows) {
  sim::Engine eng;
  eng.atOn(1, usec(10), [&eng] {
    // The next 500 us barrier is at 500 us; targeting now+1 lands inside
    // this same window and must be rejected.
    eng.handoff(0, eng.now() + 1, [] {});
  });
  sim::ParallelPolicy policy;
  policy.threads = 2;
  policy.clamp_to_hardware = false;
  EXPECT_THROW(eng.run(policy), sim::SimError);
}

TEST(ParallelEngine, CrossShardAtOnDuringWindowThrows) {
  sim::Engine eng;
  eng.atOn(1, usec(10), [&eng] { eng.atOn(0, eng.now() + usec(1), [] {}); });
  sim::ParallelPolicy policy;
  policy.threads = 2;
  policy.clamp_to_hardware = false;
  EXPECT_THROW(eng.run(policy), sim::SimError);
}

TEST(ParallelEngine, CrossShardCancelDuringWindowThrows) {
  sim::Engine eng;
  const sim::EventId victim = eng.atOn(0, msec(5), [] {});
  eng.atOn(1, usec(10), [&eng, victim] { eng.cancel(victim); });
  sim::ParallelPolicy policy;
  policy.threads = 2;
  policy.clamp_to_hardware = false;
  EXPECT_THROW(eng.run(policy), sim::SimError);
}

TEST(ParallelEngine, BadPoliciesThrow) {
  sim::Engine eng;
  eng.at(usec(1), [] {});
  sim::ParallelPolicy no_threads;
  no_threads.threads = 0;
  EXPECT_THROW(eng.run(no_threads), sim::SimError);

  sim::ParallelPolicy stuck;
  stuck.threads = 2;
  stuck.clamp_to_hardware = false;
  stuck.next_barrier = [](SimTime t) { return t; };  // must advance
  EXPECT_THROW(eng.run(stuck), sim::SimError);
}

TEST(ParallelEngine, ShardMapRejectsFaultInjector) {
  sim::Engine eng;
  sim::Trace trace;
  net::Fabric fabric(eng, net::NetworkParams::qsnet(), 4, &trace);
  sim::FaultPlan plan;
  plan.dropRate(0.1);
  sim::FaultInjector inj(plan, 7);
  fabric.setFaultInjector(&inj);
  EXPECT_THROW(fabric.setShardMap({0, 1, 2, 3}), sim::SimError);
  fabric.setFaultInjector(nullptr);
  fabric.setShardMap({0, 1, 2, 3});
  EXPECT_THROW(fabric.setFaultInjector(&inj), sim::SimError);
}

// ---------------------------------------------------------------------------
// Full-runtime scenarios: the BCS control plane lives on shard 0, so the
// parallel mode must reproduce the serial run byte-for-byte.
// ---------------------------------------------------------------------------

struct ScenarioOut {
  std::string trace;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  std::size_t unfinished = 0;
  std::vector<std::uint64_t> numbers;  ///< scenario-specific stats digest

  bool operator==(const ScenarioOut&) const = default;
};

/// The 32-node fault soup (5% drop + node 13 crash at 6 ms) from
/// test_fault_injection, instrumented for byte-compare.
ScenarioOut runFaultSoup(int threads) {
  const int P = 32;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = 20260805;
  ccfg.faults.dropRate(0.05);
  ccfg.faults.crashNode(13, msec(6));
  net::Cluster cluster(ccfg);
  cluster.trace().enable();

  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, quickCfg());
  storm::StormConfig scfg;
  scfg.heartbeat_period = usec(500);
  storm::Storm storm(cluster, scfg);
  storm.setDeathHandler([&](int node) { runtime->notifyNodeFailure(node); });
  storm.startHeartbeats();
  cluster.engine().at(msec(120), [&] { storm.stopHeartbeats(); });

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  std::vector<int> completed(P, 0), failed(P, 0);
  bcsmpi::launchJob(*runtime, map, [&](mpi::Comm& comm) {
    const int me = comm.rank();
    std::vector<std::uint8_t> out(2048), in(2048);
    for (int round = 0; round < 10; ++round) {
      const int partner = me ^ (1 + (round % 7));
      if (partner >= P) continue;
      auto sreq = comm.isend(out.data(), out.size(), partner, round);
      auto rreq = comm.irecv(in.data(), in.size(), partner, round);
      mpi::Status ss, rs;
      comm.wait(sreq, &ss);
      comm.wait(rreq, &rs);
      auto& cell = (ss.error == mpi::kSuccess && rs.error == mpi::kSuccess)
                       ? completed
                       : failed;
      ++cell[static_cast<std::size_t>(me)];
    }
  });

  if (threads > 0) {
    auto policy = runtime->parallelPolicy(threads);
    policy.clamp_to_hardware = false;
    cluster.run(policy);
  } else {
    cluster.run();
  }

  ScenarioOut out;
  out.trace = cluster.trace().dump();
  out.executed = cluster.engine().executedEvents();
  out.cancelled = cluster.engine().cancelledEvents();
  out.unfinished = cluster.unfinishedProcesses().size();
  out.numbers = {runtime->stats().evictions, runtime->stats().retransmits,
                 runtime->stats().requests_failed,
                 cluster.fabric().stats().drops,
                 cluster.fabric().stats().unicasts,
                 cluster.fabric().stats().payload_bytes};
  for (int v : completed) out.numbers.push_back(static_cast<std::uint64_t>(v));
  for (int v : failed) out.numbers.push_back(static_cast<std::uint64_t>(v));
  return out;
}

/// The Strobe-Sender-crash failover scenario from test_failover: the
/// management node dies at 3 ms with a job in flight; watchdogs elect a
/// backup and the ring completes.
ScenarioOut runSsCrashFailover(int threads) {
  const int P = 8;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = 90210;
  ccfg.faults.crashManagementNode(msec(3));
  net::Cluster cluster(ccfg);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg = quickCfg();
  cfg.watchdog_slices = 4;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  storm::StormConfig scfg;
  scfg.heartbeat_period = usec(500);
  storm::Storm storm(cluster, scfg);
  storm.setDeathHandler([&](int node) { runtime->notifyNodeFailure(node); });
  storm.setRejoinHandler([&](int node) { runtime->notifyNodeRejoin(node); });
  runtime->setFailoverHandler(
      [&storm](int node, std::uint64_t) { storm.failoverTo(node); });
  storm.startHeartbeats();
  cluster.engine().at(msec(60), [&storm] { storm.stopHeartbeats(); });

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  std::vector<int> errors(P, 0);
  bcsmpi::launchJob(*runtime, map, [&](mpi::Comm& comm) {
    const int me = comm.rank();
    const int right = (me + 1) % P;
    const int left = (me + P - 1) % P;
    std::vector<std::uint8_t> out(1024), in(1024);
    for (int round = 0; round < 12; ++round) {
      auto sreq = comm.isend(out.data(), out.size(), right, round);
      auto rreq = comm.irecv(in.data(), in.size(), left, round);
      mpi::Status ss, rs;
      comm.wait(sreq, &ss);
      comm.wait(rreq, &rs);
      if (ss.error != mpi::kSuccess || rs.error != mpi::kSuccess) {
        ++errors[static_cast<std::size_t>(me)];
      }
    }
  });

  if (threads > 0) {
    auto policy = runtime->parallelPolicy(threads);
    policy.clamp_to_hardware = false;
    cluster.run(policy);
  } else {
    cluster.run();
  }

  ScenarioOut out;
  out.trace = cluster.trace().dump();
  out.executed = cluster.engine().executedEvents();
  out.cancelled = cluster.engine().cancelledEvents();
  out.unfinished = cluster.unfinishedProcesses().size();
  out.numbers = {runtime->stats().elections, runtime->stats().watchdog_fires,
                 runtime->stats().evictions, runtime->controlEpoch(),
                 static_cast<std::uint64_t>(runtime->strobeNode()),
                 static_cast<std::uint64_t>(storm.machineManagerNode()),
                 cluster.fabric().stats().suppressed_conditionals};
  for (int v : errors) out.numbers.push_back(static_cast<std::uint64_t>(v));
  return out;
}

/// The verifier-on clean run from test_verify: ring traffic + allreduce
/// with the protocol verifier watching.
ScenarioOut runVerifyOnClean(int threads) {
  const int P = 4;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = 1234;
  net::Cluster cluster(ccfg);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg = quickCfg();
  cfg.verify = true;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  bcsmpi::launchJob(*runtime, map, [&](mpi::Comm& comm) {
    const int me = comm.rank();
    const int right = (me + 1) % P;
    const int left = (me + P - 1) % P;
    std::vector<std::uint8_t> out(2048), in(2048);
    for (int round = 0; round < 4; ++round) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<std::uint8_t>((i * 3 + me + round) & 0xFF);
      }
      auto sreq = comm.isend(out.data(), out.size(), right, round);
      auto rreq = comm.irecv(in.data(), in.size(), left, round);
      comm.wait(sreq);
      comm.wait(rreq);
      comm.allreduceOne(static_cast<std::int64_t>(round), mpi::ReduceOp::kSum);
    }
  });

  if (threads > 0) {
    auto policy = runtime->parallelPolicy(threads);
    policy.clamp_to_hardware = false;
    cluster.run(policy);
  } else {
    cluster.run();
  }

  const verify::VerifyReport* rep = runtime->verifyAudit();
  EXPECT_NE(rep, nullptr);
  ScenarioOut out;
  out.trace = cluster.trace().dump();
  out.executed = cluster.engine().executedEvents();
  out.cancelled = cluster.engine().cancelledEvents();
  out.unfinished = cluster.unfinishedProcesses().size();
  if (rep != nullptr) {
    EXPECT_TRUE(rep->clean()) << rep->render();
    out.numbers = {rep->collectives_checked, rep->matches_checked,
                   static_cast<std::uint64_t>(rep->finalized)};
  }
  return out;
}

TEST(ParallelRuntime, FaultSoup32MatchesSerialAtAllThreadCounts) {
  const ScenarioOut ref = runFaultSoup(0);
  ASSERT_FALSE(ref.trace.empty());
  ASSERT_EQ(ref.unfinished, 1u);  // the crashed node's rank
  for (int threads : kThreadCounts) {
    const ScenarioOut par = runFaultSoup(threads);
    EXPECT_EQ(par, ref) << "threads=" << threads;
  }
}

TEST(ParallelRuntime, SsCrashFailoverMatchesSerialAtAllThreadCounts) {
  const ScenarioOut ref = runSsCrashFailover(0);
  ASSERT_FALSE(ref.trace.empty());
  ASSERT_GE(ref.numbers[0], 1u);  // an election happened
  for (int threads : kThreadCounts) {
    const ScenarioOut par = runSsCrashFailover(threads);
    EXPECT_EQ(par, ref) << "threads=" << threads;
  }
}

TEST(ParallelRuntime, VerifyOnCleanRunMatchesSerialAtAllThreadCounts) {
  const ScenarioOut ref = runVerifyOnClean(0);
  ASSERT_FALSE(ref.trace.empty());
  for (int threads : kThreadCounts) {
    const ScenarioOut par = runVerifyOnClean(threads);
    EXPECT_EQ(par, ref) << "threads=" << threads;
  }
}

}  // namespace
