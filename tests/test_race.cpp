// bcs-race conformance tier (ctest label: race).
//
// The contract under test (src/race, DESIGN.md §10):
//   * a mis-sharded workload — an event on a foreign shard touching state
//     owned by shard 0 — is caught with full provenance (event key, time,
//     call site), and the RaceReport is identical at threads=1 and
//     threads=4: the detector sees the *logical* race on every run, where
//     TSan sees only physically-exhibited interleavings;
//   * write-write and read-write conflicts between two shards surface as
//     distinct categories with both shards' provenance;
//   * cross-shard Engine::atOn/cancel in serial mode (legal for the serial
//     engine, fatal for the parallel one) surface as ownership violations
//     on the target shard's queue;
//   * a clean run — the full 32-node fault soup — has zero findings and
//     traces byte-identically with the detector on or off, serial and
//     parallel.
//
// The conflicting shards are chosen so they share a worker at every tested
// thread count (shards s and s' share a worker when s ≡ s' mod threads), so
// the "race" is never physically concurrent — the tier is TSan-clean by
// construction, which is itself the point: the detector needs no physical
// interleaving to fire.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bcsmpi/comm.hpp"
#include "net/cluster.hpp"
#include "race/race.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "storm/storm.hpp"

namespace {

using namespace bcs;
using sim::msec;
using sim::SimTime;
using sim::usec;

bcsmpi::BcsMpiConfig quickCfg() {
  bcsmpi::BcsMpiConfig cfg;
  cfg.runtime_init_overhead = usec(50);
  return cfg;
}

// ---------------------------------------------------------------------------
// Detector core: conflicts between two shards, direct record() calls
// ---------------------------------------------------------------------------

/// Shards 1 and 5 share a worker at threads ∈ {1, 2, 4} (5 ≡ 1 mod each),
/// so these conflicts are logical, never physical.
race::RaceReport runTwoShardConflicts(int threads) {
  sim::Engine eng;
  sim::Trace trace;
  trace.enable();
  race::RaceDetector det(eng, &trace);
  // Object 100 is owned by shard 1; object 200 too.  Shard 5 then writes
  // 100 (write-write) and reads 200 (read-write).
  det.registerObject(race::ObjectKind::kNodeState, 100, 1);
  det.registerObject(race::ObjectKind::kNodeState, 200, 1);

  eng.atOn(1, usec(10), [&] {
    det.record(race::ObjectKind::kNodeState, 100, race::FieldGroup::kDma,
               race::RaceDetector::Access::kWrite, "test::owner_write");
    det.record(race::ObjectKind::kNodeState, 200, race::FieldGroup::kDma,
               race::RaceDetector::Access::kWrite, "test::owner_write");
  });
  eng.atOn(5, usec(15), [&] {
    det.record(race::ObjectKind::kNodeState, 100, race::FieldGroup::kDma,
               race::RaceDetector::Access::kWrite, "test::foreign_write");
    det.record(race::ObjectKind::kNodeState, 200, race::FieldGroup::kDma,
               race::RaceDetector::Access::kRead, "test::foreign_read");
  });

  if (threads > 0) {
    sim::ParallelPolicy policy;
    policy.threads = threads;
    policy.window = usec(100);
    policy.clamp_to_hardware = false;
    eng.run(policy);
  } else {
    eng.run();
  }
  return det.finalize(eng.now());
}

TEST(RaceDetector, WriteWriteAndReadWriteConflictsWithProvenance) {
  const race::RaceReport rep = runTwoShardConflicts(/*threads=*/1);
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.counts[static_cast<int>(race::Category::kWriteWrite)], 1u);
  EXPECT_EQ(rep.counts[static_cast<int>(race::Category::kReadWrite)], 1u);
  EXPECT_EQ(rep.counts[static_cast<int>(race::Category::kOwnershipViolation)],
            0u);
  EXPECT_EQ(rep.accesses_recorded, 4u);
  ASSERT_EQ(rep.findings.size(), 2u);
  // Canonical order: ObjectKey ascending, so object 100 (write-write) first.
  const race::Finding& ww = rep.findings[0];
  EXPECT_EQ(ww.category, race::Category::kWriteWrite);
  EXPECT_EQ(ww.id, 100u);
  EXPECT_NE(ww.detail.find("shard 1"), std::string::npos) << ww.detail;
  EXPECT_NE(ww.detail.find("shard 5"), std::string::npos) << ww.detail;
  EXPECT_NE(ww.detail.find("site=test::owner_write"), std::string::npos);
  EXPECT_NE(ww.detail.find("site=test::foreign_write"), std::string::npos);
  EXPECT_NE(ww.detail.find("key=0x"), std::string::npos) << ww.detail;
  const race::Finding& rw = rep.findings[1];
  EXPECT_EQ(rw.category, race::Category::kReadWrite);
  EXPECT_EQ(rw.id, 200u);
  EXPECT_NE(rw.detail.find("site=test::foreign_read"), std::string::npos);
}

TEST(RaceDetector, ReportIdenticalAtEveryThreadCount) {
  const race::RaceReport ref = runTwoShardConflicts(/*threads=*/1);
  for (int threads : {2, 4}) {
    EXPECT_EQ(runTwoShardConflicts(threads), ref) << "threads=" << threads;
  }
  // The serial engine merges only at finalize (one big window), so the
  // window counters differ — but the findings and categories must not.
  const race::RaceReport serial = runTwoShardConflicts(/*threads=*/0);
  EXPECT_EQ(serial.counts[0], ref.counts[0]);
  EXPECT_EQ(serial.counts[1], ref.counts[1]);
  EXPECT_EQ(serial.counts[2], ref.counts[2]);
  EXPECT_EQ(serial.accesses_recorded, ref.accesses_recorded);
}

TEST(RaceDetector, RecordOutsideEventExecutionIsIgnored) {
  sim::Engine eng;
  race::RaceDetector det(eng, nullptr);
  // Setup/teardown code runs single-threaded by construction; accesses
  // there are not window-attributable and must not count.
  det.record(race::ObjectKind::kNodeState, 1, race::FieldGroup::kDma,
             race::RaceDetector::Access::kWrite, "test::setup");
  const race::RaceReport& rep = det.finalize(eng.now());
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.accesses_recorded, 0u);
}

TEST(RaceDetector, SerialCrossShardSchedulingIsAnOwnershipViolation) {
  sim::Engine eng;
  race::RaceDetector det(eng, nullptr);
  // Legal on the serial engine, fatal on the parallel one: an event on
  // shard 0 scheduling onto (and cancelling on) shard 3.  The detector
  // surfaces it as a foreign write to shard 3's queue, so the violation is
  // caught *before* anyone tries the workload under the parallel drain.
  eng.at(usec(5), [&] {
    const sim::EventId ev = eng.atOn(3, usec(50), [] {});
    eng.cancel(ev);
  });
  eng.run();
  const race::RaceReport& rep = det.finalize(eng.now());
  EXPECT_EQ(rep.counts[static_cast<int>(race::Category::kOwnershipViolation)],
            1u);
  ASSERT_EQ(rep.findings.size(), 1u);
  const race::Finding& f = rep.findings[0];
  EXPECT_EQ(f.kind, race::ObjectKind::kShardQueue);
  EXPECT_EQ(f.id, 3u);
  EXPECT_NE(f.detail.find("owned by shard 3"), std::string::npos) << f.detail;
  EXPECT_NE(f.detail.find("site=Engine::atOn"), std::string::npos) << f.detail;
}

// ---------------------------------------------------------------------------
// Full runtime: a mis-sharded workload is caught; reports match at 1 and 4
// ---------------------------------------------------------------------------

struct MisShardedOut {
  race::RaceReport report;
  std::string trace;

  bool operator==(const MisShardedOut&) const = default;
};

/// Two detached ranks; rank 1's send is posted from shard 4 — state owned
/// by shard 0 (the whole BCS control plane) written from a foreign shard.
/// Shard 4 shares a worker with shard 0 at threads ∈ {1, 2, 4}, so the
/// violation is logical only and this test is sanitizer-clean.
MisShardedOut runMisShardedWorkload(int threads) {
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = 2;
  ccfg.seed = 777;
  net::Cluster cluster(ccfg);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg = quickCfg();
  cfg.race_detect = true;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);
  const int job = runtime->createJob({0, 1});
  runtime->registerDetachedRank(job, 0);
  runtime->registerDetachedRank(job, 1);

  auto buf = std::make_shared<std::array<std::uint8_t, 64>>();
  auto rbuf = std::make_shared<std::array<std::uint8_t, 64>>();
  // The violation: rank 1's post runs on shard 4 (mid-window, not on the
  // slice grid, so its window assignment is unambiguous).
  cluster.engine().atOn(4, msec(2) + usec(123), [runtime, job, buf] {
    runtime->postSend(job, 1, buf->data(), buf->size(), /*dst=*/0, /*tag=*/7);
  });
  // The matching receive, legally posted from shard 0.
  cluster.engine().at(msec(2) + usec(123), [runtime, job, rbuf] {
    runtime->postRecv(job, 0, rbuf->data(), rbuf->size(), /*src=*/1,
                      /*tag=*/7);
  });
  cluster.engine().at(msec(30), [runtime, job] {
    runtime->rankFinished(job, 0);
    runtime->rankFinished(job, 1);
  });

  if (threads > 0) {
    auto policy = runtime->parallelPolicy(threads);
    policy.clamp_to_hardware = false;
    cluster.run(policy);
  } else {
    cluster.run();
  }

  const race::RaceReport* rep = runtime->raceAudit();
  EXPECT_NE(rep, nullptr);
  MisShardedOut out;
  if (rep != nullptr) out.report = *rep;
  out.trace = cluster.trace().dump();
  return out;
}

TEST(RaceRuntime, MisShardedPostIsCaughtWithProvenance) {
  const MisShardedOut out = runMisShardedWorkload(/*threads=*/1);
  const race::RaceReport& rep = out.report;
  EXPECT_FALSE(rep.clean()) << rep.render();
  EXPECT_TRUE(rep.finalized);
  // The foreign postSend writes node 1's BufferSender state — which shard 0
  // also writes that window (the DEM drain) — and rank 1's request table,
  // which nobody else touches that window: one write-write conflict and one
  // ownership violation, both anchored at Runtime::postSend.
  EXPECT_GE(rep.counts[static_cast<int>(race::Category::kWriteWrite)], 1u)
      << rep.render();
  EXPECT_GE(
      rep.counts[static_cast<int>(race::Category::kOwnershipViolation)], 1u)
      << rep.render();
  bool saw_node_state = false;
  bool saw_rank_table = false;
  for (const race::Finding& f : rep.findings) {
    if (f.detail.find("site=Runtime::postSend") == std::string::npos) continue;
    if (f.kind == race::ObjectKind::kNodeState) saw_node_state = true;
    if (f.kind == race::ObjectKind::kRankTable) {
      saw_rank_table = true;
      EXPECT_NE(f.detail.find("j0/r1"), std::string::npos) << f.detail;
      EXPECT_NE(f.detail.find("shard 4"), std::string::npos) << f.detail;
    }
  }
  EXPECT_TRUE(saw_node_state) << rep.render();
  EXPECT_TRUE(saw_rank_table) << rep.render();
  // Findings ride the trace under their own category.
  EXPECT_NE(out.trace.find("RACE"), std::string::npos);
}

TEST(RaceRuntime, MisShardedReportIdenticalAtThreads1And4) {
  const MisShardedOut ref = runMisShardedWorkload(/*threads=*/1);
  ASSERT_FALSE(ref.report.clean());
  const MisShardedOut par4 = runMisShardedWorkload(/*threads=*/4);
  EXPECT_EQ(par4.report, ref.report) << par4.report.render();
  EXPECT_EQ(par4.trace, ref.trace);
}

// ---------------------------------------------------------------------------
// Clean runs: zero findings, byte-identical traces detector-on/off
// ---------------------------------------------------------------------------

struct SoupOut {
  std::string trace;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  std::size_t unfinished = 0;
  std::vector<std::uint64_t> numbers;

  bool operator==(const SoupOut&) const = default;
};

/// The 32-node fault soup from the parallel tier (5% drop + node 13 crash),
/// with the race detector optionally watching.  Everything lives on shard 0,
/// so the detector must find nothing — and, being a pure observer, must not
/// perturb a single byte of the run.
SoupOut runFaultSoup(int threads, bool race_detect) {
  const int P = 32;
  net::ClusterConfig ccfg;
  ccfg.num_compute_nodes = P;
  ccfg.seed = 20260805;
  ccfg.faults.dropRate(0.05);
  ccfg.faults.crashNode(13, msec(6));
  net::Cluster cluster(ccfg);
  cluster.trace().enable();

  bcsmpi::BcsMpiConfig cfg = quickCfg();
  cfg.race_detect = race_detect;
  auto runtime = std::make_shared<bcsmpi::Runtime>(cluster, cfg);
  storm::StormConfig scfg;
  scfg.heartbeat_period = usec(500);
  storm::Storm storm(cluster, scfg);
  storm.setDeathHandler([&](int node) { runtime->notifyNodeFailure(node); });
  storm.startHeartbeats();
  cluster.engine().at(msec(120), [&] { storm.stopHeartbeats(); });

  std::vector<int> map(P);
  std::iota(map.begin(), map.end(), 0);
  std::vector<int> completed(P, 0), failed(P, 0);
  bcsmpi::launchJob(*runtime, map, [&](mpi::Comm& comm) {
    const int me = comm.rank();
    std::vector<std::uint8_t> out(2048), in(2048);
    for (int round = 0; round < 10; ++round) {
      const int partner = me ^ (1 + (round % 7));
      if (partner >= P) continue;
      auto sreq = comm.isend(out.data(), out.size(), partner, round);
      auto rreq = comm.irecv(in.data(), in.size(), partner, round);
      mpi::Status ss, rs;
      comm.wait(sreq, &ss);
      comm.wait(rreq, &rs);
      auto& cell = (ss.error == mpi::kSuccess && rs.error == mpi::kSuccess)
                       ? completed
                       : failed;
      ++cell[static_cast<std::size_t>(me)];
    }
  });

  if (threads > 0) {
    auto policy = runtime->parallelPolicy(threads);
    policy.clamp_to_hardware = false;
    cluster.run(policy);
  } else {
    cluster.run();
  }

  const race::RaceReport* rep = runtime->raceAudit();
  if (race_detect) {
    EXPECT_NE(rep, nullptr);
    if (rep != nullptr) {
      EXPECT_TRUE(rep->clean()) << rep->render();
      EXPECT_GT(rep->accesses_recorded, 1000u);  // it really was watching
      EXPECT_GT(rep->windows_merged, 10u);
    }
  } else {
    EXPECT_EQ(rep, nullptr);
  }

  SoupOut out;
  out.trace = cluster.trace().dump();
  out.executed = cluster.engine().executedEvents();
  out.cancelled = cluster.engine().cancelledEvents();
  out.unfinished = cluster.unfinishedProcesses().size();
  out.numbers = {runtime->stats().evictions, runtime->stats().retransmits,
                 runtime->stats().requests_failed,
                 cluster.fabric().stats().drops,
                 cluster.fabric().stats().unicasts,
                 cluster.fabric().stats().payload_bytes};
  for (int v : completed) out.numbers.push_back(static_cast<std::uint64_t>(v));
  for (int v : failed) out.numbers.push_back(static_cast<std::uint64_t>(v));
  return out;
}

TEST(RaceRuntime, FaultSoup32DetectorOnIsCleanAndByteIdentical) {
  const SoupOut off_serial = runFaultSoup(/*threads=*/0, /*race=*/false);
  ASSERT_FALSE(off_serial.trace.empty());
  ASSERT_EQ(off_serial.unfinished, 1u);  // the crashed node's rank
  const SoupOut on_serial = runFaultSoup(/*threads=*/0, /*race=*/true);
  EXPECT_EQ(on_serial, off_serial);
  const SoupOut on_par = runFaultSoup(/*threads=*/4, /*race=*/true);
  EXPECT_EQ(on_par, off_serial);
}

}  // namespace
