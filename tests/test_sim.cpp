// Unit tests for the simulation substrate: engine, fibers, CPU model,
// noise injection, RNG and statistics.

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/noise.hpp"
#include "sim/pool.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace {

using namespace bcs::sim;

// ---------------------------------------------------------------- Engine --

TEST(Engine, ExecutesEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(usec(30), [&] { order.push_back(3); });
  eng.at(usec(10), [&] { order.push_back(1); });
  eng.at(usec(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), usec(30));
}

TEST(Engine, TiesBreakInInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.at(usec(5), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, AfterSchedulesRelativeToNow) {
  Engine eng;
  SimTime fired = -1;
  eng.at(usec(10), [&] { eng.after(usec(5), [&] { fired = eng.now(); }); });
  eng.run();
  EXPECT_EQ(fired, usec(15));
}

TEST(Engine, CancelPreventsExecution) {
  Engine eng;
  bool ran = false;
  EventId id = eng.at(usec(10), [&] { ran = true; });
  EXPECT_TRUE(eng.cancel(id));
  EXPECT_FALSE(eng.cancel(id));  // double-cancel reports failure
  eng.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(eng.executedEvents(), 0u);
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine eng;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    eng.at(usec(10.0 * i), [&] { ++count; });
  }
  eng.run(usec(50));
  EXPECT_EQ(count, 5);
  EXPECT_EQ(eng.now(), usec(50));
  eng.run();
  EXPECT_EQ(count, 10);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine eng;
  eng.at(usec(10), [&] {
    EXPECT_THROW(eng.at(usec(5), [] {}), SimError);
  });
  eng.run();
}

TEST(Engine, EventsScheduledDuringEventRun) {
  Engine eng;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) eng.after(usec(1), recurse);
  };
  eng.at(0, recurse);
  eng.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(eng.now(), usec(99));
}

TEST(Engine, StepExecutesExactlyOne) {
  Engine eng;
  int count = 0;
  eng.at(usec(1), [&] { ++count; });
  eng.at(usec(2), [&] { ++count; });
  EXPECT_TRUE(eng.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(eng.step());
  EXPECT_FALSE(eng.step());
  EXPECT_EQ(count, 2);
}

// The calendar queue places events ~4 us apart in different wheel buckets
// and same-instant events in the same bucket heap; ordering must come out
// by (time, insertion) regardless of bucket placement.
TEST(Engine, CalendarTieOrderAcrossBucketBoundaries) {
  Engine eng;
  std::vector<int> order;
  // Interleave insertions across three bucket-straddling times, plus exact
  // ties at a bucket edge (4096 ns is the first bucket boundary).
  eng.at(nsec(4097), [&] { order.push_back(3); });
  eng.at(nsec(4095), [&] { order.push_back(1); });
  eng.at(nsec(4096), [&] { order.push_back(2); });
  eng.at(nsec(8192), [&] { order.push_back(5); });
  eng.at(nsec(8192), [&] { order.push_back(6); });  // tie: insertion order
  eng.at(nsec(4097), [&] { order.push_back(4); });  // tie: insertion order
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

// After the wheel cursor has advanced far beyond one full lap, a slot index
// is reused by a much later bucket; events and cancellations must still
// resolve against the right occupants.
TEST(Engine, CancelAfterWheelRollover) {
  Engine eng;
  int fired = 0;
  // Advance well past one wheel lap (2048 buckets * 4096 ns ≈ 8.4 ms).
  eng.at(msec(20), [&] { ++fired; });
  eng.run();
  ASSERT_EQ(fired, 1);
  // A handle from before the rollover epoch must not cancel the new
  // occupant of its reused slot.
  EventId stale{};
  stale = eng.at(msec(25), [&] { ++fired; });
  EXPECT_TRUE(eng.cancel(stale));
  EventId fresh = eng.at(msec(25), [&] { ++fired; });
  EXPECT_FALSE(eng.cancel(stale));  // stale handle, slot likely reused
  eng.run();
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(eng.cancel(fresh));  // already fired
}

// Events beyond the wheel horizon land in the overflow heap; they must
// interleave correctly with near-future events and with events scheduled
// after the cursor has jumped forward.
TEST(Engine, FarFutureOverflowOrdering) {
  Engine eng;
  std::vector<int> order;
  eng.at(sec(2), [&] { order.push_back(4); });     // far overflow
  eng.at(usec(5), [&] { order.push_back(1); });    // wheel
  eng.at(msec(500), [&] { order.push_back(3); });  // overflow
  eng.at(msec(1), [&] { order.push_back(2); });    // wheel
  // From the 500 ms event, schedule near-future work that must precede the
  // 2 s overflow event even though the cursor just jumped.
  eng.at(msec(500), [&] {
    eng.after(usec(10), [&] { order.push_back(35); });
  });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 35, 4}));
  EXPECT_EQ(eng.pendingEvents(), 0u);
}

// pendingEvents() counts live events only; cancelled entries are dropped
// lazily and reported through droppedTombstones().
TEST(Engine, PendingCountsLiveEventsAndTombstonesAreObservable) {
  Engine eng;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(eng.at(usec(10 + i), [] {}));
  }
  EXPECT_EQ(eng.pendingEvents(), 8u);
  for (int i = 0; i < 8; i += 2) eng.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(eng.pendingEvents(), 4u);  // live only, despite queued tombstones
  EXPECT_EQ(eng.cancelledEvents(), 4u);
  eng.run();
  EXPECT_EQ(eng.pendingEvents(), 0u);
  EXPECT_EQ(eng.executedEvents(), 4u);
  EXPECT_EQ(eng.droppedTombstones(), 4u);  // reclaimed during the run
}

// Callables larger than the inline slot take the heap fallback; both paths
// must run and destruct correctly.
TEST(Engine, LargeCallbacksUseHeapFallbackCorrectly) {
  Engine eng;
  std::array<std::uint64_t, 16> big{};  // 128 B: beyond the inline slot
  big.fill(7);
  std::uint64_t sum = 0;
  eng.at(usec(1), [big, &sum] {
    for (std::uint64_t v : big) sum += v;
  });
  auto cancelled = eng.at(usec(2), [big, &sum] { sum += big[0]; });
  eng.cancel(cancelled);  // heap callable destroyed on cancel, not leaked
  eng.run();
  EXPECT_EQ(sum, 7u * 16u);
}

// ---------------------------------------------------------------- Fiber --

TEST(Fiber, RunsToCompletionAcrossResumes) {
  int stage = 0;
  Fiber f([&] {
    stage = 1;
    f.yield();
    stage = 2;
  });
  EXPECT_EQ(stage, 0);
  f.resume();
  EXPECT_EQ(stage, 1);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_EQ(stage, 2);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, ExceptionPropagatesToResumer) {
  Fiber f([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, DestructionUnwindsUnfinishedBody) {
  bool unwound = false;
  {
    Fiber* self = nullptr;
    Fiber g([&] {
      struct S {
        bool* u;
        ~S() { *u = true; }
      } s{&unwound};
      self->yield();
      self->yield();
    });
    self = &g;
    g.resume();  // now parked inside first yield
  }              // destructor force-unwinds
  EXPECT_TRUE(unwound);
}

// Regression: destroying a fiber that was never resumed used to race with
// threadMain's startup (the body thread read kill_ before taking the lock,
// so a fast destructor could lose the kill notification and hang the join,
// or the body could start running concurrently with the unwind).  The loop
// makes the interleaving likely enough to trip TSan / hang deterministic
// CI when the handshake regresses.
TEST(Fiber, ImmediateDestructionWithoutResumeIsClean) {
  for (int i = 0; i < 200; ++i) {
    bool ran = false;
    {
      Fiber f([&] { ran = true; });
    }  // destroyed before any resume: body must never start
    EXPECT_FALSE(ran);
  }
}

// Regression (same startup handshake, opposite winner): resume immediately
// after construction, before the body thread has reached its first wait.
// The resume must not be lost and the body must run exactly once.
TEST(Fiber, ResumeImmediatelyAfterConstructionRuns) {
  for (int i = 0; i < 200; ++i) {
    int runs = 0;
    Fiber f([&] { ++runs; });
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(runs, 1);
  }
}

// Regression: rapid resume-once-then-destroy cycles exercise the kill path
// waking a fiber parked in yield() while the destructor holds the lock.
TEST(Fiber, ResumeThenDestroyLoopUnwindsEveryBody) {
  int unwound = 0;
  for (int i = 0; i < 100; ++i) {
    Fiber* self = nullptr;
    Fiber f([&] {
      struct S {
        int* u;
        ~S() { ++*u; }
      } s{&unwound};
      self->yield();
    });
    self = &f;
    f.resume();  // parked in yield; destructor must kill + join cleanly
  }
  EXPECT_EQ(unwound, 100);
}

TEST(Fiber, ExceptionAfterYieldPropagatesOnSecondResume) {
  Fiber f([&f] {
    f.yield();
    throw std::runtime_error("late boom");
  });
  f.resume();
  EXPECT_FALSE(f.finished());
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.finished());
}

// ------------------------------------------------------------------ CPU --

TEST(Cpu, SingleTaskRunsAtFullSpeed) {
  Engine eng;
  CpuScheduler cpu(eng, 2);
  SimTime done_at = -1;
  cpu.submit(msec(5), CpuScheduler::Priority::kUser,
             [&] { done_at = eng.now(); });
  eng.run();
  EXPECT_EQ(done_at, msec(5));
}

TEST(Cpu, TwoTasksOnTwoCpusDoNotInterfere) {
  Engine eng;
  CpuScheduler cpu(eng, 2);
  SimTime a = -1, b = -1;
  cpu.submit(msec(5), CpuScheduler::Priority::kUser, [&] { a = eng.now(); });
  cpu.submit(msec(3), CpuScheduler::Priority::kUser, [&] { b = eng.now(); });
  eng.run();
  EXPECT_EQ(a, msec(5));
  EXPECT_EQ(b, msec(3));
}

TEST(Cpu, ThreeTasksOnTwoCpusShare) {
  Engine eng;
  CpuScheduler cpu(eng, 2);
  std::vector<SimTime> done(3, -1);
  for (int i = 0; i < 3; ++i) {
    cpu.submit(msec(6), CpuScheduler::Priority::kUser,
               [&, i] { done[static_cast<std::size_t>(i)] = eng.now(); });
  }
  eng.run();
  // 18 ms of demand over 2 CPUs, all equal: everyone finishes at 9 ms.
  for (auto t : done) EXPECT_NEAR(static_cast<double>(t), msec(9), 1e3);
}

TEST(Cpu, DaemonPreemptsUserWork) {
  Engine eng;
  CpuScheduler cpu(eng, 1);
  SimTime user_done = -1;
  cpu.submit(msec(4), CpuScheduler::Priority::kUser,
             [&] { user_done = eng.now(); });
  // Dæmon grabs the single CPU for 1 ms starting immediately.
  cpu.submit(msec(1), CpuScheduler::Priority::kDaemon, nullptr);
  eng.run();
  EXPECT_NEAR(static_cast<double>(user_done), msec(5), 1e3);
}

TEST(Cpu, FrozenTaskMakesNoProgress) {
  Engine eng;
  CpuScheduler cpu(eng, 1);
  SimTime done = -1;
  CpuTaskId id = cpu.submit(msec(2), CpuScheduler::Priority::kUser,
                            [&] { done = eng.now(); });
  eng.at(msec(1), [&] { cpu.setRunnable(id, false); });
  eng.at(msec(3), [&] { cpu.setRunnable(id, true); });
  eng.run();
  // 1 ms progress, frozen 2 ms, then remaining 1 ms.
  EXPECT_NEAR(static_cast<double>(done), msec(4), 1e3);
}

TEST(Cpu, CancelDropsCompletion) {
  Engine eng;
  CpuScheduler cpu(eng, 1);
  bool fired = false;
  CpuTaskId id =
      cpu.submit(msec(2), CpuScheduler::Priority::kUser, [&] { fired = true; });
  eng.at(msec(1), [&] { cpu.cancel(id); });
  eng.run();
  EXPECT_FALSE(fired);
}

// -------------------------------------------------------------- Process --

TEST(Process, ComputeAdvancesSimTime) {
  Engine eng;
  CpuScheduler cpu(eng, 2);
  SimTime end = -1;
  Process p(eng, cpu, 0, "p", [&](Process& self) {
    self.compute(msec(2));
    self.compute(msec(3));
    end = self.now();
  });
  p.start(usec(100));
  eng.run();
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(end, usec(100) + msec(5));
  EXPECT_EQ(p.totalComputeRequested(), msec(5));
}

TEST(Process, BlockWakeRoundTrip) {
  Engine eng;
  CpuScheduler cpu(eng, 2);
  SimTime resumed_at = -1;
  Process p(eng, cpu, 0, "p", [&](Process& self) {
    self.block();
    resumed_at = self.now();
  });
  p.start(0);
  eng.at(msec(7), [&] { p.wake(); });
  eng.run();
  EXPECT_EQ(resumed_at, msec(7));
}

TEST(Process, WakeBeforeBlockBanksPermit) {
  Engine eng;
  CpuScheduler cpu(eng, 2);
  bool done = false;
  Process p(eng, cpu, 0, "p", [&](Process& self) {
    self.block();  // a permit was banked before we blocked: returns at once
    done = true;
  });
  eng.at(0, [&] { p.wake(); });        // banks a permit (process not started)
  p.start(usec(10));
  eng.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(eng.now(), usec(10));  // never actually suspended
}

TEST(Process, ComputeIsImmuneToStrayWakes) {
  // Regression test: a runtime may wake() processes at every slice boundary
  // whether or not they are blocked.  Banked permits must not cut a
  // compute() short (this once truncated 2 ms of work to 1 ms).
  Engine eng;
  CpuScheduler cpu(eng, 2);
  SimTime end = -1;
  Process p(eng, cpu, 0, "p", [&](Process& self) {
    self.compute(msec(2));
    end = self.now();
  });
  p.start(0);
  for (int i = 1; i <= 5; ++i) {
    eng.at(usec(100 * i), [&] { p.wake(); });  // spurious wakes mid-compute
  }
  eng.run();
  EXPECT_EQ(end, msec(2));
}

TEST(Process, TwoProcessesPingPong) {
  Engine eng;
  CpuScheduler cpu(eng, 2);
  std::vector<int> log;
  Process* pa = nullptr;
  Process* pb = nullptr;
  Process a(eng, cpu, 0, "a", [&](Process& self) {
    for (int i = 0; i < 3; ++i) {
      log.push_back(1);
      pb->wake();
      self.block();
    }
    pb->wake();
  });
  Process b(eng, cpu, 0, "b", [&](Process& self) {
    for (int i = 0; i < 3; ++i) {
      self.block();
      log.push_back(2);
      pa->wake();
    }
  });
  pa = &a;
  pb = &b;
  a.start(0);
  b.start(0);
  eng.run();
  EXPECT_TRUE(a.finished());
  EXPECT_TRUE(b.finished());
  EXPECT_EQ(log, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

// ---------------------------------------------------------------- Noise --

TEST(Noise, StealsCpuFromUserTask) {
  Engine eng;
  CpuScheduler cpu(eng, 1);
  NoiseConfig nc;
  nc.period = msec(10);
  nc.duration = msec(1);
  nc.jitter = 0.0;
  nc.coordinated = true;  // deterministic phase
  NoiseInjector noise(eng, cpu, nc, 1);
  noise.start(0);
  SimTime done = -1;
  cpu.submit(msec(50), CpuScheduler::Priority::kUser,
             [&] { done = eng.now(); });
  eng.run(msec(200));
  ASSERT_GT(done, 0);
  // ~1 ms stolen per 10 ms: 50 ms of work needs ~55-56 ms of wall time.
  EXPECT_GT(done, msec(54));
  EXPECT_LT(done, msec(58));
  EXPECT_GE(noise.activations(), 5u);
}

// ------------------------------------------------------------ RNG/Stats --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(2);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(r.exponential(5.0));
  EXPECT_NEAR(acc.mean(), 5.0, 0.2);
}

TEST(Stats, AccumulatorMoments) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Stats, HistogramQuantiles) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
  EXPECT_EQ(h.total(), 100u);
}

TEST(TraceTest, RecordsAndCounts) {
  Trace t;
  t.record(0, TraceCategory::kNet, 0, "dropped (disabled)");
  EXPECT_EQ(t.records().size(), 0u);
  t.enable();
  t.record(usec(1), TraceCategory::kStrobe, 3, "microstrobe DEM");
  t.record(usec(2), TraceCategory::kDma, 1, "get 4096B");
  EXPECT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.count([](const TraceRecord& r) {
              return r.category == TraceCategory::kStrobe;
            }),
            1u);
  EXPECT_NE(t.dump().find("microstrobe"), std::string::npos);
}

TEST(TimeFormat, HumanReadable) {
  EXPECT_EQ(formatTime(500), "500 ns");
  EXPECT_NE(formatTime(usec(12)).find("us"), std::string::npos);
  EXPECT_NE(formatTime(msec(3)).find("ms"), std::string::npos);
  EXPECT_NE(formatTime(sec(2)).find(" s"), std::string::npos);
}

// ----------------------------------------------------------------- Arena --
// Shard-local event-node arenas (parallel path) and the striped payload
// pool.  These run under the sanitize preset (label: arena), so unreleased
// nodes or buffers show up as leaks there.

/// Drives `kShards` event chains of `rounds` rounds each through a parallel
/// run and returns the engine's final pool-slot count.
std::uint32_t runChains(Engine& eng, int shards, int rounds, int threads) {
  auto step = std::make_shared<std::function<void(int, int)>>();
  auto* stepp = step.get();
  auto count = std::make_shared<int>(0);
  *step = [&eng, stepp, count, rounds](int s, int round) {
    ++*count;
    if (round + 1 < rounds) {
      eng.at(eng.now() + usec(7), [stepp, s, round] { (*stepp)(s, round + 1); });
    }
  };
  const SimTime base = eng.now();  // a rerun starts where the last ended
  for (int s = 0; s < shards; ++s) {
    eng.atOn(static_cast<ShardId>(s), base + usec(s),
             [step, s] { (*step)(s, 0); });
  }
  ParallelPolicy policy;
  policy.threads = threads;
  policy.clamp_to_hardware = false;
  eng.run(policy);
  EXPECT_EQ(*count, shards * rounds);
  return eng.poolSlots();
}

TEST(Arena, WorkerArenasRecycleNodesAcrossWindows) {
  // 4 chains × 200 rounds = 800 events over ~280 barrier windows; the pool
  // must stay near the live-event watermark (plus one worker refill batch
  // per worker), not grow with the executed-event count.
  Engine eng;
  const std::uint32_t slots = runChains(eng, 4, 200, 2);
  EXPECT_GE(eng.executedEvents(), 800u);
  EXPECT_LE(slots, 1024u);  // 2 workers × 256-slot refill + live slack
}

TEST(Arena, ArenasResetBetweenRuns) {
  // A second identical run on the same engine reuses the folded-back slots
  // instead of acquiring fresh ones.
  Engine eng;
  const std::uint32_t first = runChains(eng, 3, 100, 3);
  const std::uint32_t second = runChains(eng, 3, 100, 3);
  EXPECT_EQ(second, first);
}

TEST(Arena, ExhaustionGrowsChunkTable) {
  // Thousands of simultaneously-live events force the node pool through its
  // chunk-growth path mid-parallel-run; every event must still fire.
  Engine eng;
  auto count = std::make_shared<int>(0);
  constexpr int kLive = 5000;
  for (int i = 0; i < kLive; ++i) {
    eng.atOn(static_cast<ShardId>(i % 2), usec(1) + i, [count] { ++*count; });
  }
  ParallelPolicy policy;
  policy.threads = 2;
  policy.clamp_to_hardware = false;
  eng.run(policy);
  EXPECT_EQ(*count, kLive);
  EXPECT_GE(eng.poolSlots(), static_cast<std::uint32_t>(kLive));
}

TEST(Arena, PayloadPoolRecyclesThroughStripes) {
  PayloadPool pool;
  auto buf = pool.acquire(512);
  std::vector<std::byte>* raw = buf.get();
  buf.reset();  // released to this thread's stripe
  EXPECT_EQ(pool.spareBuffers(), 1u);
  auto again = pool.acquire(64);
  EXPECT_EQ(again.get(), raw);  // same buffer back, capacity retained
  EXPECT_GE(again->capacity(), 512u);
  EXPECT_EQ(pool.spareBuffers(), 0u);
}

TEST(Arena, PayloadPoolCapsSpareBuffers) {
  PayloadPool pool;
  std::vector<PayloadPool::Ptr> held;
  for (int i = 0; i < 200; ++i) held.push_back(pool.acquire(32));
  held.clear();  // all release onto one stripe: capped at kMaxSpare
  EXPECT_LE(pool.spareBuffers(), PayloadPool::kMaxSpare);
  EXPECT_GT(pool.spareBuffers(), 0u);
}

TEST(Arena, PayloadPoolCrossThreadReleaseIsSafe) {
  // A buffer acquired here and released on another thread lands on that
  // thread's stripe; the handle may even outlive the pool.
  auto pool = std::make_unique<PayloadPool>();
  auto buf = pool->acquire(128);
  std::thread t([moved = std::move(buf)]() mutable { moved.reset(); });
  t.join();
  EXPECT_LE(pool->spareBuffers(), 1u);
  auto survivor = pool->acquire(64);
  pool.reset();   // pool dies first...
  survivor.reset();  // ...the orphaned handle must still free cleanly
}

TEST(Arena, PayloadPoolHandlesOutlivingPoolRecycleAndFree) {
  // The audited post-mortem sequence from pool.hpp: handles that outlive
  // the pool object keep the shared State alive, park their buffers in its
  // orphaned stripes on release (from any thread), and the last deleter
  // frees everything when it drops the final State reference.  Runs under
  // the sanitize preset (label: arena), so a leak or use-after-free in any
  // step fails the build, not just this assertion list.
  auto pool = std::make_unique<PayloadPool>();
  auto a = pool->acquire(256);
  auto b = pool->acquire(256);
  auto c = pool->acquire(256);
  EXPECT_EQ(pool->liveHandles(), 3u);
  a.reset();  // released while the pool is alive: normal recycle
  EXPECT_EQ(pool->liveHandles(), 2u);

  pool.reset();  // the pool dies with two handles still outstanding
  b.reset();     // parks in the orphaned State's stripe — no pool touched
  std::thread t([moved = std::move(c)]() mutable {
    moved.reset();  // last handle, released cross-thread: State + parked
  });               // buffers free here
  t.join();
}

}  // namespace
